(* Benchmark harness reproducing every table and figure of the paper's
   evaluation (§4):

     fig7    throughput delta, ledgered vs plain (TPC-C-like, TPC-E-like)
     fig8    per-row DML latency vs index count, regular vs ledger tables
     fig9    ledger verification time vs transaction count
     fabric  RDBMS-vs-blockchain comparison (§4.1 narrative numbers)
     decomp  §4.1.2 overhead decomposition (hash vs history-insert cost)
     hashpath  allocation-free row hashing + domain-parallel Merkle root

   Absolute numbers differ from the paper (OCaml mini-engine vs SQL Server
   on 72 cores); EXPERIMENTS.md records shape agreement. Run a single
   experiment with e.g. `dune exec bench/main.exe -- fig8`. Pass --json to
   additionally write machine-readable results (BENCH_hashpath.json). *)

open Relation
open Sql_ledger

let vi = Value.int
let vs s = Value.String s

let deterministic_clock () =
  let t = ref 1_000_000.0 in
  fun () ->
    t := !t +. 0.001;
    !t

(* ------------------------------------------------------------------ *)
(* Shared result-file schema. Every BENCH_*.json carries the same
   provenance quadruple — cores, seed, measured wall time, source
   revision — so numbers from different machines and revisions are
   comparable at a glance. *)

let bench_seed = ref 42
let json_out = ref false

let git_rev () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let rev = try String.trim (input_line ic) with End_of_file -> "" in
    ignore (Unix.close_process_in ic);
    if rev = "" then "unknown" else rev
  with _ -> "unknown"

let common_fields ~elapsed_s =
  [
    ("cores", Sjson.Int (Domain.recommended_domain_count ()));
    ("seed", Sjson.Int !bench_seed);
    ("duration_s", Sjson.Float elapsed_s);
    ("git_rev", Sjson.String (git_rev ()));
  ]

let write_json ~file fields =
  Out_channel.with_open_text file (fun oc ->
      output_string oc (Sjson.to_string ~pretty:true (Sjson.Obj fields));
      output_char oc '\n');
  Printf.printf "\nwrote %s\n" file

(* ------------------------------------------------------------------ *)
(* Bechamel helper: estimated wall time per run, in nanoseconds. *)

let ns_per_run name f =
  let open Bechamel in
  let test = Test.make ~name (Staged.stage f) in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.4) () in
  let results = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] test in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock results in
  match Hashtbl.fold (fun _ v acc -> v :: acc) analyzed [] with
  | [ result ] -> (
      match Analyze.OLS.estimates result with
      | Some [ ns ] -> ns
      | _ -> nan)
  | _ -> nan

let us_per_run name f = ns_per_run name f /. 1000.0

(* ------------------------------------------------------------------ *)
(* Figure 7: user workload throughput *)

let fig7 () =
  print_endline "=== Figure 7: throughput of SQL Ledger vs plain tables ===";
  print_endline "paper: TPC-C -30.6%, TPC-E -6.9% (SQL Server, 72 cores)\n";
  let tpcc_txns = 3000 and tpce_txns = 4000 in
  let run_tpcc ~commit_cost_us ledgered =
    let db =
      Database.create ~block_size:100_000 ~commit_cost_us
        ~clock:(deterministic_clock ())
        ~name:(Printf.sprintf "fig7-tpcc-%b-%.0f" ledgered commit_cost_us)
        ()
    in
    let cfg = { Workload.Tpcc.default_config with ledgered } in
    let t = Workload.Tpcc.setup db cfg in
    let prng = Workload.Prng.create 42 in
    Workload.Runner.measure ~transactions:tpcc_txns (fun () ->
        ignore (Workload.Tpcc.run t ~prng ~transactions:tpcc_txns))
  in
  let run_tpce ~commit_cost_us ledgered =
    let db =
      Database.create ~block_size:100_000 ~commit_cost_us
        ~clock:(deterministic_clock ())
        ~name:(Printf.sprintf "fig7-tpce-%b-%.0f" ledgered commit_cost_us)
        ()
    in
    let cfg = { Workload.Tpce.default_config with ledgered } in
    let t = Workload.Tpce.setup db cfg in
    let prng = Workload.Prng.create 42 in
    Workload.Runner.measure ~transactions:tpce_txns (fun () ->
        ignore (Workload.Tpce.run t ~prng ~transactions:tpce_txns))
  in
  let report name baseline ledgered paper =
    Printf.printf "%-10s %14.0f %14.0f %+11.1f%% %12s\n" name
      baseline.Workload.Runner.tps ledgered.Workload.Runner.tps
      (Workload.Runner.throughput_delta_pct ~baseline ~ledgered)
      paper
  in
  let round ~commit_cost_us label =
    Printf.printf "-- %s --\n" label;
    Printf.printf "%-10s %14s %14s %12s %12s\n" "Workload" "plain (tps)"
      "ledger (tps)" "delta" "paper";
    (* One throwaway run warms caches so the configurations compare
       fairly. *)
    ignore (run_tpcc ~commit_cost_us true);
    report "TPC-C"
      (run_tpcc ~commit_cost_us false)
      (run_tpcc ~commit_cost_us true)
      "-30.6%";
    ignore (run_tpce ~commit_cost_us true);
    report "TPC-E"
      (run_tpce ~commit_cost_us false)
      (run_tpce ~commit_cost_us true)
      "-6.9%";
    print_newline ()
  in
  (* Raw: the bare in-memory engine. Its per-transaction baseline is a few
     microseconds — orders of magnitude below a durable production commit —
     which inflates the *relative* ledger overhead. *)
  round ~commit_cost_us:0.0 "raw in-memory engine";
  (* Calibrated: charge every commit the ~125 us the paper itself measures
     for the (excluded) commit path (§4.1.2), restoring a realistic
     baseline against which the hashing overhead is amortised. *)
  round ~commit_cost_us:125.0
    "with the paper's 125 us durable-commit cost applied"

(* ------------------------------------------------------------------ *)
(* Figure 8: DML latency, 260-byte rows, varying index count *)

(* id INT (4 B) + 8 x VARCHAR(32) at full width = 260 bytes of payload. *)
let wide_columns =
  Column.make "id" Datatype.Int
  :: List.init 8 (fun i ->
         Column.make (Printf.sprintf "c%d" i) (Datatype.Varchar 32))

let wide_row prng id =
  Array.init 9 (fun c ->
      if c = 0 then vi id else vs (Workload.Prng.alnum_string prng 32))

let fig8 () =
  print_endline "=== Figure 8: DML latency (260-byte rows) ===";
  print_endline
    "paper overheads: insert ~+12us/row, delete ~+30us/row, update ~+42us/row\n";
  let index_counts = [ 0; 1; 3; 5 ] in
  let preload = 4000 in
  let cell ~ledgered ~indices op =
    let db =
      Database.create ~block_size:1_000_000 ~clock:(deterministic_clock ())
        ~name:(Printf.sprintf "fig8-%b-%d-%s" ledgered indices op)
        ()
    in
    let table =
      Workload.Wtable.create db ~ledgered ~name:"t" ~columns:wide_columns
        ~key:[ "id" ]
    in
    for i = 1 to indices do
      Database.create_index db ~table:"t"
        ~name:(Printf.sprintf "i%d" i)
        ~columns:[ Printf.sprintf "c%d" (i - 1) ]
    done;
    let prng = Workload.Prng.create 7 in
    let (), _ =
      Database.with_txn db ~user:"bench" (fun txn ->
          for i = 1 to preload do
            Workload.Wtable.insert txn table (wide_row prng i)
          done)
    in
    (* Measure inside a single long transaction: the paper's numbers
       exclude commit cost (§4.1.2). *)
    let txn = Database.begin_txn db ~user:"bench" in
    let next_id = ref preload in
    let us =
      match op with
      | "insert" ->
          us_per_run "insert" (fun () ->
              incr next_id;
              Workload.Wtable.insert txn table (wide_row prng !next_id))
      | "update" ->
          let k = ref 0 in
          us_per_run "update" (fun () ->
              k := (!k mod preload) + 1;
              Workload.Wtable.update txn table ~key:[| vi !k |]
                (wide_row prng !k))
      | "delete" ->
          (* delete+reinsert pair, minus the insert cost *)
          let insert_us =
            us_per_run "insert-ref" (fun () ->
                incr next_id;
                Workload.Wtable.insert txn table (wide_row prng !next_id))
          in
          let k = ref 0 in
          let pair_us =
            us_per_run "delete+insert" (fun () ->
                k := (!k mod preload) + 1;
                Workload.Wtable.delete txn table ~key:[| vi !k |];
                Workload.Wtable.insert txn table (wide_row prng !k))
          in
          Float.max 0.0 (pair_us -. insert_us)
      | _ -> assert false
    in
    ignore (Txn.commit txn);
    us
  in
  Printf.printf "%-8s %-9s" "op" "table";
  List.iter
    (fun n -> Printf.printf " %9s" (Printf.sprintf "%d idx" n))
    index_counts;
  print_newline ();
  List.iter
    (fun op ->
      List.iter
        (fun ledgered ->
          Printf.printf "%-8s %-9s" op
            (if ledgered then "ledger" else "regular");
          List.iter
            (fun indices ->
              Printf.printf " %7.1fus" (cell ~ledgered ~indices op))
            index_counts;
          print_newline ())
        [ false; true ])
    [ "insert"; "update"; "delete" ]

(* ------------------------------------------------------------------ *)
(* Figure 9: verification time vs number of transactions *)

let fig9 () =
  print_endline "=== Figure 9: ledger verification time ===";
  print_endline
    "paper: linear in transaction count (5 rows/txn, 260-byte rows)\n";
  let sweep = [ 200; 500; 1000; 2000; 4000 ] in
  Printf.printf "%14s %16s %20s\n" "transactions" "verify time (s)"
    "us per row version";
  let points =
    List.map
      (fun txns ->
        let db =
          Database.create ~block_size:100_000 ~clock:(deterministic_clock ())
            ~name:(Printf.sprintf "fig9-%d" txns)
            ()
        in
        let table =
          Database.create_ledger_table db ~name:"t" ~columns:wide_columns
            ~key:[ "id" ] ()
        in
        let prng = Workload.Prng.create 9 in
        (* Each transaction updates five rows (the paper's setup). *)
        let next = ref 0 in
        for _ = 1 to txns do
          let (), _ =
            Database.with_txn db ~user:"bench" (fun txn ->
                for _ = 1 to 5 do
                  incr next;
                  Txn.insert txn table (wide_row prng !next)
                done)
          in
          ()
        done;
        let digest = Option.get (Database.generate_digest db) in
        Database.checkpoint db;
        let elapsed =
          Workload.Runner.time (fun () ->
              let report = Verifier.verify db ~digests:[ digest ] in
              assert (Verifier.ok report))
        in
        Printf.printf "%14d %16.3f %20.2f\n" txns elapsed
          (elapsed *. 1e6 /. float_of_int (txns * 5));
        (float_of_int txns, elapsed))
      sweep
  in
  let n = float_of_int (List.length points) in
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 points in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 points in
  let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 points in
  let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 points in
  let slope = ((n *. sxy) -. (sx *. sy)) /. ((n *. sxx) -. (sx *. sx)) in
  Printf.printf "\nfitted: %.1f us per transaction (linear, as in the paper)\n"
    (slope *. 1e6)

(* ------------------------------------------------------------------ *)
(* Blockchain comparison (§4.1 narrative) *)

let fabric () =
  print_endline "=== SQL Ledger vs permissioned blockchain (§4.1) ===";
  print_endline
    "paper: >20x Fabric's throughput even against *simpler* Fabric txns;\n\
    \       Fabric latency in the 100s of ms\n";
  (* Fabric's published numbers are for simple asset operations, so the
     like-for-like workload is a simple ledgered transaction (one insert,
     commit); the TPC-C mix is reported alongside as the heavy case. *)
  let simple =
    let db =
      Database.create ~block_size:100_000 ~clock:(deterministic_clock ())
        ~name:"fabric-simple" ()
    in
    let table =
      Database.create_ledger_table db ~name:"assets" ~columns:wide_columns
        ~key:[ "id" ] ()
    in
    let prng = Workload.Prng.create 4 in
    let n = 20_000 in
    let i = ref 0 in
    Workload.Runner.measure ~transactions:n (fun () ->
        for _ = 1 to n do
          incr i;
          let (), _ =
            Database.with_txn db ~user:"client" (fun txn ->
                Txn.insert txn table (wide_row prng !i))
          in
          ()
        done)
  in
  let tpcc =
    let db =
      Database.create ~block_size:100_000 ~clock:(deterministic_clock ())
        ~name:"fabric-tpcc" ()
    in
    let t = Workload.Tpcc.setup db Workload.Tpcc.default_config in
    let prng = Workload.Prng.create 4 in
    Workload.Runner.measure ~transactions:4000 (fun () ->
        ignore (Workload.Tpcc.run t ~prng ~transactions:4000))
  in
  let fabric_sat = Fabric_sim.saturation_tps () in
  let fr = Fabric_sim.simulate ~offered_tps:fabric_sat ~txns:20_000 () in
  Printf.printf "%-32s %14s %16s\n" "system / workload" "tps" "avg latency";
  Printf.printf "%-32s %14.0f %16s\n" "SQL Ledger, simple txns"
    simple.Workload.Runner.tps "microseconds";
  Printf.printf "%-32s %14.0f %16s\n" "SQL Ledger, TPC-C-like mix"
    tpcc.Workload.Runner.tps "microseconds";
  Printf.printf "%-32s %14.0f %13.0f ms\n" "Fabric-like pipeline (simple)"
    fr.Fabric_sim.achieved_tps fr.Fabric_sim.avg_latency_ms;
  Printf.printf
    "\nsimple-vs-simple throughput ratio: %.1fx on one core (paper: >20x on 72)\n"
    (simple.Workload.Runner.tps /. fr.Fabric_sim.achieved_tps)

(* ------------------------------------------------------------------ *)
(* §4.1.2 decomposition: where the ledger overhead goes *)

let decomp () =
  print_endline "=== §4.1.2 overhead decomposition (260-byte rows) ===";
  print_endline
    "paper: insert = hash (~12us); delete = hash + history insert (~30us);\n\
    \       update = 2x hash + history insert (~42us)\n";
  let schema = Schema.make wide_columns in
  let ext_schema = System_columns.extend_schema schema in
  let prng = Workload.Prng.create 77 in
  let row =
    System_columns.set_start ext_schema
      (Array.append (wide_row prng 1)
         [| Value.Null; Value.Null; Value.Null; Value.Null |])
      ~txn_id:1 ~seq:0
  in
  let serialize_us =
    us_per_run "serialize row" (fun () -> Row_codec.serialize ext_schema row)
  in
  (* The production hash path: a reused context fed directly, no
     intermediate serialization string (see the hashpath experiment for the
     old-vs-new comparison). *)
  let hash_ctx = Ledger_crypto.Sha256.init () in
  let hash_us =
    us_per_run "serialize+hash row" (fun () ->
        Row_codec.hash_into hash_ctx ext_schema row)
  in
  let legacy_hash_us =
    us_per_run "legacy hash" (fun () -> Row_codec.hash ext_schema row)
  in
  let sha_us =
    let payload = String.make 300 'x' in
    us_per_run "sha256 300B" (fun () ->
        Ledger_crypto.Sha256.digest_string payload)
  in
  let merkle_us =
    let leaf = Ledger_crypto.Sha256.digest_string "leaf" in
    let acc = ref Merkle.Streaming.empty in
    us_per_run "merkle add_leaf" (fun () ->
        acc := Merkle.Streaming.add_leaf !acc leaf)
  in
  let history =
    Storage.Table_store.create ~name:"h" ~table_id:0 ~schema:ext_schema
      ~key_ordinals:[ 0 ]
  in
  let next = ref 0 in
  let history_us =
    us_per_run "history insert" (fun () ->
        incr next;
        let r = Array.copy row in
        r.(0) <- vi !next;
        Storage.Table_store.insert history r)
  in
  Printf.printf "%-28s %8.2f us\n" "row serialization" serialize_us;
  Printf.printf "%-28s %8.2f us\n" "row serialization + SHA-256" hash_us;
  Printf.printf "%-28s %8.2f us\n" "  (legacy string-building)" legacy_hash_us;
  Printf.printf "%-28s %8.2f us\n" "SHA-256 alone (300 B)" sha_us;
  Printf.printf "%-28s %8.2f us\n" "Merkle tree append" merkle_us;
  Printf.printf "%-28s %8.2f us\n" "history-table insert" history_us;
  let h = hash_us +. merkle_us in
  Printf.printf "\npredicted per-row overheads (paper model):\n";
  Printf.printf "  insert  = hash             = %6.2f us (paper ~12)\n" h;
  Printf.printf "  delete  = hash + history   = %6.2f us (paper ~30)\n"
    (h +. history_us);
  Printf.printf "  update  = 2*hash + history = %6.2f us (paper ~42)\n"
    ((2.0 *. h) +. history_us)

(* ------------------------------------------------------------------ *)
(* hashpath: the allocation-free commit path, old vs new *)

let hashpath () =
  print_endline
    "=== hashpath: allocation-free row hashing + parallel Merkle root ===";
  Printf.printf "host: %d recommended domain(s)\n\n"
    (Domain.recommended_domain_count ());
  let t_start = Unix.gettimeofday () in
  let schema = Schema.make wide_columns in
  let ext_schema = System_columns.extend_schema schema in
  let prng = Workload.Prng.create !bench_seed in
  let row =
    System_columns.set_start ext_schema
      (Array.append (wide_row prng 1)
         [| Value.Null; Value.Null; Value.Null; Value.Null |])
      ~txn_id:1 ~seq:0
  in
  let ctx = Ledger_crypto.Sha256.init () in

  (* 1. Row hashing, string-building vs streamed-into-context. *)
  let old_us =
    us_per_run "hash (buffer)" (fun () -> Row_codec.hash ext_schema row)
  in
  let new_us =
    us_per_run "hash_into" (fun () -> Row_codec.hash_into ctx ext_schema row)
  in

  (* 2. Minor-heap bytes per hash: warm up, then average over many runs so
     one-off lazy initialisation does not pollute the per-row figure. *)
  let alloc_per_run f =
    ignore (f ());
    ignore (f ());
    let runs = 10_000 in
    let before = Gc.allocated_bytes () in
    for _ = 1 to runs do
      ignore (Sys.opaque_identity (f ()))
    done;
    (Gc.allocated_bytes () -. before) /. float_of_int runs
  in
  let old_alloc = alloc_per_run (fun () -> Row_codec.hash ext_schema row) in
  let new_alloc =
    alloc_per_run (fun () -> Row_codec.hash_into ctx ext_schema row)
  in

  (* 3. Block-root aggregation across domains (the per-block transaction
     root of §3.2.2, sized like a busy block). *)
  let nleaves = 100_000 in
  let leaves =
    Array.init nleaves (fun i ->
        Ledger_crypto.Sha256.digest_string (string_of_int i))
  in
  let domain_counts = [ 1; 2; 4; 8 ] in
  let root_times =
    List.map
      (fun domains ->
        (* best of 3: domain spawn cost is noisy on loaded hosts *)
        let best = ref infinity in
        for _ = 1 to 3 do
          let t =
            Workload.Runner.time (fun () ->
                ignore
                  (Sys.opaque_identity
                     (Merkle.Parallel.root_array ~domains leaves)))
          in
          if t < !best then best := t
        done;
        (domains, !best))
      domain_counts
  in

  Printf.printf "%-34s %10.2f us/row\n" "row hash, string-building (old)" old_us;
  Printf.printf "%-34s %10.2f us/row\n" "row hash, streamed (new)" new_us;
  Printf.printf "%-34s %9.1f%%\n" "improvement"
    ((old_us -. new_us) /. old_us *. 100.0);
  Printf.printf "%-34s %10.0f B/row\n" "allocation, string-building (old)"
    old_alloc;
  Printf.printf "%-34s %10.0f B/row\n" "allocation, streamed (new)" new_alloc;
  Printf.printf "\nblock Merkle root over %d leaves:\n" nleaves;
  Printf.printf "%8s %12s %9s\n" "domains" "time (ms)" "speedup";
  let base = List.assoc 1 root_times in
  List.iter
    (fun (d, t) ->
      Printf.printf "%8d %12.2f %8.2fx\n" d (t *. 1e3) (base /. t))
    root_times;

  if !json_out then
    write_json ~file:"BENCH_hashpath.json"
      ((("experiment", Sjson.String "hashpath")
        :: common_fields ~elapsed_s:(Unix.gettimeofday () -. t_start))
      @ [
          ("row_hash_old_us", Sjson.Float old_us);
          ("row_hash_new_us", Sjson.Float new_us);
          ( "row_hash_improvement_pct",
            Sjson.Float ((old_us -. new_us) /. old_us *. 100.0) );
          ("alloc_old_bytes_per_row", Sjson.Float old_alloc);
          ("alloc_new_bytes_per_row", Sjson.Float new_alloc);
          ("block_root_leaves", Sjson.Int nleaves);
          ( "block_root_ms",
            Sjson.Obj
              (List.map
                 (fun (d, t) -> (string_of_int d, Sjson.Float (t *. 1e3)))
                 root_times) );
        ])

(* ------------------------------------------------------------------ *)
(* serve: closed-loop throughput of the networked ledger service *)

(* N client connections drive a real localhost server (port 0, temp dir)
   with a TPC-C-flavoured mix — mostly writes, a sliver of reads — each
   client confined to its own key range so the load parallelises the way
   independent TPC-C warehouses do. Latency is measured client-side
   around each request/response round trip (closed loop: a client issues
   its next request only after the previous response), throughput as
   completed requests over wall time. A control connection then pulls a
   digest, verifies the ledger over the wire, and cross-checks the
   server's own request counters against what the clients sent. *)

let serve_clients = ref 8
let serve_duration = ref 0.0 (* seconds; 0 = fixed op count per client *)
let serve_migrate = ref false (* add the online-migration interference phase *)
let serve_warmup = ref (-1.0) (* seconds; negative = experiment default *)

(* Group-commit coalescing window in ms; negative = server default.
   `--window 0` benches the legacy fsync-per-commit path. *)
let serve_window_ms = ref (-1.0)

let serve_bench () =
  print_endline "=== serve: concurrent clients vs the ledger server ===";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let clients = !serve_clients and ops_per_client = 400 in
  let dir = Filename.temp_dir "sqlledger-bench" "" in
  let config =
    {
      Ledger_server.Server.default_config with
      port = 0;
      dir;
      db_name = "bench";
      max_connections = clients + 4;
    }
  in
  let config =
    if !serve_window_ms >= 0.0 then
      { config with group_commit_window = !serve_window_ms /. 1000.0 }
    else config
  in
  let srv =
    match Ledger_server.Server.start ~config () with
    | Ok s -> s
    | Error e ->
        failwith (Ledger_server.Server.start_error_to_string e)
  in
  let th = Ledger_server.Server.run_async srv in
  let port = Ledger_server.Server.port srv in
  (if !serve_duration > 0.0 then
     Printf.printf "server on 127.0.0.1:%d, %d clients for %.1f s\n\n" port
       clients !serve_duration
   else
     Printf.printf "server on 127.0.0.1:%d, %d clients x %d requests\n\n" port
       clients ops_per_client);
  let connect () =
    match Wire.Client.connect ~host:"127.0.0.1" ~port () with
    | Ok c -> c
    | Error e -> failwith (Wire.Client.connect_error_to_string e)
  in
  (* Schema and a little seed data, over the wire like everything else. *)
  let setup = connect () in
  let expect_ok what = function
    | Ok r when not (Wire.Protocol.response_is_error r) -> ()
    | Ok r ->
        failwith
          (Printf.sprintf "%s: %s" what (Wire.Protocol.response_kind r))
    | Error e -> failwith (Printf.sprintf "%s: %s" what e)
  in
  expect_ok "create"
    (Wire.Client.call setup
       (Wire.Protocol.Create_table
          {
            name = "bench";
            columns = [ ("id", "int"); ("payload", "varchar(64)") ];
            key = [ "id" ]; ledger = true
          }));
  Wire.Client.close setup;
  (* Closed loop: each client thread owns its own id range and keeps a
     live set so updates and deletes always hit a row it inserted. In
     op-count mode every client issues exactly [ops_per_client]
     requests; in duration mode it issues requests until the shared
     deadline passes. *)
  let latencies = Array.make clients [] in
  let errors = Atomic.make 0 in
  let reads = Atomic.make 0 in
  let deadline =
    if !serve_duration > 0.0 then
      Some (Unix.gettimeofday () +. !serve_duration)
    else None
  in
  let client_loop c_idx =
    let client = connect () in
    let prng = Workload.Prng.create ((!bench_seed * 100) + c_idx) in
    let base = (c_idx + 1) * 1_000_000 in
    let live = ref [] and next = ref 0 in
    let insert () =
      incr next;
      let id = base + !next in
      live := id :: !live;
      Wire.Protocol.Exec
        {
          sql =
            Printf.sprintf "INSERT INTO bench VALUES (%d, '%s')" id
              (Workload.Prng.alnum_string prng 64);
        }
    in
    let pick () = List.nth !live (Workload.Prng.int prng (List.length !live)) in
    let more op =
      match deadline with
      | Some d -> Unix.gettimeofday () < d
      | None -> op < ops_per_client
    in
    let op = ref 0 in
    while more !op do
      incr op;
      let req =
        if !live = [] then insert ()
        else
          let r = Workload.Prng.int prng 100 in
          if r < 45 then insert ()
          else if r < 88 then
            Wire.Protocol.Exec
              {
                sql =
                  Printf.sprintf "UPDATE bench SET payload = '%s' WHERE id = %d"
                    (Workload.Prng.alnum_string prng 64)
                    (pick ());
              }
          else if r < 96 then begin
            Atomic.incr reads;
            Wire.Protocol.Query
              {
                sql =
                  Printf.sprintf "SELECT * FROM bench WHERE id = %d" (pick ());
              }
          end
          else begin
            let id = pick () in
            live := List.filter (fun i -> i <> id) !live;
            Wire.Protocol.Exec
              { sql = Printf.sprintf "DELETE FROM bench WHERE id = %d" id }
          end
      in
      let t0 = Unix.gettimeofday () in
      (match Wire.Client.call client req with
      | Ok r when not (Wire.Protocol.response_is_error r) -> ()
      | Ok _ | Error _ -> Atomic.incr errors);
      latencies.(c_idx) <-
        ((Unix.gettimeofday () -. t0) *. 1e6) :: latencies.(c_idx)
    done;
    Wire.Client.close client
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init clients (fun i -> Thread.create client_loop i) in
  List.iter Thread.join threads;
  let elapsed = Unix.gettimeofday () -. t0 in
  let total = Array.fold_left (fun a l -> a + List.length l) 0 latencies in
  let tps = float_of_int total /. elapsed in
  let write_rps = float_of_int (total - Atomic.get reads) /. elapsed in
  let all =
    Array.of_list (List.concat (Array.to_list latencies))
  in
  Array.sort compare all;
  let pct p =
    if Array.length all = 0 then 0.0
    else
      all.(min (Array.length all - 1)
             (int_of_float (p /. 100.0 *. float_of_int (Array.length all))))
  in
  (* Control connection: the ledger survived the stampede, provably. *)
  let ctl = connect () in
  let digest_json =
    match Wire.Client.call ctl Wire.Protocol.Digest with
    | Ok (Wire.Protocol.Digest_r j) -> j
    | _ -> failwith "digest failed"
  in
  let verify_ok, versions =
    match
      Wire.Client.call ctl
        (Wire.Protocol.Verify { tables = []; digests = [ digest_json ] })
    with
    | Ok (Wire.Protocol.Verify_r s) ->
        (s.Wire.Protocol.vs_ok, s.Wire.Protocol.vs_versions)
    | _ -> failwith "verify failed"
  in
  let stats_lines =
    match Wire.Client.call ctl Wire.Protocol.Stats with
    | Ok (Wire.Protocol.Stats_r lines) -> lines
    | _ -> []
  in
  let starts_with prefix line =
    String.length line >= String.length prefix
    && String.sub line 0 (String.length prefix) = prefix
  in
  let line_value line =
    match String.rindex_opt line ' ' with
    | Some i ->
        float_of_string (String.sub line (i + 1) (String.length line - i - 1))
    | None -> nan
  in
  (* Server-side stat with the given name and kind label, or [nan]. *)
  let stat ?suffix name kind =
    let prefix =
      Printf.sprintf "%s{kind=%S%s}" name kind
        (match suffix with Some s -> "," ^ s | None -> "")
    in
    List.fold_left
      (fun acc line -> if starts_with prefix line then line_value line else acc)
      nan stats_lines
  in
  (* The wire-request cross-check must not count the internal
     commit.batch_size / commit.flush_latency series the group-commit
     leader records — those are per batch, not per request. *)
  let server_requests =
    List.fold_left
      (fun acc line ->
        if
          starts_with "sqlledger_requests_total" line
          && not (starts_with "sqlledger_requests_total{kind=\"commit." line)
        then acc + int_of_float (line_value line)
        else acc)
      0 stats_lines
  in
  let batches = stat "sqlledger_requests_total" "commit.batch_size" in
  let batch_stat s =
    stat "sqlledger_request_latency_us" "commit.batch_size"
      ~suffix:(Printf.sprintf "stat=%S" s)
  in
  let flush_stat s =
    stat "sqlledger_request_latency_us" "commit.flush_latency"
      ~suffix:(Printf.sprintf "stat=%S" s)
  in
  Wire.Client.close ctl;
  Ledger_server.Server.shutdown srv th;
  Printf.printf "%-26s %12d\n" "requests completed" total;
  Printf.printf "%-26s %12d\n" "request errors" (Atomic.get errors);
  Printf.printf "%-26s %12.0f req/s\n" "throughput" tps;
  Printf.printf "%-26s %12.0f req/s (%d reads excluded)\n" "write throughput"
    write_rps (Atomic.get reads);
  Printf.printf "%-26s %12.0f us\n" "latency p50" (pct 50.0);
  Printf.printf "%-26s %12.0f us\n" "latency p95" (pct 95.0);
  Printf.printf "%-26s %12.0f us\n" "latency p99" (pct 99.0);
  Printf.printf "%-26s %12s (%d row versions)\n" "wire verification"
    (if verify_ok then "OK" else "FAILED")
    versions;
  Printf.printf "%-26s %12d (clients sent %d + setup/control)\n"
    "server-counted requests" server_requests total;
  if Float.is_nan batches || batches < 1.0 then
    Printf.printf "%-26s %12s\n" "group commit" "off (no batches)"
  else begin
    Printf.printf "%-26s %12.0f (%.0f us avg flush, %.0f us p95)\n"
      "commit batches" batches (flush_stat "avg") (flush_stat "p95");
    Printf.printf "%-26s %12.1f (p50 %.0f, p95 %.0f, max %.0f)\n"
      "batch size avg" (batch_stat "avg") (batch_stat "p50") (batch_stat "p95")
      (batch_stat "max")
  end;
  if not verify_ok then failwith "post-load ledger verification failed";
  if Atomic.get errors > 0 then failwith "request errors during bench";
  (* --- receipts phase: issuance cost at production commit rate ---
     A dedicated server with small blocks and a signing key, so blocks
     close continuously under load and every receipt carries a
     block-root signature. The same closed-loop insert workload runs
     twice: commits alone, then commits with a receipt batch-fetched,
     parsed and offline-verified for every transaction. Commit latency
     is measured on the Exec calls only, so the comparison isolates
     what issuance costs the write path. *)
  print_endline "\n--- receipts: issuance cost at production rate ---";
  let rc_dir = Filename.temp_dir "sqlledger-bench" "-receipts" in
  let rc_block_size = 32 in
  let rc_config =
    {
      Ledger_server.Server.default_config with
      port = 0;
      dir = rc_dir;
      db_name = "bench";
      max_connections = 16;
      block_size = Some rc_block_size;
      signing_seed = Some "bench-receipts";
    }
  in
  let rc_srv =
    match Ledger_server.Server.start ~config:rc_config () with
    | Ok s -> s
    | Error e -> failwith (Ledger_server.Server.start_error_to_string e)
  in
  let rc_th = Ledger_server.Server.run_async rc_srv in
  let rc_port = Ledger_server.Server.port rc_srv in
  let rc_connect () =
    match Wire.Client.connect ~host:"127.0.0.1" ~port:rc_port () with
    | Ok c -> c
    | Error e -> failwith (Wire.Client.connect_error_to_string e)
  in
  let rc_setup = rc_connect () in
  expect_ok "create (receipts)"
    (Wire.Client.call rc_setup
       (Wire.Protocol.Create_table
          {
            name = "bench";
            columns = [ ("id", "int"); ("payload", "varchar(64)") ];
            key = [ "id" ]; ledger = true
          }));
  Wire.Client.close rc_setup;
  let rc_clients = 4 and rc_ops = 300 in
  let rc_issued = Atomic.make 0 in
  let rc_verified = Atomic.make 0 in
  (* Receipts collected during the run, verified after the workers join:
     the client-side parse + Lamport verification is the receipt
     *holder's* cost, and in this single-process bench it would
     otherwise steal CPU from the server threads and pollute the commit
     latencies the phase exists to compare. *)
  let rc_collected = ref [] in
  let rc_collected_mu = Mutex.create () in
  (* Batch-fetch receipts for [ids], stash them for post-run
     verification; returns the ids the server reported still pending in
     the open block. *)
  let rc_fetch client ids =
    if ids = [] then []
    else
      match
        Wire.Client.call client (Wire.Protocol.Receipts { txn_ids = ids })
      with
      | Ok (Wire.Protocol.Receipts_r { receipts; pending; block_keys }) ->
          (* Cheap: re-attaching shares the batch's key strings, it does
             not copy them. The expensive parse + verify runs post-run. *)
          let receipts = Receipt.inflate_batch ~block_keys receipts in
          Mutex.protect rc_collected_mu (fun () ->
              rc_collected := List.rev_append receipts !rc_collected);
          pending
      | Ok r -> failwith ("receipts fetch: " ^ Wire.Protocol.response_kind r)
      | Error e -> failwith ("receipts fetch: " ^ e)
  in
  let rc_run ~fetch ~phase_idx =
    let lats = Array.make rc_clients [] in
    let worker c_idx =
      let client = rc_connect () in
      let prng =
        Workload.Prng.create ((!bench_seed * 1000) + (phase_idx * 10) + c_idx)
      in
      let base = ((phase_idx * rc_clients) + c_idx + 1) * 1_000_000 in
      let owed = ref [] in
      for i = 1 to rc_ops do
        let sql =
          Printf.sprintf "INSERT INTO bench VALUES (%d, '%s')" (base + i)
            (Workload.Prng.alnum_string prng 64)
        in
        let t0 = Unix.gettimeofday () in
        (match Wire.Client.call client (Wire.Protocol.Exec { sql }) with
        | Ok (Wire.Protocol.Affected_r { txn_id = Some id; _ }) ->
            if fetch then owed := id :: !owed
        | Ok r when not (Wire.Protocol.response_is_error r) -> ()
        | Ok r ->
            failwith ("receipts insert: " ^ Wire.Protocol.response_kind r)
        | Error e -> failwith ("receipts insert: " ^ e));
        lats.(c_idx) <- ((Unix.gettimeofday () -. t0) *. 1e6) :: lats.(c_idx);
        if fetch && List.length !owed >= 32 then
          owed := rc_fetch client !owed
      done;
      if fetch then begin
        (* Close the open block so the tail of the run is issuable, then
           drain everything still owed. *)
        (match Wire.Client.call client Wire.Protocol.Digest with
        | Ok (Wire.Protocol.Digest_r _) -> ()
        | _ -> failwith "receipts digest failed");
        let rest = rc_fetch client !owed in
        if rest <> [] then
          failwith
            (Printf.sprintf "%d receipts still pending after block close"
               (List.length rest))
      end;
      Wire.Client.close client
    in
    let threads = List.init rc_clients (fun i -> Thread.create worker i) in
    List.iter Thread.join threads;
    let all = Array.of_list (List.concat (Array.to_list lats)) in
    Array.sort compare all;
    fun p ->
      if Array.length all = 0 then 0.0
      else
        all.(min
               (Array.length all - 1)
               (int_of_float (p /. 100.0 *. float_of_int (Array.length all))))
  in
  let rc_base_pct = rc_run ~fetch:false ~phase_idx:0 in
  let rc_with_pct = rc_run ~fetch:true ~phase_idx:1 in
  (* Offline verification of everything issued: leaf, proof path, block
     hash and the block-root signature, with no database in reach. *)
  List.iter
    (fun j ->
      match Receipt.of_json j with
      | Error e -> failwith ("receipt parse failed: " ^ e)
      | Ok r -> (
          Atomic.incr rc_issued;
          match Receipt.verify r with
          | Ok () -> Atomic.incr rc_verified
          | Error f ->
              failwith
                ("receipt verification failed: " ^ Receipt.failure_to_string f)))
    !rc_collected;
  let rc_ratio =
    if rc_base_pct 50.0 <= 0.0 then 1.0 else rc_with_pct 50.0 /. rc_base_pct 50.0
  in
  (* One digest-anchored verification closes the trust loop: commit a
     row, pin a digest of its block, and check the fetched receipt
     against that digest offline. *)
  let rc_ctl = rc_connect () in
  let rc_anchor_id =
    match
      Wire.Client.call rc_ctl
        (Wire.Protocol.Exec
           { sql = "INSERT INTO bench VALUES (424242, 'anchor')" })
    with
    | Ok (Wire.Protocol.Affected_r { txn_id = Some id; _ }) -> id
    | _ -> failwith "receipts anchor insert failed"
  in
  let rc_digest =
    match Wire.Client.call rc_ctl Wire.Protocol.Digest with
    | Ok (Wire.Protocol.Digest_r j) -> (
        match Digest.of_json j with
        | Ok d -> d
        | Error e -> failwith ("receipts digest parse: " ^ e))
    | _ -> failwith "receipts anchor digest failed"
  in
  let rc_anchored_ok =
    match
      Wire.Client.call rc_ctl
        (Wire.Protocol.Receipts { txn_ids = [ rc_anchor_id ] })
    with
    | Ok (Wire.Protocol.Receipts_r { receipts = [ j ]; pending = []; block_keys })
      -> (
        match Receipt.of_json (List.hd (Receipt.inflate_batch ~block_keys [ j ]))
        with
        | Error e -> failwith ("receipt parse failed: " ^ e)
        | Ok r -> (
            match Receipt.verify ~digest:rc_digest r with
            | Ok () -> true
            | Error f ->
                failwith
                  ("digest-anchored receipt verification failed: "
                  ^ Receipt.failure_to_string f)))
    | _ -> failwith "receipts anchor fetch failed"
  in
  Wire.Client.close rc_ctl;
  Ledger_server.Server.shutdown rc_srv rc_th;
  Printf.printf "%-26s %12.0f us (p95 %.0f)\n" "commit p50 (no receipts)"
    (rc_base_pct 50.0) (rc_base_pct 95.0);
  Printf.printf "%-26s %12.0f us (p95 %.0f)\n" "commit p50 (receipts)"
    (rc_with_pct 50.0) (rc_with_pct 95.0);
  Printf.printf "%-26s %12.3f (gate: < 1.10)\n" "issuance overhead ratio"
    rc_ratio;
  Printf.printf "%-26s %12d (%d verified offline)\n" "receipts issued"
    (Atomic.get rc_issued) (Atomic.get rc_verified);
  Printf.printf "%-26s %12s\n" "digest-anchored receipt"
    (if rc_anchored_ok then "OK" else "FAILED");
  if Atomic.get rc_issued <> Atomic.get rc_verified then
    failwith "some issued receipts failed offline verification";
  (* --- overload phase: a write storm against capped admission ---
     A second server with deliberately low caps, an idle read baseline,
     then an open-loop-shaped storm (32 writers running flat out, far
     beyond the caps) with 4 readers measuring served latency through
     it. The contract under test: overflow writes are refused with the
     *typed* overloaded/deadline_exceeded errors and nothing else, while
     reads stay fast because shedding keeps the machine out of the
     collapse region. *)
  print_endline "\n--- overload: write storm vs admission control ---";
  let odir = Filename.temp_dir "sqlledger-bench" "-overload" in
  let oconfig =
    {
      Ledger_server.Server.default_config with
      port = 0;
      dir = odir;
      db_name = "bench";
      max_connections = 64;
      group_commit_window = 0.002;
      max_inflight = 4;
      max_queue_depth = 8;
    }
  in
  let osrv =
    match Ledger_server.Server.start ~config:oconfig () with
    | Ok s -> s
    | Error e -> failwith (Ledger_server.Server.start_error_to_string e)
  in
  let oth = Ledger_server.Server.run_async osrv in
  let oport = Ledger_server.Server.port osrv in
  let oconnect () =
    match Wire.Client.connect ~host:"127.0.0.1" ~port:oport () with
    | Ok c -> c
    | Error e -> failwith (Wire.Client.connect_error_to_string e)
  in
  let setup = oconnect () in
  expect_ok "overload create"
    (Wire.Client.call setup
       (Wire.Protocol.Create_table
          {
            name = "bench";
            columns = [ ("id", "int"); ("payload", "varchar(64)") ];
            key = [ "id" ]; ledger = true
          }));
  let oprng = Workload.Prng.create 4242 in
  for id = 1 to 200 do
    expect_ok "overload seed"
      (Wire.Client.call setup
         (Wire.Protocol.Exec
            {
              sql =
                Printf.sprintf "INSERT INTO bench VALUES (%d, '%s')" id
                  (Workload.Prng.alnum_string oprng 64);
            }))
  done;
  (* Idle baseline: one quiet reader, point reads. *)
  let read_req id =
    Wire.Protocol.Query
      { sql = Printf.sprintf "SELECT * FROM bench WHERE id = %d" id }
  in
  let idle_lats =
    List.init 300 (fun i ->
        let t0 = Unix.gettimeofday () in
        expect_ok "idle read" (Wire.Client.call setup (read_req (1 + (i mod 200))));
        (Unix.gettimeofday () -. t0) *. 1e6)
  in
  Wire.Client.close setup;
  let sorted_pct lats p =
    let a = Array.of_list lats in
    Array.sort compare a;
    if Array.length a = 0 then 0.0
    else
      a.(min (Array.length a - 1)
           (int_of_float (p /. 100.0 *. float_of_int (Array.length a))))
  in
  let idle_p95 = sorted_pct idle_lats 95.0 in
  (* The storm. *)
  let storm_writers = 32 and storm_readers = 4 and storm_s = 2.0 in
  let served_writes = Atomic.make 0 in
  let shed = Atomic.make 0 in
  let deadline_refused = Atomic.make 0 in
  let other_errors = Atomic.make 0 in
  let storm_end = Unix.gettimeofday () +. storm_s in
  let writer w =
    let client = oconnect () in
    let prng = Workload.Prng.create (5000 + w) in
    let base = (w + 1) * 1_000_000 in
    let n = ref 0 in
    while Unix.gettimeofday () < storm_end do
      incr n;
      let req =
        Wire.Protocol.Exec
          {
            sql =
              Printf.sprintf "INSERT INTO bench VALUES (%d, '%s')"
                (base + !n)
                (Workload.Prng.alnum_string prng 64);
          }
      in
      match Wire.Client.call ~deadline_s:0.5 client req with
      | Ok (Wire.Protocol.Error_r { code = Wire.Protocol.Overloaded; _ }) ->
          Atomic.incr shed
      | Ok (Wire.Protocol.Error_r { code = Wire.Protocol.Deadline_exceeded; _ })
        ->
          Atomic.incr deadline_refused
      | Ok r when not (Wire.Protocol.response_is_error r) ->
          Atomic.incr served_writes
      | Ok _ | Error _ -> Atomic.incr other_errors
    done;
    Wire.Client.close client
  in
  let read_lats = Array.make storm_readers [] in
  let reader r =
    let client = oconnect () in
    let prng = Workload.Prng.create (9000 + r) in
    while Unix.gettimeofday () < storm_end do
      let t0 = Unix.gettimeofday () in
      (match
         Wire.Client.call client (read_req (1 + Workload.Prng.int prng 200))
       with
      | Ok rr when not (Wire.Protocol.response_is_error rr) ->
          read_lats.(r) <-
            ((Unix.gettimeofday () -. t0) *. 1e6) :: read_lats.(r)
      | Ok _ | Error _ -> Atomic.incr other_errors)
    done;
    Wire.Client.close client
  in
  let storm_threads =
    List.init storm_writers (fun w -> Thread.create writer w)
    @ List.init storm_readers (fun r -> Thread.create reader r)
  in
  List.iter Thread.join storm_threads;
  (* Server-side counters cross-check the client-side classification. *)
  let octl = oconnect () in
  let ostats =
    match Wire.Client.call octl Wire.Protocol.Stats with
    | Ok (Wire.Protocol.Stats_r lines) -> lines
    | _ -> []
  in
  Wire.Client.close octl;
  let ocounter name =
    let prefix = Printf.sprintf "sqlledger_counter{name=%S}" name in
    List.fold_left
      (fun acc line ->
        if starts_with prefix line then int_of_float (line_value line) else acc)
      0 ostats
  in
  let oqueue_hw =
    let prefix = "sqlledger_high_water{name=\"commit.queue_depth\"}" in
    List.fold_left
      (fun acc line ->
        if starts_with prefix line then int_of_float (line_value line) else acc)
      0 ostats
  in
  Ledger_server.Server.shutdown osrv oth;
  let storm_read_lats = List.concat (Array.to_list read_lats) in
  let storm_read_p99 = sorted_pct storm_read_lats 99.0 in
  let shed_only_errors = Atomic.get other_errors = 0 in
  let reads_bounded =
    (* Served reads must not collapse while writes shed: p99 under storm
       within 5x the idle p95 (with a floor for timer-coarse hosts). *)
    storm_read_p99 <= Float.max (5.0 *. idle_p95) 5000.0
  in
  Printf.printf "%-26s %12.0f us\n" "idle read p95" idle_p95;
  Printf.printf "%-26s %12.0f us (%d reads during storm)\n"
    "storm read p99" storm_read_p99
    (List.length storm_read_lats);
  Printf.printf "%-26s %12d\n" "storm writes served" (Atomic.get served_writes);
  Printf.printf "%-26s %12d (server counted %d)\n" "storm writes shed"
    (Atomic.get shed) (ocounter "server.shed");
  Printf.printf "%-26s %12d (server counted %d)\n" "deadline refusals"
    (Atomic.get deadline_refused)
    (ocounter "server.deadline_exceeded");
  Printf.printf "%-26s %12d\n" "commit queue high-water" oqueue_hw;
  Printf.printf "%-26s %12s\n" "shed errors typed only"
    (if shed_only_errors then "yes" else "NO");
  Printf.printf "%-26s %12s\n" "read p99 bounded"
    (if reads_bounded then "yes" else "NO");
  (* --- migration phase (opt-in via --migrate): OLTP latency beside an
     online copy --- A dedicated server hosts a ledger table taking OLTP
     inserts and a seeded plain staging table. The same closed-loop
     insert workload runs twice: alone, then with `sqlledger migrate`'s
     driver copying staging into a ledger table concurrently, batch by
     committed batch. The comparison isolates what an online migration
     costs foreground commits. *)
  let mg_fields =
    if not !serve_migrate then []
    else begin
      print_endline "\n--- migration: OLTP latency beside an online copy ---";
      let mg_dir = Filename.temp_dir "sqlledger-bench" "-migrate" in
      let mg_config =
        {
          Ledger_server.Server.default_config with
          port = 0;
          dir = mg_dir;
          db_name = "bench";
          max_connections = 16;
        }
      in
      let mg_srv =
        match Ledger_server.Server.start ~config:mg_config () with
        | Ok s -> s
        | Error e -> failwith (Ledger_server.Server.start_error_to_string e)
      in
      let mg_th = Ledger_server.Server.run_async mg_srv in
      let mg_port = Ledger_server.Server.port mg_srv in
      let mg_connect () =
        match Wire.Client.connect ~host:"127.0.0.1" ~port:mg_port () with
        | Ok c -> c
        | Error e -> failwith (Wire.Client.connect_error_to_string e)
      in
      let mg_setup = mg_connect () in
      let mg_create name ledger =
        expect_ok ("create " ^ name)
          (Wire.Client.call mg_setup
             (Wire.Protocol.Create_table
                {
                  name;
                  columns = [ ("id", "int"); ("payload", "varchar(64)") ];
                  key = [ "id" ]; ledger
                }))
      in
      mg_create "bench" true;
      mg_create "staging" false;
      mg_create "tgt" true;
      (* Seed the staging table in multi-row chunks: the copy must run
         long enough to overlap the whole measured workload. *)
      let mg_rows = 10_000 and mg_chunk = 100 in
      let mg_prng = Workload.Prng.create (!bench_seed + 77) in
      let id = ref 0 in
      while !id < mg_rows do
        let tuples =
          List.init mg_chunk (fun k ->
              Printf.sprintf "(%d, '%s')" (!id + k + 1)
                (Workload.Prng.alnum_string mg_prng 64))
        in
        id := !id + mg_chunk;
        expect_ok "seed staging"
          (Wire.Client.call mg_setup
             (Wire.Protocol.Exec
                {
                  sql =
                    "INSERT INTO staging VALUES " ^ String.concat ", " tuples;
                }))
      done;
      Wire.Client.close mg_setup;
      let mg_clients = 4 and mg_ops = 250 in
      let mg_oltp ~phase_idx =
        let lats = Array.make mg_clients [] in
        let worker c_idx =
          let client = mg_connect () in
          let prng =
            Workload.Prng.create
              ((!bench_seed * 500) + (phase_idx * 10) + c_idx)
          in
          let base = ((phase_idx * mg_clients) + c_idx + 1) * 1_000_000 in
          for i = 1 to mg_ops do
            let sql =
              Printf.sprintf "INSERT INTO bench VALUES (%d, '%s')" (base + i)
                (Workload.Prng.alnum_string prng 64)
            in
            let t0 = Unix.gettimeofday () in
            (match Wire.Client.call client (Wire.Protocol.Exec { sql }) with
            | Ok r when not (Wire.Protocol.response_is_error r) -> ()
            | Ok r ->
                failwith ("migrate oltp: " ^ Wire.Protocol.response_kind r)
            | Error e -> failwith ("migrate oltp: " ^ e));
            lats.(c_idx) <-
              ((Unix.gettimeofday () -. t0) *. 1e6) :: lats.(c_idx)
          done;
          Wire.Client.close client
        in
        let threads =
          List.init mg_clients (fun i -> Thread.create worker i)
        in
        List.iter Thread.join threads;
        let all = List.concat (Array.to_list lats) in
        fun p -> sorted_pct all p
      in
      let mg_base_pct = mg_oltp ~phase_idx:0 in
      let mg_summary = ref None in
      let migrator =
        Thread.create
          (fun () ->
            let client = mg_connect () in
            (match
               Migrate.Driver.run ~batch:64 ~client ~source:"staging"
                 ~target:"tgt" ()
             with
            | Ok s -> mg_summary := Some s
            | Error e -> failwith ("migration failed: " ^ e));
            Wire.Client.close client)
          ()
      in
      let mg_with_pct = mg_oltp ~phase_idx:1 in
      let mg_oltp_done = Unix.gettimeofday () in
      Thread.join migrator;
      let mg_migration_done = Unix.gettimeofday () in
      let summary =
        match !mg_summary with
        | Some s -> s
        | None -> failwith "migration produced no summary"
      in
      Ledger_server.Server.shutdown mg_srv mg_th;
      if not summary.Migrate.Driver.verified then
        failwith "migration differential check failed under load";
      if summary.Migrate.Driver.rows_copied <> mg_rows then
        failwith
          (Printf.sprintf "migration copied %d of %d rows"
             summary.Migrate.Driver.rows_copied mg_rows);
      let mg_ratio =
        if mg_base_pct 95.0 <= 0.0 then 1.0
        else mg_with_pct 95.0 /. mg_base_pct 95.0
      in
      (* Overlap sanity: if the copy outlived the measured workload the
         comparison really did run beside an active migration. *)
      let mg_overlapped = mg_migration_done >= mg_oltp_done in
      Printf.printf "%-26s %12.0f us (p95 %.0f)\n" "oltp p50 (no migration)"
        (mg_base_pct 50.0) (mg_base_pct 95.0);
      Printf.printf "%-26s %12.0f us (p95 %.0f)\n" "oltp p50 (migration)"
        (mg_with_pct 50.0) (mg_with_pct 95.0);
      Printf.printf "%-26s %12.3f\n" "migration p95 ratio" mg_ratio;
      Printf.printf "%-26s %12d rows in %d batches (differential %s)\n"
        "migrated" summary.Migrate.Driver.rows_copied
        summary.Migrate.Driver.batches
        (if summary.Migrate.Driver.verified then "OK" else "FAILED");
      Printf.printf "%-26s %12s\n" "copy outlived workload"
        (if mg_overlapped then "yes" else "no");
      [
        ("migrate_rows", Sjson.Int mg_rows);
        ("migrate_batches", Sjson.Int summary.Migrate.Driver.batches);
        ("migrate_verified", Sjson.Bool summary.Migrate.Driver.verified);
        ("migrate_baseline_oltp_p50_us", Sjson.Float (mg_base_pct 50.0));
        ("migrate_baseline_oltp_p95_us", Sjson.Float (mg_base_pct 95.0));
        ("migrate_oltp_p50_us", Sjson.Float (mg_with_pct 50.0));
        ("migrate_oltp_p95_us", Sjson.Float (mg_with_pct 95.0));
        ("migrate_oltp_p95_ratio", Sjson.Float mg_ratio);
        ("migrate_overlapped", Sjson.Bool mg_overlapped);
      ]
    end
  in
  if !json_out then begin
    let fnum v = Sjson.Float (if Float.is_nan v then 0.0 else v) in
    let fields =
      (("experiment", Sjson.String "serve")
       :: common_fields ~elapsed_s:elapsed)
      @ [
          ("clients", Sjson.Int clients);
          ("ops_per_client", Sjson.Int ops_per_client);
          ( "group_commit_window_ms",
            Sjson.Float (config.group_commit_window *. 1000.0) );
          ("requests", Sjson.Int total);
          ("reads", Sjson.Int (Atomic.get reads));
          ("errors", Sjson.Int (Atomic.get errors));
          ("throughput_rps", Sjson.Float tps);
          ("write_rps", Sjson.Float write_rps);
          ("latency_p50_us", Sjson.Float (pct 50.0));
          ("latency_p95_us", Sjson.Float (pct 95.0));
          ("latency_p99_us", Sjson.Float (pct 99.0));
          ("verify_ok", Sjson.Bool verify_ok);
          ("row_versions_verified", Sjson.Int versions);
          ("server_counted_requests", Sjson.Int server_requests);
          ("commit_batches", fnum batches);
          ("batch_size_avg", fnum (batch_stat "avg"));
          ("batch_size_p50", fnum (batch_stat "p50"));
          ("batch_size_p95", fnum (batch_stat "p95"));
          ("batch_size_max", fnum (batch_stat "max"));
          ("flush_latency_avg_us", fnum (flush_stat "avg"));
          ("flush_latency_p95_us", fnum (flush_stat "p95"));
          ("overload_max_inflight", Sjson.Int oconfig.max_inflight);
          ("overload_queue_depth_cap", Sjson.Int oconfig.max_queue_depth);
          ("overload_idle_read_p95_us", Sjson.Float idle_p95);
          ("overload_storm_read_p99_us", Sjson.Float storm_read_p99);
          ("overload_storm_reads", Sjson.Int (List.length storm_read_lats));
          ("overload_writes_served", Sjson.Int (Atomic.get served_writes));
          ("overload_writes_shed", Sjson.Int (Atomic.get shed));
          ( "overload_deadline_refusals",
            Sjson.Int (Atomic.get deadline_refused) );
          ("overload_other_errors", Sjson.Int (Atomic.get other_errors));
          ("overload_server_shed_counter", Sjson.Int (ocounter "server.shed"));
          ("overload_queue_depth_high_water", Sjson.Int oqueue_hw);
          ("shed_only_errors", Sjson.Bool shed_only_errors);
          ("overload_read_p99_bounded", Sjson.Bool reads_bounded);
          ("receipt_block_size", Sjson.Int rc_block_size);
          ("receipt_clients", Sjson.Int rc_clients);
          ("receipt_ops_per_client", Sjson.Int rc_ops);
          ("receipt_baseline_commit_p50_us", Sjson.Float (rc_base_pct 50.0));
          ("receipt_baseline_commit_p95_us", Sjson.Float (rc_base_pct 95.0));
          ("receipt_commit_p50_us", Sjson.Float (rc_with_pct 50.0));
          ("receipt_commit_p95_us", Sjson.Float (rc_with_pct 95.0));
          ("receipt_overhead_ratio", Sjson.Float rc_ratio);
          ("receipts_issued", Sjson.Int (Atomic.get rc_issued));
          ("receipts_verified", Sjson.Int (Atomic.get rc_verified));
          ("receipt_digest_anchored", Sjson.Bool rc_anchored_ok);
        ]
      @ mg_fields
    in
    write_json ~file:"BENCH_serve.json" fields
  end

(* ------------------------------------------------------------------ *)
(* replica: read scale-out through a streaming read replica *)

(* The §3.6 promise in throughput form: attach one replica to a loaded
   primary, wait for it to catch up, then drive the same closed-loop
   point-read workload twice — once with every reader pinned to the
   primary, once with the readers split across primary + replica. Both
   phases use the same reader count, so the second phase measures what
   the extra serving node buys, not extra client parallelism. A digest
   pulled from the primary and verified over the wire on the *replica*
   closes the loop: the node that served the reads can prove the data it
   served. *)

let replica_bench () =
  print_endline "=== replica: read scale-out with a streaming replica ===";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let readers = !serve_clients in
  let duration = if !serve_duration > 0.0 then !serve_duration else 5.0 in
  let warmup = if !serve_warmup >= 0.0 then !serve_warmup else 1.0 in
  let cores = Domain.recommended_domain_count () in
  let rows = 1_000 in
  let dir = Filename.temp_dir "sqlledger-bench" "" in
  let rep_dir = Filename.temp_dir "sqlledger-bench" "-rep" in
  let config =
    {
      Ledger_server.Server.default_config with
      port = 0;
      dir;
      db_name = "bench";
      max_connections = readers + 8;
    }
  in
  let srv =
    match Ledger_server.Server.start ~config () with
    | Ok s -> s
    | Error e -> failwith (Ledger_server.Server.start_error_to_string e)
  in
  let th = Ledger_server.Server.run_async srv in
  let port = Ledger_server.Server.port srv in
  let connect port =
    match Wire.Client.connect ~host:"127.0.0.1" ~port () with
    | Ok c -> c
    | Error e -> failwith (Wire.Client.connect_error_to_string e)
  in
  let expect_ok what = function
    | Ok r when not (Wire.Protocol.response_is_error r) -> ()
    | Ok r ->
        failwith (Printf.sprintf "%s: %s" what (Wire.Protocol.response_kind r))
    | Error e -> failwith (Printf.sprintf "%s: %s" what e)
  in
  let setup = connect port in
  expect_ok "create"
    (Wire.Client.call setup
       (Wire.Protocol.Create_table
          {
            name = "bench";
            columns = [ ("id", "int"); ("payload", "varchar(64)") ];
            key = [ "id" ]; ledger = true
          }));
  let prng = Workload.Prng.create !bench_seed in
  for id = 1 to rows do
    expect_ok "load"
      (Wire.Client.call setup
         (Wire.Protocol.Exec
            {
              sql =
                Printf.sprintf "INSERT INTO bench VALUES (%d, '%s')" id
                  (Workload.Prng.alnum_string prng 64);
            }))
  done;
  Wire.Client.close setup;
  (* Attach the replica and wait until it has applied the whole load. *)
  let node =
    match
      Ledger_server.Replica_node.start
        ~config:
          {
            Ledger_server.Server.default_config with
            port = 0;
            dir = rep_dir;
            max_connections = readers + 8;
          }
        ~primary_host:"127.0.0.1" ~primary_port:port ()
    with
    | Ok n -> n
    | Error e -> failwith (Ledger_server.Server.start_error_to_string e)
  in
  (* On a multicore host the replica node lives in its own domain: its
     apply thread and its read sessions get a runtime lock of their own,
     so the two serving nodes genuinely run in parallel instead of
     time-slicing one OCaml runtime. On a single core extra domains only
     add switching overhead, so everything stays on the main runtime
     (mirroring Merkle.Parallel's single-core guard). *)
  let use_domains = Domain.recommended_domain_count () > 1 in
  let join_node =
    if use_domains then begin
      let d =
        Domain.spawn (fun () ->
            try Ledger_server.Replica_node.run node with _ -> ())
      in
      fun () -> Domain.join d
    end
    else begin
      let t = Ledger_server.Replica_node.run_async node in
      fun () -> Thread.join t
    end
  in
  let primary_lsn () =
    match Ledger_server.Server.durable srv with
    | Some d ->
        Aries.Wal.last_lsn
          (Database_ledger.wal (Database.ledger (Durable.db d)))
    | None -> 0
  in
  let await_catch_up () =
    let deadline = Unix.gettimeofday () +. 30.0 in
    while
      Repl.Client.last_lsn (Ledger_server.Replica_node.client node)
      <> primary_lsn ()
    do
      if Unix.gettimeofday () > deadline then
        failwith "replica never caught up";
      Thread.delay 0.02
    done
  in
  await_catch_up ();
  let rep_port = Ledger_server.Replica_node.port node in
  Printf.printf "primary on :%d, replica on :%d, %d rows shipped\n" port
    rep_port rows;
  Printf.printf
    "%d readers, %.1f s per phase (%.1f s warmup), %d core(s) recommended\n\n"
    readers duration warmup cores;
  if cores = 1 then
    print_endline
      "note: single-core host — both nodes and all readers time-share one \
       CPU,\nso two-node scale-out is physically capped near 1.0x here; run \
       on a\nmulticore host for the real scale-out number.\n";
  (* Reader threads are grouped into domains (leaving a core's worth for
     the two serving nodes) so client-side work does not serialise
     against the servers on a multicore host; one domain group means
     plain threads on the main runtime. *)
  let reader_domains = if use_domains then max 1 (min 4 (cores - 1)) else 1 in
  (* Closed-loop point reads; each reader owns one connection for the
     whole phase and round-robins over the serving ports by thread id.
     [storm] adds primary-side writers running for the whole phase, to
     measure what concurrent commits do to read tails. *)
  let measure ?(storm = 0) ~duration ports =
    let counts = Array.make readers 0 in
    let latencies = Array.make readers [] in
    let errors = Atomic.make 0 in
    let storm_counts = Array.make (max 1 storm) 0 in
    let stop_storm = Atomic.make false in
    let stop_at = Unix.gettimeofday () +. duration in
    let reader i =
      let client =
        connect (List.nth ports (i mod List.length ports))
      in
      let prng = Workload.Prng.create (9000 + i) in
      while Unix.gettimeofday () < stop_at do
        let id = 1 + Workload.Prng.int prng rows in
        let t0 = Unix.gettimeofday () in
        (match
           Wire.Client.call client
             (Wire.Protocol.Query
                { sql = Printf.sprintf "SELECT * FROM bench WHERE id = %d" id })
         with
        | Ok (Wire.Protocol.Rows_r _) -> counts.(i) <- counts.(i) + 1
        | Ok _ | Error _ -> Atomic.incr errors);
        latencies.(i) <- ((Unix.gettimeofday () -. t0) *. 1e6) :: latencies.(i)
      done;
      Wire.Client.close client
    in
    let storm_writer w =
      let client = connect port in
      let prng = Workload.Prng.create (7000 + w) in
      while not (Atomic.get stop_storm) do
        let id = 1 + Workload.Prng.int prng rows in
        match
          Wire.Client.call client
            (Wire.Protocol.Exec
               {
                 sql =
                   Printf.sprintf "UPDATE bench SET payload = '%s' WHERE id = %d"
                     (Workload.Prng.alnum_string prng 64)
                     id;
               })
        with
        | Ok r when not (Wire.Protocol.response_is_error r) ->
            storm_counts.(w) <- storm_counts.(w) + 1
        | Ok _ | Error _ -> Atomic.incr errors
      done;
      Wire.Client.close client
    in
    let storm_threads =
      List.init storm (fun w -> Thread.create storm_writer w)
    in
    let t0 = Unix.gettimeofday () in
    (if use_domains then begin
       let groups = Array.make reader_domains [] in
       for i = readers - 1 downto 0 do
         groups.(i mod reader_domains) <- i :: groups.(i mod reader_domains)
       done;
       let doms =
         Array.to_list
           (Array.map
              (fun idxs ->
                Domain.spawn (fun () ->
                    List.iter Thread.join
                      (List.map (fun i -> Thread.create reader i) idxs)))
              groups)
       in
       List.iter Domain.join doms
     end
     else
       List.iter Thread.join (List.init readers (fun i -> Thread.create reader i)));
    let elapsed = Unix.gettimeofday () -. t0 in
    Atomic.set stop_storm true;
    List.iter Thread.join storm_threads;
    let total = Array.fold_left ( + ) 0 counts in
    let all = Array.of_list (List.concat (Array.to_list latencies)) in
    Array.sort compare all;
    let pct p =
      if Array.length all = 0 then 0.0
      else
        all.(min
               (Array.length all - 1)
               (int_of_float (p /. 100.0 *. float_of_int (Array.length all))))
    in
    if Atomic.get errors > 0 then failwith "request errors during bench";
    ( float_of_int total /. elapsed,
      pct 50.0,
      pct 95.0,
      total,
      Array.fold_left ( + ) 0 storm_counts )
  in
  let phase ?storm label ports =
    if warmup > 0.0 then
      ignore (measure ?storm ~duration:warmup ports
              : float * float * float * int * int);
    let tps, p50, p95, total, writes = measure ?storm ~duration ports in
    Printf.printf "%-30s %12.0f req/s (p50 %.0f us, p95 %.0f us)%s\n" label
      tps p50 p95
      (if writes > 0 then Printf.sprintf " [%d concurrent writes]" writes
       else "");
    (tps, p50, p95, total, writes)
  in
  let one_tps, one_p50, one_p95, one_total, _ =
    phase "1 node (primary only)" [ port ]
  in
  let two_tps, two_p50, two_p95, two_total, _ =
    phase "2 nodes (primary+replica)" [ port; rep_port ]
  in
  let speedup = if one_tps > 0.0 then two_tps /. one_tps else 0.0 in
  Printf.printf "%-30s %12.2fx\n" "read scale-out" speedup;
  (* Write storm: the same two-node read workload while primary-side
     writers commit continuously. Snapshot reads should keep the read
     tail close to the idle tail — under the old lock discipline the
     writer-preferring Rwlock let a commit stream starve readers. *)
  let storm_tps, storm_p50, storm_p95, storm_total, storm_writes =
    phase ~storm:4 "2 nodes + write storm" [ port; rep_port ]
  in
  let p95_ratio = if two_p95 > 0.0 then storm_p95 /. two_p95 else 0.0 in
  Printf.printf "%-30s %12.2fx (storm p95 / idle p95)\n" "write-storm read tail"
    p95_ratio;
  (* The replica proves what it served: digest from the primary,
     verification over the wire on the secondary. The storm leaves the
     replica momentarily behind, and the §3.6 gate defers digests until
     the replica has acked the latest commits — wait for catch-up and
     ride out the ack race with a short retry. *)
  await_catch_up ();
  let ctl = connect port in
  let digest_json =
    let rec attempt n =
      match Wire.Client.call ctl Wire.Protocol.Digest with
      | Ok (Wire.Protocol.Digest_r j) -> j
      | Ok _ when n > 0 ->
          Thread.delay 0.1;
          attempt (n - 1)
      | _ -> failwith "digest failed"
    in
    attempt 100
  in
  Wire.Client.close ctl;
  (* Digest generation closed a block; that Block_close record ships
     asynchronously, and the replica can only verify the digest once it
     holds the block the digest references. *)
  await_catch_up ();
  let rctl = connect rep_port in
  let verify_ok =
    match
      Wire.Client.call rctl
        (Wire.Protocol.Verify { tables = []; digests = [ digest_json ] })
    with
    | Ok (Wire.Protocol.Verify_r s) -> s.Wire.Protocol.vs_ok
    | _ -> failwith "verify on the replica failed"
  in
  Wire.Client.close rctl;
  Printf.printf "%-30s %12s\n" "replica wire verification"
    (if verify_ok then "OK" else "FAILED");
  Ledger_server.Replica_node.request_shutdown node;
  join_node ();
  Ledger_server.Server.shutdown srv th;
  if not verify_ok then failwith "replica verification failed";
  if !json_out then begin
    let fields =
      (("experiment", Sjson.String "replica")
       :: common_fields ~elapsed_s:duration)
      @ [
          ("readers", Sjson.Int readers);
          ("warmup_s", Sjson.Float warmup);
          ("reader_domains", Sjson.Int reader_domains);
          ("rows", Sjson.Int rows);
          ("one_node_rps", Sjson.Float one_tps);
          ("one_node_p50_us", Sjson.Float one_p50);
          ("one_node_p95_us", Sjson.Float one_p95);
          ("one_node_requests", Sjson.Int one_total);
          ("two_node_rps", Sjson.Float two_tps);
          ("two_node_p50_us", Sjson.Float two_p50);
          ("two_node_p95_us", Sjson.Float two_p95);
          ("two_node_requests", Sjson.Int two_total);
          ("scaleout", Sjson.Float speedup);
          ("storm_writers", Sjson.Int 4);
          ("storm_read_rps", Sjson.Float storm_tps);
          ("storm_read_p50_us", Sjson.Float storm_p50);
          ("storm_read_p95_us", Sjson.Float storm_p95);
          ("storm_read_requests", Sjson.Int storm_total);
          ("storm_writes", Sjson.Int storm_writes);
          ("storm_p95_over_idle_p95", Sjson.Float p95_ratio);
          ("verify_ok", Sjson.Bool verify_ok);
        ]
    in
    write_json ~file:"BENCH_replica.json" fields
  end

(* ------------------------------------------------------------------ *)
(* serve --shards: write scale-out across shard primaries *)

(* N `sqlledger serve` shard primaries plus one `sqlledger coord`, each
   in its own OS process — its own OCaml runtime, so on a multicore host
   the shards commit genuinely in parallel, which no single-process
   simulation can show. Clients fetch the shard map once over the wire
   and route single-shard writes straight to the owning primary (the
   same CRC-32 bucket function the coordinator uses); the coordinator
   sits on the data path only for the cross-shard fraction — multi-row
   inserts whose keys straddle shards, executed under 2PC — and for the
   control plane: schema broadcast, the aggregate digest, and the
   distributed verification that closes the run. *)

let serve_shards = ref 0
let serve_xshard = ref 10 (* percent of ops routed cross-shard *)

let sqlledger_bin () =
  match Sys.getenv_opt "SQLLEDGER_BIN" with
  | Some b -> b
  | None ->
      (* bench runs from _build/default/bench/main.exe; the CLI is the
         sibling executable under bin/. *)
      Filename.concat
        (Filename.concat
           (Filename.dirname (Filename.dirname Sys.executable_name))
           "bin")
        "sqlledger.exe"

(* Spawn a sqlledger subcommand and parse the bound port from its
   announcement line ("... on HOST:PORT ..."), which both `serve` and
   `coord` print flushed before entering their accept loops. *)
let spawn_node args =
  let bin = sqlledger_bin () in
  let r, w = Unix.pipe () in
  let pid =
    Unix.create_process bin (Array.of_list (bin :: args)) Unix.stdin w
      Unix.stderr
  in
  Unix.close w;
  let ic = Unix.in_channel_of_descr r in
  let line =
    try input_line ic
    with End_of_file ->
      failwith
        (Printf.sprintf "%s %s exited before announcing its port" bin
           (String.concat " " args))
  in
  let port =
    match String.rindex_opt line ':' with
    | None -> failwith ("cannot parse port from: " ^ line)
    | Some i ->
        let rest = String.sub line (i + 1) (String.length line - i - 1) in
        let j = ref 0 in
        while
          !j < String.length rest && rest.[!j] >= '0' && rest.[!j] <= '9'
        do
          incr j
        done;
        int_of_string (String.sub rest 0 !j)
  in
  (pid, ic, port)

let stop_node (pid, ic, _port) =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
  try close_in ic with _ -> ()

let serve_sharded () =
  let shards = !serve_shards and clients = !serve_clients in
  let xshard = !serve_xshard and ops_per_client = 400 in
  Printf.printf
    "=== serve --shards: %d shard primaries behind a coordinator ===\n" shards;
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let shard_nodes =
    List.init shards (fun i ->
        let dir = Filename.temp_dir "sqlledger-bench" (Printf.sprintf "-s%d" i) in
        spawn_node [ "serve"; "--dir"; dir; "--port"; "0" ])
  in
  let shard_ports = Array.of_list (List.map (fun (_, _, p) -> p) shard_nodes) in
  let coord_dir = Filename.temp_dir "sqlledger-bench" "-coord" in
  let coord_node =
    spawn_node
      ([ "coord"; "--dir"; coord_dir; "--port"; "0" ]
      @ List.concat_map
          (fun p -> [ "--shard"; Printf.sprintf "127.0.0.1:%d" p ])
          (Array.to_list shard_ports))
  in
  let _, _, coord_port = coord_node in
  let stop_all () = List.iter stop_node (coord_node :: shard_nodes) in
  try
    let connect port =
      match Wire.Client.connect ~host:"127.0.0.1" ~port () with
      | Ok c -> c
      | Error e -> failwith (Wire.Client.connect_error_to_string e)
    in
    let expect_ok what = function
      | Ok r when not (Wire.Protocol.response_is_error r) -> ()
      | Ok r ->
          failwith
            (Printf.sprintf "%s: %s" what (Wire.Protocol.response_kind r))
      | Error e -> failwith (Printf.sprintf "%s: %s" what e)
    in
    (* Control plane: schema broadcast + the authoritative shard map. *)
    let setup = connect coord_port in
    expect_ok "create"
      (Wire.Client.call setup
         (Wire.Protocol.Create_table
            {
              name = "bench";
              columns = [ ("id", "int"); ("payload", "varchar(64)") ];
              key = [ "id" ]; ledger = true
            }));
    let epoch, map_shards =
      match Wire.Client.call setup Wire.Protocol.Shard_map with
      | Ok (Wire.Protocol.Shard_map_r { epoch; shards }) -> (epoch, shards)
      | Ok r -> failwith ("shard_map: " ^ Wire.Protocol.response_kind r)
      | Error e -> failwith ("shard_map: " ^ e)
    in
    Wire.Client.close setup;
    if List.length map_shards <> shards then
      failwith "coordinator map disagrees with the spawned topology";
    Printf.printf
      "coordinator on :%d (map epoch %d), shards on %s\n\
       %d clients, %d%% cross-shard, %s\n\n"
      coord_port epoch
      (String.concat ", "
         (List.map (fun (_, p) -> Printf.sprintf ":%d" p) map_shards))
      clients xshard
      (if !serve_duration > 0.0 then Printf.sprintf "%.1f s" !serve_duration
       else Printf.sprintf "%d ops each" ops_per_client);
    let shard_of id =
      Shard.Shard_map.bucket_of_key ~shard_count:shards ~table:"bench"
        [ Relation.Value.int id ]
    in
    let latencies = Array.make clients [] in
    let reads = Atomic.make 0 in
    let xshard_ops = Atomic.make 0 in
    let typed_errors = Atomic.make 0 in
    let untyped_errors = Atomic.make 0 in
    let deadline =
      if !serve_duration > 0.0 then
        Some (Unix.gettimeofday () +. !serve_duration)
      else None
    in
    let client_loop c_idx =
      let coord = connect coord_port in
      let shard_conns = Array.map connect shard_ports in
      let prng = Workload.Prng.create ((!bench_seed * 100) + c_idx) in
      let base = (c_idx + 1) * 1_000_000 in
      let next = ref 0 in
      let fresh_id () =
        incr next;
        base + !next
      in
      let live = ref [] in
      let pick () =
        List.nth !live (Workload.Prng.int prng (List.length !live))
      in
      let more op =
        match deadline with
        | Some d -> Unix.gettimeofday () < d
        | None -> op < ops_per_client
      in
      let op = ref 0 in
      while more !op do
        incr op;
        let r = Workload.Prng.int prng 100 in
        let conn, is_coord, req =
          if r < xshard then begin
            (* Cross-shard: one four-row insert through the coordinator.
               Under CRC-32 placement four fresh keys straddle shards
               essentially always, so this lands on the 2PC path. *)
            Atomic.incr xshard_ops;
            let rows =
              List.init 4 (fun _ ->
                  let id = fresh_id () in
                  live := id :: !live;
                  Printf.sprintf "(%d, '%s')" id
                    (Workload.Prng.alnum_string prng 32))
            in
            ( coord,
              true,
              Wire.Protocol.Exec
                {
                  sql =
                    "INSERT INTO bench (id, payload) VALUES "
                    ^ String.concat ", " rows;
                } )
          end
          else if r < xshard + 55 || !live = [] then begin
            let id = fresh_id () in
            live := id :: !live;
            ( shard_conns.(shard_of id),
              false,
              Wire.Protocol.Exec
                {
                  sql =
                    Printf.sprintf "INSERT INTO bench VALUES (%d, '%s')" id
                      (Workload.Prng.alnum_string prng 64);
                } )
          end
          else if r < xshard + 80 then begin
            let id = pick () in
            ( shard_conns.(shard_of id),
              false,
              Wire.Protocol.Exec
                {
                  sql =
                    Printf.sprintf
                      "UPDATE bench SET payload = '%s' WHERE id = %d"
                      (Workload.Prng.alnum_string prng 64)
                      id;
                } )
          end
          else begin
            Atomic.incr reads;
            let id = pick () in
            ( shard_conns.(shard_of id),
              false,
              Wire.Protocol.Query
                {
                  sql = Printf.sprintf "SELECT * FROM bench WHERE id = %d" id;
                } )
          end
        in
        let t0 = Unix.gettimeofday () in
        (match
           if is_coord then Wire.Client.call ~map_epoch:epoch conn req
           else Wire.Client.call conn req
         with
        | Ok r when not (Wire.Protocol.response_is_error r) -> ()
        | Ok (Wire.Protocol.Error_r _) -> Atomic.incr typed_errors
        | Ok _ | Error _ -> Atomic.incr untyped_errors);
        latencies.(c_idx) <-
          ((Unix.gettimeofday () -. t0) *. 1e6) :: latencies.(c_idx)
      done;
      Array.iter Wire.Client.close shard_conns;
      Wire.Client.close coord
    in
    let t0 = Unix.gettimeofday () in
    let threads = List.init clients (fun i -> Thread.create client_loop i) in
    List.iter Thread.join threads;
    let elapsed = Unix.gettimeofday () -. t0 in
    let total = Array.fold_left (fun a l -> a + List.length l) 0 latencies in
    let tps = float_of_int total /. elapsed in
    let write_rps = float_of_int (total - Atomic.get reads) /. elapsed in
    let all = Array.of_list (List.concat (Array.to_list latencies)) in
    Array.sort compare all;
    let pct p =
      if Array.length all = 0 then 0.0
      else
        all.(min
               (Array.length all - 1)
               (int_of_float (p /. 100.0 *. float_of_int (Array.length all))))
    in
    (* The run must end provably intact: one aggregate digest covering
       every shard, then a distributed verification against it. *)
    let ctl = connect coord_port in
    let digest_json =
      match Wire.Client.call ctl Wire.Protocol.Digest with
      | Ok (Wire.Protocol.Digest_r j) -> j
      | _ -> failwith "aggregate digest failed"
    in
    let verify_ok, versions =
      match
        Wire.Client.call ctl
          (Wire.Protocol.Verify { tables = []; digests = [ digest_json ] })
      with
      | Ok (Wire.Protocol.Verify_r s) ->
          (s.Wire.Protocol.vs_ok, s.Wire.Protocol.vs_versions)
      | _ -> failwith "distributed verify failed"
    in
    let coord_stat name =
      match Wire.Client.call ctl Wire.Protocol.Stats with
      | Ok (Wire.Protocol.Stats_r lines) ->
          List.fold_left
            (fun acc line ->
              match String.rindex_opt line ' ' with
              | Some i
                when String.sub line 0 i = name ->
                  int_of_string
                    (String.sub line (i + 1) (String.length line - i - 1))
              | _ -> acc)
            (-1) lines
      | _ -> -1
    in
    let twopc_commit = coord_stat "coord.txn_2pc_commit" in
    let twopc_abort = coord_stat "coord.txn_2pc_abort" in
    let onepc = coord_stat "coord.txn_1pc" in
    Wire.Client.close ctl;
    stop_all ();
    Printf.printf "%-26s %12d\n" "requests completed" total;
    Printf.printf "%-26s %12d (typed %d, untyped %d)\n" "request errors"
      (Atomic.get typed_errors + Atomic.get untyped_errors)
      (Atomic.get typed_errors) (Atomic.get untyped_errors);
    Printf.printf "%-26s %12.0f req/s\n" "throughput" tps;
    Printf.printf "%-26s %12.0f req/s (%d reads excluded)\n" "write throughput"
      write_rps (Atomic.get reads);
    Printf.printf "%-26s %12.0f us\n" "latency p50" (pct 50.0);
    Printf.printf "%-26s %12.0f us\n" "latency p95" (pct 95.0);
    Printf.printf "%-26s %12.0f us\n" "latency p99" (pct 99.0);
    Printf.printf "%-26s %12d (2PC commits %d, aborts %d, 1PC %d)\n"
      "cross-shard ops" (Atomic.get xshard_ops) twopc_commit twopc_abort onepc;
    Printf.printf "%-26s %12s (%d row versions across %d shards)\n"
      "distributed verification"
      (if verify_ok then "OK" else "FAILED")
      versions shards;
    if not verify_ok then failwith "distributed verification failed";
    if Atomic.get untyped_errors > 0 then
      failwith "untyped request errors during sharded bench";
    if !json_out then
      write_json ~file:"BENCH_serve_sharded.json"
        ((("experiment", Sjson.String "serve_sharded")
          :: common_fields ~elapsed_s:elapsed)
        @ [
            ("shards", Sjson.Int shards);
            ("clients", Sjson.Int clients);
            ("ops_per_client", Sjson.Int ops_per_client);
            ("xshard_pct", Sjson.Int xshard);
            ("map_epoch", Sjson.Int epoch);
            ("requests", Sjson.Int total);
            ("reads", Sjson.Int (Atomic.get reads));
            ("errors_typed", Sjson.Int (Atomic.get typed_errors));
            ("errors_untyped", Sjson.Int (Atomic.get untyped_errors));
            ("throughput_rps", Sjson.Float tps);
            ("write_rps", Sjson.Float write_rps);
            ("latency_p50_us", Sjson.Float (pct 50.0));
            ("latency_p95_us", Sjson.Float (pct 95.0));
            ("latency_p99_us", Sjson.Float (pct 99.0));
            ("xshard_ops", Sjson.Int (Atomic.get xshard_ops));
            ("twopc_commits", Sjson.Int twopc_commit);
            ("twopc_aborts", Sjson.Int twopc_abort);
            ("onepc_commits", Sjson.Int onepc);
            ("verify_ok", Sjson.Bool verify_ok);
            ("row_versions_verified", Sjson.Int versions);
            ("baseline_file", Sjson.String "BENCH_serve.json");
          ])
  with e ->
    stop_all ();
    raise e

(* ------------------------------------------------------------------ *)
(* Ablations over the design choices DESIGN.md calls out *)

let ablation () =
  print_endline "=== Ablations ===";

  (* 1. Block size: the paper picks 100K txns/block to amortise block cost
     and keep external verification block-granular; the cost of the choice
     is receipt proof length and block-close latency. *)
  print_endline "\n-- block size (2000 txns, 1 row each) --";
  Printf.printf "%10s %8s %14s %16s %14s\n" "block size" "blocks"
    "digest (us)" "verify time (s)" "proof steps";
  List.iter
    (fun block_size ->
      let db =
        Database.create ~block_size ~clock:(deterministic_clock ())
          ~name:(Printf.sprintf "abl-bs-%d" block_size)
          ()
      in
      let table =
        Database.create_ledger_table db ~name:"t" ~columns:wide_columns
          ~key:[ "id" ] ()
      in
      let prng = Workload.Prng.create 11 in
      for i = 1 to 2000 do
        let (), _ =
          Database.with_txn db ~user:"a" (fun txn ->
              Txn.insert txn table (wide_row prng i))
        in
        ()
      done;
      let digest_us =
        let t0 = Unix.gettimeofday () in
        let d = Option.get (Database.generate_digest db) in
        let dt = (Unix.gettimeofday () -. t0) *. 1e6 in
        ignore d;
        dt
      in
      Database.checkpoint db;
      let d = Option.get (Database.generate_digest db) in
      let verify_s =
        Workload.Runner.time (fun () ->
            assert (Verifier.ok (Verifier.verify db ~digests:[ d ])))
      in
      let proof_steps =
        match Receipt.generate db ~txn_id:2 with
        | Ok r -> Merkle.Proof.length r.Receipt.proof
        | Error _ -> -1
      in
      let blocks = List.length (Database_ledger.blocks (Database.ledger db)) in
      Printf.printf "%10d %8d %14.1f %16.3f %14d\n" block_size blocks
        digest_us verify_s proof_steps)
    [ 10; 100; 1000; 100_000 ];

  (* 2. Parallel verification (the paper leans on parallel query
     execution): domains vs tables. *)
  Printf.printf
    "\n-- parallel verification (8 tables x 500 txns; host has %d core(s)) --\n"
    (Domain.recommended_domain_count ());
  let db =
    Database.create ~block_size:100_000 ~clock:(deterministic_clock ())
      ~name:"abl-par" ()
  in
  let tables =
    List.init 8 (fun i ->
        Database.create_ledger_table db
          ~name:(Printf.sprintf "t%d" i)
          ~columns:wide_columns ~key:[ "id" ] ())
  in
  let prng = Workload.Prng.create 3 in
  List.iter
    (fun table ->
      for i = 1 to 500 do
        let (), _ =
          Database.with_txn db ~user:"a" (fun txn ->
              Txn.insert txn table (wide_row prng i))
        in
        ()
      done)
    tables;
  let d = Option.get (Database.generate_digest db) in
  Database.checkpoint db;
  Printf.printf "%6s %16s %9s\n" "jobs" "verify time (s)" "speedup";
  let base = ref 0.0 in
  List.iter
    (fun jobs ->
      let t =
        Workload.Runner.time (fun () ->
            assert (Verifier.ok (Verifier.verify ~jobs db ~digests:[ d ])))
      in
      if jobs = 1 then base := t;
      Printf.printf "%6d %16.3f %8.2fx\n" jobs t (!base /. t))
    [ 1; 2; 4; 8 ];

  (* 3. Streaming Merkle state (§3.2.1): O(log N) space. *)
  print_endline "\n-- streaming Merkle accumulator state --";
  Printf.printf "%12s %14s\n" "leaves" "pending nodes";
  List.iter
    (fun n ->
      let leaf = Ledger_crypto.Sha256.digest_string "x" in
      let acc = ref Merkle.Streaming.empty in
      for _ = 1 to n do
        acc := Merkle.Streaming.add_leaf !acc leaf
      done;
      Printf.printf "%12d %14d\n" n
        (List.length (Merkle.Streaming.levels !acc)))
    [ 100; 10_000; 1_000_000 ]

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("fig7", fig7); ("fig8", fig8); ("fig9", fig9); ("fabric", fabric);
    ("decomp", decomp); ("hashpath", hashpath);
    ("serve", fun () -> if !serve_shards > 0 then serve_sharded () else serve_bench ());
    ("replica", replica_bench); ("ablation", ablation);
  ]

let usage () =
  Printf.eprintf
    "usage: bench [--json] [--clients N] [--duration S] [--warmup S] \
     [--window MS] [--shards N] [--xshard PCT] [--seed N] [--migrate] \
     [experiment ...]\n";
  exit 1

let () =
  let rec parse acc = function
    | [] -> List.rev acc
    | "--json" :: rest ->
        json_out := true;
        parse acc rest
    | "--clients" :: n :: rest -> (
        match int_of_string_opt n with
        | Some v when v > 0 ->
            serve_clients := v;
            parse acc rest
        | _ -> usage ())
    | "--duration" :: s :: rest -> (
        match float_of_string_opt s with
        | Some v when v > 0.0 ->
            serve_duration := v;
            parse acc rest
        | _ -> usage ())
    | "--warmup" :: s :: rest -> (
        match float_of_string_opt s with
        | Some v when v >= 0.0 ->
            serve_warmup := v;
            parse acc rest
        | _ -> usage ())
    | "--window" :: ms :: rest -> (
        match float_of_string_opt ms with
        | Some v when v >= 0.0 ->
            serve_window_ms := v;
            parse acc rest
        | _ -> usage ())
    | "--shards" :: n :: rest -> (
        match int_of_string_opt n with
        | Some v when v > 0 ->
            serve_shards := v;
            parse acc rest
        | _ -> usage ())
    | "--xshard" :: n :: rest -> (
        match int_of_string_opt n with
        | Some v when v >= 0 && v <= 100 ->
            serve_xshard := v;
            parse acc rest
        | _ -> usage ())
    | "--seed" :: n :: rest -> (
        match int_of_string_opt n with
        | Some v when v >= 0 ->
            bench_seed := v;
            parse acc rest
        | _ -> usage ())
    | "--migrate" :: rest ->
        serve_migrate := true;
        parse acc rest
    | ("--clients" | "--duration" | "--warmup" | "--window" | "--shards"
      | "--xshard" | "--seed")
      :: [] ->
        usage ()
    | a :: rest -> parse (a :: acc) rest
  in
  let args = parse [] (List.tl (Array.to_list Sys.argv)) in
  let requested =
    match args with [] -> List.map fst experiments | args -> args
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f ->
          f ();
          print_newline ()
      | None ->
          Printf.eprintf "unknown experiment %s (available: %s)\n" name
            (String.concat ", " (List.map fst experiments));
          exit 1)
    requested
