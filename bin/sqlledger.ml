(* sqlledger — command-line front end.

   demo    scripted walk-through of the paper's Figure 2 scenario
   shell   interactive SQL + ledger commands over a demo database
   fabric  run the blockchain-baseline latency model
*)

open Relation
open Sql_ledger

let vi = Value.int
let vs s = Value.String s

(* ------------------------------------------------------------------ *)
(* Shared demo database: the Figure 2 accounts table. *)

let make_demo_db () =
  let db =
    Database.create ~block_size:4 ~signing_seed:"sqlledger-cli" ~name:"demo" ()
  in
  let accounts =
    Database.create_ledger_table db ~name:"accounts"
      ~columns:
        [
          Column.make "name" (Datatype.Varchar 40);
          Column.make "balance" Datatype.Int;
        ]
      ~key:[ "name" ] ()
  in
  let exec user f = ignore (Database.with_txn db ~user f) in
  exec "nick" (fun t -> Txn.insert t accounts [| vs "Nick"; vi 50 |]);
  exec "john" (fun t -> Txn.insert t accounts [| vs "John"; vi 500 |]);
  exec "joe" (fun t -> Txn.insert t accounts [| vs "Joe"; vi 30 |]);
  exec "mary" (fun t -> Txn.insert t accounts [| vs "Mary"; vi 200 |]);
  exec "nick" (fun t ->
      Txn.update t accounts ~key:[| vs "Nick" |] [| vs "Nick"; vi 100 |]);
  exec "joe" (fun t -> Txn.delete t accounts ~key:[| vs "Joe" |]);
  (db, accounts)

(* ------------------------------------------------------------------ *)
(* demo *)

let run_demo () =
  let db, accounts = make_demo_db () in
  print_endline "== SQL Ledger demo (paper Figure 2) ==\n";
  print_endline "Current table:";
  Format.printf "%a@." Sqlexec.Rel.pp (Database.query db "SELECT * FROM accounts");
  print_endline "Ledger view (all operations, with transaction ids):";
  Format.printf "%a@." Sqlexec.Rel.pp
    (Database.query db "SELECT * FROM accounts__ledger_view");
  let digest = Option.get (Database.generate_digest db) in
  print_endline "Database digest:";
  print_endline (Digest.to_string digest);
  let report = Verifier.verify db ~digests:[ digest ] in
  Format.printf "@.%a@.@." Verifier.pp_report report;
  print_endline "Tampering with John's balance directly in storage...";
  ignore
    (Storage.Table_store.Raw.overwrite_value (Ledger_table.main accounts)
       ~key:[| vs "John" |] ~ordinal:1 (vi 9));
  let report = Verifier.verify db ~digests:[ digest ] in
  Format.printf "%a@." Verifier.pp_report report;
  if Verifier.ok report then 1 else 0

(* ------------------------------------------------------------------ *)
(* shell *)

let shell_help =
  "Enter SQL (SELECT / INSERT / UPDATE / DELETE) or a command:\n\
  \  .tables                          list queryable relations\n\
  \  .digest                          generate + remember a database digest\n\
  \  .verify                          verify against all remembered digests\n\
  \  .receipt <txn_id>                generate a transaction receipt\n\
  \  .tamper <name> <balance>         overwrite a stored balance (attack)\n\
  \  .save <file>                     snapshot the database to a JSON file\n\
  \  .help                            this message\n\
  \  .quit                            exit"

let run_shell load =
  let db, accounts =
    match load with
    | None -> make_demo_db ()
    | Some path -> (
        match Snapshot.load_from_file ~path () with
        | Error e ->
            Printf.eprintf "cannot load %s: %s; starting the demo database\n"
              path e;
            make_demo_db ()
        | Ok db ->
            Printf.printf "loaded snapshot %s\n" path;
            let accounts =
              match Database.find_ledger_table db "accounts" with
              | Some lt -> lt
              | None -> (
                  match Database.user_ledger_tables db with
                  | lt :: _ -> lt
                  | [] -> failwith "snapshot has no ledger tables")
            in
            (db, accounts))
  in
  let digests = ref [] in
  print_endline "sqlledger shell — demo database loaded (table: accounts)";
  print_endline shell_help;
  let continue = ref true in
  while !continue do
    print_string "ledger> ";
    (match In_channel.input_line stdin with
    | None -> continue := false
    | Some line -> (
        let line = String.trim line in
        let words =
          String.split_on_char ' ' line |> List.filter (fun w -> w <> "")
        in
        try
          match words with
          | [] -> ()
          | [ ".quit" ] | [ ".exit" ] -> continue := false
          | [ ".help" ] -> print_endline shell_help
          | [ ".tables" ] ->
              List.iter
                (fun lt ->
                  let n = Ledger_table.name lt in
                  Printf.printf "%s  %s__history  %s__ledger_view  %s__versions\n"
                    n n n n)
                (Database.ledger_tables db);
              print_endline "database_ledger_transactions  database_ledger_blocks"
          | [ ".digest" ] -> (
              match Database.generate_digest db with
              | Some d ->
                  digests := d :: !digests;
                  print_endline (Digest.to_string d)
              | None -> print_endline "nothing committed yet")
          | [ ".verify" ] ->
              Format.printf "%a@." Verifier.pp_report
                (Verifier.verify db ~digests:!digests)
          | [ ".receipt"; txn ] -> (
              match Receipt.generate db ~txn_id:(int_of_string txn) with
              | Ok r -> print_endline (Receipt.to_string r)
              | Error e -> print_endline ("error: " ^ e))
          | [ ".tamper"; name; balance ] ->
              if
                Storage.Table_store.Raw.overwrite_value
                  (Ledger_table.main accounts) ~key:[| vs name |] ~ordinal:1
                  (vi (int_of_string balance))
              then print_endline "stored row mutated behind the ledger's back"
              else print_endline "no such row"
          | [ ".save"; file ] ->
              Snapshot.save_to_file db ~path:file;
              Printf.printf "saved to %s\n" file
          | w :: _ when String.length w > 0 && w.[0] = '.' ->
              print_endline "unknown command; try .help"
          | _ ->
              Format.printf "%a@." Dml.pp_result
                (Dml.execute db ~user:"shell" line)
        with
        | Sqlexec.Parser.Parse_error e
        | Sqlexec.Executor.Exec_error e
        | Types.Ledger_error e
        | Failure e ->
            print_endline ("error: " ^ e)
        | Sqlexec.Lexer.Lex_error e -> print_endline ("error: " ^ e)
        | Storage.Table_store.Duplicate_key e ->
            print_endline ("error: duplicate key " ^ e)
        | Storage.Table_store.Not_found_key e ->
            print_endline ("error: no such key " ^ e)))
  done;
  0

(* ------------------------------------------------------------------ *)
(* fabric *)

let run_fabric offered txns =
  let r = Fabric_sim.simulate ~offered_tps:offered ~txns () in
  Printf.printf
    "offered %.0f tps over %d txns:\n\
    \  achieved  %.0f tps (saturation %.0f)\n\
    \  latency   avg %.0f ms, p50 %.0f ms, p99 %.0f ms\n"
    r.Fabric_sim.offered_tps txns r.Fabric_sim.achieved_tps
    (Fabric_sim.saturation_tps ()) r.Fabric_sim.avg_latency_ms
    r.Fabric_sim.p50_latency_ms r.Fabric_sim.p99_latency_ms;
  0

(* ------------------------------------------------------------------ *)
(* verify *)

let run_verify snapshot digest_files jobs tables =
  match Snapshot.load_from_file ~path:snapshot () with
  | Error e ->
      Printf.eprintf "cannot load %s: %s\n" snapshot e;
      1
  | Ok db -> (
      let parse_digest path =
        match In_channel.with_open_text path In_channel.input_all with
        | exception Sys_error e -> Error e
        | contents -> Digest.of_string contents
      in
      let rec load_digests acc = function
        | [] -> Ok (List.rev acc)
        | path :: rest -> (
            match parse_digest path with
            | Ok d -> load_digests (d :: acc) rest
            | Error e -> Error (path ^ ": " ^ e))
      in
      match load_digests [] digest_files with
      | Error e ->
          Printf.eprintf "cannot read digest: %s\n" e;
          1
      | Ok digests -> (
          let jobs = if jobs <= 0 then Domain.recommended_domain_count () else jobs in
          match
            List.find_opt
              (fun n -> Database.find_ledger_table db n = None)
              tables
          with
          | Some missing ->
              Printf.eprintf "no such ledger table: %s\n" missing;
              1
          | None ->
          let tables = if tables = [] then None else Some tables in
          if digests = [] then
            print_endline
              "note: no --digest supplied; checking internal consistency only \
               (invariants 2-5), with no external anchor";
          let report = Verifier.verify ?tables ~jobs db ~digests in
          Format.printf "%a@." Verifier.pp_report report;
          if Verifier.ok report then 0 else 1))

(* ------------------------------------------------------------------ *)
(* failpoints *)

let run_failpoints () =
  (* Touch the modules that register failpoints at initialisation so the
     linker keeps them (and their registrations) in this binary. *)
  ignore (Durable.wal_path "." : string);
  ignore (Trusted_store.Worm_store.escape_blob_name "" : string);
  List.iter print_endline (Fault.points ());
  0

(* ------------------------------------------------------------------ *)
(* recover *)

let run_recover failpoints wal snapshot verify_flag =
  List.iter (fun (name, mode) -> Fault.set name mode) failpoints;
  match Wal_replay.replay_file ?snapshot_path:snapshot ~wal_path:wal () with
  | exception (Fault.Injected_crash e | Fault.Injected_error e) ->
      Printf.eprintf "fault injected: %s\n" e;
      2
  | Error e ->
      Printf.eprintf "recovery failed: %s\n" e;
      1
  | Ok db ->
      Printf.printf "recovered database %s (%d ledger tables)\n"
        (Database.database_id db)
        (List.length (Database.ledger_tables db));
      if verify_flag then begin
        let report = Verifier.verify db ~digests:[] in
        Format.printf "%a@." Verifier.pp_report report;
        if Verifier.ok report then 0 else 1
      end
      else 0

(* ------------------------------------------------------------------ *)
(* serve *)

(* Load the deployment's shared principal-auth secret. The wire carries
   HMAC tags keyed by these file contents (trimmed, so a trailing
   newline from `echo` doesn't silently change the key). *)
let load_auth_secret = function
  | None -> Ok None
  | Some path -> (
      match In_channel.with_open_bin path In_channel.input_all with
      | exception Sys_error e -> Error e
      | contents -> (
          match String.trim contents with
          | "" -> Error (path ^ " is empty")
          | secret -> Ok (Some secret)))

(* Exit codes (documented in README.md):
     0  clean shutdown (SIGTERM/SIGINT drained)
     1  startup failure other than the port (e.g. recovery failed)
     2  port already in use, or an injected fault crashed the server *)
let run_serve dir port host name max_conns max_frame idle_timeout
    request_timeout group_commit_window_ms max_inflight queue_depth
    block_size signing_seed auth_secret_file failpoints =
  List.iter (fun (n, m) -> Fault.set n m) failpoints;
  match load_auth_secret auth_secret_file with
  | Error e ->
      Printf.eprintf "sqlledger serve: --auth-secret: %s\n" e;
      1
  | Ok auth_secret -> (
  let config =
    {
      Ledger_server.Server.default_config with
      host;
      port;
      dir;
      db_name = name;
      max_connections = max_conns;
      max_frame;
      idle_timeout;
      request_timeout;
      group_commit_window = group_commit_window_ms /. 1000.0;
      max_inflight;
      max_queue_depth = queue_depth;
      block_size = (if block_size > 0 then Some block_size else None);
      signing_seed = (if signing_seed = "" then None else Some signing_seed);
      auth_secret;
    }
  in
  match Ledger_server.Server.start ~config () with
  | Error (Ledger_server.Server.Port_in_use msg) ->
      Printf.eprintf "sqlledger serve: cannot listen on %s\n" msg;
      2
  | Error (Ledger_server.Server.Startup msg) ->
      Printf.eprintf "sqlledger serve: %s\n" msg;
      1
  | Ok srv -> (
      Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
      let stop _ = Ledger_server.Server.request_shutdown srv in
      Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
      Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
      Sys.set_signal Sys.sigusr1
        (Sys.Signal_handle (fun _ -> Ledger_server.Server.request_stats srv));
      Printf.printf "sqlledger: serving %s on %s:%d (SIGUSR1 dumps metrics)\n%!"
        dir host
        (Ledger_server.Server.port srv);
      match Ledger_server.Server.run srv with
      | () -> 0
      | exception (Fault.Injected_crash e | Fault.Injected_error e) ->
          Printf.eprintf "fault injected: %s\n" e;
          2))

(* ------------------------------------------------------------------ *)
(* replica / promote *)

(* Exit codes match serve: 0 clean shutdown, 1 startup failure, 2 port
   in use or injected fault. *)
let run_replica dir port host primary idle_timeout request_timeout
    auth_secret_file failpoints =
  List.iter (fun (n, m) -> Fault.set n m) failpoints;
  match load_auth_secret auth_secret_file with
  | Error e ->
      Printf.eprintf "sqlledger replica: --auth-secret: %s\n" e;
      1
  | Ok auth_secret -> (
  match String.rindex_opt primary ':' with
  | None ->
      Printf.eprintf "sqlledger replica: --primary expects HOST:PORT, got %s\n"
        primary;
      1
  | Some i -> (
      let primary_host = String.sub primary 0 i in
      let primary_port =
        int_of_string_opt
          (String.sub primary (i + 1) (String.length primary - i - 1))
      in
      match primary_port with
      | None ->
          Printf.eprintf "sqlledger replica: bad port in --primary %s\n"
            primary;
          1
      | Some primary_port -> (
          let config =
            {
              Ledger_server.Server.default_config with
              host;
              port;
              dir;
              idle_timeout;
              request_timeout;
              auth_secret;
            }
          in
          match
            Ledger_server.Replica_node.start ~config ~primary_host
              ~primary_port ()
          with
          | Error (Ledger_server.Server.Port_in_use msg) ->
              Printf.eprintf "sqlledger replica: cannot listen on %s\n" msg;
              2
          | Error (Ledger_server.Server.Startup msg) ->
              Printf.eprintf "sqlledger replica: %s\n" msg;
              1
          | Ok node -> (
              Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
              let stop _ = Ledger_server.Replica_node.request_shutdown node in
              Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
              Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
              Sys.set_signal Sys.sigusr1
                (Sys.Signal_handle
                   (fun _ -> Ledger_server.Replica_node.request_stats node));
              Printf.printf
                "sqlledger: replica of %s serving reads from %s on %s:%d \
                 (SIGUSR1 dumps metrics)\n\
                 %!"
                primary dir host
                (Ledger_server.Replica_node.port node);
              match Ledger_server.Replica_node.run node with
              | () -> 0
              | exception (Fault.Injected_crash e | Fault.Injected_error e) ->
                  Printf.eprintf "fault injected: %s\n" e;
                  2))))

(* ------------------------------------------------------------------ *)
(* coord *)

(* Exit codes match serve: 0 clean shutdown, 1 startup failure, 2 port
   in use or injected fault. *)
let run_coord dir port host name shards idle_timeout request_timeout
    auth_secret_file failpoints =
  List.iter (fun (n, m) -> Fault.set n m) failpoints;
  match load_auth_secret auth_secret_file with
  | Error e ->
      Printf.eprintf "sqlledger coord: --auth-secret: %s\n" e;
      1
  | Ok auth_secret -> (
  let parse_addr a =
    match String.rindex_opt a ':' with
    | None -> Error a
    | Some i -> (
        match
          int_of_string_opt (String.sub a (i + 1) (String.length a - i - 1))
        with
        | Some p when p > 0 -> Ok (String.sub a 0 i, p)
        | _ -> Error a)
  in
  let parsed = List.map parse_addr shards in
  match
    List.find_map (function Error bad -> Some bad | Ok _ -> None) parsed
  with
  | Some bad ->
      Printf.eprintf "sqlledger coord: --shard expects HOST:PORT, got %s\n" bad;
      1
  | None -> (
      let config =
        {
          Shard.Coordinator.default_config with
          host;
          port;
          dir;
          name;
          idle_timeout;
          request_timeout;
          auth_secret;
        }
      in
      match
        Shard.Coordinator.start ~config
          ~shards:(List.map Result.get_ok parsed) ()
      with
      | Error (Shard.Coordinator.Port_in_use msg) ->
          Printf.eprintf "sqlledger coord: cannot listen on %s\n" msg;
          2
      | Error (Shard.Coordinator.Startup msg) ->
          Printf.eprintf "sqlledger coord: %s\n" msg;
          1
      | Ok coord -> (
          Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
          let stop _ = Shard.Coordinator.request_shutdown coord in
          Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
          Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
          let m = Shard.Coordinator.map coord in
          Printf.printf
            "sqlledger: coordinating %d shard(s) (map epoch %d) from %s on \
             %s:%d\n\
             %!"
            (Shard.Shard_map.count m) (Shard.Shard_map.epoch m) dir host
            (Shard.Coordinator.port coord);
          match Shard.Coordinator.run coord with
          | () -> 0
          | exception (Fault.Injected_crash e | Fault.Injected_error e) ->
              Printf.eprintf "fault injected: %s\n" e;
              2)))

let run_promote dir =
  match Repl.Client.promote_dir ~dir () with
  | Error e ->
      Printf.eprintf "sqlledger promote: %s\n" e;
      1
  | Ok durable ->
      let db = Durable.db durable in
      Printf.printf
        "promoted %s: database %s is now a primary (%d ledger tables, WAL \
         at LSN %d); serve it with `sqlledger serve --dir %s`\n"
        dir
        (Database.database_id db)
        (List.length (Database.ledger_tables db))
        (Aries.Wal.last_lsn (Database_ledger.wal (Database.ledger db)))
        dir;
      0

(* ------------------------------------------------------------------ *)
(* audit *)

let split_hostport flag s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "%s expects HOST:PORT, got %s" flag s)
  | Some i -> (
      match
        int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
      with
      | Some p when p > 0 -> Ok (String.sub s 0 i, p)
      | _ -> Error (Printf.sprintf "%s: bad port in %s" flag s))

(* Offline one-shot audit of a stopped (or copied) data directory: full
   verify when no mark is persisted yet, incremental from the mark
   otherwise, advancing the mark on success. *)
let audit_offline ~dir ~bootstrap =
  match Durable.open_dir ~dir ~name:(Filename.basename dir) () with
  | Error e ->
      Printf.eprintf "sqlledger audit: %s\n" e;
      1
  | Ok durable -> (
      let db = Durable.db durable in
      let path = Ledger_server.Auditor.mark_path ~dir in
      let mark =
        if bootstrap then Ok None
        else
          Result.map
            (Option.map (fun (m : Trusted_store.Audit_mark.t) ->
                 m.Trusted_store.Audit_mark.mark))
            (Trusted_store.Audit_mark.load ~path)
      in
      match mark with
      | Error e ->
          Printf.eprintf "sqlledger audit: %s\n" e;
          1
      | Ok mark -> (
          let fail_with violations pinned =
            List.iter
              (fun v ->
                Printf.printf "audit: %s\n" (Verifier.violation_to_string v))
              violations;
            (match pinned with
            | Some b ->
                Printf.printf "audit: TAMPERING DETECTED at block %d\n" b
            | None -> Printf.printf "audit: TAMPERING DETECTED\n");
            4
          in
          let bootstrap_ok =
            match mark with
            | Some m ->
                Printf.printf
                  "audit: resuming from persisted mark (block %d)\n"
                  m.Incremental_audit.m_block_id;
                Ok ()
            | None ->
                let report = Verifier.verify db ~digests:[] in
                if Verifier.ok report then begin
                  Printf.printf
                    "audit: bootstrap verify OK (%d blocks, %d transactions, \
                     %d row versions)\n"
                    report.Verifier.blocks_checked
                    report.Verifier.transactions_checked
                    report.Verifier.versions_checked;
                  Ok ()
                end
                else Error report.Verifier.violations
          in
          match bootstrap_ok with
          | Error violations ->
              fail_with violations
                (Incremental_audit.pinned_block
                   {
                     Incremental_audit.o_mark = None;
                     o_violations = violations;
                     o_blocks_checked = 0;
                   })
          | Ok () -> (
              let outcome = Incremental_audit.scan db ~from:mark in
              if not (Incremental_audit.ok outcome) then
                fail_with outcome.Incremental_audit.o_violations
                  (Incremental_audit.pinned_block outcome)
              else begin
                (match outcome.Incremental_audit.o_mark with
                | Some m ->
                    Trusted_store.Audit_mark.save ~path m;
                    Printf.printf
                      "audit: OK — verified %d new block(s); mark -> block \
                       %d\n"
                      outcome.Incremental_audit.o_blocks_checked
                      m.Incremental_audit.m_block_id
                | None -> Printf.printf "audit: OK — no closed blocks yet\n");
                0
              end)))

(* Exit codes (documented in README.md):
     0  clean (offline: ledger verified; follow: operator shutdown)
     1  startup/usage failure
     2  injected fault crashed the daemon
     4  tampering detected *)
let run_audit dir primary follow bootstrap failpoints =
  List.iter (fun (n, m) -> Fault.set n m) failpoints;
  match primary with
  | None ->
      if follow then begin
        Printf.eprintf "sqlledger audit: --follow requires --primary\n";
        1
      end
      else audit_offline ~dir ~bootstrap
  | Some primary -> (
      match split_hostport "--primary" primary with
      | Error e ->
          Printf.eprintf "sqlledger audit: %s\n" e;
          1
      | Ok (primary_host, primary_port) -> (
          match
            Ledger_server.Auditor.create ~log:(fun l ->
                print_endline l;
                flush stdout)
              ~bootstrap ~primary_host ~primary_port ~dir ()
          with
          | Error e ->
              Printf.eprintf "sqlledger audit: %s\n" e;
              1
          | Ok auditor -> (
              Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
              let stop _ = Ledger_server.Auditor.stop auditor in
              Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
              Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
              Printf.printf
                "sqlledger: auditing %s from %s (mark file %s)\n%!" primary
                dir
                (Ledger_server.Auditor.mark_path ~dir);
              match Ledger_server.Auditor.run auditor with
              | None ->
                  Ledger_server.Auditor.close auditor;
                  0
              | Some v ->
                  Ledger_server.Auditor.close auditor;
                  ignore v;
                  4
              | exception (Fault.Injected_crash e | Fault.Injected_error e)
                ->
                  Printf.eprintf "fault injected: %s\n" e;
                  2)))

(* ------------------------------------------------------------------ *)
(* receipt verify (fully offline) *)

(* Exit codes: 0 receipt verifies, 1 unreadable/malformed input, 4 the
   receipt fails verification (the typed reason is printed). *)
let run_receipt_verify file digest_file fingerprint =
  let read path =
    match In_channel.with_open_text path In_channel.input_all with
    | exception Sys_error e -> Error e
    | contents -> Ok contents
  in
  match Result.bind (read file) Receipt.of_string with
  | Error e ->
      Printf.eprintf "sqlledger receipt: %s: %s\n" file e;
      1
  | Ok r -> (
      let digest =
        match digest_file with
        | None -> Ok None
        | Some path ->
            Result.map Option.some
              (Result.bind (read path) Digest.of_string)
      in
      match digest with
      | Error e ->
          Printf.eprintf "sqlledger receipt: %s\n" e;
          1
      | Ok digest -> (
          let expected_fingerprint =
            match fingerprint with
            | "" -> None
            | hex -> (
                match Ledger_crypto.Hex.decode hex with
                | s -> Some s
                | exception _ -> Some hex)
          in
          match Receipt.verify ?digest ?expected_fingerprint r with
          | Ok () ->
              Printf.printf
                "receipt OK: transaction %d (user %s) is in block %d%s%s\n"
                r.Receipt.entry.Types.txn_id r.Receipt.entry.Types.user
                r.Receipt.block.Types.block_id
                (if digest <> None then ", anchored to the pinned digest"
                 else "")
                (if r.Receipt.signature <> None then ", block signature valid"
                 else "");
              0
          | Error f ->
              Printf.eprintf "receipt verification FAILED: %s\n"
                (Receipt.failure_to_string f);
              4))

(* ------------------------------------------------------------------ *)
(* tamper (attack simulator for drills and CI) *)

let run_tamper dir block =
  match Durable.open_dir ~dir ~name:(Filename.basename dir) () with
  | Error e ->
      Printf.eprintf "sqlledger tamper: %s\n" e;
      1
  | Ok durable -> (
      let db = Durable.db durable in
      let attack = Tamper.Fork_chain { block_id = block } in
      match Tamper.apply db attack with
      | Error e ->
          Printf.eprintf "sqlledger tamper: %s\n" e;
          1
      | Ok () ->
          Durable.checkpoint durable;
          Printf.printf "tampered %s: %s\n" dir (Tamper.describe attack);
          0)

(* ------------------------------------------------------------------ *)
(* client *)

module Protocol = Wire.Protocol

let pp_wire_rows columns rows =
  print_endline (String.concat "\t" columns);
  List.iter
    (fun row ->
      print_endline (String.concat "\t" (List.map Value.to_string row)))
    rows

(* Print a response; returns the exit code (0 ok, 1 server error). *)
let print_response = function
  | Protocol.Pong ->
      print_endline "pong";
      0
  | Protocol.Ok_r ->
      print_endline "ok";
      0
  | Protocol.Txn_r { txn_id = Some id } ->
      Printf.printf "transaction %d\n" id;
      0
  | Protocol.Txn_r { txn_id = None } ->
      print_endline "rolled back";
      0
  | Protocol.Rows_r { columns; rows } ->
      pp_wire_rows columns rows;
      0
  | Protocol.Affected_r { rows; txn_id } ->
      (match txn_id with
      | Some id -> Printf.printf "%d row(s) affected (txn %d)\n" rows id
      | None -> Printf.printf "%d row(s) affected\n" rows);
      0
  | Protocol.Digest_r json | Protocol.Receipt_r json ->
      print_endline (Sjson.to_string ~pretty:true json);
      0
  | Protocol.Receipts_r { receipts; pending; block_keys } ->
      (* Re-attach the per-block key material the batch carried once, so
         what prints (and gets saved for offline verification) is the
         self-contained single-receipt format. *)
      let receipts = Receipt.inflate_batch ~block_keys receipts in
      print_endline
        (Sjson.to_string ~pretty:true (Sjson.List receipts));
      if pending <> [] then
        Printf.printf "pending (open block): %s\n"
          (String.concat ", " (List.map string_of_int pending));
      0
  | Protocol.Verify_r v ->
      Printf.printf
        "verification: %s (%d blocks, %d transactions, %d row versions \
         checked)\n"
        (if v.Protocol.vs_ok then "OK"
         else
           Printf.sprintf "%d violation(s)"
             (List.length v.Protocol.vs_violations))
        v.Protocol.vs_blocks v.Protocol.vs_transactions v.Protocol.vs_versions;
      List.iter
        (fun s -> Printf.printf "  - %s\n" s)
        v.Protocol.vs_violations;
      if v.Protocol.vs_ok then 0 else 1
  | Protocol.Stats_r lines ->
      List.iter print_endline lines;
      0
  | Protocol.Shard_map_r { epoch; shards } ->
      Printf.printf "shard map epoch %d, %d shard(s)\n" epoch
        (List.length shards);
      List.iteri
        (fun i (host, port) -> Printf.printf "  shard %d: %s:%d\n" i host port)
        shards;
      0
  | Protocol.Migrate_r { copied; last_key; finished } ->
      Printf.printf "migrated %d row(s)%s%s\n" copied
        (match last_key with
        | [] -> ""
        | key ->
            Printf.sprintf " (cursor at %s)"
              (String.concat "," (List.map Value.to_string key)))
        (if finished then "; source exhausted" else "");
      0
  | Protocol.Bye ->
      print_endline "bye";
      0
  | Protocol.Welcome _ ->
      print_endline "connected";
      0
  | Protocol.Subscribed _ | Protocol.Snapshot_r _ ->
      (* Replication handshake replies; never seen by the CLI client. *)
      print_endline "unexpected replication response";
      1
  | Protocol.Error_r { code; message; _ } ->
      Printf.eprintf "error (%s): %s\n"
        (Protocol.error_code_to_string code)
        message;
      1

let parse_colspec spec =
  spec |> String.split_on_char ','
  |> List.filter_map (fun part ->
         match
           String.split_on_char ' ' (String.trim part)
           |> List.filter (fun w -> w <> "")
         with
         | [] -> None
         | [ name; ty ] -> Some (Ok (name, ty))
         | _ -> Some (Error part))
  |> List.fold_left
       (fun acc item ->
         match (acc, item) with
         | Error e, _ -> Error e
         | Ok cols, Ok c -> Ok (cols @ [ c ])
         | Ok _, Error part -> Error part)
       (Ok [])

let split_commas s =
  String.split_on_char ',' s |> List.map String.trim
  |> List.filter (fun w -> w <> "")

(* Edit distance for "did you mean" suggestions on unknown commands. *)
let levenshtein a b =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) Fun.id in
  let curr = Array.make (lb + 1) 0 in
  for i = 1 to la do
    curr.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      curr.(j) <-
        min (min (prev.(j) + 1) (curr.(j - 1) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit curr 0 prev 0 (lb + 1)
  done;
  prev.(lb)

(* "; did you mean X?" when some known command is plausibly what the
   user typed — within a third of its length in edits (minimum 1, so
   one-letter typos always match), else nothing. *)
let suggest known w =
  let w = String.lowercase_ascii w in
  let best =
    List.fold_left
      (fun acc cand ->
        let d = levenshtein w cand in
        match acc with
        | Some (_, bd) when bd <= d -> acc
        | _ -> Some (cand, d))
      None known
  in
  match best with
  | Some (cand, d) when d <= max 1 (String.length cand / 3) ->
      Printf.sprintf "; did you mean %s?" cand
  | _ -> ""

let one_shot_commands =
  [
    "ping"; "exec"; "query"; "digest"; "receipt"; "receipts"; "verify";
    "create"; "create-plain"; "migrate"; "checkpoint"; "stats"; "shard-map";
  ]

(* Map the one-shot positional arguments to a request. *)
let client_request args digest_files =
  let load_digests () =
    List.fold_left
      (fun acc path ->
        match acc with
        | Error _ -> acc
        | Ok ds -> (
            match In_channel.with_open_text path In_channel.input_all with
            | exception Sys_error e -> Error e
            | contents -> (
                match Sjson.of_string contents with
                | exception Sjson.Parse_error e -> Error (path ^ ": " ^ e)
                | json -> Ok (ds @ [ json ]))))
      (Ok []) digest_files
  in
  match args with
  | [ "ping" ] -> Ok Protocol.Ping
  | [ "exec"; sql ] -> Ok (Protocol.Exec { sql })
  | [ "query"; sql ] -> Ok (Protocol.Query { sql })
  | [ "digest" ] -> Ok Protocol.Digest
  | [ "receipt"; txn ] -> (
      match int_of_string_opt txn with
      | Some txn_id -> Ok (Protocol.Receipt { txn_id })
      | None -> Error ("receipt expects a transaction id, got " ^ txn))
  | "verify" :: tables -> (
      match load_digests () with
      | Ok digests -> Ok (Protocol.Verify { tables; digests })
      | Error e -> Error ("cannot read digest: " ^ e))
  | [ ("create" | "create-plain"); name; colspec ]
  | [ ("create" | "create-plain"); name; colspec; _ ] -> (
      match parse_colspec colspec with
      | Error part -> Error ("bad column spec: " ^ part)
      | Ok columns ->
          let key =
            match args with
            | [ _; _; _; keys ] -> split_commas keys
            | _ -> (
                match columns with (n, _) :: _ -> [ n ] | [] -> [])
          in
          let ledger = List.hd args = "create" in
          Ok (Protocol.Create_table { name; columns; key; ledger }))
  | "receipts" :: ids -> (
      let parsed = List.map int_of_string_opt ids in
      if ids = [] then Error "receipts expects transaction ids"
      else if List.mem None parsed then
        Error "receipts expects transaction ids"
      else Ok (Protocol.Receipts { txn_ids = List.map Option.get parsed }))
  | [ "checkpoint" ] -> Ok Protocol.Checkpoint
  | [ "stats" ] -> Ok Protocol.Stats
  | [ "shard-map" ] -> Ok Protocol.Shard_map
  | "migrate" :: _ ->
      Error
        "use the dedicated `sqlledger migrate` command (durable cursor, \
         resume, differential check)"
  | cmd :: _ ->
      Error
        (Printf.sprintf "unknown client command %s%s" cmd
           (suggest one_shot_commands cmd))
  | [] -> Error "no command"

let client_repl_help =
  "Enter SQL (runs as exec) or a command:\n\
  \  .begin / .commit / .rollback      session transaction control\n\
  \  .digest                           close the block, print the digest\n\
  \  .receipt <txn_id>                 fetch a transaction receipt\n\
  \  .receipts <txn_id> ...            fetch a batch of receipts\n\
  \  .verify [table ...]               server-side ledger verification\n\
  \  .create <table> <col type, ...> [| key,cols]   create a ledger table\n\
  \  .create-plain <table> <col type, ...> [| key,cols]\n\
  \                                    create a plain (migratable) table\n\
  \  .migrate <source> <target> [batch]\n\
  \                                    copy one batch into a ledger table\n\
  \  .checkpoint                       force a durable checkpoint\n\
  \  .shard-map                        coordinator shard map (sharded mode)\n\
  \  .stats                            server metrics\n\
  \  .ping / .help / .quit"

let repl_commands =
  [
    ".quit"; ".exit"; ".help"; ".ping"; ".begin"; ".commit"; ".rollback";
    ".digest"; ".receipt"; ".receipts"; ".verify"; ".create"; ".create-plain";
    ".migrate"; ".checkpoint"; ".shard-map"; ".stats";
  ]

let run_repl cl =
  Printf.printf "connected to %s (database %s)\n"
    (Wire.Client.server cl)
    (Wire.Client.database cl);
  print_endline client_repl_help;
  let continue = ref true in
  while !continue do
    print_string "ledger> ";
    match In_channel.input_line stdin with
    | None -> continue := false
    | Some line -> (
        let line = String.trim line in
        let words =
          String.split_on_char ' ' line |> List.filter (fun w -> w <> "")
        in
        let send req =
          match Wire.Client.call cl req with
          | Ok resp -> ignore (print_response resp : int)
          | Error e ->
              Printf.eprintf "connection error: %s\n" e;
              continue := false
        in
        match words with
        | [] -> ()
        | [ ".quit" ] | [ ".exit" ] -> continue := false
        | [ ".help" ] -> print_endline client_repl_help
        | [ ".ping" ] -> send Protocol.Ping
        | [ ".begin" ] -> send Protocol.Begin
        | [ ".commit" ] -> send Protocol.Commit
        | [ ".rollback" ] -> send Protocol.Rollback
        | [ ".digest" ] -> send Protocol.Digest
        | [ ".receipt"; txn ] -> (
            match int_of_string_opt txn with
            | Some txn_id -> send (Protocol.Receipt { txn_id })
            | None -> print_endline "usage: .receipt <txn_id>")
        | ".receipts" :: ids when ids <> [] -> (
            match
              List.map
                (fun i ->
                  match int_of_string_opt i with
                  | Some v -> v
                  | None -> failwith "usage: .receipts <txn_id> ...")
                ids
            with
            | txn_ids -> send (Protocol.Receipts { txn_ids })
            | exception Failure m -> print_endline m)
        | ".verify" :: tables ->
            send (Protocol.Verify { tables; digests = [] })
        | [ ".stats" ] -> send Protocol.Stats
        | [ ".checkpoint" ] -> send Protocol.Checkpoint
        | [ ".shard-map" ] -> send Protocol.Shard_map
        | ".migrate" :: source :: target :: rest -> (
            match
              match rest with
              | [] -> Some 512
              | [ b ] -> int_of_string_opt b
              | _ -> None
            with
            | None -> print_endline "usage: .migrate <source> <target> [batch]"
            | Some limit ->
                send
                  (Protocol.Migrate { source; target; after_key = []; limit }))
        | ((".create" | ".create-plain") as cmd) :: name :: rest -> (
            let spec = String.concat " " rest in
            let spec, key =
              (* `.create t name varchar(40), balance int | name` — the
                 part after '|' names the primary-key columns. *)
              match String.index_opt spec '|' with
              | Some i ->
                  ( String.sub spec 0 i,
                    split_commas
                      (String.sub spec (i + 1) (String.length spec - i - 1)) )
              | None -> (spec, [])
            in
            match parse_colspec spec with
            | Error part -> print_endline ("bad column spec: " ^ part)
            | Ok columns ->
                let key =
                  if key <> [] then key
                  else match columns with (n, _) :: _ -> [ n ] | [] -> []
                in
                send
                  (Protocol.Create_table
                     { name; columns; key; ledger = cmd = ".create" }))
        | w :: _ when String.length w > 0 && w.[0] = '.' ->
            Printf.printf "unknown command %s%s; try .help\n" w
              (suggest repl_commands w)
        | _ -> send (Protocol.Exec { sql = line }))
  done;
  0

(* Exit codes (documented in README.md):
     0  success        1  the server answered with an error (or verify failed)
     2  cannot connect 3  protocol-version mismatch
     5  principal authentication refused *)
let run_client host port deadline retries principal secret_file args
    digest_files =
  let deadline_s = if deadline > 0.0 then Some deadline else None in
  match load_auth_secret secret_file with
  | Error e ->
      Printf.eprintf "sqlledger client: --secret-file: %s\n" e;
      1
  | Ok secret -> (
  match
    Wire.Client.connect_retry ~max_attempts:(retries + 1) ?deadline_s
      ?principal ?secret ~host ~port ()
  with
  | Error (Wire.Client.Refused msg) ->
      Printf.eprintf "sqlledger client: %s\n" msg;
      2
  | Error (Wire.Client.Mismatch msg) ->
      Printf.eprintf "sqlledger client: %s\n" msg;
      3
  | Error (Wire.Client.Auth msg) ->
      Printf.eprintf "sqlledger client: %s\n" msg;
      5
  | Error (Wire.Client.Handshake msg) ->
      Printf.eprintf "sqlledger client: %s\n" msg;
      2
  | Ok cl ->
      let code =
        if args = [] then run_repl cl
        else
          match client_request args digest_files with
          | Error e ->
              Printf.eprintf "sqlledger client: %s\n" e;
              1
          | Ok req -> (
              match
                if retries > 0 then
                  Wire.Client.call_retry ?deadline_s
                    ~max_attempts:(retries + 1) cl req
                else Wire.Client.call ?deadline_s cl req
              with
              | Ok resp -> print_response resp
              | Error e ->
                  Printf.eprintf "sqlledger client: %s\n" e;
                  2)
      in
      Wire.Client.close cl;
      code)

(* ------------------------------------------------------------------ *)
(* migrate *)

(* Exit codes: 0 migrated and differential check green, 1 migration or
   check failed, 2 cannot connect, 3 version mismatch, 5 auth refused. *)
let run_migrate host port principal secret_file source target batch cursor
    retries =
  match load_auth_secret secret_file with
  | Error e ->
      Printf.eprintf "sqlledger migrate: --secret-file: %s\n" e;
      1
  | Ok secret -> (
      match
        Wire.Client.connect_retry ~max_attempts:(retries + 1) ?principal
          ?secret ~host ~port ()
      with
      | Error (Wire.Client.Refused msg | Wire.Client.Handshake msg) ->
          Printf.eprintf "sqlledger migrate: %s\n" msg;
          2
      | Error (Wire.Client.Mismatch msg) ->
          Printf.eprintf "sqlledger migrate: %s\n" msg;
          3
      | Error (Wire.Client.Auth msg) ->
          Printf.eprintf "sqlledger migrate: %s\n" msg;
          5
      | Ok cl ->
          let log line = Printf.printf "migrate: %s\n%!" line in
          let code =
            match
              Migrate.Driver.run ~batch ?cursor_path:cursor ~log ~client:cl
                ~source ~target ()
            with
            | Error e ->
                Printf.eprintf "sqlledger migrate: %s\n" e;
                1
            | Ok s ->
                Printf.printf
                  "migrate: OK — %d row(s) copied in %d batch(es)%s; target \
                   %s holds %d row(s), differential check green\n"
                  s.Migrate.Driver.rows_copied s.Migrate.Driver.batches
                  (if s.Migrate.Driver.resumed_at > 0 then
                     Printf.sprintf " (resumed past %d already copied)"
                       s.Migrate.Driver.resumed_at
                   else "")
                  target s.Migrate.Driver.rows_total;
                (match s.Migrate.Driver.digest with
                | Some json ->
                    Printf.printf "migrate: anchoring digest:\n%s\n"
                      (Sjson.to_string ~pretty:true json)
                | None -> ());
                0
          in
          Wire.Client.close cl;
          code)

(* ------------------------------------------------------------------ *)
(* chaos-proxy *)

(* Exit codes: 0 clean stop (SIGTERM/SIGINT), 1 startup failure. *)
let run_chaos_proxy host port upstream seed steps min_hold max_hold loop =
  match String.rindex_opt upstream ':' with
  | None ->
      Printf.eprintf
        "sqlledger chaos-proxy: --upstream expects HOST:PORT, got %s\n"
        upstream;
      1
  | Some i -> (
      let upstream_host = String.sub upstream 0 i in
      match
        int_of_string_opt
          (String.sub upstream (i + 1) (String.length upstream - i - 1))
      with
      | None ->
          Printf.eprintf "sqlledger chaos-proxy: bad port in --upstream %s\n"
            upstream;
          1
      | Some upstream_port -> (
          match
            Chaos.Proxy.start ~host ~port ~upstream_host ~upstream_port ()
          with
          | Error e ->
              Printf.eprintf "sqlledger chaos-proxy: %s\n" e;
              1
          | Ok proxy ->
              let stopping = Atomic.make false in
              let stop _ = Atomic.set stopping true in
              Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
              Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
              Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
              Printf.printf
                "chaos proxy: %s:%d -> %s:%d (seed %d, %d fault steps%s)\n%!"
                host
                (Chaos.Proxy.port proxy)
                upstream_host upstream_port seed steps
                (if loop then ", looping" else "");
              let schedule =
                Chaos.Schedule.random ~steps ~min_hold ~max_hold ~seed ()
              in
              List.iter
                (fun line -> Printf.printf "  %s\n%!" line)
                (Chaos.Schedule.describe schedule);
              let stopped () = Atomic.get stopping in
              if steps > 0 then begin
                Chaos.Schedule.run ~stop:stopped schedule proxy;
                while loop && not (stopped ()) do
                  Chaos.Schedule.run ~stop:stopped schedule proxy
                done
              end;
              (* Schedule exhausted (or none requested): keep forwarding
                 healthily until signalled. *)
              while not (stopped ()) do
                Thread.delay 0.2
              done;
              let s = Chaos.Proxy.stats proxy in
              Chaos.Proxy.stop proxy;
              Printf.printf
                "chaos proxy: %d connections (%d killed), %d bytes up, %d \
                 bytes down\n"
                s.Chaos.Proxy.conns_total s.Chaos.Proxy.conns_killed
                s.Chaos.Proxy.bytes_to_upstream s.Chaos.Proxy.bytes_to_client;
              0))

(* ------------------------------------------------------------------ *)
(* cmdliner wiring *)

open Cmdliner

let demo_cmd =
  Cmd.v (Cmd.info "demo" ~doc:"Scripted Figure 2 walk-through")
    Term.(const run_demo $ const ())

let shell_cmd =
  let load =
    Arg.(value & opt (some file) None & info [ "load" ] ~doc:"Load a snapshot file")
  in
  Cmd.v
    (Cmd.info "shell" ~doc:"Interactive SQL + ledger shell over a demo database")
    Term.(const run_shell $ load)

let fabric_cmd =
  let offered =
    Arg.(value & opt float 2000.0 & info [ "offered" ] ~doc:"Offered load, tps")
  in
  let txns =
    Arg.(value & opt int 10_000 & info [ "txns" ] ~doc:"Transactions to simulate")
  in
  Cmd.v
    (Cmd.info "fabric" ~doc:"Run the permissioned-blockchain latency model")
    Term.(const run_fabric $ offered $ txns)

let verify_cmd =
  let snapshot =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"SNAPSHOT" ~doc:"Database snapshot file to verify")
  in
  let digest_files =
    Arg.(
      value & opt_all file []
      & info [ "digest" ] ~docv:"FILE"
          ~doc:
            "Trusted digest file (as printed by the shell's .digest command). \
             Repeatable; without one, only internal consistency is checked.")
  in
  let jobs =
    Arg.(
      value & opt int 0
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Verification domains for the per-table checks. 0 (the default) \
             uses the recommended domain count for this host.")
  in
  let tables =
    Arg.(
      value & opt_all string []
      & info [ "table" ] ~docv:"NAME"
          ~doc:
            "Restrict invariants 4-5 to the named ledger table (partial \
             verification, paper section 2.3). Repeatable.")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Verify a snapshot against trusted digests, in parallel")
    Term.(const run_verify $ snapshot $ digest_files $ jobs $ tables)

let failpoint_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Fault.parse_spec s) in
  let print ppf (name, mode) =
    Format.fprintf ppf "%s=%s" name (Fault.mode_to_string mode)
  in
  Arg.conv (parse, print)

let failpoint_arg =
  Arg.(
    value
    & opt_all failpoint_conv []
    & info [ "failpoint" ] ~docv:"NAME=MODE"
        ~doc:
          "Arm a fault-injection point before running (repeatable; debug \
           aid). $(docv) modes: off, error, crash, crash:N (crash after N \
           bytes through the point). List names with the $(b,failpoints) \
           command.")

let recover_cmd =
  let wal =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"WAL" ~doc:"WAL file")
  in
  let snapshot =
    Arg.(value & opt (some file) None & info [ "snapshot" ] ~doc:"Snapshot file")
  in
  let verify_flag =
    Arg.(value & flag & info [ "verify" ] ~doc:"Run ledger verification after recovery")
  in
  Cmd.v
    (Cmd.info "recover" ~doc:"Rebuild a database from its WAL (plus optional snapshot)")
    Term.(const run_recover $ failpoint_arg $ wal $ snapshot $ verify_flag)

let failpoints_cmd =
  Cmd.v
    (Cmd.info "failpoints"
       ~doc:"List the registered fault-injection points (for --failpoint)")
    Term.(const run_failpoints $ const ())

let host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"ADDR" ~doc:"Address to listen on / connect to")

let auth_secret_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "auth-secret" ] ~docv:"FILE"
        ~doc:
          "Shared-secret file for principal authentication. Clients that \
           claim a $(b,--principal) must present an HMAC tag keyed by these \
           contents; claims that don't verify are refused with the typed \
           $(b,auth_failed) error. Without this flag, principal claims are \
           refused and sessions stay anonymous.")

let port_arg ~doc =
  Arg.(value & opt int 7878 & info [ "port"; "p" ] ~docv:"PORT" ~doc)

let serve_cmd =
  let dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:
            "Durable database directory (WAL + snapshot); created on first \
             use, recovered on every start.")
  in
  let db_name =
    Arg.(
      value & opt string "served"
      & info [ "name" ] ~docv:"NAME" ~doc:"Database name when creating DIR")
  in
  let max_conns =
    Arg.(
      value & opt int 64
      & info [ "max-conns" ] ~docv:"N" ~doc:"Maximum concurrent sessions")
  in
  let max_frame =
    Arg.(
      value
      & opt int Wire.Frame.default_max_frame
      & info [ "max-frame" ] ~docv:"BYTES" ~doc:"Maximum request frame size")
  in
  let idle_timeout =
    Arg.(
      value & opt float 60.0
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Disconnect a session (rolling back its open transaction) after \
             this long without a request; 0 disables.")
  in
  let request_timeout =
    Arg.(
      value & opt float 30.0
      & info [ "request-timeout" ] ~docv:"SECONDS"
          ~doc:"Tear a connection stalled mid-frame after this long; 0 \
                disables.")
  in
  let group_commit_window =
    Arg.(
      value
      & opt float
          (Ledger_server.Server.default_config.group_commit_window *. 1000.0)
      & info
          [ "group-commit-window" ]
          ~docv:"MILLISECONDS"
          ~doc:
            "Group commit: concurrent auto-commit writers coalesce for up \
             to this long into one batched WAL append sharing a single \
             fsync; 0 gives every commit its own fsync (the legacy \
             commit path).")
  in
  let max_inflight =
    Arg.(
      value & opt int 0
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:
            "Admission control: with more than $(docv) requests in \
             dispatch, requests that would start new write work are \
             refused with the typed $(b,overloaded) error (and a \
             retry-after hint) instead of queueing. 0 disables.")
  in
  let queue_depth =
    Arg.(
      value & opt int 0
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:
            "Admission control: with $(docv) or more staged commits \
             waiting for the group-commit leader, new write work is shed \
             with the typed $(b,overloaded) error. 0 disables.")
  in
  let block_size =
    Arg.(
      value & opt int 0
      & info [ "block-size" ] ~docv:"N"
          ~doc:
            "Ledger block capacity: a block closes (and becomes \
             receipt-servable) after $(docv) transactions instead of only \
             at digest generation. 0 keeps the library default.")
  in
  let signing_seed =
    Arg.(
      value & opt string ""
      & info [ "signing-seed" ] ~docv:"SEED"
          ~doc:
            "Deterministic seed for the per-block Lamport signing chain; \
             receipts then carry a one-time signature over the block \
             hash. Empty = unsigned blocks.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a durable ledger database over TCP (SIGTERM drains and \
          fsyncs; SIGUSR1 dumps metrics)")
    Term.(
      const run_serve $ dir
      $ port_arg ~doc:"TCP port to listen on"
      $ host_arg $ db_name $ max_conns $ max_frame $ idle_timeout
      $ request_timeout $ group_commit_window $ max_inflight $ queue_depth
      $ block_size $ signing_seed $ auth_secret_arg $ failpoint_arg)

let replica_cmd =
  let dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:
            "Replica directory (durable copy of the primary's WAL + \
             snapshot, plus a replica marker); created on first use, \
             resumed from its persisted position on every start.")
  in
  let primary =
    Arg.(
      required
      & opt (some string) None
      & info [ "primary" ] ~docv:"HOST:PORT"
          ~doc:"The primary sqlledger server to replicate from.")
  in
  let idle_timeout =
    Arg.(
      value & opt float 60.0
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:"Disconnect an idle read session after this long; 0 disables.")
  in
  let request_timeout =
    Arg.(
      value & opt float 30.0
      & info [ "request-timeout" ] ~docv:"SECONDS"
          ~doc:"Tear a connection stalled mid-frame after this long; 0 \
                disables.")
  in
  Cmd.v
    (Cmd.info "replica"
       ~doc:
         "Stream a primary's WAL into a durable local copy and serve \
          read-only queries from it (writes are refused with a typed \
          read_only error naming the primary)")
    Term.(
      const run_replica $ dir
      $ port_arg ~doc:"TCP port to serve read-only clients on"
      $ host_arg $ primary $ idle_timeout $ request_timeout $ auth_secret_arg
      $ failpoint_arg)

let coord_cmd =
  let dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:
            "Coordinator state directory (shard map, schema registry, 2PC \
             decision log); created on first use, recovered on every start.")
  in
  let name_arg =
    Arg.(
      value & opt string "coord"
      & info [ "name" ] ~docv:"NAME" ~doc:"Coordinator name (metrics label)")
  in
  let shards =
    Arg.(
      value & opt_all string []
      & info [ "shard" ] ~docv:"HOST:PORT"
          ~doc:
            "A shard primary, repeatable; order defines the hash buckets. \
             Required on first start; passing a different topology later \
             bumps the shard-map epoch.")
  in
  let idle_timeout =
    Arg.(
      value & opt float 60.0
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:"Disconnect an idle session after this long; 0 disables.")
  in
  let request_timeout =
    Arg.(
      value & opt float 30.0
      & info [ "request-timeout" ] ~docv:"SECONDS"
          ~doc:"Tear a connection stalled mid-frame after this long; 0 \
                disables.")
  in
  Cmd.v
    (Cmd.info "coord"
       ~doc:
         "Coordinate a hash-sharded ledger deployment: route statements to \
          shard primaries, run cross-shard writes under two-phase commit, \
          and publish one aggregate digest covering every shard")
    Term.(
      const run_coord $ dir
      $ port_arg ~doc:"TCP port to listen on"
      $ host_arg $ name_arg $ shards $ idle_timeout $ request_timeout
      $ auth_secret_arg $ failpoint_arg)

let promote_cmd =
  let dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"Replica directory to promote into a servable primary.")
  in
  Cmd.v
    (Cmd.info "promote"
       ~doc:
         "Failover: recover a replica directory as a primary and drop its \
          replica marker (everything the replica acked is preserved; the \
          old primary's unshipped tail is the documented loss window)")
    Term.(const run_promote $ dir)

let principal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "principal" ] ~docv:"NAME"
        ~doc:
          "Authenticated identity for this session; recorded as the ledger's \
           transaction username on every commit (and provable from \
           receipts). Requires $(b,--secret-file).")

let secret_file_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "secret-file" ] ~docv:"FILE"
        ~doc:
          "Shared-secret file (same contents the server was started with); \
           keys the HMAC tag that proves the $(b,--principal) claim.")

let client_cmd =
  let args =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"CMD"
          ~doc:
            "One-shot command: ping | exec SQL | query SQL | digest | \
             receipt TXN_ID | receipts TXN_ID... | verify [TABLE...] | \
             create TABLE 'col type, ...' [key,cols] | create-plain TABLE \
             'col type, ...' [key,cols] | checkpoint | stats | shard-map. \
             With no command, starts an interactive REPL.")
  in
  let digest_files =
    Arg.(
      value & opt_all file []
      & info [ "digest" ] ~docv:"FILE"
          ~doc:
            "Trusted digest JSON to anchor a one-shot $(b,verify) \
             (repeatable).")
  in
  let deadline =
    Arg.(
      value & opt float 0.0
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Total budget for the one-shot command: rides the request \
             envelope (the server refuses to start work past it, \
             answering $(b,deadline_exceeded)) and bounds the local wait \
             for the response. 0 disables.")
  in
  let retries =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry the connection and the one-shot command up to $(docv) \
             extra times with jittered exponential backoff. Typed \
             $(b,overloaded)/$(b,deadline_exceeded) refusals are retried \
             for any command (the server did no work); transport \
             failures only for idempotent ones (reads, receipts, \
             verify).")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Connect to a sqlledger server (one-shot command or REPL)")
    Term.(
      const run_client $ host_arg
      $ port_arg ~doc:"Server TCP port"
      $ deadline $ retries $ principal_arg $ secret_file_arg $ args
      $ digest_files)

let migrate_cmd =
  let source =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SOURCE" ~doc:"Plain (regular) table to copy from.")
  in
  let target =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"TARGET" ~doc:"Ledger table to copy into.")
  in
  let batch =
    Arg.(
      value
      & opt int Migrate.Driver.default_batch
      & info [ "batch" ] ~docv:"N"
          ~doc:
            "Rows per batch: each batch commits server-side as one ledger \
             transaction (one group commit), so this bounds how long the \
             copy holds the write path per round trip.")
  in
  let cursor =
    Arg.(
      value
      & opt (some string) None
      & info [ "cursor" ] ~docv:"FILE"
          ~doc:
            "Durable cursor file, written atomically after every acked \
             batch. A migrator killed mid-copy re-run with the same \
             $(docv) resumes where it stopped instead of rescanning.")
  in
  let retries =
    Arg.(
      value & opt int 5
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Per-request retry budget (the Migrate request is idempotent: \
             already-copied keys are skipped server-side).")
  in
  Cmd.v
    (Cmd.info "migrate"
       ~doc:
         "Online migration: copy a plain table into a ledger table in \
          group-commit-sized batches while OLTP, receipts and the audit \
          stream stay live; crash-resumable via a durable cursor; finishes \
          with a differential equivalence check and an anchoring digest.")
    Term.(
      const run_migrate $ host_arg
      $ port_arg ~doc:"Server TCP port"
      $ principal_arg $ secret_file_arg $ source $ target $ batch $ cursor
      $ retries)

let chaos_proxy_cmd =
  let upstream =
    Arg.(
      required
      & opt (some string) None
      & info [ "upstream" ] ~docv:"HOST:PORT"
          ~doc:"The real server to forward to.")
  in
  let seed =
    Arg.(
      value & opt int 0xC0FFEE
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Seed for the fault schedule; the same seed replays the same \
             faults in the same order.")
  in
  let steps =
    Arg.(
      value & opt int 6
      & info [ "steps" ] ~docv:"N"
          ~doc:
            "Fault steps to draw from the seed (0 = forward healthily, a \
             plain proxy).")
  in
  let min_hold =
    Arg.(
      value & opt float 0.5
      & info [ "min-hold" ] ~docv:"SECONDS"
          ~doc:"Minimum time each fault stays installed.")
  in
  let max_hold =
    Arg.(
      value & opt float 3.0
      & info [ "max-hold" ] ~docv:"SECONDS"
          ~doc:"Maximum time each fault stays installed.")
  in
  let loop =
    Arg.(
      value & flag
      & info [ "loop" ]
          ~doc:"Repeat the schedule until stopped instead of running it \
                once and healing.")
  in
  Cmd.v
    (Cmd.info "chaos-proxy"
       ~doc:
         "Fault-injecting TCP proxy: forward a client (or a replica's \
          subscription) to a server through seeded network faults — \
          delays, throttles, slow-loris dribble, half-duplex drops, \
          partitions, duplicate connects")
    Term.(
      const run_chaos_proxy $ host_arg
      $ port_arg ~doc:"TCP port the proxy listens on (0 = ephemeral)"
      $ upstream $ seed $ steps $ min_hold $ max_hold $ loop)

let audit_cmd =
  let dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:
            "With --primary: the auditor's replica directory (durable \
             stream copy + the persisted audit mark), created on first \
             use. Without --primary: a stopped primary data directory to \
             audit offline.")
  in
  let primary =
    Arg.(
      value
      & opt (some string) None
      & info [ "primary" ] ~docv:"HOST:PORT"
          ~doc:"Primary to stream from (daemon mode; use with --follow).")
  in
  let follow =
    Arg.(
      value & flag
      & info [ "follow" ]
          ~doc:
            "Stay attached: verify each newly closed block as it streams \
             in, persisting the high-water mark after every advance; a \
             killed auditor resumes from the mark instead of rescanning.")
  in
  let bootstrap =
    Arg.(
      value & flag
      & info [ "bootstrap" ]
          ~doc:
            "Ignore any persisted mark and redo the one-time full \
             verification (all invariants, every block).")
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "Incrementally audit a ledger: full verify once, then only \
          newly closed blocks against the persisted trusted mark. Exit \
          code 4 = tampering detected.")
    Term.(
      const run_audit $ dir $ primary $ follow $ bootstrap $ failpoint_arg)

let receipt_cmd =
  let file =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"FILE" ~doc:"Receipt JSON document to verify.")
  in
  let action =
    Arg.(
      required
      & pos 0 (some (enum [ ("verify", `Verify) ])) None
      & info [] ~docv:"verify" ~doc:"The receipt operation (only verify).")
  in
  let digest =
    Arg.(
      value
      & opt (some file) None
      & info [ "digest" ] ~docv:"FILE"
          ~doc:
            "Pinned trusted digest JSON: the receipt must anchor to \
             exactly this block hash.")
  in
  let fingerprint =
    Arg.(
      value & opt string ""
      & info [ "fingerprint" ] ~docv:"HEX"
          ~doc:"Expected signing-key fingerprint (hex) to pin.")
  in
  Cmd.v
    (Cmd.info "receipt"
       ~doc:
         "Verify a transaction receipt fully offline — no server, no \
          database; optionally pinned to a trusted digest and signing \
          key. Exit code 4 = verification failed (typed reason printed).")
    Term.(
      const (fun (`Verify) file digest fp -> run_receipt_verify file digest fp)
      $ action $ file $ digest $ fingerprint)

let tamper_cmd =
  let dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"Stopped data directory to corrupt in place.")
  in
  let block =
    Arg.(
      value & opt int 0
      & info [ "block" ] ~docv:"N"
          ~doc:"Closed block to fork the hash chain at.")
  in
  Cmd.v
    (Cmd.info "tamper"
       ~doc:
         "Attack drill: fork the ledger hash chain of a stopped data \
          directory at a historical block (bypassing the database API), \
          so detection paths can be exercised end to end.")
    Term.(const run_tamper $ dir $ block)

let main =
  Cmd.group
    (Cmd.info "sqlledger" ~version:"1.0.0"
       ~doc:"Cryptographically verifiable ledger tables (SIGMOD'21 reproduction)")
    [
      demo_cmd; shell_cmd; fabric_cmd; verify_cmd; recover_cmd;
      failpoints_cmd; serve_cmd; replica_cmd; coord_cmd; promote_cmd;
      client_cmd; migrate_cmd; chaos_proxy_cmd; audit_cmd; receipt_cmd;
      tamper_cmd;
    ]

let () = exit (Cmd.eval' main)
