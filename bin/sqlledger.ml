(* sqlledger — command-line front end.

   demo    scripted walk-through of the paper's Figure 2 scenario
   shell   interactive SQL + ledger commands over a demo database
   fabric  run the blockchain-baseline latency model
*)

open Relation
open Sql_ledger

let vi = Value.int
let vs s = Value.String s

(* ------------------------------------------------------------------ *)
(* Shared demo database: the Figure 2 accounts table. *)

let make_demo_db () =
  let db =
    Database.create ~block_size:4 ~signing_seed:"sqlledger-cli" ~name:"demo" ()
  in
  let accounts =
    Database.create_ledger_table db ~name:"accounts"
      ~columns:
        [
          Column.make "name" (Datatype.Varchar 40);
          Column.make "balance" Datatype.Int;
        ]
      ~key:[ "name" ] ()
  in
  let exec user f = ignore (Database.with_txn db ~user f) in
  exec "nick" (fun t -> Txn.insert t accounts [| vs "Nick"; vi 50 |]);
  exec "john" (fun t -> Txn.insert t accounts [| vs "John"; vi 500 |]);
  exec "joe" (fun t -> Txn.insert t accounts [| vs "Joe"; vi 30 |]);
  exec "mary" (fun t -> Txn.insert t accounts [| vs "Mary"; vi 200 |]);
  exec "nick" (fun t ->
      Txn.update t accounts ~key:[| vs "Nick" |] [| vs "Nick"; vi 100 |]);
  exec "joe" (fun t -> Txn.delete t accounts ~key:[| vs "Joe" |]);
  (db, accounts)

(* ------------------------------------------------------------------ *)
(* demo *)

let run_demo () =
  let db, accounts = make_demo_db () in
  print_endline "== SQL Ledger demo (paper Figure 2) ==\n";
  print_endline "Current table:";
  Format.printf "%a@." Sqlexec.Rel.pp (Database.query db "SELECT * FROM accounts");
  print_endline "Ledger view (all operations, with transaction ids):";
  Format.printf "%a@." Sqlexec.Rel.pp
    (Database.query db "SELECT * FROM accounts__ledger_view");
  let digest = Option.get (Database.generate_digest db) in
  print_endline "Database digest:";
  print_endline (Digest.to_string digest);
  let report = Verifier.verify db ~digests:[ digest ] in
  Format.printf "@.%a@.@." Verifier.pp_report report;
  print_endline "Tampering with John's balance directly in storage...";
  ignore
    (Storage.Table_store.Raw.overwrite_value (Ledger_table.main accounts)
       ~key:[| vs "John" |] ~ordinal:1 (vi 9));
  let report = Verifier.verify db ~digests:[ digest ] in
  Format.printf "%a@." Verifier.pp_report report;
  if Verifier.ok report then 1 else 0

(* ------------------------------------------------------------------ *)
(* shell *)

let shell_help =
  "Enter SQL (SELECT / INSERT / UPDATE / DELETE) or a command:\n\
  \  .tables                          list queryable relations\n\
  \  .digest                          generate + remember a database digest\n\
  \  .verify                          verify against all remembered digests\n\
  \  .receipt <txn_id>                generate a transaction receipt\n\
  \  .tamper <name> <balance>         overwrite a stored balance (attack)\n\
  \  .save <file>                     snapshot the database to a JSON file\n\
  \  .help                            this message\n\
  \  .quit                            exit"

let run_shell load =
  let db, accounts =
    match load with
    | None -> make_demo_db ()
    | Some path -> (
        match Snapshot.load_from_file ~path () with
        | Error e ->
            Printf.eprintf "cannot load %s: %s; starting the demo database\n"
              path e;
            make_demo_db ()
        | Ok db ->
            Printf.printf "loaded snapshot %s\n" path;
            let accounts =
              match Database.find_ledger_table db "accounts" with
              | Some lt -> lt
              | None -> (
                  match Database.user_ledger_tables db with
                  | lt :: _ -> lt
                  | [] -> failwith "snapshot has no ledger tables")
            in
            (db, accounts))
  in
  let digests = ref [] in
  print_endline "sqlledger shell — demo database loaded (table: accounts)";
  print_endline shell_help;
  let continue = ref true in
  while !continue do
    print_string "ledger> ";
    (match In_channel.input_line stdin with
    | None -> continue := false
    | Some line -> (
        let line = String.trim line in
        let words =
          String.split_on_char ' ' line |> List.filter (fun w -> w <> "")
        in
        try
          match words with
          | [] -> ()
          | [ ".quit" ] | [ ".exit" ] -> continue := false
          | [ ".help" ] -> print_endline shell_help
          | [ ".tables" ] ->
              List.iter
                (fun lt ->
                  let n = Ledger_table.name lt in
                  Printf.printf "%s  %s__history  %s__ledger_view  %s__versions\n"
                    n n n n)
                (Database.ledger_tables db);
              print_endline "database_ledger_transactions  database_ledger_blocks"
          | [ ".digest" ] -> (
              match Database.generate_digest db with
              | Some d ->
                  digests := d :: !digests;
                  print_endline (Digest.to_string d)
              | None -> print_endline "nothing committed yet")
          | [ ".verify" ] ->
              Format.printf "%a@." Verifier.pp_report
                (Verifier.verify db ~digests:!digests)
          | [ ".receipt"; txn ] -> (
              match Receipt.generate db ~txn_id:(int_of_string txn) with
              | Ok r -> print_endline (Receipt.to_string r)
              | Error e -> print_endline ("error: " ^ e))
          | [ ".tamper"; name; balance ] ->
              if
                Storage.Table_store.Raw.overwrite_value
                  (Ledger_table.main accounts) ~key:[| vs name |] ~ordinal:1
                  (vi (int_of_string balance))
              then print_endline "stored row mutated behind the ledger's back"
              else print_endline "no such row"
          | [ ".save"; file ] ->
              Snapshot.save_to_file db ~path:file;
              Printf.printf "saved to %s\n" file
          | w :: _ when String.length w > 0 && w.[0] = '.' ->
              print_endline "unknown command; try .help"
          | _ ->
              Format.printf "%a@." Dml.pp_result
                (Dml.execute db ~user:"shell" line)
        with
        | Sqlexec.Parser.Parse_error e
        | Sqlexec.Executor.Exec_error e
        | Types.Ledger_error e
        | Failure e ->
            print_endline ("error: " ^ e)
        | Sqlexec.Lexer.Lex_error e -> print_endline ("error: " ^ e)
        | Storage.Table_store.Duplicate_key e ->
            print_endline ("error: duplicate key " ^ e)
        | Storage.Table_store.Not_found_key e ->
            print_endline ("error: no such key " ^ e)))
  done;
  0

(* ------------------------------------------------------------------ *)
(* fabric *)

let run_fabric offered txns =
  let r = Fabric_sim.simulate ~offered_tps:offered ~txns () in
  Printf.printf
    "offered %.0f tps over %d txns:\n\
    \  achieved  %.0f tps (saturation %.0f)\n\
    \  latency   avg %.0f ms, p50 %.0f ms, p99 %.0f ms\n"
    r.Fabric_sim.offered_tps txns r.Fabric_sim.achieved_tps
    (Fabric_sim.saturation_tps ()) r.Fabric_sim.avg_latency_ms
    r.Fabric_sim.p50_latency_ms r.Fabric_sim.p99_latency_ms;
  0

(* ------------------------------------------------------------------ *)
(* verify *)

let run_verify snapshot digest_files jobs tables =
  match Snapshot.load_from_file ~path:snapshot () with
  | Error e ->
      Printf.eprintf "cannot load %s: %s\n" snapshot e;
      1
  | Ok db -> (
      let parse_digest path =
        match In_channel.with_open_text path In_channel.input_all with
        | exception Sys_error e -> Error e
        | contents -> Digest.of_string contents
      in
      let rec load_digests acc = function
        | [] -> Ok (List.rev acc)
        | path :: rest -> (
            match parse_digest path with
            | Ok d -> load_digests (d :: acc) rest
            | Error e -> Error (path ^ ": " ^ e))
      in
      match load_digests [] digest_files with
      | Error e ->
          Printf.eprintf "cannot read digest: %s\n" e;
          1
      | Ok digests -> (
          let jobs = if jobs <= 0 then Domain.recommended_domain_count () else jobs in
          match
            List.find_opt
              (fun n -> Database.find_ledger_table db n = None)
              tables
          with
          | Some missing ->
              Printf.eprintf "no such ledger table: %s\n" missing;
              1
          | None ->
          let tables = if tables = [] then None else Some tables in
          if digests = [] then
            print_endline
              "note: no --digest supplied; checking internal consistency only \
               (invariants 2-5), with no external anchor";
          let report = Verifier.verify ?tables ~jobs db ~digests in
          Format.printf "%a@." Verifier.pp_report report;
          if Verifier.ok report then 0 else 1))

(* ------------------------------------------------------------------ *)
(* failpoints *)

let run_failpoints () =
  (* Touch the modules that register failpoints at initialisation so the
     linker keeps them (and their registrations) in this binary. *)
  ignore (Durable.wal_path "." : string);
  ignore (Trusted_store.Worm_store.escape_blob_name "" : string);
  List.iter print_endline (Fault.points ());
  0

(* ------------------------------------------------------------------ *)
(* recover *)

let run_recover failpoints wal snapshot verify_flag =
  List.iter (fun (name, mode) -> Fault.set name mode) failpoints;
  match Wal_replay.replay_file ?snapshot_path:snapshot ~wal_path:wal () with
  | exception (Fault.Injected_crash e | Fault.Injected_error e) ->
      Printf.eprintf "fault injected: %s\n" e;
      2
  | Error e ->
      Printf.eprintf "recovery failed: %s\n" e;
      1
  | Ok db ->
      Printf.printf "recovered database %s (%d ledger tables)\n"
        (Database.database_id db)
        (List.length (Database.ledger_tables db));
      if verify_flag then begin
        let report = Verifier.verify db ~digests:[] in
        Format.printf "%a@." Verifier.pp_report report;
        if Verifier.ok report then 0 else 1
      end
      else 0

(* ------------------------------------------------------------------ *)
(* cmdliner wiring *)

open Cmdliner

let demo_cmd =
  Cmd.v (Cmd.info "demo" ~doc:"Scripted Figure 2 walk-through")
    Term.(const run_demo $ const ())

let shell_cmd =
  let load =
    Arg.(value & opt (some file) None & info [ "load" ] ~doc:"Load a snapshot file")
  in
  Cmd.v
    (Cmd.info "shell" ~doc:"Interactive SQL + ledger shell over a demo database")
    Term.(const run_shell $ load)

let fabric_cmd =
  let offered =
    Arg.(value & opt float 2000.0 & info [ "offered" ] ~doc:"Offered load, tps")
  in
  let txns =
    Arg.(value & opt int 10_000 & info [ "txns" ] ~doc:"Transactions to simulate")
  in
  Cmd.v
    (Cmd.info "fabric" ~doc:"Run the permissioned-blockchain latency model")
    Term.(const run_fabric $ offered $ txns)

let verify_cmd =
  let snapshot =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"SNAPSHOT" ~doc:"Database snapshot file to verify")
  in
  let digest_files =
    Arg.(
      value & opt_all file []
      & info [ "digest" ] ~docv:"FILE"
          ~doc:
            "Trusted digest file (as printed by the shell's .digest command). \
             Repeatable; without one, only internal consistency is checked.")
  in
  let jobs =
    Arg.(
      value & opt int 0
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Verification domains for the per-table checks. 0 (the default) \
             uses the recommended domain count for this host.")
  in
  let tables =
    Arg.(
      value & opt_all string []
      & info [ "table" ] ~docv:"NAME"
          ~doc:
            "Restrict invariants 4-5 to the named ledger table (partial \
             verification, paper section 2.3). Repeatable.")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Verify a snapshot against trusted digests, in parallel")
    Term.(const run_verify $ snapshot $ digest_files $ jobs $ tables)

let failpoint_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Fault.parse_spec s) in
  let print ppf (name, mode) =
    Format.fprintf ppf "%s=%s" name (Fault.mode_to_string mode)
  in
  Arg.conv (parse, print)

let failpoint_arg =
  Arg.(
    value
    & opt_all failpoint_conv []
    & info [ "failpoint" ] ~docv:"NAME=MODE"
        ~doc:
          "Arm a fault-injection point before running (repeatable; debug \
           aid). $(docv) modes: off, error, crash, crash:N (crash after N \
           bytes through the point). List names with the $(b,failpoints) \
           command.")

let recover_cmd =
  let wal =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"WAL" ~doc:"WAL file")
  in
  let snapshot =
    Arg.(value & opt (some file) None & info [ "snapshot" ] ~doc:"Snapshot file")
  in
  let verify_flag =
    Arg.(value & flag & info [ "verify" ] ~doc:"Run ledger verification after recovery")
  in
  Cmd.v
    (Cmd.info "recover" ~doc:"Rebuild a database from its WAL (plus optional snapshot)")
    Term.(const run_recover $ failpoint_arg $ wal $ snapshot $ verify_flag)

let failpoints_cmd =
  Cmd.v
    (Cmd.info "failpoints"
       ~doc:"List the registered fault-injection points (for --failpoint)")
    Term.(const run_failpoints $ const ())

let main =
  Cmd.group
    (Cmd.info "sqlledger" ~version:"1.0.0"
       ~doc:"Cryptographically verifiable ledger tables (SIGMOD'21 reproduction)")
    [ demo_cmd; shell_cmd; fabric_cmd; verify_cmd; recover_cmd; failpoints_cmd ]

let () = exit (Cmd.eval' main)
