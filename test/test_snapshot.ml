(* Database snapshots: full-fidelity save/load, verifiability of the loaded
   copy, and the backup-file workflow of §3.7. Also covers parallel
   verification equivalence. *)

open Relation
open Sql_ledger
open Testkit

let build_rich_db () =
  let db = make_db ~block_size:3 ~signing_seed:"snap" "rich" in
  let accounts = make_accounts db in
  figure2 db accounts;
  Database.create_index db ~table:"accounts" ~name:"by_balance"
    ~columns:[ "balance" ];
  Database.add_column db ~table:"accounts"
    (Column.make ~nullable:true "note" (Datatype.Varchar 32));
  ignore
    (commit_one db "teller" (fun txn ->
         Txn.insert txn accounts [| vs "Zed"; vi 7; vs "vip" |]));
  let _ =
    Database.create_regular_table db ~name:"plain"
      ~columns:[ Column.make "id" Datatype.Int; Column.make "v" Datatype.Float ]
      ~key:[ "id" ] ()
  in
  ignore
    (Database.with_txn db ~user:"x" (fun txn ->
         Txn.plain_insert txn (Database.regular_table db "plain")
           [| vi 1; Value.Float 2.5 |]));
  Database.checkpoint db;
  db

let reload db =
  match Snapshot.load ~clock:(make_clock ()) (Snapshot.save db) with
  | Ok db' -> db'
  | Error e -> Alcotest.fail e

let test_roundtrip_preserves_everything () =
  let db = build_rich_db () in
  let d = fresh_digest db in
  let db' = reload db in
  (* Identity, counters, tables. *)
  Alcotest.(check string) "db id" (Database.database_id db) (Database.database_id db');
  Alcotest.(check bool) "create time" true
    (Database.create_time db = Database.create_time db');
  Alcotest.(check int) "ledger tables"
    (List.length (Database.ledger_tables db))
    (List.length (Database.ledger_tables db'));
  (* Data equality via SQL. *)
  let q sql = (Database.query db sql).Sqlexec.Rel.rows in
  let q' sql = (Database.query db' sql).Sqlexec.Rel.rows in
  List.iter
    (fun sql ->
      Alcotest.(check int) sql (List.length (q sql)) (List.length (q' sql));
      List.iter2
        (fun a b -> Alcotest.(check bool) "row" true (Row.equal a b))
        (q sql) (q' sql))
    [
      "SELECT * FROM accounts ORDER BY name";
      "SELECT * FROM accounts__history ORDER BY _ledger_end_txn_id";
      "SELECT * FROM accounts__ledger_view";
      "SELECT * FROM database_ledger_transactions ORDER BY txn_id";
      "SELECT * FROM database_ledger_blocks ORDER BY block_id";
      "SELECT * FROM plain";
      "SELECT * FROM ledger_tables_meta ORDER BY event_id";
    ];
  (* Crucially: the loaded database verifies against the original digest. *)
  Alcotest.(check bool) "loaded verifies old digest" true
    (Verifier.ok (Verifier.verify db' ~digests:[ d ]))

let test_loaded_database_remains_usable () =
  let db = build_rich_db () in
  let db' = reload db in
  let accounts = Database.ledger_table db' "accounts" in
  (* Continue transacting: txn ids and blocks continue where they left off. *)
  ignore
    (commit_one db' "post-load" (fun txn ->
         Txn.insert txn accounts [| vs "PostLoad"; vi 1; Value.Null |]));
  let d = Option.get (Database.generate_digest db') in
  Alcotest.(check bool) "verifies after new txns" true
    (Verifier.ok (Verifier.verify db' ~digests:[ d ]));
  (* Receipts still work on the loaded copy (signing seed travelled). *)
  match Receipt.generate db' ~txn_id:3 with
  | Ok r -> (
      match Receipt.verify r with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Receipt.failure_to_string e))
  | Error e -> Alcotest.fail e

let test_file_roundtrip () =
  let db = build_rich_db () in
  let path = Filename.temp_file "ledger-snap" ".json" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Snapshot.save_to_file db ~path;
      match Snapshot.load_from_file ~clock:(make_clock ()) ~path () with
      | Error e -> Alcotest.fail e
      | Ok db' ->
          let d = Option.get (Database.generate_digest db') in
          Alcotest.(check bool) "file copy verifies" true
            (Verifier.ok (Verifier.verify db' ~digests:[ d ])))

let test_snapshot_isolation () =
  let db = build_rich_db () in
  let snap = Snapshot.save db in
  let accounts = Database.ledger_table db "accounts" in
  ignore
    (commit_one db "later" (fun txn ->
         Txn.insert txn accounts [| vs "Late"; vi 1; Value.Null |]));
  let db' = match Snapshot.load ~clock:(make_clock ()) snap with
    | Ok d -> d
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "snapshot lacks later row" true
    (Ledger_table.find (Database.ledger_table db' "accounts") ~key:[| vs "Late" |]
    = None)

let test_tampered_snapshot_detected () =
  (* A snapshot file is not trusted: edits to it surface at verification,
     exactly like a doctored backup (§3.7 assumption 1 is *checked*, not
     assumed, by verifying restored backups). *)
  let db = build_rich_db () in
  let d = fresh_digest db in
  (* Doctor the decoded snapshot structurally. *)
  let snap = Snapshot.save db in
  let rec rewrite v =
    match v with
    | Sjson.String "John" -> Sjson.String "Evil"
    | Sjson.List items -> Sjson.List (List.map rewrite items)
    | Sjson.Obj fields ->
        Sjson.Obj (List.map (fun (k, x) -> (k, rewrite x)) fields)
    | other -> other
  in
  match Snapshot.load ~clock:(make_clock ()) (rewrite snap) with
  | Error _ -> () (* structural rejection is fine too *)
  | Ok db' ->
      Alcotest.(check bool) "tampered backup fails verification" true
        (not (Verifier.ok (Verifier.verify db' ~digests:[ d ])))

let test_garbage_rejected () =
  List.iter
    (fun json ->
      match Snapshot.load (Sjson.of_string json) with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %s" json)
    [ "{}"; {|{"format_version": 99}|}; {|{"format_version": 1, "tables": []}|} ]

let test_parallel_verify_equivalent () =
  let db = build_rich_db () in
  let d = fresh_digest db in
  (* Add a second table so parallelism has something to split. *)
  let other =
    Database.create_ledger_table db ~name:"other"
      ~columns:[ Column.make "id" Datatype.Int ]
      ~key:[ "id" ] ()
  in
  for i = 1 to 20 do
    ignore (Database.with_txn db ~user:"p" (fun txn -> Txn.insert txn other [| vi i |]))
  done;
  let d2 = fresh_digest db in
  let seq = Verifier.verify ~jobs:1 db ~digests:[ d; d2 ] in
  let par = Verifier.verify ~jobs:4 db ~digests:[ d; d2 ] in
  Alcotest.(check bool) "both ok" true (Verifier.ok seq && Verifier.ok par);
  Alcotest.(check int) "same versions checked" seq.Verifier.versions_checked
    par.Verifier.versions_checked;
  (* And equivalence under tampering. *)
  ignore
    (Tamper.apply db
       (Tamper.Update_row
          { table = "other"; key = [| vi 5 |]; column = "id"; value = vi 99 }));
  let seq = Verifier.verify ~jobs:1 db ~digests:[ d; d2 ] in
  let par = Verifier.verify ~jobs:4 db ~digests:[ d; d2 ] in
  Alcotest.(check int) "same violation count"
    (List.length seq.Verifier.violations)
    (List.length par.Verifier.violations)

let () =
  Alcotest.run "snapshot"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "preserves everything" `Quick test_roundtrip_preserves_everything;
          Alcotest.test_case "remains usable" `Quick test_loaded_database_remains_usable;
          Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
          Alcotest.test_case "isolation" `Quick test_snapshot_isolation;
        ] );
      ( "integrity",
        [
          Alcotest.test_case "tampered snapshot detected" `Quick test_tampered_snapshot_detected;
          Alcotest.test_case "garbage rejected" `Quick test_garbage_rejected;
        ] );
      ( "parallel verification",
        [ Alcotest.test_case "equivalent to sequential" `Quick test_parallel_verify_equivalent ] );
    ]
