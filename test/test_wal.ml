(* WAL records, file persistence with torn tails, and the analysis phase of
   recovery (§3.3.2). *)

module LR = Aries.Log_record

let sample_commit txn_id block_id ordinal : LR.commit_info =
  {
    txn_id;
    commit_ts = 1000.0 +. float_of_int txn_id;
    user = Printf.sprintf "user%d" txn_id;
    block_id;
    ordinal;
    table_roots = [ (1, String.make 32 'a'); (2, String.make 32 'b') ];
  }

let test_record_roundtrip () =
  let records =
    [
      LR.Begin { txn_id = 7 };
      LR.Abort { txn_id = 7 };
      LR.Checkpoint { flushed_upto_lsn = 42 };
      LR.Commit (sample_commit 9 2 17);
    ]
  in
  List.iter
    (fun r ->
      match LR.of_line (LR.to_line r) with
      | Ok r' ->
          Alcotest.(check string) "roundtrip" (LR.to_line r) (LR.to_line r')
      | Error e -> Alcotest.failf "roundtrip failed: %s" e)
    records

let test_record_rejects_garbage () =
  List.iter
    (fun line ->
      match LR.of_line line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %s" line)
    [ "not json"; "{}"; {|{"type":"explode"}|}; {|{"type":"commit"}|} ]

let test_wal_lsns_and_records () =
  let w = Aries.Wal.create () in
  Alcotest.(check int) "empty lsn" 0 (Aries.Wal.last_lsn w);
  let l1 = Aries.Wal.append w (LR.Begin { txn_id = 1 }) in
  let l2 = Aries.Wal.append w (LR.Commit (sample_commit 1 0 0)) in
  Alcotest.(check int) "lsn 1" 1 l1;
  Alcotest.(check int) "lsn 2" 2 l2;
  Alcotest.(check int) "records" 2 (List.length (Aries.Wal.records w));
  Alcotest.(check int) "records_from" 1 (List.length (Aries.Wal.records_from w 1))

let with_temp_file f =
  let path = Filename.temp_file "waltest" ".log" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_wal_file_persistence () =
  with_temp_file (fun path ->
      let w = Aries.Wal.create ~path () in
      ignore (Aries.Wal.append w (LR.Begin { txn_id = 1 }));
      ignore (Aries.Wal.append w (LR.Commit (sample_commit 1 0 0)));
      Aries.Wal.close w;
      match Aries.Wal.load path with
      | Ok records -> Alcotest.(check int) "loaded" 2 (List.length records)
      | Error e -> Alcotest.fail e)

let test_wal_torn_tail () =
  with_temp_file (fun path ->
      let w = Aries.Wal.create ~path () in
      ignore (Aries.Wal.append w (LR.Begin { txn_id = 1 }));
      ignore (Aries.Wal.append w (LR.Commit (sample_commit 1 0 0)));
      Aries.Wal.close w;
      (* Simulate a crash mid-write: append half a record. *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc {|{"type":"commit","txn|};
      close_out oc;
      match Aries.Wal.load path with
      | Ok records ->
          Alcotest.(check int) "torn tail dropped" 2 (List.length records)
      | Error e -> Alcotest.fail e)

let test_wal_mid_corruption_detected () =
  with_temp_file (fun path ->
      let oc = open_out path in
      output_string oc "GARBAGE\n";
      output_string oc (LR.to_line (LR.Begin { txn_id = 1 }) ^ "\n");
      close_out oc;
      match Aries.Wal.load path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "mid-log corruption must not be silently skipped")

(* Frame a payload the way Wal.append does: "#crc len lsn payload". *)
let frame lsn payload =
  let body = Printf.sprintf "%d %s" lsn payload in
  Printf.sprintf "#%08lx %d %s" (Fault.Crc32.string body) (String.length body)
    body

let write_lines path lines =
  Out_channel.with_open_bin path (fun oc ->
      List.iter (fun l -> Out_channel.output_string oc (l ^ "\n")) lines)

let test_wal_frames_on_disk () =
  with_temp_file (fun path ->
      let w = Aries.Wal.create ~path () in
      ignore (Aries.Wal.append w (LR.Begin { txn_id = 1 }));
      ignore (Aries.Wal.append w (LR.Commit (sample_commit 1 0 0)));
      Aries.Wal.close w;
      let lines =
        In_channel.with_open_bin path In_channel.input_all
        |> String.split_on_char '\n'
        |> List.filter (fun l -> l <> "")
      in
      List.iteri
        (fun i line ->
          Alcotest.(check string)
            (Printf.sprintf "record %d framed" (i + 1))
            (frame (i + 1) (LR.to_line (List.nth [ LR.Begin { txn_id = 1 };
                                                   LR.Commit (sample_commit 1 0 0) ] i)))
            line)
        lines)

let test_wal_legacy_format_loads () =
  (* Files written before CRC framing: bare JSON records, numbered
     sequentially — the seed on-disk format must keep loading. *)
  with_temp_file (fun path ->
      write_lines path
        [
          LR.to_line (LR.Begin { txn_id = 1 });
          LR.to_line (LR.Commit (sample_commit 1 0 0));
        ];
      match Aries.Wal.load path with
      | Error e -> Alcotest.fail e
      | Ok records ->
          Alcotest.(check (list int)) "legacy lsns" [ 1; 2 ]
            (List.map fst records))

let test_wal_legacy_torn_tail_with_trailing_blank () =
  (* The seed's torn-tail check compared file positions and misclassified a
     torn record followed by a newline (or blank lines) as corruption. *)
  with_temp_file (fun path ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc
            (LR.to_line (LR.Begin { txn_id = 1 }) ^ "\n");
          Out_channel.output_string oc {|{"type":"commit","txn|};
          Out_channel.output_string oc "\n\n  \n");
      match Aries.Wal.load_ex path with
      | Error e -> Alcotest.fail e
      | Ok l ->
          Alcotest.(check int) "prefix kept" 1 (List.length l.Aries.Wal.l_records);
          Alcotest.(check bool) "flagged torn" true l.Aries.Wal.l_torn)

let test_wal_framed_torn_tail () =
  with_temp_file (fun path ->
      let w = Aries.Wal.create ~path () in
      ignore (Aries.Wal.append w (LR.Begin { txn_id = 1 }));
      ignore (Aries.Wal.append w (LR.Commit (sample_commit 1 0 0)));
      Aries.Wal.close w;
      let full = In_channel.with_open_bin path In_channel.input_all in
      (* Tear the last record at every byte boundary: always recoverable. *)
      let second_starts = String.index_from full 1 '#' in
      for cut = second_starts + 1 to String.length full - 2 do
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_string oc (String.sub full 0 cut));
        match Aries.Wal.load_ex path with
        | Error e -> Alcotest.failf "cut %d: %s" cut e
        | Ok l ->
            Alcotest.(check int)
              (Printf.sprintf "cut %d keeps prefix" cut)
              1
              (List.length l.Aries.Wal.l_records)
      done)

let test_wal_bitflip_is_corruption_not_torn () =
  (* A checksum failure with more records after it must fail loudly, with
     the last good LSN in the message. *)
  with_temp_file (fun path ->
      let w = Aries.Wal.create ~path () in
      ignore (Aries.Wal.append w (LR.Begin { txn_id = 1 }));
      ignore (Aries.Wal.append w (LR.Begin { txn_id = 2 }));
      ignore (Aries.Wal.append w (LR.Commit (sample_commit 2 0 0)));
      Aries.Wal.close w;
      let full = Bytes.of_string (In_channel.with_open_bin path In_channel.input_all) in
      (* Flip one payload byte in the middle record. *)
      let nl1 = Bytes.index full '\n' in
      let mid = nl1 + 30 in
      Bytes.set full mid
        (if Bytes.get full mid = 'x' then 'y' else 'x');
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_bytes oc full);
      match Aries.Wal.load path with
      | Ok _ -> Alcotest.fail "bit flip mid-log must not load"
      | Error e ->
          Alcotest.(check bool)
            (Printf.sprintf "diagnostic names the last good LSN: %s" e)
            true
            (let has needle =
               let ln = String.length needle and n = String.length e in
               let rec go i = i + ln <= n && (String.sub e i ln = needle || go (i + 1)) in
               go 0
             in
             has "after LSN 1"))

let test_wal_nonmonotonic_lsn_is_corruption () =
  with_temp_file (fun path ->
      write_lines path
        [
          frame 5 (LR.to_line (LR.Begin { txn_id = 1 }));
          frame 3 (LR.to_line (LR.Begin { txn_id = 2 }));
          frame 6 (LR.to_line (LR.Begin { txn_id = 3 }));
        ];
      match Aries.Wal.load path with
      | Ok _ -> Alcotest.fail "regressing LSNs must not load"
      | Error _ -> ())

let test_wal_first_lsn_and_advance () =
  with_temp_file (fun path ->
      let w = Aries.Wal.create ~path ~first_lsn:41 () in
      Alcotest.(check int) "empty log last_lsn" 40 (Aries.Wal.last_lsn w);
      Alcotest.(check int) "first append" 41
        (Aries.Wal.append w (LR.Begin { txn_id = 1 }));
      Aries.Wal.advance_to w 100;
      Alcotest.(check int) "post-advance append" 101
        (Aries.Wal.append w (LR.Begin { txn_id = 2 }));
      Aries.Wal.advance_to w 7;
      Alcotest.(check int) "advance never regresses" 101 (Aries.Wal.last_lsn w);
      Aries.Wal.close w;
      match Aries.Wal.load path with
      | Error e -> Alcotest.fail e
      | Ok records ->
          Alcotest.(check (list int)) "lsns round-trip through the file"
            [ 41; 101 ] (List.map fst records))

let test_wal_legacy_then_framed_mix () =
  (* A log whose head predates framing and whose tail is framed (written
     after an upgrade) loads as one sequence. *)
  with_temp_file (fun path ->
      write_lines path
        [
          LR.to_line (LR.Begin { txn_id = 1 });
          LR.to_line (LR.Commit (sample_commit 1 0 0));
          frame 3 (LR.to_line (LR.Begin { txn_id = 2 }));
        ];
      match Aries.Wal.load path with
      | Error e -> Alcotest.fail e
      | Ok records ->
          Alcotest.(check (list int)) "mixed lsns" [ 1; 2; 3 ]
            (List.map fst records))

let test_analysis_no_checkpoint () =
  let entries =
    [
      (1, LR.Begin { txn_id = 1 });
      (2, LR.Commit (sample_commit 1 0 0));
      (3, LR.Begin { txn_id = 2 });
      (4, LR.Commit (sample_commit 2 0 1));
    ]
  in
  let a = Aries.Recovery.analyze entries in
  Alcotest.(check int) "all commits pending" 2 (List.length a.pending_commits);
  Alcotest.(check int) "highest txn" 2 a.highest_txn_id;
  Alcotest.(check bool) "no checkpoint" true (a.last_checkpoint_lsn = None)

let test_analysis_with_checkpoint () =
  let entries =
    [
      (1, LR.Commit (sample_commit 1 0 0));
      (2, LR.Commit (sample_commit 2 0 1));
      (3, LR.Checkpoint { flushed_upto_lsn = 2 });
      (4, LR.Commit (sample_commit 3 0 2));
      (5, LR.Begin { txn_id = 4 });
      (6, LR.Abort { txn_id = 4 });
    ]
  in
  let a = Aries.Recovery.analyze entries in
  Alcotest.(check int) "only post-checkpoint commits" 1
    (List.length a.pending_commits);
  Alcotest.(check int) "pending is txn 3" 3
    (List.hd a.pending_commits).LR.txn_id;
  Alcotest.(check int) "highest txn includes aborted" 4 a.highest_txn_id;
  Alcotest.(check bool) "checkpoint lsn" true (a.last_checkpoint_lsn = Some 3)

let test_analysis_aborted_not_pending () =
  let entries =
    [ (1, LR.Begin { txn_id = 1 }); (2, LR.Abort { txn_id = 1 }) ]
  in
  let a = Aries.Recovery.analyze entries in
  Alcotest.(check int) "no pending" 0 (List.length a.pending_commits)

let test_analysis_ordering () =
  let entries =
    [
      (1, LR.Commit (sample_commit 5 1 0));
      (2, LR.Commit (sample_commit 3 1 1));
      (3, LR.Commit (sample_commit 9 1 2));
    ]
  in
  let a = Aries.Recovery.analyze entries in
  Alcotest.(check (list int)) "LSN order preserved" [ 5; 3; 9 ]
    (List.map (fun (c : LR.commit_info) -> c.txn_id) a.pending_commits)

let () =
  Alcotest.run "wal"
    [
      ( "records",
        [
          Alcotest.test_case "roundtrip" `Quick test_record_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_record_rejects_garbage;
        ] );
      ( "log",
        [
          Alcotest.test_case "lsns" `Quick test_wal_lsns_and_records;
          Alcotest.test_case "file persistence" `Quick test_wal_file_persistence;
          Alcotest.test_case "torn tail" `Quick test_wal_torn_tail;
          Alcotest.test_case "mid corruption" `Quick test_wal_mid_corruption_detected;
          Alcotest.test_case "frames on disk" `Quick test_wal_frames_on_disk;
          Alcotest.test_case "legacy format" `Quick test_wal_legacy_format_loads;
          Alcotest.test_case "legacy torn tail + blanks" `Quick
            test_wal_legacy_torn_tail_with_trailing_blank;
          Alcotest.test_case "framed torn tail (all cuts)" `Quick
            test_wal_framed_torn_tail;
          Alcotest.test_case "bit flip is corruption" `Quick
            test_wal_bitflip_is_corruption_not_torn;
          Alcotest.test_case "non-monotonic lsn" `Quick
            test_wal_nonmonotonic_lsn_is_corruption;
          Alcotest.test_case "first_lsn / advance_to" `Quick
            test_wal_first_lsn_and_advance;
          Alcotest.test_case "legacy+framed mix" `Quick
            test_wal_legacy_then_framed_mix;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "no checkpoint" `Quick test_analysis_no_checkpoint;
          Alcotest.test_case "with checkpoint" `Quick test_analysis_with_checkpoint;
          Alcotest.test_case "aborted not pending" `Quick test_analysis_aborted_not_pending;
          Alcotest.test_case "ordering" `Quick test_analysis_ordering;
        ] );
    ]
