(* The fault library itself: CRC-32 vectors, failpoint registry semantics,
   and the crash-safe filesystem helpers. *)

let check = Alcotest.check
let int32_t = Alcotest.int32

(* ------------------------------------------------------------------ *)
(* CRC-32 *)

let test_crc_vectors () =
  (* The IEEE 802.3 check value. *)
  check int32_t "123456789" 0xCBF43926l (Fault.Crc32.string "123456789");
  check int32_t "empty" 0x00000000l (Fault.Crc32.string "");
  check int32_t "a" 0xE8B7BE43l (Fault.Crc32.string "a")

let test_crc_streaming_matches_oneshot () =
  let s = "the quick brown fox jumps over the lazy dog" in
  let streamed =
    Fault.Crc32.(
      finish
        (update_substring
           (update_char (update_string init (String.sub s 0 10)) s.[10])
           s 11
           (String.length s - 11)))
  in
  check int32_t "streamed = one-shot" (Fault.Crc32.string s) streamed;
  let buf = Buffer.create 16 in
  Buffer.add_string buf s;
  check int32_t "buffer = one-shot" (Fault.Crc32.string s)
    Fault.Crc32.(finish (update_buffer init buf));
  check int32_t "substring" (Fault.Crc32.string "own f")
    (Fault.Crc32.substring s ~off:12 ~len:5)

(* ------------------------------------------------------------------ *)
(* Failpoint registry *)

let with_reset f = Fun.protect ~finally:Fault.reset f

let test_failpoint_modes () =
  with_reset (fun () ->
      Fault.register "t.p";
      (* Off: inert. *)
      Fault.trip "t.p";
      (* Fail: raises once, then disarms. *)
      Fault.set "t.p" Fault.Fail;
      (match Fault.trip "t.p" with
      | exception Fault.Injected_error _ -> ()
      | () -> Alcotest.fail "armed Fail must raise");
      Fault.trip "t.p";
      (* Crash: raises and poisons every later guarded operation. *)
      Fault.set "t.p" (Fault.Crash_after 0);
      (match Fault.trip "t.p" with
      | exception Fault.Injected_crash _ -> ()
      | () -> Alcotest.fail "armed Crash must raise");
      (match Fault.trip "t.other" with
      | exception Fault.Injected_crash _ -> ()
      | () -> Alcotest.fail "after a crash every point must re-raise");
      Fault.reset ();
      Fault.trip "t.p";
      Fault.trip "t.other")

let test_failpoint_byte_budget () =
  with_reset (fun () ->
      let path = Filename.temp_file "fault" ".out" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          Fault.register "t.w";
          Fault.set "t.w" (Fault.Crash_after 5);
          let oc = open_out path in
          (* 3 bytes fit, then 2 of the next 4: torn mid-write. *)
          (match
             Fault.output "t.w" oc "abc";
             Fault.output "t.w" oc "defg"
           with
          | exception Fault.Injected_crash _ -> ()
          | () -> Alcotest.fail "budget exhaustion must crash");
          close_out_noerr oc;
          check Alcotest.string "exactly 5 bytes reached the file" "abcde"
            (In_channel.with_open_bin path In_channel.input_all)))

let test_mode_parsing () =
  let roundtrip m =
    match Fault.mode_of_string (Fault.mode_to_string m) with
    | Ok m' -> m' = m
    | Result.Error _ -> false
  in
  check Alcotest.bool "off" true (roundtrip Fault.Off);
  check Alcotest.bool "error" true (roundtrip Fault.Fail);
  check Alcotest.bool "crash" true (roundtrip (Fault.Crash_after 0));
  check Alcotest.bool "crash:N" true (roundtrip (Fault.Crash_after 37));
  check Alcotest.bool "garbage rejected" true
    (Result.is_error (Fault.mode_of_string "explode"));
  check Alcotest.bool "negative rejected" true
    (Result.is_error (Fault.mode_of_string "crash:-1"));
  (match Fault.parse_spec "wal.append=crash:10" with
  | Ok ("wal.append", Fault.Crash_after 10) -> ()
  | _ -> Alcotest.fail "parse_spec");
  check Alcotest.bool "spec without '='" true
    (Result.is_error (Fault.parse_spec "wal.append"))

(* ------------------------------------------------------------------ *)
(* Filesystem helpers *)

let temp_dir () =
  let d = Filename.temp_file "faultfs" "" in
  Sys.remove d;
  d

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_temp_dir f =
  let d = temp_dir () in
  Fault.Fsutil.mkdir_p d;
  Fun.protect ~finally:(fun () -> try rm_rf d with Sys_error _ -> ()) (fun () -> f d)

let test_mkdir_p_nested_and_idempotent () =
  with_temp_dir (fun d ->
      let deep = Filename.concat (Filename.concat d "a") "b" in
      Fault.Fsutil.mkdir_p deep;
      check Alcotest.bool "created" true (Sys.is_directory deep);
      (* Second call must not raise. *)
      Fault.Fsutil.mkdir_p deep)

let test_mkdir_p_concurrent_race () =
  (* EEXIST from a concurrent creator must be absorbed, not raised. *)
  with_temp_dir (fun d ->
      let target =
        List.fold_left Filename.concat d [ "r"; "a"; "c"; "e" ]
      in
      let domains =
        List.init 4 (fun _ ->
            Domain.spawn (fun () ->
                match Fault.Fsutil.mkdir_p target with
                | () -> true
                | exception _ -> false))
      in
      let oks = List.map Domain.join domains in
      check Alcotest.bool "all creators succeeded" true
        (List.for_all Fun.id oks);
      check Alcotest.bool "directory exists" true (Sys.is_directory target))

let read_file path = In_channel.with_open_bin path In_channel.input_all

let test_atomic_write_basic () =
  with_reset (fun () ->
      with_temp_dir (fun d ->
          let path = Filename.concat d "f" in
          Fault.Fsutil.register_atomic_points "t.aw";
          Fault.Fsutil.atomic_write ~point_prefix:"t.aw" ~path "one";
          check Alcotest.string "written" "one" (read_file path);
          check Alcotest.bool "no tmp debris" false
            (Sys.file_exists (path ^ ".tmp"));
          Fault.Fsutil.atomic_write ~keep_previous:true ~point_prefix:"t.aw"
            ~path "two";
          check Alcotest.string "replaced" "two" (read_file path);
          check Alcotest.string "previous generation kept" "one"
            (read_file (path ^ ".prev"))))

let test_atomic_write_crash_leaves_old_intact () =
  with_reset (fun () ->
      with_temp_dir (fun d ->
          let path = Filename.concat d "f" in
          Fault.Fsutil.register_atomic_points "t.aw2";
          Fault.Fsutil.atomic_write ~point_prefix:"t.aw2" ~path "stable";
          (* Crash while writing the replacement: target untouched, only a
             torn tmp left behind. *)
          Fault.set "t.aw2.write" (Fault.Crash_after 3);
          (match
             Fault.Fsutil.atomic_write ~point_prefix:"t.aw2" ~path
               "replacement"
           with
          | exception Fault.Injected_crash _ -> ()
          | () -> Alcotest.fail "expected injected crash");
          check Alcotest.string "old contents intact" "stable" (read_file path);
          check Alcotest.string "torn tmp" "rep" (read_file (path ^ ".tmp"));
          Fault.reset ();
          (* Crash between fsync and rename: tmp is complete. *)
          Fault.set "t.aw2.rename" (Fault.Crash_after 0);
          (match
             Fault.Fsutil.atomic_write ~point_prefix:"t.aw2" ~path
               "replacement"
           with
          | exception Fault.Injected_crash _ -> ()
          | () -> Alcotest.fail "expected injected crash");
          check Alcotest.string "old contents intact" "stable" (read_file path);
          check Alcotest.string "complete tmp" "replacement"
            (read_file (path ^ ".tmp"))))

let () =
  Alcotest.run "fault"
    [
      ( "crc32",
        [
          Alcotest.test_case "vectors" `Quick test_crc_vectors;
          Alcotest.test_case "streaming" `Quick test_crc_streaming_matches_oneshot;
        ] );
      ( "failpoints",
        [
          Alcotest.test_case "modes" `Quick test_failpoint_modes;
          Alcotest.test_case "byte budget" `Quick test_failpoint_byte_budget;
          Alcotest.test_case "mode parsing" `Quick test_mode_parsing;
        ] );
      ( "fsutil",
        [
          Alcotest.test_case "mkdir_p" `Quick test_mkdir_p_nested_and_idempotent;
          Alcotest.test_case "mkdir_p race" `Quick test_mkdir_p_concurrent_race;
          Alcotest.test_case "atomic write" `Quick test_atomic_write_basic;
          Alcotest.test_case "atomic write crash" `Quick
            test_atomic_write_crash_leaves_old_intact;
        ] );
    ]
