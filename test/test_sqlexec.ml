(* SQL subset: lexer, parser, and executor semantics, with emphasis on the
   constructs the verification queries use (OPENJSON, LAG, MERKLETREEAGG,
   LEDGERHASH, outer joins, GROUP BY). *)

open Relation

let vi = Value.int
let vs s = Value.String s

let catalog =
  Sqlexec.Executor.catalog_of_tables
    [
      ( "emp",
        ( [ "id"; "name"; "dept"; "salary" ],
          [
            [| vi 1; vs "alice"; vs "eng"; vi 100 |];
            [| vi 2; vs "bob"; vs "eng"; vi 80 |];
            [| vi 3; vs "carol"; vs "hr"; vi 90 |];
            [| vi 4; vs "dan"; vs "sales"; vi 70 |];
            [| vi 5; vs "eve"; vs "eng"; Value.Null |];
          ] ) );
      ( "dept",
        ( [ "name"; "building" ],
          [ [| vs "eng"; vs "B1" |]; [| vs "hr"; vs "B2" |]; [| vs "legal"; vs "B9" |] ]
        ) );
    ]

let q text = Sqlexec.Executor.query catalog text
let rows text = (q text).Sqlexec.Rel.rows
let cell_int v = match v with Value.Int i -> i | _ -> Alcotest.fail "not an int"

let first_cell text =
  match rows text with
  | [ row ] -> row.(0)
  | rs -> Alcotest.failf "expected one row, got %d" (List.length rs)

(* --- lexer --- *)

let test_lexer_tokens () =
  let toks = Sqlexec.Lexer.tokenize "SELECT a.b, 'it''s', 1.5e2 <= [col] -- c" in
  (* SELECT, a, ., b, ",", 'it's', ",", 1.5e2, <=, [col], EOF *)
  Alcotest.(check int) "token count incl EOF" 11 (List.length toks);
  (match List.nth toks 5 with
  | Sqlexec.Lexer.String_lit s -> Alcotest.(check string) "escape" "it's" s
  | _ -> Alcotest.fail "expected string literal");
  match List.nth toks 9 with
  | Sqlexec.Lexer.Quoted_ident s -> Alcotest.(check string) "quoted" "col" s
  | _ -> Alcotest.fail "expected quoted ident"

let test_lexer_errors () =
  List.iter
    (fun input ->
      match Sqlexec.Lexer.tokenize input with
      | exception Sqlexec.Lexer.Lex_error _ -> ()
      | _ -> Alcotest.failf "accepted %s" input)
    [ "'unterminated"; "[unterminated"; "SELECT ^"; "/* open" ]

let test_lexer_comments () =
  Alcotest.(check int) "comments skipped" 3
    (List.length (Sqlexec.Lexer.tokenize "a /* x\ny */ b -- trail"))

(* --- parser --- *)

let test_parser_rejects () =
  List.iter
    (fun input ->
      match Sqlexec.Parser.parse input with
      | exception Sqlexec.Parser.Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted %s" input)
    [
      "FROM x";
      "SELECT";
      "SELECT 1 FROM";
      "SELECT 1 WHERE";
      "SELECT 1 extra garbage (";
      "SELECT a FROM t JOIN u";
      "SELECT CASE END";
      "SELECT LAG(x) FROM t";
    ]

let test_parser_expr () =
  (* precedence: OR < AND < NOT < cmp < additive < multiplicative *)
  let e = Sqlexec.Parser.parse_expr "1 + 2 * 3 = 7 AND NOT FALSE OR x IS NULL" in
  match e with Sqlexec.Ast.Binop (Sqlexec.Ast.Or, _, _) -> () | _ -> Alcotest.fail "OR should be at the top"

(* --- executor --- *)

let test_select_where_order () =
  let r = q "SELECT name FROM emp WHERE salary >= 80 ORDER BY salary DESC" in
  Alcotest.(check (list string)) "names" [ "alice"; "carol"; "bob" ]
    (List.map (fun row -> Value.to_string row.(0)) r.Sqlexec.Rel.rows)

let test_select_star () =
  let r = q "SELECT * FROM dept" in
  Alcotest.(check int) "arity" 2 (Sqlexec.Rel.arity r);
  Alcotest.(check int) "rows" 3 (Sqlexec.Rel.cardinality r)

let test_limit () =
  Alcotest.(check int) "limit" 2 (List.length (rows "SELECT id FROM emp ORDER BY id LIMIT 2"))

let test_arithmetic_and_case () =
  Alcotest.(check int) "arith" 7 (cell_int (first_cell "SELECT 1 + 2 * 3"));
  Alcotest.(check int) "parens" 9 (cell_int (first_cell "SELECT (1 + 2) * 3"));
  Alcotest.(check int) "mod" 2 (cell_int (first_cell "SELECT 17 % 5"));
  Alcotest.(check string) "case" "low"
    (Value.to_string
       (first_cell "SELECT CASE WHEN 1 > 2 THEN 'high' ELSE 'low' END"));
  Alcotest.(check bool) "div by zero" true
    (match q "SELECT 1 / 0" with
    | exception Sqlexec.Executor.Exec_error _ -> true
    | _ -> false)

let test_three_valued_logic () =
  (* NULL salary must not satisfy either branch of a comparison. *)
  Alcotest.(check int) "null filtered" 4
    (List.length (rows "SELECT id FROM emp WHERE salary >= 0 OR salary < 0"));
  Alcotest.(check int) "is null" 1
    (List.length (rows "SELECT id FROM emp WHERE salary IS NULL"));
  Alcotest.(check int) "is not null" 4
    (List.length (rows "SELECT id FROM emp WHERE salary IS NOT NULL"));
  Alcotest.(check bool) "null concat" true
    (first_cell "SELECT 'a' || NULL" = Value.Null);
  Alcotest.(check int) "in list" 2
    (List.length (rows "SELECT id FROM emp WHERE dept IN ('hr', 'sales')"))

let test_group_by_having () =
  let r =
    q
      "SELECT dept, COUNT(*) n, SUM(salary) total, MIN(salary) lo, \
       MAX(salary) hi, AVG(salary) mean FROM emp GROUP BY dept \
       HAVING COUNT(*) > 1 ORDER BY dept"
  in
  Alcotest.(check int) "one group" 1 (Sqlexec.Rel.cardinality r);
  let row = List.hd r.Sqlexec.Rel.rows in
  Alcotest.(check int) "count includes null-salary row" 3 (cell_int row.(1));
  Alcotest.(check int) "sum skips nulls" 180 (cell_int row.(2));
  Alcotest.(check int) "min" 80 (cell_int row.(3));
  Alcotest.(check int) "max" 100 (cell_int row.(4))

let test_implicit_group () =
  Alcotest.(check int) "count all" 5 (cell_int (first_cell "SELECT COUNT(*) FROM emp"));
  Alcotest.(check int) "count expr skips null" 4
    (cell_int (first_cell "SELECT COUNT(salary) FROM emp"))

let test_joins () =
  Alcotest.(check int) "inner" 4
    (List.length (rows "SELECT e.id FROM emp e JOIN dept d ON e.dept = d.name"));
  Alcotest.(check int) "left keeps dan" 5
    (List.length (rows "SELECT e.id FROM emp e LEFT JOIN dept d ON e.dept = d.name"));
  Alcotest.(check int) "right keeps legal" 5
    (List.length (rows "SELECT d.name FROM emp e RIGHT JOIN dept d ON e.dept = d.name"));
  Alcotest.(check int) "full" 6
    (List.length (rows "SELECT e.id FROM emp e FULL JOIN dept d ON e.dept = d.name"));
  Alcotest.(check int) "left unmatched has nulls" 1
    (List.length
       (rows
          "SELECT e.id FROM emp e LEFT JOIN dept d ON e.dept = d.name \
           WHERE d.building IS NULL"))

let test_subquery () =
  Alcotest.(check int) "subquery" 2
    (cell_int
       (first_cell
          "SELECT COUNT(*) FROM (SELECT dept FROM emp WHERE salary > 75 \
           GROUP BY dept) x"))

let test_openjson () =
  let r =
    q
      {|SELECT j.a, j.b FROM OPENJSON('[{"a":1,"b":"x"},{"a":2},{"b":"z","c":true}]') j ORDER BY j.a|}
  in
  Alcotest.(check int) "rows" 3 (Sqlexec.Rel.cardinality r);
  Alcotest.(check int) "arity" 2 (Sqlexec.Rel.arity r);
  (* missing keys surface as NULL *)
  Alcotest.(check int) "nulls for missing" 1
    (List.length
       (rows
          {|SELECT j.a FROM OPENJSON('[{"a":1},{"b":2}]') j WHERE j.a IS NULL|}))

let test_lag () =
  let r = q "SELECT id, LAG(id) OVER (ORDER BY id) p FROM emp ORDER BY id" in
  let ps =
    List.map (fun row -> row.(1)) r.Sqlexec.Rel.rows
  in
  Alcotest.(check bool) "first is null" true (List.hd ps = Value.Null);
  Alcotest.(check (list int)) "shifted" [ 1; 2; 3; 4 ]
    (List.filter_map (function Value.Int i -> Some i | _ -> None) ps);
  (* LAG over a DESC ordering *)
  let r2 = q "SELECT id, LAG(id) OVER (ORDER BY id DESC) p FROM emp ORDER BY id" in
  let row1 = List.hd r2.Sqlexec.Rel.rows in
  Alcotest.(check int) "desc lag of id 1 is 2" 2 (cell_int row1.(1))

let test_ledgerhash_and_merkleagg () =
  (* LEDGERHASH must agree with the library-level builtin. *)
  let via_sql = first_cell "SELECT LEDGERHASH(1, 'x')" in
  let direct = Sqlexec.Builtins.ledgerhash [ vi 1; vs "x" ] in
  Alcotest.(check bool) "ledgerhash agrees" true (Value.equal via_sql direct);
  (* MERKLETREEAGG over one leaf is the leaf. *)
  let leaf =
    match direct with Value.String h -> h | _ -> assert false
  in
  let r =
    q
      (Printf.sprintf
         "SELECT dept, MERKLETREEAGG(LEDGERHASH(1, 'x') ORDER BY id) root \
          FROM emp WHERE id = 1 GROUP BY dept")
  in
  Alcotest.(check string) "single-leaf root" leaf
    (Value.to_string (List.hd r.Sqlexec.Rel.rows).(1));
  (* Aggregation order changes the root. *)
  let root_by order =
    Value.to_string
      (List.hd
         (rows
            (Printf.sprintf
               "SELECT MERKLETREEAGG(LEDGERHASH(id) ORDER BY id %s) FROM emp"
               order))).(0)
  in
  Alcotest.(check bool) "order sensitivity" false
    (String.equal (root_by "ASC") (root_by "DESC"))

let test_scalar_functions () =
  Alcotest.(check int) "len" 5 (cell_int (first_cell "SELECT LEN('hello')"));
  Alcotest.(check string) "upper" "ABC" (Value.to_string (first_cell "SELECT UPPER('abc')"));
  Alcotest.(check string) "substring" "ell"
    (Value.to_string (first_cell "SELECT SUBSTRING('hello', 2, 3)"));
  Alcotest.(check int) "coalesce" 3 (cell_int (first_cell "SELECT COALESCE(NULL, NULL, 3)"));
  Alcotest.(check bool) "nullif" true (first_cell "SELECT NULLIF(1, 1)" = Value.Null);
  Alcotest.(check int) "cast_int" 42 (cell_int (first_cell "SELECT CAST_INT('42')"));
  Alcotest.(check int) "json_value" 7
    (cell_int (first_cell {|SELECT JSON_VALUE('{"k":7}', 'k')|}));
  Alcotest.(check bool) "unknown function" true
    (match q "SELECT NO_SUCH_FN(1)" with
    | exception Sqlexec.Executor.Exec_error _ -> true
    | _ -> false)

let test_semantic_errors () =
  List.iter
    (fun text ->
      match q text with
      | exception Sqlexec.Executor.Exec_error _ -> ()
      | _ -> Alcotest.failf "accepted %s" text)
    [
      "SELECT zzz FROM emp";
      "SELECT id FROM no_such_table";
      "SELECT name FROM emp e JOIN dept d ON e.dept = d.name WHERE name = 'x'";
      (* ambiguous *)
      "SELECT SUM(name) FROM emp";
      "SELECT * FROM emp GROUP BY dept";
    ]

let test_like () =
  Alcotest.(check int) "prefix" 1
    (List.length (rows "SELECT id FROM emp WHERE name LIKE 'al%'"));
  Alcotest.(check int) "contains" 3
    (List.length (rows "SELECT id FROM emp WHERE name LIKE '%a%'"));
  Alcotest.(check int) "underscore" 1
    (List.length (rows "SELECT id FROM emp WHERE name LIKE '_ob'"));
  Alcotest.(check int) "not like" 2
    (List.length (rows "SELECT id FROM emp WHERE name NOT LIKE '%a%'"));
  Alcotest.(check int) "percent matches empty" 5
    (List.length (rows "SELECT id FROM emp WHERE name LIKE '%'"));
  Alcotest.(check bool) "null 3vl" true
    (first_cell "SELECT NULL LIKE 'x'" = Value.Null)

let test_between () =
  Alcotest.(check int) "inclusive" 3
    (List.length (rows "SELECT id FROM emp WHERE salary BETWEEN 80 AND 100"));
  Alcotest.(check int) "not between" 1
    (List.length (rows "SELECT id FROM emp WHERE salary NOT BETWEEN 80 AND 100"));
  Alcotest.(check int) "chained with AND" 2
    (List.length
       (rows "SELECT id FROM emp WHERE salary BETWEEN 80 AND 100 AND dept = 'eng'"))

let test_distinct () =
  Alcotest.(check int) "distinct depts" 3
    (List.length (rows "SELECT DISTINCT dept FROM emp"));
  Alcotest.(check int) "distinct pairs" 5
    (List.length (rows "SELECT DISTINCT dept, id FROM emp"));
  let r = q "SELECT DISTINCT dept FROM emp ORDER BY dept" in
  Alcotest.(check (list string)) "ordered" [ "eng"; "hr"; "sales" ]
    (List.map (fun row -> Value.to_string row.(0)) r.Sqlexec.Rel.rows)

let test_not_in () =
  Alcotest.(check int) "not in" 2
    (List.length (rows "SELECT id FROM emp WHERE dept NOT IN ('eng')"))

let test_subquery_expressions () =
  Alcotest.(check int) "scalar subquery in WHERE" 1
    (List.length
       (rows
          "SELECT id FROM emp WHERE salary = (SELECT MAX(salary) FROM emp)"));
  Alcotest.(check int) "above average" 2
    (List.length
       (rows
          "SELECT id FROM emp WHERE salary > (SELECT AVG(salary) FROM emp)"));
  Alcotest.(check int) "exists true" 5
    (List.length
       (rows "SELECT id FROM emp WHERE EXISTS (SELECT 1 FROM dept)"));
  Alcotest.(check int) "exists false" 0
    (List.length
       (rows
          "SELECT id FROM emp WHERE EXISTS            (SELECT 1 FROM dept WHERE name = 'zzz')"));
  Alcotest.(check bool) "empty scalar is null" true
    (first_cell "SELECT (SELECT name FROM dept WHERE name = 'zzz')" = Value.Null);
  Alcotest.(check bool) "multi-row scalar rejected" true
    (match q "SELECT (SELECT name FROM dept)" with
    | exception Sqlexec.Executor.Exec_error _ -> true
    | _ -> false);
  Alcotest.(check bool) "multi-column scalar rejected" true
    (match q "SELECT (SELECT name, building FROM dept LIMIT 1)" with
    | exception Sqlexec.Executor.Exec_error _ -> true
    | _ -> false)

let test_no_from () =
  Alcotest.(check int) "constant select" 3 (cell_int (first_cell "SELECT 3"))

let test_order_by_input_column () =
  (* ORDER BY a column that is not projected. *)
  let r = q "SELECT name FROM emp WHERE salary IS NOT NULL ORDER BY salary" in
  Alcotest.(check (list string)) "by salary" [ "dan"; "bob"; "carol"; "alice" ]
    (List.map (fun row -> Value.to_string row.(0)) r.Sqlexec.Rel.rows)

(* --- temporal (FOR SYSTEM_TIME AS OF) --- *)

let test_as_of_parses () =
  (match (Sqlexec.Parser.parse "SELECT * FROM emp FOR SYSTEM_TIME AS OF 5").Sqlexec.Ast.from with
  | Some (Sqlexec.Ast.Table { name = "emp"; alias = None; as_of = Some (Sqlexec.Ast.Lit (Value.Int 5)) }) -> ()
  | _ -> Alcotest.fail "expected Table with as_of = Some (Lit 5)");
  (* The alias can sit on either side of the temporal clause. *)
  (match (Sqlexec.Parser.parse "SELECT e.name FROM emp e FOR SYSTEM_TIME AS OF 1000.5").Sqlexec.Ast.from with
  | Some (Sqlexec.Ast.Table { alias = Some "e"; as_of = Some _; _ }) -> ()
  | _ -> Alcotest.fail "alias-before-clause");
  match (Sqlexec.Parser.parse "SELECT e.name FROM emp FOR SYSTEM_TIME AS OF 1000.5 e").Sqlexec.Ast.from with
  | Some (Sqlexec.Ast.Table { alias = Some "e"; as_of = Some _; _ }) -> ()
  | _ -> Alcotest.fail "alias-after-clause"

let test_as_of_parser_rejects () =
  List.iter
    (fun input ->
      match Sqlexec.Parser.parse input with
      | exception Sqlexec.Parser.Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted %s" input)
    [
      "SELECT * FROM emp FOR SYSTEM_TIME 5";
      "SELECT * FROM emp FOR SYSTEM_TIME AS 5";
      "SELECT * FROM emp FOR SYSTEM_TIME AS OF";
      "SELECT * FROM emp FOR 5";
    ]

let exec_error_containing text needle =
  match q text with
  | exception Sqlexec.Executor.Exec_error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "error for %s mentions %s" text needle)
        true
        (let nl = String.length needle and ml = String.length msg in
         let rec at i =
           i + nl <= ml && (String.sub msg i nl = needle || at (i + 1))
         in
         at 0)
  | _ -> Alcotest.failf "accepted %s" text

let test_as_of_malformed_timestamps () =
  (* Strings that don't look like unix timestamps, and NULL, are typed
     executor errors — not silent empty results. *)
  exec_error_containing "SELECT * FROM emp FOR SYSTEM_TIME AS OF 'yesterday'"
    "malformed timestamp";
  exec_error_containing "SELECT * FROM emp FOR SYSTEM_TIME AS OF ''"
    "malformed timestamp";
  exec_error_containing "SELECT * FROM emp FOR SYSTEM_TIME AS OF NULL"
    "NULL";
  (* This catalog has no temporal views at all: a well-formed timestamp
     against a plain table is also a typed error. *)
  exec_error_containing "SELECT * FROM emp FOR SYSTEM_TIME AS OF 5"
    "no FOR SYSTEM_TIME view";
  (* Numeric strings are accepted as timestamps, so this one gets past
     the timestamp check and fails on the missing view instead. *)
  exec_error_containing "SELECT * FROM emp FOR SYSTEM_TIME AS OF ' 1000.5 '"
    "no FOR SYSTEM_TIME view"

let test_quoted_identifier_roundtrips () =
  (* Bracket-quoted identifiers behave exactly like their bare spellings
     through parse -> execute, including alongside a temporal clause. *)
  let r = q "SELECT [name] FROM [emp] WHERE [salary] >= 90 ORDER BY [name]" in
  Alcotest.(check (list string)) "quoted = bare" [ "alice"; "carol" ]
    (List.map (fun row -> Value.to_string row.(0)) r.Sqlexec.Rel.rows);
  (match (Sqlexec.Parser.parse "SELECT [name] FROM [emp] FOR SYSTEM_TIME AS OF 5").Sqlexec.Ast.from with
  | Some (Sqlexec.Ast.Table { name = "emp"; as_of = Some _; _ }) -> ()
  | _ -> Alcotest.fail "quoted table with as_of");
  (* A quoted alias round-trips too, and qualifies columns. *)
  let r2 = q "SELECT [e].[dept] FROM [emp] [e] WHERE [e].[id] = 1" in
  Alcotest.(check (list string)) "quoted alias" [ "eng" ]
    (List.map (fun row -> Value.to_string row.(0)) r2.Sqlexec.Rel.rows);
  (* [FOR] quoting escapes the keyword: this must read as an alias. *)
  match (Sqlexec.Parser.parse "SELECT * FROM emp [FOR]").Sqlexec.Ast.from with
  | Some (Sqlexec.Ast.Table { alias = Some "FOR"; as_of = None; _ }) -> ()
  | _ -> Alcotest.fail "[FOR] as alias"

let () =
  Alcotest.run "sqlexec"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
        ] );
      ( "parser",
        [
          Alcotest.test_case "rejects" `Quick test_parser_rejects;
          Alcotest.test_case "precedence" `Quick test_parser_expr;
        ] );
      ( "executor",
        [
          Alcotest.test_case "select/where/order" `Quick test_select_where_order;
          Alcotest.test_case "star" `Quick test_select_star;
          Alcotest.test_case "limit" `Quick test_limit;
          Alcotest.test_case "arithmetic + case" `Quick test_arithmetic_and_case;
          Alcotest.test_case "3-valued logic" `Quick test_three_valued_logic;
          Alcotest.test_case "group by / having" `Quick test_group_by_having;
          Alcotest.test_case "implicit group" `Quick test_implicit_group;
          Alcotest.test_case "joins" `Quick test_joins;
          Alcotest.test_case "subquery" `Quick test_subquery;
          Alcotest.test_case "no FROM" `Quick test_no_from;
          Alcotest.test_case "order by input col" `Quick test_order_by_input_column;
          Alcotest.test_case "LIKE" `Quick test_like;
          Alcotest.test_case "BETWEEN" `Quick test_between;
          Alcotest.test_case "DISTINCT" `Quick test_distinct;
          Alcotest.test_case "NOT IN" `Quick test_not_in;
          Alcotest.test_case "subquery expressions" `Quick test_subquery_expressions;
          Alcotest.test_case "semantic errors" `Quick test_semantic_errors;
        ] );
      ( "verification constructs",
        [
          Alcotest.test_case "OPENJSON" `Quick test_openjson;
          Alcotest.test_case "LAG" `Quick test_lag;
          Alcotest.test_case "LEDGERHASH + MERKLETREEAGG" `Quick test_ledgerhash_and_merkleagg;
          Alcotest.test_case "scalar functions" `Quick test_scalar_functions;
        ] );
      ( "temporal",
        [
          Alcotest.test_case "AS OF parses" `Quick test_as_of_parses;
          Alcotest.test_case "parser rejects" `Quick test_as_of_parser_rejects;
          Alcotest.test_case "malformed timestamps" `Quick
            test_as_of_malformed_timestamps;
          Alcotest.test_case "quoted identifiers" `Quick
            test_quoted_identifier_roundtrips;
        ] );
    ]
