(* The wire layer in isolation: framing over a real socketpair, and the
   JSON protocol catalogue round-tripped variant by variant.

   Framing must survive exactly the streams a hostile or broken peer can
   produce: multi-megabyte frames, frames cut mid-payload, junk bytes
   where a header should be, and payloads full of control characters.
   The protocol must encode/decode every request and response losslessly
   — canonical-encoding equality is the oracle, so a field silently
   dropped by either direction fails the test. *)

open Relation
module Frame = Wire.Frame
module Protocol = Wire.Protocol

let pair () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (Frame.of_fd a, Frame.of_fd b)

let recv_frame conn =
  match Frame.recv conn with
  | Frame.Frame p -> p
  | Frame.Eof -> Alcotest.fail "unexpected Eof"
  | Frame.Truncated -> Alcotest.fail "unexpected Truncated"
  | Frame.Junk j -> Alcotest.fail ("unexpected Junk " ^ String.escaped j)
  | Frame.Oversized _ -> Alcotest.fail "unexpected Oversized"

(* ------------------------------------------------------------------ *)
(* Framing *)

let test_frame_roundtrip () =
  let a, b = pair () in
  Frame.send a "hello";
  Frame.send a "";
  Frame.send a "third frame";
  Alcotest.(check string) "first" "hello" (recv_frame b);
  Alcotest.(check string) "empty payload frames fine" "" (recv_frame b);
  Alcotest.(check string) "third" "third frame" (recv_frame b);
  Frame.close a;
  (match Frame.recv b with
  | Frame.Eof -> ()
  | _ -> Alcotest.fail "clean close at a boundary must read as Eof");
  Frame.close b

let test_huge_frame () =
  let a, b = pair () in
  (* Bigger than the 64K read buffer and any socket buffer, so both the
     chunked send and the chunked refill paths are exercised. A writer
     thread keeps the pipe draining. *)
  let payload = String.init (2 * 1024 * 1024) (fun i -> Char.chr (i land 0xff)) in
  let writer = Thread.create (fun () -> Frame.send a payload) () in
  let got = recv_frame b in
  Thread.join writer;
  Alcotest.(check int) "length" (String.length payload) (String.length got);
  Alcotest.(check bool) "bytes intact" true (String.equal payload got);
  Frame.close a;
  Frame.close b

(* A header promising 100 bytes, then only 10, then the peer dies. *)
let test_truncated_frame () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let conn = Frame.of_fd b in
  let header = Frame.header_bytes 100 in
  ignore (Unix.write_substring a header 0 (String.length header));
  ignore (Unix.write_substring a "ten bytes!" 0 10);
  Unix.close a;
  (match Frame.recv conn with
  | Frame.Truncated -> ()
  | _ -> Alcotest.fail "mid-payload close must read as Truncated");
  Frame.close conn

let test_truncated_header () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let conn = Frame.of_fd b in
  ignore (Unix.write_substring a "SLW" 0 3);
  Unix.close a;
  (match Frame.recv conn with
  | Frame.Truncated -> ()
  | _ -> Alcotest.fail "mid-header close must read as Truncated");
  Frame.close conn

let test_junk_before_frame () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let conn = Frame.of_fd b in
  ignore (Unix.write_substring a "GARBAGE!" 0 8);
  (match Frame.recv conn with
  | Frame.Junk j -> Alcotest.(check string) "reports what it saw" "GARB" j
  | _ -> Alcotest.fail "junk bytes must read as Junk");
  Unix.close a;
  Frame.close conn

let test_oversized_frame () =
  let a, b = pair () in
  Frame.send a (String.make 4096 'x');
  (match Frame.recv ~max_frame:1024 b with
  | Frame.Oversized { size; limit } ->
      Alcotest.(check int) "size" 4096 size;
      Alcotest.(check int) "limit" 1024 limit
  | _ -> Alcotest.fail "a frame above the limit must read as Oversized");
  Frame.close a;
  Frame.close b

let test_control_chars () =
  let a, b = pair () in
  let sql = "INSERT INTO t VALUES ('\x00\x01\n\t\r\"\\ \x7f\xff')" in
  let payload = Protocol.encode_request ~id:7 (Protocol.Exec { sql }) in
  Frame.send a payload;
  let got = recv_frame b in
  (match Protocol.decode_request got with
  | Ok (7, None, None, Protocol.Exec { sql = sql' }) ->
      Alcotest.(check string) "control chars survive" sql sql'
  | Ok _ -> Alcotest.fail "decoded to the wrong request"
  | Error e -> Alcotest.fail ("decode failed: " ^ e));
  Frame.close a;
  Frame.close b

(* ------------------------------------------------------------------ *)
(* Protocol catalogue *)

let sample_digest =
  Sjson.Obj
    [
      ("database_id", Sjson.String "abc123");
      ("block_id", Sjson.Int 4);
      ("hash", Sjson.String (String.make 64 'f'));
    ]

let all_requests =
  [
    Protocol.Hello { version = Protocol.version; client = "test"; principal = None; auth = None };
    Protocol.Hello
      {
        version = Protocol.version;
        client = "test";
        principal = Some "alice";
        auth = Some (Protocol.principal_tag ~secret:"s3cret" "alice");
      };
    Protocol.Ping;
    Protocol.Exec { sql = "INSERT INTO t VALUES (1, 'x')" };
    Protocol.Query { sql = "SELECT * FROM t" };
    Protocol.Begin;
    Protocol.Commit;
    Protocol.Rollback;
    Protocol.Digest;
    Protocol.Receipt { txn_id = 42 };
    Protocol.Receipts { txn_ids = [ 42; 43; 44 ] };
    Protocol.Receipts { txn_ids = [] };
    Protocol.Verify { tables = [ "a"; "b" ]; digests = [ sample_digest ] };
    Protocol.Verify { tables = []; digests = [] };
    Protocol.Create_table
      {
        name = "accounts";
        columns = [ ("name", "varchar(40)"); ("balance", "int") ];
        key = [ "name" ]; ledger = true
      };
    Protocol.Create_table
      { name = "staging"; columns = [ ("k", "int") ]; key = [ "k" ];
        ledger = false };
    Protocol.Migrate
      {
        source = "staging";
        target = "accounts";
        after_key = [ Value.String "Nick"; Value.Int 3 ];
        limit = 512;
      };
    Protocol.Migrate { source = "s"; target = "t"; after_key = []; limit = 1 };
    Protocol.Checkpoint;
    Protocol.Stats;
    Protocol.Shard_map;
    Protocol.Prepare { gid = "coord-1:42" };
    Protocol.Decide { gid = "coord-1:42"; commit = true };
    Protocol.Decide { gid = "coord-1:43"; commit = false };
    Protocol.Quit;
  ]

let all_responses =
  [
    Protocol.Welcome
      { version = Protocol.version; server = "s/1.0"; database = "db" };
    Protocol.Pong;
    Protocol.Ok_r;
    Protocol.Txn_r { txn_id = Some 9 };
    Protocol.Txn_r { txn_id = None };
    Protocol.Rows_r
      {
        columns = [ "name"; "balance"; "when"; "ratio"; "gone" ];
        rows =
          [
            [
              Value.String "Nick";
              Value.Int 50;
              Value.Datetime 1234.5;
              Value.Float 0.25;
              Value.Null;
            ];
            [ Value.String ""; Value.Int (-1); Value.Bool true;
              Value.Float (-1e30); Value.Null ];
          ];
      };
    Protocol.Rows_r { columns = []; rows = [] };
    Protocol.Affected_r { rows = 3; txn_id = Some 17 };
    Protocol.Digest_r sample_digest;
    Protocol.Receipt_r sample_digest;
    Protocol.Receipts_r
      {
        receipts = [ sample_digest; sample_digest ];
        pending = [ 7; 9 ];
        block_keys =
          [
            Sjson.Obj
              [
                ("block_id", Sjson.Int 4);
                ("public_key", Sjson.String "ab");
                ("signature", Sjson.String "cd");
              ];
          ];
      };
    Protocol.Receipts_r { receipts = []; pending = []; block_keys = [] };
    Protocol.Verify_r
      {
        vs_ok = false;
        vs_blocks = 2;
        vs_transactions = 10;
        vs_versions = 31;
        vs_violations = [ "block 1: hash chain broken" ];
      };
    Protocol.Stats_r [ "a 1"; "b 2" ];
    Protocol.Migrate_r
      { copied = 17; last_key = [ Value.String "Nick" ]; finished = false };
    Protocol.Migrate_r { copied = 0; last_key = []; finished = true };
    Protocol.Shard_map_r
      { epoch = 3; shards = [ ("127.0.0.1", 7001); ("10.0.0.2", 7002) ] };
    Protocol.Bye;
    Protocol.Error_r
      { code = Protocol.Txn_state; message = "no txn open";
        retry_after_ms = None; map_epoch = None };
    Protocol.Error_r
      { code = Protocol.Wrong_shard; message = "stale shard map";
        retry_after_ms = None; map_epoch = Some 7 };
    Protocol.Error_r
      { code = Protocol.Overloaded; message = "shed";
        retry_after_ms = Some 40; map_epoch = None };
    Protocol.Error_r
      { code = Protocol.Deadline_exceeded; message = "budget spent";
        retry_after_ms = None; map_epoch = None };
    Protocol.Error_r
      { code = Protocol.Auth_failed; message = "bad principal tag";
        retry_after_ms = None; map_epoch = None };
  ]

(* Canonical-encoding equality: a decoded message must re-encode to the
   identical payload, so nothing was dropped or defaulted. *)
let test_request_roundtrip () =
  List.iter
    (fun req ->
      let payload = Protocol.encode_request ~id:3 req in
      match Protocol.decode_request payload with
      | Error e ->
          Alcotest.fail (Protocol.request_kind req ^ " failed to decode: " ^ e)
      | Ok (id, deadline, epoch, req') ->
          Alcotest.(check int) "id echoed" 3 id;
          Alcotest.(check bool) "no deadline by default" true (deadline = None);
          Alcotest.(check bool) "no map epoch by default" true (epoch = None);
          Alcotest.(check string)
            (Protocol.request_kind req ^ " canonical")
            payload
            (Protocol.encode_request ~id:3 req'))
    all_requests

(* The deadline budget rides the envelope, orthogonal to the request
   kind: every request must carry it losslessly, and a decoded envelope
   must re-encode canonically with the budget intact. *)
let test_deadline_envelope () =
  List.iter
    (fun req ->
      let payload = Protocol.encode_request ~id:5 ~deadline_ms:250 req in
      match Protocol.decode_request payload with
      | Error e ->
          Alcotest.fail (Protocol.request_kind req ^ " failed to decode: " ^ e)
      | Ok (id, deadline, _epoch, req') ->
          Alcotest.(check int) "id echoed" 5 id;
          (match deadline with
          | Some 250 -> ()
          | Some other ->
              Alcotest.failf "deadline_ms mangled: got %d, want 250" other
          | None -> Alcotest.fail "deadline_ms dropped");
          Alcotest.(check string)
            (Protocol.request_kind req ^ " canonical with deadline")
            payload
            (Protocol.encode_request ~id:5 ~deadline_ms:250 req'))
    all_requests;
  (* A negative budget is nonsense from a peer: ignored, not fatal. *)
  match
    Protocol.decode_request
      "{\"id\": 1, \"req\": \"ping\", \"deadline_ms\": -3}"
  with
  | Ok (1, None, None, Protocol.Ping) -> ()
  | Ok _ -> Alcotest.fail "negative deadline_ms must decode as absent"
  | Error e -> Alcotest.fail ("negative deadline_ms rejected outright: " ^ e)

let test_response_roundtrip () =
  List.iter
    (fun resp ->
      let payload = Protocol.encode_response ~id:11 resp in
      match Protocol.decode_response payload with
      | Error e ->
          Alcotest.fail (Protocol.response_kind resp ^ " failed to decode: " ^ e)
      | Ok (id, resp') ->
          Alcotest.(check int) "id echoed" 11 id;
          Alcotest.(check string)
            (Protocol.response_kind resp ^ " canonical")
            payload
            (Protocol.encode_response ~id:11 resp'))
    all_responses

let test_error_codes () =
  List.iter
    (fun code ->
      match Protocol.error_code_of_string (Protocol.error_code_to_string code)
      with
      | Some code' ->
          Alcotest.(check string)
            "code round-trips"
            (Protocol.error_code_to_string code)
            (Protocol.error_code_to_string code')
      | None -> Alcotest.fail "error code failed to round-trip")
    [
      Protocol.Bad_request; Protocol.Parse_error; Protocol.Exec_error;
      Protocol.Txn_state; Protocol.Version_mismatch; Protocol.Too_large;
      Protocol.Busy; Protocol.Shutting_down; Protocol.Internal;
      Protocol.Overloaded; Protocol.Deadline_exceeded; Protocol.Wrong_shard;
      Protocol.Auth_failed;
    ];
  Alcotest.(check bool)
    "unknown code rejected" true
    (Protocol.error_code_of_string "no_such_code" = None)

(* The principal tag is a keyed MAC: it must verify for the exact
   (secret, name) pair that produced it and nothing else, and malformed
   hex must be a plain reject rather than an exception. *)
let test_principal_tags () =
  let secret = "wire-test-secret" in
  let tag = Protocol.principal_tag ~secret "alice" in
  Alcotest.(check bool) "tag verifies" true
    (Protocol.principal_tag_ok ~secret ~name:"alice" ~tag);
  Alcotest.(check bool) "wrong name" false
    (Protocol.principal_tag_ok ~secret ~name:"bob" ~tag);
  Alcotest.(check bool) "wrong secret" false
    (Protocol.principal_tag_ok ~secret:"other" ~name:"alice" ~tag);
  Alcotest.(check bool) "truncated tag" false
    (Protocol.principal_tag_ok ~secret ~name:"alice"
       ~tag:(String.sub tag 0 (String.length tag - 2)));
  Alcotest.(check bool) "non-hex tag" false
    (Protocol.principal_tag_ok ~secret ~name:"alice" ~tag:"zz not hex");
  Alcotest.(check bool) "empty tag" false
    (Protocol.principal_tag_ok ~secret ~name:"alice" ~tag:"");
  (* Tags are domain-separated per name: distinct names, distinct tags. *)
  Alcotest.(check bool) "tags differ by name" true
    (tag <> Protocol.principal_tag ~secret "alice2")

let test_malformed_payloads () =
  let bad payload =
    match Protocol.decode_request payload with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail ("accepted malformed payload: " ^ payload)
  in
  bad "not json at all";
  bad "[1,2,3]";
  bad "{\"id\": 1}";
  bad "{\"id\": 1, \"req\": \"no_such_request\"}";
  bad "{\"id\": 1, \"req\": \"exec\"}";
  bad "{\"id\": 1, \"req\": \"receipt\", \"txn_id\": \"not an int\"}";
  match Protocol.decode_response "{\"id\": 1, \"resp\": \"nope\"}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted unknown response kind"

let test_frame_then_protocol_huge () =
  (* A huge but legitimate request — a multi-megabyte INSERT — through
     framing and protocol together. *)
  let a, b = pair () in
  let sql =
    "INSERT INTO blobs VALUES (1, '" ^ String.make (1024 * 1024) 'z' ^ "')"
  in
  let writer =
    Thread.create
      (fun () -> Frame.send a (Protocol.encode_request ~id:1 (Protocol.Exec { sql })))
      ()
  in
  let payload = recv_frame b in
  Thread.join writer;
  (match Protocol.decode_request payload with
  | Ok (1, None, None, Protocol.Exec { sql = sql' }) ->
      Alcotest.(check int) "huge sql intact" (String.length sql)
        (String.length sql')
  | _ -> Alcotest.fail "huge request failed to decode");
  Frame.close a;
  Frame.close b

let () =
  Alcotest.run "wire"
    [
      ( "frame",
        [
          Alcotest.test_case "roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "huge frame" `Quick test_huge_frame;
          Alcotest.test_case "truncated payload" `Quick test_truncated_frame;
          Alcotest.test_case "truncated header" `Quick test_truncated_header;
          Alcotest.test_case "junk bytes" `Quick test_junk_before_frame;
          Alcotest.test_case "oversized" `Quick test_oversized_frame;
          Alcotest.test_case "control characters" `Quick test_control_chars;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "request catalogue" `Quick test_request_roundtrip;
          Alcotest.test_case "deadline envelope" `Quick test_deadline_envelope;
          Alcotest.test_case "response catalogue" `Quick
            test_response_roundtrip;
          Alcotest.test_case "error codes" `Quick test_error_codes;
          Alcotest.test_case "principal tags" `Quick test_principal_tags;
          Alcotest.test_case "malformed payloads" `Quick
            test_malformed_payloads;
          Alcotest.test_case "huge request end-to-end" `Quick
            test_frame_then_protocol_huge;
        ] );
    ]
