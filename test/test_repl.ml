(* Networked streaming replication (§3.6 over the wire): WAL tail
   cursors, the stream codec, the primary-side registry, and full
   primary/replica/promotion round trips over real localhost TCP.

   The heavyweight tests drive the same binaries' code paths the CLI
   uses: a primary [Server] plus a [Replica_node] (replication client +
   read-only server sharing one lock), loaded concurrently, then checked
   differentially — byte-identical snapshots, identical verification
   results through both ports, typed read_only/replication_lag errors,
   crash-resume from the persisted position, and promotion that retains
   every digested transaction. *)

module Server = Ledger_server.Server
module Node = Ledger_server.Replica_node
module Client = Wire.Client
module Protocol = Wire.Protocol
module LR = Aries.Log_record
open Sql_ledger

let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let with_tmp_dir f =
  let dir = Filename.temp_dir "sqlledger-repl" "" in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let contains haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let await ?(timeout = 15.0) ~what cond =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if cond () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail ("timed out waiting for " ^ what)
    else begin
      Thread.delay 0.02;
      go ()
    end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Wal.Tail *)

let test_tail_cursor () =
  let path = Filename.temp_file "tail" ".log" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let w = Aries.Wal.create ~path ~sync_commits:false () in
  for i = 1 to 5 do
    ignore (Aries.Wal.append w (LR.Begin { txn_id = i }) : int)
  done;
  Aries.Wal.sync w;
  let c = Aries.Wal.Tail.create path in
  (match Aries.Wal.Tail.poll c with
  | Ok records ->
      Alcotest.(check (list int)) "first poll sees everything" [ 1; 2; 3; 4; 5 ]
        (List.map fst records)
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "position tracks" 5 (Aries.Wal.Tail.position c);
  (* Nothing new: empty, cheaply. *)
  (match Aries.Wal.Tail.poll c with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "second poll must be empty"
  | Error e -> Alcotest.fail e);
  for i = 6 to 8 do
    ignore (Aries.Wal.append w (LR.Begin { txn_id = i }) : int)
  done;
  Aries.Wal.sync w;
  (match Aries.Wal.Tail.poll c with
  | Ok records ->
      Alcotest.(check (list int)) "only the new tail" [ 6; 7; 8 ]
        (List.map fst records)
  | Error e -> Alcotest.fail e);
  Aries.Wal.close w;
  (* A partial (unterminated) line is left for the next poll... *)
  let oc = open_out_gen [ Open_wronly; Open_append ] 0o644 path in
  output_string oc {|{"type":"begin","txn|};
  flush oc;
  (match Aries.Wal.Tail.poll c with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "torn tail must not be consumed"
  | Error e -> Alcotest.fail ("torn tail must not error: " ^ e));
  (* ...and consumed once the writer completes it. *)
  output_string oc "_id\":9}\n";
  close_out oc;
  (match Aries.Wal.Tail.poll c with
  | Ok [ (9, LR.Begin { txn_id = 9 }) ] -> ()
  | Ok _ -> Alcotest.fail "completed line should yield LSN 9"
  | Error e -> Alcotest.fail e);
  (* A shrinking file means the log was replaced under us: error out
     rather than serving records from an unrelated history. *)
  Unix.truncate path 10;
  match Aries.Wal.Tail.poll c with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "shrunk file must error"

let test_tail_resume_after () =
  let path = Filename.temp_file "tail" ".log" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let w = Aries.Wal.create ~path ~sync_commits:false () in
  for i = 1 to 6 do
    ignore (Aries.Wal.append w (LR.Begin { txn_id = i }) : int)
  done;
  Aries.Wal.sync w;
  Aries.Wal.close w;
  let c = Aries.Wal.Tail.create ~after:4 path in
  match Aries.Wal.Tail.poll c with
  | Ok records ->
      Alcotest.(check (list int)) "records after the resume point" [ 5; 6 ]
        (List.map fst records)
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Stream codec *)

let test_stream_codec () =
  let records =
    [ (4, LR.Begin { txn_id = 2 }); (5, LR.Abort { txn_id = 2 }) ]
  in
  (match Repl.Stream.decode (Repl.Stream.encode_batch records) with
  | Ok (Repl.Stream.Batch { records = got }) ->
      Alcotest.(check (list int)) "lsns survive" [ 4; 5 ] (List.map fst got)
  | Ok _ -> Alcotest.fail "batch decoded as something else"
  | Error e -> Alcotest.fail e);
  (* Corrupting the checksum must reject the whole batch. *)
  let good_crc =
    Printf.sprintf "%08lx"
      (Repl.Stream.batch_crc
         (List.map
            (fun (lsn, r) -> (lsn, Sjson.to_string (LR.to_json r)))
            records))
  in
  let bad_crc = if good_crc = "00000000" then "00000001" else "00000000" in
  let encoded = Repl.Stream.encode_batch records in
  let tampered =
    let b = Buffer.create (String.length encoded) in
    let i = ref 0 and n = String.length encoded in
    while !i < n do
      if
        !i + 8 <= n
        && String.sub encoded !i 8 = good_crc
      then begin
        Buffer.add_string b bad_crc;
        i := !i + 8
      end
      else begin
        Buffer.add_char b encoded.[!i];
        incr i
      end
    done;
    Buffer.contents b
  in
  (match Repl.Stream.decode tampered with
  | Error e ->
      Alcotest.(check bool) "checksum error" true (contains e "checksum")
  | Ok _ -> Alcotest.fail "tampered batch must not decode");
  (match Repl.Stream.decode (Repl.Stream.encode_heartbeat ~last_lsn:42) with
  | Ok (Repl.Stream.Heartbeat { last_lsn = 42 }) -> ()
  | _ -> Alcotest.fail "heartbeat roundtrip");
  match
    Repl.Stream.decode
      (Repl.Stream.encode_ack ~last_lsn:7 ~replicated_upto:123.5)
  with
  | Ok (Repl.Stream.Ack { last_lsn = 7; replicated_upto = 123.5 }) -> ()
  | _ -> Alcotest.fail "ack roundtrip"

(* ------------------------------------------------------------------ *)
(* Manager registry *)

let test_manager_gate () =
  let primary_lsn = ref 10 and primary_ts = ref 100.0 in
  let m =
    Repl.Manager.create
      ~last_lsn:(fun () -> !primary_lsn)
      ~last_commit_ts:(fun () -> !primary_ts)
  in
  Alcotest.(check bool) "no replicas: gate wide open" true
    (Repl.Manager.replicated_upto m = infinity);
  let a, _ = Repl.Manager.register m ~id:"a" ~peer:"s1" ~from_lsn:0 in
  Alcotest.(check bool) "registered but silent: gate shut" true
    (Repl.Manager.replicated_upto m = 0.0);
  Repl.Manager.ack m a ~last_lsn:10 ~upto:100.0;
  Alcotest.(check bool) "acked: gate at the ack" true
    (Repl.Manager.replicated_upto m = 100.0);
  (* A second, lagging replica drags the minimum down. *)
  let b, b_epoch = Repl.Manager.register m ~id:"b" ~peer:"s2" ~from_lsn:0 in
  Repl.Manager.ack m b ~last_lsn:4 ~upto:40.0;
  Alcotest.(check bool) "min over replicas" true
    (Repl.Manager.replicated_upto m = 40.0);
  (* Disconnection must NOT drop a replica out of the gate. *)
  Repl.Manager.disconnect m b ~epoch:b_epoch;
  Alcotest.(check bool) "disconnected stays in the min" true
    (Repl.Manager.replicated_upto m = 40.0);
  Alcotest.(check int) "known" 2 (Repl.Manager.replica_count m);
  Alcotest.(check int) "connected" 1 (Repl.Manager.connected_count m);
  (* Reconnect reuses the entry and bumps the connect counter. *)
  let b', b'_epoch = Repl.Manager.register m ~id:"b" ~peer:"s3" ~from_lsn:4 in
  Alcotest.(check bool) "same entry reused" true (b == b');
  Alcotest.(check bool) "re-registration bumps the epoch" true
    (b'_epoch > b_epoch);
  (* The superseded feeder's epoch is no longer current, and its exit
     must not mark the live session disconnected. *)
  Alcotest.(check bool) "old epoch superseded" false
    (Repl.Manager.current m b ~epoch:b_epoch);
  Alcotest.(check bool) "new epoch current" true
    (Repl.Manager.current m b' ~epoch:b'_epoch);
  Repl.Manager.disconnect m b ~epoch:b_epoch;
  Alcotest.(check int) "stale disconnect ignored" 2
    (Repl.Manager.connected_count m);
  Alcotest.(check int) "still two known" 2 (Repl.Manager.replica_count m);
  (* Acks are monotonic: a stale ack cannot move the gate backwards. *)
  Repl.Manager.ack m b ~last_lsn:2 ~upto:20.0;
  Alcotest.(check bool) "stale ack ignored" true
    (Repl.Manager.replicated_upto m = 40.0)

(* ------------------------------------------------------------------ *)
(* Wire fixtures *)

let connect port =
  match Client.connect ~host:"127.0.0.1" ~port () with
  | Ok c -> c
  | Error e -> Alcotest.fail (Client.connect_error_to_string e)

let call client req =
  match Client.call client req with
  | Ok resp -> resp
  | Error e -> Alcotest.fail ("transport error: " ^ e)

let expect_ok what = function
  | Protocol.Error_r { message; _ } -> Alcotest.fail (what ^ ": " ^ message)
  | _ -> ()

let create_accounts client =
  expect_ok "create"
    (call client
       (Protocol.Create_table
          {
            name = "accounts";
            columns = [ ("name", "varchar(40)"); ("balance", "int") ];
            key = [ "name" ]; ledger = true
          }))

let insert client name balance =
  call client
    (Protocol.Exec
       {
         sql =
           Printf.sprintf "INSERT INTO accounts VALUES ('%s', %d)" name
             balance;
       })

let select_all client =
  match
    call client
      (Protocol.Query { sql = "SELECT * FROM accounts ORDER BY name" })
  with
  | Protocol.Rows_r { rows; _ } -> rows
  | resp -> Alcotest.fail ("select returned " ^ Protocol.response_kind resp)

let with_primary ?(tweak = fun c -> c) f =
  with_tmp_dir (fun dir ->
      let config = tweak { Server.default_config with port = 0; dir } in
      let srv =
        match Server.start ~config () with
        | Ok s -> s
        | Error e -> Alcotest.fail (Server.start_error_to_string e)
      in
      let th = Server.run_async srv in
      Fun.protect
        ~finally:(fun () -> Server.shutdown srv th)
        (fun () -> f ~dir ~port:(Server.port srv) srv))

let start_node ~dir ~primary_port =
  let config = { Server.default_config with port = 0; dir } in
  match Node.start ~config ~primary_host:"127.0.0.1" ~primary_port () with
  | Ok node -> (node, Node.run_async node)
  | Error e -> Alcotest.fail (Server.start_error_to_string e)

let primary_db srv = Durable.db (Option.get (Server.durable srv))

let primary_lsn srv =
  Aries.Wal.last_lsn (Database_ledger.wal (Database.ledger (primary_db srv)))

let await_caught_up ?timeout srv node =
  await ?timeout ~what:"replica catch-up" (fun () ->
      Repl.Client.last_lsn (Node.client node) = primary_lsn srv)

(* Digest with the gate's transient outcomes retried: over the wire a
   deferral is a typed error, and an immediate digest after a commit can
   legitimately race the replica's ack. *)
let rec digest_retry ?(attempts = 200) c =
  match call c Protocol.Digest with
  | Protocol.Digest_r json -> json
  | Protocol.Error_r
      { code = Protocol.Replication_lag | Protocol.Replication_stuck; _ }
    when attempts > 0 ->
      Thread.delay 0.05;
      digest_retry ~attempts:(attempts - 1) c
  | r -> Alcotest.fail ("digest returned " ^ Protocol.response_kind r)

let digest_of_json json =
  match Digest.of_json json with
  | Ok d -> d
  | Error e -> Alcotest.fail ("bad digest json: " ^ e)

(* ------------------------------------------------------------------ *)
(* End-to-end differential *)

let test_e2e_differential () =
  with_primary (fun ~dir:_ ~port srv ->
      with_tmp_dir (fun rep_dir ->
          let node, nth = start_node ~dir:rep_dir ~primary_port:port in
          let c = connect port in
          create_accounts c;
          (* Concurrent writers racing the stream. *)
          let writers =
            List.init 4 (fun w ->
                Thread.create
                  (fun () ->
                    let wc = connect port in
                    for i = 0 to 24 do
                      expect_ok "insert"
                        (insert wc (Printf.sprintf "w%d-%03d" w i) i)
                    done;
                    Client.close wc)
                  ())
          in
          List.iter Thread.join writers;
          await_caught_up srv node;
          (* Same rows through both ports. *)
          let rc = connect (Node.port node) in
          Alcotest.(check int) "100 rows on the primary" 100
            (List.length (select_all c));
          Alcotest.(check bool) "identical rows through both ports" true
            (select_all c = select_all rc);
          (* Byte-identical materialised state. *)
          let prim_snap = Sjson.to_string (Snapshot.save (primary_db srv)) in
          let rep_snap =
            Sjson.to_string
              (Snapshot.save
                 (Option.get (Repl.Client.database (Node.client node))))
          in
          Alcotest.(check bool) "byte-identical snapshots" true
            (prim_snap = rep_snap);
          (* A digest issued by the primary verifies on the replica, over
             the wire, with identical results. *)
          let dj = digest_retry c in
          await_caught_up srv node;
          let check_verify who client =
            match
              call client (Protocol.Verify { tables = []; digests = [ dj ] })
            with
            | Protocol.Verify_r v ->
                Alcotest.(check bool) (who ^ " verification ok") true
                  v.Protocol.vs_ok;
                (v.Protocol.vs_blocks, v.Protocol.vs_transactions,
                 v.Protocol.vs_versions)
            | r ->
                Alcotest.fail
                  (who ^ " verify returned " ^ Protocol.response_kind r)
          in
          Alcotest.(check bool) "identical verification on both ports" true
            (check_verify "primary" c = check_verify "replica" rc);
          (* Writes are refused with the typed error naming the primary. *)
          (match insert rc "nope" 1 with
          | Protocol.Error_r { code = Protocol.Read_only; message; _ } ->
              Alcotest.(check bool) "error names the primary" true
                (contains message (Printf.sprintf "127.0.0.1:%d" port))
          | r ->
              Alcotest.fail ("replica write returned " ^ Protocol.response_kind r));
          (match call rc (Protocol.Checkpoint) with
          | Protocol.Error_r { code = Protocol.Read_only; _ } -> ()
          | r ->
              Alcotest.fail
                ("replica checkpoint returned " ^ Protocol.response_kind r));
          (* Replication metrics visible through Stats on both sides. *)
          (match call c Protocol.Stats with
          | Protocol.Stats_r lines ->
              let has prefix =
                List.exists
                  (fun l ->
                    String.length l >= String.length prefix
                    && String.sub l 0 (String.length prefix) = prefix)
                  lines
              in
              Alcotest.(check bool) "primary exports replica lag lines" true
                (has "sqlledger_replicas_known 1"
                && has "sqlledger_replica_lag_records");
          | r -> Alcotest.fail ("stats returned " ^ Protocol.response_kind r));
          (match call rc Protocol.Stats with
          | Protocol.Stats_r lines ->
              Alcotest.(check bool) "replica exports client lines" true
                (List.exists
                   (fun l -> l = "sqlledger_repl_client_connected 1")
                   lines)
          | r -> Alcotest.fail ("stats returned " ^ Protocol.response_kind r));
          Client.close c;
          Client.close rc;
          Node.shutdown node nth))

(* ------------------------------------------------------------------ *)
(* Compaction under a live stream *)

(* Compacting the primary swaps the ledger's WAL handle
   ([Database_ledger.attach_wal]); the feed loop must pick up the new
   handle rather than tailing the dead one forever — records committed
   after the compaction still have to reach the replica. *)
let test_stream_survives_compaction () =
  with_primary (fun ~dir:_ ~port srv ->
      with_tmp_dir (fun rep_dir ->
          let node, nth = start_node ~dir:rep_dir ~primary_port:port in
          let c = connect port in
          create_accounts c;
          for i = 0 to 9 do
            expect_ok "insert" (insert c (Printf.sprintf "pre-%02d" i) i)
          done;
          await_caught_up srv node;
          (* Quiescent: no writers in flight, so compacting outside the
             engine lock is race-free here. The handle swap is what the
             stream has to survive. *)
          Durable.compact (Option.get (Server.durable srv));
          for i = 0 to 9 do
            expect_ok "insert" (insert c (Printf.sprintf "post-%02d" i) i)
          done;
          await_caught_up srv node;
          let rc = connect (Node.port node) in
          Alcotest.(check int) "all rows on the primary" 20
            (List.length (select_all c));
          Alcotest.(check bool) "replica converged across compaction" true
            (select_all c = select_all rc);
          (* And the gate still sees the replica's acks: a digest must be
             issuable, not stuck deferring on a stale LSN. *)
          ignore (digest_retry c : Sjson.t);
          Client.close c;
          Client.close rc;
          Node.shutdown node nth))

(* ------------------------------------------------------------------ *)
(* The digest gate over the wire *)

let test_lag_gate_over_wire () =
  with_primary (fun ~dir:_ ~port srv ->
      with_tmp_dir (fun rep_dir ->
          let node, nth = start_node ~dir:rep_dir ~primary_port:port in
          let c = connect port in
          create_accounts c;
          expect_ok "insert" (insert c "alice" 1);
          await_caught_up srv node;
          ignore (digest_retry c : Sjson.t);
          (* Stop the replica, then commit: the gate must defer. *)
          Node.shutdown node nth;
          expect_ok "insert" (insert c "bob" 2);
          let expect_code what code =
            match call c Protocol.Digest with
            | Protocol.Error_r { code = got; _ } when got = code -> ()
            | Protocol.Error_r { code = got; message; _ } ->
                Alcotest.fail
                  (Printf.sprintf "%s: got %s (%s)" what
                     (Protocol.error_code_to_string got)
                     message)
            | r -> Alcotest.fail (what ^ ": got " ^ Protocol.response_kind r)
          in
          for _ = 1 to 4 do
            expect_code "deferred while replica down" Protocol.Replication_lag
          done;
          expect_code "escalates to stuck" Protocol.Replication_stuck;
          (* The primary's metrics show the known-but-disconnected
             replica. *)
          (match call c Protocol.Stats with
          | Protocol.Stats_r lines ->
              Alcotest.(check bool) "known 1, connected 0" true
                (List.mem "sqlledger_replicas_known 1" lines
                && List.mem "sqlledger_replicas_connected 0" lines)
          | r -> Alcotest.fail ("stats returned " ^ Protocol.response_kind r));
          (* Restarting the replica against the same directory resumes
             from its persisted position and reopens the gate. *)
          let node2, nth2 = start_node ~dir:rep_dir ~primary_port:port in
          await_caught_up srv node2;
          ignore (digest_retry c : Sjson.t);
          Alcotest.(check int) "both rows on the replica" 2
            (let rc = connect (Node.port node2) in
             let n = List.length (select_all rc) in
             Client.close rc;
             n);
          Client.close c;
          Node.shutdown node2 nth2))

(* ------------------------------------------------------------------ *)
(* Crash/restart: resume from the persisted LSN *)

let run_raw_client client =
  Thread.create
    (fun () -> try Repl.Client.run client ~with_write:(fun f -> f ()) with _ -> ())
    ()

let test_crash_restart_failpoints () =
  with_primary (fun ~dir:_ ~port srv ->
      with_tmp_dir (fun rep_dir ->
          let c = connect port in
          create_accounts c;
          expect_ok "insert" (insert c "a" 1);
          (* First incarnation: sync fully, then crash on the next apply. *)
          let cl1 =
            match
              Repl.Client.open_dir ~primary_host:"127.0.0.1" ~primary_port:port
                ~dir:rep_dir ()
            with
            | Ok cl -> cl
            | Error e -> Alcotest.fail e
          in
          let th1 = run_raw_client cl1 in
          await ~what:"first sync" (fun () ->
              Repl.Client.last_lsn cl1 = primary_lsn srv);
          let persisted = Repl.Client.last_lsn cl1 in
          Fault.set "repl.apply" Fault.Fail;
          expect_ok "insert" (insert c "b" 2);
          await ~what:"injected apply crash" (fun () ->
              Repl.Client.stopped cl1);
          Thread.join th1;
          Repl.Client.close cl1;
          Alcotest.(check string) "crash is recorded" "injected replica crash"
            (Repl.Client.last_error cl1);
          (* Restart against the durable directory: the new incarnation
             resumes from the persisted LSN (nothing lost, nothing
             re-fetched from zero) and catches up. *)
          let cl2 =
            match
              Repl.Client.open_dir ~primary_host:"127.0.0.1" ~primary_port:port
                ~dir:rep_dir ()
            with
            | Ok cl -> cl
            | Error e -> Alcotest.fail e
          in
          Alcotest.(check int) "resumes from the persisted LSN" persisted
            (Repl.Client.last_lsn cl2);
          Alcotest.(check string) "stable replica identity"
            (Repl.Client.id cl1) (Repl.Client.id cl2);
          let th2 = run_raw_client cl2 in
          await ~what:"second sync" (fun () ->
              Repl.Client.last_lsn cl2 = primary_lsn srv);
          (* Ack-path crash: the batch is already durable locally, so the
             third incarnation starts past it. *)
          Fault.set "repl.ack" Fault.Fail;
          expect_ok "insert" (insert c "c" 3);
          await ~what:"injected ack crash" (fun () -> Repl.Client.stopped cl2);
          Thread.join th2;
          let after_ack_crash = Repl.Client.last_lsn cl2 in
          Repl.Client.close cl2;
          Alcotest.(check bool) "ack crash happens after durable apply" true
            (after_ack_crash > persisted);
          let cl3 =
            match
              Repl.Client.open_dir ~primary_host:"127.0.0.1" ~primary_port:port
                ~dir:rep_dir ()
            with
            | Ok cl -> cl
            | Error e -> Alcotest.fail e
          in
          Alcotest.(check int) "durable batch survived the ack crash"
            after_ack_crash
            (Repl.Client.last_lsn cl3);
          let th3 = run_raw_client cl3 in
          await ~what:"third sync" (fun () ->
              Repl.Client.last_lsn cl3 = primary_lsn srv);
          (* Contents identical to the primary after all that. *)
          let prim = Sjson.to_string (Snapshot.save (primary_db srv)) in
          let rep =
            Sjson.to_string
              (Snapshot.save (Option.get (Repl.Client.database cl3)))
          in
          Alcotest.(check bool) "contents identical after crashes" true
            (prim = rep);
          Repl.Client.stop cl3;
          Thread.join th3;
          Repl.Client.close cl3;
          Client.close c))

(* ------------------------------------------------------------------ *)
(* Promotion *)

let test_promotion_differential () =
  with_tmp_dir (fun rep_dir ->
      let digests = ref [] in
      let rows = ref [] in
      with_primary (fun ~dir:_ ~port srv ->
          let node, nth = start_node ~dir:rep_dir ~primary_port:port in
          let c = connect port in
          create_accounts c;
          for i = 1 to 12 do
            expect_ok "insert" (insert c (Printf.sprintf "acct-%02d" i) i)
          done;
          await_caught_up srv node;
          let d1 = digest_retry c in
          for i = 13 to 20 do
            expect_ok "insert" (insert c (Printf.sprintf "acct-%02d" i) i)
          done;
          await_caught_up srv node;
          let d2 = digest_retry c in
          (* Wait for the digest's own block-close record to ship too, so
             the replica holds everything the digests reference. *)
          await_caught_up srv node;
          digests := [ digest_of_json d1; digest_of_json d2 ];
          rows := select_all c;
          (* Serving the replica directory as a primary must be refused
             while it is still marked. *)
          (match
             Server.start
               ~config:{ Server.default_config with port = 0; dir = rep_dir }
               ()
           with
          | Error (Server.Startup msg) ->
              Alcotest.(check bool) "refusal mentions promote" true
                (contains msg "promote")
          | Error _ -> Alcotest.fail "expected a startup refusal"
          | Ok _ -> Alcotest.fail "serving a replica dir must be refused");
          Client.close c;
          Node.shutdown node nth);
      (* Primary gone (drained). Promote the replica directory and serve
         it: every digested transaction must be there, and the promoted
         node must verify against the digests the old primary issued. *)
      (match Repl.Client.promote_dir ~dir:rep_dir () with
      | Error e -> Alcotest.fail e
      | Ok durable ->
          Alcotest.(check bool) "promotion verifies offline" true
            (Verifier.ok (Verifier.verify (Durable.db durable) ~digests:!digests)));
      Alcotest.(check bool) "marker gone" false
        (Repl.Client.is_replica_dir rep_dir);
      let config = { Server.default_config with port = 0; dir = rep_dir } in
      let srv2 =
        match Server.start ~config () with
        | Ok s -> s
        | Error e -> Alcotest.fail (Server.start_error_to_string e)
      in
      let th2 = Server.run_async srv2 in
      Fun.protect
        ~finally:(fun () -> Server.shutdown srv2 th2)
        (fun () ->
          let c = connect (Server.port srv2) in
          Alcotest.(check bool) "promoted node serves the same rows" true
            (select_all c = !rows);
          (* Writes are accepted now: it is a primary. *)
          expect_ok "write after promotion" (insert c "post-failover" 1);
          (match
             call c
               (Protocol.Verify
                  { tables = []; digests = List.map Digest.to_json !digests })
           with
          | Protocol.Verify_r v ->
              Alcotest.(check bool)
                "promoted node verifies the old primary's digests" true
                v.Protocol.vs_ok
          | r -> Alcotest.fail ("verify returned " ^ Protocol.response_kind r));
          Client.close c))

(* Reconnect backoff is a pure function of (seed, attempt), so the
   anti-thundering-herd property is provable without clocks: two
   replicas orphaned by the same crash share the attempt counter but
   not the seed, and their schedules must diverge. *)
let test_reconnect_jitter_desync () =
  let backoff_min = 0.05 and backoff_max = 2.0 in
  let delay seed attempt =
    Repl.Client.backoff_delay ~seed ~attempt ~backoff_min ~backoff_max
  in
  let seed_a = Int32.to_int (Fault.Crc32.string "replica-a")
  and seed_b = Int32.to_int (Fault.Crc32.string "replica-b") in
  (* Deterministic: a failing run replays from its identity. *)
  for attempt = 0 to 10 do
    Alcotest.(check (float 0.0))
      (Printf.sprintf "attempt %d is reproducible" attempt)
      (delay seed_a attempt) (delay seed_a attempt)
  done;
  (* Bounded: full jitter never exceeds the capped-exponential ceiling
     min(max, min * 2^attempt), and never goes negative. *)
  List.iter
    (fun seed ->
      for attempt = 0 to 20 do
        let d = delay seed attempt in
        let cap =
          Float.min backoff_max (backoff_min *. (2. ** float_of_int attempt))
        in
        Alcotest.(check bool)
          (Printf.sprintf "0 <= delay <= %.3f at attempt %d" cap attempt)
          true
          (d >= 0.0 && d <= cap)
      done)
    [ seed_a; seed_b ];
  (* Desynchronised: across a burst of shared attempt numbers the two
     replicas must not land in lock-step. One accidental collision is
     conceivable; all eleven identical would mean the seed is dead. *)
  let collisions = ref 0 in
  for attempt = 4 to 14 do
    if Float.abs (delay seed_a attempt -. delay seed_b attempt) < 1e-9 then
      incr collisions
  done;
  Alcotest.(check bool) "schedules diverge across replicas" true
    (!collisions <= 1);
  (* Deep attempts stay pinned under backoff_max instead of overflowing
     the 2^attempt term. *)
  let d62 = delay seed_a 62 in
  Alcotest.(check bool) "attempt 62 still bounded" true
    (d62 >= 0.0 && d62 <= backoff_max)

let () =
  Alcotest.run "repl"
    [
      ( "tail",
        [
          Alcotest.test_case "incremental tail cursor" `Quick test_tail_cursor;
          Alcotest.test_case "resume after an LSN" `Quick
            test_tail_resume_after;
        ] );
      ( "stream",
        [ Alcotest.test_case "codec + checksum" `Quick test_stream_codec ] );
      ( "manager",
        [ Alcotest.test_case "registry and gate" `Quick test_manager_gate ] );
      ( "backoff",
        [
          Alcotest.test_case "reconnect jitter desyncs replicas" `Quick
            test_reconnect_jitter_desync;
        ] );
      ( "e2e",
        [
          Alcotest.test_case "differential primary vs replica" `Quick
            test_e2e_differential;
          Alcotest.test_case "stream survives primary compaction" `Quick
            test_stream_survives_compaction;
          Alcotest.test_case "digest gate over the wire" `Quick
            test_lag_gate_over_wire;
          Alcotest.test_case "crash/restart resumes from persisted LSN" `Quick
            test_crash_restart_failpoints;
          Alcotest.test_case "promotion retains digested transactions" `Quick
            test_promotion_differential;
        ] );
    ]
