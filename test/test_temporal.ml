(* Temporal queries (FOR SYSTEM_TIME AS OF) and the <table>_ledger
   provenance view, differentially tested against a serial replay
   oracle: the test replays the same seeded multi-principal workload
   into a plain assoc-list model, snapshotting it after every commit,
   then checks that every AS OF query reproduces the snapshot taken at
   that commit timestamp — and that each row version in the provenance
   view names the principal that actually wrote it. *)

open Relation
open Sql_ledger
open Testkit

let sorted rows = List.sort Row.compare rows

let query db sql = Database.query db sql

let col_names rel =
  Array.to_list rel.Sqlexec.Rel.cols
  |> List.map (fun (c : Sqlexec.Rel.col) -> c.col_name)

(* --- seeded differential oracle --- *)

let principals = [| "alice"; "bob"; "carol" |]

type op_log = {
  mutable commits : (float * (string * int) list) list;
      (** (commit_ts, model state after the commit), newest first *)
  mutable writers : (int * string) list;  (** txn_id -> principal *)
  mutable versions : int;  (** row versions written (1 or 2 per op) *)
}

let run_workload db accounts ~ops ~seed =
  let rng = Random.State.make [| seed |] in
  let model = ref [] in
  let log = { commits = []; writers = []; versions = 0 } in
  for i = 0 to ops - 1 do
    let user = principals.(Random.State.int rng (Array.length principals)) in
    let existing = List.map fst !model in
    let entry, versions =
      match (List.length existing, Random.State.int rng 3) with
      | 0, _ | _, 0 ->
          (* insert a fresh key *)
          let name = Printf.sprintf "acct%02d" i in
          let balance = Random.State.int rng 1000 in
          model := (name, balance) :: !model;
          ( commit_one db user (fun txn ->
                Txn.insert txn accounts [| vs name; vi balance |]),
            1 )
      | n, 1 ->
          (* update an existing key: DELETE + INSERT versions *)
          let name = List.nth existing (Random.State.int rng n) in
          let balance = Random.State.int rng 1000 in
          model :=
            (name, balance) :: List.remove_assoc name !model;
          ( commit_one db user (fun txn ->
                Txn.update txn accounts ~key:[| vs name |]
                  [| vs name; vi balance |]),
            2 )
      | n, _ ->
          (* delete an existing key *)
          let name = List.nth existing (Random.State.int rng n) in
          model := List.remove_assoc name !model;
          ( commit_one db user (fun txn ->
                Txn.delete txn accounts ~key:[| vs name |]),
            1 )
    in
    log.commits <-
      (entry.Types.commit_ts, List.sort compare !model) :: log.commits;
    log.writers <- (entry.Types.txn_id, user) :: log.writers;
    log.versions <- log.versions + versions
  done;
  log

let rows_of_model state =
  sorted (List.map (fun (name, balance) -> [| vs name; vi balance |]) state)

let test_as_of_differential () =
  let db = make_db "temporal" in
  let accounts = make_accounts db in
  let log = run_workload db accounts ~ops:40 ~seed:0xA50F in
  Alcotest.(check int) "40 commits recorded" 40 (List.length log.commits);
  (* Every recorded snapshot must be reproducible, both exactly at its
     commit timestamp and just before the next tick (the deterministic
     clock advances 1s per call, so +0.25s never crosses a commit). *)
  List.iter
    (fun (ts, state) ->
      List.iter
        (fun ts ->
          let rel =
            query db
              (Printf.sprintf
                 "SELECT * FROM accounts FOR SYSTEM_TIME AS OF %f" ts)
          in
          Alcotest.(check bool)
            (Printf.sprintf "state at %f" ts)
            true
            (List.for_all2 Row.equal (rows_of_model state)
               (sorted rel.Sqlexec.Rel.rows)
             && List.length rel.Sqlexec.Rel.rows = List.length state))
        [ ts; ts +. 0.25 ])
    log.commits;
  (* Before the first commit: nothing. *)
  let first_ts = fst (List.hd (List.rev log.commits)) in
  Alcotest.(check int) "empty before genesis" 0
    (List.length
       (query db
          (Printf.sprintf "SELECT * FROM accounts FOR SYSTEM_TIME AS OF %f"
             (first_ts -. 0.5)))
         .Sqlexec.Rel.rows);
  (* At (or after) the newest commit, AS OF equals the current table. *)
  let newest_ts = fst (List.hd log.commits) in
  let current = sorted (query db "SELECT * FROM accounts").Sqlexec.Rel.rows in
  let at_newest =
    sorted
      (query db
         (Printf.sprintf "SELECT * FROM accounts FOR SYSTEM_TIME AS OF %f"
            newest_ts))
        .Sqlexec.Rel.rows
  in
  Alcotest.(check bool) "as-of newest = current" true
    (List.length current = List.length at_newest
    && List.for_all2 Row.equal current at_newest)

let test_provenance_principals () =
  let db = make_db "provenance" in
  let accounts = make_accounts db in
  let log = run_workload db accounts ~ops:25 ~seed:0x9E0B in
  let rel = query db "SELECT * FROM accounts_ledger" in
  Alcotest.(check (list string)) "view columns"
    [ "name"; "balance"; "commit_time"; "principal_name"; "operation";
      "txn_id"; "seq" ]
    (col_names rel);
  Alcotest.(check int) "one row per version" log.versions
    (List.length rel.Sqlexec.Rel.rows);
  List.iter
    (fun row ->
      let txn_id =
        match row.(5) with Value.Int i -> i | _ -> Alcotest.fail "txn_id"
      in
      let principal =
        match row.(3) with Value.String s -> s | _ -> Alcotest.fail "principal"
      in
      match List.assoc_opt txn_id log.writers with
      | Some expected ->
          Alcotest.(check string)
            (Printf.sprintf "principal of txn %d" txn_id)
            expected principal
      | None -> Alcotest.failf "version from unknown txn %d" txn_id)
    rel.Sqlexec.Rel.rows;
  (* AS OF on the view keeps only versions committed by then. *)
  let mid_ts, _ = List.nth log.commits (List.length log.commits / 2) in
  let rel_asof =
    query db
      (Printf.sprintf
         "SELECT * FROM accounts_ledger FOR SYSTEM_TIME AS OF %f" mid_ts)
  in
  Alcotest.(check bool) "temporal view is a strict prefix" true
    (List.length rel_asof.Sqlexec.Rel.rows < List.length rel.Sqlexec.Rel.rows
    && rel_asof.Sqlexec.Rel.rows <> []);
  List.iter
    (fun row ->
      match row.(2) with
      | Value.Datetime ts ->
          Alcotest.(check bool) "committed before the cut" true (ts <= mid_ts)
      | _ -> Alcotest.fail "commit_time")
    rel_asof.Sqlexec.Rel.rows

let test_receipt_names_principal () =
  let db = make_db "receipt-principal" in
  let accounts = make_accounts db in
  let log = run_workload db accounts ~ops:12 ~seed:0x5EED in
  ignore (fresh_digest db);
  (* close the open block *)
  List.iter
    (fun (txn_id, principal) ->
      match Receipt.generate db ~txn_id with
      | Error e -> Alcotest.failf "receipt for txn %d: %s" txn_id e
      | Ok r ->
          Alcotest.(check string) "receipt proves the principal" principal
            r.Receipt.entry.Types.user;
          (match Receipt.verify r with
          | Ok () -> ()
          | Error f ->
              Alcotest.failf "receipt verify: %s" (Receipt.failure_to_string f));
          (* A forged principal must break offline verification. *)
          let forged =
            { r with Receipt.entry = { r.Receipt.entry with Types.user = "eve" } }
          in
          Alcotest.(check bool) "forged principal detected" true
            (Receipt.verify forged <> Ok ()))
    log.writers

let test_ledger_view_collisions () =
  let db = make_db "collisions" in
  let _ =
    Database.create_ledger_table db ~name:"evt"
      ~columns:
        [
          Column.make "operation" (Datatype.Varchar 20);
          Column.make "txn_id" Datatype.Int;
        ]
      ~key:[ "operation" ] ()
  in
  ignore (Dml.execute db ~user:"alice" "INSERT INTO evt VALUES ('boot', 7)");
  let rel = query db "SELECT * FROM evt_ledger" in
  (* User columns keep their bare names; the colliding provenance
     columns grow a ledger_ prefix. *)
  Alcotest.(check (list string)) "collision-prefixed columns"
    [ "operation"; "txn_id"; "commit_time"; "principal_name";
      "ledger_operation"; "ledger_txn_id"; "seq" ]
    (col_names rel);
  match rel.Sqlexec.Rel.rows with
  | [ row ] ->
      Alcotest.(check string) "user column value" "boot"
        (match row.(0) with Value.String s -> s | _ -> "?");
      Alcotest.(check string) "provenance operation" "INSERT"
        (match row.(4) with Value.String s -> s | _ -> "?");
      Alcotest.(check string) "principal" "alice"
        (match row.(3) with Value.String s -> s | _ -> "?")
  | rows -> Alcotest.failf "expected 1 version, got %d" (List.length rows)

let test_snapshot_survives_as_of () =
  (* AS OF resolution must work against a database rebuilt from its
     serialized form (history + entries round-trip the snapshot). *)
  let db = make_db "roundtrip" in
  let accounts = make_accounts db in
  let log = run_workload db accounts ~ops:10 ~seed:0xD15C in
  let json = Snapshot.save db in
  match Snapshot.load json with
  | Error e -> Alcotest.failf "snapshot load: %s" e
  | Ok db2 ->
      List.iter
        (fun (ts, state) ->
          let rel =
            query db2
              (Printf.sprintf
                 "SELECT * FROM accounts FOR SYSTEM_TIME AS OF %f" ts)
          in
          Alcotest.(check bool)
            (Printf.sprintf "reloaded state at %f" ts)
            true
            (List.length rel.Sqlexec.Rel.rows = List.length state
            && List.for_all2 Row.equal (rows_of_model state)
                 (sorted rel.Sqlexec.Rel.rows)))
        log.commits

let () =
  Alcotest.run "temporal"
    [
      ( "as of",
        [
          Alcotest.test_case "seeded differential vs oracle" `Quick
            test_as_of_differential;
          Alcotest.test_case "snapshot round-trip" `Quick
            test_snapshot_survives_as_of;
        ] );
      ( "provenance view",
        [
          Alcotest.test_case "principals per version" `Quick
            test_provenance_principals;
          Alcotest.test_case "column collisions" `Quick
            test_ledger_view_collisions;
        ] );
      ( "receipts",
        [
          Alcotest.test_case "receipt proves principal" `Quick
            test_receipt_names_principal;
        ] );
    ]
