(* The ledger server against real localhost TCP connections.

   Each fixture binds port 0 on a fresh temp directory, runs the accept
   loop in a background thread, and drives it with the same Wire.Client
   the CLI uses — plus raw Frame/Protocol sockets where the point is to
   misbehave (wrong protocol version, junk bytes, request before hello).
   Shutdown semantics are checked end-to-end: what a drained server
   leaves in --dir must reopen cleanly and reflect only committed
   transactions. *)

module Server = Ledger_server.Server
module Client = Wire.Client
module Frame = Wire.Frame
module Protocol = Wire.Protocol
open Sql_ledger

(* Writes into sockets the server has already closed must surface as
   EPIPE errors, not kill the test binary. *)
let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

(* GROUP_COMMIT_WINDOW_MS overrides the commit mode for the whole suite
   ("0" = legacy fsync-per-commit, anything positive = group commit with
   that coalescing window), so CI can run these sessions in both modes
   without a second test binary. *)
let base_config =
  match Sys.getenv_opt "GROUP_COMMIT_WINDOW_MS" with
  | None -> Server.default_config
  | Some ms -> (
      match float_of_string_opt ms with
      | Some v when v >= 0.0 ->
          { Server.default_config with group_commit_window = v /. 1000.0 }
      | _ -> Server.default_config)

let with_server ?(tweak = fun c -> c) f =
  let dir = Filename.temp_dir "sqlledger-test-server" "" in
  let config = tweak { base_config with port = 0; dir } in
  let srv =
    match Server.start ~config () with
    | Ok s -> s
    | Error e -> Alcotest.fail (Server.start_error_to_string e)
  in
  let th = Server.run_async srv in
  Fun.protect
    ~finally:(fun () -> Server.shutdown srv th)
    (fun () -> f ~dir ~port:(Server.port srv) srv)

let connect port =
  match Client.connect ~host:"127.0.0.1" ~port () with
  | Ok c -> c
  | Error e -> Alcotest.fail (Client.connect_error_to_string e)

let call client req =
  match Client.call client req with
  | Ok resp -> resp
  | Error e -> Alcotest.fail ("transport error: " ^ e)

let expect_ok what = function
  | Protocol.Error_r { message; _ } -> Alcotest.fail (what ^ ": " ^ message)
  | _ -> ()

let expect_error code what = function
  | Protocol.Error_r { code = c; _ } when c = code -> ()
  | Protocol.Error_r { code = c; message; _ } ->
      Alcotest.fail
        (Printf.sprintf "%s: expected %s error, got %s (%s)" what
           (Protocol.error_code_to_string code)
           (Protocol.error_code_to_string c)
           message)
  | resp ->
      Alcotest.fail
        (Printf.sprintf "%s: expected %s error, got %s" what
           (Protocol.error_code_to_string code)
           (Protocol.response_kind resp))

let create_accounts client =
  expect_ok "create"
    (call client
       (Protocol.Create_table
          {
            name = "accounts";
            columns = [ ("name", "varchar(40)"); ("balance", "int") ];
            key = [ "name" ]; ledger = true
          }))

let insert client name balance =
  call client
    (Protocol.Exec
       {
         sql =
           Printf.sprintf "INSERT INTO accounts VALUES ('%s', %d)" name balance;
       })

let count_rows client =
  match call client (Protocol.Query { sql = "SELECT * FROM accounts" }) with
  | Protocol.Rows_r { rows; _ } -> List.length rows
  | resp ->
      Alcotest.fail ("count query returned " ^ Protocol.response_kind resp)

(* Raw socket for protocol-level misbehaviour; performs no handshake. *)
let raw_connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  (* Bound the test, not the server: a hung server reads as EAGAIN here
     instead of a hung test run. *)
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0;
  Frame.of_fd fd

let raw_call conn req =
  Frame.send conn (Protocol.encode_request ~id:1 req);
  match Frame.recv conn with
  | Frame.Frame payload -> (
      match Protocol.decode_response payload with
      | Ok (_, resp) -> resp
      | Error e -> Alcotest.fail ("malformed response: " ^ e))
  | other ->
      Alcotest.fail
        ("expected a response frame, got "
        ^
        match other with
        | Frame.Eof -> "eof"
        | Frame.Truncated -> "truncated"
        | Frame.Junk _ -> "junk"
        | Frame.Oversized _ -> "oversized"
        | Frame.Frame _ -> assert false)

(* ------------------------------------------------------------------ *)

let test_e2e_flow () =
  with_server (fun ~dir:_ ~port _srv ->
      let c = connect port in
      Alcotest.(check bool) "welcome names the server" true
        (Client.server c <> "?");
      create_accounts c;
      expect_ok "insert" (insert c "Nick" 50);
      expect_ok "insert" (insert c "John" 500);
      (match call c (Protocol.Query { sql = "SELECT * FROM accounts" }) with
      | Protocol.Rows_r { columns; rows } ->
          Alcotest.(check (list string)) "columns" [ "name"; "balance" ] columns;
          Alcotest.(check int) "rows" 2 (List.length rows)
      | r -> Alcotest.fail ("query returned " ^ Protocol.response_kind r));
      (* An explicit transaction, to learn a txn id for the receipt. *)
      let txn_id =
        expect_ok "begin" (call c Protocol.Begin);
        expect_ok "insert in txn" (insert c "Mary" 200);
        match call c Protocol.Commit with
        | Protocol.Txn_r { txn_id = Some id } -> id
        | r -> Alcotest.fail ("commit returned " ^ Protocol.response_kind r)
      in
      (* Digest first: receipts need the transaction's block closed. *)
      let digest_json =
        match call c Protocol.Digest with
        | Protocol.Digest_r j -> j
        | r -> Alcotest.fail ("digest returned " ^ Protocol.response_kind r)
      in
      (match call c (Protocol.Receipt { txn_id }) with
      | Protocol.Receipt_r j -> (
          match Receipt.of_json j with
          | Ok r ->
              Alcotest.(check int) "receipt is for our txn" txn_id
                r.Receipt.entry.Types.txn_id
          | Error e -> Alcotest.fail ("receipt does not parse: " ^ e))
      | r -> Alcotest.fail ("receipt returned " ^ Protocol.response_kind r));
      (match
         call c (Protocol.Verify { tables = []; digests = [ digest_json ] })
       with
      | Protocol.Verify_r s ->
          Alcotest.(check bool) "verify ok" true s.Protocol.vs_ok;
          Alcotest.(check bool) "checked rows" true (s.Protocol.vs_versions > 0)
      | r -> Alcotest.fail ("verify returned " ^ Protocol.response_kind r));
      Client.close c)

let test_concurrent_sessions () =
  with_server (fun ~dir:_ ~port _srv ->
      let c0 = connect port in
      create_accounts c0;
      let clients = 4 and per_client = 20 in
      let failures = Atomic.make 0 in
      let worker i =
        let c = connect port in
        for k = 1 to per_client do
          match insert c (Printf.sprintf "user-%d-%d" i k) (100 + k) with
          | Protocol.Error_r _ -> Atomic.incr failures
          | _ -> ()
        done;
        Client.close c
      in
      let threads = List.init clients (fun i -> Thread.create worker i) in
      List.iter Thread.join threads;
      Alcotest.(check int) "no failed inserts" 0 (Atomic.get failures);
      Alcotest.(check int) "all rows landed" (clients * per_client)
        (count_rows c0);
      (* The ledger is coherent after the stampede. *)
      let digest_json =
        match call c0 Protocol.Digest with
        | Protocol.Digest_r j -> j
        | r -> Alcotest.fail ("digest returned " ^ Protocol.response_kind r)
      in
      (match
         call c0 (Protocol.Verify { tables = []; digests = [ digest_json ] })
       with
      | Protocol.Verify_r s ->
          Alcotest.(check bool) "verify ok" true s.Protocol.vs_ok
      | r -> Alcotest.fail ("verify returned " ^ Protocol.response_kind r));
      Client.close c0)

let test_txn_sessions () =
  with_server (fun ~dir:_ ~port _srv ->
      let a = connect port in
      create_accounts a;
      expect_ok "seed" (insert a "Seed" 1);
      (* Transaction state errors. *)
      expect_error Protocol.Txn_state "commit w/o begin" (call a Protocol.Commit);
      expect_error Protocol.Txn_state "rollback w/o begin"
        (call a Protocol.Rollback);
      expect_ok "begin" (call a Protocol.Begin);
      expect_error Protocol.Txn_state "double begin" (call a Protocol.Begin);
      (* Rolled-back work vanishes... *)
      expect_ok "insert in txn" (insert a "Ghost" 13);
      (match call a Protocol.Rollback with
      | Protocol.Txn_r { txn_id = None } -> ()
      | r -> Alcotest.fail ("rollback returned " ^ Protocol.response_kind r));
      Alcotest.(check int) "rollback leaves one row" 1 (count_rows a);
      (* ...while a second session's committed writes become visible. *)
      let b = connect port in
      expect_ok "begin b" (call b Protocol.Begin);
      expect_ok "insert b" (insert b "Durable" 7);
      expect_ok "commit b" (call b Protocol.Commit);
      Client.close b;
      Alcotest.(check int) "commit visible across sessions" 2 (count_rows a);
      (* A statement failure inside a transaction must not kill it:
         the savepoint undoes the statement, the txn commits clean. *)
      expect_ok "begin again" (call a Protocol.Begin);
      expect_error Protocol.Exec_error "duplicate key rejected"
        (insert a "Durable" 7);
      expect_ok "good insert after failed one" (insert a "Third" 3);
      expect_ok "commit survives" (call a Protocol.Commit);
      Alcotest.(check int) "only the good insert landed" 3 (count_rows a);
      Client.close a)

let test_idle_timeout () =
  with_server
    ~tweak:(fun c -> { c with Server.idle_timeout = 0.4 })
    (fun ~dir:_ ~port _srv ->
      let a = connect port in
      create_accounts a;
      expect_ok "begin" (call a Protocol.Begin);
      expect_ok "insert in txn" (insert a "Limbo" 99);
      (* Go quiet past the idle limit: the server must close the session
         and roll the transaction back, releasing the write lock — or
         this second client's query would block forever. *)
      Thread.delay 1.2;
      let b = connect port in
      Alcotest.(check int) "idle txn rolled back" 0 (count_rows b);
      (match Client.call a Protocol.Ping with
      | Error _ -> ()
      | Ok (Protocol.Error_r _) -> ()
      | Ok r ->
          Alcotest.fail
            ("idle session still answers: " ^ Protocol.response_kind r));
      Client.close b;
      Client.close a)

let test_graceful_shutdown_mid_txn () =
  let dir = Filename.temp_dir "sqlledger-test-server" "" in
  let config = { base_config with port = 0; dir } in
  let srv =
    match Server.start ~config () with
    | Ok s -> s
    | Error e -> Alcotest.fail (Server.start_error_to_string e)
  in
  let th = Server.run_async srv in
  let port = Server.port srv in
  let c = connect port in
  create_accounts c;
  expect_ok "committed insert" (insert c "Kept" 11);
  expect_ok "begin" (call c Protocol.Begin);
  expect_ok "uncommitted insert" (insert c "Lost" 22);
  (* Drain with the transaction still open: teardown must roll it back
     before the WAL is fsynced. *)
  Server.shutdown srv th;
  (match Client.call c Protocol.Ping with
  | Error _ | Ok (Protocol.Error_r _) -> ()
  | Ok r ->
      Alcotest.fail ("server answered after drain: " ^ Protocol.response_kind r));
  (* What reached --dir reopens cleanly and holds only committed data. *)
  (match Durable.open_dir ~dir ~name:"served" () with
  | Error e -> Alcotest.fail ("reopen failed: " ^ e)
  | Ok durable ->
      let db = Durable.db durable in
      let rel = Database.query db "SELECT * FROM accounts" in
      Alcotest.(check int) "only the committed row survived" 1
        (List.length rel.Sqlexec.Rel.rows);
      Alcotest.(check bool) "reopened ledger verifies" true
        (Verifier.ok (Verifier.verify db ~digests:[])))

let test_hello_required () =
  with_server (fun ~dir:_ ~port _srv ->
      let conn = raw_connect port in
      (match raw_call conn Protocol.Ping with
      | Protocol.Error_r { code = Protocol.Bad_request; message; _ } ->
          Alcotest.(check bool) "says hello is required" true
            (String.length message > 0)
      | r ->
          Alcotest.fail ("pre-hello ping returned " ^ Protocol.response_kind r));
      (* The server hangs up after rejecting the opener. *)
      (match Frame.recv conn with
      | Frame.Eof -> ()
      | _ -> Alcotest.fail "connection must close after a rejected opener");
      Frame.close conn)

let test_version_mismatch () =
  with_server (fun ~dir:_ ~port _srv ->
      let conn = raw_connect port in
      (match
         raw_call conn (Protocol.Hello { version = 999; client = "future"; principal = None; auth = None })
       with
      | Protocol.Error_r { code = Protocol.Version_mismatch; _ } -> ()
      | r ->
          Alcotest.fail ("v999 hello returned " ^ Protocol.response_kind r));
      (match Frame.recv conn with
      | Frame.Eof -> ()
      | _ -> Alcotest.fail "connection must close after version mismatch");
      Frame.close conn)

let test_junk_desync () =
  with_server (fun ~dir:_ ~port _srv ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0;
      let conn = Frame.of_fd fd in
      let junk = "\x00\x01\x02\x03garbage" in
      ignore (Unix.write_substring fd junk 0 (String.length junk));
      (match Frame.recv conn with
      | Frame.Frame payload -> (
          match Protocol.decode_response payload with
          | Ok (_, Protocol.Error_r { code = Protocol.Bad_request; _ }) -> ()
          | Ok (_, r) ->
              Alcotest.fail ("junk answered with " ^ Protocol.response_kind r)
          | Error e -> Alcotest.fail ("malformed error response: " ^ e))
      | _ -> Alcotest.fail "junk must be answered with a typed error");
      (match Frame.recv conn with
      | Frame.Eof -> ()
      | _ -> Alcotest.fail "connection must close after desync");
      Frame.close conn)

let test_busy_limit () =
  with_server
    ~tweak:(fun c -> { c with Server.max_connections = 1 })
    (fun ~dir:_ ~port _srv ->
      let a = connect port in
      (match Client.connect ~host:"127.0.0.1" ~port () with
      | Error (Client.Handshake msg) ->
          Alcotest.(check bool) "mentions the connection limit" true
            (String.length msg > 0)
      | Error e ->
          Alcotest.fail
            ("over-limit connect: " ^ Client.connect_error_to_string e)
      | Ok c ->
          Client.close c;
          Alcotest.fail "server accepted a connection over its limit");
      Client.close a;
      (* The slot frees once the first session ends. *)
      let rec retry n =
        match Client.connect ~host:"127.0.0.1" ~port () with
        | Ok c -> Client.close c
        | Error _ when n > 0 ->
            Thread.delay 0.2;
            retry (n - 1)
        | Error e -> Alcotest.fail (Client.connect_error_to_string e)
      in
      retry 25)

let test_connection_refused () =
  (* Grab a port the OS says is free, release it, then connect to it. *)
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  Unix.close sock;
  match Client.connect ~host:"127.0.0.1" ~port () with
  | Error (Client.Refused msg) ->
      Alcotest.(check bool) "names the refused endpoint" true
        (String.length msg > 0)
  | Error e ->
      Alcotest.fail ("expected Refused, got " ^ Client.connect_error_to_string e)
  | Ok c ->
      Client.close c;
      Alcotest.fail "connected to a dead port"

let test_port_in_use () =
  with_server (fun ~dir:_ ~port _srv ->
      let dir2 = Filename.temp_dir "sqlledger-test-server" "" in
      match Server.start ~config:{ Server.default_config with port; dir = dir2 } ()
      with
      | Error (Server.Port_in_use msg) ->
          Alcotest.(check bool) "names the busy address" true
            (String.length msg > 0)
      | Error (Server.Startup msg) ->
          Alcotest.fail ("expected Port_in_use, got Startup: " ^ msg)
      | Ok srv2 ->
          Server.shutdown srv2 (Server.run_async srv2);
          Alcotest.fail "two servers bound the same port")

(* ------------------------------------------------------------------ *)
(* Overload, deadlines, and hostile pacing *)

(* Pull one named counter out of a Stats_r payload; absent = 0. *)
let counter_of_stats client name =
  match call client Protocol.Stats with
  | Protocol.Stats_r lines ->
      let prefix = Printf.sprintf "sqlledger_counter{name=%S} " name in
      List.fold_left
        (fun acc line ->
          if String.length line > String.length prefix
             && String.sub line 0 (String.length prefix) = prefix
          then
            int_of_string
              (String.sub line (String.length prefix)
                 (String.length line - String.length prefix))
          else acc)
        0 lines
  | resp -> Alcotest.fail ("stats returned " ^ Protocol.response_kind resp)

let test_overload_shed () =
  with_server
    ~tweak:(fun c ->
      {
        c with
        Server.max_inflight = 1;
        max_queue_depth = 1;
        max_connections = 32;
        group_commit_window = 0.002;
      })
    (fun ~dir:_ ~port _srv ->
      let setup = connect port in
      create_accounts setup;
      let writers = 6 and per_writer = 25 in
      let ok = Atomic.make 0
      and shed = Atomic.make 0
      and hintless = Atomic.make 0
      and other = Atomic.make 0 in
      let storm w =
        let c = connect port in
        for i = 0 to per_writer - 1 do
          match insert c (Printf.sprintf "w%d-%d" w i) i with
          | Protocol.Error_r
              { code = Protocol.Overloaded; retry_after_ms; _ } ->
              Atomic.incr shed;
              if retry_after_ms = None then Atomic.incr hintless
          | Protocol.Error_r _ -> Atomic.incr other
          | _ -> Atomic.incr ok
        done;
        Client.close c
      in
      let threads = List.init writers (fun w -> Thread.create storm w) in
      List.iter Thread.join threads;
      (* Shed refusals must be typed and carry a backoff hint... *)
      Alcotest.(check int) "no untyped refusals" 0 (Atomic.get other);
      Alcotest.(check int) "every shed carries retry_after_ms" 0
        (Atomic.get hintless);
      Alcotest.(check bool) "overload actually shed something" true
        (Atomic.get shed > 0);
      (* ...and a shed insert must never be half-applied: exactly the
         acknowledged rows exist, nothing more. *)
      Alcotest.(check int) "rows = acknowledged inserts" (Atomic.get ok)
        (count_rows setup);
      Alcotest.(check bool) "server counted its sheds" true
        (counter_of_stats setup "server.shed" >= Atomic.get shed);
      (match call setup (Protocol.Verify { tables = []; digests = [] }) with
      | Protocol.Verify_r v ->
          Alcotest.(check bool) "ledger verifies after the storm" true
            v.Protocol.vs_ok
      | resp ->
          Alcotest.fail ("verify returned " ^ Protocol.response_kind resp));
      Client.close setup)

let test_deadline_refusal () =
  with_server (fun ~dir:_ ~port _srv ->
      let a = connect port in
      create_accounts a;
      expect_ok "begin" (call a Protocol.Begin);
      (* [a]'s open transaction holds the write lock. [b]'s insert
         arrives with a 50ms budget but can only run once [a] lets go
         300ms later — the server must refuse it *after* acquiring the
         lock, with the typed code and without touching the ledger. *)
      let b = raw_connect port in
      (match raw_call b (Protocol.Hello { version = Protocol.version; client = "late"; principal = None; auth = None })
       with
      | Protocol.Welcome _ -> ()
      | r -> Alcotest.fail ("hello returned " ^ Protocol.response_kind r));
      Frame.send b
        (Protocol.encode_request ~id:2 ~deadline_ms:50
           (Protocol.Exec { sql = "INSERT INTO accounts VALUES ('late', 1)" }));
      Thread.delay 0.3;
      expect_ok "rollback" (call a Protocol.Rollback);
      (match Frame.recv b with
      | Frame.Frame payload -> (
          match Protocol.decode_response payload with
          | Ok (2, resp) ->
              expect_error Protocol.Deadline_exceeded "expired insert" resp
          | Ok (id, _) -> Alcotest.fail (Printf.sprintf "response id %d" id)
          | Error e -> Alcotest.fail ("malformed response: " ^ e))
      | _ -> Alcotest.fail "expected a typed deadline refusal");
      Alcotest.(check int) "refused insert left no row" 0 (count_rows a);
      Alcotest.(check bool) "server counted the refusal" true
        (counter_of_stats a "server.deadline_exceeded" >= 1);
      Frame.close b;
      Client.close a)

(* A peer that opens a frame and then feeds it one byte every 150ms
   must be torn down by the total-frame deadline, not allowed to pin a
   session thread forever. *)
let test_slow_loris () =
  with_server
    ~tweak:(fun c -> { c with Server.request_timeout = 0.4 })
    (fun ~dir:_ ~port _srv ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0;
      let conn = Frame.of_fd fd in
      let header = Frame.header_bytes 64 in
      (try
         for i = 0 to 5 do
           ignore (Unix.write_substring fd header i 1);
           Thread.delay 0.15
         done
       with Unix.Unix_error _ -> (* server already hung up on us *) ());
      (match Frame.recv conn with
      | Frame.Eof -> ()
      | Frame.Frame _ -> Alcotest.fail "server answered a slow-loris header"
      | _ -> ()
      | exception Unix.Unix_error _ -> ());
      Frame.close conn)

(* Same bound mid-payload: a handshaked session that stalls inside a
   frame body is torn once request_timeout elapses. *)
let test_mid_frame_stall () =
  with_server
    ~tweak:(fun c -> { c with Server.request_timeout = 0.4 })
    (fun ~dir:_ ~port _srv ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0;
      let conn = Frame.of_fd fd in
      (match
         raw_call conn
           (Protocol.Hello { version = Protocol.version; client = "staller"; principal = None; auth = None })
       with
      | Protocol.Welcome _ -> ()
      | r -> Alcotest.fail ("hello returned " ^ Protocol.response_kind r));
      let payload = Protocol.encode_request ~id:2 Protocol.Ping in
      let frame = Frame.header_bytes (String.length payload) ^ payload in
      (* Full header plus half the payload, then silence. *)
      let half = String.length frame / 2 in
      ignore (Unix.write_substring fd frame 0 half);
      (match Frame.recv conn with
      | Frame.Eof -> ()
      | Frame.Frame _ -> Alcotest.fail "server answered a half-sent frame"
      | _ -> ()
      | exception Unix.Unix_error _ -> ());
      Frame.close conn)

let test_dribbled_request_tolerated () =
  with_server
    ~tweak:(fun c -> { c with Server.request_timeout = 3.0 })
    (fun ~dir:_ ~port _srv ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0;
      let conn = Frame.of_fd fd in
      let payload =
        Protocol.encode_request ~id:1
          (Protocol.Hello { version = Protocol.version; client = "dribbler"; principal = None; auth = None })
      in
      let frame = Frame.header_bytes (String.length payload) ^ payload in
      (* Two bytes every 10ms: hostile pacing, but within the frame
         deadline — the server must simply wait it out and answer. *)
      let i = ref 0 in
      while !i < String.length frame do
        let n = min 2 (String.length frame - !i) in
        ignore (Unix.write_substring fd frame !i n);
        i := !i + n;
        Thread.delay 0.01
      done;
      (match Frame.recv conn with
      | Frame.Frame resp -> (
          match Protocol.decode_response resp with
          | Ok (_, Protocol.Welcome _) -> ()
          | Ok (_, r) ->
              Alcotest.fail ("dribbled hello returned " ^ Protocol.response_kind r)
          | Error e -> Alcotest.fail ("malformed response: " ^ e))
      | _ -> Alcotest.fail "server must answer a slow-but-live client");
      Frame.close conn)

(* --- authenticated principals --- *)

let with_auth_server f =
  with_server
    ~tweak:(fun c -> { c with Server.auth_secret = Some "server-shared-secret" })
    f

let connect_as port principal =
  match
    Client.connect ~host:"127.0.0.1" ~port ~principal
      ~secret:"server-shared-secret" ()
  with
  | Ok c -> c
  | Error e -> Alcotest.fail (Client.connect_error_to_string e)

let test_auth_principals_recorded () =
  with_auth_server (fun ~dir:_ ~port _srv ->
      let alice = connect_as port "alice" in
      let bob = connect_as port "bob" in
      create_accounts alice;
      expect_ok "alice insert" (insert alice "Nick" 50);
      expect_ok "bob insert" (insert bob "Mary" 200);
      expect_ok "alice again" (insert alice "John" 500);
      (* The transactions system table must attribute each commit to the
         authenticated wire principal, not a shared service account. *)
      (match
         call alice
           (Protocol.Query
              {
                sql =
                  "SELECT username FROM database_ledger_transactions \
                   ORDER BY txn_id";
              })
       with
      | Protocol.Rows_r { rows; _ } ->
          let users =
            List.filter_map
              (function
                | [ Relation.Value.String u ] when u <> "server" -> Some u
                | _ -> None)
              rows
          in
          Alcotest.(check (list string)) "per-commit principals"
            [ "alice"; "bob"; "alice" ]
            (List.filter (fun u -> u = "alice" || u = "bob") users)
      | resp -> Alcotest.fail ("query returned " ^ Protocol.response_kind resp));
      (* The provenance view sees the same principals per row version. *)
      (match
         call bob
           (Protocol.Query
              {
                sql =
                  "SELECT principal_name FROM accounts_ledger \
                   WHERE operation = 'INSERT' ORDER BY txn_id";
              })
       with
      | Protocol.Rows_r { rows; _ } ->
          Alcotest.(check (list string)) "view principals"
            [ "alice"; "bob"; "alice" ]
            (List.map
               (function
                 | [ Relation.Value.String u ] -> u
                 | _ -> Alcotest.fail "principal_name")
               rows)
      | resp -> Alcotest.fail ("view query returned " ^ Protocol.response_kind resp));
      Client.close alice;
      Client.close bob)

let test_auth_rejections () =
  with_auth_server (fun ~dir:_ ~port _srv ->
      (* Wrong secret: typed Auth error, not a generic handshake failure. *)
      (match
         Client.connect ~host:"127.0.0.1" ~port ~principal:"mallory"
           ~secret:"wrong-secret" ()
       with
      | Error (Client.Auth _) -> ()
      | Error e ->
          Alcotest.fail
            ("expected Auth, got " ^ Client.connect_error_to_string e)
      | Ok _ -> Alcotest.fail "server accepted a forged principal tag");
      (* Principal claimed with no tag at all: also refused. *)
      (match
         Client.connect ~host:"127.0.0.1" ~port ~principal:"mallory" ()
       with
      | Error (Client.Auth _) -> ()
      | Error e ->
          Alcotest.fail
            ("expected Auth, got " ^ Client.connect_error_to_string e)
      | Ok _ -> Alcotest.fail "server accepted an untagged principal");
      (* Anonymous connections still work when auth is enabled: they just
         get no principal identity. *)
      let anon = connect port in
      (match call anon Protocol.Ping with
      | Protocol.Pong -> ()
      | resp -> Alcotest.fail ("ping returned " ^ Protocol.response_kind resp));
      Client.close anon)

(* --- online migration --- *)

let create_plain client name =
  expect_ok "create-plain"
    (call client
       (Protocol.Create_table
          {
            name;
            columns = [ ("k", "int"); ("v", "varchar(40)") ];
            key = [ "k" ]; ledger = false
          }))

let test_migrate_resume () =
  with_server (fun ~dir ~port _srv ->
      let c = connect port in
      create_plain c "staging";
      expect_ok "create target"
        (call c
           (Protocol.Create_table
              {
                name = "tgt";
                columns = [ ("k", "int"); ("v", "varchar(40)") ];
                key = [ "k" ]; ledger = true
              }));
      for i = 1 to 23 do
        expect_ok "seed"
          (call c
             (Protocol.Exec
                {
                  sql =
                    Printf.sprintf "INSERT INTO staging VALUES (%d, 'row%d')" i i;
                }))
      done;
      let cursor_path = Filename.concat dir "migrate.cursor.json" in
      (* First run dies after 2 batches — simulated by driving the wire
         request directly and persisting the cursor like the driver does. *)
      let cur = ref (Migrate.Cursor.start ~source:"staging" ~target:"tgt") in
      for _ = 1 to 2 do
        match
          call c
            (Protocol.Migrate
               {
                 source = "staging";
                 target = "tgt";
                 after_key = !cur.Migrate.Cursor.last_key;
                 limit = 5;
               })
        with
        | Protocol.Migrate_r { copied; last_key; finished = _ } ->
            cur :=
              {
                !cur with
                Migrate.Cursor.last_key;
                copied = !cur.Migrate.Cursor.copied + copied;
              };
            Migrate.Cursor.save ~path:cursor_path !cur
        | resp ->
            Alcotest.fail ("migrate returned " ^ Protocol.response_kind resp)
      done;
      Alcotest.(check int) "partial copy persisted" 10
        !cur.Migrate.Cursor.copied;
      (* OLTP on other ledger tables keeps running mid-migration. *)
      create_accounts c;
      expect_ok "live OLTP write" (insert c "Nick" 50);
      (* Resume from the cursor file with a fresh driver run. *)
      (match
         Migrate.Driver.run ~batch:5 ~cursor_path ~client:c ~source:"staging"
           ~target:"tgt" ()
       with
      | Error e -> Alcotest.fail ("resume failed: " ^ e)
      | Ok s ->
          Alcotest.(check int) "resumed, not restarted" 10
            s.Migrate.Driver.resumed_at;
          Alcotest.(check int) "copied the remainder" 13
            s.Migrate.Driver.rows_copied;
          Alcotest.(check int) "target complete" 23 s.Migrate.Driver.rows_total;
          Alcotest.(check bool) "differential passed" true
            s.Migrate.Driver.verified;
          Alcotest.(check bool) "digest anchored" true
            (s.Migrate.Driver.digest <> None));
      (* All 23 staged rows made it, exactly once. *)
      (match call c (Protocol.Query { sql = "SELECT * FROM tgt" }) with
      | Protocol.Rows_r { rows; _ } ->
          Alcotest.(check int) "target rows" 23 (List.length rows)
      | resp -> Alcotest.fail ("count returned " ^ Protocol.response_kind resp));
      (* Re-running the whole migration is a no-op: every key exists. *)
      (match
         Migrate.Driver.run ~batch:7 ~client:c ~source:"staging" ~target:"tgt" ()
       with
      | Error e -> Alcotest.fail ("idempotent rerun failed: " ^ e)
      | Ok s ->
          Alcotest.(check int) "no duplicate copies" 0
            s.Migrate.Driver.rows_copied);
      (* A target row with no source counterpart must fail the
         differential check loudly, not be rubber-stamped. *)
      expect_ok "divergent write"
        (call c (Protocol.Exec { sql = "INSERT INTO tgt VALUES (99, 'stray')" }));
      (match
         Migrate.Driver.run ~batch:7 ~client:c ~source:"staging" ~target:"tgt" ()
       with
      | Error e ->
          Alcotest.(check bool) "names the differential check" true
            (let needle = "differential" and msg = e in
             let nl = String.length needle and ml = String.length msg in
             let rec at i =
               i + nl <= ml && (String.sub msg i nl = needle || at (i + 1))
             in
             at 0)
      | Ok _ -> Alcotest.fail "divergent target passed the differential check");
      Client.close c)

let test_migrate_refuses_bad_tables () =
  with_server (fun ~dir:_ ~port _srv ->
      let c = connect port in
      create_plain c "staging";
      create_accounts c;
      (* Source must be plain, target must be a ledger table. *)
      expect_error Protocol.Exec_error "ledger source"
        (call c
           (Protocol.Migrate
              { source = "accounts"; target = "accounts"; after_key = [];
                limit = 10 }));
      expect_error Protocol.Exec_error "plain target"
        (call c
           (Protocol.Migrate
              { source = "staging"; target = "staging"; after_key = [];
                limit = 10 }));
      expect_error Protocol.Exec_error "unknown source"
        (call c
           (Protocol.Migrate
              { source = "nope"; target = "accounts"; after_key = [];
                limit = 10 }));
      Client.close c)

let () =
  Alcotest.run "server"
    [
      ( "sessions",
        [
          Alcotest.test_case "end-to-end ledger flow" `Quick test_e2e_flow;
          Alcotest.test_case "concurrent sessions" `Quick
            test_concurrent_sessions;
          Alcotest.test_case "transactions span requests" `Quick
            test_txn_sessions;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "idle timeout rolls back" `Quick test_idle_timeout;
          Alcotest.test_case "graceful shutdown mid-txn" `Quick
            test_graceful_shutdown_mid_txn;
          Alcotest.test_case "busy limit" `Quick test_busy_limit;
          Alcotest.test_case "port in use" `Quick test_port_in_use;
          Alcotest.test_case "connection refused" `Quick
            test_connection_refused;
        ] );
      ( "protocol hygiene",
        [
          Alcotest.test_case "hello required" `Quick test_hello_required;
          Alcotest.test_case "version mismatch" `Quick test_version_mismatch;
          Alcotest.test_case "junk desync" `Quick test_junk_desync;
        ] );
      ( "overload and pacing",
        [
          Alcotest.test_case "overload sheds typed-only" `Quick
            test_overload_shed;
          Alcotest.test_case "expired deadline refused post-lock" `Quick
            test_deadline_refusal;
          Alcotest.test_case "slow-loris header torn" `Quick test_slow_loris;
          Alcotest.test_case "mid-frame stall torn" `Quick test_mid_frame_stall;
          Alcotest.test_case "dribbled request tolerated" `Quick
            test_dribbled_request_tolerated;
        ] );
      ( "principals",
        [
          Alcotest.test_case "recorded per commit" `Quick
            test_auth_principals_recorded;
          Alcotest.test_case "rejections" `Quick test_auth_rejections;
        ] );
      ( "migration",
        [
          Alcotest.test_case "crash-resume from cursor" `Quick
            test_migrate_resume;
          Alcotest.test_case "refuses bad tables" `Quick
            test_migrate_refuses_bad_tables;
        ] );
    ]
