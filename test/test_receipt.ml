(* Non-repudiation receipts (§5.1): Merkle proof + per-block signature,
   verified without access to the database — even after the ledger is
   destroyed.

   The property suite is seeded: set RECEIPT_SEED / RECEIPT_TRIALS to
   reproduce or widen a run. *)

open Sql_ledger
open Testkit

let setup () =
  let db = make_db ~signing_seed:"receipt-seed" "receipts" in
  let accounts = make_accounts db in
  figure2 db accounts;
  let digest = fresh_digest db in
  (db, digest)

let fail_v e = Alcotest.fail (Receipt.failure_to_string e)

let expect_failure label expected = function
  | Ok () -> Alcotest.failf "%s: accepted" label
  | Error got ->
      Alcotest.(check string)
        label
        (Receipt.failure_to_string expected)
        (Receipt.failure_to_string got)

let test_generate_and_verify () =
  (* block_size = 4, 7 committed txns: block 0 = txns 1-4, block 1 (the
     digest's block) = txns 5-7. *)
  let db, digest = setup () in
  match Receipt.generate db ~txn_id:6 with
  | Error e -> Alcotest.fail e
  | Ok r ->
      Alcotest.(check int) "txn id" 6 r.Receipt.entry.Types.txn_id;
      Alcotest.(check bool) "signed" true (r.Receipt.signature <> None);
      (match Receipt.verify r with Ok () -> () | Error e -> fail_v e);
      (match Receipt.verify ~digest r with Ok () -> () | Error e -> fail_v e);
      let fp =
        Ledger_crypto.Lamport.fingerprint (Option.get r.Receipt.public_key)
      in
      match Receipt.verify ~expected_fingerprint:fp r with
      | Ok () -> ()
      | Error e -> fail_v e

let test_receipt_for_every_txn_in_block () =
  let db, _ = setup () in
  let entries = Database_ledger.entries (Database.ledger db) in
  List.iter
    (fun (e : Types.txn_entry) ->
      match Receipt.generate db ~txn_id:e.txn_id with
      | Ok r -> (
          match Receipt.verify r with
          | Ok () -> ()
          | Error f ->
              Alcotest.failf "txn %d: %s" e.txn_id (Receipt.failure_to_string f))
      | Error msg -> Alcotest.failf "txn %d: %s" e.txn_id msg)
    entries

let test_open_block_rejected () =
  let db, _ = setup () in
  let accounts = Database.ledger_table db "accounts" in
  let e = insert_account db accounts "Open" 1 in
  (match Receipt.generate db ~txn_id:e.Types.txn_id with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "open-block receipt must be refused");
  (match Receipt.generate_cached db ~txn_id:e.Types.txn_id with
  | Error Receipt.Open_block -> ()
  | Error _ -> Alcotest.fail "expected Open_block"
  | Ok _ -> Alcotest.fail "open-block receipt must be refused (cached)");
  Alcotest.(check bool)
    "open txn is pending" true
    (Receipt.txn_pending db ~txn_id:e.Types.txn_id)

let test_unknown_txn_rejected () =
  let db, _ = setup () in
  (match Receipt.generate db ~txn_id:424242 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown txn must be refused");
  (match Receipt.generate_cached db ~txn_id:424242 with
  | Error Receipt.Unknown_txn -> ()
  | Error _ -> Alcotest.fail "expected Unknown_txn"
  | Ok _ -> Alcotest.fail "unknown txn must be refused (cached)");
  Alcotest.(check bool)
    "unknown txn is not pending" false
    (Receipt.txn_pending db ~txn_id:424242)

let test_json_roundtrip () =
  let db, digest = setup () in
  match Receipt.generate db ~txn_id:7 with
  | Error e -> Alcotest.fail e
  | Ok r -> (
      match Receipt.of_string (Receipt.to_string r) with
      | Error e -> Alcotest.fail e
      | Ok r' -> (
          match Receipt.verify ~digest r' with
          | Ok () -> ()
          | Error e -> fail_v e))

let test_survives_ledger_destruction () =
  (* The whole point of §5.1: the receipt stands on its own after the
     ledger is destroyed or tampered with. *)
  let db, digest = setup () in
  let receipt_json =
    match Receipt.generate db ~txn_id:5 with
    | Ok r -> Receipt.to_string r
    | Error e -> Alcotest.fail e
  in
  (* Destroy the ledger. *)
  ignore (Tamper.apply db (Tamper.Fork_chain { block_id = 0 }));
  ignore
    (Tamper.apply db (Tamper.Delete_row { table = "accounts"; key = [| vs "Mary" |] }));
  match Receipt.of_string receipt_json with
  | Error e -> Alcotest.fail e
  | Ok r -> (
      match Receipt.verify ~digest r with
      | Ok () -> ()
      | Error e -> fail_v e)

let test_forged_receipt_rejected () =
  let db, digest = setup () in
  match Receipt.generate db ~txn_id:5 with
  | Error e -> Alcotest.fail e
  | Ok r ->
      (* Claim a different commit outcome: the entry no longer hashes to
         the proven leaf. *)
      let forged_entry = { r.Receipt.entry with Types.user = "forged" } in
      let forged = { r with Receipt.entry = forged_entry } in
      expect_failure "forged entry" Receipt.Tampered_row
        (Receipt.verify ~digest forged);
      (* Tampered proof *)
      let bad_proof =
        match r.Receipt.proof with
        | step :: rest ->
            (match step with
            | Merkle.Proof.Sibling_left h ->
                Merkle.Proof.Sibling_right h :: rest
            | Merkle.Proof.Sibling_right h ->
                Merkle.Proof.Sibling_left h :: rest)
        | [] -> [ Merkle.Proof.Sibling_left (String.make 32 'x') ]
      in
      expect_failure "tampered proof" Receipt.Bad_path
        (Receipt.verify ~digest { r with Receipt.proof = bad_proof });
      (* Forged block (hash change) must clash with the digest. *)
      let forged_block = { r.Receipt.block with Types.txn_count = 99 } in
      expect_failure "forged block" Receipt.Wrong_root
        (Receipt.verify ~digest { r with Receipt.block = forged_block });
      (* A digest for some other block cannot vouch for this receipt. *)
      let stale = { digest with Digest.block_id = digest.Digest.block_id + 5 } in
      expect_failure "stale digest" Receipt.Stale_digest
        (Receipt.verify ~digest:stale r);
      (* Wrong fingerprint pin. *)
      expect_failure "wrong fingerprint" Receipt.Wrong_key
        (Receipt.verify ~expected_fingerprint:(String.make 32 'z') r)

let test_unsigned_database () =
  (* Without a signing seed, receipts still carry a verifiable proof. *)
  let db = make_db "unsigned" in
  let accounts = make_accounts db in
  figure2 db accounts;
  ignore (fresh_digest db);
  match Receipt.generate db ~txn_id:3 with
  | Error e -> Alcotest.fail e
  | Ok r ->
      Alcotest.(check bool) "no signature" true (r.Receipt.signature = None);
      (match Receipt.verify r with Ok () -> () | Error e -> fail_v e)

(* ------------------------------------------------------------------ *)
(* Cached issuance: byte-identical to the uncached reference path. *)

let test_cached_equals_uncached () =
  let db, _ = setup () in
  let entries = Database_ledger.entries (Database.ledger db) in
  List.iter
    (fun (e : Types.txn_entry) ->
      match
        ( Receipt.generate db ~txn_id:e.txn_id,
          Receipt.generate_cached db ~txn_id:e.txn_id )
      with
      | Ok a, Ok b ->
          Alcotest.(check string)
            (Printf.sprintf "txn %d receipt bytes" e.txn_id)
            (Receipt.to_string a) (Receipt.to_string b)
      | Error msg, _ -> Alcotest.failf "txn %d uncached: %s" e.txn_id msg
      | _, Error f ->
          Alcotest.failf "txn %d cached: %s" e.txn_id
            (Receipt.issue_error_to_string ~txn_id:e.txn_id f))
    entries;
  (* Issue twice: the second pass is served entirely from the cache and
     must not drift. *)
  List.iter
    (fun (e : Types.txn_entry) ->
      match
        ( Receipt.generate db ~txn_id:e.txn_id,
          Receipt.generate_cached db ~txn_id:e.txn_id )
      with
      | Ok a, Ok b ->
          Alcotest.(check string) "second pass"
            (Receipt.to_string a) (Receipt.to_string b)
      | _ -> Alcotest.fail "reissue failed")
    entries

let test_snapshot_receipts_equal_primary () =
  (* A replica restored from the primary's published snapshot issues the
     same receipts, byte for byte (the signing seed travels with it). *)
  let db, _ = setup () in
  let snapshot = Snapshot.save db in
  let db' =
    match Snapshot.load snapshot with
    | Ok d -> d
    | Error e -> Alcotest.fail e
  in
  let entries = Database_ledger.entries (Database.ledger db) in
  List.iter
    (fun (e : Types.txn_entry) ->
      match
        ( Receipt.generate_cached db ~txn_id:e.txn_id,
          Receipt.generate_cached db' ~txn_id:e.txn_id )
      with
      | Ok a, Ok b ->
          Alcotest.(check string)
            (Printf.sprintf "txn %d primary vs snapshot" e.txn_id)
            (Receipt.to_string a) (Receipt.to_string b)
      | Error f, _ | _, Error f ->
          Alcotest.failf "txn %d: %s" e.txn_id
            (Receipt.issue_error_to_string ~txn_id:e.txn_id f))
    entries

(* The batched wire path strips each receipt's key material — the
   dominant fields by size — and carries it once per block; inflating
   must restore the self-contained single-receipt JSON byte for byte. *)
let test_batch_key_amortization () =
  let db, _ = setup () in
  let entries = Database_ledger.entries (Database.ledger db) in
  let receipts =
    List.filter_map
      (fun (e : Types.txn_entry) ->
        match Receipt.generate_cached db ~txn_id:e.txn_id with
        | Ok r -> Some r
        | Error _ -> None)
      entries
  in
  Alcotest.(check bool) "issued some receipts" true (receipts <> []);
  (* One key-material entry per block, first occurrence wins — exactly
     the dedup the server applies to a batch. *)
  let seen = Hashtbl.create 8 in
  let block_keys =
    List.filter_map
      (fun r ->
        match Receipt.key_material r with
        | Some (b, km) when not (Hashtbl.mem seen b) ->
            Hashtbl.replace seen b ();
            Some km
        | _ -> None)
      receipts
  in
  Alcotest.(check bool) "signed receipts carry key material" true
    (block_keys <> []);
  let stripped =
    List.map (fun r -> Receipt.to_json (Receipt.strip_keys r)) receipts
  in
  let inflated = Receipt.inflate_batch ~block_keys stripped in
  List.iter2
    (fun r j ->
      Alcotest.(check string)
        (Printf.sprintf "txn %d inflated = self-contained"
           r.Receipt.entry.Types.txn_id)
        (Receipt.to_string r)
        (Sjson.to_string ~pretty:true j);
      match Receipt.of_json j with
      | Error e -> Alcotest.fail e
      | Ok r' -> (
          match Receipt.verify r' with Ok () -> () | Error f -> fail_v f))
    receipts inflated;
  (* Missing key material is not fatal: the receipt passes through
     stripped and still verifies — as an unsigned receipt. *)
  List.iter
    (fun j ->
      match Receipt.of_json j with
      | Error e -> Alcotest.fail e
      | Ok r' ->
          Alcotest.(check bool) "stripped receipt is unsigned" true
            (r'.Receipt.public_key = None);
          (match Receipt.verify r' with Ok () -> () | Error f -> fail_v f))
    (Receipt.inflate_batch ~block_keys:[] stripped)

(* ------------------------------------------------------------------ *)
(* Seeded property suite over randomized block shapes. *)

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt s with Some i -> i | None -> default)
  | None -> default

let flip_byte s i =
  String.mapi
    (fun j c -> if j = i then Char.chr (Char.code c lxor 1) else c)
    s

let flip_proof_step = function
  | Merkle.Proof.Sibling_left h ->
      Merkle.Proof.Sibling_left (flip_byte h (String.length h / 2))
  | Merkle.Proof.Sibling_right h ->
      Merkle.Proof.Sibling_right (flip_byte h (String.length h / 2))

(* One trial: a fresh ledger with a random block size, enough committed
   transactions to close several blocks (1-leaf, power-of-two and odd
   shapes all occur across trials), receipts for the first, last and a
   random leaf of every closed block — each must verify offline, and
   every single-byte corruption must fail with the right typed reason. *)
let run_trial rng trial =
  let block_size = [| 1; 2; 3; 4; 5; 7; 8; 16 |].(Random.State.int rng 8) in
  let txns = 1 + Random.State.int rng (3 * block_size) in
  let seeded = Random.State.bool rng in
  let db =
    if seeded then
      make_db ~block_size
        ~signing_seed:(Printf.sprintf "prop-seed-%d" trial)
        (Printf.sprintf "prop-%d" trial)
    else make_db ~block_size (Printf.sprintf "prop-%d" trial)
  in
  let accounts = make_accounts db in
  for i = 1 to txns do
    ignore (insert_account db accounts (Printf.sprintf "acct%04d" i) (i * 10))
  done;
  let digest =
    match Database.generate_digest db with
    | Some d -> d
    | None ->
        (* Every block is already closed and digested; force a fresh one. *)
        ignore (insert_account db accounts "spill" 1);
        fresh_digest db
  in
  let ctx = Printf.sprintf "trial %d (block_size %d, %d txns)" trial block_size txns in
  let blocks = Database_ledger.blocks (Database.ledger db) in
  Alcotest.(check bool) (ctx ^ ": has closed blocks") true (blocks <> []);
  List.iter
    (fun (b : Types.block) ->
      let entries =
        Database_ledger.entries_of_block (Database.ledger db)
          ~block_id:b.block_id
      in
      let n = List.length entries in
      let picks =
        List.sort_uniq compare
          [ 0; n - 1; Random.State.int rng n ]
      in
      List.iter
        (fun ordinal ->
          let e = List.nth entries ordinal in
          let label = Printf.sprintf "%s block %d leaf %d/%d" ctx b.block_id ordinal n in
          match Receipt.generate_cached db ~txn_id:e.Types.txn_id with
          | Error f ->
              Alcotest.failf "%s: %s" label
                (Receipt.issue_error_to_string ~txn_id:e.Types.txn_id f)
          | Ok r ->
              (* The cached receipt equals the reference path. *)
              (match Receipt.generate db ~txn_id:e.Types.txn_id with
              | Ok r0 ->
                  Alcotest.(check string) (label ^ ": cached = uncached")
                    (Receipt.to_string r0) (Receipt.to_string r)
              | Error msg -> Alcotest.failf "%s uncached: %s" label msg);
              let digest_opt =
                if b.Types.block_id = digest.Digest.block_id then Some digest
                else None
              in
              (match Receipt.verify ?digest:digest_opt r with
              | Ok () -> ()
              | Error f ->
                  Alcotest.failf "%s: %s" label (Receipt.failure_to_string f));
              (* Single-byte corruptions, each with its typed verdict. *)
              expect_failure (label ^ ": leaf flip") Receipt.Tampered_row
                (Receipt.verify ?digest:digest_opt
                   { r with Receipt.leaf = flip_byte r.Receipt.leaf 0 });
              expect_failure (label ^ ": row flip") Receipt.Tampered_row
                (Receipt.verify ?digest:digest_opt
                   {
                     r with
                     Receipt.entry =
                       {
                         r.Receipt.entry with
                         Types.user = flip_byte r.Receipt.entry.Types.user 0;
                       };
                   });
              (match r.Receipt.proof with
              | [] ->
                  (* A 1-leaf block has an empty proof; grafting a bogus
                     step must still fail as a path error. *)
                  expect_failure (label ^ ": grafted step") Receipt.Bad_path
                    (Receipt.verify ?digest:digest_opt
                       {
                         r with
                         Receipt.proof =
                           [ Merkle.Proof.Sibling_left (String.make 32 'x') ];
                       })
              | step :: rest ->
                  expect_failure (label ^ ": proof flip") Receipt.Bad_path
                    (Receipt.verify ?digest:digest_opt
                       { r with Receipt.proof = flip_proof_step step :: rest }));
              (match digest_opt with
              | Some d ->
                  expect_failure (label ^ ": pinned root flip")
                    Receipt.Wrong_root
                    (Receipt.verify
                       ~digest:
                         {
                           d with
                           Digest.block_hash = flip_byte d.Digest.block_hash 0;
                         }
                       r)
              | None -> ()))
        picks)
    blocks

let test_property_block_shapes () =
  let seed = env_int "RECEIPT_SEED" 0xC0FFEE in
  let trials = env_int "RECEIPT_TRIALS" 12 in
  let rng = Random.State.make [| seed |] in
  for trial = 1 to trials do
    run_trial rng trial
  done

let () =
  Alcotest.run "receipts"
    [
      ( "receipts",
        [
          Alcotest.test_case "generate + verify" `Quick test_generate_and_verify;
          Alcotest.test_case "every txn in block" `Quick test_receipt_for_every_txn_in_block;
          Alcotest.test_case "open block rejected" `Quick test_open_block_rejected;
          Alcotest.test_case "unknown txn rejected" `Quick test_unknown_txn_rejected;
          Alcotest.test_case "JSON roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "survives ledger destruction" `Quick test_survives_ledger_destruction;
          Alcotest.test_case "forgeries rejected" `Quick test_forged_receipt_rejected;
          Alcotest.test_case "unsigned database" `Quick test_unsigned_database;
        ] );
      ( "cache",
        [
          Alcotest.test_case "cached = uncached" `Quick test_cached_equals_uncached;
          Alcotest.test_case "snapshot receipts equal primary" `Quick
            test_snapshot_receipts_equal_primary;
          Alcotest.test_case "batched key material inflates byte-identical"
            `Quick test_batch_key_amortization;
        ] );
      ( "property",
        [
          Alcotest.test_case "randomized block shapes" `Quick
            test_property_block_shapes;
        ] );
    ]
