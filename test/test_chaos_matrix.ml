(* Network chaos matrix: the replication topology driven through a
   fault-injecting TCP proxy under a seeded random fault schedule.

   Topology per trial:

     writers ──direct──▶ primary ◀──chaos proxy──▸ replica node
     readers ──chaos proxy──▶ primary

   The replica subscribes *through* the proxy, so delays, throttles,
   dribbles, half-duplex drops, partitions and reconnect storms all land
   on the replication stream; a reader hammers queries through the same
   proxy to exercise the wire client's retry/backoff path. Writers go
   direct — their acks are the trial's ground truth.

   Invariants checked after the schedule heals:

   - no acked transaction is lost: the primary's rows are exactly the
     acked set (a shed or refused insert left no trace — never
     half-applied),
   - the replica reconverges: byte-identical materialised snapshots,
   - a digest issued by the primary verifies over the wire through the
     healed proxy and against the replica,
   - every refusal observed during the storm was typed (overloaded /
     deadline_exceeded / read_only), never junk.

   Seed and trial count come from CHAOS_SEED / CHAOS_TRIALS so CI pins a
   fixed seed and a sweep widens the search; every trial prints its seed
   so a failure replays exactly. *)

module Server = Ledger_server.Server
module Node = Ledger_server.Replica_node
module Client = Wire.Client
module Protocol = Wire.Protocol
module Prng = Workload.Prng
open Sql_ledger

let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let getenv_int name default =
  match int_of_string_opt (Sys.getenv name) with
  | Some n -> n
  | None -> default
  | exception Not_found -> default

let seed = getenv_int "CHAOS_SEED" 0xC0FFEE
let trials = getenv_int "CHAOS_TRIALS" 3

(* ------------------------------------------------------------------ *)
(* Fixtures *)

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let with_tmp_dir f =
  let dir = Filename.temp_dir "sqlledger-chaos" "" in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let await ?(timeout = 30.0) ?(diag = fun () -> "") ~what cond =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if cond () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail ("timed out waiting for " ^ what ^ diag ())
    else begin
      Thread.delay 0.05;
      go ()
    end
  in
  go ()

let connect port =
  match Client.connect ~host:"127.0.0.1" ~port () with
  | Ok c -> c
  | Error e -> Alcotest.fail (Client.connect_error_to_string e)

(* Every exchange in the fixture carries a deadline: a lost or wedged
   reply must fail the trial loudly (with its replayable seed printed)
   rather than hang the whole matrix. *)
let fixture_deadline = 30.0

let call client req =
  match Client.call ~deadline_s:fixture_deadline client req with
  | Ok resp -> resp
  | Error e -> Alcotest.fail ("transport error: " ^ e)

let expect_ok what = function
  | Protocol.Error_r { message; _ } -> Alcotest.fail (what ^ ": " ^ message)
  | _ -> ()

let primary_db srv = Durable.db (Option.get (Server.durable srv))

let primary_lsn srv =
  Aries.Wal.last_lsn (Database_ledger.wal (Database.ledger (primary_db srv)))

let select_names client =
  match
    call client (Protocol.Query { sql = "SELECT * FROM accounts ORDER BY name" })
  with
  | Protocol.Rows_r { rows; _ } ->
      List.filter_map
        (function
          | Relation.Value.String name :: _ -> Some name | _ -> None)
        rows
  | resp -> Alcotest.fail ("select returned " ^ Protocol.response_kind resp)

let rec digest_retry ?(attempts = 300) c =
  match call c Protocol.Digest with
  | Protocol.Digest_r json -> json
  | Protocol.Error_r
      { code = Protocol.Replication_lag | Protocol.Replication_stuck; _ }
    when attempts > 0 ->
      Thread.delay 0.05;
      digest_retry ~attempts:(attempts - 1) c
  | r -> Alcotest.fail ("digest returned " ^ Protocol.response_kind r)

(* ------------------------------------------------------------------ *)
(* One trial *)

(* Typed refusals a client may legitimately see during the storm. *)
let tolerated_code = function
  | Protocol.Overloaded | Protocol.Deadline_exceeded | Protocol.Read_only
  | Protocol.Busy | Protocol.Shutting_down ->
      true
  | _ -> false

let run_trial trial =
  let trial_seed = seed + (trial * 7919) in
  Printf.printf "chaos trial %d: seed %d (CHAOS_SEED=%d to replay)\n%!" trial
    trial_seed seed;
  let rng = Prng.create trial_seed in
  with_tmp_dir @@ fun prim_dir ->
  with_tmp_dir @@ fun rep_dir ->
  let config =
    {
      Server.default_config with
      port = 0;
      dir = prim_dir;
      group_commit_window = 0.002;
      request_timeout = 5.0;
      (* The fixture clients go quiet while the replica rides out its
         reconnect backoff; don't let the server reap them meanwhile. *)
      idle_timeout = 0.0;
      (* Half the trials run with tight admission caps so overload
         shedding happens *under* network chaos too. *)
      max_inflight = (if Prng.bool rng then 4 else 0);
      max_queue_depth = (if Prng.bool rng then 8 else 0);
    }
  in
  let srv =
    match Server.start ~config () with
    | Ok s -> s
    | Error e -> Alcotest.fail (Server.start_error_to_string e)
  in
  let srv_th = Server.run_async srv in
  let port = Server.port srv in
  let proxy =
    match
      Chaos.Proxy.start ~upstream_host:"127.0.0.1" ~upstream_port:port ()
    with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let cleanup_proxy = ref (fun () -> Chaos.Proxy.stop proxy) in
  Fun.protect ~finally:(fun () ->
      !cleanup_proxy ();
      Server.shutdown srv srv_th)
  @@ fun () ->
  (* Replica subscribes through the proxy. *)
  let node, node_th =
    match
      Node.start
        ~config:{ Server.default_config with port = 0; dir = rep_dir }
        ~primary_host:"127.0.0.1" ~primary_port:(Chaos.Proxy.port proxy) ()
    with
    | Ok n -> (n, Node.run_async n)
    | Error e -> Alcotest.fail (Server.start_error_to_string e)
  in
  Fun.protect ~finally:(fun () -> Node.shutdown node node_th)
  @@ fun () ->
  let setup = connect port in
  expect_ok "create"
    (call setup
       (Protocol.Create_table
          {
            name = "accounts";
            columns = [ ("name", "varchar(40)"); ("balance", "int") ];
            key = [ "name" ]; ledger = true
          }));
  (* Seeded fault schedule over the proxy, applied concurrently with the
     workload below. *)
  let schedule =
    Chaos.Schedule.random
      ~steps:(4 + Prng.int rng 3)
      ~min_hold:0.05 ~max_hold:0.25 ~seed:trial_seed ()
  in
  let sched_th = Chaos.Schedule.run_async schedule proxy in
  (* Connection churn: maybe tear every proxied connection mid-storm. *)
  let churn = Prng.bool rng in
  let churn_delay = 0.1 +. Prng.float rng 0.3 in
  let churn_th =
    Thread.create
      (fun () ->
        if churn then begin
          Thread.delay churn_delay;
          Chaos.Proxy.kill_connections proxy
        end)
      ()
  in
  (* Writers: direct to the primary; acks are ground truth. *)
  let acked = Hashtbl.create 64 in
  let acked_m = Mutex.create () in
  let violations = ref [] in
  let viol_m = Mutex.create () in
  let violation msg =
    Mutex.lock viol_m;
    violations := msg :: !violations;
    Mutex.unlock viol_m
  in
  let writers = 3 and per_writer = 12 in
  let writer_threads =
    List.init writers (fun w ->
        Thread.create
          (fun () ->
            let c = connect port in
            for i = 0 to per_writer - 1 do
              let name = Printf.sprintf "t%d-w%d-%02d" trial w i in
              match
                Client.call ~deadline_s:fixture_deadline c
                  (Protocol.Exec
                     {
                       sql =
                         Printf.sprintf
                           "INSERT INTO accounts VALUES ('%s', %d)" name i;
                     })
              with
              | Ok (Protocol.Error_r { code; message; _ }) ->
                  if not (tolerated_code code) then
                    violation
                      (Printf.sprintf "writer got %s: %s"
                         (Protocol.error_code_to_string code)
                         message)
              | Ok _ ->
                  Mutex.lock acked_m;
                  Hashtbl.replace acked name ();
                  Mutex.unlock acked_m
              | Error e -> violation ("writer transport error: " ^ e)
            done;
            Client.close c)
          ())
  in
  (* Reader: hammers queries through the chaos proxy with the client's
     own retry/backoff machinery. Transport failures are the weather
     here; what must never happen is an untyped or junk refusal. *)
  let reader_stop = Atomic.make false in
  let reads_ok = ref 0 in
  let reader_th =
    Thread.create
      (fun () ->
        while not (Atomic.get reader_stop) do
          match
            Client.connect_retry ~max_attempts:2 ~host:"127.0.0.1"
              ~port:(Chaos.Proxy.port proxy) ()
          with
          | Error _ -> Thread.delay 0.05
          | Ok rc ->
              let rec loop n =
                if n > 0 && not (Atomic.get reader_stop) then begin
                  (match
                     Client.call_retry rc
                       ~deadline_s:1.0
                       (Protocol.Query { sql = "SELECT * FROM accounts" })
                   with
                  | Ok (Protocol.Rows_r _) -> incr reads_ok
                  | Ok (Protocol.Error_r { code; message; _ }) ->
                      if not (tolerated_code code) then
                        violation
                          (Printf.sprintf "reader got %s: %s"
                             (Protocol.error_code_to_string code)
                             message)
                  | Ok r ->
                      violation
                        ("reader got " ^ Protocol.response_kind r)
                  | Error _ -> () (* transport chaos: expected *));
                  Thread.delay 0.01;
                  loop (n - 1)
                end
              in
              loop 20;
              Client.close rc
        done)
      ()
  in
  List.iter Thread.join writer_threads;
  Thread.join sched_th;
  Thread.join churn_th;
  Atomic.set reader_stop true;
  Thread.join reader_th;
  (* Link healed (Schedule.run guarantees it). Now the invariants. *)
  (match !violations with
  | [] -> ()
  | v -> Alcotest.fail ("untyped refusals under chaos: " ^ String.concat "; " v));
  let acked_names =
    Hashtbl.fold (fun k () acc -> k :: acc) acked [] |> List.sort compare
  in
  Alcotest.(check bool) "storm acknowledged some writes" true
    (List.length acked_names > 0);
  (* 1. Acked writes survived; shed writes never half-applied. *)
  Alcotest.(check (list string)) "primary rows are exactly the acked set"
    acked_names (select_names setup);
  (* 2. Replica reconverges through the healed link. Reconnect backoff
     caps at 5s, so give it room. *)
  let repl_diag () =
    Printf.sprintf " (replica lsn %d/%d, daemon %s, last error: %s)"
      (Repl.Client.last_lsn (Node.client node))
      (primary_lsn srv)
      (if Repl.Client.stopped (Node.client node) then "STOPPED" else "running")
      (Repl.Client.last_error (Node.client node))
  in
  await ~timeout:45.0 ~diag:repl_diag ~what:"replica catch-up after heal"
    (fun () -> Repl.Client.last_lsn (Node.client node) = primary_lsn srv);
  let prim_snap = Sjson.to_string (Snapshot.save (primary_db srv)) in
  let rep_snap =
    Sjson.to_string
      (Snapshot.save (Option.get (Repl.Client.database (Node.client node))))
  in
  Alcotest.(check bool) "byte-identical snapshots after heal" true
    (prim_snap = rep_snap);
  (* 3. Verification still passes over the wire — through the healed
     proxy and against the replica's own port. *)
  let dj = digest_retry setup in
  await ~timeout:45.0 ~diag:repl_diag ~what:"digest shipped to replica"
    (fun () -> Repl.Client.last_lsn (Node.client node) = primary_lsn srv);
  let check_verify who client =
    match call client (Protocol.Verify { tables = []; digests = [ dj ] }) with
    | Protocol.Verify_r v ->
        Alcotest.(check bool) (who ^ " verifies after chaos") true
          v.Protocol.vs_ok
    | r -> Alcotest.fail (who ^ " verify returned " ^ Protocol.response_kind r)
  in
  let through_proxy = connect (Chaos.Proxy.port proxy) in
  check_verify "primary-through-proxy" through_proxy;
  Client.close through_proxy;
  let rc = connect (Node.port node) in
  check_verify "replica" rc;
  Client.close rc;
  Client.close setup;
  (* Stop the proxy before the node so the replica's reconnect loop gets
     hard refusals instead of half-open sockets during teardown. *)
  Chaos.Proxy.stop proxy;
  cleanup_proxy := fun () -> ()

let test_matrix () =
  for trial = 0 to trials - 1 do
    run_trial trial
  done

(* ------------------------------------------------------------------ *)
(* Failover under chaos: primary dies mid-churn, the replica promotes,
   and everything the replica acked is servable and verifiable. *)

let test_failover_promotion () =
  with_tmp_dir @@ fun prim_dir ->
  with_tmp_dir @@ fun rep_dir ->
  let rows_before = ref [] in
  let config =
    {
      Server.default_config with
      port = 0;
      dir = prim_dir;
      group_commit_window = 0.002;
    }
  in
  let srv =
    match Server.start ~config () with
    | Ok s -> s
    | Error e -> Alcotest.fail (Server.start_error_to_string e)
  in
  let srv_th = Server.run_async srv in
  let port = Server.port srv in
  let proxy =
    match
      Chaos.Proxy.start ~upstream_host:"127.0.0.1" ~upstream_port:port ()
    with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let node, node_th =
    match
      Node.start
        ~config:{ Server.default_config with port = 0; dir = rep_dir }
        ~primary_host:"127.0.0.1" ~primary_port:(Chaos.Proxy.port proxy) ()
    with
    | Ok n -> (n, Node.run_async n)
    | Error e -> Alcotest.fail (Server.start_error_to_string e)
  in
  let c = connect port in
  expect_ok "create"
    (call c
       (Protocol.Create_table
          {
            name = "accounts";
            columns = [ ("name", "varchar(40)"); ("balance", "int") ];
            key = [ "name" ]; ledger = true
          }));
  (* Write through a flapping link: dribble, heal, drop, heal. *)
  let sched_th =
    Chaos.Schedule.run_async
      (Chaos.Schedule.fixed
         [
           (Chaos.Proxy.Dribble
              { chunk = 3; pause = 0.001; dir = Chaos.Proxy.Both },
            0.2);
           (Chaos.Proxy.Healthy, 0.1);
           (Chaos.Proxy.Drop Chaos.Proxy.To_client, 0.15);
           (Chaos.Proxy.Healthy, 0.1);
         ])
      proxy
  in
  for i = 1 to 20 do
    expect_ok "insert" (call c (Protocol.Exec
      { sql = Printf.sprintf "INSERT INTO accounts VALUES ('f-%02d', %d)" i i }))
  done;
  Thread.join sched_th;
  await ~what:"replica catch-up before failover" (fun () ->
      Repl.Client.last_lsn (Node.client node) = primary_lsn srv);
  rows_before := select_names c;
  Client.close c;
  (* Primary dies; replica node drains; the directory promotes. *)
  Server.shutdown srv srv_th;
  Node.shutdown node node_th;
  Chaos.Proxy.stop proxy;
  (match Repl.Client.promote_dir ~dir:rep_dir () with
  | Error e -> Alcotest.fail ("promotion failed: " ^ e)
  | Ok durable ->
      Alcotest.(check bool) "promoted ledger verifies offline" true
        (Verifier.ok (Verifier.verify (Durable.db durable) ~digests:[])));
  let config2 = { Server.default_config with port = 0; dir = rep_dir } in
  let srv2 =
    match Server.start ~config:config2 () with
    | Ok s -> s
    | Error e -> Alcotest.fail (Server.start_error_to_string e)
  in
  let th2 = Server.run_async srv2 in
  Fun.protect ~finally:(fun () -> Server.shutdown srv2 th2)
  @@ fun () ->
  let c2 = connect (Server.port srv2) in
  Alcotest.(check (list string)) "promoted node serves the acked rows"
    !rows_before (select_names c2);
  expect_ok "write after failover"
    (call c2 (Protocol.Exec
       { sql = "INSERT INTO accounts VALUES ('post-failover', 1)" }));
  Client.close c2

let () =
  Alcotest.run "chaos_matrix"
    [
      ( "chaos",
        [
          Alcotest.test_case
            (Printf.sprintf "seeded matrix (%d trials)" trials)
            `Slow test_matrix;
          Alcotest.test_case "failover promotion under chaos" `Slow
            test_failover_promotion;
        ] );
    ]
