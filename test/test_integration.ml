(* End-to-end scenarios spanning the whole stack: the paper's Contoso
   story (§2.5.1), a full audit cycle with external digest storage, SQL
   access over ledger artifacts, and partial verification. *)

open Relation
open Sql_ledger
open Testkit
module WS = Trusted_store.Worm_store
module DM = Trusted_store.Digest_manager

(* §2.5.1: Contoso tracks manufactured parts; after a lawsuit it must prove
   which brake batches went into a car, against a DBA who tries to doctor
   the records. *)
let test_contoso_forward_integrity () =
  let db = make_db ~signing_seed:"contoso" "contoso" in
  let parts =
    Database.create_ledger_table db ~name:"parts"
      ~columns:
        [
          Column.make "part_id" Datatype.Int;
          Column.make "batch" (Datatype.Varchar 16);
          Column.make "vin" (Datatype.Varchar 20);
          Column.make "kind" (Datatype.Varchar 16);
        ]
      ~key:[ "part_id" ] ()
  in
  let store = WS.create ~hmac_key:"contoso-escrow" () in
  let dm = DM.create ~store () in
  (* 2018: honest manufacturing records; Bob's car gets batch B7 brakes. *)
  let (), _ =
    Database.with_txn db ~user:"assembly-line" (fun txn ->
        Txn.insert txn parts [| vi 1; vs "B7"; vs "VIN-BOB"; vs "brake" |];
        Txn.insert txn parts [| vi 2; vs "B9"; vs "VIN-OTHER"; vs "brake" |];
        Txn.insert txn parts [| vi 3; vs "B7"; vs "VIN-BOB"; vs "rotor" |])
  in
  (match DM.upload dm db with
  | DM.Uploaded _ -> ()
  | _ -> Alcotest.fail "digest upload");
  (* 2020: recall for batch B7; a motivated insider rewrites Bob's records
     directly in storage to point at the safe batch B9. *)
  ignore
    (Tamper.apply db
       (Tamper.Update_row
          { table = "parts"; key = [| vi 1 |]; column = "batch"; value = vs "B9" }));
  (* The lawsuit: an auditor pulls digests from escrow and verifies. *)
  let digests =
    match
      DM.digests_for_incarnation dm ~db_id:(Database.database_id db)
        ~create_time:(Database.create_time db)
    with
    | Ok ds -> ds
    | Error e -> Alcotest.fail e
  in
  let report = Verifier.verify db ~digests in
  Alcotest.(check bool) "tampering exposed" true (not (Verifier.ok report));
  Alcotest.(check bool) "pinned to the parts table" true
    (List.exists
       (function
         | Verifier.Table_root_mismatch { table = "parts"; _ } -> true
         | _ -> false)
       report.Verifier.violations)

let test_full_audit_cycle () =
  (* Honest operation end to end: periodic digests to a WORM store, a
     restart (checkpoint), receipts handed to a partner, a final audit that
     verifies everything and replays the ledger view. *)
  let db = make_db ~block_size:5 ~signing_seed:"audit" "sor" in
  let accounts = make_accounts db in
  let store = WS.create () in
  let dm = DM.create ~store () in
  for i = 1 to 12 do
    ignore (insert_account db accounts (Printf.sprintf "cust%02d" i) (i * 10));
    if i mod 4 = 0 then
      match DM.upload dm db with
      | DM.Uploaded _ -> ()
      | _ -> Alcotest.fail "periodic upload"
  done;
  ignore (update_account db accounts "cust03" 999);
  ignore (delete_account db accounts "cust07");
  Database.checkpoint db;
  (match DM.upload dm db with DM.Uploaded _ -> () | _ -> Alcotest.fail "final");
  let digests =
    match
      DM.digests_for_incarnation dm ~db_id:(Database.database_id db)
        ~create_time:(Database.create_time db)
    with
    | Ok ds -> ds
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check int) "four digests" 4 (List.length digests);
  let report = Verifier.verify db ~digests in
  Alcotest.(check bool) "audit passes" true (Verifier.ok report);
  Alcotest.(check bool) "anchored" true
    (report.Verifier.verified_upto_block <> None);
  (* A partner receipt for the update transaction. *)
  let update_txn =
    let r =
      Database.query db
        "SELECT transaction_id FROM accounts__ledger_view \
         WHERE name = 'cust03' AND balance = 999 AND operation = 'INSERT'"
    in
    match (List.hd r.Sqlexec.Rel.rows).(0) with
    | Value.Int t -> t
    | _ -> Alcotest.fail "txn id"
  in
  (match Receipt.generate db ~txn_id:update_txn with
  | Ok receipt -> (
      match Receipt.verify receipt with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Receipt.failure_to_string e))
  | Error e -> Alcotest.fail e);
  (* Ledger view as audit evidence. *)
  let ops =
    Database.query db
      "SELECT operation, COUNT(*) n FROM accounts__ledger_view \
       GROUP BY operation ORDER BY operation"
  in
  Alcotest.(check (list (list string)))
    "operation tallies"
    [ [ "DELETE"; "2" ]; [ "INSERT"; "13" ] ]
    (List.map
       (fun row -> List.map Value.to_string (Array.to_list row))
       ops.Sqlexec.Rel.rows)

let test_sql_over_ledger_artifacts () =
  let db = make_db "sqlint" in
  let accounts = make_accounts db in
  figure2 db accounts;
  Database.checkpoint db;
  ignore (fresh_digest db);
  (* Join the ledger view with the transactions system table to attribute
     operations to users — the paper's forensic workflow (§2.1). *)
  let r =
    Database.query db
      "SELECT v.name, v.operation, t.username \
       FROM accounts__ledger_view v \
       JOIN database_ledger_transactions t ON v.transaction_id = t.txn_id \
       WHERE v.name = 'Joe' ORDER BY v.operation"
  in
  Alcotest.(check int) "Joe rows" 2 (Sqlexec.Rel.cardinality r);
  List.iter
    (fun row ->
      Alcotest.(check string) "attributed" "teller" (Value.to_string row.(2)))
    r.Sqlexec.Rel.rows;
  (* Aggregate over the blocks system table. *)
  let b =
    Database.query db
      "SELECT COUNT(*) blocks, SUM(txn_count) txns FROM database_ledger_blocks"
  in
  match (List.hd b.Sqlexec.Rel.rows).(1) with
  | Value.Int n -> Alcotest.(check bool) "txns counted" true (n >= 7)
  | _ -> Alcotest.fail "sum"

let test_partial_verification () =
  let db = make_db "partial" in
  let a = make_accounts db in
  let b =
    Database.create_ledger_table db ~name:"other"
      ~columns:[ Column.make "id" Datatype.Int ]
      ~key:[ "id" ] ()
  in
  figure2 db a;
  let (), _ =
    Database.with_txn db ~user:"u" (fun txn -> Txn.insert txn b [| vi 1 |])
  in
  let d = fresh_digest db in
  (* Tamper with table [other] only. *)
  ignore
    (Tamper.apply db
       (Tamper.Update_row
          { table = "other"; key = [| vi 1 |]; column = "id"; value = vi 2 }));
  (* Verifying only [accounts] passes — the paper's scoped verification
     (§2.3) trades coverage for cost. *)
  let scoped = Verifier.verify ~tables:[ "accounts" ] db ~digests:[ d ] in
  Alcotest.(check bool) "scoped passes" true (Verifier.ok scoped);
  let full = Verifier.verify db ~digests:[ d ] in
  Alcotest.(check bool) "full fails" true (not (Verifier.ok full))

let test_wide_rows_and_many_columns () =
  (* A stress shape closer to the paper's 260-byte rows. *)
  let db = make_db ~block_size:50 "wide" in
  let columns =
    Column.make "id" Datatype.Int
    :: List.init 8 (fun i ->
           Column.make ~nullable:(i mod 2 = 1)
             (Printf.sprintf "payload%d" i)
             (Datatype.Varchar 32))
  in
  let wide =
    Database.create_ledger_table db ~name:"wide" ~columns ~key:[ "id" ] ()
  in
  let prng = Workload.Prng.create 123 in
  for i = 1 to 60 do
    let row =
      Array.init 9 (fun c ->
          if c = 0 then vi i
          else if c mod 2 = 1 then vs (Workload.Prng.alnum_string prng 30)
          else if Workload.Prng.bool prng then vs (Workload.Prng.alnum_string prng 30)
          else Value.Null)
    in
    let (), _ =
      Database.with_txn db ~user:"w" (fun txn -> Txn.insert txn wide row)
    in
    ()
  done;
  for i = 1 to 30 do
    let key = [| vi i |] in
    let row = Option.get (Ledger_table.find wide ~key) in
    let user = Ledger_table.user_row wide row in
    let updated = Row.set user 2 (vs "updated") in
    let (), _ =
      Database.with_txn db ~user:"w" (fun txn -> Txn.update txn wide ~key updated)
    in
    ()
  done;
  let d = fresh_digest db in
  Alcotest.(check bool) "verifies" true (verify_ok db [ d ])

let test_stress_many_blocks () =
  let db = make_db ~block_size:2 "manyblocks" in
  let accounts = make_accounts db in
  let digests = ref [] in
  for i = 1 to 30 do
    ignore (insert_account db accounts (Printf.sprintf "x%03d" i) i);
    if i mod 7 = 0 then digests := fresh_digest db :: !digests
  done;
  let final = fresh_digest db in
  Alcotest.(check bool) "many blocks verify" true
    (verify_ok db (final :: !digests));
  (* Chain derivation holds between every adjacent digest pair. *)
  let sorted =
    List.sort
      (fun (a : Digest.t) b -> compare a.Digest.block_id b.Digest.block_id)
      (final :: !digests)
  in
  let rec pairwise = function
    | a :: (b :: _ as rest) ->
        (match Verifier.verify_digest_chain db ~older:a ~newer:b with
        | Ok () -> ()
        | Error _ -> Alcotest.fail "adjacent digests must derive");
        pairwise rest
    | _ -> ()
  in
  pairwise sorted

let test_sql_dml_durable_replicated () =
  (* The whole stack at once: SQL-driven DML over a durable directory,
     shipped to a replica, crash, reopen — everything still verifies and
     the three instances agree. *)
  let dir = Filename.temp_file "full-stack" "" in
  Sys.remove dir;
  let cleanup () =
    (* Recovery may retain extra snapshot generations (.prev, .tmp). *)
    List.iter
      (fun p -> try Sys.remove (Filename.concat dir p) with Sys_error _ -> ())
      (try Array.to_list (Sys.readdir dir) with Sys_error _ -> []);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally:cleanup (fun () ->
      let t =
        Result.get_ok
          (Durable.open_dir ~clock:(make_clock ()) ~dir ~name:"stack" ())
      in
      let db = Durable.db t in
      let _ = make_accounts db in
      List.iter
        (fun sql -> ignore (Dml.execute db ~user:"app" sql))
        [
          "INSERT INTO accounts VALUES ('a', 1), ('b', 2), ('c', 3)";
          "UPDATE accounts SET balance = balance * 10 WHERE name <> 'b'";
          "DELETE FROM accounts WHERE balance = 2";
        ];
      let d = fresh_digest db in
      (* Ship to a replica. *)
      let replica = Replica.create ~clock:(make_clock ()) () in
      Alcotest.(check bool) "replicated" true
        (Replica.feed_from_file replica ~wal_path:(Durable.wal_path dir) = Ok ());
      let rdb = Option.get (Replica.database replica) in
      Alcotest.(check bool) "replica verifies" true
        (Verifier.ok (Verifier.verify rdb ~digests:[ d ]));
      (* Crash + reopen the primary. *)
      let t2 =
        Result.get_ok
          (Durable.open_dir ~clock:(make_clock ()) ~dir ~name:"stack" ())
      in
      let db2 = Durable.db t2 in
      Alcotest.(check bool) "reopened verifies" true
        (Verifier.ok (Verifier.verify db2 ~digests:[ d ]));
      (* All three agree on the data. *)
      let rows d_ =
        (Database.query d_ "SELECT name, balance FROM accounts ORDER BY name")
          .Sqlexec.Rel.rows
      in
      Alcotest.(check bool) "replica = primary" true
        (List.for_all2 Row.equal (rows db) (rows rdb));
      Alcotest.(check bool) "reopened = primary" true
        (List.for_all2 Row.equal (rows db) (rows db2)))

let () =
  Alcotest.run "integration"
    [
      ( "scenarios",
        [
          Alcotest.test_case "Contoso forward integrity" `Quick test_contoso_forward_integrity;
          Alcotest.test_case "full audit cycle" `Quick test_full_audit_cycle;
          Alcotest.test_case "SQL over ledger artifacts" `Quick test_sql_over_ledger_artifacts;
          Alcotest.test_case "partial verification" `Quick test_partial_verification;
          Alcotest.test_case "wide rows" `Quick test_wide_rows_and_many_columns;
          Alcotest.test_case "many blocks" `Quick test_stress_many_blocks;
          Alcotest.test_case "SQL + durable + replica" `Quick test_sql_dml_durable_replicated;
        ] );
    ]
