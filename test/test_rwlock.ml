(* The server's readers-writer lock, under real threads.

   The properties the server leans on: readers are admitted in parallel,
   a writer excludes everyone, acquire and release may happen on
   different threads (sessions release the exclusive lock in a later
   request than the one that took it), and a writer behind a saturating
   stream of overlapping readers is still admitted — the
   writer-preference property the group-commit path depends on for
   bounded commit latency.

   Since the copy-on-write snapshot refactor the lock's day job is
   writer staging only — reads are served from published snapshots and
   never touch it (the one exception: a replica before its first applied
   batch). The writer-only cases below pin down the behaviour that role
   depends on: pure writer-to-writer handoff makes progress without any
   reader participating in wakeups, and a reader arriving after a
   writer-only era is still admitted promptly. *)

module Rwlock = Ledger_server.Rwlock

let test_parallel_reader_admission () =
  let l = Rwlock.create () in
  let n = 4 in
  let inside = Atomic.make 0 in
  let peak = Atomic.make 0 in
  let reader () =
    Rwlock.read l (fun () ->
        let now = Atomic.fetch_and_add inside 1 + 1 in
        let rec bump () =
          let p = Atomic.get peak in
          if now > p && not (Atomic.compare_and_set peak p now) then bump ()
        in
        bump ();
        (* Hold the read lock until every reader is inside at once (or a
           deadline proves they cannot be): admission must be parallel. *)
        let deadline = Unix.gettimeofday () +. 5.0 in
        while Atomic.get peak < n && Unix.gettimeofday () < deadline do
          Thread.yield ()
        done;
        ignore (Atomic.fetch_and_add inside (-1)))
  in
  let ths = List.init n (fun _ -> Thread.create reader ()) in
  List.iter Thread.join ths;
  Alcotest.(check int) "all readers inside simultaneously" n (Atomic.get peak)

let test_writer_excludes_everyone () =
  let l = Rwlock.create () in
  Rwlock.lock_write l;
  let entered = Atomic.make 0 in
  let ths =
    [
      Thread.create (fun () -> Rwlock.read l (fun () -> Atomic.incr entered)) ();
      Thread.create (fun () -> Rwlock.write l (fun () -> Atomic.incr entered)) ();
    ]
  in
  Thread.delay 0.15;
  Alcotest.(check int) "nobody enters while the writer holds" 0
    (Atomic.get entered);
  Rwlock.unlock_write l;
  List.iter Thread.join ths;
  Alcotest.(check int) "both enter after release" 2 (Atomic.get entered)

(* Invariant torture: concurrent readers and writers hammering the lock
   must never observe two writers inside, or a reader and writer
   inside, at the same time. *)
let test_exclusion_torture () =
  let l = Rwlock.create () in
  let writers_in = Atomic.make 0 in
  let readers_in = Atomic.make 0 in
  let violations = Atomic.make 0 in
  let stop = Atomic.make false in
  let writer () =
    while not (Atomic.get stop) do
      Rwlock.write l (fun () ->
          if Atomic.fetch_and_add writers_in 1 <> 0 then
            Atomic.incr violations;
          if Atomic.get readers_in <> 0 then Atomic.incr violations;
          Thread.yield ();
          ignore (Atomic.fetch_and_add writers_in (-1)))
    done
  in
  let reader () =
    while not (Atomic.get stop) do
      Rwlock.read l (fun () ->
          ignore (Atomic.fetch_and_add readers_in 1);
          if Atomic.get writers_in <> 0 then Atomic.incr violations;
          Thread.yield ();
          ignore (Atomic.fetch_and_add readers_in (-1)))
    done
  in
  let ths =
    List.init 2 (fun _ -> Thread.create writer ())
    @ List.init 2 (fun _ -> Thread.create reader ())
  in
  Thread.delay 0.5;
  Atomic.set stop true;
  List.iter Thread.join ths;
  Alcotest.(check int) "no exclusion violations" 0 (Atomic.get violations)

(* Sessions take the exclusive lock in the BEGIN request and release it
   in the COMMIT request; nothing may depend on the acquiring thread
   still existing at release time. *)
let test_cross_thread_release () =
  let l = Rwlock.create () in
  let taker = Thread.create (fun () -> Rwlock.lock_write l) () in
  Thread.join taker;
  let entered = Atomic.make false in
  let waiter =
    Thread.create
      (fun () -> Rwlock.write l (fun () -> Atomic.set entered true))
      ()
  in
  Thread.delay 0.1;
  Alcotest.(check bool) "lock survives its acquiring thread" false
    (Atomic.get entered);
  (* Release from this thread, which never acquired it. *)
  Rwlock.unlock_write l;
  Thread.join waiter;
  Alcotest.(check bool) "next writer admitted after cross-thread release"
    true (Atomic.get entered)

(* Writer preference: a writer arriving into a continuous stream of
   overlapping readers (there is never a moment with zero readers
   in-flight) must still be admitted — arriving readers queue behind
   it. Regression for commit-path starvation. *)
let test_writer_progress_behind_readers () =
  let l = Rwlock.create () in
  let stop = Atomic.make false in
  let readers =
    List.init 3 (fun _ ->
        Thread.create
          (fun () ->
            while not (Atomic.get stop) do
              Rwlock.read l (fun () -> Thread.delay 0.002)
            done)
          ())
  in
  Thread.delay 0.05;
  let acquired = Atomic.make false in
  let writer =
    Thread.create
      (fun () -> Rwlock.write l (fun () -> Atomic.set acquired true))
      ()
  in
  let deadline = Unix.gettimeofday () +. 5.0 in
  while (not (Atomic.get acquired)) && Unix.gettimeofday () < deadline do
    Thread.delay 0.01
  done;
  Atomic.set stop true;
  Thread.join writer;
  List.iter Thread.join readers;
  Alcotest.(check bool) "writer admitted despite reader stream" true
    (Atomic.get acquired)

(* Writer-only handoff: with reads gone from the hot path the lock
   degenerates to a mutex between writer sessions, the commit queue and
   the replica apply thread. A convoy of writers doing rapid
   acquire/release cycles must drain completely — no lost wakeup is
   tolerable when no reader ever shows up to broadcast. *)
let test_writer_only_handoff () =
  let l = Rwlock.create () in
  let writers = 4 and cycles = 300 in
  let completed = Atomic.make 0 in
  let shared = ref 0 in
  let writer () =
    for _ = 1 to cycles do
      Rwlock.write l (fun () ->
          (* Unsynchronized on purpose: correct only under exclusion. *)
          shared := !shared + 1)
    done;
    Atomic.incr completed
  in
  let ths = List.init writers (fun _ -> Thread.create writer ()) in
  List.iter Thread.join ths;
  Alcotest.(check int) "every writer drained its cycles" writers
    (Atomic.get completed);
  Alcotest.(check int) "mutual exclusion held" (writers * cycles) !shared

(* A reader arriving after a writer-only era (the replica's pre-publish
   fallback is the only reader left in production) must still be
   admitted once the last writer releases — the reader condition
   variable must not rot while only writers signal each other. *)
let test_reader_after_writer_era () =
  let l = Rwlock.create () in
  let stop = Atomic.make false in
  let writers =
    List.init 2 (fun _ ->
        Thread.create
          (fun () ->
            while not (Atomic.get stop) do
              Rwlock.write l (fun () -> Thread.yield ())
            done)
          ())
  in
  Thread.delay 0.1;
  let admitted = Atomic.make false in
  let reader =
    Thread.create (fun () -> Rwlock.read l (fun () -> Atomic.set admitted true)) ()
  in
  let deadline = Unix.gettimeofday () +. 5.0 in
  while (not (Atomic.get admitted)) && Unix.gettimeofday () < deadline do
    Thread.delay 0.01
  done;
  Atomic.set stop true;
  Thread.join reader;
  List.iter Thread.join writers;
  Alcotest.(check bool) "late reader admitted after writer-only era" true
    (Atomic.get admitted)

let () =
  Alcotest.run "rwlock"
    [
      ( "rwlock",
        [
          Alcotest.test_case "parallel reader admission" `Quick
            test_parallel_reader_admission;
          Alcotest.test_case "writer excludes everyone" `Quick
            test_writer_excludes_everyone;
          Alcotest.test_case "exclusion torture" `Quick test_exclusion_torture;
          Alcotest.test_case "cross-thread release" `Quick
            test_cross_thread_release;
          Alcotest.test_case "writer progress behind readers" `Quick
            test_writer_progress_behind_readers;
          Alcotest.test_case "writer-only handoff" `Quick
            test_writer_only_handoff;
          Alcotest.test_case "reader after writer-only era" `Quick
            test_reader_after_writer_era;
        ] );
    ]
