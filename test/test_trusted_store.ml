(* WORM store immutability, HMAC authentication, digest management with
   geo-replication gating and incarnations (§2.4, §3.6). *)

open Sql_ledger
open Testkit
module WS = Trusted_store.Worm_store
module DM = Trusted_store.Digest_manager

let test_append_and_read () =
  let s = WS.create () in
  Alcotest.(check bool) "append 1" true (WS.append s ~blob:"b" "one" = Ok ());
  Alcotest.(check bool) "append 2" true (WS.append s ~blob:"b" "two" = Ok ());
  Alcotest.(check bool) "read" true (WS.read s ~blob:"b" = Ok [ "one"; "two" ]);
  Alcotest.(check bool) "missing blob" true
    (match WS.read s ~blob:"zzz" with Error _ -> true | Ok _ -> false);
  Alcotest.(check bool) "exists" true (WS.exists s ~blob:"b");
  Alcotest.(check (list string)) "list" [ "b" ] (WS.list_blobs s)

let test_seal_blocks_appends () =
  let s = WS.create () in
  ignore (WS.append s ~blob:"b" "data");
  WS.seal s ~blob:"b";
  Alcotest.(check bool) "sealed append fails" true
    (match WS.append s ~blob:"b" "more" with Error _ -> true | Ok () -> false);
  Alcotest.(check int) "rejected counted" 1 (WS.rejected_writes s);
  Alcotest.(check bool) "content intact" true (WS.read s ~blob:"b" = Ok [ "data" ])

let test_hmac_detects_hostile_write () =
  let s = WS.create ~hmac_key:"customer-key" () in
  ignore (WS.append s ~blob:"b" "digest payload");
  Alcotest.(check bool) "authentic read" true (WS.read s ~blob:"b" = Ok [ "digest payload" ]);
  Alcotest.(check bool) "corruption applied" true
    (WS.Hostile.corrupt_chunk s ~blob:"b" ~index:0 "forged payload");
  match WS.read s ~blob:"b" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "forged chunk must fail authentication"

let test_without_hmac_corruption_silent () =
  (* Documents why the HMAC option exists. *)
  let s = WS.create () in
  ignore (WS.append s ~blob:"b" "data");
  ignore (WS.Hostile.corrupt_chunk s ~blob:"b" ~index:0 "forged");
  Alcotest.(check bool) "silently accepted" true (WS.read s ~blob:"b" = Ok [ "forged" ])

let test_file_mirror () =
  let dir = Filename.temp_file "worm" "" in
  Sys.remove dir;
  let s = WS.create ~dir () in
  ignore (WS.append s ~blob:"digests/x/1.0" "payload");
  let path = Filename.concat dir "digests%2Fx%2F1.0.blob" in
  Alcotest.(check bool) "mirror file exists" true (Sys.file_exists path);
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Alcotest.(check string) "mirror content" "payload" line;
  Sys.remove path;
  Unix.rmdir dir

let test_mirror_names_never_collide () =
  (* Regression: '/' used to be flattened to '_', so blobs "a/b" and "a_b"
     shared one mirror file and silently overwrote each other. *)
  let dir = Filename.temp_file "worm" "" in
  Sys.remove dir;
  let s = WS.create ~dir () in
  ignore (WS.append s ~blob:"a/b" "slash");
  ignore (WS.append s ~blob:"a_b" "underscore");
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".blob")
  in
  Alcotest.(check int) "two distinct mirror files" 2 (List.length files);
  (* Escaping is injective on tricky names. *)
  let names =
    [ "a/b"; "a_b"; "a%2Fb"; "a\\b"; "a:b"; "a\nb"; "plain" ]
  in
  let escaped = List.map WS.escape_blob_name names in
  Alcotest.(check int) "all escapes distinct"
    (List.length names)
    (List.length (List.sort_uniq String.compare escaped));
  List.iter (fun f -> Sys.remove (Filename.concat dir f)) files;
  Unix.rmdir dir

let test_digest_upload_and_readback () =
  let db = make_db "dm1" in
  let accounts = make_accounts db in
  figure2 db accounts;
  let store = WS.create () in
  let dm = DM.create ~store () in
  (match DM.upload dm db with
  | DM.Uploaded d ->
      Alcotest.(check string) "db id" (Database.database_id db) d.Digest.database_id
  | _ -> Alcotest.fail "expected upload");
  ignore (insert_account db accounts "More" 1);
  (match DM.upload dm db with
  | DM.Uploaded _ -> ()
  | _ -> Alcotest.fail "second upload");
  match
    DM.digests_for_incarnation dm ~db_id:(Database.database_id db)
      ~create_time:(Database.create_time db)
  with
  | Ok ds ->
      Alcotest.(check int) "two digests stored" 2 (List.length ds);
      (* They verify the database. *)
      Alcotest.(check bool) "verify with stored digests" true (verify_ok db ds)
  | Error e -> Alcotest.fail e

let test_upload_empty_db () =
  let db =
    Database.create ~clock:(make_clock ()) ~name:"empty-ish" ()
  in
  (* Even a fresh database commits metadata transactions only when tables
     are created; with none, nothing to upload. *)
  let store = WS.create () in
  let dm = DM.create ~store () in
  match DM.upload dm db with
  | DM.Nothing_to_upload -> ()
  | _ -> Alcotest.fail "expected Nothing_to_upload"

let test_replication_gate () =
  let db = make_db "dm2" in
  let accounts = make_accounts db in
  figure2 db accounts;
  let store = WS.create () in
  (* Secondary is stuck at t=0: every upload defers, then alerts (§3.6). *)
  let dm =
    DM.create ~replicated_upto:(fun () -> 0.0) ~alert_after_deferrals:3 ~store ()
  in
  (match DM.upload dm db with
  | DM.Deferred_replication_lag -> ()
  | _ -> Alcotest.fail "expected deferral");
  ignore (DM.upload dm db);
  (match DM.upload dm db with
  | DM.Alert_replication_stuck -> ()
  | _ -> Alcotest.fail "expected alert");
  Alcotest.(check int) "deferrals counted" 3 (DM.deferral_count dm);
  (* Secondary catches up: upload proceeds and the counter resets. *)
  let dm2 = DM.create ~replicated_upto:(fun () -> infinity) ~store () in
  match DM.upload dm2 db with
  | DM.Uploaded _ -> Alcotest.(check int) "reset" 0 (DM.deferral_count dm2)
  | _ -> Alcotest.fail "expected upload"

let test_incarnations_after_restore () =
  let db = make_db "dm3" in
  let accounts = make_accounts db in
  figure2 db accounts;
  let store = WS.create () in
  let dm = DM.create ~store () in
  (match DM.upload dm db with DM.Uploaded _ -> () | _ -> Alcotest.fail "u1");
  (* Point-in-time restore: new incarnation, new blob. *)
  let backup = Database.backup db in
  let restored = Database.restore backup ~create_time:5000.0 in
  let racc = Database.ledger_table restored "accounts" in
  let (), _ =
    Database.with_txn restored ~user:"teller" (fun txn ->
        Txn.insert txn racc [| vs "PostRestore"; vi 1 |])
  in
  (match DM.upload dm restored with
  | DM.Uploaded _ -> ()
  | _ -> Alcotest.fail "u2");
  let incarnations = DM.all_digests dm ~db_id:(Database.database_id db) in
  Alcotest.(check int) "two incarnations" 2 (List.length incarnations);
  (* Users can see when the restore happened from the blob grouping. *)
  let times = List.map fst incarnations in
  Alcotest.(check bool) "sorted ascending" true
    (times = List.sort Float.compare times);
  (* The restored incarnation's digests verify the restored database. *)
  match
    DM.digests_for_incarnation dm ~db_id:(Database.database_id restored)
      ~create_time:(Database.create_time restored)
  with
  | Ok ds ->
      Alcotest.(check bool) "restored verifies" true
        (Verifier.ok (Verifier.verify restored ~digests:ds))
  | Error e -> Alcotest.fail e

let test_latest_digest () =
  let db = make_db "dm4" in
  let accounts = make_accounts db in
  figure2 db accounts;
  let store = WS.create () in
  let dm = DM.create ~store () in
  Alcotest.(check bool) "none yet" true (DM.latest_digest dm ~db = None);
  (match DM.upload dm db with DM.Uploaded _ -> () | _ -> Alcotest.fail "u");
  ignore (insert_account db accounts "X" 1);
  (match DM.upload dm db with DM.Uploaded _ -> () | _ -> Alcotest.fail "u2");
  match DM.latest_digest dm ~db with
  | Some d ->
      let all =
        match
          DM.digests_for_incarnation dm ~db_id:(Database.database_id db)
            ~create_time:(Database.create_time db)
        with
        | Ok ds -> ds
        | Error e -> Alcotest.fail e
      in
      Alcotest.(check int) "latest is max block"
        (List.fold_left (fun acc (x : Digest.t) -> max acc x.Digest.block_id) 0 all)
        d.Digest.block_id
  | None -> Alcotest.fail "expected latest"

(* --- signed digests (§2.4) --- *)

let sample_digest db = Option.get (Database.generate_digest db)

let test_signed_digest () =
  let db = make_db "sd" in
  let accounts = make_accounts db in
  figure2 db accounts;
  let d = sample_digest db in
  let sd = Trusted_store.Signed_digest.sign ~seed:"company-key" ~index:0 d in
  (match Trusted_store.Signed_digest.verify sd with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let fp = Trusted_store.Signed_digest.fingerprint ~seed:"company-key" ~index:0 in
  (match Trusted_store.Signed_digest.verify ~expected_fingerprint:fp sd with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* Wrong fingerprint (different index) rejected. *)
  let fp1 = Trusted_store.Signed_digest.fingerprint ~seed:"company-key" ~index:1 in
  (match Trusted_store.Signed_digest.verify ~expected_fingerprint:fp1 sd with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "wrong fingerprint accepted");
  (* Forged digest content rejected. *)
  let forged =
    { sd with Trusted_store.Signed_digest.digest = { d with Digest.block_id = 99 } }
  in
  (match Trusted_store.Signed_digest.verify forged with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "forged digest accepted");
  (* JSON roundtrip. *)
  match
    Trusted_store.Signed_digest.of_string
      (Trusted_store.Signed_digest.to_string sd)
  with
  | Ok sd' -> (
      match Trusted_store.Signed_digest.verify ~expected_fingerprint:fp sd' with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
  | Error e -> Alcotest.fail e

(* --- public-chain anchoring (§2.4) --- *)

module PC = Trusted_store.Public_chain

let test_public_chain_anchor () =
  let db = make_db "pc" in
  let accounts = make_accounts db in
  figure2 db accounts;
  let d = sample_digest db in
  let chain = PC.create ~confirmations_required:2 () in
  let payload = Digest.to_string d in
  let r = PC.submit chain payload in
  Alcotest.(check bool) "not yet mined" false (PC.verify_anchor chain r ~payload);
  PC.mine_block chain;
  Alcotest.(check bool) "anchored" true (PC.verify_anchor chain r ~payload);
  Alcotest.(check bool) "not yet confirmed" false (PC.confirmed chain r);
  PC.mine_block chain;
  PC.mine_block chain;
  Alcotest.(check bool) "confirmed" true (PC.confirmed chain r);
  Alcotest.(check bool) "chain valid" true (PC.chain_valid chain);
  (* Wrong payload never verifies. *)
  Alcotest.(check bool) "wrong payload" false
    (PC.verify_anchor chain r ~payload:"forged")

let test_public_chain_tamper () =
  let chain = PC.create () in
  let r = PC.submit chain "the digest" in
  PC.mine_block chain;
  PC.mine_block chain;
  Alcotest.(check bool) "rewrite applied" true
    (PC.Hostile.rewrite_payload chain ~height:r.PC.height ~index:0 "forged");
  Alcotest.(check bool) "chain invalidated" false (PC.chain_valid chain);
  Alcotest.(check bool) "anchor gone" false
    (PC.verify_anchor chain r ~payload:"the digest")

let () =
  Alcotest.run "trusted-store"
    [
      ( "worm",
        [
          Alcotest.test_case "append/read" `Quick test_append_and_read;
          Alcotest.test_case "seal" `Quick test_seal_blocks_appends;
          Alcotest.test_case "hmac detects hostile write" `Quick test_hmac_detects_hostile_write;
          Alcotest.test_case "no hmac = silent" `Quick test_without_hmac_corruption_silent;
          Alcotest.test_case "file mirror" `Quick test_file_mirror;
          Alcotest.test_case "mirror names never collide" `Quick
            test_mirror_names_never_collide;
        ] );
      ( "signed digests + anchoring",
        [
          Alcotest.test_case "signed digest" `Quick test_signed_digest;
          Alcotest.test_case "public chain anchor" `Quick test_public_chain_anchor;
          Alcotest.test_case "public chain tamper" `Quick test_public_chain_tamper;
        ] );
      ( "digest manager",
        [
          Alcotest.test_case "upload + readback" `Quick test_digest_upload_and_readback;
          Alcotest.test_case "nothing to upload" `Quick test_upload_empty_db;
          Alcotest.test_case "replication gate" `Quick test_replication_gate;
          Alcotest.test_case "incarnations" `Quick test_incarnations_after_restore;
          Alcotest.test_case "latest digest" `Quick test_latest_digest;
        ] );
    ]
