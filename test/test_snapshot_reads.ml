(* Snapshot-read isolation.

   The copy-on-write refactor promises that a reader holding a
   [Database.snapshot] sees a frozen, verifiable state no matter what
   commits concurrently. Three layers of evidence:

   - engine level: a snapshot captured between two seeded workload
     phases stays byte-identical to a serial replay of the first phase
     while a concurrent write storm mutates the live database, and the
     frozen state passes full ledger verification *during* the storm;

   - tree level: a [Btree.snapshot] shares structure but not future
     — interleaved inserts and deletes on the source never appear in
     the captured view, and both sides keep their invariants;

   - server level: with group commit on, lock-free reads racing a write
     storm never error, wire verification succeeds mid-storm, and a
     writer that got its ack immediately finds its own row in a
     subsequent read (read-your-writes through the snapshot swap).

   Seeded like test_group_commit: SNAPSHOT_SEED / SNAPSHOT_TRIALS pin or
   widen the sweep. *)

module Server = Ledger_server.Server
module Client = Wire.Client
module Protocol = Wire.Protocol
module Prng = Workload.Prng
open Sql_ledger

let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let getenv_int name default =
  match int_of_string_opt (Sys.getenv name) with
  | Some n -> n
  | None -> default
  | exception Not_found -> default

let seed = getenv_int "SNAPSHOT_SEED" 0x5EED5
let trials = getenv_int "SNAPSHOT_TRIALS" 3

let sorted_rows rel =
  List.sort compare (List.map Relation.Row.to_list rel.Sqlexec.Rel.rows)

(* ------------------------------------------------------------------ *)
(* Deterministic statement streams (same discipline as test_group_commit:
   the live-id set evolves only from the stream's own history, so a seed
   fully determines the statements). *)

let gen_ops ~trial ~stream ~count =
  let prng = Prng.create (seed lxor (trial * 7919) lxor ((stream + 1) * 104729)) in
  let base = (stream + 1) * 100_000 in
  let live = ref [] in
  let next = ref 0 in
  let ops = ref [] in
  let emit s = ops := s :: !ops in
  let insert () =
    incr next;
    let id = base + !next in
    live := id :: !live;
    emit
      (Printf.sprintf "INSERT INTO snap VALUES (%d, '%s')" id
         (Prng.alnum_string prng 16))
  in
  let update () =
    match !live with
    | [] -> insert ()
    | l ->
        emit
          (Printf.sprintf "UPDATE snap SET v = '%s' WHERE id = %d"
             (Prng.alnum_string prng 16) (Prng.pick prng l))
  in
  let delete () =
    match !live with
    | [] -> insert ()
    | l ->
        let id = Prng.pick prng l in
        live := List.filter (fun x -> x <> id) l;
        emit (Printf.sprintf "DELETE FROM snap WHERE id = %d" id)
  in
  for _ = 1 to count do
    match Prng.int prng 10 with
    | 0 | 1 | 2 | 3 | 4 -> insert ()
    | 5 | 6 | 7 -> update ()
    | _ -> delete ()
  done;
  List.rev !ops

let fresh_db name =
  let db = Database.create ~name () in
  ignore
    (Database.create_ledger_table db ~name:"snap"
       ~columns:
         [
           Relation.Column.make "id" Relation.Datatype.Int;
           Relation.Column.make "v" (Relation.Datatype.Varchar 32);
         ]
       ~key:[ "id" ] ()
      : Ledger_table.t);
  db

let apply db ops =
  List.iter (fun sql -> ignore (Dml.execute db ~user:"w" sql : Dml.result)) ops

(* ------------------------------------------------------------------ *)
(* Engine level: frozen + verifiable during a storm, differential vs a
   serial replay of the pre-capture prefix. *)

let run_engine_trial trial =
  let prefix = gen_ops ~trial ~stream:0 ~count:120 in
  let storm = gen_ops ~trial ~stream:1 ~count:400 in
  let db = fresh_db "snapiso" in
  apply db prefix;
  let frozen = Database.snapshot db in
  let expected = sorted_rows (Database.query frozen "SELECT * FROM snap") in
  (* Concurrent phase: one writer storms the live database while readers
     hammer the frozen view. Any drift or verification failure is a COW
     leak. *)
  let mismatches = Atomic.make 0 in
  let verify_failures = Atomic.make 0 in
  let storming = Atomic.make true in
  let reader () =
    let checks = ref 0 in
    while Atomic.get storming && !checks < 1000 do
      incr checks;
      let rows = sorted_rows (Database.query frozen "SELECT * FROM snap") in
      if rows <> expected then Atomic.incr mismatches;
      if !checks mod 50 = 1 then
        if not (Verifier.ok (Verifier.verify frozen ~digests:[])) then
          Atomic.incr verify_failures
    done
  in
  let readers = List.init 2 (fun _ -> Thread.create reader ()) in
  apply db storm;
  Atomic.set storming false;
  List.iter Thread.join readers;
  Alcotest.(check int)
    (Printf.sprintf "trial %d: no frozen-view drift" trial)
    0 (Atomic.get mismatches);
  Alcotest.(check int)
    (Printf.sprintf "trial %d: snapshot verifies during storm" trial)
    0 (Atomic.get verify_failures);
  (* After the storm the frozen view still matches a serial replay of
     just the prefix, and the live database (which diverged) still
     verifies on its own. *)
  let replay = fresh_db "snapiso-replay" in
  apply replay prefix;
  let replay_rows = sorted_rows (Database.query replay "SELECT * FROM snap") in
  Alcotest.(check (list (list string)))
    (Printf.sprintf "trial %d: snapshot = serial replay of prefix" trial)
    (List.map (List.map Relation.Value.to_string) replay_rows)
    (List.map (List.map Relation.Value.to_string)
       (sorted_rows (Database.query frozen "SELECT * FROM snap")));
  if sorted_rows (Database.query db "SELECT * FROM snap") = expected then
    Alcotest.failf "trial %d: storm had no effect on the live database" trial;
  if not (Verifier.ok (Verifier.verify db ~digests:[])) then
    Alcotest.failf "trial %d: live database fails verification post-storm"
      trial;
  if not (Verifier.ok (Verifier.verify frozen ~digests:[])) then
    Alcotest.failf "trial %d: snapshot fails verification post-storm" trial

let test_engine_frozen () =
  for trial = 1 to trials do
    run_engine_trial trial
  done

(* ------------------------------------------------------------------ *)
(* Tree level: structural sharing without future leakage, across enough
   churn to force splits, borrows, merges and root collapses on the
   source after the capture. *)

let test_btree_cow () =
  let prng = Prng.create (seed lxor 0xB7EE) in
  let tree = Btree.create ~order:4 ~cmp:compare () in
  for _ = 1 to 500 do
    ignore (Btree.insert tree (Prng.int prng 1000) "x" : string option)
  done;
  let snap = Btree.snapshot tree in
  let frozen = Btree.to_list snap in
  (* Churn the source hard: deletes force every rebalancing path at
     order 4, inserts re-split. *)
  for _ = 1 to 2000 do
    let k = Prng.int prng 1000 in
    if Prng.int prng 2 = 0 then ignore (Btree.remove tree k : string option)
    else ignore (Btree.insert tree k "y" : string option)
  done;
  Btree.check_invariants tree;
  Btree.check_invariants snap;
  Alcotest.(check int) "snapshot unchanged by churn" 0
    (compare frozen (Btree.to_list snap));
  (* Drain the source to empty: the snapshot must survive the root
     collapsing under it. *)
  List.iter
    (fun (k, _) -> ignore (Btree.remove tree k : string option))
    (Btree.to_list tree);
  Alcotest.(check int) "source drained" 0 (Btree.length tree);
  Btree.check_invariants snap;
  Alcotest.(check int) "snapshot survives source drain" 0
    (compare frozen (Btree.to_list snap))

(* ------------------------------------------------------------------ *)
(* Server level: lock-free reads racing a write storm over the wire. *)

let connect port =
  match Client.connect ~host:"127.0.0.1" ~port () with
  | Ok c -> c
  | Error e -> Alcotest.fail (Client.connect_error_to_string e)

let test_server_storm () =
  let dir = Filename.temp_dir "sqlledger-snapread" "" in
  let config =
    { Server.default_config with port = 0; dir; db_name = "snapsrv" }
  in
  if config.group_commit_window <= 0.0 then
    Alcotest.fail "expected group commit on by default";
  let srv =
    match Server.start ~config () with
    | Ok s -> s
    | Error e -> Alcotest.fail (Server.start_error_to_string e)
  in
  let th = Server.run_async srv in
  let port = Server.port srv in
  let setup = connect port in
  (match
     Client.call setup
       (Protocol.Create_table
          {
            name = "snap";
            columns = [ ("id", "int"); ("v", "varchar(32)") ];
            key = [ "id" ]; ledger = true
          })
   with
  | Ok r when not (Protocol.response_is_error r) -> ()
  | Ok r -> Alcotest.fail ("create: " ^ Protocol.response_kind r)
  | Error e -> Alcotest.fail ("create: " ^ e));
  Client.close setup;
  let failures = Atomic.make 0 in
  let fail_msg = ref "" in
  let record msg =
    Atomic.incr failures;
    fail_msg := msg
  in
  let writers = 2 and writes_each = 60 in
  let done_writers = Atomic.make 0 in
  let writer w =
    let c = connect port in
    for i = 1 to writes_each do
      let id = (w * 1_000_000) + i in
      (match
         Client.call c
           (Protocol.Exec
              {
                sql = Printf.sprintf "INSERT INTO snap VALUES (%d, 'w')" id;
              })
       with
      | Ok r when not (Protocol.response_is_error r) -> ()
      | Ok r -> record ("exec: " ^ Protocol.response_kind r)
      | Error e -> record ("exec transport: " ^ e));
      (* Read-your-writes: the ack means the leader already swapped in a
         snapshot containing this row; the very next lock-free read must
         find it. *)
      match
        Client.call c
          (Protocol.Query
             { sql = Printf.sprintf "SELECT * FROM snap WHERE id = %d" id })
      with
      | Ok (Protocol.Rows_r { rows; _ }) ->
          if List.length rows <> 1 then
            record (Printf.sprintf "read-your-writes: id %d invisible" id)
      | Ok r -> record ("query: " ^ Protocol.response_kind r)
      | Error e -> record ("query transport: " ^ e)
    done;
    Atomic.incr done_writers;
    Client.close c
  in
  let reader () =
    let c = connect port in
    let n = ref 0 in
    while Atomic.get done_writers < writers do
      incr n;
      (match Client.call c (Protocol.Query { sql = "SELECT * FROM snap" }) with
      | Ok (Protocol.Rows_r _) -> ()
      | Ok r -> record ("scan: " ^ Protocol.response_kind r)
      | Error e -> record ("scan transport: " ^ e));
      if !n mod 20 = 1 then
        match Client.call c (Protocol.Verify { tables = []; digests = [] }) with
        | Ok (Protocol.Verify_r s) ->
            if not s.Protocol.vs_ok then record "mid-storm verify not ok"
        | Ok r -> record ("verify: " ^ Protocol.response_kind r)
        | Error e -> record ("verify transport: " ^ e)
    done;
    Client.close c
  in
  let ths =
    List.init writers (fun w -> Thread.create writer w)
    @ List.init 2 (fun _ -> Thread.create reader ())
  in
  List.iter Thread.join ths;
  if Atomic.get failures > 0 then
    Alcotest.failf "%d failures under storm, last: %s" (Atomic.get failures)
      !fail_msg;
  (* Final state: every acked insert present, ledger verifies. *)
  let c = connect port in
  (match Client.call c (Protocol.Query { sql = "SELECT * FROM snap" }) with
  | Ok (Protocol.Rows_r { rows; _ }) ->
      Alcotest.(check int) "all acked inserts present" (writers * writes_each)
        (List.length rows)
  | Ok r -> Alcotest.fail ("final scan: " ^ Protocol.response_kind r)
  | Error e -> Alcotest.fail ("final scan: " ^ e));
  (match Client.call c (Protocol.Verify { tables = []; digests = [] }) with
  | Ok (Protocol.Verify_r s) ->
      Alcotest.(check bool) "final verify ok" true s.Protocol.vs_ok
  | Ok r -> Alcotest.fail ("final verify: " ^ Protocol.response_kind r)
  | Error e -> Alcotest.fail ("final verify: " ^ e));
  Client.close c;
  Server.shutdown srv th

let () =
  Alcotest.run "snapshot-reads"
    [
      ( "engine",
        [
          Alcotest.test_case
            (Printf.sprintf "frozen + verifiable during storm (%d trials)"
               trials)
            `Quick test_engine_frozen;
        ] );
      ("btree", [ Alcotest.test_case "COW structural sharing" `Quick test_btree_cow ]);
      ( "server",
        [
          Alcotest.test_case "lock-free reads under write storm" `Quick
            test_server_storm;
        ] );
    ]
