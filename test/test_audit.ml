(* Incremental audit, proven differentially against the full verifier:
   on seeded mixed workloads the incremental auditor must reach the same
   verdict (and the same trusted anchor) as a from-scratch
   [Verifier.verify], and when a historical block is tampered with, both
   must pin the same block.

   Seeded: set AUDIT_SEED / AUDIT_TRIALS to reproduce or widen a run. *)

open Sql_ledger
open Testkit

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt s with Some i -> i | None -> default)
  | None -> default

(* ------------------------------------------------------------------ *)
(* Seeded mixed workload over a fresh ledger database. *)

type world = {
  db : Database.t;
  accounts : Ledger_table.t;
  mutable live : string list;  (* keys currently present *)
  mutable next_key : int;
}

let make_world rng trial =
  let block_size = 1 + Random.State.int rng 8 in
  let db =
    if Random.State.bool rng then
      make_db ~block_size
        ~signing_seed:(Printf.sprintf "audit-seed-%d" trial)
        (Printf.sprintf "audit-%d" trial)
    else make_db ~block_size (Printf.sprintf "audit-%d" trial)
  in
  let accounts = make_accounts db in
  { db; accounts; live = []; next_key = 0 }

let step rng w =
  let roll = Random.State.int rng 100 in
  if roll < 60 || w.live = [] then begin
    w.next_key <- w.next_key + 1;
    let key = Printf.sprintf "k%04d" w.next_key in
    ignore (insert_account w.db w.accounts key (Random.State.int rng 1000));
    w.live <- key :: w.live
  end
  else
    let victim = List.nth w.live (Random.State.int rng (List.length w.live)) in
    if roll < 85 then
      ignore (update_account w.db w.accounts victim (Random.State.int rng 1000))
    else begin
      ignore (delete_account w.db w.accounts victim);
      w.live <- List.filter (fun k -> k <> victim) w.live
    end

(* The differential harness: interleave workload steps, digest
   generation and incremental scans; at the end the incremental verdict,
   the advanced mark and the full verifier must all agree. *)
let run_clean_trial rng trial =
  let w = make_world rng trial in
  let steps = 15 + Random.State.int rng 25 in
  let digests = ref [] in
  let mark = ref None in
  let checked = ref 0 in
  let ctx = Printf.sprintf "trial %d" trial in
  for _ = 1 to steps do
    step rng w;
    if Random.State.int rng 100 < 25 then
      Option.iter (fun d -> digests := d :: !digests)
        (Database.generate_digest w.db);
    if Random.State.int rng 100 < 30 then begin
      let o = Incremental_audit.scan ~digests:!digests w.db ~from:!mark in
      if not (Incremental_audit.ok o) then
        Alcotest.failf "%s: incremental violation on a clean ledger: %s" ctx
          (String.concat "; "
             (List.map Verifier.violation_to_string
                o.Incremental_audit.o_violations));
      checked := !checked + o.Incremental_audit.o_blocks_checked;
      mark := o.Incremental_audit.o_mark
    end
  done;
  (* Close the tail so the final anchors are comparable. *)
  let final_digest =
    match Database.generate_digest w.db with
    | Some d ->
        digests := d :: !digests;
        d
    | None -> Alcotest.failf "%s: no final digest" ctx
  in
  let o = Incremental_audit.scan ~digests:!digests w.db ~from:!mark in
  Alcotest.(check bool) (ctx ^ ": final incremental ok") true
    (Incremental_audit.ok o);
  checked := !checked + o.Incremental_audit.o_blocks_checked;
  let final_mark =
    match o.Incremental_audit.o_mark with
    | Some m -> m
    | None -> Alcotest.failf "%s: no mark after a digest closed a block" ctx
  in
  (* Differential: the full verifier agrees the ledger is clean... *)
  let report = Verifier.verify w.db ~digests:!digests in
  Alcotest.(check bool) (ctx ^ ": full verify ok") true (Verifier.ok report);
  (* ...the incremental pass covered every block exactly once... *)
  Alcotest.(check int) (ctx ^ ": blocks checked once each")
    report.Verifier.blocks_checked !checked;
  (* ...and both trust the same final anchor: the incremental mark IS the
     digest the full verifier anchored to. *)
  Alcotest.(check int) (ctx ^ ": mark block")
    final_digest.Digest.block_id final_mark.Incremental_audit.m_block_id;
  Alcotest.(check string) (ctx ^ ": mark hash")
    (Ledger_crypto.Hex.encode final_digest.Digest.block_hash)
    (Ledger_crypto.Hex.encode final_mark.Incremental_audit.m_block_hash)

let test_differential_clean () =
  let seed = env_int "AUDIT_SEED" 0xA0D17 in
  let trials = env_int "AUDIT_TRIALS" 10 in
  let rng = Random.State.make [| seed |] in
  for trial = 1 to trials do
    run_clean_trial rng trial
  done

(* ------------------------------------------------------------------ *)
(* Tampering: both auditors pin the same historical block. *)

let pinned_of_report (report : Verifier.report) =
  Incremental_audit.pinned_block
    {
      Incremental_audit.o_mark = None;
      o_violations = report.Verifier.violations;
      o_blocks_checked = report.Verifier.blocks_checked;
    }

let run_tamper_trial rng trial =
  let w = make_world rng trial in
  let digests = ref [] in
  for _ = 1 to 25 do
    step rng w;
    if Random.State.int rng 100 < 25 then
      Option.iter (fun d -> digests := d :: !digests)
        (Database.generate_digest w.db)
  done;
  Option.iter (fun d -> digests := d :: !digests)
    (Database.generate_digest w.db);
  (* Flush queued entries into the system table so the attack below can
     overwrite them in storage. *)
  Database.checkpoint w.db;
  let ctx = Printf.sprintf "tamper trial %d" trial in
  (* A clean incremental pass first: its mark is the pre-attack trust
     anchor a restarted auditor would resume from. *)
  let clean = Incremental_audit.scan ~digests:!digests w.db ~from:None in
  Alcotest.(check bool) (ctx ^ ": clean before attack") true
    (Incremental_audit.ok clean);
  let mark = clean.Incremental_audit.o_mark in
  let blocks = Database_ledger.blocks (Database.ledger w.db) in
  let victim =
    let b = List.nth blocks (Random.State.int rng (List.length blocks)) in
    b.Types.block_id
  in
  let attack =
    if Random.State.bool rng then Tamper.Fork_chain { block_id = victim }
    else begin
      (* Falsify who ran a transaction inside the victim block; the
         entry hash changes, so the block root no longer matches. *)
      let entries =
        Database_ledger.entries_of_block (Database.ledger w.db)
          ~block_id:victim
      in
      let e = List.nth entries (Random.State.int rng (List.length entries)) in
      Tamper.Rewrite_transaction_user
        { txn_id = e.Types.txn_id; user = "mallory" }
    end
  in
  (match Tamper.apply w.db attack with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: attack failed: %s" ctx e);
  (* Bootstrap-mode incremental scan and full verify pin the same block. *)
  let o = Incremental_audit.scan ~digests:!digests w.db ~from:None in
  Alcotest.(check bool) (ctx ^ ": incremental detects") false
    (Incremental_audit.ok o);
  let report = Verifier.verify w.db ~digests:!digests in
  Alcotest.(check bool) (ctx ^ ": full verify detects") false
    (Verifier.ok report);
  (match (Incremental_audit.pinned_block o, pinned_of_report report) with
  | Some a, Some b ->
      Alcotest.(check int) (ctx ^ ": same pinned block") b a;
      Alcotest.(check int) (ctx ^ ": pinned the victim") victim a
  | _ -> Alcotest.failf "%s: a detector produced no pinned block" ctx);
  (* The incremental mark never advances past the damage: it stops at
     the last block before the victim. *)
  (match o.Incremental_audit.o_mark with
  | Some m ->
      Alcotest.(check bool) (ctx ^ ": mark stops before the bad block") true
        (m.Incremental_audit.m_block_id < victim)
  | None -> Alcotest.(check int) (ctx ^ ": nothing trusted") 0 victim);
  (* Resume-mode behaviour is split by where the damage lies relative to
     the persisted mark: at or before it, the re-anchoring of the mark
     block catches a tampered mark block itself (and only that — the
     skipped prefix is bootstrap's job); the differential guarantee for
     resumes is that a mark block forgery can never slip through. *)
  match mark with
  | Some m when victim = m.Incremental_audit.m_block_id ->
      let resumed = Incremental_audit.scan ~digests:[] w.db ~from:mark in
      Alcotest.(check bool) (ctx ^ ": tampered mark block detected on resume")
        false
        (Incremental_audit.ok resumed)
  | _ -> ()

let test_differential_tampered () =
  let seed = env_int "AUDIT_SEED" 0xA0D17 in
  let trials = env_int "AUDIT_TRIALS" 10 in
  let rng = Random.State.make [| seed + 1 |] in
  for trial = 1 to trials do
    run_tamper_trial rng trial
  done

(* ------------------------------------------------------------------ *)
(* Resume semantics: a scan from the mark touches only new blocks. *)

let test_resume_counts_only_new_blocks () =
  let db = make_db ~block_size:3 "resume" in
  let accounts = make_accounts db in
  for i = 1 to 9 do
    ignore (insert_account db accounts (Printf.sprintf "a%d" i) i)
  done;
  ignore (fresh_digest db);
  let first = Incremental_audit.scan db ~from:None in
  Alcotest.(check bool) "first ok" true (Incremental_audit.ok first);
  let mark = first.Incremental_audit.o_mark in
  Alcotest.(check bool) "have mark" true (mark <> None);
  (* Nothing new: zero work. *)
  let idle = Incremental_audit.scan db ~from:mark in
  Alcotest.(check int) "idle rescan is free" 0
    idle.Incremental_audit.o_blocks_checked;
  Alcotest.(check bool) "idle keeps the mark" true
    (idle.Incremental_audit.o_mark = mark);
  (* Six more transactions = two new blocks; the resume checks exactly
     those. *)
  for i = 10 to 15 do
    ignore (insert_account db accounts (Printf.sprintf "a%d" i) i)
  done;
  ignore (fresh_digest db);
  let resumed = Incremental_audit.scan db ~from:mark in
  Alcotest.(check bool) "resume ok" true (Incremental_audit.ok resumed);
  Alcotest.(check int) "resume checks only new blocks" 2
    resumed.Incremental_audit.o_blocks_checked

(* ------------------------------------------------------------------ *)
(* Mark persistence: atomic save, exact load, loud corruption. *)

let with_tmp f =
  let path = Filename.temp_file "audit-mark" ".json" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_mark_persistence () =
  with_tmp (fun path ->
      (match Trusted_store.Audit_mark.load ~path with
      | Ok None -> ()
      | Ok (Some _) -> Alcotest.fail "mark from nowhere"
      | Error e -> Alcotest.fail e);
      let mark =
        {
          Incremental_audit.m_block_id = 7;
          m_block_hash = String.init 32 Char.chr;
        }
      in
      Trusted_store.Audit_mark.save ~path mark;
      (match Trusted_store.Audit_mark.load ~path with
      | Ok (Some saved) ->
          Alcotest.(check int) "block id" 7
            saved.Trusted_store.Audit_mark.mark.Incremental_audit.m_block_id;
          Alcotest.(check string) "hash"
            (Ledger_crypto.Hex.encode mark.Incremental_audit.m_block_hash)
            (Ledger_crypto.Hex.encode
               saved.Trusted_store.Audit_mark.mark
                 .Incremental_audit.m_block_hash)
      | Ok None -> Alcotest.fail "saved mark not found"
      | Error e -> Alcotest.fail e);
      (* A corrupt mark must be an error — never a silent reset to
         genesis (which would quietly re-trust a rewritten history). *)
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc "{ not json");
      match Trusted_store.Audit_mark.load ~path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "corrupt mark loaded silently")

let () =
  Alcotest.run "audit"
    [
      ( "differential",
        [
          Alcotest.test_case "clean workloads match full verify" `Quick
            test_differential_clean;
          Alcotest.test_case "tampered block pinned identically" `Quick
            test_differential_tampered;
        ] );
      ( "resume",
        [
          Alcotest.test_case "scan from mark touches only new blocks" `Quick
            test_resume_counts_only_new_blocks;
        ] );
      ( "mark",
        [ Alcotest.test_case "persistence roundtrip" `Quick test_mark_persistence ] );
    ]
