(* Recovery torture tests: trip every registered failpoint under a
   randomized workload, and truncate the WAL tail at random byte offsets,
   then reopen through [Durable.open_dir] and assert that

   - every transaction whose commit returned before the fault survives,
   - at most the single in-flight transaction is additionally present
     (its commit record may have reached disk before the crash surfaced),
   - the verifier finds the recovered ledger intact, and
   - the reopened database accepts new work.

   Seed and trial count come from CRASH_MATRIX_SEED / CRASH_MATRIX_TRIALS
   so CI can pin a fixed seed and a nightly sweep can widen the search. *)

open Sql_ledger
open Testkit
module Prng = Workload.Prng
module LR = Aries.Log_record

let getenv_int name default =
  match int_of_string_opt (Sys.getenv name) with
  | Some n -> n
  | None -> default
  | exception Not_found -> default

let seed = getenv_int "CRASH_MATRIX_SEED" 0xC0FFEE
let trials = getenv_int "CRASH_MATRIX_TRIALS" 200

(* ------------------------------------------------------------------ *)
(* Temp directories *)

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let with_dir f =
  let dir = Filename.temp_file "crashmx" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* Model-checked account workload

   Every committed operation is applied to an in-memory model of the
   accounts table; after recovery the real table must equal the model —
   or the model plus the one operation in flight when the fault fired. *)

type op = Insert of string * int | Update of string * int | Delete of string

let apply_op model = function
  | Insert (name, bal) | Update (name, bal) ->
      Hashtbl.replace model name bal
  | Delete name -> Hashtbl.remove model name

let model_rows model =
  Hashtbl.fold (fun name bal acc -> (name, bal) :: acc) model []
  |> List.sort compare

let table_rows db =
  match Database.find_ledger_table db "accounts" with
  | None -> []
  | Some lt ->
      Storage.Table_store.scan (Ledger_table.main lt)
      |> List.map (fun row ->
             match (row.(0), row.(1)) with
             | Relation.Value.String name, Relation.Value.Int bal -> (name, bal)
             | _ -> Alcotest.fail "unexpected accounts row shape")
      |> List.sort compare

type world = {
  mutable next_name : int;
  model : (string, int) Hashtbl.t;
  mutable pending : op option;  (* attempted, fate unknown until it returns *)
}

let fresh_world () = { next_name = 0; model = Hashtbl.create 64; pending = None }

let random_op w prng =
  let existing = Hashtbl.fold (fun k _ acc -> k :: acc) w.model [] in
  let roll = Prng.int prng 10 in
  if existing = [] || roll < 5 then begin
    w.next_name <- w.next_name + 1;
    Insert (Printf.sprintf "acct%d" w.next_name, Prng.int prng 1000)
  end
  else if roll < 8 then Update (Prng.pick prng existing, Prng.int prng 1000)
  else Delete (Prng.pick prng existing)

let commit_op db accounts w op =
  w.pending <- Some op;
  ignore
    (Database.with_txn db ~user:"torture" (fun txn ->
         match op with
         | Insert (name, bal) -> Txn.insert txn accounts [| vs name; vi bal |]
         | Update (name, bal) ->
             Txn.update txn accounts ~key:[| vs name |] [| vs name; vi bal |]
         | Delete name -> Txn.delete txn accounts ~key:[| vs name |]));
  apply_op w.model op;
  w.pending <- None

(* State after recovery must be the committed model, possibly extended by
   the operation that was in flight when the fault fired. *)
let check_recovered_state ~what w db =
  let actual = table_rows db in
  let expected = model_rows w.model in
  if actual <> expected then begin
    let plus = Hashtbl.copy w.model in
    Option.iter (apply_op plus) w.pending;
    let expected_plus = model_rows plus in
    if actual <> expected_plus then
      Alcotest.failf
        "%s: recovered table matches neither the committed model (%d rows) \
         nor model+pending (%d rows); got %d rows"
        what (List.length expected) (List.length expected_plus)
        (List.length actual)
  end

(* ------------------------------------------------------------------ *)
(* Failpoint matrix *)

(* Registered by the modules under test at link time; pinned here so a
   silently vanished registration fails the suite. *)
let expected_points =
  [
    "compact.truncate";
    "snapshot.fsync";
    "snapshot.rename";
    "snapshot.rename_prev";
    "snapshot.write";
    "wal.append";
    "wal.batch_append";
    "wal.batch_sync";
    "wal.sync";
    "worm.mirror.fsync";
    "worm.mirror.rename";
    "worm.mirror.rename_prev";
    "worm.mirror.write";
  ]

(* The batch points only fire on the group-commit path, which the
   per-commit workload above never takes; they get their own scenario
   below instead of a seat in the generic matrix. *)
let batch_points = [ "wal.batch_append"; "wal.batch_sync" ]
let scan_points = List.filter (fun p -> not (List.mem p batch_points)) expected_points

let test_all_points_registered () =
  let registered = Fault.points () in
  List.iter
    (fun p ->
      if not (List.mem p registered) then
        Alcotest.failf "failpoint %s is not registered" p)
    expected_points

(* One full life: baseline work, arm the failpoint, keep working through
   commits / checkpoint / compact / WORM mirroring until the fault fires
   (or doesn't), then recover and check. *)
let run_scenario point mode scenario_seed =
  with_dir (fun dir ->
      Fault.reset ();
      let prng = Prng.create scenario_seed in
      let w = fresh_world () in
      let open_dir () =
        match Durable.open_dir ~clock:(make_clock ()) ~dir ~name:"torture" () with
        | Ok t -> t
        | Error e -> Alcotest.failf "%s/%s: open_dir: %s" point
                       (Fault.mode_to_string mode) e
      in
      (* Baseline: committed work that must survive anything below. *)
      let t = open_dir () in
      let db = Durable.db t in
      let accounts = make_accounts db in
      for _ = 1 to 6 do
        commit_op db accounts w (random_op w prng)
      done;
      if Prng.bool prng then Durable.checkpoint t;
      let baseline_digest = fresh_digest db in
      let worm =
        Trusted_store.Worm_store.create ~dir:(Filename.concat dir "worm") ()
      in
      (* Armed phase: exercise every guarded path. A crash-mode fault kills
         the whole phase (the process is dead); an error-mode fault is a
         clean I/O failure the caller survives, so keep going. *)
      Fault.set point mode;
      let soft_fail thunk =
        match thunk () with
        | () -> ()
        | exception Fault.Injected_error _ -> w.pending <- None
      in
      (try
         for i = 1 to 12 do
           match i mod 4 with
           | 1 | 2 ->
               soft_fail (fun () -> commit_op db accounts w (random_op w prng))
           | 3 ->
               soft_fail (fun () ->
                   if i = 3 then Durable.checkpoint t else Durable.compact t)
           | _ ->
               soft_fail (fun () ->
                   match
                     Trusted_store.Worm_store.append worm ~blob:"digests"
                       (Digest.to_string (fresh_digest db))
                   with
                   | Ok () -> ()
                   | Error e -> Alcotest.failf "worm append refused: %s" e)
         done
       with Fault.Injected_crash _ -> ());
      Fault.reset ();
      (* Reopen what the "crashed process" left on disk. *)
      let t2 = open_dir () in
      let db2 = Durable.db t2 in
      let what = point ^ "/" ^ Fault.mode_to_string mode in
      check_recovered_state ~what w db2;
      if not (Verifier.ok (Verifier.verify db2 ~digests:[ baseline_digest ]))
      then Alcotest.failf "%s: recovered ledger failed verification" what;
      (* Resolve the in-doubt operation against what actually recovered:
         if its commit record made it to disk, it is now part of history. *)
      (match w.pending with
      | Some op when table_rows db2 <> model_rows w.model ->
          apply_op w.model op
      | _ -> ());
      w.pending <- None;
      (* The survivor must accept new work durably. *)
      commit_op db2 (Database.ledger_table db2 "accounts") w
        (random_op w prng);
      let t3 = open_dir () in
      check_recovered_state ~what:(what ^ " (post-recovery work)") w
        (Durable.db t3);
      (* A mirror blob file, if any survived, is complete: atomic_write
         never leaves a torn mirror in place. *)
      let mirror = Filename.concat (Filename.concat dir "worm") "digests.blob" in
      if Sys.file_exists mirror then begin
        let contents = In_channel.with_open_bin mirror In_channel.input_all in
        if contents <> "" && contents.[String.length contents - 1] <> '\n'
        then Alcotest.failf "%s: torn WORM mirror file" what
      end)

(* Error-mode is skipped for wal.sync: a failed commit-record fsync leaves
   the commit's durability unknowable, which no caller can safely "handle
   and continue" (the fsyncgate lesson) — only the crash modes are
   meaningful there. *)
let modes_for point =
  let crash_modes = [ Fault.Crash_after 0; Fault.Crash_after 37 ] in
  if point = "wal.sync" then crash_modes else Fault.Fail :: crash_modes

let matrix_cases =
  List.concat_map
    (fun point ->
      List.map
        (fun mode ->
          let name = point ^ "=" ^ Fault.mode_to_string mode in
          Alcotest.test_case name `Quick (fun () ->
              run_scenario point mode (seed lxor Hashtbl.hash name)))
        (modes_for point))
    scan_points

(* ------------------------------------------------------------------ *)
(* Group-commit batch boundaries

   Drive commits the way the server's commit leader does — stage each
   transaction, then publish several at once through [Wal.append_batch]
   and [Database_ledger.accumulate_batch] — with the batch failpoints
   armed. The batch frame is a single checksummed WAL line, so recovery
   must observe each batch all-or-nothing: the committed model, or the
   committed model plus the *entire* batch in flight, never a prefix of
   it. *)

(* Conflict-free random batch: ops are generated against a scratch view
   that applies them as they are drawn, so a batch never updates a row an
   earlier member deleted (staged transactions see each other's
   in-memory effects, exactly like queued server commits). *)
let random_batch w prng n =
  let view = Hashtbl.copy w.model in
  List.init n (fun _ ->
      let existing = Hashtbl.fold (fun k _ acc -> k :: acc) view [] in
      let roll = Prng.int prng 10 in
      let op =
        if existing = [] || roll < 5 then begin
          w.next_name <- w.next_name + 1;
          Insert (Printf.sprintf "acct%d" w.next_name, Prng.int prng 1000)
        end
        else if roll < 8 then Update (Prng.pick prng existing, Prng.int prng 1000)
        else Delete (Prng.pick prng existing)
      in
      apply_op view op;
      op)

(* Stage every op as its own transaction, publish them as one batch. The
   model is updated only once the publish returns — until then the whole
   batch is in flight. *)
let commit_batch db accounts w ops =
  let staged =
    List.map
      (fun op ->
        let txn = Database.begin_staged_txn db ~user:"torture" in
        (match op with
        | Insert (name, bal) -> Txn.insert txn accounts [| vs name; vi bal |]
        | Update (name, bal) ->
            Txn.update txn accounts ~key:[| vs name |] [| vs name; vi bal |]
        | Delete name -> Txn.delete txn accounts ~key:[| vs name |]);
        Txn.stage_commit txn)
      ops
  in
  let ledger = Database.ledger db in
  ignore
    (Aries.Wal.append_batch (Database_ledger.wal ledger)
       (List.concat_map snd staged)
      : int list);
  Database_ledger.accumulate_batch ledger (List.map fst staged);
  List.iter (apply_op w.model) ops

let check_recovered_batch ~what w pending db =
  let actual = table_rows db in
  if actual <> model_rows w.model then begin
    let plus = Hashtbl.copy w.model in
    List.iter (apply_op plus) pending;
    if actual <> model_rows plus then
      Alcotest.failf
        "%s: recovered table is neither the pre-batch state (%d committed \
         ops pending none) nor the state with the whole %d-op batch — a \
         batch prefix leaked through recovery"
        what (Hashtbl.length w.model) (List.length pending)
  end

let run_batch_scenario point mode scenario_seed =
  with_dir (fun dir ->
      Fault.reset ();
      let prng = Prng.create scenario_seed in
      let w = fresh_world () in
      let open_dir () =
        match
          Durable.open_dir ~clock:(make_clock ()) ~dir ~name:"torture" ()
        with
        | Ok t -> t
        | Error e ->
            Alcotest.failf "%s/%s: open_dir: %s" point
              (Fault.mode_to_string mode) e
      in
      let t = open_dir () in
      let db = Durable.db t in
      let accounts = make_accounts db in
      (* Baseline batches that must survive anything below. *)
      for _ = 1 to 3 do
        commit_batch db accounts w (random_batch w prng (1 + Prng.int prng 4))
      done;
      let baseline_digest = fresh_digest db in
      Fault.set point mode;
      (* Publish batches until the fault fires. An injected error poisons
         the engine the same way it poisons the server's commit queue —
         in-memory state is ahead of the log, no further commits are
         legal — so both modes end the phase at the failure. *)
      let pending = ref [] in
      (try
         for _ = 1 to 10 do
           let ops = random_batch w prng (1 + Prng.int prng 4) in
           pending := ops;
           commit_batch db accounts w ops;
           pending := []
         done
       with Fault.Injected_crash _ | Fault.Injected_error _ -> ());
      Fault.reset ();
      let t2 = open_dir () in
      let db2 = Durable.db t2 in
      let what = point ^ "/" ^ Fault.mode_to_string mode in
      check_recovered_batch ~what w !pending db2;
      if not (Verifier.ok (Verifier.verify db2 ~digests:[ baseline_digest ]))
      then Alcotest.failf "%s: recovered ledger failed verification" what;
      (* Resolve the in-doubt batch against what actually recovered. *)
      if table_rows db2 <> model_rows w.model then
        List.iter (apply_op w.model) !pending;
      (* The survivor accepts new batched work durably. *)
      commit_batch db2
        (Database.ledger_table db2 "accounts")
        w
        (random_batch w prng 2);
      Aries.Wal.sync (Database_ledger.wal (Database.ledger db2));
      let t3 = open_dir () in
      check_recovered_batch ~what:(what ^ " (post-recovery batch)") w []
        (Durable.db t3))

(* Crash offsets chosen to land before the frame (0), inside the first
   armed batch's frame (37), and inside a later batch (400); the sync
   point crashes between the batch write and its fsync, where the frame
   is complete and the batch may legitimately survive whole. *)
let batch_cases =
  let cases point modes =
    List.map
      (fun mode ->
        let name = point ^ "=" ^ Fault.mode_to_string mode in
        Alcotest.test_case name `Quick (fun () ->
            run_batch_scenario point mode (seed lxor Hashtbl.hash name)))
      modes
  in
  cases "wal.batch_append"
    [ Fault.Fail; Fault.Crash_after 0; Fault.Crash_after 37;
      Fault.Crash_after 400 ]
  @ cases "wal.batch_sync" [ Fault.Crash_after 0 ]

(* ------------------------------------------------------------------ *)
(* TPC-C smoke: a crash mid-mix must leave a verifiable, usable ledger. *)

let test_tpcc_crash_midway () =
  with_dir (fun dir ->
      Fault.reset ();
      let open_dir () =
        match Durable.open_dir ~clock:(make_clock ()) ~dir ~name:"tpcc" () with
        | Ok t -> t
        | Error e -> Alcotest.failf "open_dir: %s" e
      in
      let t = open_dir () in
      let cfg =
        {
          Workload.Tpcc.warehouses = 1;
          districts_per_warehouse = 2;
          customers_per_district = 4;
          items = 10;
          ledgered = true;
        }
      in
      let tp = Workload.Tpcc.setup (Durable.db t) cfg in
      let prng = Prng.create seed in
      ignore (Workload.Tpcc.run tp ~prng ~transactions:10);
      (* Tear the log partway through a later transaction's records. *)
      Fault.set "wal.append" (Fault.Crash_after 200);
      (try ignore (Workload.Tpcc.run tp ~prng ~transactions:50)
       with Fault.Injected_crash _ -> ());
      Fault.reset ();
      let t2 = open_dir () in
      let db2 = Durable.db t2 in
      if not (Verifier.ok (Verifier.verify db2 ~digests:[]))
      then Alcotest.fail "recovered TPC-C ledger failed verification";
      (* And a second recovery of the recovered state is stable. *)
      let t3 = open_dir () in
      if not (Verifier.ok (Verifier.verify (Durable.db t3) ~digests:[]))
      then Alcotest.fail "re-recovered TPC-C ledger failed verification")

(* ------------------------------------------------------------------ *)
(* Random WAL-tail truncation sweep *)

(* Build one reference database (WAL only, no snapshot), remembering which
   account each transaction committed. *)
let build_reference dir =
  let t =
    match Durable.open_dir ~clock:(make_clock ()) ~dir ~name:"sweep" () with
    | Ok t -> t
    | Error e -> Alcotest.failf "open_dir: %s" e
  in
  let db = Durable.db t in
  let accounts = make_accounts db in
  let txn_to_name = Hashtbl.create 64 in
  for i = 1 to 25 do
    let name = Printf.sprintf "acct%d" i in
    let entry = insert_account db accounts name i in
    Hashtbl.replace txn_to_name entry.Types.txn_id name
  done;
  txn_to_name

let committed_names_in_wal txn_to_name path =
  match Aries.Wal.load path with
  | Error e -> Alcotest.failf "truncated WAL must stay loadable: %s" e
  | Ok records ->
      List.filter_map
        (fun (_, r) ->
          match r with
          | LR.Commit c -> Hashtbl.find_opt txn_to_name c.LR.txn_id
          | _ -> None)
        records
      |> List.sort compare

let truncate_file path len =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd len;
  Unix.close fd

let test_truncation_sweep () =
  with_dir (fun ref_dir ->
      let txn_to_name = build_reference ref_dir in
      let wal_src = Durable.wal_path ref_dir in
      let pristine = In_channel.with_open_bin wal_src In_channel.input_all in
      let size = String.length pristine in
      let prng = Prng.create (seed lxor 0x7150c4) in
      for trial = 1 to trials do
        with_dir (fun dir ->
            let wal = Durable.wal_path dir in
            Out_channel.with_open_bin wal (fun oc ->
                Out_channel.output_string oc pristine);
            let cut = Prng.int prng (size + 1) in
            truncate_file wal cut;
            let expected = committed_names_in_wal txn_to_name wal in
            match Durable.open_dir ~clock:(make_clock ()) ~dir ~name:"sweep" () with
            | Error e ->
                Alcotest.failf "trial %d (cut %d/%d): reopen failed: %s" trial
                  cut size e
            | Ok t ->
                let db = Durable.db t in
                (* A cut inside the creation record recovers to a fresh
                   database with no accounts table: actual = []. *)
                let actual = List.map fst (table_rows db) in
                if actual <> expected then
                  Alcotest.failf
                    "trial %d (cut %d/%d): %d accounts recovered, %d \
                     committed in surviving prefix"
                    trial cut size (List.length actual)
                    (List.length expected);
                if
                  actual <> []
                  && not (Verifier.ok (Verifier.verify db ~digests:[]))
                then
                  Alcotest.failf "trial %d (cut %d/%d): verification failed"
                    trial cut size)
      done)

(* Random tail cuts over a WAL written entirely by batches: the set of
   surviving accounts must always be a whole-batch prefix — a cut that
   tears batch k's frame drops all of batch k, never part of it. *)
let test_batch_truncation_sweep () =
  with_dir (fun ref_dir ->
      let t =
        match
          Durable.open_dir ~clock:(make_clock ()) ~dir:ref_dir ~name:"bsweep" ()
        with
        | Ok t -> t
        | Error e -> Alcotest.failf "open_dir: %s" e
      in
      let db = Durable.db t in
      let accounts = make_accounts db in
      let w = fresh_world () in
      let batches =
        List.init 8 (fun b ->
            let names =
              List.init 3 (fun i -> Printf.sprintf "acct%d" ((b * 3) + i + 1))
            in
            let ops = List.map (fun n -> Insert (n, 100)) names in
            commit_batch db accounts w ops;
            List.sort compare names)
      in
      let wal_src = Durable.wal_path ref_dir in
      let pristine = In_channel.with_open_bin wal_src In_channel.input_all in
      let size = String.length pristine in
      let prng = Prng.create (seed lxor 0xBA7C4) in
      for trial = 1 to trials do
        with_dir (fun dir ->
            let wal = Durable.wal_path dir in
            Out_channel.with_open_bin wal (fun oc ->
                Out_channel.output_string oc pristine);
            let cut = Prng.int prng (size + 1) in
            truncate_file wal cut;
            match
              Durable.open_dir ~clock:(make_clock ()) ~dir ~name:"bsweep" ()
            with
            | Error e ->
                Alcotest.failf "trial %d (cut %d/%d): reopen failed: %s" trial
                  cut size e
            | Ok t ->
                let actual = List.map fst (table_rows (Durable.db t)) in
                (* Find the longest whole-batch prefix matching the
                   recovered accounts; anything else is a torn batch
                   leaking a partial commit set. *)
                let rec prefixes acc cur = function
                  | [] -> List.rev (cur :: acc)
                  | b :: rest ->
                      prefixes (cur :: acc) (List.sort compare (cur @ b)) rest
                in
                let legal = prefixes [] [] batches in
                if not (List.mem (List.sort compare actual) legal) then
                  Alcotest.failf
                    "trial %d (cut %d/%d): recovered %d accounts, not a \
                     whole-batch prefix"
                    trial cut size (List.length actual))
      done)

let () =
  Alcotest.run "crash-matrix"
    [
      ("registry", [ Alcotest.test_case "all points registered" `Quick
                       test_all_points_registered ]);
      ("failpoint matrix", matrix_cases);
      ("batch boundaries", batch_cases);
      ("tpcc", [ Alcotest.test_case "crash mid-mix" `Quick test_tpcc_crash_midway ]);
      ( "wal truncation",
        [ Alcotest.test_case (Printf.sprintf "%d random cuts" trials) `Quick
            test_truncation_sweep ] );
      ( "batch truncation",
        [ Alcotest.test_case (Printf.sprintf "%d random cuts" trials) `Quick
            test_batch_truncation_sweep ] );
    ]
