(* Durable directory databases: create / crash / reopen cycles with digest
   continuity, checkpointing and log compaction. *)

open Sql_ledger
open Testkit

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

(* Recovery can leave extra generations around (snapshot.json.prev, a stale
   .tmp), so clean the whole directory, not a fixed file list. *)
let with_dir f =
  let dir = Filename.temp_file "durable" "" in
  Sys.remove dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let open_ok ?clock dir =
  match Durable.open_dir ?clock ~dir ~name:"dur" () with
  | Ok t -> t
  | Error e -> Alcotest.fail e

let test_create_crash_reopen () =
  with_dir (fun dir ->
      let t = open_ok ~clock:(make_clock ()) dir in
      let db = Durable.db t in
      let accounts = make_accounts db in
      figure2 db accounts;
      let d = fresh_digest db in
      (* "Crash": drop the handle on the floor; reopen from disk. *)
      let t2 = open_ok ~clock:(make_clock ()) dir in
      let db2 = Durable.db t2 in
      Alcotest.(check string) "identity" (Database.database_id db)
        (Database.database_id db2);
      Alcotest.(check int) "rows" 3
        (Ledger_table.row_count (Database.ledger_table db2 "accounts"));
      Alcotest.(check bool) "old digest verifies" true
        (Verifier.ok (Verifier.verify db2 ~digests:[ d ])))

let test_multiple_generations () =
  with_dir (fun dir ->
      let digests = ref [] in
      for generation = 1 to 4 do
        let t = open_ok ~clock:(make_clock ()) dir in
        let db = Durable.db t in
        let accounts =
          if generation = 1 then make_accounts db
          else Database.ledger_table db "accounts"
        in
        ignore
          (insert_account db accounts (Printf.sprintf "gen%d" generation)
             generation);
        digests := fresh_digest db :: !digests;
        if generation mod 2 = 0 then Durable.checkpoint t
      done;
      let t = open_ok ~clock:(make_clock ()) dir in
      let db = Durable.db t in
      Alcotest.(check int) "all generations present" 4
        (Ledger_table.row_count (Database.ledger_table db "accounts"));
      Alcotest.(check bool) "all digests verify" true
        (Verifier.ok (Verifier.verify db ~digests:!digests)))

let test_compact_bounds_log () =
  with_dir (fun dir ->
      let t = open_ok ~clock:(make_clock ()) dir in
      let db = Durable.db t in
      let accounts = make_accounts db in
      for i = 1 to 10 do
        ignore (insert_account db accounts (Printf.sprintf "x%d" i) i)
      done;
      let size_before = (Unix.stat (Durable.wal_path dir)).Unix.st_size in
      Durable.compact t;
      let size_after = (Unix.stat (Durable.wal_path dir)).Unix.st_size in
      Alcotest.(check bool) "log shrank" true (size_after < size_before);
      (* Post-compact writes and recovery still work. *)
      ignore (insert_account db accounts "post" 1);
      let d = fresh_digest db in
      let t2 = open_ok ~clock:(make_clock ()) dir in
      Alcotest.(check bool) "recovered post-compact" true
        (Verifier.ok (Verifier.verify (Durable.db t2) ~digests:[ d ])))

let test_reopen_after_compact_crash () =
  (* compact writes the snapshot, then truncates the log; simulate a crash
     right after the truncate by compacting and reopening immediately. *)
  with_dir (fun dir ->
      let t = open_ok ~clock:(make_clock ()) dir in
      let db = Durable.db t in
      let accounts = make_accounts db in
      ignore (insert_account db accounts "kept" 1);
      Durable.compact t;
      let t2 = open_ok ~clock:(make_clock ()) dir in
      Alcotest.(check bool) "row survived" true
        (Ledger_table.find
           (Database.ledger_table (Durable.db t2) "accounts")
           ~key:[| vs "kept" |]
        <> None))

(* ------------------------------------------------------------------ *)
(* Crash shapes around compaction and snapshot generations *)

let reopen_has_kept ?(name = "kept") dir =
  let t = open_ok ~clock:(make_clock ()) dir in
  let db = Durable.db t in
  Alcotest.(check bool) (name ^ " survived") true
    (Ledger_table.find (Database.ledger_table db "accounts")
       ~key:[| vs name |]
    <> None);
  Alcotest.(check bool) "recovered ledger verifies" true
    (Verifier.ok (Verifier.verify db ~digests:[]))

let setup_kept dir =
  let t = open_ok ~clock:(make_clock ()) dir in
  let db = Durable.db t in
  let accounts = make_accounts db in
  ignore (insert_account db accounts "kept" 1);
  t

let test_compact_crash_before_truncate () =
  (* Snapshot written, log not yet truncated: replay must skip the whole
     log (the snapshot already covers it), not re-apply it. *)
  with_dir (fun dir ->
      Fault.reset ();
      let t = setup_kept dir in
      Fault.set "compact.truncate" (Fault.Crash_after 0);
      (match Durable.compact t with
      | exception Fault.Injected_crash _ -> ()
      | () -> Alcotest.fail "expected injected crash");
      Fault.reset ();
      reopen_has_kept dir)

let test_snapshot_present_wal_absent () =
  with_dir (fun dir ->
      let t = setup_kept dir in
      Durable.checkpoint t;
      Sys.remove (Durable.wal_path dir);
      reopen_has_kept dir)

let test_snapshot_present_wal_empty () =
  with_dir (fun dir ->
      let t = setup_kept dir in
      Durable.checkpoint t;
      let fd = Unix.openfile (Durable.wal_path dir) [ Unix.O_WRONLY ] 0o644 in
      Unix.ftruncate fd 0;
      Unix.close fd;
      reopen_has_kept dir)

let test_stale_tmp_is_recovered_then_consumed () =
  (* Crash between the snapshot's fsync and rename: the only copy of the
     newest generation is the complete .tmp. Recovery must use it, and the
     re-home save must leave no stale .tmp behind. *)
  with_dir (fun dir ->
      Fault.reset ();
      let t = setup_kept dir in
      Durable.checkpoint t;
      let db = Durable.db t in
      ignore (insert_account db (Database.ledger_table db "accounts") "late" 2);
      Fault.set "snapshot.rename" (Fault.Crash_after 0);
      (match Durable.checkpoint t with
      | exception Fault.Injected_crash _ -> ()
      | () -> Alcotest.fail "expected injected crash");
      Fault.reset ();
      let snap = Durable.snapshot_path dir in
      Alcotest.(check bool) "current gone (renamed to .prev)" false
        (Sys.file_exists snap);
      Alcotest.(check bool) "complete tmp left" true
        (Sys.file_exists (snap ^ ".tmp"));
      reopen_has_kept ~name:"late" dir;
      Alcotest.(check bool) "tmp consumed by re-home save" false
        (Sys.file_exists (snap ^ ".tmp"));
      Alcotest.(check bool) "current restored" true (Sys.file_exists snap))

let test_prev_generation_fallback () =
  (* The current snapshot is corrupt on disk; recovery must fall back to
     the retained previous generation and replay the log over it. *)
  with_dir (fun dir ->
      let t = setup_kept dir in
      Durable.checkpoint t;
      let db = Durable.db t in
      ignore (insert_account db (Database.ledger_table db "accounts") "late" 2);
      Durable.checkpoint t;
      let snap = Durable.snapshot_path dir in
      Alcotest.(check bool) "previous generation retained" true
        (Sys.file_exists (snap ^ ".prev"));
      (* Flip a byte inside the current snapshot's body. *)
      let contents = In_channel.with_open_bin snap In_channel.input_all in
      let b = Bytes.of_string contents in
      let mid = String.length contents / 2 in
      Bytes.set b mid (if Bytes.get b mid = 'x' then 'y' else 'x');
      Out_channel.with_open_bin snap (fun oc -> Out_channel.output_bytes oc b);
      reopen_has_kept ~name:"late" dir)

let test_all_generations_corrupt_fails_loudly () =
  (* No usable snapshot and no log: refusing beats silently re-creating an
     empty database over durable data. *)
  with_dir (fun dir ->
      let t = setup_kept dir in
      Durable.checkpoint t;
      let snap = Durable.snapshot_path dir in
      Out_channel.with_open_bin snap (fun oc ->
          Out_channel.output_string oc "SQLLEDGER-SNAPSHOT v2 garbage");
      (try Sys.remove (snap ^ ".prev") with Sys_error _ -> ());
      Sys.remove (Durable.wal_path dir);
      match Durable.open_dir ~dir ~name:"dur" () with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "corrupt-everything open must fail loudly")

let test_legacy_seed_format_still_loads () =
  (* Databases persisted before CRC framing / checksummed containers: a
     bare-JSON-lines WAL and a raw JSON snapshot must recover and verify
     unchanged. *)
  with_dir (fun dir ->
      Fault.Fsutil.mkdir_p dir;
      let db = make_db ~signing_seed:"legacy" "dur" in
      let accounts = make_accounts db in
      figure2 db accounts;
      let d = fresh_digest db in
      (* Legacy WAL: un-framed record lines. *)
      Out_channel.with_open_bin (Durable.wal_path dir) (fun oc ->
          List.iter
            (fun (_, r) ->
              Out_channel.output_string oc (Aries.Log_record.to_line r ^ "\n"))
            (Aries.Wal.records (Database_ledger.wal (Database.ledger db))));
      let t = open_ok ~clock:(make_clock ()) dir in
      let db2 = Durable.db t in
      Alcotest.(check string) "identity" (Database.database_id db)
        (Database.database_id db2);
      Alcotest.(check bool) "pre-upgrade digest verifies" true
        (Verifier.ok (Verifier.verify db2 ~digests:[ d ]));
      (* Same, with a legacy raw-JSON snapshot next to the log. *)
      rm_rf dir;
      Fault.Fsutil.mkdir_p dir;
      Out_channel.with_open_bin (Durable.snapshot_path dir) (fun oc ->
          Out_channel.output_string oc
            (Sjson.to_string ~pretty:true (Snapshot.save db)));
      Out_channel.with_open_bin (Durable.wal_path dir) (fun oc ->
          Out_channel.output_string oc "");
      let t2 = open_ok ~clock:(make_clock ()) dir in
      Alcotest.(check bool) "legacy snapshot verifies" true
        (Verifier.ok (Verifier.verify (Durable.db t2) ~digests:[ d ])))

let test_work_after_reopen_is_durable () =
  with_dir (fun dir ->
      (* generation 1 *)
      let t = open_ok ~clock:(make_clock ()) dir in
      let accounts = make_accounts (Durable.db t) in
      ignore (insert_account (Durable.db t) accounts "first" 1);
      (* generation 2: write more, crash again *)
      let t2 = open_ok ~clock:(make_clock ()) dir in
      let acc2 = Database.ledger_table (Durable.db t2) "accounts" in
      ignore (insert_account (Durable.db t2) acc2 "second" 2);
      (* generation 3: both present *)
      let t3 = open_ok ~clock:(make_clock ()) dir in
      let acc3 = Database.ledger_table (Durable.db t3) "accounts" in
      Alcotest.(check bool) "first" true
        (Ledger_table.find acc3 ~key:[| vs "first" |] <> None);
      Alcotest.(check bool) "second" true
        (Ledger_table.find acc3 ~key:[| vs "second" |] <> None);
      let d = Option.get (Database.generate_digest (Durable.db t3)) in
      Alcotest.(check bool) "verifies" true
        (Verifier.ok (Verifier.verify (Durable.db t3) ~digests:[ d ])))

let () =
  Alcotest.run "durable"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "create/crash/reopen" `Quick test_create_crash_reopen;
          Alcotest.test_case "multiple generations" `Quick test_multiple_generations;
          Alcotest.test_case "compact bounds the log" `Quick test_compact_bounds_log;
          Alcotest.test_case "compact-crash reopen" `Quick test_reopen_after_compact_crash;
          Alcotest.test_case "durability across reopens" `Quick test_work_after_reopen_is_durable;
        ] );
      ( "crash shapes",
        [
          Alcotest.test_case "compact crash before truncate" `Quick
            test_compact_crash_before_truncate;
          Alcotest.test_case "snapshot + absent wal" `Quick
            test_snapshot_present_wal_absent;
          Alcotest.test_case "snapshot + empty wal" `Quick
            test_snapshot_present_wal_empty;
          Alcotest.test_case "stale tmp recovered + consumed" `Quick
            test_stale_tmp_is_recovered_then_consumed;
          Alcotest.test_case "prev generation fallback" `Quick
            test_prev_generation_fallback;
          Alcotest.test_case "all generations corrupt" `Quick
            test_all_generations_corrupt_fails_loudly;
          Alcotest.test_case "legacy seed format" `Quick
            test_legacy_seed_format_still_loads;
        ] );
    ]
