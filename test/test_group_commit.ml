(* Differential correctness harness for group commit.

   Each trial starts a real server (group commit on), fires N concurrent
   TCP clients at it with a seeded randomized mix of INSERT / UPDATE /
   DELETE / point SELECT plus occasional explicit BEGIN...COMMIT
   transactions, then shuts the server down and replays exactly the same
   statements serially through the in-process engine. Every client owns a
   disjoint key range, so the final table contents are independent of how
   the server interleaved the clients — the concurrent run and the serial
   replay must agree exactly:

   - identical table contents after recovery from the server's directory
     (every acked commit survived, batched fsync or not),
   - identical ledger verification outcome (both verify clean),
   - and the server run verifies over the wire before shutdown.

   Seed and trial count come from GROUP_COMMIT_SEED / GROUP_COMMIT_TRIALS
   so CI can pin a seed and widen the sweep. *)

module Server = Ledger_server.Server
module Client = Wire.Client
module Protocol = Wire.Protocol
module Prng = Workload.Prng
open Sql_ledger

let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let getenv_int name default =
  match int_of_string_opt (Sys.getenv name) with
  | Some n -> n
  | None -> default
  | exception Not_found -> default

let seed = getenv_int "GROUP_COMMIT_SEED" 0x6C0DE
let trials = getenv_int "GROUP_COMMIT_TRIALS" 10
let clients = 4
let ops_per_client = 24

(* ------------------------------------------------------------------ *)
(* Deterministic per-client op streams

   Generated independently of server responses: the live-id set evolves
   only from the client's own inserts and deletes, so the same seed
   always yields the same statement list — the serial replay regenerates
   nothing, it consumes the very list the client sent. *)

type cop = Sql of string | Begin | Commit

let gen_ops ~trial ~c_idx =
  let prng = Prng.create (seed lxor (trial * 7919) lxor ((c_idx + 1) * 104729)) in
  let base = (c_idx + 1) * 100_000 in
  let live = ref [] in
  let next = ref 0 in
  let ops = ref [] in
  let emit o = ops := o :: !ops in
  let insert () =
    incr next;
    let id = base + !next in
    live := id :: !live;
    emit
      (Sql
         (Printf.sprintf "INSERT INTO gc VALUES (%d, '%s')" id
            (Prng.alnum_string prng 16)))
  in
  let update () =
    match !live with
    | [] -> insert ()
    | l ->
        emit
          (Sql
             (Printf.sprintf "UPDATE gc SET v = '%s' WHERE id = %d"
                (Prng.alnum_string prng 16) (Prng.pick prng l)))
  in
  let delete () =
    match !live with
    | [] -> insert ()
    | l ->
        let id = Prng.pick prng l in
        live := List.filter (fun x -> x <> id) l;
        emit (Sql (Printf.sprintf "DELETE FROM gc WHERE id = %d" id))
  in
  let select () =
    match !live with
    | [] -> insert ()
    | l ->
        emit
          (Sql
             (Printf.sprintf "SELECT * FROM gc WHERE id = %d" (Prng.pick prng l)))
  in
  for i = 1 to ops_per_client do
    (* An explicit transaction now and then: it takes the exclusive lock
       across requests and forces the commit queue to flush, the exact
       interleaving group commit must get right. *)
    if i mod 8 = 0 then begin
      emit Begin;
      insert ();
      update ();
      emit Commit
    end
    else
      match Prng.int prng 10 with
      | 0 | 1 | 2 | 3 -> insert ()
      | 4 | 5 | 6 -> update ()
      | 7 | 8 -> select ()
      | _ -> delete ()
  done;
  List.rev !ops

(* ------------------------------------------------------------------ *)

let connect port =
  match Client.connect ~host:"127.0.0.1" ~port () with
  | Ok c -> c
  | Error e -> Alcotest.fail (Client.connect_error_to_string e)

let sorted_rows rel =
  List.sort compare (List.map Relation.Row.to_list rel.Sqlexec.Rel.rows)

let run_trial trial =
  let dir = Filename.temp_dir "sqlledger-gc" "" in
  let config =
    {
      Server.default_config with
      port = 0;
      dir;
      db_name = "gc";
      max_connections = clients + 2;
    }
  in
  if config.group_commit_window <= 0.0 then
    Alcotest.fail "differential harness expects group commit on by default";
  let srv =
    match Server.start ~config () with
    | Ok s -> s
    | Error e -> Alcotest.fail (Server.start_error_to_string e)
  in
  let th = Server.run_async srv in
  let port = Server.port srv in
  let setup = connect port in
  (match
     Client.call setup
       (Protocol.Create_table
          {
            name = "gc";
            columns = [ ("id", "int"); ("v", "varchar(32)") ];
            key = [ "id" ]; ledger = true
          })
   with
  | Ok r when not (Protocol.response_is_error r) -> ()
  | Ok r -> Alcotest.fail ("create: " ^ Protocol.response_kind r)
  | Error e -> Alcotest.fail ("create: " ^ e));
  Client.close setup;
  (* Concurrent phase: every response must ack — an error or transport
     failure under load is itself a bug. *)
  let all_ops = Array.init clients (fun c_idx -> gen_ops ~trial ~c_idx) in
  let failures = Mutex.create () in
  let failed = ref [] in
  let record_failure msg =
    Mutex.lock failures;
    failed := msg :: !failed;
    Mutex.unlock failures
  in
  let worker c_idx =
    let c = connect port in
    List.iter
      (fun op ->
        let req =
          match op with
          | Sql sql -> Protocol.Exec { sql }
          | Begin -> Protocol.Begin
          | Commit -> Protocol.Commit
        in
        match Client.call c req with
        | Ok (Protocol.Error_r { message; _ }) ->
            record_failure (Printf.sprintf "client %d: %s" c_idx message)
        | Ok _ -> ()
        | Error e ->
            record_failure (Printf.sprintf "client %d transport: %s" c_idx e))
      all_ops.(c_idx);
    Client.close c
  in
  let threads = List.init clients (fun i -> Thread.create worker i) in
  List.iter Thread.join threads;
  (match !failed with
  | [] -> ()
  | msg :: _ ->
      Alcotest.failf "trial %d: %d failed requests, first: %s" trial
        (List.length !failed) msg);
  (* The live server verifies over the wire. *)
  let control = connect port in
  let digest_json =
    match Client.call control Protocol.Digest with
    | Ok (Protocol.Digest_r j) -> j
    | Ok r -> Alcotest.fail ("digest: " ^ Protocol.response_kind r)
    | Error e -> Alcotest.fail ("digest: " ^ e)
  in
  (match
     Client.call control
       (Protocol.Verify { tables = []; digests = [ digest_json ] })
   with
  | Ok (Protocol.Verify_r s) ->
      if not s.Protocol.vs_ok then
        Alcotest.failf "trial %d: live server failed wire verification" trial
  | Ok r -> Alcotest.fail ("verify: " ^ Protocol.response_kind r)
  | Error e -> Alcotest.fail ("verify: " ^ e));
  Client.close control;
  Server.shutdown srv th;
  (* Recover what the drained server left on disk. *)
  let recovered =
    match Durable.open_dir ~dir ~name:"gc" () with
    | Ok t -> Durable.db t
    | Error e -> Alcotest.failf "trial %d: reopen failed: %s" trial e
  in
  let recovered_rows = sorted_rows (Database.query recovered "SELECT * FROM gc") in
  let recovered_ok = Verifier.ok (Verifier.verify recovered ~digests:[]) in
  (* Serial replay of the same statements through the in-process engine:
     client by client, in each client's send order. Disjoint key ranges
     make the result independent of the server's actual interleaving. *)
  let replay = Database.create ~name:"gc-replay" () in
  ignore
    (Database.create_ledger_table replay ~name:"gc"
       ~columns:
         [
           Relation.Column.make "id" Relation.Datatype.Int;
           Relation.Column.make "v" (Relation.Datatype.Varchar 32);
         ]
       ~key:[ "id" ] ()
      : Ledger_table.t);
  Array.iter
    (List.iter (function
      | Sql sql -> ignore (Dml.execute replay ~user:"replay" sql : Dml.result)
      | Begin | Commit -> ()))
    all_ops;
  let replay_rows = sorted_rows (Database.query replay "SELECT * FROM gc") in
  let replay_ok = Verifier.ok (Verifier.verify replay ~digests:[]) in
  if recovered_rows <> replay_rows then
    Alcotest.failf
      "trial %d: concurrent run and serial replay diverge: %d vs %d rows"
      trial
      (List.length recovered_rows)
      (List.length replay_rows);
  if recovered_ok <> replay_ok || not recovered_ok then
    Alcotest.failf
      "trial %d: verification outcomes diverge (server %b, replay %b)" trial
      recovered_ok replay_ok

let test_differential () =
  for trial = 1 to trials do
    run_trial trial
  done

let () =
  Alcotest.run "group-commit"
    [
      ( "differential",
        [
          Alcotest.test_case
            (Printf.sprintf "%d randomized trials" trials)
            `Quick test_differential;
        ] );
    ]
