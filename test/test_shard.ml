(* The sharded deployment: shard map, decision log, coordinator routing,
   cross-shard 2PC, the aggregate digest tree, and the crash matrix over
   every 2PC boundary.

   Shard primaries are real Ledger_server.Server instances on localhost
   TCP; the coordinator is a real Shard.Coordinator in front of them.
   Crash tests arm the coordinator's failpoints, let the injected crash
   kill the coordinator mid-protocol, then restart it over the same
   directory and assert the cluster converges — prepared transactions
   released or completed, reads all-or-nothing, distributed verification
   green.

   SHARD_CRASH_SEED / SHARD_CRASH_TRIALS widen the randomized sweep the
   way CRASH_MATRIX_* does for the single-node matrix. *)

module Server = Ledger_server.Server
module Client = Wire.Client
module Protocol = Wire.Protocol
module Coordinator = Shard.Coordinator
module Shard_map = Shard.Shard_map
module Decision_log = Shard.Decision_log
module Value = Relation.Value

let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let getenv_int name default =
  match int_of_string_opt (Sys.getenv name) with
  | Some n -> n
  | None -> default
  | exception Not_found -> default

let seed = getenv_int "SHARD_CRASH_SEED" 0x54AD
let trials = getenv_int "SHARD_CRASH_TRIALS" 5

(* ------------------------------------------------------------------ *)
(* Fixtures *)

let temp_dir tag = Filename.temp_dir "sqlledger-test-shard" tag

let connect port =
  match Client.connect ~host:"127.0.0.1" ~port () with
  | Ok c -> c
  | Error e -> Alcotest.fail (Client.connect_error_to_string e)

let call client req =
  match Client.call client req with
  | Ok resp -> resp
  | Error e -> Alcotest.fail ("transport error: " ^ e)

let expect_ok what = function
  | Protocol.Error_r { message; _ } -> Alcotest.fail (what ^ ": " ^ message)
  | _ -> ()

let start_shard () =
  let dir = temp_dir "-shard" in
  let config = { Server.default_config with port = 0; dir } in
  match Server.start ~config () with
  | Ok s -> (s, Server.run_async s, Server.port s, dir)
  | Error e -> Alcotest.fail (Server.start_error_to_string e)

(* The coordinator's run loop, with the exception captured so crash
   tests can assert the injected death instead of losing it in a
   detached thread. *)
let run_captured coord =
  let result = ref None in
  let th =
    Thread.create
      (fun () ->
        match Coordinator.run coord with
        | () -> result := Some (Ok ())
        | exception e -> result := Some (Error e))
      ()
  in
  (th, result)

let start_coord ?(shards = []) dir =
  let config = { Coordinator.default_config with port = 0; dir } in
  match Coordinator.start ~config ~shards () with
  | Ok c ->
      let th, result = run_captured c in
      (c, th, result, Coordinator.port c)
  | Error e -> Alcotest.fail (Coordinator.start_error_to_string e)

(* A 2-shard cluster with the bench table created through the
   coordinator, torn down (servers and coordinator both) afterwards.

   An injected coordinator crash poisons the whole Fault module until
   [Fault.reset], and the in-process shard servers trip the same
   failpoints on their own read paths — so a coordinator crash takes
   the co-located shards down with it, exactly like losing the machine.
   [restart_shards] brings every shard back over its own directory (on
   fresh ports) and returns the new addresses for the restarted
   coordinator. *)
let with_cluster ?(shards = 2) f =
  let nodes = ref (List.init shards (fun _ -> start_shard ())) in
  let addrs () = List.map (fun (_, _, p, _) -> ("127.0.0.1", p)) !nodes in
  let cdir = temp_dir "-coord" in
  let coord, cth, _cres, cport = start_coord ~shards:(addrs ()) cdir in
  let restart_shards () =
    List.iter (fun (s, th, _, _) -> Server.shutdown s th) !nodes;
    nodes :=
      List.map
        (fun (_, _, _, dir) ->
          let config = { Server.default_config with port = 0; dir } in
          match Server.start ~config () with
          | Ok s -> (s, Server.run_async s, Server.port s, dir)
          | Error e -> Alcotest.fail (Server.start_error_to_string e))
        !nodes;
    addrs ()
  in
  Fun.protect
    ~finally:(fun () ->
      Coordinator.request_shutdown coord;
      Thread.join cth;
      List.iter (fun (s, th, _, _) -> Server.shutdown s th) !nodes)
    (fun () ->
      let setup = connect cport in
      expect_ok "create"
        (call setup
           (Protocol.Create_table
              {
                name = "bench";
                columns = [ ("id", "int"); ("payload", "varchar(64)") ];
                key = [ "id" ]; ledger = true
              }));
      Client.close setup;
      f ~cdir ~cport ~coord ~cth ~nodes ~restart_shards)

let shard_of ~shards id =
  Shard_map.bucket_of_key ~shard_count:shards ~table:"bench"
    [ Value.int id ]

(* Ids guaranteed to straddle both shards of a 2-shard cluster. *)
let next_id = ref 0

let cross_shard_ids () =
  let ids = ref [] in
  let seen = Array.make 2 false in
  while List.length !ids < 4 || not (seen.(0) && seen.(1)) do
    incr next_id;
    seen.(shard_of ~shards:2 !next_id) <- true;
    ids := !next_id :: !ids
  done;
  List.rev !ids

let insert_sql ids =
  "INSERT INTO bench (id, payload) VALUES "
  ^ String.concat ", "
      (List.map (fun id -> Printf.sprintf "(%d, 'p%d')" id id) ids)

let query_id c id =
  match
    call c
      (Protocol.Query
         { sql = Printf.sprintf "SELECT * FROM bench WHERE id = %d" id })
  with
  | Protocol.Rows_r { rows; _ } -> List.length rows
  | Protocol.Error_r { message; _ } -> Alcotest.fail ("query: " ^ message)
  | r -> Alcotest.fail ("query: " ^ Protocol.response_kind r)

let count_all c =
  match call c (Protocol.Query { sql = "SELECT * FROM bench" }) with
  | Protocol.Rows_r { rows; _ } -> List.length rows
  | Protocol.Error_r { message; _ } -> Alcotest.fail ("fanout: " ^ message)
  | r -> Alcotest.fail ("fanout: " ^ Protocol.response_kind r)

let coord_stat c name =
  match call c Protocol.Stats with
  | Protocol.Stats_r lines ->
      List.fold_left
        (fun acc line ->
          match String.rindex_opt line ' ' with
          | Some i when String.sub line 0 i = name ->
              int_of_string
                (String.sub line (i + 1) (String.length line - i - 1))
          | _ -> acc)
        (-1) lines
  | _ -> Alcotest.fail "stats failed"

(* ------------------------------------------------------------------ *)
(* Shard map units *)

let test_map_partition () =
  let map =
    Shard_map.make ~epoch:1
      [ ("a", 1); ("b", 2); ("c", 3); ("d", 4) ]
  in
  (* Deterministic, and the map agrees with the map-free bucket
     function clients use for direct routing. *)
  for id = 1 to 200 do
    let s = Shard_map.shard_of_key map ~table:"bench" [ Value.int id ] in
    Alcotest.(check int)
      "stable" s
      (Shard_map.shard_of_key map ~table:"bench" [ Value.int id ]);
    Alcotest.(check int)
      "bucket agrees" s
      (Shard_map.bucket_of_key ~shard_count:4 ~table:"bench" [ Value.int id ])
  done;
  (* Table name is part of the key space, case-insensitively. *)
  Alcotest.(check int)
    "case folded"
    (Shard_map.shard_of_key map ~table:"Bench" [ Value.int 7 ])
    (Shard_map.shard_of_key map ~table:"bench" [ Value.int 7 ]);
  (* Every shard gets a respectable cut of a uniform key load. *)
  let counts = Array.make 4 0 in
  for id = 1 to 4000 do
    let s = Shard_map.shard_of_key map ~table:"bench" [ Value.int id ] in
    counts.(s) <- counts.(s) + 1
  done;
  Array.iteri
    (fun i c ->
      if c < 500 then
        Alcotest.failf "shard %d got only %d of 4000 keys" i c)
    counts

let test_map_codec () =
  let map = Shard_map.make ~epoch:7 [ ("x", 10); ("y", 20) ] in
  match Shard_map.of_json (Shard_map.to_json map) with
  | Error e -> Alcotest.fail e
  | Ok m ->
      Alcotest.(check int) "epoch" 7 (Shard_map.epoch m);
      Alcotest.(check bool) "topology" true (Shard_map.equal_topology map m);
      Alcotest.(check bool)
        "invalid rejected" true
        (Result.is_error (Shard_map.of_json (Sjson.String "nope")));
      Alcotest.check_raises "empty map" (Invalid_argument "Shard_map.make: no shards")
        (fun () -> ignore (Shard_map.make ~epoch:1 []))

(* ------------------------------------------------------------------ *)
(* Decision log units *)

let dlog_records =
  [
    Decision_log.Start { gid = "g1"; participants = [ 0; 1 ] };
    Decision_log.Decision { gid = "g1"; commit = true };
    Decision_log.End { gid = "g1" };
    Decision_log.Start { gid = "g2"; participants = [ 1; 2; 3 ] };
    Decision_log.Decision { gid = "g2"; commit = false };
  ]

let test_dlog_roundtrip () =
  let path = Filename.concat (temp_dir "-dlog") "coord.dlog" in
  let records, t = Decision_log.load ~path in
  Alcotest.(check int) "fresh log empty" 0 (List.length records);
  List.iter (Decision_log.append t) dlog_records;
  Decision_log.close t;
  let records, t = Decision_log.load ~path in
  Decision_log.close t;
  Alcotest.(check bool) "roundtrip" true (records = dlog_records)

let test_dlog_torn_tail () =
  let dir = temp_dir "-dlog" in
  let path = Filename.concat dir "coord.dlog" in
  let _, t = Decision_log.load ~path in
  List.iter (Decision_log.append t) dlog_records;
  Decision_log.close t;
  let full = In_channel.with_open_bin path In_channel.input_all in
  let parsed, clean = Decision_log.parse_all full in
  Alcotest.(check int) "clean prefix is whole file" (String.length full) clean;
  Alcotest.(check bool) "parse_all" true (parsed = dlog_records);
  (* Tear the file at every byte inside the last record: the survivors
     must always be exactly the four complete earlier records, and the
     log must reopen, truncate, and accept appends. *)
  let fourth =
    let prefix, _ = Decision_log.parse_all (String.sub full 0 clean) in
    ignore prefix;
    (* byte length of the first four records *)
    let rec scan off n =
      if n = 4 then off
      else
        match String.index_from_opt full off '\n' with
        | Some i -> scan (i + 1) (n + 1)
        | None -> Alcotest.fail "malformed frame"
    in
    scan 0 0
  in
  for cut = fourth + 1 to String.length full - 1 do
    let torn = String.sub full 0 cut in
    let parsed, len = Decision_log.parse_all torn in
    Alcotest.(check int) "torn tail dropped" fourth len;
    Alcotest.(check int) "four records survive" 4 (List.length parsed)
  done;
  (* Corrupt a byte mid-file: everything from the damaged record on is
     refused (append-only log, no resynchronisation). *)
  let corrupt = Bytes.of_string full in
  Bytes.set corrupt (fourth + 5) '\xff';
  let parsed, _ = Decision_log.parse_all (Bytes.to_string corrupt) in
  Alcotest.(check int) "damage stops the parse" 4 (List.length parsed);
  (* A torn file on disk is truncated in place by load, and the log
     keeps going from the clean prefix. *)
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub full 0 (String.length full - 3)));
  let records, t = Decision_log.load ~path in
  Alcotest.(check int) "load truncates torn tail" 4 (List.length records);
  Decision_log.append t (Decision_log.End { gid = "g2" });
  Decision_log.close t;
  let records, t = Decision_log.load ~path in
  Decision_log.close t;
  Alcotest.(check int) "append after truncation" 5 (List.length records)

(* ------------------------------------------------------------------ *)
(* Routing and cross-shard transactions, end to end *)

let test_cluster_e2e () =
  with_cluster
    (fun ~cdir:_ ~cport ~coord:_ ~cth:_ ~nodes ~restart_shards:_ ->
      let c = connect cport in
      (* Point inserts: routed to one shard, 1PC. *)
      let a = cross_shard_ids () in
      List.iter
        (fun id ->
          expect_ok "point insert"
            (call c
               (Protocol.Exec
                  { sql = Printf.sprintf "INSERT INTO bench VALUES (%d, 'x')" id })))
        a;
      (* The rows really landed on the shard the map says owns them. *)
      let shard_conns =
        List.map (fun (_, _, p, _) -> connect p) !nodes
      in
      List.iter
        (fun id ->
          List.iteri
            (fun i sc ->
              let expected = if shard_of ~shards:2 id = i then 1 else 0 in
              Alcotest.(check int)
                (Printf.sprintf "id %d on shard %d" id i)
                expected (query_id sc id))
            shard_conns)
        a;
      List.iter Client.close shard_conns;
      (* A multi-row insert straddling shards runs as one atomic 2PC. *)
      let b = cross_shard_ids () in
      expect_ok "cross-shard insert" (call c (Protocol.Exec { sql = insert_sql b }));
      Alcotest.(check bool)
        "2pc counted" true
        (coord_stat c "coord.txn_2pc_commit" >= 1);
      (* Fanout read sees every row, from every shard. *)
      Alcotest.(check int)
        "fanout count" (List.length a + List.length b)
        (count_all c);
      (* Broadcast write: same statement applied on each shard's own
         rows. *)
      expect_ok "broadcast update"
        (call c (Protocol.Exec { sql = "UPDATE bench SET payload = 'u'" }));
      (match
         call c
           (Protocol.Query
              {
                sql =
                  Printf.sprintf "SELECT payload FROM bench WHERE id = %d"
                    (List.hd b);
              })
       with
      | Protocol.Rows_r { rows = [ [ Value.String "u" ] ]; _ } -> ()
      | r -> Alcotest.fail ("update not visible: " ^ Protocol.response_kind r));
      (* Explicit transaction spanning shards: atomic commit... *)
      let d = cross_shard_ids () in
      expect_ok "begin" (call c Protocol.Begin);
      List.iter
        (fun id ->
          expect_ok "txn insert"
            (call c
               (Protocol.Exec
                  { sql = Printf.sprintf "INSERT INTO bench VALUES (%d, 't')" id })))
        d;
      expect_ok "commit" (call c Protocol.Commit);
      List.iter
        (fun id -> Alcotest.(check int) "committed" 1 (query_id c id))
        d;
      (* ...and rollback undoes every enlisted shard. *)
      let e = cross_shard_ids () in
      expect_ok "begin" (call c Protocol.Begin);
      List.iter
        (fun id ->
          expect_ok "txn insert"
            (call c
               (Protocol.Exec
                  { sql = Printf.sprintf "INSERT INTO bench VALUES (%d, 'r')" id })))
        e;
      expect_ok "rollback" (call c Protocol.Rollback);
      List.iter
        (fun id -> Alcotest.(check int) "rolled back" 0 (query_id c id))
        e;
      (* Deleting a key column assignment is refused, not silently
         misrouted. *)
      (match
         call c (Protocol.Exec { sql = "UPDATE bench SET id = 1, payload = 'x'" })
       with
      | Protocol.Error_r _ -> ()
      | r ->
          Alcotest.fail
            ("key-column update must be refused: " ^ Protocol.response_kind r));
      (* The aggregate digest covers both shards and the distributed
         verification closes green. *)
      let digest =
        match call c Protocol.Digest with
        | Protocol.Digest_r j -> j
        | r -> Alcotest.fail ("digest: " ^ Protocol.response_kind r)
      in
      Alcotest.(check bool)
        "digest is aggregate" true
        (Trusted_store.Aggregate_digest.is_aggregate digest);
      (match
         call c (Protocol.Verify { tables = []; digests = [ digest ] })
       with
      | Protocol.Verify_r { vs_ok; vs_versions; _ } ->
          Alcotest.(check bool) "distributed verify" true vs_ok;
          Alcotest.(check bool) "covered versions" true (vs_versions > 0)
      | r -> Alcotest.fail ("verify: " ^ Protocol.response_kind r));
      Client.close c)

let test_tamper_detected () =
  with_cluster
    (fun ~cdir:_ ~cport ~coord:_ ~cth:_ ~nodes ~restart_shards:_ ->
      let c = connect cport in
      let ids = cross_shard_ids () in
      expect_ok "seed" (call c (Protocol.Exec { sql = insert_sql ids }));
      let digest =
        match call c Protocol.Digest with
        | Protocol.Digest_r j -> j
        | r -> Alcotest.fail ("digest: " ^ Protocol.response_kind r)
      in
      (* Untampered: the whole cluster verifies against the aggregate. *)
      (match call c (Protocol.Verify { tables = []; digests = [ digest ] }) with
      | Protocol.Verify_r { vs_ok; _ } ->
          Alcotest.(check bool) "clean cluster verifies" true vs_ok
      | r -> Alcotest.fail ("verify: " ^ Protocol.response_kind r));
      (* Reach around the API and rewrite a stored value on the shard
         that owns the first id — the §2.5.2 adversary, but on one shard
         of a fleet. *)
      let victim_id = List.hd ids in
      let victim = shard_of ~shards:2 victim_id in
      let srv, _, _, _ = List.nth !nodes victim in
      let db =
        match Server.durable srv with
        | Some d -> Sql_ledger.Durable.db d
        | None -> Alcotest.fail "shard has no durable database"
      in
      (match
         Tamper.apply db
           (Tamper.Update_row
              {
                table = "bench";
                key = [| Value.int victim_id |];
                column = "payload";
                value = Value.String "forged";
              })
       with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("tamper failed: " ^ e));
      (match call c (Protocol.Verify { tables = []; digests = [ digest ] }) with
      | Protocol.Verify_r { vs_ok; vs_violations; _ } ->
          Alcotest.(check bool) "tamper detected" false vs_ok;
          let prefix = Printf.sprintf "shard %d:" victim in
          Alcotest.(check bool)
            "violation names the shard" true
            (List.exists
               (fun v ->
                 String.length v >= String.length prefix
                 && String.sub v 0 (String.length prefix) = prefix)
               vs_violations)
      | r -> Alcotest.fail ("verify: " ^ Protocol.response_kind r));
      Client.close c)

(* ------------------------------------------------------------------ *)
(* Stale shard maps: wrong_shard is retryable-after-refresh *)

let test_wrong_shard_refresh () =
  with_cluster
    (fun ~cdir:_ ~cport ~coord ~cth:_ ~nodes:_ ~restart_shards:_ ->
      let c = connect cport in
      let fetch_map () =
        match call c Protocol.Shard_map with
        | Protocol.Shard_map_r { epoch; _ } -> epoch
        | r -> Alcotest.fail ("shard_map: " ^ Protocol.response_kind r)
      in
      let cached = ref (fetch_map ()) in
      (* The topology changes under the client: its cached routing is
         now a generation behind. *)
      let fresh = Coordinator.bump_epoch coord in
      Alcotest.(check int) "bumped" (!cached + 1) fresh;
      (* A plain call with the stale stamp is refused before any work,
         with the server's epoch in the typed error. *)
      let id = (incr next_id; !next_id) in
      let req =
        Protocol.Exec
          { sql = Printf.sprintf "INSERT INTO bench VALUES (%d, 's')" id }
      in
      (match Client.call ~map_epoch:!cached c req with
      | Ok (Protocol.Error_r { code = Protocol.Wrong_shard; map_epoch; _ }) ->
          Alcotest.(check (option int)) "server epoch" (Some fresh) map_epoch
      | Ok r -> Alcotest.fail ("expected wrong_shard: " ^ Protocol.response_kind r)
      | Error e -> Alcotest.fail e);
      Alcotest.(check int) "refused before any work" 0 (query_id c id);
      (* call_retry races the bump: refresh the map in on_wrong_shard
         and the same request goes through with the new routing. *)
      let refreshes = ref 0 in
      (match
         Client.call_retry c req
           ~map_epoch:(fun () -> Some !cached)
           ~on_wrong_shard:(fun ~server_epoch ->
             incr refreshes;
             (match server_epoch with
             | Some e -> cached := e
             | None -> cached := fetch_map ());
             true)
       with
      | Ok r -> expect_ok "retried insert" r
      | Error e -> Alcotest.fail e);
      Alcotest.(check int) "one refresh" 1 !refreshes;
      Alcotest.(check int) "epoch refreshed" fresh !cached;
      Alcotest.(check int) "insert landed" 1 (query_id c id);
      Alcotest.(check bool)
        "refusals counted" true
        (coord_stat c "coord.wrong_shard" >= 1);
      (* Unstamped requests (single-node clients) are never refused. *)
      Alcotest.(check int) "unstamped ok" 1 (query_id c id);
      Client.close c)

let test_epoch_persistence () =
  let dir = temp_dir "-coord" in
  let coord, th, _, _ = start_coord ~shards:[ ("h1", 1); ("h2", 2) ] dir in
  Alcotest.(check int) "first epoch" 1 (Shard_map.epoch (Coordinator.map coord));
  let bumped = Coordinator.bump_epoch coord in
  Coordinator.request_shutdown coord;
  Thread.join th;
  (* Same topology: same generation survives the restart. *)
  let coord, th, _, _ = start_coord ~shards:[ ("h1", 1); ("h2", 2) ] dir in
  Alcotest.(check int) "epoch persisted" bumped
    (Shard_map.epoch (Coordinator.map coord));
  Coordinator.request_shutdown coord;
  Thread.join th;
  (* New topology: new generation. *)
  let coord, th, _, _ = start_coord ~shards:[ ("h1", 1); ("h3", 3) ] dir in
  Alcotest.(check int) "topology change bumps" (bumped + 1)
    (Shard_map.epoch (Coordinator.map coord));
  Coordinator.request_shutdown coord;
  Thread.join th;
  (* A coordinator with no map at all refuses to start. *)
  let empty = temp_dir "-coord" in
  (match
     Coordinator.start
       ~config:{ Coordinator.default_config with port = 0; dir = empty }
       ()
   with
  | Error (Coordinator.Startup _) -> ()
  | Error e -> Alcotest.fail (Coordinator.start_error_to_string e)
  | Ok _ -> Alcotest.fail "started without a shard map")

(* ------------------------------------------------------------------ *)
(* Crash matrix: every 2PC boundary *)

(* Wait until the restarted coordinator has delivered every logged
   decision to its participants. *)
let await_resolved coord =
  let deadline = Unix.gettimeofday () +. 15.0 in
  while Coordinator.pending_decisions coord <> [] do
    if Unix.gettimeofday () > deadline then
      Alcotest.fail "undelivered decisions never resolved";
    Thread.delay 0.05
  done

(* One deterministic boundary: arm [point], drive a cross-shard commit
   into the injected crash, restart the coordinator over its directory,
   and expect the transaction to converge to [expect_commit]. *)
let crash_at_boundary point ~expect_commit =
  with_cluster (fun ~cdir ~cport ~coord:_ ~cth ~nodes:_ ~restart_shards ->
      let c = connect cport in
      let ids = cross_shard_ids () in
      expect_ok "begin" (call c Protocol.Begin);
      List.iter
        (fun id ->
          expect_ok "insert"
            (call c
               (Protocol.Exec
                  { sql = Printf.sprintf "INSERT INTO bench VALUES (%d, 'c')" id })))
        ids;
      Fault.set point (Fault.Crash_after 0);
      (* The commit dies inside the coordinator; whatever the client
         sees (an error or a torn connection), nothing may be
         half-visible afterwards. *)
      (match Client.call c Protocol.Commit with
      | Ok (Protocol.Error_r _) | Error _ -> ()
      | Ok r ->
          Alcotest.fail ("commit should have died: " ^ Protocol.response_kind r));
      Client.close c;
      (* The coordinator process is dead — run re-raises the injected
         crash after draining, exactly like the CLI exiting 2. The
         poisoned failpoints kill the co-located shards with it. *)
      Thread.join cth;
      Fault.reset ();
      let addrs = restart_shards () in
      (* Restart over the same directory: the decision log replays,
         undecided transactions presume abort, undelivered decisions
         re-send until the shards ack. *)
      let coord2, th2, res2, cport2 = start_coord ~shards:addrs cdir in
      Fun.protect
        ~finally:(fun () ->
          Coordinator.request_shutdown coord2;
          Thread.join th2;
          ignore res2)
        (fun () ->
          await_resolved coord2;
          let c = connect cport2 in
          List.iter
            (fun id ->
              Alcotest.(check int)
                (Printf.sprintf "id %d converged" id)
                (if expect_commit then 1 else 0)
                (query_id c id))
            ids;
          (* The shards are released: new cross-shard work commits, and
             the whole cluster still proves itself. *)
          let more = cross_shard_ids () in
          expect_ok "post-recovery 2pc"
            (call c (Protocol.Exec { sql = insert_sql more }));
          let digest =
            match call c Protocol.Digest with
            | Protocol.Digest_r j -> j
            | r -> Alcotest.fail ("digest: " ^ Protocol.response_kind r)
          in
          (match
             call c (Protocol.Verify { tables = []; digests = [ digest ] })
           with
          | Protocol.Verify_r { vs_ok; _ } ->
              Alcotest.(check bool) "verify after recovery" true vs_ok
          | r -> Alcotest.fail ("verify: " ^ Protocol.response_kind r));
          Client.close c))

(* Coordinator dies after collecting every PREPARE but before logging
   the decision: presumed abort. *)
let test_crash_before_decision () =
  crash_at_boundary Coordinator.point_before_decision ~expect_commit:false

(* Coordinator dies after the decision is durable but before any
   participant hears it: the commit must still happen. *)
let test_crash_after_decision () =
  crash_at_boundary Coordinator.point_after_decision ~expect_commit:true

(* Participant dies between its PREPARE ack and the decision: the
   restarted shard recovers the transaction in-doubt from its own WAL —
   effects withheld — and completes it when the decision arrives. *)
let test_participant_crash () =
  let srv, th, port, dir = start_shard () in
  let c = connect port in
  expect_ok "create"
    (call c
       (Protocol.Create_table
          {
            name = "bench";
            columns = [ ("id", "int"); ("payload", "varchar(64)") ];
            key = [ "id" ]; ledger = true
          }));
  expect_ok "baseline"
    (call c (Protocol.Exec { sql = "INSERT INTO bench VALUES (1, 'base')" }));
  (* The test plays coordinator over the same wire verbs the real one
     uses. *)
  expect_ok "begin" (call c Protocol.Begin);
  expect_ok "insert"
    (call c (Protocol.Exec { sql = "INSERT INTO bench VALUES (2, 'indoubt')" }));
  expect_ok "prepare" (call c (Protocol.Prepare { gid = "part-crash-1" }));
  Client.close c;
  (* The shard dies holding the prepared vote. *)
  Server.shutdown srv th;
  (* ...and comes back over the same directory. *)
  let config = { Server.default_config with port = 0; dir } in
  let srv2 =
    match Server.start ~config () with
    | Ok s -> s
    | Error e -> Alcotest.fail (Server.start_error_to_string e)
  in
  let th2 = Server.run_async srv2 in
  let in_doubt =
    match Server.durable srv2 with
    | Some d ->
        List.map
          (fun i -> i.Sql_ledger.Wal_replay.gid)
          (Sql_ledger.Durable.in_doubt d)
    | None -> []
  in
  Alcotest.(check (list string)) "recovered in doubt" [ "part-crash-1" ] in_doubt;
  let c = connect (Server.port srv2) in
  Alcotest.(check int) "committed row visible" 1 (query_id c 1);
  Alcotest.(check int) "prepared effects withheld" 0 (query_id c 2);
  (* The coordinator's decision arrives (re-sent by its resolver):
     commit completes from the recorded redo. *)
  expect_ok "decide commit"
    (call c (Protocol.Decide { gid = "part-crash-1"; commit = true }));
  Alcotest.(check int) "decided row visible" 1 (query_id c 2);
  (* Idempotent: a recovering coordinator may blindly re-send. *)
  expect_ok "decide again"
    (call c (Protocol.Decide { gid = "part-crash-1"; commit = true }));
  (* The completed transaction carries the same hashes a never-crashed
     run would: the ledger verifies. *)
  let digest =
    match call c Protocol.Digest with
    | Protocol.Digest_r j -> j
    | r -> Alcotest.fail ("digest: " ^ Protocol.response_kind r)
  in
  (match call c (Protocol.Verify { tables = []; digests = [ digest ] }) with
  | Protocol.Verify_r { vs_ok; _ } ->
      Alcotest.(check bool) "shard verifies" true vs_ok
  | r -> Alcotest.fail ("verify: " ^ Protocol.response_kind r));
  Client.close c;
  Server.shutdown srv2 th2

(* The randomized sweep: seeded crashes at every boundary — including
   byte-granular tears inside the decision log — always converge to
   all-or-nothing, with the decision log the source of truth. *)
let test_randomized_matrix () =
  let prng = Workload.Prng.create seed in
  with_cluster (fun ~cdir ~cport:_ ~coord ~cth ~nodes:_ ~restart_shards ->
      Coordinator.request_shutdown coord;
      Thread.join cth;
      (* the fixture's coordinator handle is replaced per trial *)
      let addrs = ref (restart_shards ()) in
      let committed = ref [] in
      let seen_gids = ref [] in
      for trial = 1 to trials do
        let coord, th, _res, cport = start_coord ~shards:!addrs cdir in
        await_resolved coord;
        let c = connect cport in
        let ids = cross_shard_ids () in
        let site = Workload.Prng.int prng 3 in
        (match site with
        | 0 -> Fault.set Coordinator.point_before_decision (Fault.Crash_after 0)
        | 1 -> Fault.set Coordinator.point_after_decision (Fault.Crash_after 0)
        | _ ->
            (* Tear the decision log mid-record at a random byte. *)
            Fault.set Decision_log.point
              (Fault.Crash_after (1 + Workload.Prng.int prng 120)));
        (match Client.call c (Protocol.Exec { sql = insert_sql ids }) with
        | Ok _ | Error _ -> ());
        Client.close c;
        Coordinator.request_shutdown coord;
        Thread.join th;
        Fault.reset ();
        addrs := restart_shards ();
        (* What does the surviving log say about THIS trial's
           transaction? Its Start record is the one no earlier trial
           logged. Decision present -> that outcome; Start torn off or
           no Decision -> presumed abort. *)
        let dlog = In_channel.with_open_bin
            (Filename.concat cdir "coord.dlog") In_channel.input_all
        in
        let records, _ = Decision_log.parse_all dlog in
        let trial_gid =
          List.fold_left
            (fun acc r ->
              match r with
              | Decision_log.Start { gid; _ }
                when not (List.mem gid !seen_gids) ->
                  Some gid
              | _ -> acc)
            None records
        in
        (match trial_gid with
        | Some gid -> seen_gids := gid :: !seen_gids
        | None -> ());
        let expect_commit =
          match trial_gid with
          | None -> false
          | Some gid ->
              List.exists
                (function
                  | Decision_log.Decision { gid = g; commit } ->
                      g = gid && commit
                  | _ -> false)
                records
        in
        (* Restart, converge, check all-or-nothing matches the log. *)
        let coord, th, _res, cport = start_coord ~shards:!addrs cdir in
        await_resolved coord;
        let c = connect cport in
        List.iter
          (fun id ->
            Alcotest.(check int)
              (Printf.sprintf "trial %d id %d (site %d)" trial id site)
              (if expect_commit then 1 else 0)
              (query_id c id))
          ids;
        if expect_commit then committed := ids @ !committed;
        Client.close c;
        Coordinator.request_shutdown coord;
        Thread.join th
      done;
      (* The cluster that survived the whole sweep proves itself. *)
      let coord, th, _res, cport = start_coord ~shards:!addrs cdir in
      await_resolved coord;
      let c = connect cport in
      Alcotest.(check int)
        "fanout equals committed rows"
        (List.length !committed) (count_all c);
      let digest =
        match call c Protocol.Digest with
        | Protocol.Digest_r j -> j
        | r -> Alcotest.fail ("digest: " ^ Protocol.response_kind r)
      in
      (match call c (Protocol.Verify { tables = []; digests = [ digest ] }) with
      | Protocol.Verify_r { vs_ok; _ } ->
          Alcotest.(check bool) "verify after sweep" true vs_ok
      | r -> Alcotest.fail ("verify: " ^ Protocol.response_kind r));
      Client.close c;
      Coordinator.request_shutdown coord;
      Thread.join th)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "shard"
    [
      ( "map",
        [
          Alcotest.test_case "partition function" `Quick test_map_partition;
          Alcotest.test_case "json codec" `Quick test_map_codec;
        ] );
      ( "decision log",
        [
          Alcotest.test_case "roundtrip" `Quick test_dlog_roundtrip;
          Alcotest.test_case "torn tail" `Quick test_dlog_torn_tail;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "routing and 2pc end-to-end" `Quick
            test_cluster_e2e;
          Alcotest.test_case "tampered shard fails aggregate verify" `Quick
            test_tamper_detected;
          Alcotest.test_case "wrong_shard refresh race" `Quick
            test_wrong_shard_refresh;
          Alcotest.test_case "epoch persistence" `Quick test_epoch_persistence;
        ] );
      ( "crash matrix",
        [
          Alcotest.test_case "coordinator dies before decision" `Quick
            test_crash_before_decision;
          Alcotest.test_case "coordinator dies after decision" `Quick
            test_crash_after_decision;
          Alcotest.test_case "participant dies prepared" `Quick
            test_participant_crash;
          Alcotest.test_case "randomized seeded sweep" `Quick
            test_randomized_matrix;
        ] );
    ]
