(* Full redo-log recovery: a database rebuilt from its WAL (or snapshot +
   WAL tail) is byte-identical in every hashed respect — old digests verify
   the recovered instance. *)

open Relation
open Sql_ledger
open Testkit

let with_wal f =
  let path = Filename.temp_file "replaywal" ".log" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let queries_equal db db' =
  List.for_all
    (fun sql ->
      let a = (Database.query db sql).Sqlexec.Rel.rows in
      let b = (Database.query db' sql).Sqlexec.Rel.rows in
      List.length a = List.length b && List.for_all2 Row.equal a b)
    [
      "SELECT * FROM accounts ORDER BY name";
      "SELECT * FROM accounts__ledger_view";
      "SELECT * FROM database_ledger_transactions ORDER BY txn_id";
      "SELECT * FROM database_ledger_blocks ORDER BY block_id";
      "SELECT * FROM ledger_tables_meta ORDER BY event_id";
      "SELECT * FROM ledger_columns_meta ORDER BY event_id";
    ]

let build db =
  let accounts = make_accounts db in
  figure2 db accounts;
  Database.create_index db ~table:"accounts" ~name:"i" ~columns:[ "balance" ];
  accounts

let test_full_replay_equivalence () =
  with_wal (fun path ->
      let db = make_db ~block_size:3 ~signing_seed:"replayed" ~wal_path:path "orig" in
      let accounts = build db in
      let d1 = fresh_digest db in
      ignore (insert_account db accounts "PostDigest" 9);
      (* Crash here: rebuild purely from the log. *)
      let records = Result.get_ok (Aries.Wal.load path) in
      match Wal_replay.replay ~clock:(make_clock ()) ~records () with
      | Error e -> Alcotest.fail e
      | Ok db' ->
          Alcotest.(check string) "identity" (Database.database_id db)
            (Database.database_id db');
          Alcotest.(check bool) "contents equal" true (queries_equal db db');
          (* The pre-crash digest verifies the recovered database. *)
          Alcotest.(check bool) "old digest verifies replayed db" true
            (Verifier.ok (Verifier.verify db' ~digests:[ d1 ]));
          (* Fresh digests agree between original and replica. *)
          let da = fresh_digest db and db2 = fresh_digest db' in
          Alcotest.(check string) "digests identical"
            (Ledger_crypto.Hex.encode da.Digest.block_hash)
            (Ledger_crypto.Hex.encode db2.Digest.block_hash);
          (* The replica keeps working and verifying. *)
          let acc' = Database.ledger_table db' "accounts" in
          ignore
            (Database.with_txn db' ~user:"post" (fun txn ->
                 Txn.insert txn acc' [| vs "AfterRecovery"; vi 1 |]));
          let d' = fresh_digest db' in
          Alcotest.(check bool) "replica verifies" true
            (Verifier.ok (Verifier.verify db' ~digests:[ d1; d' ])))

let test_uncommitted_tail_discarded () =
  with_wal (fun path ->
      let db = make_db ~block_size:100 ~wal_path:path "tail" in
      let accounts = build db in
      (* Simulate a crash between the DATA record and its COMMIT: append a
         forged DATA record for a transaction that never committed. *)
      let records = Result.get_ok (Aries.Wal.load path) in
      let next_lsn = List.length records + 1 in
      let tail =
        ( next_lsn,
          Aries.Log_record.Data
            {
              txn_id = 424242;
              ops =
                Sjson.List
                  [
                    Sjson.Obj
                      [
                        ("op", Sjson.String "li");
                        ("tid", Sjson.Int (Ledger_table.table_id accounts));
                        ("seq", Sjson.Int 0);
                        ( "row",
                          Sjson.List
                            [
                              Sjson.Obj [ ("s", Sjson.String "Ghost") ];
                              Sjson.Obj [ ("i", Sjson.Int 1) ];
                            ] );
                      ];
                  ];
            } )
      in
      match Wal_replay.replay ~clock:(make_clock ()) ~records:(records @ [ tail ]) () with
      | Error e -> Alcotest.fail e
      | Ok db' ->
          Alcotest.(check bool) "ghost absent" true
            (Ledger_table.find
               (Database.ledger_table db' "accounts")
               ~key:[| vs "Ghost" |]
            = None);
          let d = Option.get (Database.generate_digest db') in
          Alcotest.(check bool) "verifies" true
            (Verifier.ok (Verifier.verify db' ~digests:[ d ])))

let test_replay_continues_lsn_numbering () =
  (* The recovered database's WAL numbering continues past the replayed
     records: a snapshot taken right after recovery must record a position
     consistent with the on-disk log (no LSN reuse across generations). *)
  with_wal (fun path ->
      let db = make_db ~block_size:100 ~wal_path:path "lsncont" in
      let accounts = build db in
      ignore (insert_account db accounts "Tail" 1);
      let records = Result.get_ok (Aries.Wal.load path) in
      let max_lsn = List.fold_left (fun acc (l, _) -> max acc l) 0 records in
      match Wal_replay.replay ~clock:(make_clock ()) ~records () with
      | Error e -> Alcotest.fail e
      | Ok db' ->
          let wal' = Database_ledger.wal (Database.ledger db') in
          Alcotest.(check bool) "numbering continues" true
            (Aries.Wal.last_lsn wal' >= max_lsn);
          Alcotest.(check int) "snapshot position lines up" (Aries.Wal.last_lsn wal')
            (Snapshot.wal_lsn (Snapshot.save db')))

let test_aborted_txn_not_replayed () =
  with_wal (fun path ->
      let db = make_db ~block_size:100 ~wal_path:path "abort" in
      let accounts = build db in
      let txn = Database.begin_txn db ~user:"mallory" in
      Txn.insert txn accounts [| vs "Rolled"; vi 1 |];
      Txn.rollback txn;
      ignore (insert_account db accounts "Kept" 2);
      let records = Result.get_ok (Aries.Wal.load path) in
      match Wal_replay.replay ~clock:(make_clock ()) ~records () with
      | Error e -> Alcotest.fail e
      | Ok db' ->
          let acc' = Database.ledger_table db' "accounts" in
          Alcotest.(check bool) "rolled back absent" true
            (Ledger_table.find acc' ~key:[| vs "Rolled" |] = None);
          Alcotest.(check bool) "committed present" true
            (Ledger_table.find acc' ~key:[| vs "Kept" |] <> None))

let test_snapshot_plus_tail () =
  with_wal (fun path ->
      let db = make_db ~block_size:3 ~wal_path:path "snaptail" in
      let accounts = build db in
      let snapshot = Snapshot.save db in
      ignore (insert_account db accounts "Tail1" 1);
      ignore (update_account db accounts "Tail1" 2);
      let d = fresh_digest db in
      let records = Result.get_ok (Aries.Wal.load path) in
      match Wal_replay.replay ~clock:(make_clock ()) ~snapshot ~records () with
      | Error e -> Alcotest.fail e
      | Ok db' ->
          Alcotest.(check bool) "contents equal" true (queries_equal db db');
          Alcotest.(check bool) "digest verifies" true
            (Verifier.ok (Verifier.verify db' ~digests:[ d ])))

let test_replay_resurrects_untampered_state () =
  with_wal (fun path ->
      let db = make_db ~block_size:3 ~wal_path:path "resurrect" in
      let _ = build db in
      let d = fresh_digest db in
      (* Raw tampering bypasses the WAL... *)
      ignore
        (Tamper.apply db
           (Tamper.Update_row
              { table = "accounts"; key = [| vs "John" |]; column = "balance"; value = vi 1 }));
      Alcotest.(check bool) "live db fails" true
        (not (Verifier.ok (Verifier.verify db ~digests:[ d ])));
      (* ... so replay recovers the honest state. *)
      let records = Result.get_ok (Aries.Wal.load path) in
      match Wal_replay.replay ~clock:(make_clock ()) ~records () with
      | Error e -> Alcotest.fail e
      | Ok db' ->
          Alcotest.(check bool) "replayed db verifies" true
            (Verifier.ok (Verifier.verify db' ~digests:[ d ]));
          match
            Ledger_table.find (Database.ledger_table db' "accounts")
              ~key:[| vs "John" |]
          with
          | Some row ->
              Alcotest.(check bool) "original value" true
                (Value.equal row.(1) (vi 500))
          | None -> Alcotest.fail "John missing")

let test_ddl_replay () =
  with_wal (fun path ->
      let db = make_db ~block_size:3 ~wal_path:path "ddl" in
      let accounts = build db in
      Database.add_column db ~table:"accounts"
        (Column.make ~nullable:true "note" (Datatype.Varchar 16));
      ignore
        (commit_one db "t" (fun txn ->
             Txn.insert txn accounts [| vs "Wide"; vi 3; vs "hello" |]));
      Database.drop_column db ~table:"accounts" ~column:"note";
      Database.alter_column_type db ~table:"accounts" ~column:"balance"
        Datatype.Float
        ~convert:(function Value.Int i -> Value.Float (float_of_int i) | v -> v);
      let plain =
        Database.create_regular_table db ~name:"plain"
          ~columns:[ Column.make "id" Datatype.Int ]
          ~key:[ "id" ] ()
      in
      ignore
        (Database.with_txn db ~user:"x" (fun txn ->
             Txn.plain_insert txn plain [| vi 7 |]));
      Database.drop_table db ~name:"accounts";
      let d = fresh_digest db in
      let records = Result.get_ok (Aries.Wal.load path) in
      match Wal_replay.replay ~clock:(make_clock ()) ~records () with
      | Error e -> Alcotest.fail e
      | Ok db' ->
          Alcotest.(check bool) "digest verifies after heavy DDL" true
            (Verifier.ok (Verifier.verify db' ~digests:[ d ]));
          Alcotest.(check bool) "dropped table stays dropped" true
            (Database.find_ledger_table db' "accounts" = None);
          Alcotest.(check bool) "plain row there" true
            (Storage.Table_store.find
               (Database.regular_table db' "plain")
               ~key:[| vi 7 |]
            <> None);
          (* The replica continues to allocate fresh ids correctly. *)
          let t2 =
            Database.create_ledger_table db' ~name:"fresh"
              ~columns:[ Column.make "id" Datatype.Int ]
              ~key:[ "id" ] ()
          in
          ignore
            (Database.with_txn db' ~user:"x" (fun txn ->
                 Txn.insert txn t2 [| vi 1 |]));
          let d2 = Option.get (Database.generate_digest db') in
          Alcotest.(check bool) "still verifies" true
            (Verifier.ok (Verifier.verify db' ~digests:[ d2 ])))

let test_replay_requires_header () =
  match Wal_replay.replay ~records:[] () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty log must not replay"

let () =
  Alcotest.run "wal-replay"
    [
      ( "replay",
        [
          Alcotest.test_case "full equivalence" `Quick test_full_replay_equivalence;
          Alcotest.test_case "uncommitted tail" `Quick test_uncommitted_tail_discarded;
          Alcotest.test_case "lsn continuity" `Quick test_replay_continues_lsn_numbering;
          Alcotest.test_case "aborted txn" `Quick test_aborted_txn_not_replayed;
          Alcotest.test_case "snapshot + tail" `Quick test_snapshot_plus_tail;
          Alcotest.test_case "resurrects untampered state" `Quick
            test_replay_resurrects_untampered_state;
          Alcotest.test_case "DDL replay" `Quick test_ddl_replay;
          Alcotest.test_case "requires header" `Quick test_replay_requires_header;
        ] );
    ]
