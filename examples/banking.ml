(* A small core-banking system of record: accounts and transfers on ledger
   tables, periodic digests to a WORM store, savepoints for business rules,
   receipts for large deposits, and a full audit at the end.

     dune exec examples/banking.exe
*)

open Relation
open Sql_ledger
module WS = Trusted_store.Worm_store
module DM = Trusted_store.Digest_manager

let vi = Value.int
let vs s = Value.String s

type bank = {
  db : Database.t;
  accounts : Ledger_table.t;
  transfers : Ledger_table.t;
  dm : DM.t;
  mutable next_transfer : int;
}

let create_bank () =
  let db =
    Database.create ~block_size:8 ~signing_seed:"bank-hsm-seed" ~name:"bank" ()
  in
  let accounts =
    Database.create_ledger_table db ~name:"accounts"
      ~columns:
        [
          Column.make "owner" (Datatype.Varchar 40);
          Column.make "balance" Datatype.Int;
        ]
      ~key:[ "owner" ] ()
  in
  (* Transfers are append-only: a payment record must never change. *)
  let transfers =
    Database.create_ledger_table db ~kind:`Append_only ~name:"transfers"
      ~columns:
        [
          Column.make "transfer_id" Datatype.Int;
          Column.make "from_owner" (Datatype.Varchar 40);
          Column.make "to_owner" (Datatype.Varchar 40);
          Column.make "amount" Datatype.Int;
        ]
      ~key:[ "transfer_id" ] ()
  in
  let store = WS.create ~hmac_key:"bank-escrow-key" () in
  let dm = DM.create ~store () in
  { db; accounts; transfers; dm; next_transfer = 1 }

let open_account bank ~owner ~initial =
  ignore
    (Database.with_txn bank.db ~user:"branch" (fun txn ->
         Txn.insert txn bank.accounts [| vs owner; vi initial |]))

let balance bank owner =
  match Ledger_table.find bank.accounts ~key:[| vs owner |] with
  | Some row -> ( match row.(1) with Value.Int b -> b | _ -> 0)
  | None -> failwith ("no account: " ^ owner)

(* A transfer uses a savepoint: the fee posting is optional and rolled back
   for premium customers, exercising partial rollback (§3.2.1). *)
let transfer bank ~user ~from_owner ~to_owner ~amount ~premium =
  let id = bank.next_transfer in
  bank.next_transfer <- id + 1;
  let _, entry =
    Database.with_txn bank.db ~user (fun txn ->
        let from_balance = balance bank from_owner in
        if from_balance < amount then failwith "insufficient funds";
        Txn.update txn bank.accounts ~key:[| vs from_owner |]
          [| vs from_owner; vi (from_balance - amount) |];
        let to_balance = balance bank to_owner in
        Txn.update txn bank.accounts ~key:[| vs to_owner |]
          [| vs to_owner; vi (to_balance + amount) |];
        Txn.insert txn bank.transfers
          [| vi id; vs from_owner; vs to_owner; vi amount |];
        (* Fee: provisionally charge, then waive for premium customers. *)
        let before_fee = Txn.savepoint txn in
        let b = balance bank from_owner in
        Txn.update txn bank.accounts ~key:[| vs from_owner |]
          [| vs from_owner; vi (b - 1) |];
        if premium then Txn.rollback_to txn before_fee)
  in
  entry

let () =
  let bank = create_bank () in
  open_account bank ~owner:"ada" ~initial:1000;
  open_account bank ~owner:"grace" ~initial:250;
  open_account bank ~owner:"edsger" ~initial:0;

  ignore (transfer bank ~user:"teller-1" ~from_owner:"ada" ~to_owner:"grace" ~amount:200 ~premium:true);
  (match DM.upload bank.dm bank.db with
  | DM.Uploaded d -> Printf.printf "digest for block %d escrowed\n" d.Digest.block_id
  | _ -> print_endline "digest upload skipped");

  ignore (transfer bank ~user:"teller-2" ~from_owner:"grace" ~to_owner:"edsger" ~amount:100 ~premium:false);
  let big = transfer bank ~user:"teller-1" ~from_owner:"ada" ~to_owner:"edsger" ~amount:500 ~premium:true in
  (match DM.upload bank.dm bank.db with
  | DM.Uploaded d -> Printf.printf "digest for block %d escrowed\n" d.Digest.block_id
  | _ -> print_endline "digest upload skipped");

  Printf.printf "\nbalances: ada=%d grace=%d edsger=%d\n" (balance bank "ada")
    (balance bank "grace") (balance bank "edsger");
  assert (balance bank "ada" = 300) (* premium: fees waived *);
  assert (balance bank "grace" = 349) (* 250 + 200 - 100 - 1 fee *);

  (* Edsger wants proof of the 500 deposit that survives even if the bank
     later destroys its ledger. *)
  (match Receipt.generate bank.db ~txn_id:big.Types.txn_id with
  | Ok receipt ->
      (match Receipt.verify receipt with
      | Ok () ->
          Printf.printf
            "\nreceipt for transaction %d verifies independently (%d-step \
             Merkle proof, signed block root)\n"
            big.Types.txn_id
            (Merkle.Proof.length receipt.Receipt.proof)
      | Error e -> failwith (Receipt.failure_to_string e))
  | Error e -> failwith e);

  (* Quarterly audit: all escrowed digests against the live database. *)
  let digests =
    match
      DM.digests_for_incarnation bank.dm
        ~db_id:(Database.database_id bank.db)
        ~create_time:(Database.create_time bank.db)
    with
    | Ok ds -> ds
    | Error e -> failwith e
  in
  let report = Verifier.verify bank.db ~digests in
  Format.printf "\naudit: %a@." Verifier.pp_report report;

  (* The full movement history of grace's account, for the auditors. *)
  print_endline "\naccount history (grace):";
  Format.printf "%a@." Sqlexec.Rel.pp
    (Database.query bank.db
       "SELECT owner, balance, operation, transaction_id \
        FROM accounts__ledger_view WHERE owner = 'grace'")
