(* The external auditor's workflow: digests and receipts as portable JSON,
   verified without trusting the database operator — including the
   chain-derivation check that exposes fork attacks at digest time
   (§3.3.1, requirement 3).

     dune exec examples/auditor.exe
*)

open Relation
open Sql_ledger

let vi = Value.int
let vs s = Value.String s

let () =
  (* --- operator side --- *)
  let db =
    Database.create ~block_size:4 ~signing_seed:"operator-hsm" ~name:"sor" ()
  in
  let invoices =
    Database.create_ledger_table db ~name:"invoices"
      ~columns:
        [
          Column.make "invoice_id" Datatype.Int;
          Column.make "customer" (Datatype.Varchar 32);
          Column.make "amount" Datatype.Int;
        ]
      ~key:[ "invoice_id" ] ()
  in
  let issue id customer amount =
    let (), e =
      Database.with_txn db ~user:"billing" (fun txn ->
          Txn.insert txn invoices [| vi id; vs customer; vi amount |])
    in
    e
  in
  for i = 1 to 6 do
    ignore (issue i "acme" (i * 100))
  done;
  let digest_1 = Option.get (Database.generate_digest db) in
  let big = issue 7 "acme" 1_000_000 in
  let digest_2 = Option.get (Database.generate_digest db) in

  (* The operator hands the auditor three JSON documents. In production
     these travel via immutable blob storage, mail, or a public chain. *)
  let digest_1_json = Digest.to_string digest_1 in
  let digest_2_json = Digest.to_string digest_2 in
  let receipt_json =
    match Receipt.generate db ~txn_id:big.Types.txn_id with
    | Ok r -> Receipt.to_string r
    | Error e -> failwith e
  in
  Printf.printf "operator exports: 2 digests (%d bytes) + 1 receipt (%d bytes)\n"
    (String.length digest_1_json + String.length digest_2_json)
    (String.length receipt_json);

  (* --- auditor side: only the JSON documents and the database id --- *)
  print_endline "\nauditor: parsing documents...";
  let d1 = Result.get_ok (Digest.of_string digest_1_json) in
  let d2 = Result.get_ok (Digest.of_string digest_2_json) in
  let receipt = Result.get_ok (Receipt.of_string receipt_json) in

  (* 1. The receipt alone proves the million-unit invoice was committed —
     no database access at all. *)
  (match Receipt.verify ~digest:d2 receipt with
  | Ok () ->
      Printf.printf
        "receipt OK: transaction %d (user %s) is in block %d under the \
         digest's hash\n"
        receipt.Receipt.entry.Types.txn_id receipt.Receipt.entry.Types.user
        receipt.Receipt.block.Types.block_id
  | Error e -> failwith (Receipt.failure_to_string e));

  (* 2. When given database access, digest derivation confirms digest_2
     extends digest_1 — no fork happened in between. *)
  (match Verifier.verify_digest_chain db ~older:d1 ~newer:d2 with
  | Ok () -> print_endline "chain OK: the newer digest derives from the older one"
  | Error _ -> failwith "chain check failed");

  (* 3. Full verification over both digests. *)
  let report = Verifier.verify db ~digests:[ d1; d2 ] in
  Format.printf "%a@." Verifier.pp_report report;
  assert (Verifier.ok report);

  (* --- a forking operator is caught --- *)
  print_endline "\nnow the operator rewrites an early block and re-chains...";
  (match Tamper.apply db (Tamper.Fork_chain { block_id = 0 }) with
  | Ok () -> ()
  | Error e -> failwith e);
  let forged = Option.get (Database.generate_digest db) in
  (match Verifier.verify_digest_chain db ~older:d1 ~newer:forged with
  | Error violations ->
      Printf.printf
        "fork detected at digest generation (%d violation(s)) — the forged \
         state cannot be passed off as a continuation\n"
        (List.length violations)
  | Ok () -> failwith "fork went undetected!");
  (* And the receipt still proves the original transaction. *)
  match Receipt.verify ~digest:d2 receipt with
  | Ok () -> print_endline "the old receipt still stands, ledger fork or not"
  | Error e -> failwith (Receipt.failure_to_string e)
