(** Merkle membership proofs (paper §3.3.1 requirement 4 and §5.1).

    A proof authenticates that a leaf hash is contained in a tree with a
    known root while revealing only sibling hashes — no other transaction
    content leaks, which is what lets SQL Ledger hand receipts to external
    parties without compromising ledger confidentiality. *)

type step =
  | Sibling_left of string   (** sibling hash sits to the left of our node *)
  | Sibling_right of string  (** sibling hash sits to the right *)

type t = step list
(** Ordered bottom-up. Levels where the node was promoted without a sibling
    contribute no step, matching the streaming algorithm's promotion rule. *)

val root_from_leaf : leaf:string -> t -> string
(** Recompute the root implied by [leaf] and the proof. *)

val verify : root:string -> leaf:string -> t -> bool
(** [verify ~root ~leaf p] checks that [p] connects [leaf] to [root]. *)

val to_json : t -> Sjson.t
val of_json : Sjson.t -> t option

val length : t -> int
(** Number of sibling steps (tree height minus promotions). *)
