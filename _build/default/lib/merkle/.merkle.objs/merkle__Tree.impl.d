lib/merkle/tree.ml: Array List Proof Streaming
