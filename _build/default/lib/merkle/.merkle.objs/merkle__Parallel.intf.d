lib/merkle/parallel.mli:
