lib/merkle/proof.ml: Ledger_crypto List Option Sjson Streaming String
