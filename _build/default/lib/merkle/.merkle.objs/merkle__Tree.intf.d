lib/merkle/tree.mli: Proof
