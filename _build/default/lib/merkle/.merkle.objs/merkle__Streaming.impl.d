lib/merkle/streaming.ml: Ledger_crypto List
