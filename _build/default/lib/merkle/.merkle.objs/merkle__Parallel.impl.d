lib/merkle/parallel.ml: Array Domain Streaming
