lib/merkle/streaming.mli:
