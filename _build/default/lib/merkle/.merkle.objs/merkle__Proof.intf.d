lib/merkle/proof.mli: Sjson
