type t = { levels : string array array }
(* levels.(0) = leaves; levels.(top) has length 1 unless the tree is empty.
   An odd trailing node is promoted unchanged to the next level, mirroring
   Streaming. *)

let of_leaves leaves =
  let leaves = Array.of_list leaves in
  if Array.length leaves = 0 then { levels = [||] }
  else begin
    let levels = ref [ leaves ] in
    let current = ref leaves in
    while Array.length !current > 1 do
      let n = Array.length !current in
      let parent_len = (n + 1) / 2 in
      let parent =
        Array.init parent_len (fun i ->
            if (2 * i) + 1 < n then
              Streaming.combine !current.(2 * i) !current.((2 * i) + 1)
            else !current.(2 * i))
      in
      levels := parent :: !levels;
      current := parent
    done;
    { levels = Array.of_list (List.rev !levels) }
  end

let leaf_count t =
  if Array.length t.levels = 0 then 0 else Array.length t.levels.(0)

let root t =
  if Array.length t.levels = 0 then Streaming.empty_root
  else t.levels.(Array.length t.levels - 1).(0)

let leaf t i =
  if i < 0 || i >= leaf_count t then invalid_arg "Tree.leaf: out of range";
  t.levels.(0).(i)

let proof t i =
  if i < 0 || i >= leaf_count t then invalid_arg "Tree.proof: out of range";
  let steps = ref [] in
  let idx = ref i in
  for level = 0 to Array.length t.levels - 2 do
    let nodes = t.levels.(level) in
    let sibling = !idx lxor 1 in
    if sibling < Array.length nodes then begin
      let step =
        if sibling < !idx then Proof.Sibling_left nodes.(sibling)
        else Proof.Sibling_right nodes.(sibling)
      in
      steps := step :: !steps
    end;
    (* No step when the node was promoted without a sibling. *)
    idx := !idx / 2
  done;
  List.rev !steps
