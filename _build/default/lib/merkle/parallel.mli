(** Domain-parallel Merkle root computation.

    Computes exactly the root {!Streaming} (and {!Tree}) would produce over
    the same leaves — same pairing, same promotion of odd trailing nodes —
    but splits the leaf array into power-of-two-aligned chunks and reduces
    the chunks on separate domains before combining the subtree roots. Used
    on the block-close path and behind the [MERKLETREEAGG] SQL aggregate,
    where blocks aggregate up to 100K transaction hashes (paper §3.3,
    §3.4.2: "leverage parallel query execution").

    Without an explicit [domains] argument the implementation decides: it
    stays sequential for small inputs (spawn overhead dominates below a few
    thousand leaves), when the host reports a single core, and when called
    off the main domain (verification workers already saturate the host). *)

val root_array : ?domains:int -> string array -> string
(** Root over the leaves, left to right. [?domains] forces the number of
    parallel chunks (values [<= 1] mean sequential); when omitted, a
    sensible degree is chosen as described above. The array is not
    modified. *)

val root : ?domains:int -> string list -> string
(** List convenience wrapper over {!root_array}. *)

val sequential_root : string array -> string
(** The sequential level-wise reduction (exposed for benchmarks/tests). *)
