(** Materialised Merkle trees with proof generation.

    The Database Ledger stores only the root of the per-block transaction
    tree (§3.3.1); when a receipt is requested (§5.1) the block's
    transactions are re-read and the tree rebuilt here to extract the
    membership proof. Roots agree exactly with {!Streaming}. *)

type t

val of_leaves : string list -> t
(** Build a tree over leaf hashes, in order. *)

val root : t -> string
(** Root hash; equals [Streaming.empty_root] for an empty tree. *)

val leaf_count : t -> int

val proof : t -> int -> Proof.t
(** [proof t i] is the membership proof for the [i]-th leaf.
    Raises [Invalid_argument] if [i] is out of range. *)

val leaf : t -> int -> string
(** The [i]-th leaf hash. Raises [Invalid_argument] if out of range. *)
