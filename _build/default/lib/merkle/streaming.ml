module Sha256 = Ledger_crypto.Sha256

let empty_root = Sha256.digest_string "\x00merkle-empty"

let combine l r = Sha256.digest_concat [ "\x01"; l; r ]

type t = { pending : string option list; count : int }
(* [pending] holds, for each level starting at the leaves, the last appended
   node that has not yet found a sibling. The list is as long as the highest
   level touched so far, so it is O(log N). Because it is immutable, a
   savepoint snapshot is just a binding. *)

let empty = { pending = []; count = 0 }

let add_leaf t leaf =
  let rec insert pending node =
    match pending with
    | [] -> [ Some node ]
    | None :: rest -> Some node :: rest
    | Some prev :: rest -> None :: insert rest (combine prev node)
  in
  { pending = insert t.pending leaf; count = t.count + 1 }

let add_leaves t leaves = List.fold_left add_leaf t leaves

let leaf_count t = t.count

let root t =
  (* Fold pending nodes upwards; an unpaired node is promoted (carried)
     until it meets a pending node from a higher level. *)
  let final =
    List.fold_left
      (fun carry pending ->
        match (pending, carry) with
        | None, c -> c
        | Some p, None -> Some p
        | Some p, Some c -> Some (combine p c))
      None t.pending
  in
  match final with None -> empty_root | Some r -> r

let levels t = t.pending
