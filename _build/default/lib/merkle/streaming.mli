(** Streaming Merkle-root computation (paper §3.2.1).

    Computes the root of a Merkle tree over a stream of leaf hashes in O(N)
    time and O(log N) space, without knowing the leaf count up front. The
    last node of an odd level is promoted unchanged to its parent level, as
    the paper specifies. The small state makes savepoint snapshots cheap
    (§3.2.1: partial transaction rollbacks copy the tree state). *)

type t
(** Immutable accumulator; appends return a new value, which is what makes
    savepoint snapshot/restore a pointer copy. *)

val empty : t

val add_leaf : t -> string -> t
(** Append a leaf hash (any string; callers pass 32-byte SHA-256 digests). *)

val add_leaves : t -> string list -> t

val leaf_count : t -> int

val root : t -> string
(** Current root. The empty tree has the distinguished root
    {!empty_root}. [root] does not consume the accumulator. *)

val empty_root : string
(** Root of a zero-leaf tree: SHA-256 of a domain-separation tag. *)

val combine : string -> string -> string
(** Interior-node hash: SHA-256 over a [\x01] tag and both children. The tag
    separates interior nodes from leaves, preventing a second-preimage
    splice between the two layers. *)

val levels : t -> string option list
(** Pending (unpaired) node per level, lowest first — exposed for tests. *)
