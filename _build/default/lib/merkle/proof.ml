module Hex = Ledger_crypto.Hex

type step = Sibling_left of string | Sibling_right of string
type t = step list

let root_from_leaf ~leaf proof =
  List.fold_left
    (fun acc step ->
      match step with
      | Sibling_left h -> Streaming.combine h acc
      | Sibling_right h -> Streaming.combine acc h)
    leaf proof

let verify ~root ~leaf proof = String.equal (root_from_leaf ~leaf proof) root

let to_json proof =
  Sjson.List
    (List.map
       (fun step ->
         let side, h =
           match step with
           | Sibling_left h -> ("left", h)
           | Sibling_right h -> ("right", h)
         in
         Sjson.Obj
           [ ("side", Sjson.String side); ("hash", Sjson.String (Hex.encode h)) ])
       proof)

let of_json json =
  match json with
  | Sjson.List items ->
      let step_of item =
        match
          (Sjson.member "side" item, Sjson.member "hash" item)
        with
        | Sjson.String side, Sjson.String hex when Hex.is_hex hex -> (
            let h = Hex.decode hex in
            match side with
            | "left" -> Some (Sibling_left h)
            | "right" -> Some (Sibling_right h)
            | _ -> None)
        | _ -> None
      in
      let steps = List.map step_of items in
      if List.for_all Option.is_some steps then
        Some (List.map Option.get steps)
      else None
  | _ -> None

let length = List.length
