lib/storage/table_store.mli: Relation
