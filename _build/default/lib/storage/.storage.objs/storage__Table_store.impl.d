lib/storage/table_store.ml: Array Btree List Printf Relation Row Schema String Value
