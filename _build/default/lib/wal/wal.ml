type lsn = int

type t = {
  mutable entries : (lsn * Log_record.t) list;  (* newest first *)
  mutable next_lsn : lsn;
  channel : out_channel option;
  line_buf : Buffer.t;  (* reused across appends; one line per record *)
}

let create ?path () =
  let channel = Option.map open_out path in
  { entries = []; next_lsn = 1; channel; line_buf = Buffer.create 256 }

let append t record =
  let lsn = t.next_lsn in
  t.next_lsn <- lsn + 1;
  t.entries <- (lsn, record) :: t.entries;
  (match t.channel with
  | Some oc ->
      Buffer.clear t.line_buf;
      Sjson.write t.line_buf (Log_record.to_json record);
      Buffer.add_char t.line_buf '\n';
      Buffer.output_buffer oc t.line_buf;
      flush oc
  | None -> ());
  lsn

let last_lsn t = t.next_lsn - 1

let records t = List.rev t.entries

let records_from t after = List.filter (fun (l, _) -> l > after) (records t)

let close t = Option.iter close_out t.channel

let load path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      let out = ref [] in
      let lsn = ref 0 in
      let err = ref None in
      (try
         let continue = ref true in
         while !continue do
           match input_line ic with
           | exception End_of_file -> continue := false
           | line when String.trim line = "" -> ()
           | line -> (
               match Log_record.of_line line with
               | Ok r ->
                   incr lsn;
                   out := (!lsn, r) :: !out
               | Error _ ->
                   (* A torn final line is expected after a crash; a torn
                      line in the middle means real corruption. *)
                   if in_channel_length ic = pos_in ic then continue := false
                   else begin
                     err := Some "corrupt WAL record before end of file";
                     continue := false
                   end)
         done
       with e ->
         close_in_noerr ic;
         raise e);
      close_in_noerr ic;
      match !err with Some e -> Error e | None -> Ok (List.rev !out)
