(** Append-only write-ahead log with monotonically increasing LSNs.

    The log lives in memory and can additionally be mirrored to a file (one
    JSON record per line), which is what crash-recovery tests replay. *)

type t

type lsn = int

val create : ?path:string -> unit -> t
(** When [path] is given, every append is written through and flushed to the
    file (truncating any existing file). *)

val append : t -> Log_record.t -> lsn
(** Durably append a record; returns its LSN (starting at 1). *)

val last_lsn : t -> lsn
(** 0 when empty. *)

val records : t -> (lsn * Log_record.t) list
(** All records, in LSN order. *)

val records_from : t -> lsn -> (lsn * Log_record.t) list
(** Records with LSN strictly greater than the argument. *)

val close : t -> unit

val load : string -> ((lsn * Log_record.t) list, string) result
(** Read a log file back. Tolerates a torn (partial) final line, which is
    dropped — the standard crash semantics of a WAL tail. *)
