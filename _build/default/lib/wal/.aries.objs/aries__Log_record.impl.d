lib/wal/log_record.ml: Format Ledger_crypto List Sjson
