lib/wal/wal.ml: Buffer List Log_record Option Sjson String
