lib/wal/wal.ml: List Log_record Option String
