lib/wal/recovery.ml: List Log_record Result Wal
