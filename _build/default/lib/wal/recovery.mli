(** Analysis phase of recovery (paper §3.3.2).

    After a failure, the Database Ledger's in-memory queue — commit entries
    not yet flushed to the transactions system table — is reconstructed by
    scanning COMMIT records logged after the last checkpoint. *)

type analysis = {
  pending_commits : Log_record.commit_info list;
      (** Commits whose ledger entries must be re-inserted into the
          in-memory queue, in LSN order. *)
  last_checkpoint_lsn : Wal.lsn option;
  highest_txn_id : int;  (** for restarting the transaction id allocator *)
  highest_block_id : int;  (** for restarting block assignment *)
}

val analyze : (Wal.lsn * Log_record.t) list -> analysis
(** Pure function over a log's records. *)

val analyze_file : string -> (analysis, string) result
(** {!Wal.load} followed by {!analyze}. *)
