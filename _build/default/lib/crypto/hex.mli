(** Hexadecimal encoding of binary strings. *)

val encode : string -> string
(** Lowercase hex, two characters per byte. *)

val decode : string -> string
(** Inverse of {!encode}; accepts upper- or lowercase. Raises
    [Invalid_argument] on odd length or non-hex characters. *)

val is_hex : string -> bool
(** Whether {!decode} would succeed. *)
