(* A secret key is 256 pairs of 32-byte preimages, derived from a seed with
   SHA-256 so that keys need not be stored in full. The public key hashes
   each preimage. Signing message bit i (of the message digest) reveals
   preimage [i][bit]. *)

let bits = 256
let chunk = 32

type secret_key = { sk : string array array }
(* sk.(i).(b) for i < 256, b < 2 *)

type public_key = { pk : string array array }
type signature = { reveal : string array }

let derive_preimage ~seed i b =
  Sha256.digest_concat
    [ "lamport-sk"; seed; string_of_int i; string_of_int b ]

let generate ~seed =
  let sk =
    Array.init bits (fun i ->
        [| derive_preimage ~seed i 0; derive_preimage ~seed i 1 |])
  in
  let pk =
    Array.map (fun pair -> Array.map Sha256.digest_string pair) sk
  in
  ({ sk }, { pk })

let public_key_of_secret { sk } =
  { pk = Array.map (fun pair -> Array.map Sha256.digest_string pair) sk }

let msg_bits msg =
  let d = Sha256.digest_string msg in
  Array.init bits (fun i ->
      let byte = Char.code d.[i / 8] in
      (byte lsr (7 - (i mod 8))) land 1)

let sign { sk } msg =
  let bs = msg_bits msg in
  { reveal = Array.mapi (fun i b -> sk.(i).(b)) bs }

let verify { pk } ~msg { reveal } =
  Array.length reveal = bits
  &&
  let bs = msg_bits msg in
  let ok = ref true in
  Array.iteri
    (fun i b ->
      if not (String.equal (Sha256.digest_string reveal.(i)) pk.(i).(b)) then
        ok := false)
    bs;
  !ok

let fingerprint { pk } =
  let t = Sha256.init () in
  Array.iter
    (fun pair ->
      Sha256.feed_string t pair.(0);
      Sha256.feed_string t pair.(1))
    pk;
  Sha256.get t

let public_key_to_string { pk } =
  let buf = Buffer.create (bits * 2 * chunk) in
  Array.iter
    (fun pair ->
      Buffer.add_string buf pair.(0);
      Buffer.add_string buf pair.(1))
    pk;
  Buffer.contents buf

let public_key_of_string s =
  if String.length s <> bits * 2 * chunk then None
  else
    Some
      {
        pk =
          Array.init bits (fun i ->
              [|
                String.sub s (i * 2 * chunk) chunk;
                String.sub s ((i * 2 * chunk) + chunk) chunk;
              |]);
      }

let signature_to_string { reveal } = String.concat "" (Array.to_list reveal)

let signature_of_string s =
  if String.length s <> bits * chunk then None
  else
    Some
      { reveal = Array.init bits (fun i -> String.sub s (i * chunk) chunk) }
