(** HMAC-SHA-256 (RFC 2104).

    Used by the trusted digest store to authenticate stored digests with a
    customer-held key — one of the out-of-band digest-protection options
    described in §2.4 of the paper. *)

val mac : key:string -> string -> string
(** [mac ~key msg] is the 32-byte raw HMAC-SHA-256 tag of [msg]. *)

val verify : key:string -> msg:string -> tag:string -> bool
(** Constant-time comparison of [tag] against [mac ~key msg]. *)
