(** Lamport one-time signatures over SHA-256.

    The paper signs one Merkle root per 100K-transaction block so that a
    single asymmetric signing operation amortises over every receipt in the
    block (§5.1). The concrete scheme is unspecified; this repository
    substitutes Lamport one-time signatures, which are built purely from
    SHA-256 (no bignum dependency) and are safe for exactly this one-message-
    per-key usage pattern: SQL Ledger derives a fresh key pair per block. *)

type secret_key
type public_key

type signature
(** 256 revealed 32-byte preimages (8 KiB). *)

val generate : seed:string -> secret_key * public_key
(** Deterministically derive a key pair from [seed]. The caller must never
    sign two distinct messages under the same seed. *)

val public_key_of_secret : secret_key -> public_key

val sign : secret_key -> string -> signature
(** Sign a message (the message is hashed internally). *)

val verify : public_key -> msg:string -> signature -> bool

val fingerprint : public_key -> string
(** 32-byte commitment to the public key, suitable for publishing in a block
    header; the full key is distributed with receipts. *)

val public_key_to_string : public_key -> string
val public_key_of_string : string -> public_key option
val signature_to_string : signature -> string
val signature_of_string : string -> signature option
