lib/crypto/lamport.mli:
