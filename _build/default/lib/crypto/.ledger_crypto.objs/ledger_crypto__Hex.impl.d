lib/crypto/hex.ml: Bytes Char String
