lib/crypto/hex.mli:
