lib/crypto/lamport.ml: Array Buffer Char Sha256 String
