lib/crypto/hmac.mli:
