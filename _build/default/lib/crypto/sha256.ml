(* SHA-256, FIPS 180-4. The 32-bit arithmetic is done in native ints (63-bit
   on every supported platform) masked to 32 bits, which avoids Int32 boxing
   in the hot compression loop. Contexts are reusable via [reset] and can be
   finalised into a caller-provided buffer via [finish_into], so the per-row
   hashing hot path allocates nothing beyond the digest itself. *)

let digest_size = 32

let mask = 0xFFFFFFFF

(* Round constants: first 32 bits of the fractional parts of the cube roots
   of the first 64 primes. *)
let k =
  [| 0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5;
     0x3956c25b; 0x59f111f1; 0x923f82a4; 0xab1c5ed5;
     0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
     0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174;
     0xe49b69c1; 0xefbe4786; 0x0fc19dc6; 0x240ca1cc;
     0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
     0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7;
     0xc6e00bf3; 0xd5a79147; 0x06ca6351; 0x14292967;
     0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
     0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85;
     0xa2bfe8a1; 0xa81a664b; 0xc24b8b70; 0xc76c51a3;
     0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
     0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5;
     0x391c0cb3; 0x4ed8aa4a; 0x5b9cca4f; 0x682e6ff3;
     0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
     0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2 |]

let iv =
  [| 0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a;
     0x510e527f; 0x9b05688c; 0x1f83d9ab; 0x5be0cd19 |]

type t = {
  h : int array;              (* 8 working hash words *)
  block : bytes;              (* 64-byte input block buffer *)
  mutable block_len : int;    (* bytes buffered in [block] *)
  mutable total_len : int;    (* total message bytes absorbed *)
  w : int array;              (* 64-entry message schedule, reused *)
  mutable finished : bool;    (* padding applied; [h] holds the digest *)
  mutable cached : string option;  (* memoised [get] result *)
}

let init () =
  {
    h = Array.copy iv;
    block = Bytes.create 64;
    block_len = 0;
    total_len = 0;
    w = Array.make 64 0;
    finished = false;
    cached = None;
  }

let reset t =
  Array.blit iv 0 t.h 0 8;
  t.block_len <- 0;
  t.total_len <- 0;
  t.finished <- false;
  t.cached <- None

(* Rotations use the doubled-word trick: for a 32-bit [x], every bit of
   [rotr x n] (1 <= n <= 31) is present in [(x lor (x lsl 32)) lsr n], so
   the three rotations of each sigma share one doubling and one final mask
   instead of masking per rotation. Bit 63 of the doubled word is lost to
   the 63-bit native int, but it only carries the upper copy's bit 31,
   which lands above bit 31 for every n <= 31 and is masked away. Sums are
   left unmasked until they feed a rotation or the state arrays: native
   ints are 63-bit, so a handful of 32-bit addends cannot overflow. *)
let compress t blk off =
  let w = t.w in
  for i = 0 to 15 do
    let j = off + (i * 4) in
    Array.unsafe_set w i
      ((Char.code (Bytes.unsafe_get blk j) lsl 24)
      lor (Char.code (Bytes.unsafe_get blk (j + 1)) lsl 16)
      lor (Char.code (Bytes.unsafe_get blk (j + 2)) lsl 8)
      lor Char.code (Bytes.unsafe_get blk (j + 3)))
  done;
  for i = 16 to 63 do
    let s0 =
      let x = Array.unsafe_get w (i - 15) in
      let x2 = x lor (x lsl 32) in
      ((x2 lsr 7) lxor (x2 lsr 18) lxor (x lsr 3)) land mask
    in
    let s1 =
      let x = Array.unsafe_get w (i - 2) in
      let x2 = x lor (x lsl 32) in
      ((x2 lsr 17) lxor (x2 lsr 19) lxor (x lsr 10)) land mask
    in
    Array.unsafe_set w i
      ((Array.unsafe_get w (i - 16) + s0 + Array.unsafe_get w (i - 7) + s1)
      land mask)
  done;
  let h = t.h in
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for i = 0 to 63 do
    let e' = !e in
    let e2 = e' lor (e' lsl 32) in
    let s1 = ((e2 lsr 6) lxor (e2 lsr 11) lxor (e2 lsr 25)) land mask in
    let ch = (e' land !f) lxor (lnot e' land !g) in
    let t1 = !hh + s1 + ch + Array.unsafe_get k i + Array.unsafe_get w i in
    let a' = !a in
    let a2 = a' lor (a' lsl 32) in
    let s0 = ((a2 lsr 2) lxor (a2 lsr 13) lxor (a2 lsr 22)) land mask in
    let maj = (a' land !b) lxor (a' land !c) lxor (!b land !c) in
    let t2 = s0 + maj in
    hh := !g;
    g := !f;
    f := e';
    e := (!d + t1) land mask;
    d := !c;
    c := !b;
    b := a';
    a := (t1 + t2) land mask
  done;
  h.(0) <- (h.(0) + !a) land mask;
  h.(1) <- (h.(1) + !b) land mask;
  h.(2) <- (h.(2) + !c) land mask;
  h.(3) <- (h.(3) + !d) land mask;
  h.(4) <- (h.(4) + !e) land mask;
  h.(5) <- (h.(5) + !f) land mask;
  h.(6) <- (h.(6) + !g) land mask;
  h.(7) <- (h.(7) + !hh) land mask

(* Top-level (not a local closure — those allocate) and tail-recursive with
   int accumulators (not refs — those allocate too): this runs per varchar
   payload on the row-hash hot path, which must not allocate. *)
let rec absorb t buf pos remaining =
  if remaining >= 64 then begin
    compress t buf pos;
    absorb t buf (pos + 64) (remaining - 64)
  end
  else if remaining > 0 then begin
    Bytes.blit buf pos t.block 0 remaining;
    t.block_len <- remaining
  end

(* Shared non-optional-argument core of feed_bytes/feed_string: callers
   have validated [off]/[len]. The optional-argument wrappers would box a
   [Some off]/[Some len] per call if they forwarded to each other. *)
let feed_raw t buf off len =
  if t.finished then invalid_arg "Sha256.feed_bytes: finalised";
  t.total_len <- t.total_len + len;
  (* Top up a partially filled block buffer first. *)
  if t.block_len > 0 then begin
    let take = if len < 64 - t.block_len then len else 64 - t.block_len in
    Bytes.blit buf off t.block t.block_len take;
    t.block_len <- t.block_len + take;
    if t.block_len = 64 then begin
      compress t t.block 0;
      t.block_len <- 0;
      absorb t buf (off + take) (len - take)
    end
  end
  else absorb t buf off len

let feed_bytes t ?(off = 0) ?len buf =
  let len = match len with Some l -> l | None -> Bytes.length buf - off in
  if off < 0 || len < 0 || off + len > Bytes.length buf then
    invalid_arg "Sha256.feed_bytes: invalid range";
  feed_raw t buf off len

let feed_string t ?(off = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - off in
  if off < 0 || len < 0 || off + len > String.length s then
    invalid_arg "Sha256.feed_string: invalid range";
  feed_raw t (Bytes.unsafe_of_string s) off len

let feed_byte t b =
  if t.finished then invalid_arg "Sha256.feed_byte: finalised";
  Bytes.unsafe_set t.block t.block_len (Char.unsafe_chr (b land 0xFF));
  t.total_len <- t.total_len + 1;
  let bl = t.block_len + 1 in
  if bl = 64 then begin
    compress t t.block 0;
    t.block_len <- 0
  end
  else t.block_len <- bl

let feed_be t ~width v =
  if width < 1 || width > 8 then invalid_arg "Sha256.feed_be: width";
  if t.finished then invalid_arg "Sha256.feed_byte: finalised";
  let bl = t.block_len in
  if bl + width <= 64 then begin
    (* Fast path: the whole field fits in the current block — write the
       big-endian bytes directly instead of one feed_byte call each. *)
    let block = t.block in
    for i = 0 to width - 1 do
      Bytes.unsafe_set block (bl + i)
        (Char.unsafe_chr ((v lsr (8 * (width - 1 - i))) land 0xFF))
    done;
    t.total_len <- t.total_len + width;
    let bl = bl + width in
    if bl = 64 then begin
      compress t t.block 0;
      t.block_len <- 0
    end
    else t.block_len <- bl
  end
  else
    for i = width - 1 downto 0 do
      feed_byte t (v lsr (8 * i))
    done

(* Apply the FIPS padding in place, reusing the block buffer: 0x80, zeros,
   then the 64-bit big-endian bit length. No allocation. *)
let pad_and_finish t =
  let total_bits = t.total_len * 8 in
  let bl = t.block_len in
  Bytes.set t.block bl '\x80';
  if bl + 1 > 56 then begin
    Bytes.fill t.block (bl + 1) (64 - bl - 1) '\000';
    compress t t.block 0;
    Bytes.fill t.block 0 56 '\000'
  end
  else Bytes.fill t.block (bl + 1) (56 - bl - 1) '\000';
  for i = 0 to 7 do
    Bytes.set t.block (56 + i)
      (Char.chr ((total_bits lsr (8 * (7 - i))) land 0xFF))
  done;
  compress t t.block 0;
  t.block_len <- 0;
  t.finished <- true

let finish_into t buf ~off =
  if off < 0 || off + 32 > Bytes.length buf then
    invalid_arg "Sha256.finish_into: invalid range";
  if not t.finished then pad_and_finish t;
  let h = t.h in
  for i = 0 to 7 do
    let v = h.(i) in
    Bytes.unsafe_set buf (off + (i * 4)) (Char.unsafe_chr ((v lsr 24) land 0xFF));
    Bytes.unsafe_set buf (off + (i * 4) + 1) (Char.unsafe_chr ((v lsr 16) land 0xFF));
    Bytes.unsafe_set buf (off + (i * 4) + 2) (Char.unsafe_chr ((v lsr 8) land 0xFF));
    Bytes.unsafe_set buf (off + (i * 4) + 3) (Char.unsafe_chr (v land 0xFF))
  done

let get t =
  match t.cached with
  | Some d -> d
  | None ->
      let out = Bytes.create 32 in
      finish_into t out ~off:0;
      let d = Bytes.unsafe_to_string out in
      t.cached <- Some d;
      d

let digest_string s =
  let t = init () in
  feed_string t s;
  get t

let digest_bytes b =
  let t = init () in
  feed_bytes t b;
  get t

let digest_concat parts =
  let t = init () in
  List.iter (fun s -> feed_string t s) parts;
  get t

let hex_of_string s = Hex.encode (digest_string s)
