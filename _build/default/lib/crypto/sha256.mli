(** Pure-OCaml SHA-256 (FIPS 180-4).

    Implemented from scratch because the sealed build environment ships no
    cryptographic library. Validated against the FIPS / NIST short-message
    test vectors in the test suite.

    Contexts are reusable: {!reset} returns a context to its initial state
    without allocating, and {!finish_into} finalises into a caller-provided
    buffer. Together with the byte-granular feeders this supports the
    allocation-free row-hash pipeline on the DML hot path. *)

type t
(** Mutable hashing context. *)

val init : unit -> t
(** Fresh context. *)

val reset : t -> unit
(** Return the context to its just-{!init}ialised state, reusing all internal
    buffers. The previous digest (if any) is forgotten. *)

val feed_bytes : t -> ?off:int -> ?len:int -> bytes -> unit
(** Absorb a byte range. Raises [Invalid_argument] on an invalid range, or if
    the context was already finalised. *)

val feed_string : t -> ?off:int -> ?len:int -> string -> unit
(** Absorb a substring. Same errors as {!feed_bytes}. *)

val feed_byte : t -> int -> unit
(** Absorb a single byte (the low 8 bits of the argument). Allocation-free.
    Raises [Invalid_argument] if the context was already finalised. *)

val feed_be : t -> width:int -> int -> unit
(** Absorb [width] (1..8) bytes of the argument, big-endian: byte [i] is
    [(v lsr (8 * (width - 1 - i))) land 0xFF]. Allocation-free. *)

val get : t -> string
(** Finalise and return the 32-byte raw digest. The context must not be fed
    afterwards; calling [get] again returns the same digest. *)

val finish_into : t -> bytes -> off:int -> unit
(** Finalise and write the 32-byte raw digest at [off]. Idempotent; does not
    allocate. The context must not be fed afterwards (use {!reset}). Raises
    [Invalid_argument] when fewer than 32 bytes are available at [off]. *)

val digest_string : string -> string
(** [digest_string s] is the 32-byte raw digest of [s]. *)

val digest_bytes : bytes -> string
(** Digest of a byte buffer. *)

val digest_concat : string list -> string
(** Digest of the concatenation of the given strings, without building the
    concatenation. *)

val hex_of_string : string -> string
(** Convenience: digest then hex-encode. *)

val digest_size : int
(** 32. *)
