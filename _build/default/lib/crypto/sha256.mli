(** Pure-OCaml SHA-256 (FIPS 180-4).

    Implemented from scratch because the sealed build environment ships no
    cryptographic library. Validated against the FIPS / NIST short-message
    test vectors in the test suite. *)

type t
(** Mutable hashing context. *)

val init : unit -> t
(** Fresh context. *)

val feed_bytes : t -> ?off:int -> ?len:int -> bytes -> unit
(** Absorb a byte range. Raises [Invalid_argument] on an invalid range, or if
    the context was already finalised. *)

val feed_string : t -> ?off:int -> ?len:int -> string -> unit
(** Absorb a substring. Same errors as {!feed_bytes}. *)

val get : t -> string
(** Finalise and return the 32-byte raw digest. The context must not be fed
    afterwards; calling [get] again returns the same digest. *)

val digest_string : string -> string
(** [digest_string s] is the 32-byte raw digest of [s]. *)

val digest_bytes : bytes -> string
(** Digest of a byte buffer. *)

val digest_concat : string list -> string
(** Digest of the concatenation of the given strings, without building the
    concatenation. *)

val hex_of_string : string -> string
(** Convenience: digest then hex-encode. *)

val digest_size : int
(** 32. *)
