(* Classic B+tree. Interior nodes hold separator keys and children; all
   bindings live in the leaves. Separator keys.(i) is the minimum key of the
   subtree kids.(i + 1), so a lookup descends into the rightmost child whose
   separator is <= the probe. Node arrays are copied on modification; with
   the default order of 32 this keeps rebalancing code simple without
   measurable cost. *)

type ('k, 'v) leaf = { mutable keys : 'k array; mutable vals : 'v array }

type ('k, 'v) interior = {
  mutable keys : 'k array;
  mutable kids : ('k, 'v) node array;
}

and ('k, 'v) node = Leaf of ('k, 'v) leaf | Node of ('k, 'v) interior

type ('k, 'v) t = {
  cmp : 'k -> 'k -> int;
  order : int;
  mutable root : ('k, 'v) node;
  mutable size : int;
}

let create ?(order = 32) ~cmp () =
  if order < 4 then invalid_arg "Btree.create: order must be >= 4";
  { cmp; order; root = Leaf { keys = [||]; vals = [||] }; size = 0 }

let length t = t.size

(* Index of the child to descend into: number of separators <= key. *)
let child_index cmp keys key =
  let n = Array.length keys in
  let rec go lo hi =
    (* Invariant: separators < lo are <= key; separators >= hi are > key. *)
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if cmp keys.(mid) key <= 0 then go (mid + 1) hi else go lo mid
  in
  go 0 n

(* Position of [key] in a leaf's key array: [Found i] or [Insert_at i]. *)
type position = Found of int | Insert_at of int

let leaf_position cmp keys key =
  let n = Array.length keys in
  let rec go lo hi =
    if lo >= hi then Insert_at lo
    else
      let mid = (lo + hi) / 2 in
      let c = cmp keys.(mid) key in
      if c = 0 then Found mid
      else if c < 0 then go (mid + 1) hi
      else go lo mid
  in
  go 0 n

let array_insert arr i x =
  let n = Array.length arr in
  let out = Array.make (n + 1) x in
  Array.blit arr 0 out 0 i;
  Array.blit arr i out (i + 1) (n - i);
  out

let array_remove arr i =
  let n = Array.length arr in
  let out = Array.sub arr 0 (n - 1) in
  Array.blit arr (i + 1) out i (n - 1 - i);
  out

let find t key =
  let rec go = function
    | Leaf { keys; vals } -> (
        match leaf_position t.cmp keys key with
        | Found i -> Some vals.(i)
        | Insert_at _ -> None)
    | Node { keys; kids } -> go kids.(child_index t.cmp keys key)
  in
  go t.root

let mem t key = find t key <> None

let min_key = function
  | Leaf { keys; _ } -> if Array.length keys = 0 then None else Some keys.(0)
  | Node _ -> None (* only called on leaves via leftmost descent *)

let rec leftmost = function
  | Leaf _ as l -> l
  | Node { kids; _ } -> leftmost kids.(0)

let subtree_min node =
  match min_key (leftmost node) with
  | Some k -> k
  | None -> failwith "Btree: empty subtree"

(* insert: returns [Some (sep, right)] if the node split, where [sep] is the
   minimum key of [right]. *)
let insert t key value =
  let max_leaf = t.order - 1 in
  let replaced = ref None in
  let rec go node =
    match node with
    | Leaf lf -> (
        match leaf_position t.cmp lf.keys key with
        | Found i ->
            replaced := Some lf.vals.(i);
            let vals = Array.copy lf.vals in
            vals.(i) <- value;
            lf.vals <- vals;
            None
        | Insert_at i ->
            lf.keys <- array_insert lf.keys i key;
            lf.vals <- array_insert lf.vals i value;
            t.size <- t.size + 1;
            if Array.length lf.keys > max_leaf then begin
              let n = Array.length lf.keys in
              let mid = n / 2 in
              let rkeys = Array.sub lf.keys mid (n - mid) in
              let rvals = Array.sub lf.vals mid (n - mid) in
              lf.keys <- Array.sub lf.keys 0 mid;
              lf.vals <- Array.sub lf.vals 0 mid;
              Some (rkeys.(0), Leaf { keys = rkeys; vals = rvals })
            end
            else None)
    | Node nd -> (
        let i = child_index t.cmp nd.keys key in
        match go nd.kids.(i) with
        | None -> None
        | Some (sep, right) ->
            nd.keys <- array_insert nd.keys i sep;
            nd.kids <- array_insert nd.kids (i + 1) right;
            if Array.length nd.kids > t.order then begin
              (* Split interior node: middle separator moves up. *)
              let nk = Array.length nd.keys in
              let mid = nk / 2 in
              let up = nd.keys.(mid) in
              let rkeys = Array.sub nd.keys (mid + 1) (nk - mid - 1) in
              let rkids =
                Array.sub nd.kids (mid + 1) (Array.length nd.kids - mid - 1)
              in
              nd.keys <- Array.sub nd.keys 0 mid;
              nd.kids <- Array.sub nd.kids 0 (mid + 1);
              Some (up, Node { keys = rkeys; kids = rkids })
            end
            else None)
  in
  (match go t.root with
  | None -> ()
  | Some (sep, right) ->
      t.root <- Node { keys = [| sep |]; kids = [| t.root; right |] });
  !replaced

(* Deletion. Returns [true] when the child underflowed and needs fixing by
   the parent. Minimum fill: leaves hold >= (order-1)/2 entries, interior
   nodes >= order/2 children; the root is exempt. *)
let remove t key =
  let min_leaf = (t.order - 1) / 2 in
  let min_kids = t.order / 2 in
  let removed = ref None in
  let underflow = function
    | Leaf { keys; _ } -> Array.length keys < min_leaf
    | Node { kids; _ } -> Array.length kids < min_kids
  in
  let rec go node =
    match node with
    | Leaf lf -> (
        match leaf_position t.cmp lf.keys key with
        | Insert_at _ -> false
        | Found i ->
            removed := Some lf.vals.(i);
            lf.keys <- array_remove lf.keys i;
            lf.vals <- array_remove lf.vals i;
            t.size <- t.size - 1;
            Array.length lf.keys < min_leaf)
    | Node nd ->
        let i = child_index t.cmp nd.keys key in
        let child_underflowed = go nd.kids.(i) in
        if not child_underflowed then begin
          (* The separator may have pointed at the removed key. *)
          if i > 0 && !removed <> None then
            nd.keys.(i - 1) <- subtree_min nd.kids.(i);
          false
        end
        else begin
          fix_child nd i;
          underflow (Node nd)
        end
  and fix_child nd i =
    let borrow_from_left l r =
      match (l, r) with
      | Leaf ll, Leaf rl ->
          let n = Array.length ll.keys in
          let k = ll.keys.(n - 1) and v = ll.vals.(n - 1) in
          ll.keys <- array_remove ll.keys (n - 1);
          ll.vals <- array_remove ll.vals (n - 1);
          rl.keys <- array_insert rl.keys 0 k;
          rl.vals <- array_insert rl.vals 0 v;
          nd.keys.(i - 1) <- k
      | Node ln, Node rn ->
          let nk = Array.length ln.keys in
          let moved_kid = ln.kids.(Array.length ln.kids - 1) in
          let new_sep = ln.keys.(nk - 1) in
          ln.keys <- array_remove ln.keys (nk - 1);
          ln.kids <- array_remove ln.kids (Array.length ln.kids - 1);
          rn.keys <- array_insert rn.keys 0 nd.keys.(i - 1);
          rn.kids <- array_insert rn.kids 0 moved_kid;
          nd.keys.(i - 1) <- new_sep
      | _ -> assert false
    in
    let borrow_from_right l r =
      match (l, r) with
      | Leaf ll, Leaf rl ->
          let k = rl.keys.(0) and v = rl.vals.(0) in
          rl.keys <- array_remove rl.keys 0;
          rl.vals <- array_remove rl.vals 0;
          ll.keys <- array_insert ll.keys (Array.length ll.keys) k;
          ll.vals <- array_insert ll.vals (Array.length ll.vals) v;
          nd.keys.(i) <- rl.keys.(0)
      | Node ln, Node rn ->
          let moved_kid = rn.kids.(0) in
          let new_sep = rn.keys.(0) in
          ln.keys <- array_insert ln.keys (Array.length ln.keys) nd.keys.(i);
          ln.kids <- array_insert ln.kids (Array.length ln.kids) moved_kid;
          rn.keys <- array_remove rn.keys 0;
          rn.kids <- array_remove rn.kids 0;
          nd.keys.(i) <- new_sep
      | _ -> assert false
    in
    let merge left_idx =
      (* Merge kids.(left_idx + 1) into kids.(left_idx). *)
      let sep = nd.keys.(left_idx) in
      (match (nd.kids.(left_idx), nd.kids.(left_idx + 1)) with
      | Leaf ll, Leaf rl ->
          ll.keys <- Array.append ll.keys rl.keys;
          ll.vals <- Array.append ll.vals rl.vals
      | Node ln, Node rn ->
          ln.keys <- Array.concat [ ln.keys; [| sep |]; rn.keys ];
          ln.kids <- Array.append ln.kids rn.kids
      | _ -> assert false);
      nd.keys <- array_remove nd.keys left_idx;
      nd.kids <- array_remove nd.kids (left_idx + 1)
    in
    let can_lend = function
      | Leaf { keys; _ } -> Array.length keys > min_leaf
      | Node { kids; _ } -> Array.length kids > min_kids
    in
    if i > 0 && can_lend nd.kids.(i - 1) then
      borrow_from_left nd.kids.(i - 1) nd.kids.(i)
    else if i < Array.length nd.kids - 1 && can_lend nd.kids.(i + 1) then
      borrow_from_right nd.kids.(i) nd.kids.(i + 1)
    else if i > 0 then merge (i - 1)
    else merge i;
    (* Refresh separators that might be stale after restructuring. *)
    for j = 0 to Array.length nd.keys - 1 do
      nd.keys.(j) <- subtree_min nd.kids.(j + 1)
    done
  in
  ignore (go t.root : bool);
  (* Collapse a root that lost all separators. *)
  (match t.root with
  | Node { kids; _ } when Array.length kids = 1 -> t.root <- kids.(0)
  | _ -> ());
  !removed

let iter f t =
  let rec go = function
    | Leaf { keys; vals } ->
        Array.iteri (fun i k -> f k vals.(i)) keys
    | Node { kids; _ } -> Array.iter go kids
  in
  go t.root

let fold f acc t =
  let acc = ref acc in
  iter (fun k v -> acc := f !acc k v) t;
  !acc

let to_list t = List.rev (fold (fun acc k v -> (k, v) :: acc) [] t)

let range t ?lo ?hi () =
  let keep k =
    (match lo with Some l -> t.cmp l k <= 0 | None -> true)
    && match hi with Some h -> t.cmp k h <= 0 | None -> true
  in
  let out = ref [] in
  let rec go = function
    | Leaf { keys; vals } ->
        Array.iteri (fun i k -> if keep k then out := (k, vals.(i)) :: !out) keys
    | Node { keys; kids } ->
        (* Prune subtrees entirely outside the range. *)
        let n = Array.length kids in
        for i = 0 to n - 1 do
          let sub_lo = if i = 0 then None else Some keys.(i - 1) in
          let sub_hi = if i = n - 1 then None else Some keys.(i) in
          let overlaps =
            (match (hi, sub_lo) with
            | Some h, Some sl -> t.cmp sl h <= 0
            | _ -> true)
            &&
            match (lo, sub_hi) with
            | Some l, Some sh -> t.cmp l sh <= 0
            | _ -> true
          in
          if overlaps then go kids.(i)
        done
  in
  go t.root;
  List.rev !out

let min_binding t =
  match leftmost t.root with
  | Leaf { keys; vals } ->
      if Array.length keys = 0 then None else Some (keys.(0), vals.(0))
  | Node _ -> assert false

let max_binding t =
  let rec rightmost = function
    | Leaf { keys; vals } ->
        let n = Array.length keys in
        if n = 0 then None else Some (keys.(n - 1), vals.(n - 1))
    | Node { kids; _ } -> rightmost kids.(Array.length kids - 1)
  in
  rightmost t.root

let clear t =
  t.root <- Leaf { keys = [||]; vals = [||] };
  t.size <- 0

let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  let min_leaf = (t.order - 1) / 2 in
  let min_kids = t.order / 2 in
  let count = ref 0 in
  let rec go ~is_root node =
    match node with
    | Leaf { keys; vals } ->
        if Array.length keys <> Array.length vals then
          fail "leaf keys/vals length mismatch";
        if (not is_root) && Array.length keys < min_leaf then
          fail "leaf underfull: %d < %d" (Array.length keys) min_leaf;
        if Array.length keys > t.order - 1 then fail "leaf overfull";
        for i = 1 to Array.length keys - 1 do
          if t.cmp keys.(i - 1) keys.(i) >= 0 then fail "leaf keys unsorted"
        done;
        count := !count + Array.length keys
    | Node { keys; kids } ->
        if Array.length kids <> Array.length keys + 1 then
          fail "interior arity mismatch";
        if (not is_root) && Array.length kids < min_kids then
          fail "interior underfull";
        if Array.length kids > t.order then fail "interior overfull";
        for i = 1 to Array.length keys - 1 do
          if t.cmp keys.(i - 1) keys.(i) >= 0 then
            fail "interior keys unsorted"
        done;
        (* A separator need not equal the right subtree's minimum after
           deletions; the search invariant is max(left) < sep <= min(right). *)
        let rec sub_min = function
          | Leaf { keys; _ } -> keys.(0)
          | Node { kids; _ } -> sub_min kids.(0)
        in
        let rec sub_max = function
          | Leaf { keys; _ } -> keys.(Array.length keys - 1)
          | Node { kids; _ } -> sub_max kids.(Array.length kids - 1)
        in
        Array.iteri
          (fun i sep ->
            if t.cmp (sub_max kids.(i)) sep >= 0 then
              fail "separator <= max of left subtree";
            if t.cmp sep (sub_min kids.(i + 1)) > 0 then
              fail "separator > min of right subtree")
          keys;
        Array.iter (go ~is_root:false) kids
  in
  go ~is_root:true t.root;
  if !count <> t.size then fail "size mismatch: %d <> %d" !count t.size
