(** TPC-C-like order-processing workload (paper §4.1.1).

    A faithful-in-spirit scaled-down TPC-C: the nine standard tables, the
    five-transaction mix (new-order 45 %, payment 43 %, order-status 4 %,
    delivery 4 %, stock-level 4 %), NURand key selection. As in the paper,
    the four order/payment-related tables — orders, order_line, new_order
    and history — are converted to ledger tables in the protected
    configuration, the other five stay regular. *)

type config = {
  warehouses : int;
  districts_per_warehouse : int;
  customers_per_district : int;
  items : int;
  ledgered : bool;  (** convert the 4 order tables to ledger tables *)
}

val default_config : config
(** 1 warehouse, 4 districts, 30 customers/district, 100 items — laptop
    scale. *)

type t

val setup : Sql_ledger.Database.t -> config -> t
(** Create and populate the nine tables. *)

type counts = {
  new_orders : int;
  payments : int;
  order_statuses : int;
  deliveries : int;
  stock_levels : int;
}

val run : t -> prng:Prng.t -> transactions:int -> counts
(** Execute the standard mix. Each transaction commits individually. *)

val new_order : t -> prng:Prng.t -> unit
val payment : t -> prng:Prng.t -> unit
val order_status : t -> prng:Prng.t -> unit
val delivery : t -> prng:Prng.t -> unit
val stock_level : t -> prng:Prng.t -> unit

val database : t -> Sql_ledger.Database.t
val config : t -> config
