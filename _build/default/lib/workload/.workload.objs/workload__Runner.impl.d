lib/workload/runner.ml: Float Unix
