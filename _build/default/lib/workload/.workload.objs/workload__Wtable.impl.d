lib/workload/wtable.ml: Database Ledger_table List Option Sql_ledger Storage Txn
