lib/workload/tpce.mli: Prng Sql_ledger
