lib/workload/prng.mli:
