lib/workload/wtable.mli: Relation Sql_ledger
