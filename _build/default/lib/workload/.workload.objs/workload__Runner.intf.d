lib/workload/runner.mli:
