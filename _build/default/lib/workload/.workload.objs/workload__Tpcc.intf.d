lib/workload/tpcc.mli: Prng Sql_ledger
