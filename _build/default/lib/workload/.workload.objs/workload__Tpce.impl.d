lib/workload/tpce.ml: Array Column Database Datatype Float List Option Printf Prng Relation Row Sql_ledger Value Wtable
