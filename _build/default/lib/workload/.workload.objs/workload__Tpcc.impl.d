lib/workload/tpcc.ml: Array Column Database Datatype List Option Printf Prng Relation Row Sql_ledger Value Wtable
