(** TPC-E-like brokerage workload (paper §4.1.1).

    A scaled-down brokerage schema with all 33 TPC-E table names. The paper
    converts every table to a ledger table given the financial nature of
    the data; the [ledgered] flag flips between that configuration and the
    plain baseline. The transaction mix approximates TPC-E's ~10:1
    read/write ratio: trade-order, trade-result and market-feed write;
    trade-status, customer-position, market-watch, security-detail and
    broker-volume read. *)

type config = {
  customers : int;
  securities : int;
  brokers : int;
  ledgered : bool;
}

val default_config : config

type t

val setup : Sql_ledger.Database.t -> config -> t

type counts = {
  trade_orders : int;
  trade_results : int;
  market_feeds : int;
  reads : int;
}

val run : t -> prng:Prng.t -> transactions:int -> counts

val trade_order : t -> prng:Prng.t -> unit
val trade_result : t -> prng:Prng.t -> unit
val market_feed : t -> prng:Prng.t -> unit

val database : t -> Sql_ledger.Database.t
val table_count : t -> int
(** 33. *)
