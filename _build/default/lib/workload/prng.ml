type t = { mutable state : int64; c_const : int }

let golden = 0x9E3779B97F4A7C15L

let next_u64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed =
  let t = { state = Int64.of_int seed; c_const = 0 } in
  let c = Int64.to_int (Int64.logand (next_u64 t) 0x3FFL) in
  { t with c_const = c }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let v = Int64.to_int (next_u64 t) land max_int in
  v mod bound

let range t lo hi =
  if hi < lo then invalid_arg "Prng.range: empty range";
  lo + int t (hi - lo + 1)

let float t x =
  let v = Int64.to_float (Int64.shift_right_logical (next_u64 t) 11) in
  x *. (v /. 9007199254740992.0)

let bool t = Int64.logand (next_u64 t) 1L = 1L

let pick t = function
  | [] -> invalid_arg "Prng.pick: empty list"
  | items -> List.nth items (int t (List.length items))

let nurand t ~a ~x ~y =
  let c = t.c_const mod (a + 1) in
  (((range t 0 a lor range t x y) + c) mod (y - x + 1)) + x

let alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"

let alnum_string t len =
  String.init len (fun _ -> alphabet.[int t (String.length alphabet)])
