(** A workload table that is either a ledger table or a regular table.

    Figure 7 compares the same workload with and without ledger protection;
    this wrapper lets the TPC-C/TPC-E drivers run unchanged against both. *)

type t

val create :
  Sql_ledger.Database.t ->
  ledgered:bool ->
  name:string ->
  columns:Relation.Column.t list ->
  key:string list ->
  t

val create_regular :
  Sql_ledger.Database.t ->
  name:string ->
  columns:Relation.Column.t list ->
  key:string list ->
  t
(** Always a regular table (for the TPC-C tables the paper leaves
    unledgered). *)

val insert : Sql_ledger.Txn.t -> t -> Relation.Row.t -> unit
val update : Sql_ledger.Txn.t -> t -> key:Relation.Row.t -> Relation.Row.t -> unit
val delete : Sql_ledger.Txn.t -> t -> key:Relation.Row.t -> unit
val find : t -> key:Relation.Row.t -> Relation.Row.t option
val scan : t -> Relation.Row.t list

val range :
  t -> lo:Relation.Row.t -> hi:Relation.Row.t -> Relation.Row.t list
(** Clustered-key range scan (inclusive bounds; a short bound row acts as a
    prefix). *)

val row_count : t -> int
val is_ledgered : t -> bool
val name : t -> string
