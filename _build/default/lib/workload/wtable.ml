open Sql_ledger
module Table_store = Storage.Table_store

type t = Ledgered of Ledger_table.t | Plain of Table_store.t

let create db ~ledgered ~name ~columns ~key =
  if ledgered then
    Ledgered (Database.create_ledger_table db ~name ~columns ~key ())
  else Plain (Database.create_regular_table db ~name ~columns ~key ())

let create_regular db ~name ~columns ~key =
  Plain (Database.create_regular_table db ~name ~columns ~key ())

let insert txn t row =
  match t with
  | Ledgered lt -> Txn.insert txn lt row
  | Plain store -> Txn.plain_insert txn store row

let update txn t ~key row =
  match t with
  | Ledgered lt -> Txn.update txn lt ~key row
  | Plain store ->
      ignore key;
      Txn.plain_update txn store row

let delete txn t ~key =
  match t with
  | Ledgered lt -> Txn.delete txn lt ~key
  | Plain store -> Txn.plain_delete txn store ~key

let find t ~key =
  match t with
  | Ledgered lt ->
      Option.map (Ledger_table.user_row lt) (Ledger_table.find lt ~key)
  | Plain store -> Table_store.find store ~key

let scan = function
  | Ledgered lt ->
      List.map (Ledger_table.user_row lt) (Ledger_table.current_rows lt)
  | Plain store -> Table_store.scan store

let range t ~lo ~hi =
  match t with
  | Ledgered lt ->
      Storage.Table_store.range (Ledger_table.main lt) ~lo ~hi ()
      |> List.map (Ledger_table.user_row lt)
  | Plain store -> Storage.Table_store.range store ~lo ~hi ()

let row_count = function
  | Ledgered lt -> Ledger_table.row_count lt
  | Plain store -> Table_store.row_count store

let is_ledgered = function Ledgered _ -> true | Plain _ -> false

let name = function
  | Ledgered lt -> Ledger_table.name lt
  | Plain store -> Table_store.name store
