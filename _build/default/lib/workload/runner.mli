(** Throughput measurement harness for the Figure 7 comparison. *)

type measurement = {
  transactions : int;
  elapsed_s : float;
  tps : float;
}

val time : (unit -> unit) -> float
(** Wall-clock seconds. *)

val measure : transactions:int -> (unit -> unit) -> measurement
(** Run the thunk (which should execute [transactions] transactions) and
    derive throughput. *)

val throughput_delta_pct : baseline:measurement -> ledgered:measurement -> float
(** Percentage difference of the ledgered run against the baseline, negative
    when slower — the number Figure 7 reports. *)
