open Relation
open Sql_ledger

type config = {
  customers : int;
  securities : int;
  brokers : int;
  ledgered : bool;
}

let default_config = { customers = 20; securities = 20; brokers = 5; ledgered = true }

let col = Column.make
let vi = Value.int
let vs s = Value.String s
let vf = Value.float

(* The 33 TPC-E tables. Most are reference data touched only at setup; the
   trading tables receive the write traffic. Schemas are abbreviated but the
   key relationships (customer → account → trade → settlement/holding) are
   real. *)
let reference_specs =
  [
    ("account_permission", [ "ap_ca_id"; "ap_tax_id" ]);
    ("address", [ "ad_id"; "ad_line" ]);
    ("charge", [ "ch_tt_id"; "ch_chrg" ]);
    ("commission_rate", [ "cr_c_tier"; "cr_rate" ]);
    ("company", [ "co_id"; "co_name" ]);
    ("company_competitor", [ "cp_co_id"; "cp_comp_co_id" ]);
    ("customer_taxrate", [ "cx_c_id"; "cx_tx_id" ]);
    ("daily_market", [ "dm_s_symb"; "dm_close" ]);
    ("exchange", [ "ex_id"; "ex_name" ]);
    ("financial", [ "fi_co_id"; "fi_year" ]);
    ("industry", [ "in_id"; "in_name" ]);
    ("news_item", [ "ni_id"; "ni_headline" ]);
    ("news_xref", [ "nx_ni_id"; "nx_co_id" ]);
    ("sector", [ "sc_id"; "sc_name" ]);
    ("status_type", [ "st_id"; "st_name" ]);
    ("taxrate", [ "tx_id"; "tx_name" ]);
    ("trade_type", [ "tt_id"; "tt_name" ]);
    ("watch_item", [ "wi_wl_id"; "wi_s_symb" ]);
    ("watch_list", [ "wl_id"; "wl_c_id" ]);
    ("zip_code", [ "zc_code"; "zc_town" ]);
  ]

type t = {
  db : Database.t;
  cfg : config;
  tables : (string * Wtable.t) list;
  customer : Wtable.t;
  customer_account : Wtable.t;
  broker : Wtable.t;
  security : Wtable.t;
  last_trade : Wtable.t;
  trade : Wtable.t;
  trade_history : Wtable.t;
  trade_request : Wtable.t;
  settlement : Wtable.t;
  cash_transaction : Wtable.t;
  holding : Wtable.t;
  holding_history : Wtable.t;
  holding_summary : Wtable.t;
  mutable next_trade_id : int;
}

let database t = t.db
let table_count t = List.length t.tables

let setup db cfg =
  let make = Wtable.create db ~ledgered:cfg.ledgered in
  (* 20 generic reference tables: (id, payload). *)
  let ref_tables =
    List.map
      (fun (name, cols) ->
        let columns =
          match cols with
          | [ a; b ] ->
              [ col a Datatype.Int; col b (Datatype.Varchar 48) ]
          | _ -> assert false
        in
        ( name,
          make ~name ~columns ~key:[ List.hd cols ] ))
      reference_specs
  in
  let customer =
    make ~name:"customer"
      ~columns:
        [
          col "c_id" Datatype.Int;
          col "c_name" (Datatype.Varchar 32);
          col "c_tier" Datatype.Int;
        ]
      ~key:[ "c_id" ]
  in
  let customer_account =
    make ~name:"customer_account"
      ~columns:
        [
          col "ca_id" Datatype.Int;
          col "ca_c_id" Datatype.Int;
          col "ca_b_id" Datatype.Int;
          col "ca_bal" Datatype.Float;
        ]
      ~key:[ "ca_id" ]
  in
  let broker =
    make ~name:"broker"
      ~columns:
        [
          col "b_id" Datatype.Int;
          col "b_name" (Datatype.Varchar 32);
          col "b_num_trades" Datatype.Int;
          col "b_comm_total" Datatype.Float;
        ]
      ~key:[ "b_id" ]
  in
  let security =
    make ~name:"security"
      ~columns:
        [
          col "s_symb" (Datatype.Varchar 8);
          col "s_name" (Datatype.Varchar 32);
          col "s_ex_id" Datatype.Int;
        ]
      ~key:[ "s_symb" ]
  in
  let last_trade =
    make ~name:"last_trade"
      ~columns:
        [
          col "lt_s_symb" (Datatype.Varchar 8);
          col "lt_price" Datatype.Float;
          col "lt_vol" Datatype.Int;
        ]
      ~key:[ "lt_s_symb" ]
  in
  let trade =
    make ~name:"trade"
      ~columns:
        [
          col "t_id" Datatype.Int;
          col "t_ca_id" Datatype.Int;
          col "t_s_symb" (Datatype.Varchar 8);
          col "t_qty" Datatype.Int;
          col "t_price" Datatype.Float;
          col "t_status" (Datatype.Varchar 4);
          col "t_is_buy" Datatype.Bool;
        ]
      ~key:[ "t_id" ]
  in
  let trade_history =
    make ~name:"trade_history"
      ~columns:
        [
          col "th_t_id" Datatype.Int;
          col "th_seq" Datatype.Int;
          col "th_st_id" (Datatype.Varchar 4);
          col "th_dts" Datatype.Float;
        ]
      ~key:[ "th_t_id"; "th_seq" ]
  in
  let trade_request =
    make ~name:"trade_request"
      ~columns:
        [
          col "tr_t_id" Datatype.Int;
          col "tr_s_symb" (Datatype.Varchar 8);
          col "tr_qty" Datatype.Int;
        ]
      ~key:[ "tr_t_id" ]
  in
  let settlement =
    make ~name:"settlement"
      ~columns:
        [
          col "se_t_id" Datatype.Int;
          col "se_amt" Datatype.Float;
          col "se_due" Datatype.Float;
        ]
      ~key:[ "se_t_id" ]
  in
  let cash_transaction =
    make ~name:"cash_transaction"
      ~columns:
        [
          col "ct_t_id" Datatype.Int;
          col "ct_amt" Datatype.Float;
          col "ct_name" (Datatype.Varchar 48);
        ]
      ~key:[ "ct_t_id" ]
  in
  let holding =
    make ~name:"holding"
      ~columns:
        [
          col "h_ca_id" Datatype.Int;
          col "h_s_symb" (Datatype.Varchar 8);
          col "h_qty" Datatype.Int;
          col "h_price" Datatype.Float;
        ]
      ~key:[ "h_ca_id"; "h_s_symb" ]
  in
  let holding_history =
    make ~name:"holding_history"
      ~columns:
        [
          col "hh_t_id" Datatype.Int;
          col "hh_ca_id" Datatype.Int;
          col "hh_qty" Datatype.Int;
        ]
      ~key:[ "hh_t_id" ]
  in
  let holding_summary =
    make ~name:"holding_summary"
      ~columns:
        [
          col "hs_ca_id" Datatype.Int;
          col "hs_qty" Datatype.Int;
        ]
      ~key:[ "hs_ca_id" ]
  in
  let named =
    [
      ("customer", customer);
      ("customer_account", customer_account);
      ("broker", broker);
      ("security", security);
      ("last_trade", last_trade);
      ("trade", trade);
      ("trade_history", trade_history);
      ("trade_request", trade_request);
      ("settlement", settlement);
      ("cash_transaction", cash_transaction);
      ("holding", holding);
      ("holding_history", holding_history);
      ("holding_summary", holding_summary);
    ]
  in
  let t =
    {
      db;
      cfg;
      tables = ref_tables @ named;
      customer;
      customer_account;
      broker;
      security;
      last_trade;
      trade;
      trade_history;
      trade_request;
      settlement;
      cash_transaction;
      holding;
      holding_history;
      holding_summary;
      next_trade_id = 1;
    }
  in
  let prng = Prng.create 0xE57A7E in
  let (), _ =
    Database.with_txn db ~user:"loader" (fun txn ->
        List.iter
          (fun (name, wt) ->
            ignore name;
            for i = 1 to 25 do
              Wtable.insert txn wt [| vi i; vs (Prng.alnum_string prng 24) |]
            done)
          ref_tables;
        for c = 1 to cfg.customers do
          Wtable.insert txn customer
            [| vi c; vs (Prng.alnum_string prng 20); vi (1 + (c mod 3)) |];
          Wtable.insert txn customer_account
            [| vi c; vi c; vi (1 + (c mod cfg.brokers)); vf 100000.0 |];
          Wtable.insert txn holding_summary [| vi c; vi 0 |]
        done;
        for b = 1 to cfg.brokers do
          Wtable.insert txn broker
            [| vi b; vs (Prng.alnum_string prng 20); vi 0; vf 0.0 |]
        done;
        for s = 1 to cfg.securities do
          let symb = Printf.sprintf "S%04d" s in
          Wtable.insert txn security [| vs symb; vs (Prng.alnum_string prng 20); vi 1 |];
          Wtable.insert txn last_trade
            [| vs symb; vf (10.0 +. Prng.float prng 90.0); vi 0 |]
        done)
  in
  t

let as_int = function Value.Int i -> i | _ -> assert false
let as_float = function Value.Float f -> f | _ -> assert false

let random_symbol t prng =
  Printf.sprintf "S%04d" (Prng.range prng 1 t.cfg.securities)

let trade_order t ~prng =
  let ca = Prng.range prng 1 t.cfg.customers in
  let symb = random_symbol t prng in
  let qty = Prng.range prng 1 100 in
  let is_buy = Prng.bool prng in
  let t_id = t.next_trade_id in
  t.next_trade_id <- t_id + 1;
  let (), _ =
    Database.with_txn t.db ~user:"tpce" (fun txn ->
        let lt = Option.get (Wtable.find t.last_trade ~key:[| vs symb |]) in
        let price = as_float lt.(1) in
        Wtable.insert txn t.trade
          [| vi t_id; vi ca; vs symb; vi qty; vf price; vs "SBMT"; Value.Bool is_buy |];
        Wtable.insert txn t.trade_history
          [| vi t_id; vi 1; vs "SBMT"; vf (Database.now t.db) |];
        Wtable.insert txn t.trade_request [| vi t_id; vs symb; vi qty |])
  in
  ()

let trade_result t ~prng =
  (* Complete the oldest pending trade request, if any. *)
  match Wtable.scan t.trade_request with
  | [] -> trade_order t ~prng
  | req :: _ ->
      let t_id = as_int req.(0) in
      let (), _ =
        Database.with_txn t.db ~user:"tpce" (fun txn ->
            Wtable.delete txn t.trade_request ~key:[| vi t_id |];
            let trow = Option.get (Wtable.find t.trade ~key:[| vi t_id |]) in
            let trow = Row.set trow 5 (vs "CMPT") in
            Wtable.update txn t.trade ~key:[| vi t_id |] trow;
            Wtable.insert txn t.trade_history
              [| vi t_id; vi 2; vs "CMPT"; vf (Database.now t.db) |];
            let qty = as_int trow.(3) in
            let price = as_float trow.(4) in
            let amount = float_of_int qty *. price in
            let signed =
              match trow.(6) with Value.Bool true -> -.amount | _ -> amount
            in
            Wtable.insert txn t.settlement
              [| vi t_id; vf signed; vf (Database.now t.db +. 172800.0) |];
            Wtable.insert txn t.cash_transaction
              [| vi t_id; vf signed; vs "trade settlement" |];
            let ca = as_int trow.(1) in
            let arow =
              Option.get (Wtable.find t.customer_account ~key:[| vi ca |])
            in
            Wtable.update txn t.customer_account ~key:[| vi ca |]
              (Row.set arow 3 (vf (as_float arow.(3) +. signed)));
            let b_id = as_int arow.(2) in
            let brow = Option.get (Wtable.find t.broker ~key:[| vi b_id |]) in
            let brow = Row.set brow 2 (vi (as_int brow.(2) + 1)) in
            let brow = Row.set brow 3 (vf (as_float brow.(3) +. (amount *. 0.01))) in
            Wtable.update txn t.broker ~key:[| vi b_id |] brow;
            (* Update or create the holding. *)
            let symb = trow.(2) in
            let hkey = [| vi ca; symb |] in
            let delta = match trow.(6) with Value.Bool true -> qty | _ -> -qty in
            (match Wtable.find t.holding ~key:hkey with
            | Some hrow ->
                let new_qty = as_int hrow.(2) + delta in
                if new_qty <= 0 then Wtable.delete txn t.holding ~key:hkey
                else
                  Wtable.update txn t.holding ~key:hkey
                    (Row.set hrow 2 (vi new_qty))
            | None ->
                if delta > 0 then
                  Wtable.insert txn t.holding [| vi ca; symb; vi delta; vf price |]);
            Wtable.insert txn t.holding_history [| vi t_id; vi ca; vi delta |];
            let skey = [| vi ca |] in
            let srow = Option.get (Wtable.find t.holding_summary ~key:skey) in
            Wtable.update txn t.holding_summary ~key:skey
              (Row.set srow 1 (vi (as_int srow.(1) + delta))))
      in
      ()

let market_feed t ~prng =
  let (), _ =
    Database.with_txn t.db ~user:"feed" (fun txn ->
        for _ = 1 to 5 do
          let symb = random_symbol t prng in
          let key = [| vs symb |] in
          let row = Option.get (Wtable.find t.last_trade ~key) in
          let drift = Prng.float prng 2.0 -. 1.0 in
          let row = Row.set row 1 (vf (Float.max 1.0 (as_float row.(1) +. drift))) in
          let row = Row.set row 2 (vi (as_int row.(2) + Prng.range prng 1 500)) in
          Wtable.update txn t.last_trade ~key row
        done)
  in
  ()

(* Read-only transactions. The TPC-E read frames are substantial — they
   join accounts, holdings, market and reference data across dozens of
   rows — and that weight is what makes the ledger overhead small on this
   workload (Figure 7). Each frame below touches row counts comparable to
   its TPC-E namesake. *)

let ref_table t name = List.assoc name t.tables

let trade_status t ~prng =
  (* Customer's account, broker, and the 50 most recent trades with their
     status history. *)
  let ca = Prng.range prng 1 t.cfg.customers in
  (match Wtable.find t.customer_account ~key:[| vi ca |] with
  | Some arow -> ignore (Wtable.find t.broker ~key:[| arow.(2) |])
  | None -> ());
  let recent =
    List.filter (fun row -> as_int row.(1) = ca) (Wtable.scan t.trade)
    |> List.rev
    |> List.filteri (fun i _ -> i < 50)
  in
  List.iter
    (fun trow ->
      let t_id = as_int trow.(0) in
      ignore
        (Wtable.range t.trade_history ~lo:[| vi t_id |]
           ~hi:[| vi t_id; vi max_int |]);
      ignore (Wtable.find t.security ~key:[| trow.(2) |]))
    recent

let customer_position t ~prng =
  (* Account balance plus a full portfolio valuation: every holding marked
     to the current market, and the 10 most recent trades' history. *)
  let c = Prng.range prng 1 t.cfg.customers in
  ignore (Wtable.find t.customer ~key:[| vi c |]);
  (match Wtable.find t.customer_account ~key:[| vi c |] with
  | Some arow -> ignore (Wtable.find t.broker ~key:[| arow.(2) |])
  | None -> ());
  ignore (Wtable.find t.holding_summary ~key:[| vi c |]);
  let holdings =
    Wtable.range t.holding ~lo:[| vi c |] ~hi:[| vi c; vs "~~~~~~~~" |]
  in
  let _portfolio_value =
    List.fold_left
      (fun acc hrow ->
        match Wtable.find t.last_trade ~key:[| hrow.(1) |] with
        | Some lt -> acc +. (float_of_int (as_int hrow.(2)) *. as_float lt.(1))
        | None -> acc)
      0.0 holdings
  in
  let recent =
    List.filter (fun row -> as_int row.(1) = c) (Wtable.scan t.trade)
    |> List.rev
    |> List.filteri (fun i _ -> i < 10)
  in
  List.iter
    (fun trow ->
      let t_id = as_int trow.(0) in
      ignore
        (Wtable.range t.trade_history ~lo:[| vi t_id |]
           ~hi:[| vi t_id; vi max_int |]))
    recent

let market_watch t ~prng =
  (* A 20-security watch list marked against reference market data. *)
  let watch_item = ref_table t "watch_item" in
  let daily_market = ref_table t "daily_market" in
  for _ = 1 to 20 do
    let symb = random_symbol t prng in
    ignore (Wtable.find t.last_trade ~key:[| vs symb |]);
    ignore (Wtable.find t.security ~key:[| vs symb |]);
    ignore (Wtable.find watch_item ~key:[| vi (Prng.range prng 1 25) |]);
    ignore (Wtable.find daily_market ~key:[| vi (Prng.range prng 1 25) |])
  done

let security_detail t ~prng =
  (* Security master data: company, exchange, financials, news, and a
     20-day market-history window. *)
  let symb = random_symbol t prng in
  ignore (Wtable.find t.security ~key:[| vs symb |]);
  ignore (Wtable.find t.last_trade ~key:[| vs symb |]);
  List.iter
    (fun table ->
      ignore
        (Wtable.find (ref_table t table) ~key:[| vi (Prng.range prng 1 25) |]))
    [ "company"; "exchange"; "financial"; "industry"; "sector" ];
  let daily_market = ref_table t "daily_market" in
  for day = 1 to 20 do
    ignore (Wtable.find daily_market ~key:[| vi ((day mod 25) + 1) |])
  done;
  let news_item = ref_table t "news_item" in
  let news_xref = ref_table t "news_xref" in
  for _ = 1 to 2 do
    let n = Prng.range prng 1 25 in
    ignore (Wtable.find news_xref ~key:[| vi n |]);
    ignore (Wtable.find news_item ~key:[| vi n |])
  done

let broker_volume t ~prng =
  (* Volume report across all brokers' pending requests. *)
  let b = Prng.range prng 1 t.cfg.brokers in
  ignore (Wtable.find t.broker ~key:[| vi b |]);
  let requests = Wtable.scan t.trade_request in
  let _volume =
    List.fold_left
      (fun acc row ->
        ignore (Wtable.find t.last_trade ~key:[| row.(1) |]);
        acc + as_int row.(2))
      0 requests
  in
  ignore
    (Wtable.find (ref_table t "commission_rate")
       ~key:[| vi (Prng.range prng 1 25) |])

type counts = {
  trade_orders : int;
  trade_results : int;
  market_feeds : int;
  reads : int;
}

let run t ~prng ~transactions =
  let counts =
    ref { trade_orders = 0; trade_results = 0; market_feeds = 0; reads = 0 }
  in
  for _ = 1 to transactions do
    let roll = Prng.int prng 1000 in
    (* Writes ~23%: trade-order 10%, trade-result 10%, market-feed 3%;
       reads 77%, approximating TPC-E's read-heavy mix. *)
    if roll < 100 then begin
      trade_order t ~prng;
      counts := { !counts with trade_orders = !counts.trade_orders + 1 }
    end
    else if roll < 200 then begin
      trade_result t ~prng;
      counts := { !counts with trade_results = !counts.trade_results + 1 }
    end
    else if roll < 230 then begin
      market_feed t ~prng;
      counts := { !counts with market_feeds = !counts.market_feeds + 1 }
    end
    else begin
      (match Prng.int prng 5 with
      | 0 -> trade_status t ~prng
      | 1 -> customer_position t ~prng
      | 2 -> market_watch t ~prng
      | 3 -> security_detail t ~prng
      | _ -> broker_volume t ~prng);
      counts := { !counts with reads = !counts.reads + 1 }
    end
  done;
  !counts
