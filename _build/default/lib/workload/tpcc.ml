open Relation
open Sql_ledger

type config = {
  warehouses : int;
  districts_per_warehouse : int;
  customers_per_district : int;
  items : int;
  ledgered : bool;
}

let default_config =
  {
    warehouses = 1;
    districts_per_warehouse = 4;
    customers_per_district = 30;
    items = 100;
    ledgered = true;
  }

type t = {
  db : Database.t;
  cfg : config;
  warehouse : Wtable.t;
  district : Wtable.t;
  customer : Wtable.t;
  history : Wtable.t;   (* ledgered *)
  new_order_t : Wtable.t;  (* ledgered *)
  orders : Wtable.t;    (* ledgered *)
  order_line : Wtable.t;  (* ledgered *)
  item : Wtable.t;
  stock : Wtable.t;
  mutable next_history_id : int;
}

let database t = t.db
let config t = t.cfg

let vi = Value.int
let vs s = Value.String s
let vf = Value.float

let col = Column.make

let setup db cfg =
  let regular = Wtable.create_regular db in
  let maybe_ledgered = Wtable.create db ~ledgered:cfg.ledgered in
  let warehouse =
    regular ~name:"warehouse"
      ~columns:
        [
          col "w_id" Datatype.Int;
          col "w_name" (Datatype.Varchar 10);
          col "w_tax" Datatype.Float;
          col "w_ytd" Datatype.Float;
        ]
      ~key:[ "w_id" ]
  in
  let district =
    regular ~name:"district"
      ~columns:
        [
          col "d_w_id" Datatype.Int;
          col "d_id" Datatype.Int;
          col "d_name" (Datatype.Varchar 10);
          col "d_tax" Datatype.Float;
          col "d_ytd" Datatype.Float;
          col "d_next_o_id" Datatype.Int;
        ]
      ~key:[ "d_w_id"; "d_id" ]
  in
  let customer =
    regular ~name:"customer"
      ~columns:
        [
          col "c_w_id" Datatype.Int;
          col "c_d_id" Datatype.Int;
          col "c_id" Datatype.Int;
          col "c_name" (Datatype.Varchar 24);
          col "c_balance" Datatype.Float;
          col "c_ytd_payment" Datatype.Float;
          col "c_payment_cnt" Datatype.Int;
        ]
      ~key:[ "c_w_id"; "c_d_id"; "c_id" ]
  in
  let history =
    maybe_ledgered ~name:"history"
      ~columns:
        [
          col "h_id" Datatype.Int;
          col "h_c_id" Datatype.Int;
          col "h_d_id" Datatype.Int;
          col "h_w_id" Datatype.Int;
          col "h_amount" Datatype.Float;
          col "h_data" (Datatype.Varchar 24);
        ]
      ~key:[ "h_id" ]
  in
  let new_order_t =
    maybe_ledgered ~name:"new_order"
      ~columns:
        [
          col "no_w_id" Datatype.Int;
          col "no_d_id" Datatype.Int;
          col "no_o_id" Datatype.Int;
        ]
      ~key:[ "no_w_id"; "no_d_id"; "no_o_id" ]
  in
  let orders =
    maybe_ledgered ~name:"orders"
      ~columns:
        [
          col "o_w_id" Datatype.Int;
          col "o_d_id" Datatype.Int;
          col "o_id" Datatype.Int;
          col "o_c_id" Datatype.Int;
          col ~nullable:true "o_carrier_id" Datatype.Int;
          col "o_ol_cnt" Datatype.Int;
          col "o_entry_d" Datatype.Float;
        ]
      ~key:[ "o_w_id"; "o_d_id"; "o_id" ]
  in
  let order_line =
    maybe_ledgered ~name:"order_line"
      ~columns:
        [
          col "ol_w_id" Datatype.Int;
          col "ol_d_id" Datatype.Int;
          col "ol_o_id" Datatype.Int;
          col "ol_number" Datatype.Int;
          col "ol_i_id" Datatype.Int;
          col "ol_quantity" Datatype.Int;
          col "ol_amount" Datatype.Float;
          col ~nullable:true "ol_delivery_d" Datatype.Float;
        ]
      ~key:[ "ol_w_id"; "ol_d_id"; "ol_o_id"; "ol_number" ]
  in
  let item =
    regular ~name:"item"
      ~columns:
        [
          col "i_id" Datatype.Int;
          col "i_name" (Datatype.Varchar 24);
          col "i_price" Datatype.Float;
        ]
      ~key:[ "i_id" ]
  in
  let stock =
    regular ~name:"stock"
      ~columns:
        [
          col "s_w_id" Datatype.Int;
          col "s_i_id" Datatype.Int;
          col "s_quantity" Datatype.Int;
          col "s_ytd" Datatype.Int;
          col "s_order_cnt" Datatype.Int;
        ]
      ~key:[ "s_w_id"; "s_i_id" ]
  in
  let t =
    {
      db;
      cfg;
      warehouse;
      district;
      customer;
      history;
      new_order_t;
      orders;
      order_line;
      item;
      stock;
      next_history_id = 1;
    }
  in
  (* Populate. *)
  let prng = Prng.create 0xC0FFEE in
  let (), _ =
    Database.with_txn db ~user:"loader" (fun txn ->
        for w = 1 to cfg.warehouses do
          Wtable.insert txn warehouse
            [| vi w; vs (Printf.sprintf "WH%02d" w); vf 0.07; vf 0.0 |];
          for d = 1 to cfg.districts_per_warehouse do
            Wtable.insert txn district
              [|
                vi w; vi d;
                vs (Printf.sprintf "D%02d" d);
                vf 0.05; vf 0.0; vi 1;
              |];
            for c = 1 to cfg.customers_per_district do
              Wtable.insert txn customer
                [|
                  vi w; vi d; vi c;
                  vs (Prng.alnum_string prng 16);
                  vf 0.0; vf 0.0; vi 0;
                |]
            done
          done;
          for i = 1 to cfg.items do
            Wtable.insert txn stock [| vi w; vi i; vi 50; vi 0; vi 0 |]
          done
        done;
        for i = 1 to cfg.items do
          Wtable.insert txn item
            [|
              vi i;
              vs (Prng.alnum_string prng 16);
              vf (1.0 +. Prng.float prng 99.0);
            |]
        done)
  in
  t

let as_int = function Value.Int i -> i | _ -> assert false
let as_float = function Value.Float f -> f | _ -> assert false

let random_wd t prng =
  let w = Prng.range prng 1 t.cfg.warehouses in
  let d = Prng.range prng 1 t.cfg.districts_per_warehouse in
  (w, d)

let random_customer t prng =
  Prng.nurand prng ~a:1023 ~x:1 ~y:t.cfg.customers_per_district

let random_item t prng = Prng.nurand prng ~a:8191 ~x:1 ~y:t.cfg.items

let new_order t ~prng =
  let w, d = random_wd t prng in
  let c = random_customer t prng in
  let ol_cnt = Prng.range prng 5 15 in
  let (), _ =
    Database.with_txn t.db ~user:"tpcc" (fun txn ->
        let dkey = [| vi w; vi d |] in
        let drow = Option.get (Wtable.find t.district ~key:dkey) in
        let o_id = as_int drow.(5) in
        Wtable.update txn t.district ~key:dkey (Row.set drow 5 (vi (o_id + 1)));
        Wtable.insert txn t.orders
          [|
            vi w; vi d; vi o_id; vi c; Value.Null; vi ol_cnt;
            vf (Database.now t.db);
          |];
        Wtable.insert txn t.new_order_t [| vi w; vi d; vi o_id |];
        for ol = 1 to ol_cnt do
          let i_id = random_item t prng in
          let irow = Option.get (Wtable.find t.item ~key:[| vi i_id |]) in
          let price = as_float irow.(2) in
          let qty = Prng.range prng 1 10 in
          let skey = [| vi w; vi i_id |] in
          let srow = Option.get (Wtable.find t.stock ~key:skey) in
          let s_qty = as_int srow.(2) in
          let new_qty = if s_qty - qty >= 10 then s_qty - qty else s_qty - qty + 91 in
          let srow = Row.set srow 2 (vi new_qty) in
          let srow = Row.set srow 3 (vi (as_int srow.(3) + qty)) in
          let srow = Row.set srow 4 (vi (as_int srow.(4) + 1)) in
          Wtable.update txn t.stock ~key:skey srow;
          Wtable.insert txn t.order_line
            [|
              vi w; vi d; vi o_id; vi ol; vi i_id; vi qty;
              vf (float_of_int qty *. price);
              Value.Null;
            |]
        done)
  in
  ()

let payment t ~prng =
  let w, d = random_wd t prng in
  let c = random_customer t prng in
  let amount = 1.0 +. Prng.float prng 4999.0 in
  let (), _ =
    Database.with_txn t.db ~user:"tpcc" (fun txn ->
        let wkey = [| vi w |] in
        let wrow = Option.get (Wtable.find t.warehouse ~key:wkey) in
        Wtable.update txn t.warehouse ~key:wkey
          (Row.set wrow 3 (vf (as_float wrow.(3) +. amount)));
        let dkey = [| vi w; vi d |] in
        let drow = Option.get (Wtable.find t.district ~key:dkey) in
        Wtable.update txn t.district ~key:dkey
          (Row.set drow 4 (vf (as_float drow.(4) +. amount)));
        let ckey = [| vi w; vi d; vi c |] in
        let crow = Option.get (Wtable.find t.customer ~key:ckey) in
        let crow = Row.set crow 4 (vf (as_float crow.(4) -. amount)) in
        let crow = Row.set crow 5 (vf (as_float crow.(5) +. amount)) in
        let crow = Row.set crow 6 (vi (as_int crow.(6) + 1)) in
        Wtable.update txn t.customer ~key:ckey crow;
        let h_id = t.next_history_id in
        t.next_history_id <- h_id + 1;
        Wtable.insert txn t.history
          [|
            vi h_id; vi c; vi d; vi w; vf amount;
            vs (Prng.alnum_string prng 12);
          |])
  in
  ()

let district_prefix w d = ([| vi w; vi d |], [| vi w; vi d; vi max_int |])

let order_status t ~prng =
  (* Read-only: the customer's most recent order and its lines, via
     clustered-prefix range scans. *)
  let w, d = random_wd t prng in
  let c = random_customer t prng in
  let _crow = Wtable.find t.customer ~key:[| vi w; vi d; vi c |] in
  let lo, hi = district_prefix w d in
  let orders =
    List.filter (fun row -> as_int row.(3) = c) (Wtable.range t.orders ~lo ~hi)
  in
  match List.rev orders with
  | [] -> ()
  | last :: _ ->
      let o_id = as_int last.(2) in
      let _lines =
        Wtable.range t.order_line ~lo:[| vi w; vi d; vi o_id |]
          ~hi:[| vi w; vi d; vi o_id; vi max_int |]
      in
      ()

let delivery t ~prng =
  let w = Prng.range prng 1 t.cfg.warehouses in
  let carrier = Prng.range prng 1 10 in
  let (), _ =
    Database.with_txn t.db ~user:"tpcc" (fun txn ->
        for d = 1 to t.cfg.districts_per_warehouse do
          (* Oldest undelivered order in the district, if any. *)
          let lo, hi = district_prefix w d in
          let pending = Wtable.range t.new_order_t ~lo ~hi in
          match pending with
          | [] -> ()
          | oldest :: _ ->
              let o_id = as_int oldest.(2) in
              Wtable.delete txn t.new_order_t ~key:[| vi w; vi d; vi o_id |];
              let okey = [| vi w; vi d; vi o_id |] in
              (match Wtable.find t.orders ~key:okey with
              | None -> ()
              | Some orow ->
                  Wtable.update txn t.orders ~key:okey
                    (Row.set orow 4 (vi carrier));
                  let amount = ref 0.0 in
                  List.iter
                    (fun line ->
                      amount := !amount +. as_float line.(6);
                      let key = [| vi w; vi d; vi o_id; line.(3) |] in
                      Wtable.update txn t.order_line ~key
                        (Row.set line 7 (vf (Database.now t.db))))
                    (Wtable.range t.order_line
                       ~lo:[| vi w; vi d; vi o_id |]
                       ~hi:[| vi w; vi d; vi o_id; vi max_int |]);
                  let c = as_int orow.(3) in
                  let ckey = [| vi w; vi d; vi c |] in
                  let crow = Option.get (Wtable.find t.customer ~key:ckey) in
                  Wtable.update txn t.customer ~key:ckey
                    (Row.set crow 4 (vf (as_float crow.(4) +. !amount))))
        done)
  in
  ()

let stock_level t ~prng =
  (* Read-only: count stock below threshold for the district's 20 most
     recent orders' lines (TPC-C clause 2.8 shape). *)
  let w, d = random_wd t prng in
  let threshold = Prng.range prng 10 20 in
  let dkey = [| vi w; vi d |] in
  let next_o_id =
    match Wtable.find t.district ~key:dkey with
    | Some drow -> as_int drow.(5)
    | None -> 1
  in
  let low = ref 0 in
  List.iter
    (fun line ->
      match Wtable.find t.stock ~key:[| vi w; line.(4) |] with
      | Some srow -> if as_int srow.(2) < threshold then incr low
      | None -> ())
    (Wtable.range t.order_line
       ~lo:[| vi w; vi d; vi (max 1 (next_o_id - 20)) |]
       ~hi:[| vi w; vi d; vi max_int |]);
  ignore !low

type counts = {
  new_orders : int;
  payments : int;
  order_statuses : int;
  deliveries : int;
  stock_levels : int;
}

let run t ~prng ~transactions =
  let counts =
    ref
      {
        new_orders = 0;
        payments = 0;
        order_statuses = 0;
        deliveries = 0;
        stock_levels = 0;
      }
  in
  for _ = 1 to transactions do
    let roll = Prng.int prng 100 in
    if roll < 45 then begin
      new_order t ~prng;
      counts := { !counts with new_orders = !counts.new_orders + 1 }
    end
    else if roll < 88 then begin
      payment t ~prng;
      counts := { !counts with payments = !counts.payments + 1 }
    end
    else if roll < 92 then begin
      order_status t ~prng;
      counts := { !counts with order_statuses = !counts.order_statuses + 1 }
    end
    else if roll < 96 then begin
      delivery t ~prng;
      counts := { !counts with deliveries = !counts.deliveries + 1 }
    end
    else begin
      stock_level t ~prng;
      counts := { !counts with stock_levels = !counts.stock_levels + 1 }
    end
  done;
  !counts
