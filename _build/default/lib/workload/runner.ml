type measurement = { transactions : int; elapsed_s : float; tps : float }

let time f =
  let start = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. start

let measure ~transactions f =
  let elapsed_s = time f in
  {
    transactions;
    elapsed_s;
    tps = float_of_int transactions /. Float.max 1e-9 elapsed_s;
  }

let throughput_delta_pct ~baseline ~ledgered =
  (ledgered.tps -. baseline.tps) /. baseline.tps *. 100.0
