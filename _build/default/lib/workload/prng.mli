(** Deterministic PRNG (splitmix64) for reproducible workload generation.

    The standard library's [Random] is avoided so that runs are bit-stable
    across OCaml versions and the TPC-C NURand constant-selection rules can
    be honoured. *)

type t

val create : int -> t
(** Seeded generator. *)

val int : t -> int -> int
(** [int t bound] ∈ [0, bound). Raises [Invalid_argument] when bound <= 0. *)

val range : t -> int -> int -> int
(** [range t lo hi] ∈ [lo, hi] inclusive. *)

val float : t -> float -> float
(** [float t x] ∈ [0, x). *)

val bool : t -> bool

val pick : t -> 'a list -> 'a
(** Uniform choice. Raises [Invalid_argument] on an empty list. *)

val nurand : t -> a:int -> x:int -> y:int -> int
(** TPC-C NURand(A, x, y) non-uniform distribution (clause 2.1.6), with a
    fixed C constant derived from the seed. *)

val alnum_string : t -> int -> string
(** Random alphanumeric string of the given length. *)
