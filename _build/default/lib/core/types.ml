(* Shared vocabulary of the SQL Ledger core. *)

(** A transaction entry of the Database Ledger (§3.3.1): one row of the
    "database_ledger_transactions" system table. *)
type txn_entry = {
  txn_id : int;
  block_id : int;  (** block this transaction was assigned to *)
  ordinal : int;   (** position within the block *)
  commit_ts : float;
  user : string;
  table_roots : (int * string) list;
      (** (ledger table id → Merkle root over row versions written there),
          sorted by table id; roots are raw 32-byte hashes *)
}

(** A closed block of the Database Ledger blockchain: one row of the
    "database_ledger_blocks" system table. *)
type block = {
  block_id : int;
  prev_hash : string;  (** raw hash of the previous block; "" for block 0 *)
  txn_root : string;   (** Merkle root over the block's transaction entries *)
  txn_count : int;
  closed_ts : float;
}

type operation = Insert | Delete

let operation_to_string = function Insert -> "INSERT" | Delete -> "DELETE"

(** One row version as exposed by ledger views and consumed by verification
    invariant 4: the version's creating or deleting operation. *)
type version = {
  v_txn_id : int;
  v_seq : int;
  v_op : operation;
  v_hash : string;  (** raw 32-byte row-version hash *)
  v_row : Relation.Row.t;  (** full stored row (extended schema) *)
}

exception Ledger_error of string

let errorf fmt = Printf.ksprintf (fun s -> raise (Ledger_error s)) fmt

(* Canonical JSON for per-table Merkle roots, stored in the transactions
   system table and covered by the entry hash. *)
let table_roots_to_json roots =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) roots in
  Sjson.List
    (List.map
       (fun (tid, root) ->
         Sjson.Obj
           [
             ("table_id", Sjson.Int tid);
             ("root", Sjson.String (Ledger_crypto.Hex.encode root));
           ])
       sorted)

let table_roots_to_string roots = Sjson.to_string (table_roots_to_json roots)

let table_roots_of_string s =
  match Sjson.of_string s with
  | exception Sjson.Parse_error e -> Error e
  | Sjson.List items -> (
      try
        Ok
          (List.map
             (fun item ->
               ( Sjson.get_int (Sjson.member "table_id" item),
                 Ledger_crypto.Hex.decode
                   (Sjson.get_string (Sjson.member "root" item)) ))
             items)
      with Invalid_argument e -> Error e)
  | _ -> Error "table_roots: expected a JSON array"
