(** Recovery from detected tampering (paper §3.7).

    The paper distinguishes tampered data that does not influence later
    transactions (category 1: repair in place from a verified backup) from
    data that does (category 2: restore the backup and re-execute later
    transactions). This module implements the mechanics of both paths; the
    categorisation itself is the operator's call. *)

type row_diff = {
  table : string;
  key : Relation.Row.t;
  in_backup : Relation.Row.t option;  (** [None]: row was maliciously added *)
  in_current : Relation.Row.t option; (** [None]: row was maliciously deleted *)
}

val diff_table : backup:Database.t -> current:Database.t -> table:string -> row_diff list
(** Rows of a ledger table (main and history) differing between a verified
    backup and the current database — the repair worklist. *)

val repair_from_backup :
  backup:Database.t -> current:Database.t -> table:string -> int
(** Category-1 repair: restore every differing stored row of [table] from
    the backup (writing directly to storage, i.e. restoring the original
    bytes). Returns the number of rows repaired. After repairing all
    affected tables, verification succeeds again because the original
    hashed bytes are back in place. *)

type advice =
  | Repair_in_place of string list
      (** verification failed only with row-level divergences in these
          tables; restore their bytes from a verified backup *)
  | Restore_and_replay
      (** ledger structure itself (blocks/entries/chain) is damaged, or
          tampered data may have influenced later transactions: restore the
          latest verifiable backup and re-execute subsequent transactions *)

val assess : Verifier.report -> advice
(** Conservative classification of a failed verification report. *)
