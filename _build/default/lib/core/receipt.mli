(** Transaction receipts for non-repudiation (paper §5.1).

    A receipt proves that a transaction is part of the ledger even if the
    ledger is later tampered with or destroyed: it carries the transaction
    entry, the Merkle proof connecting the entry's hash to the block's
    transaction-tree root, the block header, and a signature over the block
    hash under the block's one-time key. One signing operation per block
    covers receipts for every transaction in it. *)

type t = {
  entry : Types.txn_entry;
  proof : Merkle.Proof.t;
  block : Types.block;
  public_key : Ledger_crypto.Lamport.public_key option;
  signature : Ledger_crypto.Lamport.signature option;
}

val generate : Database.t -> txn_id:int -> (t, string) result
(** The transaction must already be in a closed block (generate a digest
    first to close the current block). Includes a signature when the
    database was created with a signing seed. *)

val verify :
  ?digest:Digest.t ->
  ?expected_fingerprint:string ->
  t ->
  (unit, string) result
(** Standalone verification, requiring no database: recomputes the entry
    hash, replays the Merkle proof against the block's transaction root, and
    recomputes the block hash. When present, the signature is checked
    against the included public key; [expected_fingerprint] additionally
    pins that key. [digest] anchors the block hash to an externally stored
    digest of the same block. *)

val to_json : t -> Sjson.t
val of_json : Sjson.t -> (t, string) result
val to_string : t -> string
val of_string : string -> (t, string) result
