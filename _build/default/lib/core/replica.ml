module LR = Aries.Log_record

type t = {
  clock : unit -> float;
  mutable db : Database.t option;
  mutable last_lsn : Aries.Wal.lsn;
  mutable last_commit_ts : float;
  pending : (int, Sjson.t) Hashtbl.t;  (* txn_id -> buffered DATA payload *)
}

let create ?(clock = Unix.gettimeofday) () =
  { clock; db = None; last_lsn = 0; last_commit_ts = 0.; pending = Hashtbl.create 16 }

let database t = t.db
let replicated_upto t = t.last_commit_ts
let last_lsn t = t.last_lsn

let apply_record t record =
  match (record, t.db) with
  | LR.Ddl { payload }, None ->
      if Sjson.member "ddl" payload = Sjson.String "create_database" then begin
        t.db <- Some (Wal_replay.shell_of_header ~clock:t.clock payload);
        Ok ()
      end
      else Error "replica stream does not start with a creation record"
  | _, None -> Error "replica has no database yet"
  | LR.Ddl { payload }, Some db ->
      if Sjson.member "ddl" payload = Sjson.String "create_database" then Ok ()
      else Database.apply_structural_ddl db payload
  | LR.Data { txn_id; ops }, Some _ ->
      (* Buffer until the COMMIT arrives: the replica never exposes
         uncommitted state. *)
      Hashtbl.replace t.pending txn_id ops;
      Ok ()
  | LR.Commit c, Some db ->
      let result =
        match Hashtbl.find_opt t.pending c.LR.txn_id with
        | Some ops -> Wal_replay.apply_committed_ops db ~txn_id:c.LR.txn_id ops
        | None -> Ok ()
      in
      Hashtbl.remove t.pending c.LR.txn_id;
      (match result with
      | Ok () ->
          Database_ledger.replay_commit (Database.ledger db)
            {
              Types.txn_id = c.LR.txn_id;
              block_id = c.LR.block_id;
              ordinal = c.LR.ordinal;
              commit_ts = c.LR.commit_ts;
              user = c.LR.user;
              table_roots = c.LR.table_roots;
            };
          t.last_commit_ts <- Float.max t.last_commit_ts c.LR.commit_ts;
          Ok ()
      | Error _ as e -> e)
  | LR.Abort { txn_id }, Some db ->
      Hashtbl.remove t.pending txn_id;
      Database_ledger.note_txn_id (Database.ledger db) txn_id;
      Ok ()
  | LR.Begin { txn_id }, Some db ->
      Database_ledger.note_txn_id (Database.ledger db) txn_id;
      Ok ()
  | LR.Block_close _, Some db ->
      Database_ledger.replay_block_close (Database.ledger db);
      Ok ()
  | LR.Checkpoint _, Some db ->
      Database_ledger.checkpoint (Database.ledger db);
      Ok ()

let feed t records =
  let rec go = function
    | [] -> Ok ()
    | (lsn, _) :: rest when lsn <= t.last_lsn -> go rest
    | (lsn, record) :: rest -> (
        match apply_record t record with
        | Ok () ->
            t.last_lsn <- lsn;
            go rest
        | Error _ as e -> e)
  in
  go records

let feed_from_file t ~wal_path =
  match Aries.Wal.load wal_path with
  | Error e -> Error e
  | Ok records -> feed t records

let promote t =
  match t.db with
  | None -> Error "replica never received a creation record"
  | Some db ->
      Hashtbl.reset t.pending;
      Database.refresh_counters db;
      Ok db
