module Hex = Ledger_crypto.Hex

type t = {
  database_id : string;
  db_create_time : float;
  block_id : int;
  block_hash : string;
  digest_time : float;
  last_commit_ts : float;
}

let to_json d =
  Sjson.Obj
    [
      ("database_id", Sjson.String d.database_id);
      ("db_create_time", Sjson.Float d.db_create_time);
      ("block_id", Sjson.Int d.block_id);
      ("hash", Sjson.String (Hex.encode d.block_hash));
      ("digest_time", Sjson.Float d.digest_time);
      ("last_commit_ts", Sjson.Float d.last_commit_ts);
    ]

let float_member name json =
  match Sjson.member name json with
  | Sjson.Float f -> f
  | Sjson.Int i -> float_of_int i
  | _ -> failwith ("digest field " ^ name ^ " must be a number")

let of_json json =
  try
    let hash_hex = Sjson.get_string (Sjson.member "hash" json) in
    if not (Hex.is_hex hash_hex) then failwith "digest hash is not hex";
    Ok
      {
        database_id = Sjson.get_string (Sjson.member "database_id" json);
        db_create_time = float_member "db_create_time" json;
        block_id = Sjson.get_int (Sjson.member "block_id" json);
        block_hash = Hex.decode hash_hex;
        digest_time = float_member "digest_time" json;
        last_commit_ts = float_member "last_commit_ts" json;
      }
  with
  | Failure e | Invalid_argument e -> Error ("malformed digest: " ^ e)

let to_string d = Sjson.to_string ~pretty:true (to_json d)

let of_string s =
  match Sjson.of_string s with
  | exception Sjson.Parse_error e -> Error e
  | json -> of_json json

let list_to_json ds = Sjson.List (List.map to_json ds)

let list_of_json = function
  | Sjson.List items ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest -> (
            match of_json item with
            | Ok d -> go (d :: acc) rest
            | Error e -> Error e)
      in
      go [] items
  | _ -> Error "expected a JSON array of digests"

let equal a b =
  String.equal a.database_id b.database_id
  && Float.equal a.db_create_time b.db_create_time
  && a.block_id = b.block_id
  && String.equal a.block_hash b.block_hash

let pp fmt d =
  Format.fprintf fmt "digest{db=%s block=%d hash=%s}" d.database_id d.block_id
    (Hex.encode d.block_hash)
