module Hex = Ledger_crypto.Hex
module Lamport = Ledger_crypto.Lamport

type t = {
  entry : Types.txn_entry;
  proof : Merkle.Proof.t;
  block : Types.block;
  public_key : Lamport.public_key option;
  signature : Lamport.signature option;
}

let generate db ~txn_id =
  let dbl = Database.ledger db in
  match Database_ledger.find_entry dbl ~txn_id with
  | None -> Error (Printf.sprintf "transaction %d is not in the ledger" txn_id)
  | Some entry ->
      let blocks = Database_ledger.blocks dbl in
      (match
         List.find_opt
           (fun (b : Types.block) -> b.block_id = entry.block_id)
           blocks
       with
      | None ->
          Error
            (Printf.sprintf
               "transaction %d is in the open block; generate a digest to \
                close it first"
               txn_id)
      | Some block ->
          let entries = Database_ledger.entries_of_block dbl ~block_id:block.block_id in
          let leaves = List.map Database_ledger.entry_hash entries in
          let tree = Merkle.Tree.of_leaves leaves in
          if not (String.equal (Merkle.Tree.root tree) block.txn_root) then
            Error "ledger is internally inconsistent; run verification"
          else begin
            let proof = Merkle.Tree.proof tree entry.ordinal in
            let pk, signature =
              match Database_ledger.block_signature dbl ~block_id:block.block_id with
              | Some (pk, s) -> (Some pk, Some s)
              | None -> (None, None)
            in
            Ok { entry; proof; block; public_key = pk; signature }
          end)

let verify ?digest ?expected_fingerprint r =
  let entry_hash = Database_ledger.entry_hash r.entry in
  if r.entry.block_id <> r.block.block_id then
    Error "receipt entry and block disagree on the block id"
  else if
    not
      (Merkle.Proof.verify ~root:r.block.txn_root ~leaf:entry_hash r.proof)
  then Error "Merkle proof does not connect the transaction to the block root"
  else begin
    let block_hash = Database_ledger.block_hash r.block in
    let check_digest () =
      match digest with
      | None -> Ok ()
      | Some (d : Digest.t) ->
          if d.block_id <> r.block.block_id then
            Error "digest covers a different block"
          else if not (String.equal d.block_hash block_hash) then
            Error "digest hash does not match the receipt's block"
          else Ok ()
    in
    let check_signature () =
      match (r.public_key, r.signature) with
      | None, None -> Ok ()
      | Some pk, Some s ->
          if not (Lamport.verify pk ~msg:block_hash s) then
            Error "block signature is invalid"
          else (
            match expected_fingerprint with
            | Some fp when not (String.equal fp (Lamport.fingerprint pk)) ->
                Error "signing key does not match the expected fingerprint"
            | _ -> Ok ())
      | _ -> Error "receipt has a key without a signature (or vice versa)"
    in
    match check_digest () with
    | Error _ as e -> e
    | Ok () -> check_signature ()
  end

let to_json r =
  let e = r.entry in
  let b = r.block in
  Sjson.Obj
    ([
       ( "entry",
         Sjson.Obj
           [
             ("txn_id", Sjson.Int e.txn_id);
             ("block_id", Sjson.Int e.block_id);
             ("ordinal", Sjson.Int e.ordinal);
             ("commit_ts", Sjson.Float e.commit_ts);
             ("user", Sjson.String e.user);
             ("table_roots", Types.table_roots_to_json e.table_roots);
           ] );
       ("proof", Merkle.Proof.to_json r.proof);
       ( "block",
         Sjson.Obj
           [
             ("block_id", Sjson.Int b.block_id);
             ("prev_hash", Sjson.String (Hex.encode b.prev_hash));
             ("txn_root", Sjson.String (Hex.encode b.txn_root));
             ("txn_count", Sjson.Int b.txn_count);
             ("closed_ts", Sjson.Float b.closed_ts);
           ] );
     ]
    @ (match r.public_key with
      | Some pk ->
          [
            ( "public_key",
              Sjson.String (Hex.encode (Lamport.public_key_to_string pk)) );
          ]
      | None -> [])
    @
    match r.signature with
    | Some s ->
        [ ("signature", Sjson.String (Hex.encode (Lamport.signature_to_string s))) ]
    | None -> [])

let float_member name json =
  match Sjson.member name json with
  | Sjson.Float f -> f
  | Sjson.Int i -> float_of_int i
  | _ -> failwith ("receipt field " ^ name ^ " must be a number")

let of_json json =
  try
    let ej = Sjson.member "entry" json in
    let table_roots =
      match Sjson.member "table_roots" ej with
      | Sjson.List _ as l -> (
          match Types.table_roots_of_string (Sjson.to_string l) with
          | Ok r -> r
          | Error e -> failwith e)
      | _ -> failwith "missing table_roots"
    in
    let entry : Types.txn_entry =
      {
        txn_id = Sjson.get_int (Sjson.member "txn_id" ej);
        block_id = Sjson.get_int (Sjson.member "block_id" ej);
        ordinal = Sjson.get_int (Sjson.member "ordinal" ej);
        commit_ts = float_member "commit_ts" ej;
        user = Sjson.get_string (Sjson.member "user" ej);
        table_roots;
      }
    in
    let proof =
      match Merkle.Proof.of_json (Sjson.member "proof" json) with
      | Some p -> p
      | None -> failwith "malformed proof"
    in
    let bj = Sjson.member "block" json in
    let hex_field name =
      let s = Sjson.get_string (Sjson.member name bj) in
      if s = "" then "" else Hex.decode s
    in
    let block : Types.block =
      {
        block_id = Sjson.get_int (Sjson.member "block_id" bj);
        prev_hash = hex_field "prev_hash";
        txn_root = hex_field "txn_root";
        txn_count = Sjson.get_int (Sjson.member "txn_count" bj);
        closed_ts = float_member "closed_ts" bj;
      }
    in
    let public_key =
      match Sjson.member "public_key" json with
      | Sjson.String s -> (
          match Lamport.public_key_of_string (Hex.decode s) with
          | Some pk -> Some pk
          | None -> failwith "malformed public key")
      | _ -> None
    in
    let signature =
      match Sjson.member "signature" json with
      | Sjson.String s -> (
          match Lamport.signature_of_string (Hex.decode s) with
          | Some sg -> Some sg
          | None -> failwith "malformed signature")
      | _ -> None
    in
    Ok { entry; proof; block; public_key; signature }
  with
  | Failure e | Invalid_argument e -> Error ("malformed receipt: " ^ e)

let to_string r = Sjson.to_string ~pretty:true (to_json r)

let of_string s =
  match Sjson.of_string s with
  | exception Sjson.Parse_error e -> Error e
  | json -> of_json json
