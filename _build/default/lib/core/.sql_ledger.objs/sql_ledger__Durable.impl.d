lib/core/durable.ml: Database Database_ledger Filename Snapshot Sys Unix Wal_replay
