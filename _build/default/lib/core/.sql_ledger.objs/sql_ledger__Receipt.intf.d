lib/core/receipt.mli: Database Digest Ledger_crypto Merkle Sjson Types
