lib/core/wal_replay.ml: Aries Array Database Database_ledger Hashtbl In_channel Ledger_table List Option Printf Relation Result Row Sjson Snapshot Storage Types Unix Value
