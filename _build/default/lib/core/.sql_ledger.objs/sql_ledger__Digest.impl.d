lib/core/digest.ml: Float Format Ledger_crypto List Sjson String
