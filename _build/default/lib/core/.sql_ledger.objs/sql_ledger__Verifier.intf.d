lib/core/verifier.mli: Database Digest Format
