lib/core/dml.mli: Database Format Sqlexec
