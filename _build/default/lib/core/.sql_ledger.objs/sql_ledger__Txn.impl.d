lib/core/txn.ml: Aries Array Database_ledger Ledger_table List Merkle Relation Row Sjson Storage Types Value
