lib/core/txn.ml: Aries Array Database_ledger Hashtbl Ledger_crypto Ledger_table List Merkle Relation Row Sjson Storage Types Value
