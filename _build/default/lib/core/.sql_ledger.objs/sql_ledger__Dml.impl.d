lib/core/dml.ml: Array Column Database Format Ledger_table List Option Printf Relation Row Schema Sqlexec Storage String Txn Types Value
