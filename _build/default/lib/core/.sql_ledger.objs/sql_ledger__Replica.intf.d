lib/core/replica.mli: Aries Database
