lib/core/wal_replay.mli: Aries Database Sjson
