lib/core/database_ledger.mli: Aries Digest Ledger_crypto Relation Sjson Storage Types
