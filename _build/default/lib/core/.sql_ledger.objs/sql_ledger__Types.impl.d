lib/core/types.ml: Ledger_crypto List Printf Relation Sjson
