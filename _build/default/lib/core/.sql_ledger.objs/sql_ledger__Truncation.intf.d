lib/core/truncation.mli: Database Digest Verifier
