lib/core/verifier.ml: Array Database Database_ledger Digest Domain Format Ledger_crypto Ledger_table List Merkle Option Printf Relation Row Sjson Sqlexec Storage String System_columns Types Value
