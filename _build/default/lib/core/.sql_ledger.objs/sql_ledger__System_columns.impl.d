lib/core/system_columns.ml: Array Column Datatype List Relation Schema Types Value
