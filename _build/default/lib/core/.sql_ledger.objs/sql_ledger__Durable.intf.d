lib/core/durable.mli: Database
