lib/core/database_ledger.ml: Aries Array Column Datatype Digest Float Ledger_crypto List Merkle Option Relation Row Schema Sjson Sqlexec Storage Types Unix Value
