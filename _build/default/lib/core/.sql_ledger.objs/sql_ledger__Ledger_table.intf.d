lib/core/ledger_table.mli: Ledger_crypto Relation Storage Types
