lib/core/ledger_table.mli: Relation Storage Types
