lib/core/snapshot.ml: Aries Array Column Database Database_ledger Fun In_channel Ledger_table List Printf Relation Schema Sjson Storage Types Unix Value
