lib/core/database.mli: Database_ledger Digest Ledger_table Relation Sjson Sqlexec Storage Txn Types
