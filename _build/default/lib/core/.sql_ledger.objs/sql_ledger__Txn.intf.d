lib/core/txn.mli: Database_ledger Ledger_table Relation Storage Types
