lib/core/tamper_recovery.mli: Database Relation Verifier
