lib/core/replica.ml: Aries Database Database_ledger Float Hashtbl Sjson Types Unix Wal_replay
