lib/core/database.ml: Aries Array Column Database_ledger Datatype Ledger_crypto Ledger_table List Printf Relation Row Schema Sjson Sqlexec Storage String System_columns Txn Types Unix Value
