lib/core/digest.mli: Format Sjson
