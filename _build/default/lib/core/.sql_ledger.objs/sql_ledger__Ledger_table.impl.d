lib/core/ledger_table.ml: Array Column List Option Printf Relation Row Row_codec Schema Storage System_columns Types Value
