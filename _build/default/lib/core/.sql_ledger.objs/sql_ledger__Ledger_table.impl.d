lib/core/ledger_table.ml: Array Column Ledger_crypto List Option Printf Relation Row Row_codec Schema Storage System_columns Types Value
