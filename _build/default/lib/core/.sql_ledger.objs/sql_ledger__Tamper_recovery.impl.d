lib/core/tamper_recovery.ml: Array Database Fun Ledger_table List Relation Row Storage Verifier
