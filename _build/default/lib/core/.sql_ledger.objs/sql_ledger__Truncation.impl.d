lib/core/truncation.ml: Database Database_ledger Ledger_table List Relation Row Storage System_columns Txn Types Value Verifier
