lib/core/receipt.ml: Database Database_ledger Digest Ledger_crypto List Merkle Printf Sjson String Types
