lib/core/snapshot.mli: Database Sjson
