type t = { dd_dir : string; dd_db : Database.t }

let snapshot_path dir = Filename.concat dir "snapshot.json"
let wal_path dir = Filename.concat dir "wal.jsonl"

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let db t = t.dd_db
let dir t = t.dd_dir

let persist_snapshot db_ path = Snapshot.save_to_file db_ ~path

let open_dir ?block_size ?signing_seed ?clock ~dir ~name () =
  mkdir_p dir;
  let snap = snapshot_path dir in
  let wal = wal_path dir in
  let have_snap = Sys.file_exists snap in
  let have_wal = Sys.file_exists wal in
  if have_wal || have_snap then begin
    (* Recover: snapshot (if any) plus the log tail. The log may be absent
       or empty after a compact-crash; replay then needs the snapshot. *)
    let result =
      if have_wal then
        Wal_replay.replay_file ?clock
          ?snapshot_path:(if have_snap then Some snap else None)
          ~wal_path:wal ()
      else Snapshot.load_from_file ?clock ~path:snap ()
    in
    match result with
    | Error e -> Error ("recovery of " ^ dir ^ " failed: " ^ e)
    | Ok recovered ->
        (* Re-home onto durable storage: fresh snapshot, fresh log. *)
        persist_snapshot recovered snap;
        Database_ledger.attach_wal (Database.ledger recovered) wal;
        Ok { dd_dir = dir; dd_db = recovered }
  end
  else begin
    let db_ =
      Database.create ?block_size ?signing_seed ?clock ~wal_path:wal ~name ()
    in
    Ok { dd_dir = dir; dd_db = db_ }
  end

let checkpoint t =
  Database.checkpoint t.dd_db;
  persist_snapshot t.dd_db (snapshot_path t.dd_dir)

let compact t =
  checkpoint t;
  Database_ledger.attach_wal (Database.ledger t.dd_db) (wal_path t.dd_dir);
  (* The snapshot must record the restarted (empty) log position. *)
  persist_snapshot t.dd_db (snapshot_path t.dd_dir)
