(* The four hidden system columns of §3.1, appended to every Ledger and
   History table:

   - the transaction that created the row version and the sequence number of
     the creating operation within that transaction;
   - the transaction that deleted the row version and the sequence number of
     the deleting operation (NULL while the version is current).

   Row-version hashes are computed over the extended schema. A version is
   hashed at creation time with the deletion columns still NULL — and NULL
   columns are skipped by the serialization format — so the creation hash of
   a version can be recomputed later from a history row by masking the
   deletion columns back to NULL. The deleting transaction hashes the full
   row including the deletion columns. *)

open Relation

let start_txn = "_ledger_start_txn_id"
let start_seq = "_ledger_start_seq"
let end_txn = "_ledger_end_txn_id"
let end_seq = "_ledger_end_seq"

let names = [ start_txn; start_seq; end_txn; end_seq ]

let columns =
  [
    Column.make ~hidden:true start_txn Datatype.Bigint;
    Column.make ~hidden:true start_seq Datatype.Bigint;
    Column.make ~nullable:true ~hidden:true end_txn Datatype.Bigint;
    Column.make ~nullable:true ~hidden:true end_seq Datatype.Bigint;
  ]

(** Extend a user schema with the system columns. Raises [Invalid_argument]
    if the user schema already uses a reserved name. *)
let extend_schema user_schema =
  List.iter
    (fun name ->
      if Schema.ordinal user_schema name <> None then
        invalid_arg ("reserved column name: " ^ name))
    names;
  List.fold_left Schema.add_column user_schema columns

(* [ordinals] sits on the row-hashing hot path; memoise per schema value
   (schemas are immutable). The cache is a short identity-keyed list,
   trimmed so long-running processes creating many tables stay bounded. *)
let ordinals_cache : (Schema.t * (int * int * int * int)) list ref = ref []

let compute_ordinals schema =
  match List.map (Schema.ordinal schema) names with
  | [ Some a; Some b; Some c; Some d ] -> (a, b, c, d)
  | _ -> invalid_arg "System_columns.ordinals: schema not extended"

let ordinals schema =
  match List.find_opt (fun (s, _) -> s == schema) !ordinals_cache with
  | Some (_, o) -> o
  | None ->
      let o = compute_ordinals schema in
      let kept =
        if List.length !ordinals_cache >= 64 then
          List.filteri (fun i _ -> i < 32) !ordinals_cache
        else !ordinals_cache
      in
      ordinals_cache := (schema, o) :: kept;
      o

(** Mask the deletion columns to NULL — recovers the byte string that was
    hashed when the version was created. *)
let mask_end schema row =
  let _, _, e_txn, e_seq = ordinals schema in
  if Value.is_null row.(e_txn) && Value.is_null row.(e_seq) then row
  else begin
    let out = Array.copy row in
    out.(e_txn) <- Value.Null;
    out.(e_seq) <- Value.Null;
    out
  end

let get_start schema row =
  let s_txn, s_seq, _, _ = ordinals schema in
  match (row.(s_txn), row.(s_seq)) with
  | Value.Int t, Value.Int s -> (t, s)
  | _ -> Types.errorf "row version missing creation transaction columns"

let get_end schema row =
  let _, _, e_txn, e_seq = ordinals schema in
  match (row.(e_txn), row.(e_seq)) with
  | Value.Int t, Value.Int s -> Some (t, s)
  | Value.Null, Value.Null -> None
  | _ -> Types.errorf "row version has inconsistent deletion columns"

let set_start schema row ~txn_id ~seq =
  let s_txn, s_seq, _, _ = ordinals schema in
  let out = Array.copy row in
  out.(s_txn) <- Value.Int txn_id;
  out.(s_seq) <- Value.Int seq;
  out

let set_end schema row ~txn_id ~seq =
  let _, _, e_txn, e_seq = ordinals schema in
  let out = Array.copy row in
  out.(e_txn) <- Value.Int txn_id;
  out.(e_seq) <- Value.Int seq;
  out
