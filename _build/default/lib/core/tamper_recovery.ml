open Relation
module Table_store = Storage.Table_store

type row_diff = {
  table : string;
  key : Row.t;
  in_backup : Row.t option;
  in_current : Row.t option;
}

let diff_store ~table ~(backup : Table_store.t) ~(current : Table_store.t) =
  let diffs = ref [] in
  Table_store.iter
    (fun brow ->
      let key = Table_store.primary_key backup brow in
      match Table_store.find current ~key with
      | None ->
          diffs := { table; key; in_backup = Some brow; in_current = None } :: !diffs
      | Some crow ->
          if not (Row.equal brow crow) then
            diffs :=
              { table; key; in_backup = Some brow; in_current = Some crow }
              :: !diffs)
    backup;
  Table_store.iter
    (fun crow ->
      let key = Table_store.primary_key current crow in
      if Table_store.find backup ~key = None then
        diffs := { table; key; in_backup = None; in_current = Some crow } :: !diffs)
    current;
  List.rev !diffs

let stores_of db table =
  let lt = Database.ledger_table db table in
  (Ledger_table.main lt, Ledger_table.history lt)

let diff_table ~backup ~current ~table =
  let bmain, bhist = stores_of backup table in
  let cmain, chist = stores_of current table in
  diff_store ~table ~backup:bmain ~current:cmain
  @
  match (bhist, chist) with
  | Some bh, Some ch ->
      diff_store ~table:(table ^ "__history") ~backup:bh ~current:ch
  | _ -> []

let repair_store ~(backup : Table_store.t) ~(current : Table_store.t) =
  let repaired = ref 0 in
  (* Remove rows that exist only in the tampered copy, then restore every
     backup row byte-for-byte. *)
  let extra = ref [] in
  Table_store.iter
    (fun crow ->
      let key = Table_store.primary_key current crow in
      if Table_store.find backup ~key = None then extra := key :: !extra)
    current;
  List.iter
    (fun key ->
      if Table_store.Raw.delete_row current ~key then incr repaired)
    !extra;
  Table_store.iter
    (fun brow ->
      let key = Table_store.primary_key backup brow in
      match Table_store.find current ~key with
      | Some crow when Row.equal brow crow -> ()
      | Some _ ->
          if Table_store.Raw.delete_row current ~key then begin
            Table_store.Raw.insert_row current (Array.copy brow);
            incr repaired
          end
      | None ->
          Table_store.Raw.insert_row current (Array.copy brow);
          incr repaired)
    backup;
  (* Restore schema metadata (defeats the metadata-swap attack) and rebuild
     non-clustered indexes so index-only tampering is also cleaned up. *)
  Table_store.set_schema current (Table_store.schema backup);
  Table_store.migrate current ~schema:(Table_store.schema backup) ~f:Fun.id;
  !repaired

let repair_from_backup ~backup ~current ~table =
  let bmain, bhist = stores_of backup table in
  let cmain, chist = stores_of current table in
  let n = repair_store ~backup:bmain ~current:cmain in
  n
  +
  match (bhist, chist) with
  | Some bh, Some ch -> repair_store ~backup:bh ~current:ch
  | _ -> 0

type advice = Repair_in_place of string list | Restore_and_replay

let assess (report : Verifier.report) =
  let tables = ref [] in
  let structural = ref false in
  List.iter
    (fun v ->
      match v with
      | Verifier.Table_root_mismatch { table; _ }
      | Verifier.Orphan_row_version { table; _ }
      | Verifier.Index_mismatch { table; _ } ->
          if not (List.mem table !tables) then tables := table :: !tables
      | Verifier.Digest_block_missing _ | Verifier.Digest_mismatch _
      | Verifier.Digest_foreign _ | Verifier.Chain_gap _
      | Verifier.Chain_broken _ | Verifier.Genesis_prev_not_null _
      | Verifier.Block_root_mismatch _ | Verifier.Block_count_mismatch _
      | Verifier.Orphan_transaction _ ->
          structural := true)
    report.Verifier.violations;
  if !structural || !tables = [] then Restore_and_replay
  else Repair_in_place (List.rev !tables)
