(** Ledger truncation (paper §5.2).

    Deletes old historical data, transaction entries and blocks up to a
    horizon block while keeping the remaining ledger verifiable:

    + verification runs first — truncation refuses to proceed over
      inconsistent data;
    + every current row whose creation evidence would be truncated is
      re-anchored by a ledgered rewrite, moving its digest into a fresh
      transaction (the paper's "dummy update");
    + fully-old history rows (created and deleted at or below the horizon)
      are removed;
    + transaction entries and blocks at or below the horizon are removed;
    + a truncation record (horizon block id + hash + highest truncated
      transaction id) is written to the ledgered metadata table so the
      operation is audited and the first surviving block's previous-hash
      link stays checkable. *)

type summary = {
  horizon_block : int;
  max_truncated_txn : int;
  transactions_removed : int;
  blocks_removed : int;
  history_rows_removed : int;
  rows_reanchored : int;
}

val truncate :
  Database.t ->
  digests:Digest.t list ->
  upto_block:int ->
  user:string ->
  (summary, Verifier.report) result
(** Returns [Error report] (and changes nothing) when pre-verification
    fails. Raises {!Types.Ledger_error} when [upto_block] is not a closed
    block. *)
