(** Database Digests (paper §2.2, §2.4).

    A digest captures the whole ledger state in the hash of the latest
    block. It is exchanged as a JSON document carrying the block id, the
    block hash, the generation time, the commit timestamp of the last
    transaction in the block, and the database identity (id and create
    time — the latter distinguishes database "incarnations" after a
    point-in-time restore, §3.6). *)

type t = {
  database_id : string;
  db_create_time : float;
  block_id : int;
  block_hash : string;  (** raw 32-byte hash *)
  digest_time : float;
  last_commit_ts : float;
}

val to_json : t -> Sjson.t
val of_json : Sjson.t -> (t, string) result
val to_string : t -> string
(** Pretty JSON document. *)

val of_string : string -> (t, string) result

val list_to_json : t list -> Sjson.t
(** JSON array, the shape OPENJSON consumes in verification query 1. *)

val list_of_json : Sjson.t -> (t list, string) result

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
