open Relation
module Table_store = Storage.Table_store

type summary = {
  horizon_block : int;
  max_truncated_txn : int;
  transactions_removed : int;
  blocks_removed : int;
  history_rows_removed : int;
  rows_reanchored : int;
}

let truncate db ~digests ~upto_block ~user =
  let report = Verifier.verify db ~digests in
  if not (Verifier.ok report) then Error report
  else begin
    let dbl = Database.ledger db in
    let blocks = Database_ledger.blocks dbl in
    let horizon =
      match
        List.find_opt (fun (b : Types.block) -> b.block_id = upto_block) blocks
      with
      | Some b -> b
      | None -> Types.errorf "block %d is not a closed block" upto_block
    in
    let old_entries =
      List.filter
        (fun (e : Types.txn_entry) -> e.block_id <= upto_block)
        (Database_ledger.entries dbl)
    in
    let max_truncated_txn =
      List.fold_left
        (fun acc (e : Types.txn_entry) -> max acc e.txn_id)
        0 old_entries
    in
    let horizon_hash = Database_ledger.block_hash horizon in
    (* 1. Re-anchor current rows whose creation evidence is being removed:
       a ledgered rewrite under a fresh transaction. The superseded version
       is dropped outright — it is exactly the evidence being truncated —
       so the rewrite bypasses the history table. *)
    let rows_reanchored = ref 0 in
    List.iter
      (fun lt ->
        let main = Ledger_table.main lt in
        let stale =
          List.filter
            (fun row ->
              let txn, _ =
                System_columns.get_start (Ledger_table.schema lt) row
              in
              txn <= max_truncated_txn)
            (Ledger_table.current_rows lt)
        in
        if stale <> [] then begin
          let (), _ =
            Database.with_txn db ~user (fun txn ->
                List.iter
                  (fun row ->
                    let key = Table_store.primary_key main row in
                    ignore (Table_store.delete main ~key : Row.t);
                    Txn.insert txn lt (Ledger_table.user_row lt row);
                    incr rows_reanchored)
                  stale)
          in
          ()
        end)
      (Database.ledger_tables db);
    (* 2. Remove fully-old history rows. *)
    let history_rows_removed = ref 0 in
    List.iter
      (fun lt ->
        match Ledger_table.history lt with
        | None -> ()
        | Some h ->
            let schema = Ledger_table.schema lt in
            List.iter
              (fun row ->
                let s_txn, _ = System_columns.get_start schema row in
                let fully_old =
                  s_txn <= max_truncated_txn
                  &&
                  match System_columns.get_end schema row with
                  | Some (e_txn, _) -> e_txn <= max_truncated_txn
                  | None -> false
                in
                if fully_old then begin
                  let key = Table_store.primary_key h row in
                  ignore (Table_store.delete h ~key : Row.t);
                  incr history_rows_removed
                end)
              (Table_store.scan h))
      (Database.ledger_tables db);
    (* 3. Remove old transaction entries and blocks. Flush the queue first
       so that entry removal is uniform over the system table. *)
    Database_ledger.checkpoint dbl;
    let txn_table = Database_ledger.raw_transactions_table dbl in
    let transactions_removed = ref 0 in
    List.iter
      (fun (e : Types.txn_entry) ->
        let key = [| Value.Int e.txn_id |] in
        if Table_store.find txn_table ~key <> None then begin
          ignore (Table_store.delete txn_table ~key : Row.t);
          incr transactions_removed
        end)
      old_entries;
    let blocks_table = Database_ledger.raw_blocks_table dbl in
    let blocks_removed = ref 0 in
    List.iter
      (fun (b : Types.block) ->
        if b.block_id <= upto_block then begin
          ignore
            (Table_store.delete blocks_table ~key:[| Value.Int b.block_id |]
              : Row.t);
          incr blocks_removed
        end)
      blocks;
    (* 4. Record the truncation in the ledger. *)
    Database.record_truncation db ~horizon_block:upto_block ~horizon_hash
      ~max_txn:max_truncated_txn;
    Ok
      {
        horizon_block = upto_block;
        max_truncated_txn;
        transactions_removed = !transactions_removed;
        blocks_removed = !blocks_removed;
        history_rows_removed = !history_rows_removed;
        rows_reanchored = !rows_reanchored;
      }
  end
