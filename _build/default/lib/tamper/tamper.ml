open Relation
open Sql_ledger
module Table_store = Storage.Table_store
module Hex = Ledger_crypto.Hex

type attack =
  | Update_row of {
      table : string;
      key : Row.t;
      column : string;
      value : Value.t;
    }
  | Update_history_row of {
      table : string;
      index : int;
      column : string;
      value : Value.t;
    }
  | Delete_row of { table : string; key : Row.t }
  | Delete_history_row of { table : string; index : int }
  | Insert_fabricated_row of { table : string; row : Row.t }
  | Metadata_swap of { table : string; column : string; new_type : Datatype.t }
  | Index_rewrite of {
      table : string;
      index : string;
      old_key : Row.t;
      pk : Row.t;
      new_key : Row.t;
    }
  | Rewrite_transaction_user of { txn_id : int; user : string }
  | Fork_chain of { block_id : int }
  | Drop_and_recreate of { table : string }

let describe = function
  | Update_row { table; column; _ } ->
      Printf.sprintf "overwrite %s.%s in storage" table column
  | Update_history_row { table; column; _ } ->
      Printf.sprintf "overwrite historical %s.%s (audit trail)" table column
  | Delete_row { table; _ } -> Printf.sprintf "erase a row of %s" table
  | Delete_history_row { table; _ } ->
      Printf.sprintf "erase a history row of %s" table
  | Insert_fabricated_row { table; _ } ->
      Printf.sprintf "plant a fabricated row in %s" table
  | Metadata_swap { table; column; new_type } ->
      Printf.sprintf "redeclare %s.%s as %s (metadata swap)" table column
        (Datatype.to_string new_type)
  | Index_rewrite { table; index; _ } ->
      Printf.sprintf "rewrite index %s on %s" index table
  | Rewrite_transaction_user { txn_id; user } ->
      Printf.sprintf "attribute transaction %d to %s" txn_id user
  | Fork_chain { block_id } ->
      Printf.sprintf "fork the ledger chain at block %d" block_id
  | Drop_and_recreate { table } ->
      Printf.sprintf "drop and recreate %s with clean data" table

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

let find_ordinal store column =
  match Schema.ordinal (Table_store.schema store) column with
  | Some i -> Ok i
  | None -> err "no column %s" column

let apply db attack =
  match attack with
  | Update_row { table; key; column; value } -> (
      let lt = Database.ledger_table db table in
      let main = Ledger_table.main lt in
      match find_ordinal main column with
      | Error e -> Error e
      | Ok ordinal ->
          if Table_store.Raw.overwrite_value main ~key ~ordinal value then Ok ()
          else err "no row with that key in %s" table)
  | Update_history_row { table; index; column; value } -> (
      let lt = Database.ledger_table db table in
      match Ledger_table.history lt with
      | None -> err "%s has no history table" table
      | Some h -> (
          match find_ordinal h column with
          | Error e -> Error e
          | Ok ordinal -> (
              let rows = Table_store.scan h in
              match List.nth_opt rows index with
              | None -> err "history has fewer than %d rows" (index + 1)
              | Some row ->
                  let key = Table_store.primary_key h row in
                  if Table_store.Raw.overwrite_value h ~key ~ordinal value then
                    Ok ()
                  else err "history row vanished")))
  | Delete_row { table; key } ->
      let lt = Database.ledger_table db table in
      if Table_store.Raw.delete_row (Ledger_table.main lt) ~key then Ok ()
      else err "no row with that key in %s" table
  | Delete_history_row { table; index } -> (
      let lt = Database.ledger_table db table in
      match Ledger_table.history lt with
      | None -> err "%s has no history table" table
      | Some h -> (
          let rows = Table_store.scan h in
          match List.nth_opt rows index with
          | None -> err "history has fewer than %d rows" (index + 1)
          | Some row ->
              let key = Table_store.primary_key h row in
              if Table_store.Raw.delete_row h ~key then Ok ()
              else err "history row vanished"))
  | Insert_fabricated_row { table; row } ->
      let lt = Database.ledger_table db table in
      Table_store.Raw.insert_row (Ledger_table.main lt) row;
      Ok ()
  | Metadata_swap { table; column; new_type } ->
      let lt = Database.ledger_table db table in
      let main = Ledger_table.main lt in
      (match find_ordinal main column with
      | Error e -> Error e
      | Ok _ ->
          Table_store.Raw.set_column_type main ~column new_type;
          (match Ledger_table.history lt with
          | Some h -> Table_store.Raw.set_column_type h ~column new_type
          | None -> ());
          Ok ())
  | Index_rewrite { table; index; old_key; pk; new_key } ->
      let lt = Database.ledger_table db table in
      if
        Table_store.Raw.overwrite_index_entry (Ledger_table.main lt)
          ~index_name:index ~old_key ~pk ~new_key
      then Ok ()
      else err "no such index entry in %s.%s" table index
  | Rewrite_transaction_user { txn_id; user } ->
      let txn_table =
        Database_ledger.raw_transactions_table (Database.ledger db)
      in
      if
        Table_store.Raw.overwrite_value txn_table ~key:[| Value.Int txn_id |]
          ~ordinal:4 (Value.String user)
      then Ok ()
      else err "transaction %d not in the flushed system table" txn_id
  | Fork_chain { block_id } -> (
      let dbl = Database.ledger db in
      let blocks_table = Database_ledger.raw_blocks_table dbl in
      let blocks = Database_ledger.blocks dbl in
      match
        List.find_opt (fun (b : Types.block) -> b.block_id = block_id) blocks
      with
      | None -> err "block %d is not closed" block_id
      | Some _ ->
          (* Overwrite the block's transaction root, then recompute and
             rewrite every later block's prev_hash so the doctored chain is
             internally consistent — only externally stored digests (or an
             old digest checked for derivability) can expose the fork. *)
          let fake_root =
            Ledger_crypto.Sha256.digest_string
              (Printf.sprintf "forged-root-%d" block_id)
          in
          ignore
            (Table_store.Raw.overwrite_value blocks_table
               ~key:[| Value.Int block_id |] ~ordinal:2
               (Value.String (Hex.encode fake_root)));
          let rec fix prev_hash id =
            match
              Table_store.find blocks_table ~key:[| Value.Int id |]
            with
            | None -> ()
            | Some _ ->
                ignore
                  (Table_store.Raw.overwrite_value blocks_table
                     ~key:[| Value.Int id |] ~ordinal:1
                     (Value.String (Hex.encode prev_hash)));
                (match Table_store.find blocks_table ~key:[| Value.Int id |] with
                | Some r ->
                    let b : Types.block =
                      {
                        block_id = id;
                        prev_hash;
                        txn_root =
                          (match r.(2) with
                          | Value.String s -> Hex.decode s
                          | _ -> "");
                        txn_count =
                          (match r.(3) with Value.Int i -> i | _ -> 0);
                        closed_ts =
                          (match r.(4) with Value.Float f -> f | _ -> 0.);
                      }
                    in
                    fix (Database_ledger.block_hash b) (id + 1)
                | None -> ())
          in
          (* Recompute the tampered block's own hash, then ripple forward. *)
          (match Table_store.find blocks_table ~key:[| Value.Int block_id |] with
          | Some r ->
              let b : Types.block =
                {
                  block_id;
                  prev_hash =
                    (match r.(1) with
                    | Value.String "" -> ""
                    | Value.String s -> Hex.decode s
                    | _ -> "");
                  txn_root = fake_root;
                  txn_count = (match r.(3) with Value.Int i -> i | _ -> 0);
                  closed_ts = (match r.(4) with Value.Float f -> f | _ -> 0.);
                }
              in
              fix (Database_ledger.block_hash b) (block_id + 1)
          | None -> ());
          Ok ())
  | Drop_and_recreate { table } ->
      let lt = Database.ledger_table db table in
      let schema = Ledger_table.schema lt in
      let user_cols =
        List.filter
          (fun (c : Column.t) ->
            not (List.mem c.name Sql_ledger.System_columns.names))
          (Schema.columns schema)
      in
      let key_names =
        List.map
          (fun i -> (Schema.column schema i).Column.name)
          (Table_store.key_ordinals (Ledger_table.main lt))
      in
      Database.drop_table db ~name:table;
      let _new_lt =
        Database.create_ledger_table db ~name:table ~columns:user_cols
          ~key:key_names ()
      in
      Ok ()
