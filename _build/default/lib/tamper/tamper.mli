(** Scripted attacks against a SQL Ledger database (paper §2.5.2).

    Every attack bypasses the database API and mutates storage directly —
    the strong-adversary model (compromised process, direct file edits).
    Tests and examples apply an attack and then assert that ledger
    verification reports the corresponding violation. *)

type attack =
  | Update_row of {
      table : string;
      key : Relation.Row.t;
      column : string;
      value : Relation.Value.t;
    }  (** rewrite a stored value of a current row *)
  | Update_history_row of {
      table : string;
      index : int;
      column : string;
      value : Relation.Value.t;
    }  (** rewrite the [index]-th history row (audit-trail tampering) *)
  | Delete_row of { table : string; key : Relation.Row.t }
      (** erase a current row from storage *)
  | Delete_history_row of { table : string; index : int }
      (** erase audit history *)
  | Insert_fabricated_row of { table : string; row : Relation.Row.t }
      (** plant a row with forged system columns (the user row plus the four
          system values) *)
  | Metadata_swap of {
      table : string;
      column : string;
      new_type : Relation.Datatype.t;
    }  (** the INT/SMALLINT reinterpretation attack of §3.2 *)
  | Index_rewrite of {
      table : string;
      index : string;
      old_key : Relation.Row.t;
      pk : Relation.Row.t;
      new_key : Relation.Row.t;
    }  (** divert a non-clustered index while leaving the base table intact *)
  | Rewrite_transaction_user of { txn_id : int; user : string }
      (** falsify who executed a transaction *)
  | Fork_chain of { block_id : int }
      (** overwrite a closed block's transaction root and recompute the
          chain from there — the fork attack that digest chain verification
          (§3.3.1 requirement 3) must catch *)
  | Drop_and_recreate of { table : string }
      (** the attack of §3.5.2: drop a table and plant a same-named empty
          one (metadata history exposes it) *)

val describe : attack -> string

val apply : Sql_ledger.Database.t -> attack -> (unit, string) result
(** Execute the attack. [Error] means the attack found nothing to corrupt
    (wrong key, missing index, …) — the database was not modified. *)
