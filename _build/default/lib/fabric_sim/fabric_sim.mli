(** Latency model of a permissioned-blockchain pipeline — the stand-in for
    the Hyperledger Fabric comparison in the paper's evaluation (§4.1).

    The paper cites Fabric's published numbers [Androulaki et al., EuroSys
    2018]: a few thousand transactions per second at end-to-end latencies in
    the hundreds of milliseconds, against which SQL Ledger's 70K+ tps and
    microsecond-scale DML overheads are contrasted. We cannot run Fabric in
    this environment, so this module simulates its execute-order-validate
    pipeline with parameters calibrated to those published numbers. The
    simulation is a deterministic discrete-event model: endorsement
    round-trips, batching at the ordering service, and per-transaction
    validation/commit at the peers. *)

type config = {
  endorsement_rtt_ms : float;     (** client → endorsers → client *)
  endorsement_parallelism : int;  (** concurrent endorsement slots *)
  ordering_batch_size : int;      (** transactions per block *)
  batch_timeout_ms : float;       (** block cut deadline *)
  consensus_latency_ms : float;   (** ordering round (Raft/Kafka) *)
  validation_per_txn_ms : float;  (** VSCC/MVCC + commit per txn *)
  validation_parallelism : int;
}

val default : config
(** Calibrated to Fabric v1.x published results: ~3K tps saturation,
    ~100–500 ms latency. *)

type result = {
  offered_tps : float;
  completed : int;
  achieved_tps : float;
  avg_latency_ms : float;
  p50_latency_ms : float;
  p99_latency_ms : float;
}

val simulate : ?config:config -> offered_tps:float -> txns:int -> unit -> result
(** Push [txns] arrivals at the offered rate through the pipeline. *)

val saturation_tps : ?config:config -> unit -> float
(** Approximate maximum sustainable throughput of the pipeline. *)
