type config = {
  endorsement_rtt_ms : float;
  endorsement_parallelism : int;
  ordering_batch_size : int;
  batch_timeout_ms : float;
  consensus_latency_ms : float;
  validation_per_txn_ms : float;
  validation_parallelism : int;
}

let default =
  {
    endorsement_rtt_ms = 30.0;
    endorsement_parallelism = 150;
    ordering_batch_size = 500;
    batch_timeout_ms = 250.0;
    consensus_latency_ms = 20.0;
    validation_per_txn_ms = 0.3;
    validation_parallelism = 1;  (* block validation is sequential per peer *)
  }

type result = {
  offered_tps : float;
  completed : int;
  achieved_tps : float;
  avg_latency_ms : float;
  p50_latency_ms : float;
  p99_latency_ms : float;
}

(* A deterministic pipeline simulation. Stage queues are modelled with
   "next free at" clocks: endorsement has N parallel slots, ordering cuts
   blocks by size or timeout, validation drains blocks sequentially. *)
let simulate ?(config = default) ~offered_tps ~txns () =
  if offered_tps <= 0. || txns <= 0 then
    invalid_arg "Fabric_sim.simulate: positive load required";
  let interarrival = 1000.0 /. offered_tps in
  (* Endorsement: earliest-free-slot queue. *)
  let slots = Array.make config.endorsement_parallelism 0.0 in
  let endorsement_done = Array.make txns 0.0 in
  for i = 0 to txns - 1 do
    let arrival = float_of_int i *. interarrival in
    (* pick the earliest-free endorsement slot *)
    let best = ref 0 in
    for s = 1 to config.endorsement_parallelism - 1 do
      if slots.(s) < slots.(!best) then best := s
    done;
    let start = Float.max arrival slots.(!best) in
    let finish = start +. config.endorsement_rtt_ms in
    slots.(!best) <- finish;
    endorsement_done.(i) <- finish
  done;
  (* Ordering: txns join the current batch as they are endorsed; the batch
     is cut when it fills or when the oldest waiting txn has waited
     batch_timeout_ms, whichever comes first. *)
  let blocks = ref [] in
  let batch = ref [] in
  let batch_first = ref nan in
  let cut at =
    if !batch <> [] then begin
      blocks := (at, List.rev !batch) :: !blocks;
      batch := [];
      batch_first := nan
    end
  in
  Array.iter
    (fun t ->
      if !batch <> [] && t > !batch_first +. config.batch_timeout_ms then
        cut (!batch_first +. config.batch_timeout_ms);
      if !batch = [] then batch_first := t;
      batch := t :: !batch;
      if List.length !batch >= config.ordering_batch_size then cut t)
    endorsement_done;
  cut (!batch_first +. config.batch_timeout_ms);
  let blocks = List.rev !blocks in
  (* Consensus + validation: blocks ordered sequentially; validation drains
     per transaction. *)
  let validator_free = ref 0.0 in
  let latencies = ref [] in
  List.iter
    (fun (cut_at, batch) ->
      let ordered_at = cut_at +. config.consensus_latency_ms in
      let start = Float.max ordered_at !validator_free in
      let n = List.length batch in
      let finish =
        start
        +. (float_of_int n *. config.validation_per_txn_ms
           /. float_of_int config.validation_parallelism)
      in
      validator_free := finish;
      List.iter
        (fun endorsed_at ->
          let submitted = endorsed_at -. config.endorsement_rtt_ms in
          latencies := (finish -. submitted) :: !latencies)
        batch)
    blocks;
  let lat = Array.of_list (List.rev !latencies) in
  Array.sort Float.compare lat;
  let n = Array.length lat in
  let total_time = Float.max 1.0 !validator_free in
  let sum = Array.fold_left ( +. ) 0.0 lat in
  let pct p = lat.(min (n - 1) (int_of_float (p *. float_of_int n))) in
  {
    offered_tps;
    completed = n;
    achieved_tps = float_of_int n /. (total_time /. 1000.0);
    avg_latency_ms = sum /. float_of_int n;
    p50_latency_ms = pct 0.50;
    p99_latency_ms = pct 0.99;
  }

let saturation_tps ?(config = default) () =
  (* The pipeline bottleneck: endorsement slots vs validation drain. *)
  let endorsement_cap =
    float_of_int config.endorsement_parallelism
    /. (config.endorsement_rtt_ms /. 1000.0)
  in
  let validation_cap =
    float_of_int config.validation_parallelism
    /. (config.validation_per_txn_ms /. 1000.0)
  in
  Float.min endorsement_cap validation_cap
