(** Minimal JSON implementation (parser + printer + accessors).

    Database digests are exchanged as JSON documents (paper §2.2) and the
    verification process ingests them through an [OPENJSON]-style function
    (§3.4.2). No JSON library ships in the sealed environment, so this module
    provides the small, total subset needed: objects, arrays, strings,
    numbers (ints and floats), booleans and null, with full string escaping. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised by {!of_string} with a message carrying position information. *)

val of_string : string -> t
(** Parse a complete JSON document. Raises {!Parse_error}. *)

val to_string : ?pretty:bool -> t -> string
(** Serialise. [pretty] (default false) adds newlines and two-space
    indentation. *)

val write : Buffer.t -> t -> unit
(** Append the compact serialisation to a buffer — same bytes as
    [to_string ~pretty:false], without building the intermediate string. *)

(** {1 Accessors}

    Each raises [Invalid_argument] when the shape does not match. *)

val member : string -> t -> t
(** Field of an object; [Null] when absent. *)

val get_string : t -> string
val get_int : t -> int
val get_bool : t -> bool
val get_list : t -> t list
val get_obj : t -> (string * t) list

val equal : t -> t -> bool
(** Structural equality; object field order is significant. *)
