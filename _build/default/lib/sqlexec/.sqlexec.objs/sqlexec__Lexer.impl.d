lib/sqlexec/lexer.ml: Buffer List Printf String
