lib/sqlexec/executor.ml: Array Ast Builtins Hashtbl List Option Parser Printf Rel Relation Row Sjson String Value
