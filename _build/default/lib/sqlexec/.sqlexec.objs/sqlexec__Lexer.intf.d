lib/sqlexec/lexer.mli:
