lib/sqlexec/builtins.ml: Float Ledger_crypto List Merkle Printf Relation Sjson String Value
