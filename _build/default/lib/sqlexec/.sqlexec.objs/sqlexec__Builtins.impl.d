lib/sqlexec/builtins.ml: Bytes Domain Float Ledger_crypto List Merkle Printf Relation Sjson String Value
