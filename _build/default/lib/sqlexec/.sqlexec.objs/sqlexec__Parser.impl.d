lib/sqlexec/parser.ml: Ast Lexer List Printf Relation String
