lib/sqlexec/parser.mli: Ast
