lib/sqlexec/builtins.mli: Relation
