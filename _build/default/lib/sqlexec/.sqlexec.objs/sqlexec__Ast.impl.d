lib/sqlexec/ast.ml: Relation
