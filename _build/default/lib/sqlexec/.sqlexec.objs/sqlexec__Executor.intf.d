lib/sqlexec/executor.mli: Ast Rel Relation
