lib/sqlexec/rel.ml: Array Format List Printf Relation Row String Value
