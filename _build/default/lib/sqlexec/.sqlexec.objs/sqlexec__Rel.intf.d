lib/sqlexec/rel.mli: Format Relation
