(** Runtime relations flowing through the executor. *)

type col = { rel_alias : string option; col_name : string }

type t = { cols : col array; rows : Relation.Row.t list }

val make : ?alias:string -> string list -> Relation.Row.t list -> t
(** Build a relation from column names and rows; every column carries the
    optional alias. *)

val resolve : t -> table:string option -> column:string -> (int, string) result
(** Ordinal of the column referenced by [table.column] (case-insensitive).
    Errors on "unknown column" and "ambiguous column". *)

val rename : t -> alias:string -> t
(** Re-qualify every column under a new alias (subquery/table alias). *)

val concat_cols : t -> t -> Relation.Row.t list -> t
(** Combine two relations' column headers over pre-joined rows. *)

val column_names : t -> string list
val arity : t -> int
val cardinality : t -> int

val to_strings : t -> string list list
(** Header row followed by data rows, rendered — for the CLI and tests. *)

val pp : Format.formatter -> t -> unit
(** Aligned tabular rendering. *)
