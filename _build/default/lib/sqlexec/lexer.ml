type token =
  | Ident of string
  | Quoted_ident of string
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Symbol of string
  | Eof

exception Lex_error of string

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '$'

let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let pos = ref 0 in
  let tokens = ref [] in
  let peek off = if !pos + off < n then Some input.[!pos + off] else None in
  let fail msg = raise (Lex_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  while !pos < n do
    let c = input.[!pos] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr pos
    else if c = '-' && peek 1 = Some '-' then begin
      (* line comment *)
      while !pos < n && input.[!pos] <> '\n' do
        incr pos
      done
    end
    else if c = '/' && peek 1 = Some '*' then begin
      pos := !pos + 2;
      let closed = ref false in
      while (not !closed) && !pos < n do
        if input.[!pos] = '*' && peek 1 = Some '/' then begin
          closed := true;
          pos := !pos + 2
        end
        else incr pos
      done;
      if not !closed then fail "unterminated comment"
    end
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident_char input.[!pos] do
        incr pos
      done;
      tokens := Ident (String.sub input start (!pos - start)) :: !tokens
    end
    else if is_digit c then begin
      let start = !pos in
      let is_float = ref false in
      while
        !pos < n
        && (is_digit input.[!pos]
           || input.[!pos] = '.'
           || input.[!pos] = 'e'
           || input.[!pos] = 'E'
           || ((input.[!pos] = '+' || input.[!pos] = '-')
              && !pos > start
              && (input.[!pos - 1] = 'e' || input.[!pos - 1] = 'E')))
      do
        if not (is_digit input.[!pos]) then is_float := true;
        incr pos
      done;
      let text = String.sub input start (!pos - start) in
      if !is_float then
        match float_of_string_opt text with
        | Some f -> tokens := Float_lit f :: !tokens
        | None -> fail ("bad number " ^ text)
      else begin
        match int_of_string_opt text with
        | Some i -> tokens := Int_lit i :: !tokens
        | None -> fail ("bad number " ^ text)
      end
    end
    else if c = '\'' then begin
      incr pos;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while (not !closed) && !pos < n do
        if input.[!pos] = '\'' then
          if peek 1 = Some '\'' then begin
            Buffer.add_char buf '\'';
            pos := !pos + 2
          end
          else begin
            closed := true;
            incr pos
          end
        else begin
          Buffer.add_char buf input.[!pos];
          incr pos
        end
      done;
      if not !closed then fail "unterminated string literal";
      tokens := String_lit (Buffer.contents buf) :: !tokens
    end
    else if c = '[' then begin
      incr pos;
      let start = !pos in
      while !pos < n && input.[!pos] <> ']' do
        incr pos
      done;
      if !pos >= n then fail "unterminated [identifier]";
      tokens := Quoted_ident (String.sub input start (!pos - start)) :: !tokens;
      incr pos
    end
    else if c = '"' then begin
      incr pos;
      let start = !pos in
      while !pos < n && input.[!pos] <> '"' do
        incr pos
      done;
      if !pos >= n then fail "unterminated quoted identifier";
      tokens := Quoted_ident (String.sub input start (!pos - start)) :: !tokens;
      incr pos
    end
    else begin
      let two =
        if !pos + 1 < n then Some (String.sub input !pos 2) else None
      in
      match two with
      | Some (("<=" | ">=" | "<>" | "!=" | "||") as s) ->
          tokens := Symbol s :: !tokens;
          pos := !pos + 2
      | _ -> (
          match c with
          | '(' | ')' | ',' | '*' | '+' | '-' | '/' | '%' | '=' | '<' | '>'
          | '.' | ';' ->
              tokens := Symbol (String.make 1 c) :: !tokens;
              incr pos
          | _ -> fail (Printf.sprintf "illegal character '%c'" c))
    end
  done;
  List.rev (Eof :: !tokens)

let keyword = function
  | Ident s -> Some (String.uppercase_ascii s)
  | _ -> None
