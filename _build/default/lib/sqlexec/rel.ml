open Relation

type col = { rel_alias : string option; col_name : string }
type t = { cols : col array; rows : Row.t list }

let make ?alias names rows =
  {
    cols =
      Array.of_list
        (List.map (fun n -> { rel_alias = alias; col_name = n }) names);
    rows;
  }

let norm = String.lowercase_ascii

let resolve t ~table ~column =
  let matches =
    Array.to_list t.cols
    |> List.mapi (fun i c -> (i, c))
    |> List.filter (fun (_, c) ->
           String.equal (norm c.col_name) (norm column)
           &&
           match table with
           | None -> true
           | Some alias -> (
               match c.rel_alias with
               | Some a -> String.equal (norm a) (norm alias)
               | None -> false))
  in
  match matches with
  | [ (i, _) ] -> Ok i
  | [] ->
      Error
        (Printf.sprintf "unknown column %s%s"
           (match table with Some tbl -> tbl ^ "." | None -> "")
           column)
  | _ ->
      Error
        (Printf.sprintf "ambiguous column %s%s"
           (match table with Some tbl -> tbl ^ "." | None -> "")
           column)

let rename t ~alias =
  {
    t with
    cols = Array.map (fun c -> { c with rel_alias = Some alias }) t.cols;
  }

let concat_cols left right rows =
  { cols = Array.append left.cols right.cols; rows }

let column_names t =
  Array.to_list t.cols |> List.map (fun c -> c.col_name)

let arity t = Array.length t.cols
let cardinality t = List.length t.rows

let to_strings t =
  column_names t
  :: List.map (fun row -> List.map Value.to_string (Row.to_list row)) t.rows

let pp fmt t =
  let rendered = to_strings t in
  let widths = Array.make (arity t) 0 in
  List.iter
    (List.iteri (fun i cell ->
         if i < Array.length widths then
           widths.(i) <- max widths.(i) (String.length cell)))
    rendered;
  let print_row cells =
    List.iteri
      (fun i cell ->
        if i > 0 then Format.pp_print_string fmt " | ";
        Format.fprintf fmt "%-*s" (if i < Array.length widths then widths.(i) else 0) cell)
      cells;
    Format.pp_print_newline fmt ()
  in
  match rendered with
  | [] -> ()
  | header :: rows ->
      print_row header;
      Format.pp_print_string fmt
        (String.concat "-+-"
           (Array.to_list (Array.map (fun w -> String.make w '-') widths)));
      Format.pp_print_newline fmt ();
      List.iter print_row rows
