(** SQL tokenizer. *)

type token =
  | Ident of string       (** unquoted identifier or keyword, original case *)
  | Quoted_ident of string (** [name] or "name" *)
  | Int_lit of int
  | Float_lit of float
  | String_lit of string  (** 'single quoted', with '' escaping *)
  | Symbol of string      (** punctuation / operators, e.g. "(", "<=", "||" *)
  | Eof

exception Lex_error of string

val tokenize : string -> token list
(** Raises {!Lex_error} on unterminated strings or illegal characters.
    Comments ([-- ...] and [/* ... */]) are skipped. *)

val keyword : token -> string option
(** Uppercased identifier, if the token is an unquoted identifier. *)
