(** Scalar functions available to SQL expressions.

    [LEDGERHASH] is the paper's intrinsic (§3.4.2): the serialization and
    hashing logic used during transaction processing, exposed to the
    verification queries so they recompute exactly what the DML path
    computed. The same OCaml function is called from both paths. *)

exception Builtin_error of string

val ledgerhash : Relation.Value.t list -> Relation.Value.t
(** SHA-256 over the tagged serialization of the arguments, hex-encoded. *)

val merkle_root_of_hex_leaves : string list -> string
(** Streaming Merkle root over hex-encoded leaf hashes; hex result. The
    implementation behind the MERKLETREEAGG aggregate. *)

val default : (string * (Relation.Value.t list -> Relation.Value.t)) list
(** Name (uppercase) to implementation: LEDGERHASH, LEN, UPPER, LOWER,
    SUBSTRING, ABS, COALESCE, NULLIF, CAST_INT, JSON_VALUE, HEX_CONCAT. *)
