(** Recursive-descent parser for the SQL subset (see {!Ast}). *)

exception Parse_error of string

val parse : string -> Ast.select
(** Parse a single SELECT statement (an optional trailing [;] is allowed).
    Raises {!Parse_error} or {!Lexer.Lex_error}. *)

val parse_statement : string -> Ast.statement
(** Parse a SELECT, INSERT, UPDATE or DELETE statement. *)

val parse_expr : string -> Ast.expr
(** Parse a standalone expression (used by tests and tools). *)
