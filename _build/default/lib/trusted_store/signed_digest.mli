(** Company-signed digests (paper §2.4).

    "Database Digests can be ... signed with the company's private/public
    key pair, to guarantee their authenticity, and shared with any
    customers, partners or auditors." Each digest is signed under a one-time
    key derived from the company seed and the digest's position; the
    published artifact carries the digest, the signature and the public key,
    and verifiers pin the company by the key fingerprint. *)

type t = {
  digest : Sql_ledger.Digest.t;
  index : int;  (** position in the company's signing sequence *)
  public_key : Ledger_crypto.Lamport.public_key;
  signature : Ledger_crypto.Lamport.signature;
}

val sign : seed:string -> index:int -> Sql_ledger.Digest.t -> t
(** Never reuse an (seed, index) pair for two different digests. *)

val fingerprint : seed:string -> index:int -> string
(** Fingerprint of the key for [index] — companies publish these (or a
    commitment to the sequence) ahead of time. *)

val verify : ?expected_fingerprint:string -> t -> (unit, string) result

val to_json : t -> Sjson.t
val of_json : Sjson.t -> (t, string) result
val to_string : t -> string
val of_string : string -> (t, string) result
