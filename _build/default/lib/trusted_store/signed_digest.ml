module Digest = Sql_ledger.Digest
module Lamport = Ledger_crypto.Lamport
module Hex = Ledger_crypto.Hex

type t = {
  digest : Digest.t;
  index : int;
  public_key : Lamport.public_key;
  signature : Lamport.signature;
}

let key_seed ~seed ~index = Printf.sprintf "%s:digest:%d" seed index

(* The signed message is the canonical digest JSON. *)
let message digest = Sjson.to_string (Digest.to_json digest)

let sign ~seed ~index digest =
  let sk, pk = Lamport.generate ~seed:(key_seed ~seed ~index) in
  { digest; index; public_key = pk; signature = Lamport.sign sk (message digest) }

let fingerprint ~seed ~index =
  let _, pk = Lamport.generate ~seed:(key_seed ~seed ~index) in
  Lamport.fingerprint pk

let verify ?expected_fingerprint t =
  if not (Lamport.verify t.public_key ~msg:(message t.digest) t.signature)
  then Error "digest signature is invalid"
  else
    match expected_fingerprint with
    | Some fp when not (String.equal fp (Lamport.fingerprint t.public_key)) ->
        Error "signing key does not match the company's published fingerprint"
    | _ -> Ok ()

let to_json t =
  Sjson.Obj
    [
      ("digest", Digest.to_json t.digest);
      ("index", Sjson.Int t.index);
      ( "public_key",
        Sjson.String (Hex.encode (Lamport.public_key_to_string t.public_key)) );
      ( "signature",
        Sjson.String (Hex.encode (Lamport.signature_to_string t.signature)) );
    ]

let of_json json =
  try
    let digest =
      match Digest.of_json (Sjson.member "digest" json) with
      | Ok d -> d
      | Error e -> failwith e
    in
    let public_key =
      match
        Lamport.public_key_of_string
          (Hex.decode (Sjson.get_string (Sjson.member "public_key" json)))
      with
      | Some pk -> pk
      | None -> failwith "malformed public key"
    in
    let signature =
      match
        Lamport.signature_of_string
          (Hex.decode (Sjson.get_string (Sjson.member "signature" json)))
      with
      | Some s -> s
      | None -> failwith "malformed signature"
    in
    Ok
      {
        digest;
        index = Sjson.get_int (Sjson.member "index" json);
        public_key;
        signature;
      }
  with
  | Failure e | Invalid_argument e -> Error ("malformed signed digest: " ^ e)

let to_string t = Sjson.to_string ~pretty:true (to_json t)

let of_string s =
  match Sjson.of_string s with
  | exception Sjson.Parse_error e -> Error e
  | json -> of_json json
