(** A simulated public blockchain for digest anchoring (paper §2.4).

    "Database Digests can be ... uploaded to a Public Blockchain, such as
    Bitcoin or Ethereum." This module models the properties that option
    relies on: submitted payloads are batched into hash-linked chain blocks,
    become immutable once buried under enough confirmations, and anyone
    holding the chain can verify that a given payload was anchored at a
    given height. Consensus itself is out of scope — the simulation is the
    ledger structure an anchor verifier consumes. *)

type t

type receipt = {
  payload_hash : string;  (** SHA-256 of the anchored payload *)
  height : int;           (** chain block the payload landed in *)
}

val create : ?confirmations_required:int -> unit -> t
(** [confirmations_required] defaults to 6. *)

val submit : t -> string -> receipt
(** Queue a payload for the next block; returns its future location. *)

val mine_block : t -> unit
(** Produce the next chain block from queued submissions (or an empty
    block). *)

val height : t -> int
(** Number of mined blocks. *)

val confirmed : t -> receipt -> bool
(** Whether the receipt's block is buried under the required
    confirmations. *)

val verify_anchor : t -> receipt -> payload:string -> bool
(** The payload was anchored at the receipt's height and the chain above it
    links correctly. *)

val chain_valid : t -> bool
(** Internal hash links all hold (a tampered simulation would fail). *)

module Hostile : sig
  val rewrite_payload : t -> height:int -> index:int -> string -> bool
  (** Mutate an anchored payload hash in place; {!chain_valid} and
      {!verify_anchor} expose it. *)
end
