module Digest = Sql_ledger.Digest
module Database = Sql_ledger.Database

type t = {
  store : Worm_store.t;
  replicated_upto : unit -> float;
  alert_after : int;
  mutable deferrals : int;
}

type upload_outcome =
  | Uploaded of Digest.t
  | Nothing_to_upload
  | Deferred_replication_lag
  | Alert_replication_stuck

let create ?(replicated_upto = fun () -> infinity) ?(alert_after_deferrals = 5)
    ~store () =
  { store; replicated_upto; alert_after = alert_after_deferrals; deferrals = 0 }

let blob_of ~db_id ~create_time =
  Printf.sprintf "digests/%s/%.6f" db_id create_time

let upload t db =
  let ledger = Database.ledger db in
  let last_commit = Sql_ledger.Database_ledger.last_commit_ts ledger in
  if last_commit = 0. then Nothing_to_upload
  else if last_commit > t.replicated_upto () then begin
    (* §3.6: only issue digests for data already replicated to the
       geo-secondary; a digest must never reference data that a failover
       could lose. *)
    t.deferrals <- t.deferrals + 1;
    if t.deferrals >= t.alert_after then Alert_replication_stuck
    else Deferred_replication_lag
  end
  else begin
    t.deferrals <- 0;
    match Database.generate_digest db with
    | None -> Nothing_to_upload
    | Some d ->
        let blob =
          blob_of ~db_id:d.Digest.database_id ~create_time:d.Digest.db_create_time
        in
        (match Worm_store.append t.store ~blob (Digest.to_string d) with
        | Ok () -> Uploaded d
        | Error e -> Sql_ledger.Types.errorf "digest upload failed: %s" e)
  end

let digests_for_incarnation t ~db_id ~create_time =
  match Worm_store.read t.store ~blob:(blob_of ~db_id ~create_time) with
  | Error e -> Error e
  | Ok chunks ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | chunk :: rest -> (
            match Digest.of_string chunk with
            | Ok d -> go (d :: acc) rest
            | Error e -> Error e)
      in
      go [] chunks

let all_digests t ~db_id =
  let prefix = Printf.sprintf "digests/%s/" db_id in
  Worm_store.list_blobs t.store
  |> List.filter_map (fun blob ->
         if
           String.length blob > String.length prefix
           && String.sub blob 0 (String.length prefix) = prefix
         then
           let ct =
             String.sub blob (String.length prefix)
               (String.length blob - String.length prefix)
           in
           match float_of_string_opt ct with
           | Some create_time -> (
               match digests_for_incarnation t ~db_id ~create_time with
               | Ok ds -> Some (create_time, ds)
               | Error _ -> None)
           | None -> None
         else None)
  |> List.sort (fun (a, _) (b, _) -> Float.compare a b)

let latest_digest t ~db =
  match
    digests_for_incarnation t ~db_id:(Database.database_id db)
      ~create_time:(Database.create_time db)
  with
  | Ok ds -> ( match List.rev ds with d :: _ -> Some d | [] -> None)
  | Error _ -> None

let deferral_count t = t.deferrals
