module Sha256 = Ledger_crypto.Sha256

type block = {
  mutable payloads : string array;  (* payload hashes, mutable for Hostile *)
  prev_hash : string;
}

type t = {
  confirmations_required : int;
  mutable blocks : block list;  (* newest first *)
  mutable pending : string list;  (* newest first *)
}

type receipt = { payload_hash : string; height : int }

let create ?(confirmations_required = 6) () =
  { confirmations_required; blocks = []; pending = [] }

let block_hash b =
  let t = Sha256.init () in
  Sha256.feed_string t "public-chain-block:";
  Sha256.feed_string t b.prev_hash;
  Array.iter (Sha256.feed_string t) b.payloads;
  Sha256.get t

let height t = List.length t.blocks

let submit t payload =
  let payload_hash = Sha256.digest_string payload in
  t.pending <- payload_hash :: t.pending;
  { payload_hash; height = height t }

let mine_block t =
  let prev_hash =
    match t.blocks with [] -> "" | b :: _ -> block_hash b
  in
  let block =
    { payloads = Array.of_list (List.rev t.pending); prev_hash }
  in
  t.pending <- [];
  t.blocks <- block :: t.blocks

let confirmed t r = height t - r.height >= t.confirmations_required

let nth_block t h =
  (* blocks is newest first; height h is the (len - 1 - h)-th element *)
  if h < 0 || h >= height t then None
  else List.nth_opt t.blocks (height t - 1 - h)

let chain_valid t =
  let rec go = function
    | [] | [ _ ] -> true
    | newer :: (older :: _ as rest) ->
        String.equal newer.prev_hash (block_hash older) && go rest
  in
  go t.blocks

let verify_anchor t r ~payload =
  chain_valid t
  &&
  match nth_block t r.height with
  | None -> false
  | Some b ->
      Array.exists
        (String.equal (Sha256.digest_string payload))
        b.payloads
      && String.equal r.payload_hash (Sha256.digest_string payload)

module Hostile = struct
  let rewrite_payload t ~height:h ~index data =
    match nth_block t h with
    | None -> false
    | Some b ->
        if index < 0 || index >= Array.length b.payloads then false
        else begin
          b.payloads.(index) <- Sha256.digest_string data;
          true
        end
end
