lib/trusted_store/public_chain.mli:
