lib/trusted_store/digest_manager.ml: Float List Printf Sql_ledger String Worm_store
