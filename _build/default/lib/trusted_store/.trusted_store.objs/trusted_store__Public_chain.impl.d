lib/trusted_store/public_chain.ml: Array Ledger_crypto List String
