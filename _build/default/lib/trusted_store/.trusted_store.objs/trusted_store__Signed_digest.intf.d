lib/trusted_store/signed_digest.mli: Ledger_crypto Sjson Sql_ledger
