lib/trusted_store/digest_manager.mli: Sql_ledger Worm_store
