lib/trusted_store/worm_store.ml: Array Filename Hashtbl Ledger_crypto List Option Printf String Sys Unix
