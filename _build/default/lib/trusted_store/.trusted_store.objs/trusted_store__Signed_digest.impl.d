lib/trusted_store/signed_digest.ml: Ledger_crypto Printf Sjson Sql_ledger String
