lib/trusted_store/worm_store.mli:
