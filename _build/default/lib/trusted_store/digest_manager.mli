(** Automated digest management (paper §2.4, §3.6).

    Periodically uploads Database Digests to the WORM store under a path
    that encodes the database id and its current *incarnation* (create
    time), so that digests survive point-in-time restores and every
    incarnation's digests remain available to verification. Digest issuance
    is gated on geo-replication: a digest is only issued once its last
    commit has reached the secondary, and a persistent lag raises an
    alert. *)

type t

type upload_outcome =
  | Uploaded of Sql_ledger.Digest.t
  | Nothing_to_upload        (** no transaction committed yet *)
  | Deferred_replication_lag (** secondary too far behind; retry later *)
  | Alert_replication_stuck  (** lag persisted past the alert threshold *)

val create :
  ?replicated_upto:(unit -> float) ->
  ?alert_after_deferrals:int ->
  store:Worm_store.t ->
  unit ->
  t
(** [replicated_upto ()] reports the commit timestamp up to which the
    geo-secondary has caught up (defaults to "fully caught up").
    [alert_after_deferrals] (default 5) consecutive deferrals escalate to
    {!Alert_replication_stuck}. *)

val upload : t -> Sql_ledger.Database.t -> upload_outcome
(** Generate a digest (closing the current block) and append it to the
    incarnation's blob. *)

val blob_of : db_id:string -> create_time:float -> string
(** Blob naming scheme: ["digests/<db_id>/<create_time>"]. *)

val digests_for_incarnation :
  t -> db_id:string -> create_time:float -> (Sql_ledger.Digest.t list, string) result

val all_digests : t -> db_id:string -> (float * Sql_ledger.Digest.t list) list
(** Digests grouped by incarnation create time (ascending) — the
    cross-incarnation view verification uses after restores (§3.6). Users
    can inspect this to spot when the database was restored and how far
    back. *)

val latest_digest : t -> db:Sql_ledger.Database.t -> Sql_ledger.Digest.t option
(** Most recent digest stored for the database's current incarnation. *)

val deferral_count : t -> int
