type t = Value.t array

let of_list = Array.of_list
let to_list = Array.to_list

let get row i =
  if i < 0 || i >= Array.length row then invalid_arg "Row.get: out of range";
  row.(i)

let set row i v =
  if i < 0 || i >= Array.length row then invalid_arg "Row.set: out of range";
  let copy = Array.copy row in
  copy.(i) <- v;
  copy

let project row ordinals =
  let ords = Array.of_list ordinals in
  Array.map (fun i -> get row i) ords

let append row extra = Array.append row (Array.of_list extra)

let compare a b =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la && i >= lb then 0
    else if i >= la then -1
    else if i >= lb then 1
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let equal a b = compare a b = 0

let pp fmt row =
  Format.fprintf fmt "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
       Value.pp)
    (to_list row)
