type t =
  | Null
  | Int of int
  | Bool of bool
  | Float of float
  | String of string
  | Datetime of float

let is_null = function Null -> true | _ -> false

let conforms dtype v =
  match (dtype, v) with
  | _, Null -> true
  | Datatype.Smallint, Int i -> i >= -32768 && i <= 32767
  | Datatype.Int, Int i -> i >= -2147483648 && i <= 2147483647
  | Datatype.Bigint, Int _ -> true
  | Datatype.Bool, Bool _ -> true
  | Datatype.Float, Float _ -> true
  | Datatype.Varchar max_len, String s -> String.length s <= max_len
  | Datatype.Datetime, Datetime _ -> true
  | _ -> false

let constructor_rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ | Float _ -> 2
  | Datetime _ -> 3
  | String _ -> 4

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Int x, Int y -> Stdlib.compare x y
  | Float x, Float y -> Stdlib.compare x y
  | Int x, Float y -> Stdlib.compare (float_of_int x) y
  | Float x, Int y -> Stdlib.compare x (float_of_int y)
  | Bool x, Bool y -> Stdlib.compare x y
  | String x, String y -> String.compare x y
  | Datetime x, Datetime y -> Stdlib.compare x y
  | a, b -> Stdlib.compare (constructor_rank a) (constructor_rank b)

let equal a b = compare a b = 0

let be_bytes width v =
  let out = Bytes.create width in
  for i = 0 to width - 1 do
    Bytes.set out i (Char.chr ((v lsr (8 * (width - 1 - i))) land 0xFF))
  done;
  Bytes.unsafe_to_string out

let encode dtype v =
  if not (conforms dtype v) then
    invalid_arg
      (Printf.sprintf "Value.encode: value does not conform to %s"
         (Datatype.to_string dtype));
  match (dtype, v) with
  | _, Null -> invalid_arg "Value.encode: Null has no payload"
  | Datatype.Smallint, Int i -> be_bytes 2 (i land 0xFFFF)
  | Datatype.Int, Int i -> be_bytes 4 (i land 0xFFFFFFFF)
  | Datatype.Bigint, Int i -> be_bytes 8 i
  | Datatype.Bool, Bool b -> if b then "\x01" else "\x00"
  | Datatype.Float, Float f -> be_bytes 8 (Int64.to_int (Int64.bits_of_float f))
  | Datatype.Datetime, Datetime f ->
      be_bytes 8 (Int64.to_int (Int64.bits_of_float f))
  | Datatype.Varchar _, String s -> s
  | _ -> assert false

module Sha256 = Ledger_crypto.Sha256

let encoded_length dtype v =
  match (dtype, v) with
  | _, Null -> invalid_arg "Value.encoded_length: Null has no payload"
  | Datatype.Smallint, Int _ -> 2
  | Datatype.Int, Int _ -> 4
  | (Datatype.Bigint, Int _ | Datatype.Float, Float _ | Datatype.Datetime, Datetime _) -> 8
  | Datatype.Bool, Bool _ -> 1
  | Datatype.Varchar _, String s -> String.length s
  | _ ->
      invalid_arg
        (Printf.sprintf "Value.encoded_length: value does not conform to %s"
           (Datatype.to_string dtype))

(* Must stay byte-for-byte identical to [encode]: same shifts, including the
   quirk that float bits go through Int64.to_int (63-bit truncation). *)
let encode_into dtype v ctx =
  if not (conforms dtype v) then
    invalid_arg
      (Printf.sprintf "Value.encode_into: value does not conform to %s"
         (Datatype.to_string dtype));
  match (dtype, v) with
  | _, Null -> invalid_arg "Value.encode_into: Null has no payload"
  | Datatype.Smallint, Int i -> Sha256.feed_be ctx ~width:2 (i land 0xFFFF)
  | Datatype.Int, Int i -> Sha256.feed_be ctx ~width:4 (i land 0xFFFFFFFF)
  | Datatype.Bigint, Int i -> Sha256.feed_be ctx ~width:8 i
  | Datatype.Bool, Bool b -> Sha256.feed_byte ctx (if b then 1 else 0)
  | Datatype.Float, Float f ->
      Sha256.feed_be ctx ~width:8 (Int64.to_int (Int64.bits_of_float f))
  | Datatype.Datetime, Datetime f ->
      Sha256.feed_be ctx ~width:8 (Int64.to_int (Int64.bits_of_float f))
  | Datatype.Varchar _, String s -> Sha256.feed_string ctx s
  | _ -> assert false

let tagged_encode v =
  let buf = Buffer.create 16 in
  let add_len n =
    for i = 3 downto 0 do
      Buffer.add_char buf (Char.chr ((n lsr (8 * i)) land 0xFF))
    done
  in
  (match v with
  | Null -> Buffer.add_char buf 'N'
  | Int i ->
      Buffer.add_char buf 'I';
      for b = 7 downto 0 do
        Buffer.add_char buf (Char.chr ((i lsr (8 * b)) land 0xFF))
      done
  | Bool b ->
      Buffer.add_char buf 'B';
      Buffer.add_char buf (if b then '\001' else '\000')
  | Float f | Datetime f ->
      Buffer.add_char buf (match v with Float _ -> 'F' | _ -> 'D');
      let bits = Int64.bits_of_float f in
      for b = 7 downto 0 do
        Buffer.add_char buf
          (Char.chr (Int64.to_int (Int64.shift_right_logical bits (8 * b)) land 0xFF))
      done
  | String s ->
      Buffer.add_char buf 'S';
      add_len (String.length s);
      Buffer.add_string buf s);
  Buffer.contents buf

(* Feed-to-sink twin of [tagged_encode]; byte-for-byte identical output.
   Unlike [encode], float bits here keep all 64 bits (Int64 logical shifts),
   so the Int64 path below must not truncate through a native int. *)
let tagged_feed ctx v =
  match v with
  | Null -> Sha256.feed_byte ctx (Char.code 'N')
  | Int i ->
      Sha256.feed_byte ctx (Char.code 'I');
      Sha256.feed_be ctx ~width:8 i
  | Bool b ->
      Sha256.feed_byte ctx (Char.code 'B');
      Sha256.feed_byte ctx (if b then 1 else 0)
  | Float f | Datetime f ->
      Sha256.feed_byte ctx (Char.code (match v with Float _ -> 'F' | _ -> 'D'));
      let bits = Int64.bits_of_float f in
      for b = 7 downto 0 do
        Sha256.feed_byte ctx
          (Int64.to_int (Int64.shift_right_logical bits (8 * b)) land 0xFF)
      done
  | String s ->
      Sha256.feed_byte ctx (Char.code 'S');
      Sha256.feed_be ctx ~width:4 (String.length s);
      Sha256.feed_string ctx s

let to_string = function
  | Null -> "NULL"
  | Int i -> string_of_int i
  | Bool b -> if b then "true" else "false"
  | Float f -> Printf.sprintf "%g" f
  | String s -> s
  | Datetime f -> Printf.sprintf "@%.6f" f

let to_json = function
  | Null -> Sjson.Null
  | Int i -> Sjson.Int i
  | Bool b -> Sjson.Bool b
  | Float f -> Sjson.Float f
  | String s -> Sjson.String s
  | Datetime f -> Sjson.Obj [ ("datetime", Sjson.Float f) ]

let of_json dtype json =
  match (dtype, json) with
  | _, Sjson.Null -> Some Null
  | (Datatype.Smallint | Datatype.Int | Datatype.Bigint), Sjson.Int i ->
      Some (Int i)
  | Datatype.Bool, Sjson.Bool b -> Some (Bool b)
  | Datatype.Float, Sjson.Float f -> Some (Float f)
  | Datatype.Float, Sjson.Int i -> Some (Float (float_of_int i))
  | Datatype.Varchar _, Sjson.String s -> Some (String s)
  | Datatype.Datetime, Sjson.Obj [ ("datetime", Sjson.Float f) ] ->
      Some (Datetime f)
  | Datatype.Datetime, Sjson.Obj [ ("datetime", Sjson.Int i) ] ->
      Some (Datetime (float_of_int i))
  | _ -> None

let to_tagged_json = function
  | Null -> Sjson.Null
  | Int i -> Sjson.Obj [ ("i", Sjson.Int i) ]
  | Bool b -> Sjson.Obj [ ("b", Sjson.Bool b) ]
  | Float f -> Sjson.Obj [ ("f", Sjson.Float f) ]
  | Datetime f -> Sjson.Obj [ ("d", Sjson.Float f) ]
  | String s -> Sjson.Obj [ ("s", Sjson.String s) ]

let of_tagged_json = function
  | Sjson.Null -> Some Null
  | Sjson.Obj [ ("i", Sjson.Int i) ] -> Some (Int i)
  | Sjson.Obj [ ("b", Sjson.Bool b) ] -> Some (Bool b)
  | Sjson.Obj [ ("f", Sjson.Float f) ] -> Some (Float f)
  | Sjson.Obj [ ("f", Sjson.Int i) ] -> Some (Float (float_of_int i))
  | Sjson.Obj [ ("d", Sjson.Float f) ] -> Some (Datetime f)
  | Sjson.Obj [ ("d", Sjson.Int i) ] -> Some (Datetime (float_of_int i))
  | Sjson.Obj [ ("s", Sjson.String s) ] -> Some (String s)
  | _ -> None

let pp fmt v = Format.pp_print_string fmt (to_string v)

let int i = Int i
let string s = String s
let bool b = Bool b
let float f = Float f
let datetime f = Datetime f
let null = Null
