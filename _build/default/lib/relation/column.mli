(** Column definition. *)

type t = {
  name : string;
  dtype : Datatype.t;
  nullable : bool;
  hidden : bool;
      (** Hidden columns (the ledger system columns of §3.1, and columns
          logically dropped per §3.5.2) are invisible to applications but
          remain in storage and in ledger views. *)
}

val make : ?nullable:bool -> ?hidden:bool -> string -> Datatype.t -> t
(** [nullable] defaults to false, [hidden] to false. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val to_json : t -> Sjson.t
val of_json : Sjson.t -> (t, string) result
