(** Table schemas: an ordered list of columns.

    Column ordinals are positions in this list and are bound into the row
    serialization format (§3.2), so reordering or retyping columns changes
    row hashes. *)

type t

val make : Column.t list -> t
(** Raises [Invalid_argument] on duplicate column names or an empty list. *)

val columns : t -> Column.t list
val arity : t -> int

val column : t -> int -> Column.t
(** By ordinal. Raises [Invalid_argument] when out of range. *)

val ordinal : t -> string -> int option
(** Ordinal of a column by (case-insensitive) name. *)

val find : t -> string -> Column.t option

val visible_columns : t -> (int * Column.t) list
(** Non-hidden columns with their ordinals, in order. *)

val validate_row : t -> Value.t array -> (unit, string) result
(** Arity, type conformance and nullability check. *)

val add_column : t -> Column.t -> t
(** Append a column (schema change §3.5.1). Raises [Invalid_argument] on a
    duplicate name. *)

val hide_column : t -> string -> t
(** Mark a column hidden (logical drop, §3.5.2). Raises [Invalid_argument]
    when the column does not exist. *)

val rename_column : t -> old_name:string -> new_name:string -> t

val set_column_type : t -> string -> Datatype.t -> t
(** Used only by the tamper toolkit to model metadata attacks; the engine
    itself never retypes columns in place. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
