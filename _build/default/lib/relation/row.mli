(** Rows: immutable-by-convention value arrays aligned with a schema. *)

type t = Value.t array

val of_list : Value.t list -> t
val to_list : t -> Value.t list

val get : t -> int -> Value.t
(** Raises [Invalid_argument] when out of range. *)

val set : t -> int -> Value.t -> t
(** Functional update: returns a copy. *)

val project : t -> int list -> t
(** Extract the values at the given ordinals, in order. *)

val append : t -> Value.t list -> t

val equal : t -> t -> bool
val compare : t -> t -> int
(** Lexicographic by {!Value.compare}; used for composite index keys. *)

val pp : Format.formatter -> t -> unit
