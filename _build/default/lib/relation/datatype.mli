(** Column data types of the mini relational engine.

    The set mirrors the SQL Server types the paper's examples use. The type
    (and its length parameter) participates in the row serialization format
    of §3.2, so that metadata tampering — e.g. redeclaring an INT column as
    SMALLINT to shift how bytes are interpreted — changes row hashes and is
    caught by verification. *)

type t =
  | Smallint   (** 16-bit signed *)
  | Int        (** 32-bit signed *)
  | Bigint     (** 63-bit signed (native OCaml int) *)
  | Bool
  | Float     (** IEEE 754 double *)
  | Varchar of int  (** variable-length string, max byte length *)
  | Datetime  (** seconds since the Unix epoch, with sub-second precision *)

val tag : t -> int
(** Stable 1-byte wire tag used by the serialization format. *)

val param : t -> int
(** Length parameter serialized alongside the tag ([Varchar] max length;
    0 for the fixed-width types). *)

val to_string : t -> string
(** SQL-ish rendering, e.g. ["VARCHAR(40)"]. *)

val of_string : string -> t option
(** Inverse of {!to_string} (case-insensitive). *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
