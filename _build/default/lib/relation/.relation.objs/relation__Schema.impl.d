lib/relation/schema.ml: Array Column Datatype Format Hashtbl List Option Printf String Value
