lib/relation/column.ml: Datatype Format Sjson String
