lib/relation/row.ml: Array Format Value
