lib/relation/column.mli: Datatype Format Sjson
