lib/relation/value.mli: Datatype Format Ledger_crypto Sjson
