lib/relation/schema.mli: Column Datatype Format Value
