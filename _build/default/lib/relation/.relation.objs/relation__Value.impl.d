lib/relation/value.ml: Buffer Bytes Char Datatype Format Int64 Ledger_crypto Printf Sjson Stdlib String
