lib/relation/value.ml: Buffer Bytes Char Datatype Format Int64 Printf Sjson Stdlib String
