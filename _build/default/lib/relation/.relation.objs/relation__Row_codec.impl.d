lib/relation/row_codec.ml: Array Buffer Char Column Datatype Ledger_crypto List Schema String Value
