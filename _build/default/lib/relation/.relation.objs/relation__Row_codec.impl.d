lib/relation/row_codec.ml: Array Buffer Bytes Char Column Datatype Ledger_crypto List Printf Schema String Value
