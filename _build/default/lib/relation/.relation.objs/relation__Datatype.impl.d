lib/relation/datatype.ml: Format Option Printf String
