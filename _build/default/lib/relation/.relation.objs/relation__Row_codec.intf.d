lib/relation/row_codec.mli: Row Schema
