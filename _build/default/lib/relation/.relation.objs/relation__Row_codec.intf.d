lib/relation/row_codec.mli: Ledger_crypto Row Schema
