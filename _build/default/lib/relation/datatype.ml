type t =
  | Smallint
  | Int
  | Bigint
  | Bool
  | Float
  | Varchar of int
  | Datetime

let tag = function
  | Smallint -> 1
  | Int -> 2
  | Bigint -> 3
  | Bool -> 4
  | Float -> 5
  | Varchar _ -> 6
  | Datetime -> 7

let param = function Varchar n -> n | _ -> 0

let to_string = function
  | Smallint -> "SMALLINT"
  | Int -> "INT"
  | Bigint -> "BIGINT"
  | Bool -> "BOOL"
  | Float -> "FLOAT"
  | Varchar n -> Printf.sprintf "VARCHAR(%d)" n
  | Datetime -> "DATETIME"

let of_string s =
  let s = String.uppercase_ascii (String.trim s) in
  match s with
  | "SMALLINT" -> Some Smallint
  | "INT" | "INTEGER" -> Some Int
  | "BIGINT" -> Some Bigint
  | "BOOL" | "BIT" -> Some Bool
  | "FLOAT" | "REAL" | "DOUBLE" -> Some Float
  | "DATETIME" -> Some Datetime
  | _ ->
      if String.length s > 8 && String.sub s 0 8 = "VARCHAR(" && s.[String.length s - 1] = ')'
      then
        int_of_string_opt (String.sub s 8 (String.length s - 9))
        |> Option.map (fun n -> Varchar n)
      else None

let equal a b =
  match (a, b) with
  | Smallint, Smallint | Int, Int | Bigint, Bigint | Bool, Bool
  | Float, Float | Datetime, Datetime ->
      true
  | Varchar n, Varchar m -> n = m
  | _ -> false

let pp fmt t = Format.pp_print_string fmt (to_string t)
