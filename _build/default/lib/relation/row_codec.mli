(** Row serialization and hashing — the format of paper §3.2 / Figure 4.

    The serialized form binds, per row: a format version, the number of
    serialized (non-NULL) columns, and for every {e non-NULL} column its ordinal,
    declared data type tag and length parameter, payload length, and payload
    bytes. NULL values are skipped entirely (which is what makes adding a
    nullable column hash-compatible with old rows, §3.5.1) while the explicit
    ordinals of the non-NULL columns prevent the NULL-reinterpretation attack
    described there. Binding the type tag and length defeats the
    metadata-swap attack of §3.2 (INT/SMALLINT redeclaration). *)

val format_version : int

val serialize : Schema.t -> Row.t -> string
(** Raises [Invalid_argument] when the row does not validate against the
    schema. *)

val hash : Schema.t -> Row.t -> string
(** 32-byte SHA-256 of {!serialize} — the paper's [LEDGERHASH] applied to a
    row. *)

val hash_into : Ledger_crypto.Sha256.t -> Schema.t -> Row.t -> string
(** Same digest as {!hash}, computed by streaming the serialization straight
    into the given scratch context ({!Ledger_crypto.Sha256.reset} is called
    first). Allocates only the returned 32-byte digest — no Buffer, no
    intermediate serialized string. The context can be reused across calls;
    this is the DML hot path. Raises [Invalid_argument] when the row does
    not validate against the schema. *)

type field = { ordinal : int; tag : int; param : int; payload : string }

val inspect : string -> (int * field list) option
(** Structural decode of a serialized row: [(serialized_column_count,
    fields)]. Used by
    forensic tooling and tests; returns [None] on malformed input. *)
