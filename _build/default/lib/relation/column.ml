type t = {
  name : string;
  dtype : Datatype.t;
  nullable : bool;
  hidden : bool;
}

let make ?(nullable = false) ?(hidden = false) name dtype =
  { name; dtype; nullable; hidden }

let equal a b =
  String.equal a.name b.name
  && Datatype.equal a.dtype b.dtype
  && a.nullable = b.nullable && a.hidden = b.hidden

let pp fmt c =
  Format.fprintf fmt "%s %a%s%s" c.name Datatype.pp c.dtype
    (if c.nullable then " NULL" else " NOT NULL")
    (if c.hidden then " HIDDEN" else "")

let to_json c =
  Sjson.Obj
    [
      ("name", Sjson.String c.name);
      ("type", Sjson.String (Datatype.to_string c.dtype));
      ("nullable", Sjson.Bool c.nullable);
      ("hidden", Sjson.Bool c.hidden);
    ]

let of_json json =
  try
    let name = Sjson.get_string (Sjson.member "name" json) in
    match Datatype.of_string (Sjson.get_string (Sjson.member "type" json)) with
    | None -> Error ("unknown data type for column " ^ name)
    | Some dtype ->
        Ok
          (make
             ~nullable:(Sjson.get_bool (Sjson.member "nullable" json))
             ~hidden:(Sjson.get_bool (Sjson.member "hidden" json))
             name dtype)
  with Invalid_argument e -> Error ("malformed column: " ^ e)
