type t = { cols : Column.t array }

let norm s = String.lowercase_ascii s

let make cols =
  if cols = [] then invalid_arg "Schema.make: empty column list";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (c : Column.t) ->
      let k = norm c.name in
      if Hashtbl.mem seen k then
        invalid_arg ("Schema.make: duplicate column " ^ c.name);
      Hashtbl.add seen k ())
    cols;
  { cols = Array.of_list cols }

let columns t = Array.to_list t.cols
let arity t = Array.length t.cols

let column t i =
  if i < 0 || i >= Array.length t.cols then
    invalid_arg "Schema.column: ordinal out of range";
  t.cols.(i)

let ordinal t name =
  let key = norm name in
  let rec find i =
    if i >= Array.length t.cols then None
    else if String.equal (norm t.cols.(i).Column.name) key then Some i
    else find (i + 1)
  in
  find 0

let find t name = Option.map (column t) (ordinal t name)

let visible_columns t =
  Array.to_list t.cols
  |> List.mapi (fun i c -> (i, c))
  |> List.filter (fun (_, (c : Column.t)) -> not c.hidden)

let validate_row t row =
  if Array.length row <> Array.length t.cols then
    Error
      (Printf.sprintf "arity mismatch: expected %d values, got %d"
         (Array.length t.cols) (Array.length row))
  else begin
    let err = ref None in
    Array.iteri
      (fun i v ->
        if !err = None then begin
          let c = t.cols.(i) in
          if Value.is_null v && not c.Column.nullable then
            err :=
              Some (Printf.sprintf "column %s is NOT NULL" c.Column.name)
          else if not (Value.conforms c.Column.dtype v) then
            err :=
              Some
                (Printf.sprintf "value %s does not conform to %s %s"
                   (Value.to_string v) c.Column.name
                   (Datatype.to_string c.Column.dtype))
        end)
      row;
    match !err with None -> Ok () | Some e -> Error e
  end

let add_column t (c : Column.t) =
  if ordinal t c.name <> None then
    invalid_arg ("Schema.add_column: duplicate column " ^ c.name);
  { cols = Array.append t.cols [| c |] }

let update_column t name f =
  match ordinal t name with
  | None -> invalid_arg ("Schema: no such column " ^ name)
  | Some i ->
      let cols = Array.copy t.cols in
      cols.(i) <- f cols.(i);
      { cols }

let hide_column t name =
  update_column t name (fun c -> { c with Column.hidden = true })

let rename_column t ~old_name ~new_name =
  if ordinal t new_name <> None then
    invalid_arg ("Schema.rename_column: duplicate column " ^ new_name);
  update_column t old_name (fun c -> { c with Column.name = new_name })

let set_column_type t name dtype =
  update_column t name (fun c -> { c with Column.dtype = dtype })

let equal a b =
  Array.length a.cols = Array.length b.cols
  && Array.for_all2 Column.equal a.cols b.cols

let pp fmt t =
  Format.fprintf fmt "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       Column.pp)
    (columns t)
