module Sha256 = Ledger_crypto.Sha256

let format_version = 1

let add_be buf width v =
  for i = width - 1 downto 0 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xFF))
  done

let serialize schema row =
  (match Schema.validate_row schema row with
  | Ok () -> ()
  | Error e -> invalid_arg ("Row_codec.serialize: " ^ e));
  let buf = Buffer.create 64 in
  Buffer.add_char buf (Char.chr format_version);
  (* The bound column count is the number of *serialized* (non-NULL)
     fields: NULLs are skipped entirely so that adding a nullable column
     leaves existing row hashes unchanged (§3.5.1), while the explicit
     ordinals of the non-NULL fields still pin their interpretation. *)
  let non_null = Array.fold_left (fun n v -> if Value.is_null v then n else n + 1) 0 row in
  add_be buf 2 non_null;
  Array.iteri
    (fun i v ->
      if not (Value.is_null v) then begin
        let col = Schema.column schema i in
        let payload = Value.encode col.Column.dtype v in
        add_be buf 2 i;
        add_be buf 1 (Datatype.tag col.Column.dtype);
        add_be buf 4 (Datatype.param col.Column.dtype);
        add_be buf 4 (String.length payload);
        Buffer.add_string buf payload
      end)
    row;
  Buffer.contents buf

let hash schema row = Sha256.digest_string (serialize schema row)

type field = { ordinal : int; tag : int; param : int; payload : string }

let inspect s =
  let pos = ref 0 in
  let len = String.length s in
  let read_be width =
    if !pos + width > len then raise Exit;
    let v = ref 0 in
    for _ = 1 to width do
      v := (!v lsl 8) lor Char.code s.[!pos];
      incr pos
    done;
    !v
  in
  try
    let version = read_be 1 in
    if version <> format_version then raise Exit;
    let count = read_be 2 in
    let fields = ref [] in
    while !pos < len do
      let ordinal = read_be 2 in
      let tag = read_be 1 in
      let param = read_be 4 in
      let payload_len = read_be 4 in
      if !pos + payload_len > len then raise Exit;
      let payload = String.sub s !pos payload_len in
      pos := !pos + payload_len;
      fields := { ordinal; tag; param; payload } :: !fields
    done;
    Some (count, List.rev !fields)
  with Exit -> None
