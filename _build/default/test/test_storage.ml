(* Table_store: CRUD, indexes, migration, deep copy, and the Raw attacker
   surface semantics. *)

open Relation
module TS = Storage.Table_store

let vi = Value.int
let vs s = Value.String s

let schema =
  Schema.make
    [
      Column.make "id" Datatype.Int;
      Column.make "name" (Datatype.Varchar 32);
      Column.make "score" Datatype.Int;
    ]

let mk () = TS.create ~name:"t" ~table_id:1 ~schema ~key_ordinals:[ 0 ]

let populate store n =
  for i = 1 to n do
    TS.insert store [| vi i; vs (Printf.sprintf "row%03d" i); vi (i mod 7) |]
  done

let test_insert_find_delete () =
  let s = mk () in
  populate s 20;
  Alcotest.(check int) "count" 20 (TS.row_count s);
  (match TS.find s ~key:[| vi 7 |] with
  | Some row -> Alcotest.(check bool) "name" true (Value.equal row.(1) (vs "row007"))
  | None -> Alcotest.fail "missing row");
  let deleted = TS.delete s ~key:[| vi 7 |] in
  Alcotest.(check bool) "deleted row" true (Value.equal deleted.(0) (vi 7));
  Alcotest.(check bool) "gone" true (TS.find s ~key:[| vi 7 |] = None);
  Alcotest.(check int) "count after" 19 (TS.row_count s)

let test_duplicate_key () =
  let s = mk () in
  populate s 1;
  Alcotest.(check bool) "duplicate raises" true
    (match TS.insert s [| vi 1; vs "dup"; vi 0 |] with
    | exception TS.Duplicate_key _ -> true
    | _ -> false)

let test_schema_validation () =
  let s = mk () in
  Alcotest.(check bool) "arity" true
    (match TS.insert s [| vi 1 |] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "null in NOT NULL" true
    (match TS.insert s [| vi 1; Value.Null; vi 0 |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_update () =
  let s = mk () in
  populate s 3;
  TS.update s [| vi 2; vs "updated"; vi 99 |];
  Alcotest.(check bool) "updated" true
    (match TS.find s ~key:[| vi 2 |] with
    | Some row -> Value.equal row.(1) (vs "updated")
    | None -> false);
  Alcotest.(check bool) "missing raises" true
    (match TS.update s [| vi 42; vs "x"; vi 0 |] with
    | exception TS.Not_found_key _ -> true
    | _ -> false)

let test_scan_order_and_range () =
  let s = mk () in
  List.iter
    (fun i -> TS.insert s [| vi i; vs "x"; vi 0 |])
    [ 30; 10; 20; 5; 25 ];
  Alcotest.(check (list int))
    "clustered order" [ 5; 10; 20; 25; 30 ]
    (List.map (fun r -> match r.(0) with Value.Int i -> i | _ -> -1) (TS.scan s));
  let r = TS.range s ~lo:[| vi 10 |] ~hi:[| vi 25 |] () in
  Alcotest.(check int) "range" 3 (List.length r)

let test_indexes () =
  let s = mk () in
  populate s 21;
  TS.create_index s ~name:"by_score" ~key_ordinals:[ 2 ];
  let hits = TS.index_lookup s ~index_name:"by_score" ~key:[| vi 3 |] in
  Alcotest.(check int) "lookup count" 3 (List.length hits);
  List.iter
    (fun row ->
      Alcotest.(check bool) "score 3" true (Value.equal row.(2) (vi 3)))
    hits;
  (* index maintenance across update/delete *)
  TS.update s [| vi 3; vs "row003"; vi 100 |];
  Alcotest.(check int) "after update" 2
    (List.length (TS.index_lookup s ~index_name:"by_score" ~key:[| vi 3 |]));
  Alcotest.(check int) "new key" 1
    (List.length (TS.index_lookup s ~index_name:"by_score" ~key:[| vi 100 |]));
  ignore (TS.delete s ~key:[| vi 10 |]);
  Alcotest.(check int) "after delete" 1
    (List.length (TS.index_lookup s ~index_name:"by_score" ~key:[| vi 3 |]));
  Alcotest.(check int) "scan size" 20 (List.length (TS.index_scan s ~index_name:"by_score"));
  TS.drop_index s ~name:"by_score";
  Alcotest.(check int) "dropped" 0 (List.length (TS.indexes s));
  TS.create_index s ~name:"i" ~key_ordinals:[ 1 ];
  Alcotest.(check bool) "dup index name" true
    (match TS.create_index s ~name:"i" ~key_ordinals:[ 2 ] with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_migrate () =
  let s = mk () in
  populate s 5;
  TS.create_index s ~name:"by_score" ~key_ordinals:[ 2 ];
  let wider =
    Schema.add_column schema (Column.make ~nullable:true "extra" Datatype.Bool)
  in
  TS.migrate s ~schema:wider ~f:(fun row -> Array.append row [| Value.Null |]);
  Alcotest.(check int) "count preserved" 5 (TS.row_count s);
  Alcotest.(check int) "arity" 4
    (Array.length (Option.get (TS.find s ~key:[| vi 1 |])));
  Alcotest.(check int) "index rebuilt" 5
    (List.length (TS.index_scan s ~index_name:"by_score"))

let test_deep_copy_isolation () =
  let s = mk () in
  populate s 5;
  TS.create_index s ~name:"i" ~key_ordinals:[ 2 ];
  let copy = TS.deep_copy s in
  (* Mutations to the copy must not leak into the original. *)
  ignore (TS.delete copy ~key:[| vi 1 |]);
  ignore (TS.Raw.overwrite_value copy ~key:[| vi 2 |] ~ordinal:1 (vs "hacked"));
  Alcotest.(check int) "original count" 5 (TS.row_count s);
  Alcotest.(check bool) "original value" true
    (match TS.find s ~key:[| vi 2 |] with
    | Some row -> Value.equal row.(1) (vs "row002")
    | None -> false);
  Alcotest.(check int) "copy count" 4 (TS.row_count copy)

let test_raw_bypasses_everything () =
  let s = mk () in
  populate s 3;
  TS.create_index s ~name:"by_score" ~key_ordinals:[ 2 ];
  (* Raw overwrite leaves the index stale — that is the attack model. *)
  Alcotest.(check bool) "overwrite" true
    (TS.Raw.overwrite_value s ~key:[| vi 1 |] ~ordinal:2 (vi 999));
  Alcotest.(check bool) "storage sees it" true
    (match TS.find s ~key:[| vi 1 |] with
    | Some row -> Value.equal row.(2) (vi 999)
    | None -> false);
  Alcotest.(check int) "index did NOT move" 0
    (List.length (TS.index_lookup s ~index_name:"by_score" ~key:[| vi 999 |]));
  Alcotest.(check bool) "missing key" false
    (TS.Raw.overwrite_value s ~key:[| vi 42 |] ~ordinal:0 (vi 0));
  (* Raw delete bypasses indexes too. *)
  Alcotest.(check bool) "raw delete" true (TS.Raw.delete_row s ~key:[| vi 2 |]);
  Alcotest.(check int) "index still has 3 entries" 3
    (List.length (TS.index_scan s ~index_name:"by_score"))

let test_raw_index_rewrite () =
  let s = mk () in
  populate s 3;
  TS.create_index s ~name:"by_score" ~key_ordinals:[ 2 ];
  Alcotest.(check bool) "rewrite" true
    (TS.Raw.overwrite_index_entry s ~index_name:"by_score" ~old_key:[| vi 1 |]
       ~pk:[| vi 1 |] ~new_key:[| vi 77 |]);
  Alcotest.(check int) "diverted" 1
    (List.length (TS.index_lookup s ~index_name:"by_score" ~key:[| vi 77 |]));
  Alcotest.(check bool) "missing entry" false
    (TS.Raw.overwrite_index_entry s ~index_name:"by_score" ~old_key:[| vi 50 |]
       ~pk:[| vi 1 |] ~new_key:[| vi 1 |])

let test_composite_key () =
  let s2 =
    TS.create ~name:"c" ~table_id:2
      ~schema:
        (Schema.make
           [
             Column.make "a" Datatype.Int;
             Column.make "b" Datatype.Int;
             Column.make "v" (Datatype.Varchar 8);
           ])
      ~key_ordinals:[ 0; 1 ]
  in
  TS.insert s2 [| vi 1; vi 1; vs "x" |];
  TS.insert s2 [| vi 1; vi 2; vs "y" |];
  TS.insert s2 [| vi 2; vi 1; vs "z" |];
  Alcotest.(check bool) "composite find" true
    (match TS.find s2 ~key:[| vi 1; vi 2 |] with
    | Some row -> Value.equal row.(2) (vs "y")
    | None -> false);
  Alcotest.(check int) "count" 3 (TS.row_count s2)

let test_create_errors () =
  Alcotest.(check bool) "empty key" true
    (match TS.create ~name:"x" ~table_id:0 ~schema ~key_ordinals:[] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "bad ordinal" true
    (match TS.create ~name:"x" ~table_id:0 ~schema ~key_ordinals:[ 9 ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let () =
  Alcotest.run "storage"
    [
      ( "crud",
        [
          Alcotest.test_case "insert/find/delete" `Quick test_insert_find_delete;
          Alcotest.test_case "duplicate key" `Quick test_duplicate_key;
          Alcotest.test_case "validation" `Quick test_schema_validation;
          Alcotest.test_case "update" `Quick test_update;
          Alcotest.test_case "scan order + range" `Quick test_scan_order_and_range;
          Alcotest.test_case "composite keys" `Quick test_composite_key;
          Alcotest.test_case "create errors" `Quick test_create_errors;
        ] );
      ( "indexes",
        [
          Alcotest.test_case "lifecycle + maintenance" `Quick test_indexes;
          Alcotest.test_case "migrate" `Quick test_migrate;
        ] );
      ( "copies + raw surface",
        [
          Alcotest.test_case "deep copy isolation" `Quick test_deep_copy_isolation;
          Alcotest.test_case "raw bypass" `Quick test_raw_bypasses_everything;
          Alcotest.test_case "raw index rewrite" `Quick test_raw_index_rewrite;
        ] );
    ]
