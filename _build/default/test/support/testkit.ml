(* Shared fixtures for the ledger test suites. *)

open Relation
open Sql_ledger

let vi = Value.int
let vs s = Value.String s

(* A deterministic clock: strictly increasing, 1s ticks from t=1000. *)
let make_clock () =
  let t = ref 1000.0 in
  fun () ->
    t := !t +. 1.0;
    !t

let make_db ?(block_size = 4) ?signing_seed ?wal_path name =
  Database.create ~block_size ?signing_seed ?wal_path ~clock:(make_clock ())
    ~name ()

(* The Figure 2 accounts table. *)
let accounts_columns =
  [ Column.make "name" (Datatype.Varchar 40); Column.make "balance" Datatype.Int ]

let make_accounts ?kind db =
  Database.create_ledger_table db ?kind ~name:"accounts"
    ~columns:accounts_columns ~key:[ "name" ] ()

let commit_one db user f =
  let (), entry = Database.with_txn db ~user f in
  entry

let insert_account db accounts name balance =
  commit_one db "teller" (fun txn ->
      Txn.insert txn accounts [| vs name; vi balance |])

let update_account db accounts name balance =
  commit_one db "teller" (fun txn ->
      Txn.update txn accounts ~key:[| vs name |] [| vs name; vi balance |])

let delete_account db accounts name =
  commit_one db "teller" (fun txn -> Txn.delete txn accounts ~key:[| vs name |])

(* Reproduce the exact Figure 2 history:
   insert Nick 50, John 500, Joe 30, Mary 200;
   update Nick -> 100; delete Joe. *)
let figure2 db accounts =
  ignore (insert_account db accounts "Nick" 50);
  ignore (insert_account db accounts "John" 500);
  ignore (insert_account db accounts "Joe" 30);
  ignore (insert_account db accounts "Mary" 200);
  ignore (update_account db accounts "Nick" 100);
  ignore (delete_account db accounts "Joe")

let fresh_digest db = Option.get (Database.generate_digest db)

let verify_ok db digests = Verifier.ok (Verifier.verify db ~digests)

let violations db digests = (Verifier.verify db ~digests).Verifier.violations
