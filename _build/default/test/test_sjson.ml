(* JSON codec: parse/print round-trips, escapes, numbers, errors. *)

let parse = Sjson.of_string
let print = Sjson.to_string

let test_scalars () =
  Alcotest.(check bool) "null" true (Sjson.equal (parse "null") Sjson.Null);
  Alcotest.(check bool) "true" true (Sjson.equal (parse "true") (Sjson.Bool true));
  Alcotest.(check bool) "false" true (Sjson.equal (parse "false") (Sjson.Bool false));
  Alcotest.(check bool) "int" true (Sjson.equal (parse "42") (Sjson.Int 42));
  Alcotest.(check bool) "negative" true (Sjson.equal (parse "-7") (Sjson.Int (-7)));
  Alcotest.(check bool) "float" true (Sjson.equal (parse "3.5") (Sjson.Float 3.5));
  Alcotest.(check bool)
    "exponent" true
    (Sjson.equal (parse "1e3") (Sjson.Float 1000.0));
  Alcotest.(check bool)
    "string" true
    (Sjson.equal (parse "\"hi\"") (Sjson.String "hi"))

let test_structures () =
  let v = parse {|{"a": [1, 2.5, "x", null, true], "b": {"c": []}}|} in
  Alcotest.(check int) "a length" 5 (List.length (Sjson.get_list (Sjson.member "a" v)));
  Alcotest.(check bool)
    "b.c empty" true
    (Sjson.equal (Sjson.member "c" (Sjson.member "b" v)) (Sjson.List []));
  Alcotest.(check bool) "missing member" true (Sjson.member "zzz" v = Sjson.Null)

let test_string_escapes () =
  let cases =
    [
      ({|"a\nb"|}, "a\nb");
      ({|"a\tb"|}, "a\tb");
      ({|"a\"b"|}, "a\"b");
      ({|"a\\b"|}, "a\\b");
      ({|"a\/b"|}, "a/b");
      ({|"A"|}, "A");
      ({|"é"|}, "\xc3\xa9");
      ({|"😀"|}, "\xf0\x9f\x98\x80");
    ]
  in
  List.iter
    (fun (input, expected) ->
      Alcotest.(check string) input expected (Sjson.get_string (parse input)))
    cases

let test_print_escapes () =
  Alcotest.(check string)
    "control chars" {|"a\nb\u0001"|}
    (print (Sjson.String "a\nb\x01"))

let test_roundtrip_documents () =
  let docs =
    [
      {|{"block_id":3,"hash":"abc","nested":{"xs":[1,2,3]},"f":2.5}|};
      {|[]|};
      {|[{"a":1},{"a":2}]|};
      {|{"empty_string":""}|};
    ]
  in
  List.iter
    (fun doc ->
      let v = parse doc in
      Alcotest.(check bool) doc true (Sjson.equal v (parse (print v))))
    docs

let test_pretty_roundtrip () =
  let v = parse {|{"a":[1,{"b":null}],"c":"x"}|} in
  Alcotest.(check bool)
    "pretty parses back" true
    (Sjson.equal v (parse (Sjson.to_string ~pretty:true v)))

let test_errors () =
  let bad =
    [ "{"; "["; "\"unterminated"; "{\"a\":}"; "[1,]"; "tru"; "1 2"; "{'a':1}" ]
  in
  List.iter
    (fun input ->
      match parse input with
      | exception Sjson.Parse_error _ -> ()
      | _ -> Alcotest.failf "expected parse error for %s" input)
    bad

let test_accessor_errors () =
  Alcotest.check_raises "get_string on int" (Invalid_argument "Sjson.get_string")
    (fun () -> ignore (Sjson.get_string (Sjson.Int 1)));
  Alcotest.check_raises "member on list" (Invalid_argument "Sjson.member: not an object")
    (fun () -> ignore (Sjson.member "a" (Sjson.List [])))

let test_int_float_equality () =
  Alcotest.(check bool) "1 = 1.0" true (Sjson.equal (Sjson.Int 1) (Sjson.Float 1.0));
  Alcotest.(check bool) "1 <> 1.5" false (Sjson.equal (Sjson.Int 1) (Sjson.Float 1.5))

(* property: print → parse is the identity over generated values *)
let json_gen =
  let open QCheck.Gen in
  sized @@ fix (fun self n ->
      if n <= 0 then
        oneof
          [
            return Sjson.Null;
            map (fun b -> Sjson.Bool b) bool;
            map (fun i -> Sjson.Int i) small_signed_int;
            map (fun s -> Sjson.String s) (string_size ~gen:printable (0 -- 10));
          ]
      else
        frequency
          [
            (2, map (fun l -> Sjson.List l) (list_size (0 -- 4) (self (n / 2))));
            ( 2,
              map
                (fun fields -> Sjson.Obj fields)
                (list_size (0 -- 4)
                   (pair (string_size ~gen:(char_range 'a' 'z') (1 -- 6)) (self (n / 2)))) );
            (1, self 0);
          ])

(* Object keys must be unique for equality after roundtrip. *)
let rec dedup_keys = function
  | Sjson.Obj fields ->
      let seen = Hashtbl.create 8 in
      Sjson.Obj
        (List.filter_map
           (fun (k, v) ->
             if Hashtbl.mem seen k then None
             else begin
               Hashtbl.add seen k ();
               Some (k, dedup_keys v)
             end)
           fields)
  | Sjson.List items -> Sjson.List (List.map dedup_keys items)
  | v -> v

let prop_roundtrip =
  QCheck.Test.make ~name:"print/parse roundtrip" ~count:300
    (QCheck.make json_gen)
    (fun v ->
      let v = dedup_keys v in
      Sjson.equal v (parse (print v)))

let () =
  Alcotest.run "sjson"
    [
      ( "parse",
        [
          Alcotest.test_case "scalars" `Quick test_scalars;
          Alcotest.test_case "structures" `Quick test_structures;
          Alcotest.test_case "string escapes" `Quick test_string_escapes;
          Alcotest.test_case "errors" `Quick test_errors;
        ] );
      ( "print",
        [
          Alcotest.test_case "escapes" `Quick test_print_escapes;
          Alcotest.test_case "roundtrip documents" `Quick test_roundtrip_documents;
          Alcotest.test_case "pretty" `Quick test_pretty_roundtrip;
        ] );
      ( "accessors",
        [
          Alcotest.test_case "errors" `Quick test_accessor_errors;
          Alcotest.test_case "int/float equality" `Quick test_int_float_equality;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_roundtrip ]);
    ]
