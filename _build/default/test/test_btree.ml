(* B+tree: unit cases plus model-based testing against Map. *)

module M = Map.Make (Int)

let mk ?(order = 8) () = Btree.create ~order ~cmp:compare ()

let test_empty () =
  let t = mk () in
  Alcotest.(check int) "length" 0 (Btree.length t);
  Alcotest.(check bool) "find" true (Btree.find t 1 = None);
  Alcotest.(check bool) "min" true (Btree.min_binding t = None);
  Alcotest.(check bool) "max" true (Btree.max_binding t = None);
  Alcotest.(check bool) "remove" true (Btree.remove t 1 = None);
  Btree.check_invariants t

let test_insert_find () =
  let t = mk () in
  for i = 1 to 100 do
    Alcotest.(check bool) "fresh" true (Btree.insert t i (i * 10) = None)
  done;
  Alcotest.(check int) "length" 100 (Btree.length t);
  for i = 1 to 100 do
    Alcotest.(check bool) "found" true (Btree.find t i = Some (i * 10))
  done;
  Btree.check_invariants t

let test_replace () =
  let t = mk () in
  ignore (Btree.insert t 5 "a");
  Alcotest.(check bool) "old value" true (Btree.insert t 5 "b" = Some "a");
  Alcotest.(check bool) "new value" true (Btree.find t 5 = Some "b");
  Alcotest.(check int) "length unchanged" 1 (Btree.length t)

let test_ordered_iteration () =
  let t = mk () in
  let input = [ 42; 7; 99; 1; 55; 23; 88; 3 ] in
  List.iter (fun k -> ignore (Btree.insert t k k)) input;
  Alcotest.(check (list int))
    "sorted"
    (List.sort compare input)
    (List.map fst (Btree.to_list t))

let test_range () =
  let t = mk () in
  for i = 1 to 50 do
    ignore (Btree.insert t (i * 2) i)
  done;
  let r = Btree.range t ~lo:10 ~hi:20 () in
  Alcotest.(check (list int)) "range keys" [ 10; 12; 14; 16; 18; 20 ] (List.map fst r);
  Alcotest.(check int) "open low" 5 (List.length (Btree.range t ~hi:10 ()));
  Alcotest.(check int) "open high" 6 (List.length (Btree.range t ~lo:90 ()));
  Alcotest.(check int) "full" 50 (List.length (Btree.range t ()));
  Alcotest.(check int) "empty range" 0 (List.length (Btree.range t ~lo:11 ~hi:11 ()))

let test_delete_all_orders () =
  (* Delete in ascending, descending and interleaved order. *)
  let build () =
    let t = mk ~order:4 () in
    for i = 1 to 64 do
      ignore (Btree.insert t i i)
    done;
    t
  in
  let check_deletion t keys =
    List.iter
      (fun k ->
        Alcotest.(check bool) "removed" true (Btree.remove t k = Some k);
        Btree.check_invariants t)
      keys;
    Alcotest.(check int) "empty" 0 (Btree.length t)
  in
  check_deletion (build ()) (List.init 64 (fun i -> i + 1));
  check_deletion (build ()) (List.init 64 (fun i -> 64 - i));
  check_deletion (build ())
    (List.init 32 (fun i -> (2 * i) + 1) @ List.init 32 (fun i -> 2 * (i + 1)))

let test_min_max () =
  let t = mk () in
  List.iter (fun k -> ignore (Btree.insert t k (string_of_int k))) [ 5; 2; 9; 7 ];
  Alcotest.(check bool) "min" true (Btree.min_binding t = Some (2, "2"));
  Alcotest.(check bool) "max" true (Btree.max_binding t = Some (9, "9"))

let test_clear () =
  let t = mk () in
  for i = 1 to 100 do
    ignore (Btree.insert t i i)
  done;
  Btree.clear t;
  Alcotest.(check int) "cleared" 0 (Btree.length t);
  ignore (Btree.insert t 1 1);
  Alcotest.(check int) "usable after clear" 1 (Btree.length t)

let test_bad_order () =
  Alcotest.check_raises "order < 4"
    (Invalid_argument "Btree.create: order must be >= 4") (fun () ->
      ignore (Btree.create ~order:3 ~cmp:compare ()))

let model_scenario ~order ~key_space ~steps seed =
  let t = Btree.create ~order ~cmp:compare () in
  let model = ref M.empty in
  let prng = Workload.Prng.create seed in
  for step = 1 to steps do
    let k = Workload.Prng.int prng key_space in
    if Workload.Prng.bool prng then begin
      let prev = Btree.insert t k step in
      if prev <> M.find_opt k !model then failwith "insert result mismatch";
      model := M.add k step !model
    end
    else begin
      let prev = Btree.remove t k in
      if prev <> M.find_opt k !model then failwith "remove result mismatch";
      model := M.remove k !model
    end
  done;
  Btree.check_invariants t;
  Btree.to_list t = M.bindings !model && Btree.length t = M.cardinal !model

let test_model_small_order () =
  Alcotest.(check bool) "order 4" true (model_scenario ~order:4 ~key_space:80 ~steps:5000 1)

let test_model_default_order () =
  Alcotest.(check bool) "order 32" true
    (model_scenario ~order:32 ~key_space:500 ~steps:20000 2)

let prop_model =
  QCheck.Test.make ~name:"btree = Map over random op sequences" ~count:40
    (QCheck.make
       QCheck.Gen.(triple (4 -- 16) (1 -- 100) (0 -- 10_000)))
    (fun (order, key_space, seed) ->
      model_scenario ~order ~key_space ~steps:600 seed)

let prop_range_model =
  QCheck.Test.make ~name:"range = filtered bindings" ~count:60
    (QCheck.make QCheck.Gen.(triple (list_size (0 -- 200) (0 -- 100)) (0 -- 100) (0 -- 100)))
    (fun (keys, lo, hi) ->
      let t = mk ~order:5 () in
      List.iter (fun k -> ignore (Btree.insert t k k)) keys;
      let expected =
        List.sort_uniq compare keys
        |> List.filter (fun k -> k >= lo && k <= hi)
        |> List.map (fun k -> (k, k))
      in
      Btree.range t ~lo ~hi () = expected)

let () =
  Alcotest.run "btree"
    [
      ( "unit",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "insert/find" `Quick test_insert_find;
          Alcotest.test_case "replace" `Quick test_replace;
          Alcotest.test_case "ordered iteration" `Quick test_ordered_iteration;
          Alcotest.test_case "range" `Quick test_range;
          Alcotest.test_case "delete all orders" `Quick test_delete_all_orders;
          Alcotest.test_case "min/max" `Quick test_min_max;
          Alcotest.test_case "clear" `Quick test_clear;
          Alcotest.test_case "bad order" `Quick test_bad_order;
        ] );
      ( "model",
        [
          Alcotest.test_case "small order" `Quick test_model_small_order;
          Alcotest.test_case "default order" `Slow test_model_default_order;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_model; prop_range_model ] );
    ]
