(* Values, schemas, and the §3.2 row serialization format — including the
   metadata-swap and NULL-ordinal attack properties the format must have. *)

open Relation

let vi = Value.int
let vs s = Value.String s

let schema_2col =
  Schema.make
    [ Column.make "c1" Datatype.Int; Column.make "c2" Datatype.Smallint ]

let test_value_conformance () =
  Alcotest.(check bool) "int fits" true (Value.conforms Datatype.Int (vi 100));
  Alcotest.(check bool)
    "smallint overflow" false
    (Value.conforms Datatype.Smallint (vi 40000));
  Alcotest.(check bool)
    "smallint min" true
    (Value.conforms Datatype.Smallint (vi (-32768)));
  Alcotest.(check bool)
    "int overflow" false
    (Value.conforms Datatype.Int (vi 3_000_000_000));
  Alcotest.(check bool)
    "varchar fits" true
    (Value.conforms (Datatype.Varchar 3) (vs "abc"));
  Alcotest.(check bool)
    "varchar too long" false
    (Value.conforms (Datatype.Varchar 3) (vs "abcd"));
  Alcotest.(check bool) "null conforms everywhere" true
    (List.for_all
       (fun d -> Value.conforms d Value.Null)
       [ Datatype.Int; Datatype.Bool; Datatype.Varchar 1; Datatype.Datetime ]);
  Alcotest.(check bool)
    "wrong constructor" false
    (Value.conforms Datatype.Int (vs "1"))

let test_value_compare () =
  Alcotest.(check bool) "null first" true (Value.compare Value.Null (vi 0) < 0);
  Alcotest.(check bool) "ints" true (Value.compare (vi 1) (vi 2) < 0);
  Alcotest.(check bool)
    "int vs float" true
    (Value.compare (vi 2) (Value.Float 1.5) > 0);
  Alcotest.(check bool)
    "mixed numeric equal" true
    (Value.equal (vi 2) (Value.Float 2.0));
  Alcotest.(check bool) "strings" true (Value.compare (vs "a") (vs "b") < 0)

let test_value_encode_widths () =
  Alcotest.(check int) "smallint 2 bytes" 2
    (String.length (Value.encode Datatype.Smallint (vi 18)));
  Alcotest.(check int) "int 4 bytes" 4
    (String.length (Value.encode Datatype.Int (vi 18)));
  Alcotest.(check int) "bigint 8 bytes" 8
    (String.length (Value.encode Datatype.Bigint (vi 18)));
  Alcotest.(check string) "negative smallint" "\xff\xfe"
    (Value.encode Datatype.Smallint (vi (-2)));
  Alcotest.check_raises "null payload"
    (Invalid_argument "Value.encode: Null has no payload") (fun () ->
      ignore (Value.encode Datatype.Int Value.Null))

let test_tagged_encode_distinct () =
  (* Different constructors with "the same" content must differ. *)
  let pairs =
    [
      (Value.Int 1, Value.Bool true);
      (Value.Int 0, Value.Null);
      (Value.String "1", Value.Int 1);
      (Value.Float 1.0, Value.Datetime 1.0);
    ]
  in
  List.iter
    (fun (a, b) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s vs %s" (Value.to_string a) (Value.to_string b))
        false
        (String.equal (Value.tagged_encode a) (Value.tagged_encode b)))
    pairs

let test_datatype_string_roundtrip () =
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Datatype.to_string d)
        true
        (match Datatype.of_string (Datatype.to_string d) with
        | Some d' -> Datatype.equal d d'
        | None -> false))
    [
      Datatype.Smallint; Datatype.Int; Datatype.Bigint; Datatype.Bool;
      Datatype.Float; Datatype.Varchar 17; Datatype.Datetime;
    ];
  Alcotest.(check bool) "garbage" true (Datatype.of_string "BLOB" = None)

let test_schema_basics () =
  let s = schema_2col in
  Alcotest.(check int) "arity" 2 (Schema.arity s);
  Alcotest.(check bool) "ordinal case-insensitive" true (Schema.ordinal s "C2" = Some 1);
  Alcotest.(check bool) "missing" true (Schema.ordinal s "zz" = None);
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Schema.make: duplicate column C1") (fun () ->
      ignore (Schema.make [ Column.make "c1" Datatype.Int; Column.make "C1" Datatype.Int ]));
  Alcotest.check_raises "empty" (Invalid_argument "Schema.make: empty column list")
    (fun () -> ignore (Schema.make []))

let test_schema_validate () =
  let ok = Schema.validate_row schema_2col [| vi 1; vi 2 |] in
  Alcotest.(check bool) "valid row" true (ok = Ok ());
  (match Schema.validate_row schema_2col [| vi 1 |] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "arity should fail");
  (match Schema.validate_row schema_2col [| Value.Null; vi 2 |] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "null in NOT NULL should fail");
  match Schema.validate_row schema_2col [| vi 1; vi 70000 |] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "smallint overflow should fail"

let test_schema_evolution () =
  let s = Schema.add_column schema_2col (Column.make ~nullable:true "c3" Datatype.Bool) in
  Alcotest.(check int) "arity grows" 3 (Schema.arity s);
  let s = Schema.hide_column s "c2" in
  Alcotest.(check int) "visible count" 2 (List.length (Schema.visible_columns s));
  let s = Schema.rename_column s ~old_name:"c1" ~new_name:"k1" in
  Alcotest.(check bool) "renamed" true (Schema.ordinal s "k1" = Some 0)

let test_row_ops () =
  let r = [| vi 1; vs "x"; vi 3 |] in
  Alcotest.(check bool) "project" true
    (Row.equal (Row.project r [ 2; 0 ]) [| vi 3; vi 1 |]);
  let r2 = Row.set r 1 (vs "y") in
  Alcotest.(check bool) "set copies" true (Value.equal r.(1) (vs "x"));
  Alcotest.(check bool) "set value" true (Value.equal r2.(1) (vs "y"));
  Alcotest.(check bool) "compare lex" true (Row.compare [| vi 1 |] [| vi 1; vi 0 |] < 0)

(* ---- The serialization format of §3.2 ---- *)

let test_metadata_swap_changes_hash () =
  (* Paper §3.2: Column1 INT = 0x12, Column2 SMALLINT = 0x34. Redeclaring
     the types must change the serialized form (and hence the hash). *)
  let honest = schema_2col in
  let swapped =
    Schema.make
      [ Column.make "c1" Datatype.Smallint; Column.make "c2" Datatype.Int ]
  in
  let row = [| vi 0x12; vi 0x34 |] in
  Alcotest.(check bool)
    "hash differs under swapped metadata" false
    (String.equal (Row_codec.hash honest row) (Row_codec.hash swapped row))

let test_null_skipping_hash_stability () =
  (* §3.5.1: adding a nullable column must not change old rows' hashes. *)
  let extended =
    Schema.add_column schema_2col (Column.make ~nullable:true "c3" Datatype.Int)
  in
  let old_row = [| vi 1; vi 2 |] in
  let padded = [| vi 1; vi 2; Value.Null |] in
  Alcotest.(check string) "hash stable across nullable add"
    (Ledger_crypto.Hex.encode (Row_codec.hash schema_2col old_row))
    (Ledger_crypto.Hex.encode (Row_codec.hash extended padded))

let test_null_ordinal_binding () =
  (* §3.5.1: which column is NULL must be bound — (1, NULL) ≠ (NULL, 1). *)
  let s =
    Schema.make
      [
        Column.make ~nullable:true "a" Datatype.Int;
        Column.make ~nullable:true "b" Datatype.Int;
      ]
  in
  Alcotest.(check bool)
    "null position matters" false
    (String.equal
       (Row_codec.hash s [| vi 1; Value.Null |])
       (Row_codec.hash s [| Value.Null; vi 1 |]))

let test_serialize_inspect () =
  let s = Row_codec.serialize schema_2col [| vi 0x12; vi 0x34 |] in
  match Row_codec.inspect s with
  | None -> Alcotest.fail "inspect failed"
  | Some (count, fields) ->
      Alcotest.(check int) "column count" 2 count;
      Alcotest.(check int) "fields" 2 (List.length fields);
      let f1 = List.nth fields 0 in
      Alcotest.(check int) "ordinal" 0 f1.Row_codec.ordinal;
      Alcotest.(check int) "int tag" (Datatype.tag Datatype.Int) f1.Row_codec.tag;
      Alcotest.(check string) "payload" "\x00\x00\x00\x12" f1.Row_codec.payload

let test_serialize_rejects_invalid () =
  Alcotest.(check bool)
    "invalid row raises" true
    (match Row_codec.serialize schema_2col [| vi 1 |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_inspect_rejects_garbage () =
  Alcotest.(check bool) "garbage" true (Row_codec.inspect "\x07garbage" = None);
  Alcotest.(check bool) "empty" true (Row_codec.inspect "" = None)

(* Property: serialization is injective over rows of a fixed schema
   (up to hash collision, checked structurally here). *)
let row_gen =
  QCheck.Gen.(
    map2
      (fun a b -> [| Value.Int a; Value.Int (b mod 32768) |])
      (0 -- 1_000_000) (0 -- 1_000_000))

let prop_serialize_injective =
  QCheck.Test.make ~name:"distinct rows serialize distinctly" ~count:300
    (QCheck.make (QCheck.Gen.pair row_gen row_gen))
    (fun (r1, r2) ->
      Row.equal r1 r2
      || not
           (String.equal
              (Row_codec.serialize schema_2col r1)
              (Row_codec.serialize schema_2col r2)))

let prop_inspect_roundtrip =
  QCheck.Test.make ~name:"inspect parses every serialized row" ~count:300
    (QCheck.make row_gen)
    (fun r ->
      match Row_codec.inspect (Row_codec.serialize schema_2col r) with
      | Some (2, fields) -> List.length fields = 2
      | _ -> false)

let () =
  Alcotest.run "relation"
    [
      ( "values",
        [
          Alcotest.test_case "conformance" `Quick test_value_conformance;
          Alcotest.test_case "compare" `Quick test_value_compare;
          Alcotest.test_case "encode widths" `Quick test_value_encode_widths;
          Alcotest.test_case "tagged encode distinct" `Quick test_tagged_encode_distinct;
          Alcotest.test_case "datatype strings" `Quick test_datatype_string_roundtrip;
        ] );
      ( "schema",
        [
          Alcotest.test_case "basics" `Quick test_schema_basics;
          Alcotest.test_case "validate" `Quick test_schema_validate;
          Alcotest.test_case "evolution" `Quick test_schema_evolution;
          Alcotest.test_case "row ops" `Quick test_row_ops;
        ] );
      ( "serialization (§3.2)",
        [
          Alcotest.test_case "metadata swap changes hash" `Quick test_metadata_swap_changes_hash;
          Alcotest.test_case "nullable add keeps hashes" `Quick test_null_skipping_hash_stability;
          Alcotest.test_case "null ordinal binding" `Quick test_null_ordinal_binding;
          Alcotest.test_case "inspect" `Quick test_serialize_inspect;
          Alcotest.test_case "rejects invalid rows" `Quick test_serialize_rejects_invalid;
          Alcotest.test_case "inspect rejects garbage" `Quick test_inspect_rejects_garbage;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_serialize_injective; prop_inspect_roundtrip ] );
    ]
