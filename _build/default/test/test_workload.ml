(* Workload generators: determinism, mix ratios, ledger invariants under
   sustained TPC-C / TPC-E traffic in both configurations. *)

open Sql_ledger
open Testkit

let test_prng_determinism () =
  let a = Workload.Prng.create 99 in
  let b = Workload.Prng.create 99 in
  for _ = 1 to 1000 do
    Alcotest.(check int) "same stream" (Workload.Prng.int a 1000)
      (Workload.Prng.int b 1000)
  done

let test_prng_bounds () =
  let p = Workload.Prng.create 1 in
  for _ = 1 to 10_000 do
    let v = Workload.Prng.int p 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17);
    let r = Workload.Prng.range p 5 9 in
    Alcotest.(check bool) "range" true (r >= 5 && r <= 9);
    let n = Workload.Prng.nurand p ~a:255 ~x:1 ~y:100 in
    Alcotest.(check bool) "nurand" true (n >= 1 && n <= 100)
  done;
  Alcotest.(check bool) "int 0 rejected" true
    (match Workload.Prng.int p 0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_prng_distribution_sane () =
  let p = Workload.Prng.create 7 in
  let buckets = Array.make 10 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let v = Workload.Prng.int p 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i count ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d balanced" i)
        true
        (count > n / 20 && count < n / 5))
    buckets

let test_tpcc_ledgered_verifies () =
  let db =
    Database.create ~block_size:500 ~clock:(make_clock ()) ~name:"tpcc-l" ()
  in
  let t = Workload.Tpcc.setup db Workload.Tpcc.default_config in
  let prng = Workload.Prng.create 3 in
  let counts = Workload.Tpcc.run t ~prng ~transactions:200 in
  Alcotest.(check int) "all executed" 200
    (counts.Workload.Tpcc.new_orders + counts.payments + counts.order_statuses
   + counts.deliveries + counts.stock_levels);
  (* Mix sanity: new-order + payment dominate. *)
  Alcotest.(check bool) "mix shape" true
    (counts.new_orders + counts.payments > 140);
  let d = fresh_digest db in
  Alcotest.(check bool) "verifies" true (verify_ok db [ d ]);
  (* Ledgered tables captured history. *)
  let orders = Database.ledger_table db "orders" in
  Alcotest.(check bool) "orders populated" true (Ledger_table.row_count orders > 0)

let test_tpcc_baseline_has_no_ledger_tables () =
  let db =
    Database.create ~block_size:500 ~clock:(make_clock ()) ~name:"tpcc-r" ()
  in
  let cfg = { Workload.Tpcc.default_config with ledgered = false } in
  let t = Workload.Tpcc.setup db cfg in
  let prng = Workload.Prng.create 3 in
  ignore (Workload.Tpcc.run t ~prng ~transactions:100);
  Alcotest.(check int) "no user ledger tables" 0
    (List.length (Database.user_ledger_tables db))

let test_tpcc_determinism_across_configs () =
  (* The same seed must produce the same logical operations in both the
     ledgered and baseline configurations (Figure 7 compares like with
     like): transaction counts and final orders content agree. *)
  let run ledgered =
    let db =
      Database.create ~block_size:500 ~clock:(make_clock ())
        ~name:(Printf.sprintf "tpcc-%b" ledgered) ()
    in
    let cfg = { Workload.Tpcc.default_config with ledgered } in
    let t = Workload.Tpcc.setup db cfg in
    let prng = Workload.Prng.create 11 in
    let counts = Workload.Tpcc.run t ~prng ~transactions:150 in
    let orders_count =
      (Database.query db "SELECT COUNT(*) FROM orders").Sqlexec.Rel.rows
      |> List.hd
    in
    (counts, orders_count)
  in
  let c1, o1 = run true in
  let c2, o2 = run false in
  Alcotest.(check int) "same new-order count" c1.Workload.Tpcc.new_orders
    c2.Workload.Tpcc.new_orders;
  Alcotest.(check bool) "same orders rows" true (Relation.Row.equal o1 o2)

let test_tpce_ledgered_verifies () =
  let db =
    Database.create ~block_size:500 ~clock:(make_clock ()) ~name:"tpce-l" ()
  in
  let t = Workload.Tpce.setup db Workload.Tpce.default_config in
  Alcotest.(check int) "33 tables" 33 (Workload.Tpce.table_count t);
  Alcotest.(check int) "33 ledger tables" 33
    (List.length (Database.user_ledger_tables db));
  let prng = Workload.Prng.create 5 in
  let counts = Workload.Tpce.run t ~prng ~transactions:250 in
  (* Read-heavy mix: reads must clearly dominate (paper: ~10:1). *)
  let writes =
    counts.Workload.Tpce.trade_orders + counts.trade_results + counts.market_feeds
  in
  Alcotest.(check bool) "read-dominant" true (counts.reads > 2 * writes);
  let d = fresh_digest db in
  Alcotest.(check bool) "verifies" true (verify_ok db [ d ])

let test_runner_math () =
  let m = Workload.Runner.measure ~transactions:100 (fun () -> ()) in
  Alcotest.(check int) "txns" 100 m.Workload.Runner.transactions;
  Alcotest.(check bool) "tps finite" true (Float.is_finite m.Workload.Runner.tps);
  let slow = { Workload.Runner.transactions = 100; elapsed_s = 2.0; tps = 50.0 } in
  let fast = { Workload.Runner.transactions = 100; elapsed_s = 1.0; tps = 100.0 } in
  Alcotest.(check (float 0.001)) "delta" (-50.0)
    (Workload.Runner.throughput_delta_pct ~baseline:fast ~ledgered:slow)

let () =
  Alcotest.run "workload"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "distribution" `Quick test_prng_distribution_sane;
        ] );
      ( "tpcc",
        [
          Alcotest.test_case "ledgered verifies" `Quick test_tpcc_ledgered_verifies;
          Alcotest.test_case "baseline plain" `Quick test_tpcc_baseline_has_no_ledger_tables;
          Alcotest.test_case "determinism across configs" `Quick test_tpcc_determinism_across_configs;
        ] );
      ( "tpce",
        [ Alcotest.test_case "ledgered verifies" `Quick test_tpce_ledgered_verifies ] );
      ("runner", [ Alcotest.test_case "math" `Quick test_runner_math ]);
    ]
