test/test_wal_replay.mli:
