test/test_merkle.ml: Alcotest Fun Ledger_crypto List Merkle Printf QCheck QCheck_alcotest Sjson String
