test/test_fabric.ml: Alcotest Fabric_sim
