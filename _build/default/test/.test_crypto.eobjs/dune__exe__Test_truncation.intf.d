test/test_truncation.mli:
