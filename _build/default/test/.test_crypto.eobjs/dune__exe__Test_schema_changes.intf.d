test/test_schema_changes.mli:
