test/test_hashpath.ml: Alcotest Array Bytes Char Column Datatype Ledger_crypto List Merkle Printf Random Relation Row_codec Schema String Value
