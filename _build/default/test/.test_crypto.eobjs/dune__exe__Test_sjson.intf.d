test/test_sjson.mli:
