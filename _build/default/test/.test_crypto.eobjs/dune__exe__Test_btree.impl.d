test/test_btree.ml: Alcotest Btree Int List Map QCheck QCheck_alcotest Workload
