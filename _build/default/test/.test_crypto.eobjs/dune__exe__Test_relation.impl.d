test/test_relation.ml: Alcotest Array Column Datatype Ledger_crypto List Printf QCheck QCheck_alcotest Relation Row Row_codec Schema String Value
