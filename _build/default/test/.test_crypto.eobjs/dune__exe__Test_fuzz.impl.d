test/test_fuzz.ml: Alcotest Aries Bytes Char Ledger_crypto List Option Printf QCheck QCheck_alcotest Relation Sjson Sql_ledger Sqlexec Trusted_store
