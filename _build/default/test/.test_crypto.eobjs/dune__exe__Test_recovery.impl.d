test/test_recovery.ml: Alcotest Aries Array Database Database_ledger Filename Fun Ledger_crypto Ledger_table List Option Printf Relation Sql_ledger Storage Sys Tamper Testkit Txn Types Value Verifier
