test/test_tamper_matrix.mli:
