test/test_snapshot.ml: Alcotest Column Database Datatype Filename Fun Ledger_table List Option Receipt Relation Row Sjson Snapshot Sql_ledger Sqlexec Sys Tamper Testkit Txn Value Verifier
