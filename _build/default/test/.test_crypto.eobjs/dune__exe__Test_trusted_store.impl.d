test/test_trusted_store.ml: Alcotest Database Digest Filename Float List Option Sql_ledger Sys Testkit Trusted_store Txn Unix Verifier
