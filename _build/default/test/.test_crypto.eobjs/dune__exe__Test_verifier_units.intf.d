test/test_verifier_units.mli:
