test/test_trusted_store.mli:
