test/test_hashpath.mli:
