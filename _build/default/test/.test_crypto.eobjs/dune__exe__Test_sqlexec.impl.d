test/test_sqlexec.ml: Alcotest Array List Printf Relation Sqlexec String Value
