test/test_wal.ml: Alcotest Aries Filename Fun List Printf String Sys
