test/test_dml.ml: Alcotest Array Column Database Datatype Dml List Relation Sql_ledger Sqlexec Testkit Types Value
