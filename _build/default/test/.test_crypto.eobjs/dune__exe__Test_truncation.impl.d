test/test_truncation.ml: Alcotest Array Database Database_ledger Ledger_table List Printf Relation Sql_ledger Sqlexec Storage String Tamper Testkit Truncation Types Value Verifier
