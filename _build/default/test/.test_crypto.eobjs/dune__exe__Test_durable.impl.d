test/test_durable.ml: Alcotest Database Durable Filename Fun Ledger_table List Option Printf Sql_ledger Sys Testkit Unix Verifier
