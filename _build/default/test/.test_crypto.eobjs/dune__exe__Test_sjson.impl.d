test/test_sjson.ml: Alcotest Hashtbl List QCheck QCheck_alcotest Sjson
