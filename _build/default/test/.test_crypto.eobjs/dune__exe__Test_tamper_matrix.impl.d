test/test_tamper_matrix.ml: Alcotest Array Database Datatype Ledger_table List QCheck QCheck_alcotest Relation Sql_ledger Sqlexec Storage Tamper Tamper_recovery Testkit Value Verifier Workload
