test/test_schema_changes.ml: Alcotest Array Column Database Datatype Fun Ledger_table List Relation Sql_ledger Sqlexec Testkit Txn Types Value
