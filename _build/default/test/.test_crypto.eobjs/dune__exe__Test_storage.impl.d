test/test_storage.ml: Alcotest Array Column Datatype List Option Printf Relation Schema Storage Value
