test/test_receipt.ml: Alcotest Database Database_ledger Ledger_crypto List Merkle Option Receipt Sql_ledger String Tamper Testkit Types
