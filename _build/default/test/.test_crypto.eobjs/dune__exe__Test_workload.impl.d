test/test_workload.ml: Alcotest Array Database Float Ledger_table List Printf Relation Sql_ledger Sqlexec Testkit Workload
