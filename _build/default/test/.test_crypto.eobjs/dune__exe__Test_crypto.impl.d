test/test_crypto.ml: Alcotest Char Gen Ledger_crypto List Option Printf QCheck QCheck_alcotest String
