test/test_durable.mli:
