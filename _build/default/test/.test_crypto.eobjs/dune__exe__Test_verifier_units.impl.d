test/test_verifier_units.ml: Alcotest Column Database Database_ledger Datatype Digest Ledger_crypto Ledger_table List Printf Relation Sql_ledger Storage String Tamper Testkit Value Verifier
