(* SHA-256 against FIPS/NIST vectors, HMAC against RFC 4231, Lamport
   signature properties, hex round-trips. *)

module Sha256 = Ledger_crypto.Sha256
module Hex = Ledger_crypto.Hex
module Hmac = Ledger_crypto.Hmac
module Lamport = Ledger_crypto.Lamport

let check_hex = Alcotest.(check string)

(* NIST / FIPS 180-4 test vectors *)
let nist_vectors =
  [
    ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
    ( "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
       ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
      "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1" );
  ]

let test_nist_vectors () =
  List.iter
    (fun (input, expected) ->
      check_hex input expected (Sha256.hex_of_string input))
    nist_vectors

let test_million_a () =
  check_hex "millions 'a'"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.hex_of_string (String.make 1_000_000 'a'))

let test_incremental_feeding () =
  (* Feeding in arbitrary chunk sizes must equal one-shot hashing. *)
  let data = String.init 1000 (fun i -> Char.chr (i mod 256)) in
  let expected = Sha256.digest_string data in
  List.iter
    (fun chunk_size ->
      let t = Sha256.init () in
      let pos = ref 0 in
      while !pos < String.length data do
        let len = min chunk_size (String.length data - !pos) in
        Sha256.feed_string t ~off:!pos ~len data;
        pos := !pos + len
      done;
      Alcotest.(check string)
        (Printf.sprintf "chunk size %d" chunk_size)
        (Hex.encode expected)
        (Hex.encode (Sha256.get t)))
    [ 1; 3; 7; 13; 63; 64; 65; 127; 128; 129; 999 ]

let test_boundary_lengths () =
  (* Message lengths around the 64-byte block / 56-byte padding boundary. *)
  List.iter
    (fun n ->
      let s = String.make n 'x' in
      let t = Sha256.init () in
      Sha256.feed_string t s;
      Alcotest.(check string)
        (Printf.sprintf "length %d" n)
        (Hex.encode (Sha256.digest_string s))
        (Hex.encode (Sha256.get t)))
    [ 0; 1; 55; 56; 57; 63; 64; 65; 119; 120; 127; 128; 129 ]

let test_digest_concat () =
  Alcotest.(check string)
    "concat equals one-shot"
    (Hex.encode (Sha256.digest_string "hello world"))
    (Hex.encode (Sha256.digest_concat [ "hel"; "lo "; ""; "world" ]))

let test_get_idempotent () =
  let t = Sha256.init () in
  Sha256.feed_string t "abc";
  let d1 = Sha256.get t in
  let d2 = Sha256.get t in
  Alcotest.(check string) "same digest" (Hex.encode d1) (Hex.encode d2);
  Alcotest.check_raises "feeding after get"
    (Invalid_argument "Sha256.feed_bytes: finalised") (fun () ->
      Sha256.feed_string t "more")

let test_feed_invalid_range () =
  let t = Sha256.init () in
  Alcotest.check_raises "bad range"
    (Invalid_argument "Sha256.feed_string: invalid range") (fun () ->
      Sha256.feed_string t ~off:2 ~len:10 "short")

(* RFC 4231 HMAC-SHA-256 test cases *)
let test_hmac_rfc4231 () =
  let cases =
    [
      ( String.make 20 '\x0b',
        "Hi There",
        "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7" );
      ( "Jefe",
        "what do ya want for nothing?",
        "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843" );
      ( String.make 20 '\xaa',
        String.make 50 '\xdd',
        "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe" );
      ( String.make 131 '\xaa',
        "Test Using Larger Than Block-Size Key - Hash Key First",
        "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54" );
    ]
  in
  List.iter
    (fun (key, msg, expected) ->
      check_hex "rfc4231" expected (Hex.encode (Hmac.mac ~key msg)))
    cases

let test_hmac_verify () =
  let key = "k" and msg = "m" in
  let tag = Hmac.mac ~key msg in
  Alcotest.(check bool) "valid" true (Hmac.verify ~key ~msg ~tag);
  Alcotest.(check bool) "wrong msg" false (Hmac.verify ~key ~msg:"x" ~tag);
  Alcotest.(check bool) "wrong key" false (Hmac.verify ~key:"x" ~msg ~tag);
  Alcotest.(check bool)
    "truncated tag" false
    (Hmac.verify ~key ~msg ~tag:(String.sub tag 0 16))

let test_hex_roundtrip () =
  let data = String.init 256 Char.chr in
  Alcotest.(check string) "roundtrip" data (Hex.decode (Hex.encode data));
  Alcotest.(check string) "uppercase" "\xde\xad" (Hex.decode "DEAD");
  Alcotest.(check bool) "is_hex yes" true (Hex.is_hex "00ff");
  Alcotest.(check bool) "is_hex odd" false (Hex.is_hex "0");
  Alcotest.(check bool) "is_hex bad char" false (Hex.is_hex "zz");
  Alcotest.check_raises "odd length" (Invalid_argument "Hex.decode: odd length")
    (fun () -> ignore (Hex.decode "abc"))

let test_lamport_sign_verify () =
  let sk, pk = Lamport.generate ~seed:"test-seed" in
  let msg = "block hash contents" in
  let s = Lamport.sign sk msg in
  Alcotest.(check bool) "valid" true (Lamport.verify pk ~msg s);
  Alcotest.(check bool) "wrong msg" false (Lamport.verify pk ~msg:"other" s)

let test_lamport_deterministic () =
  let _, pk1 = Lamport.generate ~seed:"same" in
  let _, pk2 = Lamport.generate ~seed:"same" in
  let _, pk3 = Lamport.generate ~seed:"different" in
  Alcotest.(check string)
    "same seed, same key"
    (Hex.encode (Lamport.fingerprint pk1))
    (Hex.encode (Lamport.fingerprint pk2));
  Alcotest.(check bool)
    "different seed, different key" false
    (String.equal (Lamport.fingerprint pk1) (Lamport.fingerprint pk3))

let test_lamport_serialization () =
  let sk, pk = Lamport.generate ~seed:"ser" in
  let s = Lamport.sign sk "msg" in
  let pk' =
    Option.get (Lamport.public_key_of_string (Lamport.public_key_to_string pk))
  in
  let s' =
    Option.get (Lamport.signature_of_string (Lamport.signature_to_string s))
  in
  Alcotest.(check bool) "roundtrip verifies" true (Lamport.verify pk' ~msg:"msg" s');
  Alcotest.(check bool)
    "bad pk string" true
    (Lamport.public_key_of_string "short" = None);
  Alcotest.(check bool)
    "bad sig string" true
    (Lamport.signature_of_string "short" = None)

let test_lamport_pk_from_sk () =
  let sk, pk = Lamport.generate ~seed:"derive" in
  let pk' = Lamport.public_key_of_secret sk in
  Alcotest.(check string)
    "derived equals generated"
    (Hex.encode (Lamport.fingerprint pk))
    (Hex.encode (Lamport.fingerprint pk'))

(* Property tests *)
let prop_sha_deterministic =
  QCheck.Test.make ~name:"sha256 deterministic" ~count:200
    QCheck.(string_of_size Gen.(0 -- 300))
    (fun s -> String.equal (Sha256.digest_string s) (Sha256.digest_string s))

let prop_sha_injective_smoke =
  QCheck.Test.make ~name:"sha256 distinct on appended byte" ~count:200
    QCheck.(string_of_size Gen.(0 -- 300))
    (fun s ->
      not (String.equal (Sha256.digest_string s) (Sha256.digest_string (s ^ "x"))))

let prop_hex_roundtrip =
  QCheck.Test.make ~name:"hex roundtrip" ~count:500
    QCheck.(string_of_size Gen.(0 -- 100))
    (fun s -> String.equal s (Hex.decode (Hex.encode s)))

let prop_hmac_key_sensitivity =
  QCheck.Test.make ~name:"hmac differs under different keys" ~count:100
    QCheck.(pair (string_of_size Gen.(1 -- 50)) (string_of_size Gen.(0 -- 100)))
    (fun (key, msg) ->
      not (String.equal (Hmac.mac ~key msg) (Hmac.mac ~key:(key ^ "!") msg)))

let () =
  Alcotest.run "crypto"
    [
      ( "sha256",
        [
          Alcotest.test_case "NIST vectors" `Quick test_nist_vectors;
          Alcotest.test_case "million a" `Slow test_million_a;
          Alcotest.test_case "incremental feeding" `Quick test_incremental_feeding;
          Alcotest.test_case "boundary lengths" `Quick test_boundary_lengths;
          Alcotest.test_case "digest_concat" `Quick test_digest_concat;
          Alcotest.test_case "get idempotent" `Quick test_get_idempotent;
          Alcotest.test_case "invalid range" `Quick test_feed_invalid_range;
        ] );
      ( "hmac",
        [
          Alcotest.test_case "RFC 4231 vectors" `Quick test_hmac_rfc4231;
          Alcotest.test_case "verify" `Quick test_hmac_verify;
        ] );
      ("hex", [ Alcotest.test_case "roundtrip" `Quick test_hex_roundtrip ]);
      ( "lamport",
        [
          Alcotest.test_case "sign/verify" `Quick test_lamport_sign_verify;
          Alcotest.test_case "deterministic" `Quick test_lamport_deterministic;
          Alcotest.test_case "serialization" `Quick test_lamport_serialization;
          Alcotest.test_case "pk from sk" `Quick test_lamport_pk_from_sk;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_sha_deterministic;
            prop_sha_injective_smoke;
            prop_hex_roundtrip;
            prop_hmac_key_sensitivity;
          ] );
    ]
