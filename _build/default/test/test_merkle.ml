(* Merkle trees: the streaming algorithm of §3.2.1 against the materialised
   reference, proofs, savepoint snapshots. *)

module Streaming = Merkle.Streaming
module Tree = Merkle.Tree
module Proof = Merkle.Proof
module Sha256 = Ledger_crypto.Sha256

let leaf i = Sha256.digest_string (Printf.sprintf "leaf-%d" i)
let leaves n = List.init n leaf

(* Independent reference implementation: recursive level-by-level
   construction with odd-node promotion. *)
let rec reference_root = function
  | [] -> Streaming.empty_root
  | [ x ] -> x
  | nodes ->
      let rec pair = function
        | [] -> []
        | [ x ] -> [ x ]
        | a :: b :: rest -> Streaming.combine a b :: pair rest
      in
      reference_root (pair nodes)

let test_empty () =
  Alcotest.(check bool)
    "empty root" true
    (String.equal (Streaming.root Streaming.empty) Streaming.empty_root);
  Alcotest.(check int) "count" 0 (Streaming.leaf_count Streaming.empty);
  Alcotest.(check bool)
    "tree empty" true
    (String.equal (Tree.root (Tree.of_leaves [])) Streaming.empty_root)

let test_streaming_matches_reference () =
  for n = 1 to 40 do
    let ls = leaves n in
    let streaming = Streaming.(root (add_leaves empty ls)) in
    Alcotest.(check string)
      (Printf.sprintf "n=%d" n)
      (Ledger_crypto.Hex.encode (reference_root ls))
      (Ledger_crypto.Hex.encode streaming)
  done

let test_tree_matches_streaming () =
  List.iter
    (fun n ->
      let ls = leaves n in
      Alcotest.(check string)
        (Printf.sprintf "n=%d" n)
        (Ledger_crypto.Hex.encode Streaming.(root (add_leaves empty ls)))
        (Ledger_crypto.Hex.encode (Tree.root (Tree.of_leaves ls))))
    [ 1; 2; 3; 4; 5; 7; 8; 9; 15; 16; 17; 100; 255; 256; 257 ]

let test_space_logarithmic () =
  let acc = Streaming.(add_leaves empty (leaves 1000)) in
  Alcotest.(check bool)
    "pending levels <= log2(1000)+1" true
    (List.length (Streaming.levels acc) <= 11)

let test_single_leaf_promotes () =
  let l = leaf 0 in
  Alcotest.(check string)
    "root of singleton is the leaf"
    (Ledger_crypto.Hex.encode l)
    (Ledger_crypto.Hex.encode Streaming.(root (add_leaf empty l)))

let test_order_sensitivity () =
  let a = Streaming.(root (add_leaves empty [ leaf 1; leaf 2 ])) in
  let b = Streaming.(root (add_leaves empty [ leaf 2; leaf 1 ])) in
  Alcotest.(check bool) "order matters" false (String.equal a b)

let test_snapshot_restore () =
  (* The savepoint pattern: snapshot, keep appending, restore, re-append. *)
  let base = Streaming.(add_leaves empty (leaves 5)) in
  let snapshot = base in
  let extended = Streaming.(add_leaves base [ leaf 100; leaf 101 ]) in
  Alcotest.(check bool)
    "snapshot unchanged by extension" true
    (String.equal (Streaming.root snapshot)
       Streaming.(root (add_leaves empty (leaves 5))));
  let replay = Streaming.(add_leaves snapshot [ leaf 100; leaf 101 ]) in
  Alcotest.(check string)
    "restore + replay equals original extension"
    (Ledger_crypto.Hex.encode (Streaming.root extended))
    (Ledger_crypto.Hex.encode (Streaming.root replay))

let test_proofs_all_positions () =
  List.iter
    (fun n ->
      let ls = leaves n in
      let tree = Tree.of_leaves ls in
      let root = Tree.root tree in
      List.iteri
        (fun i l ->
          let proof = Tree.proof tree i in
          Alcotest.(check bool)
            (Printf.sprintf "n=%d i=%d verifies" n i)
            true
            (Proof.verify ~root ~leaf:l proof);
          Alcotest.(check bool)
            (Printf.sprintf "n=%d i=%d rejects wrong leaf" n i)
            false
            (Proof.verify ~root ~leaf:(leaf 9999) proof))
        ls)
    [ 1; 2; 3; 5; 8; 13; 16; 33 ]

let test_proof_rejects_wrong_root () =
  let tree = Tree.of_leaves (leaves 8) in
  let proof = Tree.proof tree 3 in
  Alcotest.(check bool)
    "wrong root" false
    (Proof.verify ~root:(leaf 77) ~leaf:(leaf 3) proof)

let test_proof_json_roundtrip () =
  let tree = Tree.of_leaves (leaves 9) in
  let proof = Tree.proof tree 8 in
  let json = Proof.to_json proof in
  match Proof.of_json json with
  | None -> Alcotest.fail "roundtrip failed"
  | Some proof' ->
      Alcotest.(check bool)
        "roundtrip verifies" true
        (Proof.verify ~root:(Tree.root tree) ~leaf:(leaf 8) proof')

let test_proof_of_json_rejects_garbage () =
  Alcotest.(check bool) "not a list" true (Proof.of_json (Sjson.Int 3) = None);
  Alcotest.(check bool)
    "bad side" true
    (Proof.of_json
       (Sjson.List
          [ Sjson.Obj [ ("side", Sjson.String "up"); ("hash", Sjson.String "00") ] ])
    = None);
  Alcotest.(check bool)
    "bad hex" true
    (Proof.of_json
       (Sjson.List
          [ Sjson.Obj [ ("side", Sjson.String "left"); ("hash", Sjson.String "zz") ] ])
    = None)

let test_tree_bounds () =
  let tree = Tree.of_leaves (leaves 4) in
  Alcotest.(check int) "count" 4 (Tree.leaf_count tree);
  Alcotest.check_raises "proof out of range"
    (Invalid_argument "Tree.proof: out of range") (fun () ->
      ignore (Tree.proof tree 4));
  Alcotest.check_raises "leaf out of range"
    (Invalid_argument "Tree.leaf: out of range") (fun () ->
      ignore (Tree.leaf tree (-1)))

let hash_list_gen =
  QCheck.Gen.(map (fun xs -> List.map leaf xs) (list_size (0 -- 200) small_nat))

let prop_streaming_equals_tree =
  QCheck.Test.make ~name:"streaming root = tree root" ~count:200
    (QCheck.make hash_list_gen)
    (fun ls ->
      String.equal
        Streaming.(root (add_leaves empty ls))
        (Tree.root (Tree.of_leaves ls)))

let prop_all_proofs_verify =
  QCheck.Test.make ~name:"every proof verifies" ~count:60
    (QCheck.make QCheck.Gen.(1 -- 40))
    (fun n ->
      let ls = leaves n in
      let tree = Tree.of_leaves ls in
      let root = Tree.root tree in
      List.for_all
        (fun i -> Proof.verify ~root ~leaf:(List.nth ls i) (Tree.proof tree i))
        (List.init n Fun.id))

let prop_incremental_root_changes =
  QCheck.Test.make ~name:"adding a leaf changes the root" ~count:100
    (QCheck.make hash_list_gen)
    (fun ls ->
      let before = Streaming.(root (add_leaves empty ls)) in
      let after = Streaming.(root (add_leaf (add_leaves empty ls) (leaf 424242))) in
      not (String.equal before after))

let () =
  Alcotest.run "merkle"
    [
      ( "streaming",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "matches reference" `Quick test_streaming_matches_reference;
          Alcotest.test_case "log-space state" `Quick test_space_logarithmic;
          Alcotest.test_case "singleton promotion" `Quick test_single_leaf_promotes;
          Alcotest.test_case "order sensitivity" `Quick test_order_sensitivity;
          Alcotest.test_case "snapshot/restore" `Quick test_snapshot_restore;
        ] );
      ( "tree+proofs",
        [
          Alcotest.test_case "tree = streaming" `Quick test_tree_matches_streaming;
          Alcotest.test_case "proofs at all positions" `Quick test_proofs_all_positions;
          Alcotest.test_case "wrong root rejected" `Quick test_proof_rejects_wrong_root;
          Alcotest.test_case "proof JSON roundtrip" `Quick test_proof_json_roundtrip;
          Alcotest.test_case "proof JSON garbage" `Quick test_proof_of_json_rejects_garbage;
          Alcotest.test_case "bounds" `Quick test_tree_bounds;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_streaming_equals_tree;
            prop_all_proofs_verify;
            prop_incremental_root_changes;
          ] );
    ]
