(* Direct unit coverage of every Verifier violation variant, driven by
   surgical edits to the system tables through the raw storage surface. *)

open Relation
open Sql_ledger
open Testkit
module TS = Storage.Table_store
module Hex = Ledger_crypto.Hex

let setup () =
  let db = make_db ~block_size:2 "vu" in
  let accounts = make_accounts db in
  for i = 1 to 6 do
    ignore (insert_account db accounts (Printf.sprintf "a%d" i) i)
  done;
  let d = fresh_digest db in
  Database.checkpoint db;
  (db, d)

let has report pred = List.exists pred report.Verifier.violations

let test_clean_baseline () =
  let db, d = setup () in
  let report = Verifier.verify db ~digests:[ d ] in
  Alcotest.(check bool) "clean" true (Verifier.ok report);
  Alcotest.(check bool) "anchored" true
    (report.Verifier.verified_upto_block = Some d.Digest.block_id)

let test_digest_block_missing () =
  let db, _ = setup () in
  let forged =
    {
      Digest.database_id = Database.database_id db;
      db_create_time = Database.create_time db;
      block_id = 4242;
      block_hash = String.make 32 'x';
      digest_time = 0.;
      last_commit_ts = 0.;
    }
  in
  let report = Verifier.verify db ~digests:[ forged ] in
  Alcotest.(check bool) "missing block" true
    (has report (function Verifier.Digest_block_missing { block_id = 4242 } -> true | _ -> false))

let test_digest_mismatch () =
  let db, d = setup () in
  let forged = { d with Digest.block_hash = String.make 32 'z' } in
  let report = Verifier.verify db ~digests:[ forged ] in
  Alcotest.(check bool) "mismatch" true
    (has report (function Verifier.Digest_mismatch _ -> true | _ -> false))

let test_genesis_prev_not_null () =
  let db, _ = setup () in
  let blocks = Database_ledger.raw_blocks_table (Database.ledger db) in
  ignore
    (TS.Raw.overwrite_value blocks ~key:[| Value.Int 0 |] ~ordinal:1
       (Value.String (String.make 64 'a')));
  let report = Verifier.verify db ~digests:[] in
  Alcotest.(check bool) "genesis" true
    (has report (function Verifier.Genesis_prev_not_null _ -> true | _ -> false))

let test_chain_gap () =
  let db, _ = setup () in
  let blocks = Database_ledger.raw_blocks_table (Database.ledger db) in
  Alcotest.(check bool) "block removed" true
    (TS.Raw.delete_row blocks ~key:[| Value.Int 1 |]);
  let report = Verifier.verify db ~digests:[] in
  Alcotest.(check bool) "gap" true
    (has report (function Verifier.Chain_gap _ -> true | _ -> false))

let test_chain_broken () =
  let db, _ = setup () in
  let blocks = Database_ledger.raw_blocks_table (Database.ledger db) in
  ignore
    (TS.Raw.overwrite_value blocks ~key:[| Value.Int 1 |] ~ordinal:1
       (Value.String (String.make 64 'b')));
  let report = Verifier.verify db ~digests:[] in
  Alcotest.(check bool) "broken link" true
    (has report (function Verifier.Chain_broken { block_id = 1; _ } -> true | _ -> false))

let test_block_root_mismatch_via_txn_edit () =
  let db, _ = setup () in
  let txns = Database_ledger.raw_transactions_table (Database.ledger db) in
  ignore
    (TS.Raw.overwrite_value txns ~key:[| Value.Int 2 |] ~ordinal:3
       (Value.Float 999999.0));
  let report = Verifier.verify db ~digests:[] in
  Alcotest.(check bool) "root mismatch" true
    (has report (function Verifier.Block_root_mismatch _ -> true | _ -> false))

let test_block_count_mismatch () =
  let db, _ = setup () in
  let txns = Database_ledger.raw_transactions_table (Database.ledger db) in
  (* Remove one transaction of a closed block entirely: both the root and
     the count disagree. *)
  Alcotest.(check bool) "txn removed" true
    (TS.Raw.delete_row txns ~key:[| Value.Int 2 |]);
  let report = Verifier.verify db ~digests:[] in
  Alcotest.(check bool) "count mismatch" true
    (has report (function Verifier.Block_count_mismatch _ -> true | _ -> false))

let test_orphan_transaction () =
  let db, _ = setup () in
  let txns = Database_ledger.raw_transactions_table (Database.ledger db) in
  (* Re-point a flushed transaction at a closed block that does not exist
     (block id below the open block). *)
  ignore
    (TS.Raw.overwrite_value txns ~key:[| Value.Int 2 |] ~ordinal:1
       (Value.Int (-5)));
  let report = Verifier.verify db ~digests:[] in
  Alcotest.(check bool) "orphan txn" true
    (has report (function Verifier.Orphan_transaction _ -> true | _ -> false))

let test_table_root_recorded_but_no_rows () =
  (* All surviving evidence of a transaction's writes erased: recorded root
     with no computed counterpart. *)
  let db, _ = setup () in
  let accounts = Database.ledger_table db "accounts" in
  let main = Ledger_table.main accounts in
  ignore (TS.Raw.delete_row main ~key:[| vs "a3" |]);
  let report = Verifier.verify db ~digests:[] in
  Alcotest.(check bool) "recorded-only mismatch" true
    (has report (function
      | Verifier.Table_root_mismatch { computed = None; _ } -> true
      | _ -> false))

let test_table_root_computed_but_not_recorded () =
  (* A fabricated row under a real transaction that never touched the
     table: computed root with no recorded counterpart. *)
  let db, _ = setup () in
  let other =
    Database.create_ledger_table db ~name:"other"
      ~columns:[ Column.make "id" Datatype.Int ]
      ~key:[ "id" ] ()
  in
  ignore
    (Tamper.apply db
       (Tamper.Insert_fabricated_row
          {
            table = "other";
            row = [| vi 1; vi 2; vi 0; Value.Null; Value.Null |];
          }));
  ignore other;
  let report = Verifier.verify db ~digests:[] in
  Alcotest.(check bool) "computed-only mismatch" true
    (has report (function
      | Verifier.Table_root_mismatch { recorded = None; _ } -> true
      | _ -> false))

let test_report_counts () =
  let db, d = setup () in
  let report = Verifier.verify db ~digests:[ d ] in
  (* 6 inserts + 1 DDL = 7 txns; block size 2 → 4 blocks after the digest
     close; 6 row versions in accounts + DDL rows in the metadata tables. *)
  Alcotest.(check bool) "blocks counted" true (report.Verifier.blocks_checked >= 3);
  Alcotest.(check bool) "txns counted" true
    (report.Verifier.transactions_checked >= 7);
  Alcotest.(check bool) "versions counted" true
    (report.Verifier.versions_checked >= 6)

let test_violation_strings () =
  (* Every violation renders to a non-empty, distinct message. *)
  let samples =
    [
      Verifier.Digest_block_missing { block_id = 1 };
      Verifier.Digest_mismatch { block_id = 1; expected = "a"; computed = "b" };
      Verifier.Digest_foreign { database_id = "x" };
      Verifier.Chain_gap { block_id = 2; missing = 1 };
      Verifier.Chain_broken
        { block_id = 2; recorded_prev = "a"; computed_prev = "b" };
      Verifier.Genesis_prev_not_null { recorded = "a" };
      Verifier.Block_root_mismatch { block_id = 1; recorded = "a"; computed = "b" };
      Verifier.Block_count_mismatch { block_id = 1; recorded = 2; actual = 1 };
      Verifier.Orphan_transaction { txn_id = 1; block_id = 1 };
      Verifier.Table_root_mismatch
        { txn_id = 1; table = "t"; recorded = None; computed = None };
      Verifier.Orphan_row_version { table = "t"; txn_id = 1 };
      Verifier.Index_mismatch { table = "t"; index = "i" };
    ]
  in
  let strings = List.map Verifier.violation_to_string samples in
  List.iter
    (fun s -> Alcotest.(check bool) "non-empty" true (String.length s > 0))
    strings;
  Alcotest.(check int) "all distinct" (List.length strings)
    (List.length (List.sort_uniq String.compare strings))

let () =
  Alcotest.run "verifier-units"
    [
      ( "violations",
        [
          Alcotest.test_case "clean baseline" `Quick test_clean_baseline;
          Alcotest.test_case "digest block missing" `Quick test_digest_block_missing;
          Alcotest.test_case "digest mismatch" `Quick test_digest_mismatch;
          Alcotest.test_case "genesis prev" `Quick test_genesis_prev_not_null;
          Alcotest.test_case "chain gap" `Quick test_chain_gap;
          Alcotest.test_case "chain broken" `Quick test_chain_broken;
          Alcotest.test_case "block root mismatch" `Quick test_block_root_mismatch_via_txn_edit;
          Alcotest.test_case "block count mismatch" `Quick test_block_count_mismatch;
          Alcotest.test_case "orphan transaction" `Quick test_orphan_transaction;
          Alcotest.test_case "recorded root, no rows" `Quick test_table_root_recorded_but_no_rows;
          Alcotest.test_case "rows, no recorded root" `Quick test_table_root_computed_but_not_recorded;
        ] );
      ( "reporting",
        [
          Alcotest.test_case "counts" `Quick test_report_counts;
          Alcotest.test_case "violation strings" `Quick test_violation_strings;
        ] );
    ]
