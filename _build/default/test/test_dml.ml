(* SQL DML statements routed through ledgered transactions. *)

open Relation
open Sql_ledger
open Testkit

let affected = function
  | Dml.Affected n -> n
  | Dml.Rows _ -> Alcotest.fail "expected row count"

let rows = function
  | Dml.Rows r -> r
  | Dml.Affected _ -> Alcotest.fail "expected rows"

let exec db sql = Dml.execute db ~user:"sql" sql

let setup () =
  let db = make_db "dml" in
  let _ = make_accounts db in
  db

let test_insert_positional () =
  let db = setup () in
  Alcotest.(check int) "one row" 1
    (affected (exec db "INSERT INTO accounts VALUES ('Ada', 100)"));
  let r = rows (exec db "SELECT balance FROM accounts WHERE name = 'Ada'") in
  Alcotest.(check bool) "value" true
    (Value.equal (List.hd r.Sqlexec.Rel.rows).(0) (Value.Int 100))

let test_insert_multi_row () =
  let db = setup () in
  Alcotest.(check int) "three rows" 3
    (affected
       (exec db "INSERT INTO accounts VALUES ('A', 1), ('B', 2), ('C', 3)"));
  let r = rows (exec db "SELECT COUNT(*) FROM accounts") in
  Alcotest.(check bool) "count" true
    (Value.equal (List.hd r.Sqlexec.Rel.rows).(0) (Value.Int 3))

let test_insert_named_columns () =
  let db = setup () in
  Database.add_column db ~table:"accounts"
    (Column.make ~nullable:true "email" (Datatype.Varchar 64));
  Alcotest.(check int) "named insert" 1
    (affected
       (exec db "INSERT INTO accounts (balance, name) VALUES (7, 'Swapped')"));
  let r =
    rows (exec db "SELECT balance, email FROM accounts WHERE name = 'Swapped'")
  in
  let row = List.hd r.Sqlexec.Rel.rows in
  Alcotest.(check bool) "reordered" true (Value.equal row.(0) (Value.Int 7));
  Alcotest.(check bool) "missing column null" true (Value.is_null row.(1))

let test_update_with_expression () =
  let db = setup () in
  ignore (exec db "INSERT INTO accounts VALUES ('X', 100), ('Y', 50)");
  Alcotest.(check int) "one updated" 1
    (affected
       (exec db "UPDATE accounts SET balance = balance * 2 + 1 WHERE name = 'X'"));
  let r = rows (exec db "SELECT balance FROM accounts ORDER BY name") in
  Alcotest.(check (list string)) "values" [ "201"; "50" ]
    (List.map (fun row -> Value.to_string row.(0)) r.Sqlexec.Rel.rows)

let test_update_all_rows () =
  let db = setup () in
  ignore (exec db "INSERT INTO accounts VALUES ('X', 1), ('Y', 2)");
  Alcotest.(check int) "both" 2
    (affected (exec db "UPDATE accounts SET balance = 0"))

let test_delete_where () =
  let db = setup () in
  ignore (exec db "INSERT INTO accounts VALUES ('A', 10), ('B', 200), ('C', 30)");
  Alcotest.(check int) "one deleted" 1
    (affected (exec db "DELETE FROM accounts WHERE balance > 100"));
  let r = rows (exec db "SELECT name FROM accounts ORDER BY name") in
  Alcotest.(check (list string)) "survivors" [ "A"; "C" ]
    (List.map (fun row -> Value.to_string row.(0)) r.Sqlexec.Rel.rows)

let test_dml_is_ledgered () =
  (* The whole point: SQL-driven changes get history + hashing like the
     programmatic API. *)
  let db = setup () in
  ignore (exec db "INSERT INTO accounts VALUES ('L', 10)");
  ignore (exec db "UPDATE accounts SET balance = 20 WHERE name = 'L'");
  ignore (exec db "DELETE FROM accounts WHERE name = 'L'");
  let view =
    rows (exec db "SELECT operation FROM accounts__ledger_view ORDER BY transaction_id")
  in
  Alcotest.(check int) "four versions" 4 (Sqlexec.Rel.cardinality view);
  let d = fresh_digest db in
  Alcotest.(check bool) "verifies" true (verify_ok db [ d ])

let test_dml_on_regular_table () =
  let db = setup () in
  let _ =
    Database.create_regular_table db ~name:"plain"
      ~columns:[ Column.make "id" Datatype.Int; Column.make "v" Datatype.Int ]
      ~key:[ "id" ] ()
  in
  ignore (exec db "INSERT INTO plain VALUES (1, 10), (2, 20)");
  Alcotest.(check int) "update" 1
    (affected (exec db "UPDATE plain SET v = 99 WHERE id = 2"));
  (* key-changing update = delete + insert *)
  Alcotest.(check int) "key update" 1
    (affected (exec db "UPDATE plain SET id = 5 WHERE id = 1"));
  let r = rows (exec db "SELECT id FROM plain ORDER BY id") in
  Alcotest.(check (list string)) "keys" [ "2"; "5" ]
    (List.map (fun row -> Value.to_string row.(0)) r.Sqlexec.Rel.rows)

let test_dml_errors_roll_back () =
  let db = setup () in
  ignore (exec db "INSERT INTO accounts VALUES ('A', 1)");
  (* Second row duplicates the key: the whole statement must roll back. *)
  (match exec db "INSERT INTO accounts VALUES ('B', 2), ('A', 3)" with
  | exception _ -> ()
  | _ -> Alcotest.fail "duplicate insert should fail");
  let r = rows (exec db "SELECT COUNT(*) FROM accounts") in
  Alcotest.(check bool) "B rolled back too" true
    (Value.equal (List.hd r.Sqlexec.Rel.rows).(0) (Value.Int 1));
  let d = fresh_digest db in
  Alcotest.(check bool) "verifies after rollback" true (verify_ok db [ d ])

let test_dml_rejects () =
  let db = setup () in
  List.iter
    (fun sql ->
      match exec db sql with
      | exception Sqlexec.Parser.Parse_error _ -> ()
      | exception Sqlexec.Executor.Exec_error _ -> ()
      | _ -> Alcotest.failf "accepted %s" sql)
    [
      "INSERT INTO nosuch VALUES (1)";
      "INSERT INTO accounts VALUES (1)";
      "INSERT INTO accounts (name) VALUES ('x', 'y')";
      "UPDATE accounts SET nosuch = 1";
      "DELETE FROM nosuch";
      "DROP TABLE accounts";
    ]

let test_append_only_via_sql () =
  let db = make_db "dml-ao" in
  let _ = make_accounts ~kind:`Append_only db in
  ignore (exec db "INSERT INTO accounts VALUES ('A', 1)");
  match exec db "UPDATE accounts SET balance = 2" with
  | exception Types.Ledger_error _ -> ()
  | _ -> Alcotest.fail "append-only update via SQL should fail"

let () =
  Alcotest.run "dml"
    [
      ( "insert",
        [
          Alcotest.test_case "positional" `Quick test_insert_positional;
          Alcotest.test_case "multi-row" `Quick test_insert_multi_row;
          Alcotest.test_case "named columns" `Quick test_insert_named_columns;
        ] );
      ( "update/delete",
        [
          Alcotest.test_case "expression" `Quick test_update_with_expression;
          Alcotest.test_case "all rows" `Quick test_update_all_rows;
          Alcotest.test_case "delete where" `Quick test_delete_where;
          Alcotest.test_case "regular table" `Quick test_dml_on_regular_table;
        ] );
      ( "ledger semantics",
        [
          Alcotest.test_case "DML is ledgered" `Quick test_dml_is_ledgered;
          Alcotest.test_case "errors roll back" `Quick test_dml_errors_roll_back;
          Alcotest.test_case "rejects" `Quick test_dml_rejects;
          Alcotest.test_case "append-only" `Quick test_append_only_via_sql;
        ] );
    ]
