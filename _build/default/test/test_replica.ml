(* Streaming geo-replica (§3.6): incremental log shipping, the digest
   replication gate wired to a real secondary, failover by promotion, and
   crash-at-any-prefix recovery as a property. *)

open Sql_ledger
open Testkit
module DM = Trusted_store.Digest_manager
module WS = Trusted_store.Worm_store

let with_wal f =
  let path = Filename.temp_file "replica" ".log" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_incremental_feed () =
  with_wal (fun path ->
      let db = make_db ~block_size:3 ~wal_path:path "primary" in
      let replica = Replica.create ~clock:(make_clock ()) () in
      let accounts = make_accounts db in
      (* Ship in several batches, interleaved with new primary activity. *)
      Alcotest.(check bool) "batch 1" true
        (Replica.feed_from_file replica ~wal_path:path = Ok ());
      figure2 db accounts;
      Alcotest.(check bool) "batch 2" true
        (Replica.feed_from_file replica ~wal_path:path = Ok ());
      ignore (insert_account db accounts "Late" 7);
      (* Overlapping re-feed must be idempotent. *)
      Alcotest.(check bool) "batch 3" true
        (Replica.feed_from_file replica ~wal_path:path = Ok ());
      Alcotest.(check bool) "batch 3 again" true
        (Replica.feed_from_file replica ~wal_path:path = Ok ());
      let rdb = Option.get (Replica.database replica) in
      Alcotest.(check string) "same identity" (Database.database_id db)
        (Database.database_id rdb);
      (* Digests agree between primary and secondary. *)
      let dp = fresh_digest db in
      Alcotest.(check bool) "ship the digest-close too" true
        (Replica.feed_from_file replica ~wal_path:path = Ok ());
      let dr = Option.get (Database.generate_digest rdb) in
      Alcotest.(check string) "identical digests"
        (Ledger_crypto.Hex.encode dp.Digest.block_hash)
        (Ledger_crypto.Hex.encode dr.Digest.block_hash);
      Alcotest.(check bool) "replica verifies primary's digest" true
        (Verifier.ok (Verifier.verify rdb ~digests:[ dp ])))

let test_uncommitted_never_visible () =
  with_wal (fun path ->
      let db = make_db ~block_size:100 ~wal_path:path "p2" in
      let accounts = make_accounts db in
      ignore (insert_account db accounts "Committed" 1);
      let replica = Replica.create ~clock:(make_clock ()) () in
      Alcotest.(check bool) "feed" true
        (Replica.feed_from_file replica ~wal_path:path = Ok ());
      let rdb = Option.get (Replica.database replica) in
      Alcotest.(check bool) "committed row present" true
        (Ledger_table.find
           (Database.ledger_table rdb "accounts")
           ~key:[| vs "Committed" |]
        <> None);
      (* A transaction the primary later aborts is never applied. *)
      let txn = Database.begin_txn db ~user:"m" in
      Txn.insert txn accounts [| vs "Doomed"; vi 1 |];
      Txn.rollback txn;
      Alcotest.(check bool) "feed 2" true
        (Replica.feed_from_file replica ~wal_path:path = Ok ());
      Alcotest.(check bool) "aborted row absent" true
        (Ledger_table.find
           (Database.ledger_table rdb "accounts")
           ~key:[| vs "Doomed" |]
        = None))

let test_replication_gate_with_real_replica () =
  (* §3.6 end to end: digests are issued only once the secondary has the
     data; a lagging secondary defers issuance. *)
  with_wal (fun path ->
      let db = make_db ~block_size:3 ~wal_path:path "p3" in
      let accounts = make_accounts db in
      let replica = Replica.create ~clock:(make_clock ()) () in
      let store = WS.create () in
      let dm =
        DM.create
          ~replicated_upto:(fun () -> Replica.replicated_upto replica)
          ~store ()
      in
      ignore (insert_account db accounts "A" 1);
      (* Secondary has not caught up: digest deferred. *)
      (match DM.upload dm db with
      | DM.Deferred_replication_lag -> ()
      | _ -> Alcotest.fail "expected deferral");
      (* Ship the log; now the digest goes out. *)
      Alcotest.(check bool) "catch up" true
        (Replica.feed_from_file replica ~wal_path:path = Ok ());
      match DM.upload dm db with
      | DM.Uploaded d ->
          (* And, per the gate's purpose: the digest is covered by the
             secondary, so a failover keeps it verifiable. *)
          Alcotest.(check bool) "ship close" true
            (Replica.feed_from_file replica ~wal_path:path = Ok ());
          let promoted = Result.get_ok (Replica.promote replica) in
          Alcotest.(check bool) "digest survives failover" true
            (Verifier.ok (Verifier.verify promoted ~digests:[ d ]))
      | _ -> Alcotest.fail "expected upload")

let test_failover_promotion () =
  with_wal (fun path ->
      let db = make_db ~block_size:3 ~wal_path:path "p4" in
      let accounts = make_accounts db in
      figure2 db accounts;
      let replica = Replica.create ~clock:(make_clock ()) () in
      Alcotest.(check bool) "synced" true
        (Replica.feed_from_file replica ~wal_path:path = Ok ());
      (* Disaster strikes the primary; promote the secondary. *)
      let promoted = Result.get_ok (Replica.promote replica) in
      let acc = Database.ledger_table promoted "accounts" in
      ignore
        (Database.with_txn promoted ~user:"dr" (fun txn ->
             Txn.insert txn acc [| vs "PostFailover"; vi 1 |]));
      let d = Option.get (Database.generate_digest promoted) in
      Alcotest.(check bool) "new primary verifies" true
        (Verifier.ok (Verifier.verify promoted ~digests:[ d ])))

let test_promote_before_feed () =
  let replica = Replica.create () in
  match Replica.promote replica with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unfed replica must not promote"

(* Crash-anywhere property: replaying ANY prefix of the log yields a
   database that passes verification (with no digests — internal
   consistency), i.e. recovery never produces a half-applied state. *)
let prop_any_crash_prefix_recovers =
  QCheck.Test.make ~name:"replay of any log prefix verifies" ~count:20
    (QCheck.make QCheck.Gen.(pair (0 -- 10_000) (0 -- 1000)))
    (fun (seed, cut) ->
      let path = Filename.temp_file "prefix" ".log" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          let db = make_db ~block_size:2 ~wal_path:path "prop" in
          let accounts = make_accounts db in
          let prng = Workload.Prng.create seed in
          for i = 1 to 15 do
            let name = Printf.sprintf "r%d" i in
            ignore (insert_account db accounts name (Workload.Prng.int prng 100));
            if Workload.Prng.bool prng then
              ignore (update_account db accounts name (Workload.Prng.int prng 100))
          done;
          let records = Result.get_ok (Aries.Wal.load path) in
          let n = List.length records in
          let keep = 1 + (cut mod n) in
          let prefix = List.filteri (fun i _ -> i < keep) records in
          match prefix with
          | (_, Aries.Log_record.Ddl _) :: _ -> (
              match Wal_replay.replay ~clock:(make_clock ()) ~records:prefix () with
              | Error _ -> false
              | Ok db' -> Verifier.ok (Verifier.verify db' ~digests:[]))
          | _ -> true (* prefix too short to contain the header *)))

let () =
  Alcotest.run "replica"
    [
      ( "streaming",
        [
          Alcotest.test_case "incremental feed" `Quick test_incremental_feed;
          Alcotest.test_case "uncommitted invisible" `Quick test_uncommitted_never_visible;
          Alcotest.test_case "replication gate" `Quick test_replication_gate_with_real_replica;
          Alcotest.test_case "failover promotion" `Quick test_failover_promotion;
          Alcotest.test_case "promote before feed" `Quick test_promote_before_feed;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_any_crash_prefix_recovers ] );
    ]
