(* The attack/detection matrix: every tamper-toolkit attack must be caught
   by verification (or by the digest-chain fork check). This is the core
   security claim of the paper — Forward Integrity via tamper evidence. *)

open Relation
open Sql_ledger
open Testkit

(* Set up a database with Figure 2 history, an extra index, a checkpoint
   (so system tables are populated) and a digest. *)
let setup () =
  let db = make_db "victim" in
  let accounts = make_accounts db in
  figure2 db accounts;
  Database.create_index db ~table:"accounts" ~name:"by_balance"
    ~columns:[ "balance" ];
  Database.checkpoint db;
  let digest = fresh_digest db in
  (db, accounts, digest)

let expect_detected ~name attack check =
  let db, _, digest = setup () in
  (match Tamper.apply db attack with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: attack could not be applied: %s" name e);
  let report = Verifier.verify db ~digests:[ digest ] in
  Alcotest.(check bool)
    (name ^ " detected") true
    (not (Verifier.ok report));
  Alcotest.(check bool)
    (name ^ " classified") true
    (List.exists check report.Verifier.violations)

let any _ = true

let test_update_row () =
  expect_detected ~name:"row update"
    (Tamper.Update_row
       { table = "accounts"; key = [| vs "John" |]; column = "balance"; value = vi 9 })
    (function Verifier.Table_root_mismatch _ -> true | _ -> false)

let test_update_history_row () =
  expect_detected ~name:"history rewrite"
    (Tamper.Update_history_row
       { table = "accounts"; index = 0; column = "balance"; value = vi 1 })
    (function Verifier.Table_root_mismatch _ -> true | _ -> false)

let test_delete_row () =
  expect_detected ~name:"row erasure"
    (Tamper.Delete_row { table = "accounts"; key = [| vs "Mary" |] })
    (function Verifier.Table_root_mismatch _ -> true | _ -> false)

let test_delete_history_row () =
  expect_detected ~name:"history erasure"
    (Tamper.Delete_history_row { table = "accounts"; index = 1 })
    (function Verifier.Table_root_mismatch _ -> true | _ -> false)

let test_fabricated_row () =
  (* Forged row claiming to come from transaction 2, sequence 99. *)
  expect_detected ~name:"fabricated row"
    (Tamper.Insert_fabricated_row
       {
         table = "accounts";
         row = [| vs "Ghost"; vi 1_000_000; vi 2; vi 99; Value.Null; Value.Null |];
       })
    (function Verifier.Table_root_mismatch _ -> true | _ -> false)

let test_fabricated_row_unknown_txn () =
  (* Forged row referencing a transaction that never existed → orphan. *)
  expect_detected ~name:"fabricated row (unknown txn)"
    (Tamper.Insert_fabricated_row
       {
         table = "accounts";
         row = [| vs "Ghost"; vi 5; vi 424242; vi 0; Value.Null; Value.Null |];
       })
    (function Verifier.Orphan_row_version _ -> true | _ -> false)

let test_metadata_swap () =
  expect_detected ~name:"metadata swap"
    (Tamper.Metadata_swap
       { table = "accounts"; column = "balance"; new_type = Datatype.Bigint })
    any

let test_index_rewrite () =
  expect_detected ~name:"index diversion"
    (Tamper.Index_rewrite
       {
         table = "accounts";
         index = "by_balance";
         old_key = [| vi 500 |];
         pk = [| vs "John" |];
         new_key = [| vi 1 |];
       })
    (function Verifier.Index_mismatch _ -> true | _ -> false)

let test_rewrite_transaction_user () =
  expect_detected ~name:"transaction user rewrite"
    (Tamper.Rewrite_transaction_user { txn_id = 3; user = "mallory" })
    (function
      | Verifier.Block_root_mismatch _ -> true
      | _ -> false)

let test_fork_detected_by_digest () =
  (* A fork rewrites history and recomputes all chain hashes, so internal
     chain checks pass — only the externally held digest betrays it. *)
  let db, _, digest = setup () in
  (match Tamper.apply db (Tamper.Fork_chain { block_id = 0 }) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let report = Verifier.verify db ~digests:[ digest ] in
  Alcotest.(check bool) "detected with digest" true (not (Verifier.ok report));
  Alcotest.(check bool) "as digest mismatch" true
    (List.exists
       (function Verifier.Digest_mismatch _ -> true | _ -> false)
       report.Verifier.violations)

let test_fork_detected_by_chain_derivation () =
  (* §3.3.1 requirement 3: a new digest must derive from the old one. *)
  let db, accounts, d_old = setup () in
  (match Tamper.apply db (Tamper.Fork_chain { block_id = 0 }) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  ignore (insert_account db accounts "PostFork" 1);
  let d_new = fresh_digest db in
  match Verifier.verify_digest_chain db ~older:d_old ~newer:d_new with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "forked chain must not derive from the old digest"

let test_fork_without_digest_undetected () =
  (* Documents the limitation: without any externally stored digest, a
     full-chain rewrite is internally consistent. This is exactly why §2.4
     digests must live outside the database. *)
  let db, _, _ = setup () in
  (match Tamper.apply db (Tamper.Fork_chain { block_id = 0 }) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let report = Verifier.verify db ~digests:[] in
  (* Chain checks pass; table roots now disagree with forged txn root only
     if block roots were rewritten inconsistently — the fork rewrote the
     block root but not the transaction entries, so invariant 3 fires. A
     *perfect* adversary would rewrite those too; simulate that by checking
     chain invariants alone. *)
  ignore report;
  let chain_violations =
    List.filter
      (function
        | Verifier.Chain_broken _ | Verifier.Chain_gap _
        | Verifier.Genesis_prev_not_null _ | Verifier.Digest_mismatch _ ->
            true
        | _ -> false)
      report.Verifier.violations
  in
  Alcotest.(check int) "chain itself is consistent" 0
    (List.length chain_violations)

let test_drop_and_recreate_visible_in_metadata () =
  let db, _, _ = setup () in
  (match Tamper.apply db (Tamper.Drop_and_recreate { table = "accounts" }) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* §3.5.2: users can query the metadata ledger view to spot the swap. *)
  let r =
    Database.query db
      "SELECT operation FROM ledger_tables_meta WHERE table_name = 'accounts' \
       OR operation = 'DROP'"
  in
  Alcotest.(check bool) "DROP event visible" true
    (List.exists
       (fun row -> Value.equal row.(0) (vs "DROP"))
       r.Sqlexec.Rel.rows);
  (* And both old and new incarnations remain verifiable. *)
  let d = fresh_digest db in
  Alcotest.(check bool) "still verifies (data not tampered)" true
    (verify_ok db [ d ])

let test_queue_tamper_immune () =
  (* Attacks hit storage; entries still in the in-memory queue are not
     reachable, so an unflushed rewrite attempt fails cleanly. *)
  let db = make_db ~block_size:100 "queueonly" in
  let accounts = make_accounts db in
  figure2 db accounts;
  match Tamper.apply db (Tamper.Rewrite_transaction_user { txn_id = 3; user = "m" }) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "queued entries should not be reachable from storage"

let test_repair_after_each_row_attack () =
  (* Category-1 recovery (§3.7): repair from a verified backup restores
     verifiability for row-level attacks. *)
  let attacks =
    [
      Tamper.Update_row
        { table = "accounts"; key = [| vs "John" |]; column = "balance"; value = vi 9 };
      Tamper.Delete_row { table = "accounts"; key = [| vs "Mary" |] };
      Tamper.Delete_history_row { table = "accounts"; index = 0 };
      Tamper.Insert_fabricated_row
        {
          table = "accounts";
          row = [| vs "Ghost"; vi 7; vi 2; vi 99; Value.Null; Value.Null |];
        };
      Tamper.Metadata_swap
        { table = "accounts"; column = "balance"; new_type = Datatype.Bigint };
      Tamper.Index_rewrite
        {
          table = "accounts";
          index = "by_balance";
          old_key = [| vi 500 |];
          pk = [| vs "John" |];
          new_key = [| vi 1 |];
        };
    ]
  in
  List.iter
    (fun attack ->
      let db, _, digest = setup () in
      let backup = Database.backup db in
      (match Tamper.apply db attack with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      let report = Verifier.verify db ~digests:[ digest ] in
      Alcotest.(check bool) (Tamper.describe attack ^ " detected") true
        (not (Verifier.ok report));
      (match Tamper_recovery.assess report with
      | Tamper_recovery.Repair_in_place tables ->
          List.iter
            (fun table ->
              ignore (Tamper_recovery.repair_from_backup ~backup ~current:db ~table))
            tables
      | Tamper_recovery.Restore_and_replay ->
          Alcotest.failf "%s: expected repairable" (Tamper.describe attack));
      Alcotest.(check bool) (Tamper.describe attack ^ " repaired") true
        (verify_ok db [ digest ]))
    attacks

let prop_any_single_value_tamper_detected =
  QCheck.Test.make ~name:"any single stored-value tamper is detected" ~count:40
    (QCheck.make QCheck.Gen.(pair (0 -- 10_000) (0 -- 1)))
    (fun (seed, target_col) ->
      let db, accounts, digest = setup () in
      let prng = Workload.Prng.create seed in
      let rows = Ledger_table.current_rows accounts in
      let row = List.nth rows (Workload.Prng.int prng (List.length rows)) in
      let key = Storage.Table_store.primary_key (Ledger_table.main accounts) row in
      let column = if target_col = 0 then "name" else "balance" in
      let value =
        if target_col = 0 then vs (Workload.Prng.alnum_string prng 6)
        else vi (Workload.Prng.int prng 100_000)
      in
      let changed = not (Value.equal row.(target_col) value) in
      match
        Tamper.apply db (Tamper.Update_row { table = "accounts"; key; column; value })
      with
      | Ok () -> (not changed) || not (verify_ok db [ digest ])
      | Error _ -> false)

let () =
  Alcotest.run "tamper-matrix"
    [
      ( "detection",
        [
          Alcotest.test_case "row update" `Quick test_update_row;
          Alcotest.test_case "history rewrite" `Quick test_update_history_row;
          Alcotest.test_case "row erasure" `Quick test_delete_row;
          Alcotest.test_case "history erasure" `Quick test_delete_history_row;
          Alcotest.test_case "fabricated row" `Quick test_fabricated_row;
          Alcotest.test_case "fabricated row, unknown txn" `Quick test_fabricated_row_unknown_txn;
          Alcotest.test_case "metadata swap" `Quick test_metadata_swap;
          Alcotest.test_case "index diversion" `Quick test_index_rewrite;
          Alcotest.test_case "txn user rewrite" `Quick test_rewrite_transaction_user;
          Alcotest.test_case "queued entries unreachable" `Quick test_queue_tamper_immune;
        ] );
      ( "forks",
        [
          Alcotest.test_case "fork vs stored digest" `Quick test_fork_detected_by_digest;
          Alcotest.test_case "fork vs chain derivation" `Quick test_fork_detected_by_chain_derivation;
          Alcotest.test_case "fork without digests (documented limit)" `Quick
            test_fork_without_digest_undetected;
        ] );
      ( "metadata attacks",
        [
          Alcotest.test_case "drop-and-recreate" `Quick test_drop_and_recreate_visible_in_metadata;
        ] );
      ( "recovery",
        [ Alcotest.test_case "repair matrix" `Quick test_repair_after_each_row_attack ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_any_single_value_tamper_detected ] );
    ]
