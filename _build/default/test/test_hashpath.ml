(* Differential tests for the allocation-free hash pipeline: the sink-based
   serializers must be byte-identical to the string-building originals, and
   the domain-parallel Merkle root must equal the streaming root for every
   leaf count and domain split. These are the proofs that the perf rewrite
   changed no ledger bytes — old databases verify unchanged. *)

open Relation
module Sha256 = Ledger_crypto.Sha256
module Hex = Ledger_crypto.Hex
module Streaming = Merkle.Streaming

let rng = Random.State.make [| 0x5a11ed; 0x9e3779b9; 42 |]

(* ------------------------------------------------------------------ *)
(* Random schema / row generation, biased toward the edge cases the
   serialization format cares about: NULLs, empty strings, max-width
   varchars, negative and extreme integers. *)

let random_dtype () =
  match Random.State.int rng 7 with
  | 0 -> Datatype.Smallint
  | 1 -> Datatype.Int
  | 2 -> Datatype.Bigint
  | 3 -> Datatype.Bool
  | 4 -> Datatype.Float
  | 5 -> Datatype.Datetime
  | _ -> Datatype.Varchar (1 + Random.State.int rng 64)

let random_string len =
  String.init len (fun _ -> Char.chr (Random.State.int rng 256))

let random_value dtype =
  match dtype with
  | Datatype.Smallint ->
      Value.Int (Random.State.int rng 0x10000 - 0x8000)
  | Datatype.Int ->
      let extremes = [| -0x80000000; 0x7FFFFFFF; 0; -1; 1 |] in
      if Random.State.int rng 4 = 0 then
        Value.Int extremes.(Random.State.int rng (Array.length extremes))
      else Value.Int (Random.State.int rng 0x100000 - 0x80000)
  | Datatype.Bigint ->
      if Random.State.int rng 4 = 0 then
        Value.Int (if Random.State.bool rng then max_int else min_int)
      else Value.Int (Random.State.int rng 1_000_000 - 500_000)
  | Datatype.Bool -> Value.Bool (Random.State.bool rng)
  | Datatype.Float ->
      let special = [| 0.0; -0.0; infinity; neg_infinity; 1e308; -1e-308 |] in
      if Random.State.int rng 4 = 0 then
        Value.Float special.(Random.State.int rng (Array.length special))
      else Value.Float (Random.State.float rng 1e9 -. 5e8)
  | Datatype.Datetime -> Value.Datetime (Random.State.float rng 2e9)
  | Datatype.Varchar max_len ->
      let len =
        match Random.State.int rng 4 with
        | 0 -> 0 (* empty string *)
        | 1 -> max_len (* exactly at the declared maximum *)
        | _ -> Random.State.int rng (max_len + 1)
      in
      Value.String (random_string len)

let random_schema () =
  let arity = 1 + Random.State.int rng 8 in
  Schema.make
    (List.init arity (fun i ->
         Column.make ~nullable:true
           (Printf.sprintf "c%d" i)
           (random_dtype ())))

let random_row schema =
  Array.of_list
    (List.map
       (fun (col : Column.t) ->
         if Random.State.int rng 4 = 0 then Value.Null
         else random_value col.Column.dtype)
       (Schema.columns schema))

(* ------------------------------------------------------------------ *)
(* hash_into = hash, over random schemas/rows, reusing one context so the
   reset path is exercised between rows. *)

let test_hash_into_equals_hash () =
  let ctx = Sha256.init () in
  for trial = 1 to 500 do
    let schema = random_schema () in
    let row = random_row schema in
    let reference = Row_codec.hash schema row in
    let streamed = Row_codec.hash_into ctx schema row in
    Alcotest.(check string)
      (Printf.sprintf "trial %d" trial)
      (Hex.encode reference) (Hex.encode streamed)
  done

let test_hash_into_all_null_row () =
  let ctx = Sha256.init () in
  let schema =
    Schema.make
      [
        Column.make ~nullable:true "a" Datatype.Int;
        Column.make ~nullable:true "b" (Datatype.Varchar 10);
      ]
  in
  let row = [| Value.Null; Value.Null |] in
  Alcotest.(check string)
    "all-NULL row"
    (Hex.encode (Row_codec.hash schema row))
    (Hex.encode (Row_codec.hash_into ctx schema row))

let test_hash_into_rejects_bad_row () =
  let ctx = Sha256.init () in
  let schema = Schema.make [ Column.make "a" Datatype.Int ] in
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument
       "Row_codec.hash_into: arity mismatch: expected 1 values, got 2")
    (fun () ->
      ignore (Row_codec.hash_into ctx schema [| Value.Int 1; Value.Int 2 |]));
  (* A failed hash must not poison the context for the next row. *)
  let row = [| Value.int 7 |] in
  Alcotest.(check string)
    "context reusable after failure"
    (Hex.encode (Row_codec.hash schema row))
    (Hex.encode (Row_codec.hash_into ctx schema row))

(* ------------------------------------------------------------------ *)
(* tagged_feed = tagged_encode (the LEDGERHASH serialization). *)

let test_tagged_feed_equals_tagged_encode () =
  let values =
    [
      Value.Null;
      Value.Int 0;
      Value.Int (-1);
      Value.Int max_int;
      Value.Int min_int;
      Value.Bool true;
      Value.Bool false;
      Value.Float 0.0;
      Value.Float (-0.0);
      Value.Float infinity;
      Value.Float nan;
      Value.Float 3.14159;
      Value.Datetime 1786069791.57797;
      Value.String "";
      Value.String "hello";
      Value.String (random_string 300);
    ]
  in
  List.iter
    (fun v ->
      let ctx = Sha256.init () in
      Value.tagged_feed ctx v;
      Alcotest.(check string)
        (Value.to_string v)
        (Hex.encode (Sha256.digest_string (Value.tagged_encode v)))
        (Hex.encode (Sha256.get ctx)))
    values;
  (* And a whole argument list at once, as LEDGERHASH feeds it. *)
  let ctx = Sha256.init () in
  List.iter (Value.tagged_feed ctx) values;
  Alcotest.(check string)
    "concatenated"
    (Hex.encode
       (Sha256.digest_string
          (String.concat "" (List.map Value.tagged_encode values))))
    (Hex.encode (Sha256.get ctx))

(* ------------------------------------------------------------------ *)
(* Reusable-context SHA-256 around block boundaries. *)

let test_sha256_reset_and_byte_feeds () =
  let ctx = Sha256.init () in
  List.iter
    (fun n ->
      let s = random_string n in
      Sha256.reset ctx;
      String.iter (fun c -> Sha256.feed_byte ctx (Char.code c)) s;
      let out = Bytes.create 32 in
      Sha256.finish_into ctx out ~off:0;
      Alcotest.(check string)
        (Printf.sprintf "len %d" n)
        (Hex.encode (Sha256.digest_string s))
        (Hex.encode (Bytes.to_string out)))
    [ 0; 1; 55; 56; 57; 63; 64; 65; 127; 128; 129; 1000 ]

let test_sha256_feed_be () =
  (* feed_be must produce big-endian two's-complement bytes, same as the
     string encoders. *)
  let ctx = Sha256.init () in
  List.iter
    (fun (width, v) ->
      Sha256.reset ctx;
      Sha256.feed_be ctx ~width v;
      let s =
        String.init width (fun i ->
            Char.chr ((v lsr (8 * (width - 1 - i))) land 0xFF))
      in
      Alcotest.(check string)
        (Printf.sprintf "width %d value %d" width v)
        (Hex.encode (Sha256.digest_string s))
        (Hex.encode (Sha256.get ctx)))
    [
      (1, 0); (1, 255); (2, 0xBEEF); (4, 0xDEADBEEF); (8, max_int); (8, -1);
      (8, min_int);
    ]

(* ------------------------------------------------------------------ *)
(* Parallel Merkle root = streaming root. *)

let leaf i = Sha256.digest_string (Printf.sprintf "leaf-%d" i)

let streaming_root n =
  Streaming.(root (add_leaves empty (List.init n leaf)))

let test_parallel_sequential_sweep () =
  (* Every count 0..1025 through the auto path (sequential below the
     threshold, but also exercising root_array dispatch). *)
  for n = 0 to 1025 do
    let leaves = Array.init n leaf in
    Alcotest.(check string)
      (Printf.sprintf "n=%d" n)
      (Hex.encode (streaming_root n))
      (Hex.encode (Merkle.Parallel.root_array leaves))
  done

let test_parallel_forced_domains () =
  (* Force multi-domain chunking on sizes around every interesting boundary:
     powers of two, off-by-ones, and counts smaller than the domain count. *)
  let ns = [ 0; 1; 2; 3; 4; 5; 7; 8; 9; 15; 16; 17; 31; 33; 63; 64; 65;
             100; 127; 128; 129; 255; 256; 257; 511; 513; 1000; 1024; 1025 ]
  in
  List.iter
    (fun n ->
      let leaves = Array.init n leaf in
      let expected = Hex.encode (streaming_root n) in
      List.iter
        (fun domains ->
          Alcotest.(check string)
            (Printf.sprintf "n=%d domains=%d" n domains)
            expected
            (Hex.encode (Merkle.Parallel.root_array ~domains leaves)))
        [ 1; 2; 3; 4; 5 ])
    ns

let test_parallel_above_threshold () =
  (* Past the auto threshold the root must still match streaming. *)
  let n = 3000 in
  let leaves = Array.init n leaf in
  Alcotest.(check string)
    (Printf.sprintf "auto n=%d" n)
    (Hex.encode (streaming_root n))
    (Hex.encode (Merkle.Parallel.root_array leaves))

let test_parallel_list_wrapper () =
  let ls = List.init 37 leaf in
  Alcotest.(check string)
    "list = array"
    (Hex.encode (Merkle.Parallel.root_array (Array.of_list ls)))
    (Hex.encode (Merkle.Parallel.root ~domains:3 ls))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "hashpath"
    [
      ( "row hashing",
        [
          Alcotest.test_case "hash_into = hash (randomized)" `Quick
            test_hash_into_equals_hash;
          Alcotest.test_case "all-NULL row" `Quick test_hash_into_all_null_row;
          Alcotest.test_case "invalid row rejected, ctx survives" `Quick
            test_hash_into_rejects_bad_row;
        ] );
      ( "tagged values",
        [
          Alcotest.test_case "tagged_feed = tagged_encode" `Quick
            test_tagged_feed_equals_tagged_encode;
        ] );
      ( "sha256 context",
        [
          Alcotest.test_case "reset + feed_byte at block boundaries" `Quick
            test_sha256_reset_and_byte_feeds;
          Alcotest.test_case "feed_be big-endian" `Quick test_sha256_feed_be;
        ] );
      ( "parallel merkle",
        [
          Alcotest.test_case "sweep 0..1025 (auto)" `Quick
            test_parallel_sequential_sweep;
          Alcotest.test_case "forced domains 1..5" `Quick
            test_parallel_forced_domains;
          Alcotest.test_case "above auto threshold" `Quick
            test_parallel_above_threshold;
          Alcotest.test_case "list wrapper" `Quick test_parallel_list_wrapper;
        ] );
    ]
