(* The blockchain-baseline latency model: sanity of the calibration against
   the published Fabric numbers the paper cites (§4.1). *)

let test_saturation_matches_published () =
  (* Fabric v1.x: a few thousand tps. *)
  let sat = Fabric_sim.saturation_tps () in
  Alcotest.(check bool) "saturation in [1K, 10K]" true (sat >= 1000.0 && sat <= 10_000.0)

let test_latency_hundreds_of_ms () =
  let r = Fabric_sim.simulate ~offered_tps:1000.0 ~txns:5000 () in
  Alcotest.(check bool) "avg latency 50..1000 ms" true
    (r.Fabric_sim.avg_latency_ms >= 50.0 && r.Fabric_sim.avg_latency_ms <= 1000.0);
  Alcotest.(check bool) "p99 >= p50" true
    (r.Fabric_sim.p99_latency_ms >= r.Fabric_sim.p50_latency_ms);
  Alcotest.(check int) "all complete" 5000 r.Fabric_sim.completed

let test_throughput_caps_at_saturation () =
  let sat = Fabric_sim.saturation_tps () in
  let over = Fabric_sim.simulate ~offered_tps:(sat *. 4.0) ~txns:20_000 () in
  Alcotest.(check bool) "achieved <= 1.2 * saturation" true
    (over.Fabric_sim.achieved_tps <= sat *. 1.2);
  (* Overload latency must blow up relative to a light load. *)
  let light = Fabric_sim.simulate ~offered_tps:(sat /. 10.0) ~txns:2000 () in
  Alcotest.(check bool) "overload much slower" true
    (over.Fabric_sim.avg_latency_ms > 2.0 *. light.Fabric_sim.avg_latency_ms)

let test_monotone_in_load () =
  let r1 = Fabric_sim.simulate ~offered_tps:500.0 ~txns:5000 () in
  let r2 = Fabric_sim.simulate ~offered_tps:3000.0 ~txns:5000 () in
  Alcotest.(check bool) "latency grows with load" true
    (r2.Fabric_sim.avg_latency_ms >= r1.Fabric_sim.avg_latency_ms)

let test_deterministic () =
  let a = Fabric_sim.simulate ~offered_tps:800.0 ~txns:3000 () in
  let b = Fabric_sim.simulate ~offered_tps:800.0 ~txns:3000 () in
  Alcotest.(check (float 1e-9)) "same avg" a.Fabric_sim.avg_latency_ms
    b.Fabric_sim.avg_latency_ms

let test_invalid_inputs () =
  Alcotest.(check bool) "zero load" true
    (match Fabric_sim.simulate ~offered_tps:0.0 ~txns:10 () with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "zero txns" true
    (match Fabric_sim.simulate ~offered_tps:10.0 ~txns:0 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_config_knobs () =
  (* Faster validation raises saturation. *)
  let fast =
    { Fabric_sim.default with Fabric_sim.validation_per_txn_ms = 0.1 }
  in
  Alcotest.(check bool) "validation is the knob" true
    (Fabric_sim.saturation_tps ~config:fast ()
    > Fabric_sim.saturation_tps ());
  (* Fewer endorsement slots lowers it. *)
  let starved =
    { Fabric_sim.default with Fabric_sim.endorsement_parallelism = 5 }
  in
  Alcotest.(check bool) "endorsement can bottleneck" true
    (Fabric_sim.saturation_tps ~config:starved ()
    < Fabric_sim.saturation_tps ())

let () =
  Alcotest.run "fabric-sim"
    [
      ( "calibration",
        [
          Alcotest.test_case "saturation" `Quick test_saturation_matches_published;
          Alcotest.test_case "latency scale" `Quick test_latency_hundreds_of_ms;
          Alcotest.test_case "caps at saturation" `Quick test_throughput_caps_at_saturation;
          Alcotest.test_case "monotone in load" `Quick test_monotone_in_load;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "invalid inputs" `Quick test_invalid_inputs;
          Alcotest.test_case "config knobs" `Quick test_config_knobs;
        ] );
    ]
