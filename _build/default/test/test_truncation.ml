(* Ledger truncation (§5.2): old blocks/transactions/history removed, the
   remaining ledger stays verifiable, and the truncation is itself audited. *)

open Relation
open Sql_ledger
open Testkit

let setup_with_blocks () =
  let db = make_db ~block_size:3 "trunc" in
  let accounts = make_accounts db in
  for i = 1 to 9 do
    ignore (insert_account db accounts (Printf.sprintf "acc%02d" i) i)
  done;
  ignore (update_account db accounts "acc01" 100);
  ignore (delete_account db accounts "acc02");
  let d = fresh_digest db in
  (db, accounts, d)

let test_truncate_happy_path () =
  let db, accounts, d = setup_with_blocks () in
  let blocks_before =
    List.length (Database_ledger.blocks (Database.ledger db))
  in
  Alcotest.(check bool) "enough blocks" true (blocks_before >= 3);
  match Truncation.truncate db ~digests:[ d ] ~upto_block:1 ~user:"dba" with
  | Error report ->
      Alcotest.failf "pre-verification failed: %d violations"
        (List.length report.Verifier.violations)
  | Ok summary ->
      Alcotest.(check int) "horizon" 1 summary.Truncation.horizon_block;
      Alcotest.(check bool) "blocks removed" true (summary.Truncation.blocks_removed = 2);
      Alcotest.(check bool) "transactions removed" true
        (summary.Truncation.transactions_removed > 0);
      Alcotest.(check bool) "rows re-anchored" true
        (summary.Truncation.rows_reanchored > 0);
      (* The surviving ledger verifies with a fresh digest. *)
      let d2 = fresh_digest db in
      Alcotest.(check bool) "post-truncation verify" true (verify_ok db [ d2 ]);
      (* Old blocks are gone from the system table. *)
      let remaining = Database_ledger.blocks (Database.ledger db) in
      Alcotest.(check bool) "first block is 2" true
        ((List.hd remaining).Types.block_id = 2);
      (* Current data is intact. *)
      Alcotest.(check int) "current rows survive" 8
        (Ledger_table.row_count accounts);
      (* The truncation event is in the ledgered metadata. *)
      let r =
        Database.query db
          "SELECT COUNT(*) FROM ledger_tables_meta WHERE operation = 'TRUNCATE'"
      in
      Alcotest.(check bool) "audited" true
        (Value.equal (List.hd r.Sqlexec.Rel.rows).(0) (Value.Int 1))

let test_truncate_refuses_tampered_db () =
  let db, _, d = setup_with_blocks () in
  ignore
    (Tamper.apply db
       (Tamper.Update_row
          {
            table = "accounts";
            key = [| vs "acc05" |];
            column = "balance";
            value = vi 777;
          }));
  match Truncation.truncate db ~digests:[ d ] ~upto_block:1 ~user:"dba" with
  | Error report ->
      Alcotest.(check bool) "violations reported" true
        (report.Verifier.violations <> [])
  | Ok _ -> Alcotest.fail "truncation over tampered data must refuse"

let test_truncate_open_block_rejected () =
  let db, _, d = setup_with_blocks () in
  Alcotest.(check bool) "open block rejected" true
    (match Truncation.truncate db ~digests:[ d ] ~upto_block:999 ~user:"dba" with
    | exception Types.Ledger_error _ -> true
    | _ -> false)

let test_tamper_after_truncation_still_detected () =
  let db, _, d = setup_with_blocks () in
  (match Truncation.truncate db ~digests:[ d ] ~upto_block:1 ~user:"dba" with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "truncation failed");
  let d2 = fresh_digest db in
  ignore
    (Tamper.apply db
       (Tamper.Update_row
          {
            table = "accounts";
            key = [| vs "acc07" |];
            column = "balance";
            value = vi 0;
          }));
  Alcotest.(check bool) "detected" true (not (verify_ok db [ d2 ]))

let test_horizon_hash_tamper_detected () =
  (* Rewriting the first surviving block's prev_hash must clash with the
     ledgered horizon hash. *)
  let db, _, d = setup_with_blocks () in
  (match Truncation.truncate db ~digests:[ d ] ~upto_block:1 ~user:"dba" with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "truncation failed");
  let blocks_table = Database_ledger.raw_blocks_table (Database.ledger db) in
  ignore
    (Storage.Table_store.Raw.overwrite_value blocks_table
       ~key:[| Value.Int 2 |] ~ordinal:1
       (Value.String (String.make 64 '0')));
  let report = Verifier.verify db ~digests:[] in
  Alcotest.(check bool) "chain anchored at horizon" true
    (List.exists
       (function Verifier.Chain_broken _ -> true | _ -> false)
       report.Verifier.violations)

let test_double_truncation () =
  let db, accounts, d = setup_with_blocks () in
  (match Truncation.truncate db ~digests:[ d ] ~upto_block:1 ~user:"dba" with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "first truncation failed");
  for i = 10 to 15 do
    ignore (insert_account db accounts (Printf.sprintf "acc%02d" i) i)
  done;
  let d2 = fresh_digest db in
  let upto =
    (* truncate everything but the newest closed block *)
    match List.rev (Database_ledger.blocks (Database.ledger db)) with
    | latest :: _ -> latest.Types.block_id - 1
    | [] -> Alcotest.fail "no blocks"
  in
  (match Truncation.truncate db ~digests:[ d2 ] ~upto_block:upto ~user:"dba" with
  | Ok _ -> ()
  | Error report ->
      Alcotest.failf "second truncation failed: %d violations"
        (List.length report.Verifier.violations));
  let d3 = fresh_digest db in
  Alcotest.(check bool) "verifies after double truncation" true
    (verify_ok db [ d3 ])

let () =
  Alcotest.run "truncation"
    [
      ( "truncate",
        [
          Alcotest.test_case "happy path" `Quick test_truncate_happy_path;
          Alcotest.test_case "refuses tampered data" `Quick test_truncate_refuses_tampered_db;
          Alcotest.test_case "open block rejected" `Quick test_truncate_open_block_rejected;
          Alcotest.test_case "detection still works" `Quick test_tamper_after_truncation_still_detected;
          Alcotest.test_case "horizon hash anchored" `Quick test_horizon_hash_tamper_detected;
          Alcotest.test_case "double truncation" `Quick test_double_truncation;
        ] );
    ]
