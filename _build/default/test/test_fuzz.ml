(* Robustness fuzzing: every boundary that parses untrusted bytes (JSON,
   SQL text, digests, receipts, WAL lines, serialized rows) must fail
   *closed* — a Result error or its documented exception, never a crash or
   an unexpected exception. Attackers control many of these inputs. *)

let gen_bytes = QCheck.Gen.(string_size ~gen:(map Char.chr (0 -- 255)) (0 -- 200))

let gen_jsonish =
  (* Byte soup biased towards JSON-looking fragments. *)
  QCheck.Gen.(
    oneof
      [
        gen_bytes;
        map
          (fun (a, b) -> Printf.sprintf "{\"%s\": %s}" a b)
          (pair (string_size (0 -- 10)) (string_size (0 -- 10)));
        map (fun s -> "[" ^ s ^ "]") (string_size (0 -- 30));
        return "{\"block_id\": 1e999}";
        return "{\"hash\": \"zz\"}";
      ])

let no_crash ?(exns = fun _ -> false) f input =
  match f input with
  | _ -> true
  | exception e -> exns e

let prop name gen ?exns f = QCheck.Test.make ~name ~count:500 (QCheck.make gen) (no_crash ?exns f)

let sjson_ok = function Sjson.Parse_error _ -> true | _ -> false

let sql_ok = function
  | Sqlexec.Lexer.Lex_error _ | Sqlexec.Parser.Parse_error _ -> true
  | _ -> false

let tests =
  [
    prop "Sjson.of_string" gen_jsonish ~exns:sjson_ok Sjson.of_string;
    prop "Digest.of_string" gen_jsonish Sql_ledger.Digest.of_string;
    prop "Receipt.of_string" gen_jsonish Sql_ledger.Receipt.of_string;
    prop "Signed_digest.of_string" gen_jsonish Trusted_store.Signed_digest.of_string;
    prop "Log_record.of_line" gen_jsonish Aries.Log_record.of_line;
    prop "Row_codec.inspect" gen_bytes Relation.Row_codec.inspect;
    prop "Hex.is_hex" gen_bytes Ledger_crypto.Hex.is_hex;
    prop "Lamport.public_key_of_string" gen_bytes
      Ledger_crypto.Lamport.public_key_of_string;
    prop "Lamport.signature_of_string" gen_bytes
      Ledger_crypto.Lamport.signature_of_string;
    prop "SQL parse_statement" gen_bytes ~exns:sql_ok
      Sqlexec.Parser.parse_statement;
    prop "Datatype.of_string" gen_bytes Relation.Datatype.of_string;
    prop "Value.of_tagged_json (via JSON)" gen_jsonish ~exns:sjson_ok
      (fun s -> Relation.Value.of_tagged_json (Sjson.of_string s));
  ]

(* Mutated-but-structured inputs: take a valid serialized row and flip one
   byte; inspect must still never crash. *)
let prop_mutated_row =
  let schema =
    Relation.Schema.make
      [
        Relation.Column.make "a" Relation.Datatype.Int;
        Relation.Column.make "b" (Relation.Datatype.Varchar 20);
      ]
  in
  QCheck.Test.make ~name:"Row_codec.inspect on flipped bytes" ~count:500
    (QCheck.make QCheck.Gen.(triple (0 -- 10_000) (0 -- 100) (0 -- 255)))
    (fun (a, pos, byte) ->
      let serialized =
        Relation.Row_codec.serialize schema
          [| Relation.Value.Int a; Relation.Value.String "payload" |]
      in
      let b = Bytes.of_string serialized in
      Bytes.set b (pos mod Bytes.length b) (Char.chr byte);
      match Relation.Row_codec.inspect (Bytes.to_string b) with
      | Some _ | None -> true)

(* Mutated digest JSON: parse of a corrupted-but-valid-JSON digest returns
   Ok or Error, and an Ok digest that differs never verifies. *)
let prop_mutated_digest_fails_verification =
  QCheck.Test.make ~name:"mutated digest never silently verifies" ~count:30
    (QCheck.make QCheck.Gen.(0 -- 1_000_000))
    (fun salt ->
      let clock =
        let t = ref 1000.0 in
        fun () ->
          t := !t +. 1.0;
          !t
      in
      let db = Sql_ledger.Database.create ~block_size:4 ~clock ~name:"fuzz" () in
      let lt =
        Sql_ledger.Database.create_ledger_table db ~name:"t"
          ~columns:[ Relation.Column.make "id" Relation.Datatype.Int ]
          ~key:[ "id" ] ()
      in
      ignore
        (Sql_ledger.Database.with_txn db ~user:"u" (fun txn ->
             Sql_ledger.Txn.insert txn lt [| Relation.Value.Int salt |]));
      let d = Option.get (Sql_ledger.Database.generate_digest db) in
      let forged =
        {
          d with
          Sql_ledger.Digest.block_hash =
            Ledger_crypto.Sha256.digest_string (string_of_int salt);
        }
      in
      let report = Sql_ledger.Verifier.verify db ~digests:[ forged ] in
      not (Sql_ledger.Verifier.ok report))

let () =
  Alcotest.run "fuzz"
    [
      ( "fail-closed parsers",
        List.map QCheck_alcotest.to_alcotest
          (tests @ [ prop_mutated_row; prop_mutated_digest_fails_verification ])
      );
    ]
