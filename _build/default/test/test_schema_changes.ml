(* Schema changes (§3.5): adding nullable columns, dropping columns/tables,
   altering column types — all while keeping the ledger verifiable. *)

open Relation
open Sql_ledger
open Testkit

let test_add_nullable_column () =
  let db = make_db "addcol" in
  let accounts = make_accounts db in
  figure2 db accounts;
  let d_before = fresh_digest db in
  Database.add_column db ~table:"accounts"
    (Column.make ~nullable:true "email" (Datatype.Varchar 64));
  (* Old hashes must still verify: NULLs are skipped (§3.5.1). *)
  Alcotest.(check bool) "verifies after add" true (verify_ok db [ d_before ]);
  (* New writes can use the column. *)
  ignore
    (commit_one db "teller" (fun txn ->
         Txn.insert txn accounts [| vs "Pat"; vi 10; vs "pat@x.com" |]));
  let d_after = fresh_digest db in
  Alcotest.(check bool) "verifies with new column data" true
    (verify_ok db [ d_before; d_after ]);
  let r = Database.query db "SELECT email FROM accounts WHERE name = 'Pat'" in
  Alcotest.(check string) "value readable" "pat@x.com"
    (Value.to_string (List.hd r.Sqlexec.Rel.rows).(0))

let test_add_non_nullable_rejected () =
  let db = make_db "addnn" in
  let _ = make_accounts db in
  Alcotest.(check bool) "NOT NULL add rejected" true
    (match
       Database.add_column db ~table:"accounts"
         (Column.make "required" Datatype.Int)
     with
    | exception Types.Ledger_error _ -> true
    | _ -> false)

let test_update_after_add_column () =
  let db = make_db "updafter" in
  let accounts = make_accounts db in
  ignore (insert_account db accounts "Old" 1);
  Database.add_column db ~table:"accounts"
    (Column.make ~nullable:true "note" (Datatype.Varchar 32));
  (* Updating a pre-extension row: new column NULL in old version, set in new. *)
  ignore
    (commit_one db "teller" (fun txn ->
         Txn.update txn accounts ~key:[| vs "Old" |] [| vs "Old"; vi 2; vs "bumped" |]));
  let d = fresh_digest db in
  Alcotest.(check bool) "verifies" true (verify_ok db [ d ])

let test_drop_column () =
  let db = make_db "dropcol" in
  let accounts = make_accounts db in
  figure2 db accounts;
  let d = fresh_digest db in
  Database.drop_column db ~table:"accounts" ~column:"balance";
  (* Data remains stored and hashed: verification still passes. *)
  Alcotest.(check bool) "verifies after drop" true (verify_ok db [ d ]);
  (* The column is hidden from the user relation... *)
  let r = Database.query db "SELECT * FROM accounts" in
  Alcotest.(check (list string)) "column hidden" [ "name" ]
    (Sqlexec.Rel.column_names r);
  (* ... and the drop is recorded in the ledgered metadata. *)
  let m =
    Database.query db
      "SELECT COUNT(*) FROM ledger_columns_meta WHERE column_name = 'balance' \
       AND operation = 'DROP'"
  in
  Alcotest.(check bool) "DROP event" true
    (Value.equal (List.hd m.Sqlexec.Rel.rows).(0) (vi 1));
  (* Inserts after the drop supply the hidden column too (it still exists
     physically); the user-row shape includes it. *)
  ignore
    (commit_one db "teller" (fun txn ->
         Txn.insert txn accounts [| vs "New"; vi 0 |]));
  let d2 = fresh_digest db in
  Alcotest.(check bool) "verifies after post-drop insert" true
    (verify_ok db [ d; d2 ])

let test_drop_system_column_rejected () =
  let db = make_db "dropsys" in
  let _ = make_accounts db in
  Alcotest.(check bool) "system column protected" true
    (match
       Database.drop_column db ~table:"accounts" ~column:"_ledger_start_txn_id"
     with
    | exception Types.Ledger_error _ -> true
    | _ -> false)

let test_drop_table_logical () =
  let db = make_db "droptab" in
  let accounts = make_accounts db in
  figure2 db accounts;
  let d = fresh_digest db in
  Database.drop_table db ~name:"accounts";
  (* Gone from the user namespace. *)
  Alcotest.(check bool) "name free" true
    (Database.find_ledger_table db "accounts" = None);
  (* Physically retained under the dropped name and still verifiable. *)
  Alcotest.(check bool) "verifies after drop" true (verify_ok db [ d ]);
  Alcotest.(check int) "one dropped + 2 meta tables" 3
    (List.length (Database.ledger_tables db));
  Alcotest.(check int) "no user tables" 0
    (List.length (Database.user_ledger_tables db))

let test_drop_then_recreate_same_name () =
  let db = make_db "recreate" in
  let accounts = make_accounts db in
  figure2 db accounts;
  Database.drop_table db ~name:"accounts";
  let accounts2 = make_accounts db in
  Alcotest.(check bool) "fresh table distinct" true
    (Ledger_table.table_id accounts2 <> Ledger_table.table_id accounts);
  ignore (insert_account db accounts2 "Fresh" 1);
  let d = fresh_digest db in
  Alcotest.(check bool) "both incarnations verify" true (verify_ok db [ d ]);
  (* Figure 6: metadata view exposes CREATE, DROP, CREATE sequence. *)
  let r =
    Database.query db
      "SELECT operation FROM ledger_tables_meta ORDER BY event_id"
  in
  Alcotest.(check (list string)) "event sequence"
    [ "CREATE"; "DROP"; "CREATE" ]
    (List.map (fun row -> Value.to_string row.(0)) r.Sqlexec.Rel.rows)

let test_alter_column_type () =
  let db = make_db "altertype" in
  let accounts = make_accounts db in
  figure2 db accounts;
  let d = fresh_digest db in
  (* Widen balance from INT to FLOAT with a ledgered repopulation. *)
  Database.alter_column_type db ~table:"accounts" ~column:"balance"
    Datatype.Float
    ~convert:(function Value.Int i -> Value.Float (float_of_int i) | v -> v);
  let d2 = fresh_digest db in
  Alcotest.(check bool) "verifies across type change" true
    (verify_ok db [ d; d2 ]);
  let r =
    Database.query db "SELECT balance FROM accounts WHERE name = 'John'"
  in
  Alcotest.(check bool) "converted value" true
    (Value.equal (List.hd r.Sqlexec.Rel.rows).(0) (Value.Float 500.0));
  (* Metadata records DROP + CREATE for the column. *)
  let m =
    Database.query db
      "SELECT operation FROM ledger_columns_meta WHERE column_name = 'balance' \
       ORDER BY event_id"
  in
  Alcotest.(check (list string)) "column events" [ "CREATE"; "DROP"; "CREATE" ]
    (List.map (fun row -> Value.to_string row.(0)) m.Sqlexec.Rel.rows)

let test_alter_key_column_rejected () =
  let db = make_db "alterkey" in
  let _ = make_accounts db in
  Alcotest.(check bool) "key column protected" true
    (match
       Database.alter_column_type db ~table:"accounts" ~column:"name"
         (Datatype.Varchar 99) ~convert:Fun.id
     with
    | exception Types.Ledger_error _ -> true
    | _ -> false)

let test_physical_changes_free () =
  (* §3.5: physical schema changes (indexes) never affect hashes. *)
  let db = make_db "physical" in
  let accounts = make_accounts db in
  figure2 db accounts;
  let d = fresh_digest db in
  Database.create_index db ~table:"accounts" ~name:"i1" ~columns:[ "balance" ];
  Alcotest.(check bool) "verifies with index" true (verify_ok db [ d ]);
  Database.drop_index db ~table:"accounts" ~name:"i1";
  Alcotest.(check bool) "verifies without index" true (verify_ok db [ d ])

let () =
  Alcotest.run "schema-changes"
    [
      ( "columns",
        [
          Alcotest.test_case "add nullable" `Quick test_add_nullable_column;
          Alcotest.test_case "add NOT NULL rejected" `Quick test_add_non_nullable_rejected;
          Alcotest.test_case "update after add" `Quick test_update_after_add_column;
          Alcotest.test_case "drop column" `Quick test_drop_column;
          Alcotest.test_case "drop system column rejected" `Quick test_drop_system_column_rejected;
          Alcotest.test_case "alter type" `Quick test_alter_column_type;
          Alcotest.test_case "alter key rejected" `Quick test_alter_key_column_rejected;
        ] );
      ( "tables",
        [
          Alcotest.test_case "logical drop" `Quick test_drop_table_logical;
          Alcotest.test_case "drop + recreate" `Quick test_drop_then_recreate_same_name;
          Alcotest.test_case "physical changes free" `Quick test_physical_changes_free;
        ] );
    ]
