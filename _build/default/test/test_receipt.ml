(* Non-repudiation receipts (§5.1): Merkle proof + per-block signature,
   verified without access to the database — even after the ledger is
   destroyed. *)

open Sql_ledger
open Testkit

let setup () =
  let db = make_db ~signing_seed:"receipt-seed" "receipts" in
  let accounts = make_accounts db in
  figure2 db accounts;
  let digest = fresh_digest db in
  (db, digest)

let test_generate_and_verify () =
  (* block_size = 4, 7 committed txns: block 0 = txns 1-4, block 1 (the
     digest's block) = txns 5-7. *)
  let db, digest = setup () in
  match Receipt.generate db ~txn_id:6 with
  | Error e -> Alcotest.fail e
  | Ok r ->
      Alcotest.(check int) "txn id" 6 r.Receipt.entry.Types.txn_id;
      Alcotest.(check bool) "signed" true (r.Receipt.signature <> None);
      (match Receipt.verify r with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("standalone: " ^ e));
      (match Receipt.verify ~digest r with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("with digest: " ^ e));
      let fp =
        Ledger_crypto.Lamport.fingerprint (Option.get r.Receipt.public_key)
      in
      match Receipt.verify ~expected_fingerprint:fp r with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("with fingerprint: " ^ e)

let test_receipt_for_every_txn_in_block () =
  let db, _ = setup () in
  let entries = Database_ledger.entries (Database.ledger db) in
  List.iter
    (fun (e : Types.txn_entry) ->
      match Receipt.generate db ~txn_id:e.txn_id with
      | Ok r -> (
          match Receipt.verify r with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "txn %d: %s" e.txn_id msg)
      | Error msg -> Alcotest.failf "txn %d: %s" e.txn_id msg)
    entries

let test_open_block_rejected () =
  let db, _ = setup () in
  let accounts = Database.ledger_table db "accounts" in
  let e = insert_account db accounts "Open" 1 in
  match Receipt.generate db ~txn_id:e.Types.txn_id with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "open-block receipt must be refused"

let test_unknown_txn_rejected () =
  let db, _ = setup () in
  match Receipt.generate db ~txn_id:424242 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown txn must be refused"

let test_json_roundtrip () =
  let db, digest = setup () in
  match Receipt.generate db ~txn_id:7 with
  | Error e -> Alcotest.fail e
  | Ok r -> (
      match Receipt.of_string (Receipt.to_string r) with
      | Error e -> Alcotest.fail e
      | Ok r' -> (
          match Receipt.verify ~digest r' with
          | Ok () -> ()
          | Error e -> Alcotest.fail ("roundtrip verify: " ^ e)))

let test_survives_ledger_destruction () =
  (* The whole point of §5.1: the receipt stands on its own after the
     ledger is destroyed or tampered with. *)
  let db, digest = setup () in
  let receipt_json =
    match Receipt.generate db ~txn_id:5 with
    | Ok r -> Receipt.to_string r
    | Error e -> Alcotest.fail e
  in
  (* Destroy the ledger. *)
  ignore (Tamper.apply db (Tamper.Fork_chain { block_id = 0 }));
  ignore
    (Tamper.apply db (Tamper.Delete_row { table = "accounts"; key = [| vs "Mary" |] }));
  match Receipt.of_string receipt_json with
  | Error e -> Alcotest.fail e
  | Ok r -> (
      match Receipt.verify ~digest r with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("post-destruction: " ^ e))

let test_forged_receipt_rejected () =
  let db, digest = setup () in
  match Receipt.generate db ~txn_id:5 with
  | Error e -> Alcotest.fail e
  | Ok r ->
      (* Claim a different commit outcome: bump the amount... we can only
         change entry fields; any change must invalidate the proof. *)
      let forged_entry = { r.Receipt.entry with Types.user = "forged" } in
      let forged = { r with Receipt.entry = forged_entry } in
      (match Receipt.verify ~digest forged with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "forged entry accepted");
      (* Tampered proof *)
      let bad_proof =
        match r.Receipt.proof with
        | step :: rest ->
            (match step with
            | Merkle.Proof.Sibling_left h ->
                Merkle.Proof.Sibling_right h :: rest
            | Merkle.Proof.Sibling_right h ->
                Merkle.Proof.Sibling_left h :: rest)
        | [] -> [ Merkle.Proof.Sibling_left (String.make 32 'x') ]
      in
      (match Receipt.verify ~digest { r with Receipt.proof = bad_proof } with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "tampered proof accepted");
      (* Forged block (hash change) must clash with the digest. *)
      let forged_block = { r.Receipt.block with Types.txn_count = 99 } in
      (match Receipt.verify ~digest { r with Receipt.block = forged_block } with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "forged block accepted with digest");
      (* Wrong fingerprint pin. *)
      match
        Receipt.verify ~expected_fingerprint:(String.make 32 'z') r
      with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "wrong fingerprint accepted"

let test_unsigned_database () =
  (* Without a signing seed, receipts still carry a verifiable proof. *)
  let db = make_db "unsigned" in
  let accounts = make_accounts db in
  figure2 db accounts;
  ignore (fresh_digest db);
  match Receipt.generate db ~txn_id:3 with
  | Error e -> Alcotest.fail e
  | Ok r ->
      Alcotest.(check bool) "no signature" true (r.Receipt.signature = None);
      (match Receipt.verify r with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)

let () =
  Alcotest.run "receipts"
    [
      ( "receipts",
        [
          Alcotest.test_case "generate + verify" `Quick test_generate_and_verify;
          Alcotest.test_case "every txn in block" `Quick test_receipt_for_every_txn_in_block;
          Alcotest.test_case "open block rejected" `Quick test_open_block_rejected;
          Alcotest.test_case "unknown txn rejected" `Quick test_unknown_txn_rejected;
          Alcotest.test_case "JSON roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "survives ledger destruction" `Quick test_survives_ledger_destruction;
          Alcotest.test_case "forgeries rejected" `Quick test_forged_receipt_rejected;
          Alcotest.test_case "unsigned database" `Quick test_unsigned_database;
        ] );
    ]
