(* WAL records, file persistence with torn tails, and the analysis phase of
   recovery (§3.3.2). *)

module LR = Aries.Log_record

let sample_commit txn_id block_id ordinal : LR.commit_info =
  {
    txn_id;
    commit_ts = 1000.0 +. float_of_int txn_id;
    user = Printf.sprintf "user%d" txn_id;
    block_id;
    ordinal;
    table_roots = [ (1, String.make 32 'a'); (2, String.make 32 'b') ];
  }

let test_record_roundtrip () =
  let records =
    [
      LR.Begin { txn_id = 7 };
      LR.Abort { txn_id = 7 };
      LR.Checkpoint { flushed_upto_lsn = 42 };
      LR.Commit (sample_commit 9 2 17);
    ]
  in
  List.iter
    (fun r ->
      match LR.of_line (LR.to_line r) with
      | Ok r' ->
          Alcotest.(check string) "roundtrip" (LR.to_line r) (LR.to_line r')
      | Error e -> Alcotest.failf "roundtrip failed: %s" e)
    records

let test_record_rejects_garbage () =
  List.iter
    (fun line ->
      match LR.of_line line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %s" line)
    [ "not json"; "{}"; {|{"type":"explode"}|}; {|{"type":"commit"}|} ]

let test_wal_lsns_and_records () =
  let w = Aries.Wal.create () in
  Alcotest.(check int) "empty lsn" 0 (Aries.Wal.last_lsn w);
  let l1 = Aries.Wal.append w (LR.Begin { txn_id = 1 }) in
  let l2 = Aries.Wal.append w (LR.Commit (sample_commit 1 0 0)) in
  Alcotest.(check int) "lsn 1" 1 l1;
  Alcotest.(check int) "lsn 2" 2 l2;
  Alcotest.(check int) "records" 2 (List.length (Aries.Wal.records w));
  Alcotest.(check int) "records_from" 1 (List.length (Aries.Wal.records_from w 1))

let with_temp_file f =
  let path = Filename.temp_file "waltest" ".log" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_wal_file_persistence () =
  with_temp_file (fun path ->
      let w = Aries.Wal.create ~path () in
      ignore (Aries.Wal.append w (LR.Begin { txn_id = 1 }));
      ignore (Aries.Wal.append w (LR.Commit (sample_commit 1 0 0)));
      Aries.Wal.close w;
      match Aries.Wal.load path with
      | Ok records -> Alcotest.(check int) "loaded" 2 (List.length records)
      | Error e -> Alcotest.fail e)

let test_wal_torn_tail () =
  with_temp_file (fun path ->
      let w = Aries.Wal.create ~path () in
      ignore (Aries.Wal.append w (LR.Begin { txn_id = 1 }));
      ignore (Aries.Wal.append w (LR.Commit (sample_commit 1 0 0)));
      Aries.Wal.close w;
      (* Simulate a crash mid-write: append half a record. *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc {|{"type":"commit","txn|};
      close_out oc;
      match Aries.Wal.load path with
      | Ok records ->
          Alcotest.(check int) "torn tail dropped" 2 (List.length records)
      | Error e -> Alcotest.fail e)

let test_wal_mid_corruption_detected () =
  with_temp_file (fun path ->
      let oc = open_out path in
      output_string oc "GARBAGE\n";
      output_string oc (LR.to_line (LR.Begin { txn_id = 1 }) ^ "\n");
      close_out oc;
      match Aries.Wal.load path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "mid-log corruption must not be silently skipped")

let test_analysis_no_checkpoint () =
  let entries =
    [
      (1, LR.Begin { txn_id = 1 });
      (2, LR.Commit (sample_commit 1 0 0));
      (3, LR.Begin { txn_id = 2 });
      (4, LR.Commit (sample_commit 2 0 1));
    ]
  in
  let a = Aries.Recovery.analyze entries in
  Alcotest.(check int) "all commits pending" 2 (List.length a.pending_commits);
  Alcotest.(check int) "highest txn" 2 a.highest_txn_id;
  Alcotest.(check bool) "no checkpoint" true (a.last_checkpoint_lsn = None)

let test_analysis_with_checkpoint () =
  let entries =
    [
      (1, LR.Commit (sample_commit 1 0 0));
      (2, LR.Commit (sample_commit 2 0 1));
      (3, LR.Checkpoint { flushed_upto_lsn = 2 });
      (4, LR.Commit (sample_commit 3 0 2));
      (5, LR.Begin { txn_id = 4 });
      (6, LR.Abort { txn_id = 4 });
    ]
  in
  let a = Aries.Recovery.analyze entries in
  Alcotest.(check int) "only post-checkpoint commits" 1
    (List.length a.pending_commits);
  Alcotest.(check int) "pending is txn 3" 3
    (List.hd a.pending_commits).LR.txn_id;
  Alcotest.(check int) "highest txn includes aborted" 4 a.highest_txn_id;
  Alcotest.(check bool) "checkpoint lsn" true (a.last_checkpoint_lsn = Some 3)

let test_analysis_aborted_not_pending () =
  let entries =
    [ (1, LR.Begin { txn_id = 1 }); (2, LR.Abort { txn_id = 1 }) ]
  in
  let a = Aries.Recovery.analyze entries in
  Alcotest.(check int) "no pending" 0 (List.length a.pending_commits)

let test_analysis_ordering () =
  let entries =
    [
      (1, LR.Commit (sample_commit 5 1 0));
      (2, LR.Commit (sample_commit 3 1 1));
      (3, LR.Commit (sample_commit 9 1 2));
    ]
  in
  let a = Aries.Recovery.analyze entries in
  Alcotest.(check (list int)) "LSN order preserved" [ 5; 3; 9 ]
    (List.map (fun (c : LR.commit_info) -> c.txn_id) a.pending_commits)

let () =
  Alcotest.run "wal"
    [
      ( "records",
        [
          Alcotest.test_case "roundtrip" `Quick test_record_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_record_rejects_garbage;
        ] );
      ( "log",
        [
          Alcotest.test_case "lsns" `Quick test_wal_lsns_and_records;
          Alcotest.test_case "file persistence" `Quick test_wal_file_persistence;
          Alcotest.test_case "torn tail" `Quick test_wal_torn_tail;
          Alcotest.test_case "mid corruption" `Quick test_wal_mid_corruption_detected;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "no checkpoint" `Quick test_analysis_no_checkpoint;
          Alcotest.test_case "with checkpoint" `Quick test_analysis_with_checkpoint;
          Alcotest.test_case "aborted not pending" `Quick test_analysis_aborted_not_pending;
          Alcotest.test_case "ordering" `Quick test_analysis_ordering;
        ] );
    ]
