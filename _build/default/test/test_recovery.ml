(* Crash recovery of the Database Ledger queue (§3.3.2) and the restore /
   geo-failover scenarios of §3.6–3.7. *)

open Relation
open Sql_ledger
open Testkit

let with_temp_file f =
  let path = Filename.temp_file "ledgerwal" ".log" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* Rebuild a Database_ledger from a WAL file plus surviving system-table
   rows, then check the queue and counters. *)
let test_queue_reconstruction_no_checkpoint () =
  with_temp_file (fun path ->
      let db = make_db ~block_size:100 ~wal_path:path "crash1" in
      let accounts = make_accounts db in
      figure2 db accounts;
      let dbl = Database.ledger db in
      let queue_before = Database_ledger.queue_length dbl in
      let entries_before = Database_ledger.entries dbl in
      (* Crash: no checkpoint ever ran; system tables are empty. *)
      match Aries.Recovery.analyze_file path with
      | Error e -> Alcotest.fail e
      | Ok analysis ->
          let recovered =
            Database_ledger.recover ~block_size:100
              ~database_id:(Database.database_id db)
              ~db_create_time:(Database.create_time db) ~analysis ~flushed:[]
              ~blocks:[] ()
          in
          Alcotest.(check int) "queue rebuilt" queue_before
            (Database_ledger.queue_length recovered);
          Alcotest.(check int) "entries rebuilt"
            (List.length entries_before)
            (List.length (Database_ledger.entries recovered));
          (* Entry contents survive byte-for-byte (hashes equal). *)
          List.iter2
            (fun a b ->
              Alcotest.(check string) "entry hash"
                (Ledger_crypto.Hex.encode (Database_ledger.entry_hash a))
                (Ledger_crypto.Hex.encode (Database_ledger.entry_hash b)))
            entries_before
            (Database_ledger.entries recovered);
          (* Transaction ids continue after the highest logged one. *)
          let next = Database_ledger.next_txn_id recovered in
          Alcotest.(check bool) "txn id allocator restarts" true
            (next > analysis.Aries.Recovery.highest_txn_id))

let test_queue_reconstruction_with_checkpoint () =
  with_temp_file (fun path ->
      let db = make_db ~block_size:100 ~wal_path:path "crash2" in
      let accounts = make_accounts db in
      ignore (insert_account db accounts "A" 1);
      ignore (insert_account db accounts "B" 2);
      Database.checkpoint db;
      ignore (insert_account db accounts "C" 3);
      let dbl = Database.ledger db in
      let flushed = Database_ledger.raw_transactions_table dbl in
      let flushed_rows = Storage.Table_store.scan flushed in
      match Aries.Recovery.analyze_file path with
      | Error e -> Alcotest.fail e
      | Ok analysis ->
          (* Only the post-checkpoint commit is pending. *)
          Alcotest.(check int) "one pending" 1
            (List.length analysis.Aries.Recovery.pending_commits);
          let recovered =
            Database_ledger.recover ~block_size:100
              ~database_id:(Database.database_id db)
              ~db_create_time:(Database.create_time db) ~analysis
              ~flushed:flushed_rows ~blocks:[] ()
          in
          Alcotest.(check int) "entries = flushed + pending"
            (List.length (Database_ledger.entries dbl))
            (List.length (Database_ledger.entries recovered)))

let test_full_database_recovery_verifies () =
  (* Simulate §3.3.2 end to end: data pages survive (backup), the queue is
     rebuilt from the log, and verification then passes against an old
     digest. *)
  with_temp_file (fun path ->
      let db = make_db ~block_size:3 ~wal_path:path "crash3" in
      let accounts = make_accounts db in
      figure2 db accounts;
      let d = fresh_digest db in
      ignore (insert_account db accounts "PostDigest" 1);
      (* Crash now. Recovery keeps the tables (simulating flushed data
         pages) and rebuilds the in-memory ledger state. *)
      Alcotest.(check bool) "something queued" true
        (Database_ledger.queue_length (Database.ledger db) > 0);
      match Aries.Recovery.analyze_file path with
      | Error e -> Alcotest.fail e
      | Ok analysis ->
          Alcotest.(check bool) "pending commits found" true
            (analysis.Aries.Recovery.pending_commits <> []);
          (* No checkpoint ever ran, so every committed transaction is
             pending, and each must exist among the ledger's entries. *)
          let all_ids =
            List.map
              (fun (e : Types.txn_entry) -> e.txn_id)
              (Database_ledger.entries (Database.ledger db))
          in
          List.iter
            (fun (c : Aries.Log_record.commit_info) ->
              Alcotest.(check bool)
                (Printf.sprintf "txn %d recovered" c.txn_id)
                true
                (List.mem c.txn_id all_ids))
            analysis.Aries.Recovery.pending_commits;
          Alcotest.(check bool) "verifies" true (verify_ok db [ d ]))

let test_backup_restore_isolation () =
  let db = make_db "restore1" in
  let accounts = make_accounts db in
  figure2 db accounts;
  let backup = Database.backup db in
  ignore (insert_account db accounts "AfterBackup" 7);
  (* The backup must not see post-backup data. *)
  let restored = Database.restore backup ~create_time:2000.0 in
  Alcotest.(check bool) "restored lacks new row" true
    (Ledger_table.find
       (Database.ledger_table restored "accounts")
       ~key:[| vs "AfterBackup" |]
    = None);
  Alcotest.(check bool) "new incarnation" true
    (Database.create_time restored <> Database.create_time db);
  Alcotest.(check string) "same database id"
    (Database.database_id db)
    (Database.database_id restored);
  (* Both verify independently. *)
  let d = fresh_digest db in
  let d' = Option.get (Database.generate_digest restored) in
  Alcotest.(check bool) "original verifies" true (verify_ok db [ d ]);
  Alcotest.(check bool) "restored verifies" true
    (Verifier.ok (Verifier.verify restored ~digests:[ d' ]))

let test_restore_then_diverge () =
  (* Point-in-time restore (§3.6): after restoring, the database diverges
     from the original timeline; digests of the original past still verify
     the shared prefix. *)
  let db = make_db "pitr" in
  let accounts = make_accounts db in
  ignore (insert_account db accounts "Shared" 1);
  let d_shared = fresh_digest db in
  let backup = Database.backup db in
  ignore (insert_account db accounts "OnlyOriginal" 2);
  let restored = Database.restore backup ~create_time:3000.0 in
  let racc = Database.ledger_table restored "accounts" in
  let (), _ =
    Database.with_txn restored ~user:"teller" (fun txn ->
        Txn.insert txn racc [| vs "OnlyRestored"; vi 3 |])
  in
  (* The shared-prefix digest verifies in both incarnations. *)
  Alcotest.(check bool) "original honours shared digest" true
    (verify_ok db [ d_shared ]);
  Alcotest.(check bool) "restored honours shared digest" true
    (Verifier.ok (Verifier.verify restored ~digests:[ d_shared ]))

let test_category2_restore_and_replay () =
  (* §3.7 category 2: tampered balance influenced later withdrawals; restore
     the backup and re-execute subsequent transactions. *)
  let db = make_db "cat2" in
  let accounts = make_accounts db in
  ignore (insert_account db accounts "Victim" 100);
  let backup = Database.backup db in
  let d = fresh_digest db in
  (* Attacker inflates the balance in storage; a later withdrawal then
     "succeeds" based on corrupt data. *)
  ignore
    (Tamper.apply db
       (Tamper.Update_row
          {
            table = "accounts";
            key = [| vs "Victim" |];
            column = "balance";
            value = vi 1_000_000;
          }));
  ignore (update_account db accounts "Victim" 999_900) (* withdrawal *);
  let report = Verifier.verify db ~digests:[ d ] in
  Alcotest.(check bool) "detected" true (not (Verifier.ok report));
  (* Recovery: restore the verified backup, replay the legitimate txns. *)
  let recovered = Database.restore backup ~create_time:4000.0 in
  let racc = Database.ledger_table recovered "accounts" in
  let (), _ =
    Database.with_txn recovered ~user:"teller" (fun txn ->
        (* the legitimate version of the withdrawal: only 100 available *)
        Txn.update txn racc ~key:[| vs "Victim" |] [| vs "Victim"; vi 0 |])
  in
  let d' = Option.get (Database.generate_digest recovered) in
  Alcotest.(check bool) "recovered verifies" true
    (Verifier.ok (Verifier.verify recovered ~digests:[ d' ]));
  match Ledger_table.find racc ~key:[| vs "Victim" |] with
  | Some row -> Alcotest.(check bool) "balance sane" true (Value.equal row.(1) (vi 0))
  | None -> Alcotest.fail "victim missing"

let () =
  Alcotest.run "recovery"
    [
      ( "crash (ARIES analysis)",
        [
          Alcotest.test_case "queue, no checkpoint" `Quick test_queue_reconstruction_no_checkpoint;
          Alcotest.test_case "queue, with checkpoint" `Quick test_queue_reconstruction_with_checkpoint;
          Alcotest.test_case "recovered ledger verifies" `Quick test_full_database_recovery_verifies;
        ] );
      ( "restore (§3.6/3.7)",
        [
          Alcotest.test_case "backup isolation" `Quick test_backup_restore_isolation;
          Alcotest.test_case "restore + diverge" `Quick test_restore_then_diverge;
          Alcotest.test_case "category-2 replay" `Quick test_category2_restore_and_replay;
        ] );
    ]
