(* Core ledger semantics: ledger tables, history, views, transactions,
   savepoints, blocks, digests, and clean-state verification. *)

open Relation
open Sql_ledger
open Testkit

let test_figure2_ledger_view () =
  let db = make_db "fig2" in
  let accounts = make_accounts db in
  figure2 db accounts;
  let view = Database.query db "SELECT * FROM accounts__ledger_view" in
  let rendered =
    List.map
      (fun row -> List.map Value.to_string (Array.to_list row))
      view.Sqlexec.Rel.rows
  in
  Alcotest.(check (list (list string)))
    "matches Figure 2"
    [
      [ "Nick"; "50"; "INSERT"; "2" ];
      [ "John"; "500"; "INSERT"; "3" ];
      [ "Joe"; "30"; "INSERT"; "4" ];
      [ "Mary"; "200"; "INSERT"; "5" ];
      [ "Nick"; "50"; "DELETE"; "6" ];
      [ "Nick"; "100"; "INSERT"; "6" ];
      [ "Joe"; "30"; "DELETE"; "7" ];
    ]
    rendered

let test_current_and_history_contents () =
  let db = make_db "contents" in
  let accounts = make_accounts db in
  figure2 db accounts;
  Alcotest.(check int) "current rows" 3 (Ledger_table.row_count accounts);
  Alcotest.(check int) "history rows" 2 (Ledger_table.history_count accounts);
  Alcotest.(check bool) "Joe gone" true
    (Ledger_table.find accounts ~key:[| vs "Joe" |] = None);
  match Ledger_table.find accounts ~key:[| vs "Nick" |] with
  | Some row -> Alcotest.(check bool) "Nick updated" true (Value.equal row.(1) (vi 100))
  | None -> Alcotest.fail "Nick missing"

let test_hidden_columns_invisible () =
  let db = make_db "hidden" in
  let accounts = make_accounts db in
  figure2 db accounts;
  let r = Database.query db "SELECT * FROM accounts" in
  Alcotest.(check (list string)) "only user columns"
    [ "name"; "balance" ]
    (Sqlexec.Rel.column_names r)

let test_append_only_rejects_mutation () =
  let db = make_db "appendonly" in
  let log = make_accounts ~kind:`Append_only db in
  ignore (insert_account db log "Nick" 1);
  Alcotest.(check bool) "update rejected" true
    (match update_account db log "Nick" 2 with
    | exception Types.Ledger_error _ -> true
    | _ -> false);
  Alcotest.(check bool) "delete rejected" true
    (match delete_account db log "Nick" with
    | exception Types.Ledger_error _ -> true
    | _ -> false);
  (* The failed transactions must have rolled back cleanly. *)
  Alcotest.(check int) "row intact" 1 (Ledger_table.row_count log);
  let d = fresh_digest db in
  Alcotest.(check bool) "still verifies" true (verify_ok db [ d ])

let test_multi_table_transaction () =
  let db = make_db "multi" in
  let a = make_accounts db in
  let b =
    Database.create_ledger_table db ~name:"audit_log"
      ~columns:[ Column.make "id" Datatype.Int; Column.make "what" (Datatype.Varchar 64) ]
      ~key:[ "id" ] ()
  in
  let entry =
    commit_one db "alice" (fun txn ->
        Txn.insert txn a [| vs "X"; vi 1 |];
        Txn.insert txn b [| vi 1; vs "created X" |];
        Txn.insert txn a [| vs "Y"; vi 2 |])
  in
  Alcotest.(check int) "two table roots" 2 (List.length entry.Types.table_roots);
  let d = fresh_digest db in
  Alcotest.(check bool) "verifies" true (verify_ok db [ d ])

let test_rollback_restores_everything () =
  let db = make_db "rollback" in
  let accounts = make_accounts db in
  figure2 db accounts;
  let before_rows = Ledger_table.row_count accounts in
  let before_hist = Ledger_table.history_count accounts in
  let txn = Database.begin_txn db ~user:"mallory" in
  Txn.insert txn accounts [| vs "Fraud"; vi 1_000_000 |];
  Txn.update txn accounts ~key:[| vs "John" |] [| vs "John"; vi 0 |];
  Txn.delete txn accounts ~key:[| vs "Mary" |];
  Txn.rollback txn;
  Alcotest.(check int) "rows restored" before_rows (Ledger_table.row_count accounts);
  Alcotest.(check int) "history restored" before_hist (Ledger_table.history_count accounts);
  Alcotest.(check bool) "John intact" true
    (match Ledger_table.find accounts ~key:[| vs "John" |] with
    | Some row -> Value.equal row.(1) (vi 500)
    | None -> false);
  Alcotest.(check bool) "txn unusable" true
    (match Txn.commit txn with
    | exception Types.Ledger_error _ -> true
    | _ -> false);
  let d = fresh_digest db in
  Alcotest.(check bool) "verifies after rollback" true (verify_ok db [ d ])

let test_savepoint_partial_rollback () =
  let db = make_db "savepoint" in
  let accounts = make_accounts db in
  let txn = Database.begin_txn db ~user:"alice" in
  Txn.insert txn accounts [| vs "A"; vi 1 |];
  let sp1 = Txn.savepoint txn in
  Txn.insert txn accounts [| vs "B"; vi 2 |];
  let sp2 = Txn.savepoint txn in
  Txn.insert txn accounts [| vs "C"; vi 3 |];
  let root_before = Txn.table_root txn accounts in
  Txn.rollback_to txn sp2;
  Alcotest.(check bool) "C undone" true (Ledger_table.find accounts ~key:[| vs "C" |] = None);
  (* Re-applying the same operation must restore the same Merkle root
     (§3.2.1: the tree state snapshot is part of the savepoint). *)
  Txn.insert txn accounts [| vs "C"; vi 3 |];
  Alcotest.(check string) "root restored after replay"
    (Ledger_crypto.Hex.encode root_before)
    (Ledger_crypto.Hex.encode (Txn.table_root txn accounts));
  Txn.rollback_to txn sp1;
  Alcotest.(check bool) "B undone" true (Ledger_table.find accounts ~key:[| vs "B" |] = None);
  (* sp2 is invalid after rolling back to the outer sp1 *)
  Alcotest.(check bool) "inner savepoint invalid" true
    (match Txn.rollback_to txn sp2 with
    | exception Types.Ledger_error _ -> true
    | _ -> false);
  ignore (Txn.commit txn);
  let d = fresh_digest db in
  Alcotest.(check bool) "verifies" true (verify_ok db [ d ])

let test_empty_transaction_commit () =
  let db = make_db "emptytxn" in
  let entry = commit_one db "noop" (fun _ -> ()) in
  Alcotest.(check int) "no table roots" 0 (List.length entry.Types.table_roots);
  let d = fresh_digest db in
  Alcotest.(check bool) "verifies" true (verify_ok db [ d ])

let test_block_formation () =
  let db = make_db ~block_size:3 "blocks" in
  let accounts = make_accounts db in
  for i = 1 to 7 do
    ignore (insert_account db accounts (Printf.sprintf "acc%d" i) i)
  done;
  (* 8 committed txns so far (1 DDL + 7 inserts): blocks 0,1 closed with 3
     txns each, 2 in the open block. *)
  let dbl = Database.ledger db in
  Alcotest.(check int) "closed blocks" 2 (List.length (Database_ledger.blocks dbl));
  let d = fresh_digest db in
  Alcotest.(check int) "digest closes partial block" 2 d.Digest.block_id;
  Alcotest.(check int) "three closed" 3 (List.length (Database_ledger.blocks dbl));
  List.iteri
    (fun i (b : Types.block) ->
      Alcotest.(check int) (Printf.sprintf "block %d id" i) i b.block_id)
    (Database_ledger.blocks dbl);
  Alcotest.(check bool) "verifies" true (verify_ok db [ d ])

let test_digest_requires_commits () =
  let db =
    Database.create ~block_size:4 ~clock:(make_clock ()) ~name:"empty" ()
  in
  (* A fresh database has only metadata-table creation... which commits
     transactions, so force a truly empty ledger by checking a database with
     no tables at all has digests from DDL. *)
  Alcotest.(check bool) "DDL-free db still has meta commits?" true
    (Database.generate_digest db = None
    || (Option.get (Database.generate_digest db)).Digest.block_id >= 0)

let test_digest_roundtrip_and_chain () =
  let db = make_db "digests" in
  let accounts = make_accounts db in
  figure2 db accounts;
  let d1 = fresh_digest db in
  (* JSON roundtrip *)
  (match Digest.of_string (Digest.to_string d1) with
  | Ok d1' -> Alcotest.(check bool) "digest roundtrip" true (Digest.equal d1 d1')
  | Error e -> Alcotest.fail e);
  ignore (insert_account db accounts "Late" 9);
  let d2 = fresh_digest db in
  Alcotest.(check bool) "d2 later block" true (d2.Digest.block_id > d1.Digest.block_id);
  (match Verifier.verify_digest_chain db ~older:d1 ~newer:d2 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "chain should derive");
  (* Reversed order is rejected. *)
  match Verifier.verify_digest_chain db ~older:d2 ~newer:d1 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "reversed digests must not verify"

let test_verify_with_multiple_digests () =
  let db = make_db "multidigest" in
  let accounts = make_accounts db in
  let digests = ref [] in
  for i = 1 to 10 do
    ignore (insert_account db accounts (Printf.sprintf "a%d" i) i);
    if i mod 3 = 0 then digests := fresh_digest db :: !digests
  done;
  Alcotest.(check bool) "all digests verify" true (verify_ok db !digests)

let test_foreign_digest_flagged () =
  let db = make_db "mine" in
  let other = make_db "other" in
  let accounts = make_accounts db in
  let other_accounts = make_accounts other in
  figure2 db accounts;
  figure2 other other_accounts;
  let foreign = fresh_digest other in
  let vs = violations db [ foreign ] in
  Alcotest.(check bool) "foreign digest violation" true
    (List.exists (function Verifier.Digest_foreign _ -> true | _ -> false) vs)

let test_checkpoint_and_queue () =
  let db = make_db ~block_size:100 "ckpt" in
  let accounts = make_accounts db in
  figure2 db accounts;
  let dbl = Database.ledger db in
  Alcotest.(check bool) "queue non-empty" true (Database_ledger.queue_length dbl > 0);
  let entries_before = Database_ledger.entries dbl in
  Database.checkpoint db;
  Alcotest.(check int) "queue drained" 0 (Database_ledger.queue_length dbl);
  let entries_after = Database_ledger.entries dbl in
  Alcotest.(check int) "entries preserved"
    (List.length entries_before)
    (List.length entries_after);
  let d = fresh_digest db in
  Alcotest.(check bool) "verifies" true (verify_ok db [ d ])

let test_table_root_matches_commit () =
  let db = make_db "roots" in
  let accounts = make_accounts db in
  let txn = Database.begin_txn db ~user:"u" in
  Txn.insert txn accounts [| vs "A"; vi 1 |];
  Txn.insert txn accounts [| vs "B"; vi 2 |];
  let live_root = Txn.table_root txn accounts in
  let entry = Txn.commit txn in
  Alcotest.(check string) "pre-commit root equals entry root"
    (Ledger_crypto.Hex.encode live_root)
    (Ledger_crypto.Hex.encode
       (List.assoc (Ledger_table.table_id accounts) entry.Types.table_roots))

let test_user_attribution () =
  let db = make_db "users" in
  let accounts = make_accounts db in
  let e = commit_one db "carol@contoso" (fun txn -> Txn.insert txn accounts [| vs "Z"; vi 1 |]) in
  Alcotest.(check string) "user recorded" "carol@contoso" e.Types.user;
  let dbl = Database.ledger db in
  match Database_ledger.find_entry dbl ~txn_id:e.Types.txn_id with
  | Some e' -> Alcotest.(check string) "entry user" "carol@contoso" e'.Types.user
  | None -> Alcotest.fail "entry not found"

let test_metadata_tables_record_ddl () =
  let db = make_db "ddlmeta" in
  let _ = make_accounts db in
  let r =
    Database.query db
      "SELECT table_name, operation FROM ledger_tables_meta ORDER BY event_id"
  in
  Alcotest.(check bool) "CREATE recorded" true
    (List.exists
       (fun row ->
         Value.equal row.(0) (vs "accounts") && Value.equal row.(1) (vs "CREATE"))
       r.Sqlexec.Rel.rows);
  let c =
    Database.query db
      "SELECT COUNT(*) FROM ledger_columns_meta WHERE operation = 'CREATE'"
  in
  Alcotest.(check bool) "column events" true
    (match (List.hd c.Sqlexec.Rel.rows).(0) with
    | Value.Int n -> n >= 2
    | _ -> false)

let prop_random_dml_always_verifies =
  QCheck.Test.make ~name:"random DML histories verify" ~count:25
    (QCheck.make QCheck.Gen.(pair (0 -- 1_000_000) (5 -- 40)))
    (fun (seed, ops) ->
      let db = make_db ~block_size:3 "prop" in
      let accounts = make_accounts db in
      let prng = Workload.Prng.create seed in
      let names = [ "a"; "b"; "c"; "d"; "e" ] in
      for _ = 1 to ops do
        let name = Workload.Prng.pick prng names in
        let existing = Ledger_table.find accounts ~key:[| vs name |] <> None in
        match Workload.Prng.int prng 3 with
        | 0 when not existing ->
            ignore (insert_account db accounts name (Workload.Prng.int prng 1000))
        | 1 when existing ->
            ignore (update_account db accounts name (Workload.Prng.int prng 1000))
        | 2 when existing -> ignore (delete_account db accounts name)
        | _ -> ()
      done;
      let d = fresh_digest db in
      verify_ok db [ d ])

let () =
  Alcotest.run "ledger-core"
    [
      ( "tables + views",
        [
          Alcotest.test_case "Figure 2 ledger view" `Quick test_figure2_ledger_view;
          Alcotest.test_case "current/history contents" `Quick test_current_and_history_contents;
          Alcotest.test_case "hidden columns" `Quick test_hidden_columns_invisible;
          Alcotest.test_case "append-only" `Quick test_append_only_rejects_mutation;
          Alcotest.test_case "metadata DDL events" `Quick test_metadata_tables_record_ddl;
        ] );
      ( "transactions",
        [
          Alcotest.test_case "multi-table" `Quick test_multi_table_transaction;
          Alcotest.test_case "rollback" `Quick test_rollback_restores_everything;
          Alcotest.test_case "savepoints" `Quick test_savepoint_partial_rollback;
          Alcotest.test_case "empty commit" `Quick test_empty_transaction_commit;
          Alcotest.test_case "table root" `Quick test_table_root_matches_commit;
          Alcotest.test_case "user attribution" `Quick test_user_attribution;
        ] );
      ( "ledger structure",
        [
          Alcotest.test_case "block formation" `Quick test_block_formation;
          Alcotest.test_case "digest on empty" `Quick test_digest_requires_commits;
          Alcotest.test_case "digest roundtrip + chain" `Quick test_digest_roundtrip_and_chain;
          Alcotest.test_case "multiple digests" `Quick test_verify_with_multiple_digests;
          Alcotest.test_case "foreign digest" `Quick test_foreign_digest_flagged;
          Alcotest.test_case "checkpoint" `Quick test_checkpoint_and_queue;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_random_dml_always_verifies ] );
    ]
