(* Durable directory databases: create / crash / reopen cycles with digest
   continuity, checkpointing and log compaction. *)

open Sql_ledger
open Testkit

let with_dir f =
  let dir = Filename.temp_file "durable" "" in
  Sys.remove dir;
  let cleanup () =
    List.iter
      (fun p -> try Sys.remove p with Sys_error _ -> ())
      [ Durable.snapshot_path dir; Durable.wal_path dir ];
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally:cleanup (fun () -> f dir)

let open_ok ?clock dir =
  match Durable.open_dir ?clock ~dir ~name:"dur" () with
  | Ok t -> t
  | Error e -> Alcotest.fail e

let test_create_crash_reopen () =
  with_dir (fun dir ->
      let t = open_ok ~clock:(make_clock ()) dir in
      let db = Durable.db t in
      let accounts = make_accounts db in
      figure2 db accounts;
      let d = fresh_digest db in
      (* "Crash": drop the handle on the floor; reopen from disk. *)
      let t2 = open_ok ~clock:(make_clock ()) dir in
      let db2 = Durable.db t2 in
      Alcotest.(check string) "identity" (Database.database_id db)
        (Database.database_id db2);
      Alcotest.(check int) "rows" 3
        (Ledger_table.row_count (Database.ledger_table db2 "accounts"));
      Alcotest.(check bool) "old digest verifies" true
        (Verifier.ok (Verifier.verify db2 ~digests:[ d ])))

let test_multiple_generations () =
  with_dir (fun dir ->
      let digests = ref [] in
      for generation = 1 to 4 do
        let t = open_ok ~clock:(make_clock ()) dir in
        let db = Durable.db t in
        let accounts =
          if generation = 1 then make_accounts db
          else Database.ledger_table db "accounts"
        in
        ignore
          (insert_account db accounts (Printf.sprintf "gen%d" generation)
             generation);
        digests := fresh_digest db :: !digests;
        if generation mod 2 = 0 then Durable.checkpoint t
      done;
      let t = open_ok ~clock:(make_clock ()) dir in
      let db = Durable.db t in
      Alcotest.(check int) "all generations present" 4
        (Ledger_table.row_count (Database.ledger_table db "accounts"));
      Alcotest.(check bool) "all digests verify" true
        (Verifier.ok (Verifier.verify db ~digests:!digests)))

let test_compact_bounds_log () =
  with_dir (fun dir ->
      let t = open_ok ~clock:(make_clock ()) dir in
      let db = Durable.db t in
      let accounts = make_accounts db in
      for i = 1 to 10 do
        ignore (insert_account db accounts (Printf.sprintf "x%d" i) i)
      done;
      let size_before = (Unix.stat (Durable.wal_path dir)).Unix.st_size in
      Durable.compact t;
      let size_after = (Unix.stat (Durable.wal_path dir)).Unix.st_size in
      Alcotest.(check bool) "log shrank" true (size_after < size_before);
      (* Post-compact writes and recovery still work. *)
      ignore (insert_account db accounts "post" 1);
      let d = fresh_digest db in
      let t2 = open_ok ~clock:(make_clock ()) dir in
      Alcotest.(check bool) "recovered post-compact" true
        (Verifier.ok (Verifier.verify (Durable.db t2) ~digests:[ d ])))

let test_reopen_after_compact_crash () =
  (* compact writes the snapshot, then truncates the log; simulate a crash
     right after the truncate by compacting and reopening immediately. *)
  with_dir (fun dir ->
      let t = open_ok ~clock:(make_clock ()) dir in
      let db = Durable.db t in
      let accounts = make_accounts db in
      ignore (insert_account db accounts "kept" 1);
      Durable.compact t;
      let t2 = open_ok ~clock:(make_clock ()) dir in
      Alcotest.(check bool) "row survived" true
        (Ledger_table.find
           (Database.ledger_table (Durable.db t2) "accounts")
           ~key:[| vs "kept" |]
        <> None))

let test_work_after_reopen_is_durable () =
  with_dir (fun dir ->
      (* generation 1 *)
      let t = open_ok ~clock:(make_clock ()) dir in
      let accounts = make_accounts (Durable.db t) in
      ignore (insert_account (Durable.db t) accounts "first" 1);
      (* generation 2: write more, crash again *)
      let t2 = open_ok ~clock:(make_clock ()) dir in
      let acc2 = Database.ledger_table (Durable.db t2) "accounts" in
      ignore (insert_account (Durable.db t2) acc2 "second" 2);
      (* generation 3: both present *)
      let t3 = open_ok ~clock:(make_clock ()) dir in
      let acc3 = Database.ledger_table (Durable.db t3) "accounts" in
      Alcotest.(check bool) "first" true
        (Ledger_table.find acc3 ~key:[| vs "first" |] <> None);
      Alcotest.(check bool) "second" true
        (Ledger_table.find acc3 ~key:[| vs "second" |] <> None);
      let d = Option.get (Database.generate_digest (Durable.db t3)) in
      Alcotest.(check bool) "verifies" true
        (Verifier.ok (Verifier.verify (Durable.db t3) ~digests:[ d ])))

let () =
  Alcotest.run "durable"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "create/crash/reopen" `Quick test_create_crash_reopen;
          Alcotest.test_case "multiple generations" `Quick test_multiple_generations;
          Alcotest.test_case "compact bounds the log" `Quick test_compact_bounds_log;
          Alcotest.test_case "compact-crash reopen" `Quick test_reopen_after_compact_crash;
          Alcotest.test_case "durability across reopens" `Quick test_work_after_reopen_is_durable;
        ] );
    ]
