(* Quickstart: create a ledger table, run DML, generate a digest, verify,
   tamper, detect.

     dune exec examples/quickstart.exe
*)

open Relation
open Sql_ledger

let () =
  (* 1. A database with ledger support. Small block size so the example
     produces several blocks; production uses the default 100 000. *)
  let db = Database.create ~block_size:4 ~name:"quickstart" () in

  (* 2. An updateable ledger table — a drop-in relational table whose
     history is retained and hashed. *)
  let accounts =
    Database.create_ledger_table db ~name:"accounts"
      ~columns:
        [
          Column.make "name" (Datatype.Varchar 40);
          Column.make "balance" Datatype.Int;
        ]
      ~key:[ "name" ] ()
  in

  (* 3. Ordinary transactional DML. *)
  let exec user f = ignore (Database.with_txn db ~user f) in
  exec "alice" (fun txn ->
      Txn.insert txn accounts [| Value.String "Nick"; Value.Int 50 |];
      Txn.insert txn accounts [| Value.String "John"; Value.Int 500 |]);
  exec "bob" (fun txn ->
      Txn.update txn accounts ~key:[| Value.String "Nick" |]
        [| Value.String "Nick"; Value.Int 100 |]);

  (* 4. The ledger view shows every operation with its transaction. *)
  print_endline "Ledger view:";
  Format.printf "%a@." Sqlexec.Rel.pp
    (Database.query db "SELECT * FROM accounts__ledger_view");

  (* 5. A database digest captures the whole state in one hash. Store it
     somewhere the DBA cannot touch. *)
  let digest = Option.get (Database.generate_digest db) in
  print_endline "Database digest (store this outside the database!):";
  print_endline (Digest.to_string digest);

  (* 6. Verification recomputes everything and compares. *)
  let report = Verifier.verify db ~digests:[ digest ] in
  Format.printf "@.%a@." Verifier.pp_report report;
  assert (Verifier.ok report);

  (* 7. A malicious admin edits the stored balance directly, bypassing all
     APIs (the paper's threat model)... *)
  ignore
    (Storage.Table_store.Raw.overwrite_value (Ledger_table.main accounts)
       ~key:[| Value.String "John" |] ~ordinal:1 (Value.Int 9));
  print_endline "\nAfter direct tampering with John's stored balance:";

  (* 8. ...and verification catches it. *)
  let report = Verifier.verify db ~digests:[ digest ] in
  Format.printf "%a@." Verifier.pp_report report;
  assert (not (Verifier.ok report))
