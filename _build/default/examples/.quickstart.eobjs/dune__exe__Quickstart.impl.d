examples/quickstart.ml: Column Database Datatype Digest Format Ledger_table Option Relation Sql_ledger Sqlexec Storage Txn Value Verifier
