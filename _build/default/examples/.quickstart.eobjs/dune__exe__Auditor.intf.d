examples/auditor.mli:
