examples/supply_chain.ml: Column Database Datatype Digest Format List Option Printf Relation Sql_ledger Sqlexec Tamper Tamper_recovery Trusted_store Txn Value Verifier
