examples/quickstart.mli:
