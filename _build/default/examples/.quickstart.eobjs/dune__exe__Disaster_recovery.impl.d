examples/disaster_recovery.ml: Array Column Database Datatype Digest Filename Format Fun List Option Printf Relation Replica Result Sql_ledger Sqlexec Sys Trusted_store Txn Value Verifier Wal_replay
