examples/banking.ml: Array Column Database Datatype Digest Format Ledger_table Merkle Printf Receipt Relation Sql_ledger Sqlexec Trusted_store Txn Types Value Verifier
