examples/auditor.ml: Column Database Datatype Digest Format List Option Printf Receipt Relation Result Sql_ledger String Tamper Txn Types Value Verifier
