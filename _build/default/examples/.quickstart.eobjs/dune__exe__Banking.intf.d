examples/banking.mli:
