(* Disaster recovery end to end: write-ahead logging, a streaming geo-
   secondary with the §3.6 digest gate, a primary crash, log-based rebuild,
   and failover — with every recovered instance still verifying against the
   digests issued before the disaster.

     dune exec examples/disaster_recovery.exe
*)

open Relation
open Sql_ledger
module DM = Trusted_store.Digest_manager
module WS = Trusted_store.Worm_store

let vi = Value.int
let vs s = Value.String s

let () =
  let wal_path = Filename.temp_file "dr-primary" ".wal" in
  Fun.protect ~finally:(fun () -> try Sys.remove wal_path with Sys_error _ -> ())
  @@ fun () ->
  (* --- primary region --- *)
  let primary =
    Database.create ~block_size:4 ~wal_path ~signing_seed:"dr" ~name:"orders" ()
  in
  let orders =
    Database.create_ledger_table primary ~name:"orders"
      ~columns:
        [
          Column.make "order_id" Datatype.Int;
          Column.make "customer" (Datatype.Varchar 32);
          Column.make "status" (Datatype.Varchar 16);
        ]
      ~key:[ "order_id" ] ()
  in
  (* --- secondary region: a streaming replica fed from the WAL --- *)
  let replica = Replica.create () in
  (* --- digest escrow, gated on the secondary's replication point --- *)
  let store = WS.create ~hmac_key:"escrow" () in
  let dm =
    DM.create ~replicated_upto:(fun () -> Replica.replicated_upto replica) ~store ()
  in

  (* Normal operation: orders flow, the log ships, digests go out. *)
  for i = 1 to 8 do
    ignore
      (Database.with_txn primary ~user:"web" (fun txn ->
           Txn.insert txn orders
             [| vi i; vs (Printf.sprintf "cust%02d" i); vs "placed" |]))
  done;
  (match DM.upload dm primary with
  | DM.Deferred_replication_lag ->
      print_endline "digest deferred: the secondary has not caught up (§3.6 gate)"
  | _ -> failwith "expected deferral");
  (match Replica.feed_from_file replica ~wal_path with
  | Ok () -> print_endline "log shipped to the secondary"
  | Error e -> failwith e);
  let escrowed =
    match DM.upload dm primary with
    | DM.Uploaded d ->
        Printf.printf "digest for block %d escrowed (secondary is caught up)\n"
          d.Digest.block_id;
        d
    | _ -> failwith "expected upload"
  in
  ignore (Replica.feed_from_file replica ~wal_path);

  (* A few more orders that will be lost if they don't reach the
     secondary... but they are in the WAL. *)
  ignore
    (Database.with_txn primary ~user:"web" (fun txn ->
         Txn.update txn orders ~key:[| vi 3 |] [| vi 3; vs "cust03"; vs "shipped" |]));

  print_endline "\n*** primary region lost ***\n";

  (* Path A: rebuild from the surviving WAL (same-region recovery). *)
  (match Wal_replay.replay_file ~wal_path () with
  | Error e -> failwith e
  | Ok rebuilt ->
      let report = Verifier.verify rebuilt ~digests:[ escrowed ] in
      Format.printf "rebuilt from WAL: %a@." Verifier.pp_report report;
      assert (Verifier.ok report);
      let r =
        Database.query rebuilt "SELECT status FROM orders WHERE order_id = 3"
      in
      Printf.printf "order 3 after WAL rebuild: %s (the post-digest update survived)\n"
        (Value.to_string (List.hd r.Sqlexec.Rel.rows).(0)));

  (* Path B: promote the geo-secondary (cross-region failover). *)
  let promoted = Result.get_ok (Replica.promote replica) in
  let report = Verifier.verify promoted ~digests:[ escrowed ] in
  Format.printf "@.promoted secondary: %a@." Verifier.pp_report report;
  assert (Verifier.ok report);
  let r =
    Database.query promoted "SELECT status FROM orders WHERE order_id = 3"
  in
  Printf.printf
    "order 3 on the promoted secondary: %s (the unshipped tail is lost —\n\
     which is exactly why the §3.6 gate never digested it)\n"
    (Value.to_string (List.hd r.Sqlexec.Rel.rows).(0));
  (* Business continues on the new primary. *)
  let orders' = Database.ledger_table promoted "orders" in
  ignore
    (Database.with_txn promoted ~user:"web" (fun txn ->
         Txn.insert txn orders' [| vi 100; vs "cust99"; vs "placed" |]));
  let d = Option.get (Database.generate_digest promoted) in
  assert (Verifier.ok (Verifier.verify promoted ~digests:[ escrowed; d ]));
  print_endline "\nnew primary verified; business continues"
