(* The paper's Contoso scenario (§2.5.1): a car manufacturer tracks parts;
   years later a lawsuit motivates an insider to doctor the records. Forward
   Integrity means the pre-lawsuit records can still be proven authentic —
   and the doctoring is exposed.

     dune exec examples/supply_chain.exe
*)

open Relation
open Sql_ledger
module WS = Trusted_store.Worm_store
module DM = Trusted_store.Digest_manager

let vi = Value.int
let vs s = Value.String s

let () =
  let db = Database.create ~block_size:16 ~name:"contoso" () in
  let parts =
    Database.create_ledger_table db ~name:"parts"
      ~columns:
        [
          Column.make "part_id" Datatype.Int;
          Column.make "kind" (Datatype.Varchar 16);
          Column.make "batch" (Datatype.Varchar 16);
          Column.make "vin" (Datatype.Varchar 24);
        ]
      ~key:[ "part_id" ] ()
  in
  let store = WS.create () in
  let dm = DM.create ~store () in
  let backup = ref None in

  (* === 2018: honest manufacturing === *)
  print_endline "2018: recording manufactured parts...";
  let cars = [ ("VIN-BOB", "B7"); ("VIN-CARLA", "B9"); ("VIN-DREW", "B7") ] in
  List.iteri
    (fun i (vin, brake_batch) ->
      ignore
        (Database.with_txn db ~user:"assembly-line" (fun txn ->
             Txn.insert txn parts
               [| vi ((i * 2) + 1); vs "brake"; vs brake_batch; vs vin |];
             Txn.insert txn parts
               [| vi ((i * 2) + 2); vs "rotor"; vs "R1"; vs vin |])))
    cars;
  backup := Some (Database.backup db);
  (* Digests stream to immutable storage as part of normal operation. *)
  (match DM.upload dm db with
  | DM.Uploaded d -> Printf.printf "digest %d escrowed to immutable storage\n" d.Digest.block_id
  | _ -> failwith "upload failed");

  (* === 2020: the recall and the lawsuit === *)
  print_endline "\n2020: batch B7 brakes recalled; Bob sues.";
  print_endline "An insider rewrites Bob's brake batch to B9 in storage...";
  ignore
    (Tamper.apply db
       (Tamper.Update_row
          { table = "parts"; key = [| vi 1 |]; column = "batch"; value = vs "B9" }));

  (* What the doctored table now claims: *)
  Format.printf "\ncurrent (doctored) data:@.%a@." Sqlexec.Rel.pp
    (Database.query db "SELECT part_id, kind, batch, vin FROM parts WHERE vin = 'VIN-BOB'");

  (* === The court-appointed auditor verifies === *)
  let digests =
    match
      DM.digests_for_incarnation dm ~db_id:(Database.database_id db)
        ~create_time:(Database.create_time db)
    with
    | Ok ds -> ds
    | Error e -> failwith e
  in
  let report = Verifier.verify db ~digests in
  Format.printf "@.auditor's verification: %a@." Verifier.pp_report report;
  assert (not (Verifier.ok report));
  print_endline
    "\nThe 2018 digest proves the records were altered after the fact.\n\
     Contoso cannot silently rewrite history — and, had it stayed honest,\n\
     the same digest would have *proven* Bob's brakes were not in the\n\
     recalled batch. That asymmetry is Forward Integrity.";

  (* Recovery (§3.7, category 1): the verification report names the
     damaged table; repairing its bytes from a verified backup restores
     both the data and its verifiability. *)
  (match Tamper_recovery.assess report with
  | Tamper_recovery.Repair_in_place tables ->
      List.iter
        (fun table ->
          let n =
            Tamper_recovery.repair_from_backup
              ~backup:(Option.get !backup) ~current:db ~table
          in
          Printf.printf "\nrepaired %d row(s) of %s from the verified backup\n" n table)
        tables
  | Tamper_recovery.Restore_and_replay -> failwith "unexpected");
  let report = Verifier.verify db ~digests in
  Format.printf "after repair: %a@." Verifier.pp_report report;
  assert (Verifier.ok report);
  print_endline "\nthe restored truth, usable as court evidence:";
  Format.printf "%a@." Sqlexec.Rel.pp
    (Database.query db
       "SELECT part_id, kind, batch, vin FROM parts WHERE vin = 'VIN-BOB'")
