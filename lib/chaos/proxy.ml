(* Fault-injecting TCP proxy: the network half of the chaos harness.

   The proxy sits between a wire client and a server (or between a
   replica and its primary), forwarding bytes through a configurable
   fault. Faults model the network pathologies a deployment actually
   meets — added latency, thin pipes, a peer that dribbles bytes one at
   a time (slow-loris), links that silently eat one direction, full
   partitions, and reconnect storms — without touching either endpoint's
   code. The current fault is a single atomic cell, so a schedule (or a
   test) can flip it while connections are live and the pumps pick it up
   on their next transfer.

   Topology per accepted client: one upstream connection and two pump
   threads, one per direction. Faults are applied at forward time, so a
   fault installed mid-connection affects bytes already in flight
   through the proxy's buffer exactly as a real link change would.

   Teardown discipline: [kill_connections]/[stop] only [shutdown] the
   sockets — the pump threads see EOF/errors, and the *last* pump out
   closes the file descriptors. Closing from the killer thread would
   race a blocked [Unix.read] against fd reuse. *)

type direction = To_upstream | To_client | Both

type fault =
  | Healthy
  | Delay of { seconds : float; dir : direction }
      (** hold each forwarded buffer for [seconds] before delivery *)
  | Throttle of { bytes_per_sec : int; dir : direction }
      (** cap the forwarding rate, chunked writes with paced sleeps *)
  | Dribble of { chunk : int; pause : float; dir : direction }
      (** slow-loris: deliver [chunk] bytes every [pause] seconds *)
  | Drop of direction
      (** silently discard bytes flowing in [dir]; the other direction
          keeps working — a half-duplex link failure *)
  | Partition
      (** black-hole both directions and refuse new connections; bytes
          in flight are held and delivered when the partition heals
          (TCP's retransmit behaviour), torn only by [kill_connections] *)
  | Duplicate_connect
      (** every accepted client also opens a second, idle upstream
          connection — a reconnect storm's ghost sessions, exercising
          the server's connection accounting and idle reaping *)

let direction_to_string = function
  | To_upstream -> "to-upstream"
  | To_client -> "to-client"
  | Both -> "both"

let fault_to_string = function
  | Healthy -> "healthy"
  | Delay { seconds; dir } ->
      Printf.sprintf "delay(%.3fs,%s)" seconds (direction_to_string dir)
  | Throttle { bytes_per_sec; dir } ->
      Printf.sprintf "throttle(%dB/s,%s)" bytes_per_sec
        (direction_to_string dir)
  | Dribble { chunk; pause; dir } ->
      Printf.sprintf "dribble(%dB/%.3fs,%s)" chunk pause
        (direction_to_string dir)
  | Drop dir -> Printf.sprintf "drop(%s)" (direction_to_string dir)
  | Partition -> "partition"
  | Duplicate_connect -> "duplicate-connect"

type conn = {
  k_id : int;
  k_client : Unix.file_descr;
  k_up : Unix.file_descr;
  k_extra : Unix.file_descr option;  (* Duplicate_connect's ghost *)
  k_alive : bool Atomic.t;
  k_pumps : int Atomic.t;  (* pump threads still running; last one closes *)
}

type stats = {
  conns_total : int;
  conns_live : int;
  conns_killed : int;
  bytes_to_upstream : int;
  bytes_to_client : int;
}

type t = {
  lsock : Unix.file_descr;
  port : int;
  up_host : string;
  up_port : int;
  fault : fault Atomic.t;
  stop : bool Atomic.t;
  m : Mutex.t;
  conns : (int, conn) Hashtbl.t;
  mutable next_id : int;
  mutable threads : Thread.t list;
  mutable conns_total : int;
  mutable conns_killed : int;
  mutable bytes_to_upstream : int;
  mutable bytes_to_client : int;
  mutable accepter : Thread.t option;
}

let port t = t.port
let fault t = Atomic.get t.fault
let set_fault t f = Atomic.set t.fault f

let stats t =
  Mutex.lock t.m;
  let s =
    {
      conns_total = t.conns_total;
      conns_live = Hashtbl.length t.conns;
      conns_killed = t.conns_killed;
      bytes_to_upstream = t.bytes_to_upstream;
      bytes_to_client = t.bytes_to_client;
    }
  in
  Mutex.unlock t.m;
  s

(* ------------------------------------------------------------------ *)
(* Pumping *)

let applies d dir = d = Both || d = dir

let count t dir n =
  Mutex.lock t.m;
  (match dir with
  | To_upstream -> t.bytes_to_upstream <- t.bytes_to_upstream + n
  | To_client | Both -> t.bytes_to_client <- t.bytes_to_client + n);
  Mutex.unlock t.m

let live t k = Atomic.get k.k_alive && not (Atomic.get t.stop)

(* Sleep in short slices so a healed fault or a kill is honoured fast. *)
let rec pause t k seconds =
  if seconds > 0. && live t k then begin
    Thread.delay (Float.min 0.01 seconds);
    pause t k (seconds -. 0.01)
  end

let write_all fd buf off len =
  let rec go off len =
    if len > 0 then begin
      let n = Unix.write fd buf off len in
      go (off + n) (len - n)
    end
  in
  go off len

(* Forward [len] bytes through the currently-installed fault. Re-reads
   the fault after a partition heals so held bytes flow through whatever
   the link became. Raises on transport failure; the pump tears down. *)
let rec forward t k dst dir buf len =
  if len > 0 && live t k then
    match Atomic.get t.fault with
    | Healthy | Duplicate_connect ->
        write_all dst buf 0 len;
        count t dir len
    | Delay { seconds; dir = d } ->
        if applies d dir then pause t k seconds;
        if live t k then begin
          write_all dst buf 0 len;
          count t dir len
        end
    | Throttle { bytes_per_sec; dir = d } ->
        if not (applies d dir) then begin
          write_all dst buf 0 len;
          count t dir len
        end
        else begin
          let chunk = max 1 (min len (bytes_per_sec / 20)) in
          let off = ref 0 in
          while !off < len && live t k do
            let n = min chunk (len - !off) in
            write_all dst buf !off n;
            count t dir n;
            off := !off + n;
            if !off < len then
              pause t k (float_of_int n /. float_of_int (max 1 bytes_per_sec))
          done
        end
    | Dribble { chunk; pause = p; dir = d } ->
        if not (applies d dir) then begin
          write_all dst buf 0 len;
          count t dir len
        end
        else begin
          let off = ref 0 in
          while !off < len && live t k do
            let n = min (max 1 chunk) (len - !off) in
            write_all dst buf !off n;
            count t dir n;
            off := !off + n;
            if !off < len then pause t k p
          done
        end
    | Drop d ->
        if applies d dir then () (* eaten by the link *)
        else begin
          write_all dst buf 0 len;
          count t dir len
        end
    | Partition ->
        (* Hold the bytes until the partition heals or the connection is
           killed, then deliver through whatever fault is now in
           force. *)
        while Atomic.get t.fault = Partition && live t k do
          Thread.delay 0.01
        done;
        if live t k then forward t k dst dir buf len

let unregister t k =
  Mutex.lock t.m;
  Hashtbl.remove t.conns k.k_id;
  Mutex.unlock t.m

let shutdown_conn k =
  if Atomic.compare_and_set k.k_alive true false then begin
    let quiet fd =
      try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()
    in
    quiet k.k_client;
    quiet k.k_up;
    Option.iter quiet k.k_extra
  end

let pump t k src dst dir =
  let buf = Bytes.create 65536 in
  (try
     let eof = ref false in
     while (not !eof) && live t k do
       match Unix.read src buf 0 (Bytes.length buf) with
       | 0 -> eof := true
       | n -> forward t k dst dir buf n
       | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ()
     done
   with Unix.Unix_error _ | Sys_error _ -> ());
  (* Half-close semantics are pointless through a fault proxy; one side
     done means the conversation is done. *)
  shutdown_conn k;
  if Atomic.fetch_and_add k.k_pumps (-1) = 1 then begin
    (* Last pump out owns the fds. *)
    let quiet fd = try Unix.close fd with Unix.Unix_error _ -> () in
    quiet k.k_client;
    quiet k.k_up;
    Option.iter quiet k.k_extra;
    unregister t k
  end

(* ------------------------------------------------------------------ *)
(* Accepting *)

let dial_upstream t =
  let addr =
    try Unix.ADDR_INET (Unix.inet_addr_of_string t.up_host, t.up_port)
    with Failure _ -> Unix.ADDR_INET (Unix.inet_addr_loopback, t.up_port)
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match Unix.connect fd addr with
  | () -> Some fd
  | exception Unix.Unix_error _ ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      None

let spawn_conn t client_fd =
  match dial_upstream t with
  | None -> ( try Unix.close client_fd with Unix.Unix_error _ -> ())
  | Some up_fd ->
      let extra =
        match Atomic.get t.fault with
        | Duplicate_connect -> dial_upstream t
        | _ -> None
      in
      Mutex.lock t.m;
      t.next_id <- t.next_id + 1;
      t.conns_total <- t.conns_total + 1;
      let k =
        {
          k_id = t.next_id;
          k_client = client_fd;
          k_up = up_fd;
          k_extra = extra;
          k_alive = Atomic.make true;
          k_pumps = Atomic.make 2;
        }
      in
      Hashtbl.add t.conns k.k_id k;
      let th1 = Thread.create (fun () -> pump t k client_fd up_fd To_upstream) () in
      let th2 = Thread.create (fun () -> pump t k up_fd client_fd To_client) () in
      t.threads <- th1 :: th2 :: t.threads;
      Mutex.unlock t.m

let accept_loop t =
  while not (Atomic.get t.stop) do
    match Unix.select [ t.lsock ] [] [] 0.1 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept t.lsock with
        | exception Unix.Unix_error _ -> ()
        | fd, _ -> (
            match Atomic.get t.fault with
            | Partition ->
                (* The network is down: the client's connect may have
                   completed in the kernel, but no conversation starts —
                   drop it on the floor. *)
                (try Unix.close fd with Unix.Unix_error _ -> ())
            | _ -> spawn_conn t fd))
  done

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

let start ?(host = "127.0.0.1") ?(port = 0) ~upstream_host ~upstream_port () =
  let lsock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lsock Unix.SO_REUSEADDR true;
  match
    Unix.bind lsock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
  with
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close lsock with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "chaos proxy cannot bind %s:%d: %s" host port
           (Unix.error_message e))
  | () ->
      Unix.listen lsock 64;
      let actual =
        match Unix.getsockname lsock with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      let t =
        {
          lsock;
          port = actual;
          up_host = upstream_host;
          up_port = upstream_port;
          fault = Atomic.make Healthy;
          stop = Atomic.make false;
          m = Mutex.create ();
          conns = Hashtbl.create 16;
          next_id = 0;
          threads = [];
          conns_total = 0;
          conns_killed = 0;
          bytes_to_upstream = 0;
          bytes_to_client = 0;
          accepter = None;
        }
      in
      t.accepter <- Some (Thread.create accept_loop t);
      Ok t

(* Tear every live connection — a node kill or a reset storm. New
   connections keep being accepted (unless partitioned). *)
let kill_connections t =
  Mutex.lock t.m;
  let live = Hashtbl.fold (fun _ k acc -> k :: acc) t.conns [] in
  t.conns_killed <- t.conns_killed + List.length live;
  Mutex.unlock t.m;
  List.iter shutdown_conn live

let stop t =
  if not (Atomic.exchange t.stop true) then begin
    kill_connections t;
    (try Unix.close t.lsock with Unix.Unix_error _ -> ());
    Option.iter Thread.join t.accepter;
    let threads =
      Mutex.lock t.m;
      let l = t.threads in
      t.threads <- [];
      Mutex.unlock t.m;
      l
    in
    List.iter Thread.join threads
  end
