(* Seeded fault schedules: the deterministic driver behind the chaos
   matrix and the `sqlledger chaos-proxy --seed` CLI.

   A schedule is a list of (fault, hold-seconds) steps applied to a
   proxy in order, healing the link when it ends. [random] draws the
   steps from a seeded splitmix64 stream (Workload.Prng), so a failing
   chaos trial replays exactly from its printed seed — the property the
   crash matrix already relies on, extended to the network. *)

type step = { fault : Proxy.fault; hold : float }

type t = step list

let fixed steps = List.map (fun (fault, hold) -> { fault; hold }) steps

let describe steps =
  List.map
    (fun { fault; hold } ->
      Printf.sprintf "%-28s %.3fs" (Proxy.fault_to_string fault) hold)
    steps

let random_direction rng =
  match Workload.Prng.int rng 3 with
  | 0 -> Proxy.To_upstream
  | 1 -> Proxy.To_client
  | _ -> Proxy.Both

(* One random fault, parameters drawn small enough that a trial's worth
   of them finishes in test time yet large enough to matter against the
   protocol's timeouts. Healthy appears in the menu on purpose: healing
   mid-schedule exercises recovery paths, not just degradation. *)
let random_fault rng =
  match Workload.Prng.int rng 7 with
  | 0 -> Proxy.Healthy
  | 1 ->
      Proxy.Delay
        {
          seconds = 0.001 +. Workload.Prng.float rng 0.02;
          dir = random_direction rng;
        }
  | 2 ->
      Proxy.Throttle
        {
          bytes_per_sec = 8 * 1024 * (1 + Workload.Prng.int rng 32);
          dir = random_direction rng;
        }
  | 3 ->
      Proxy.Dribble
        {
          chunk = 1 + Workload.Prng.int rng 7;
          pause = 0.0005 +. Workload.Prng.float rng 0.002;
          dir = random_direction rng;
        }
  | 4 -> Proxy.Drop (random_direction rng)
  | 5 -> Proxy.Partition
  | _ -> Proxy.Duplicate_connect

let random ?(steps = 6) ?(min_hold = 0.05) ?(max_hold = 0.3) ~seed () =
  let rng = Workload.Prng.create seed in
  List.init steps (fun _ ->
      {
        fault = random_fault rng;
        hold = min_hold +. Workload.Prng.float rng (max_hold -. min_hold);
      })

(* Apply the schedule to [proxy], step by step, checking [stop] between
   slices so a finished test does not sit out the remaining holds. The
   link is always healed on the way out. *)
let run ?(stop = fun () -> false) schedule proxy =
  let rec hold seconds =
    if seconds > 0. && not (stop ()) then begin
      Thread.delay (Float.min 0.02 seconds);
      hold (seconds -. 0.02)
    end
  in
  (try
     List.iter
       (fun { fault; hold = h } ->
         if not (stop ()) then begin
           Proxy.set_fault proxy fault;
           hold h
         end)
       schedule
   with e ->
     Proxy.set_fault proxy Proxy.Healthy;
     raise e);
  Proxy.set_fault proxy Proxy.Healthy

let run_async ?stop schedule proxy =
  Thread.create (fun () -> run ?stop schedule proxy) ()
