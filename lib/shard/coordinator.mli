(** The shard coordinator: an SLW1 front-end that routes statements over
    a {!Shard_map}, runs cross-shard writes under two-phase commit with a
    durable {!Decision_log}, and publishes/verifies
    {!Trusted_store.Aggregate_digest} documents covering every shard. *)

type config = {
  host : string;
  port : int;
  dir : string;  (** coordinator state: shard map, schemas, decision log *)
  name : string;
  max_connections : int;
  idle_timeout : float;
  request_timeout : float;
  auth_secret : string option;
      (** shared-secret contents (same file as every shard): verifies
          client principal claims at hello and re-authenticates the
          verified name on the coordinator's own shard connections *)
}

val default_config : config

type t

type start_error = Port_in_use of string | Startup of string

val start_error_to_string : start_error -> string

val start :
  ?config:config -> ?shards:(string * int) list -> unit -> (t, start_error) result
(** Recover coordinator state from [config.dir] (shard map, schema
    registry, decision log — presumed-aborting any transaction whose
    decision never hit the log) and bind the listen socket. [shards]
    seeds the map on first start; passing a different topology later
    bumps the map epoch. *)

val port : t -> int
val map : t -> Shard_map.t

val bump_epoch : t -> int
(** Force a new map generation (what a topology change does), returning
    it. Requests stamped with the old epoch are then refused with
    [wrong_shard]. *)

val pending_decisions : t -> (string * int list * bool) list
(** Undelivered 2PC decisions: (gid, shards still owed, commit?). *)

val resolve_pending : t -> int
(** One synchronous re-delivery pass; returns how many decisions remain
    undelivered. [run] also does this continuously in the background. *)

val run : t -> unit
(** Blocking accept loop; returns after {!request_shutdown} (re-raising a
    failpoint-injected crash, as a real coordinator death would). *)

val run_async : t -> Thread.t
val request_shutdown : t -> unit
val shutdown : t -> Thread.t -> unit

val point_before_decision : string
(** Failpoint tripped after every PREPARE is collected but before the
    decision record is logged. *)

val point_after_decision : string
(** Failpoint tripped after the decision record is durable but before
    any participant learns it. *)
