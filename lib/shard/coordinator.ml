(* The shard coordinator: a ledger front-end that speaks the same SLW1
   wire protocol as a single-node server but owns no rows itself.

   Topology: N unmodified shard primaries (each a full Server with its
   own WAL, Database Ledger and digest machinery), one coordinator
   holding the {!Shard_map}. Clients connect to the coordinator as if it
   were a server; smart clients may instead fetch the map ([Shard_map])
   and talk to shard primaries directly, stamping requests with the map
   epoch so a stale map is refused ([wrong_shard]) rather than silently
   misrouted.

   Routing:
   - point statements (single-key INSERT, WHERE pk = literal
     SELECT/UPDATE/DELETE) go to the owning shard unchanged;
   - fan-out-safe SELECTs (single table, no aggregates / GROUP BY /
     ORDER BY / LIMIT / DISTINCT / subqueries) broadcast and concatenate;
   - multi-row INSERTs split per shard; non-point UPDATE/DELETE
     broadcast — each shard applies them to the rows it owns;
   - cross-shard writes run under two-phase commit: per-participant
     BEGIN + statements, then PREPARE all / log the decision / DECIDE
     all, with the decision log ({!Decision_log}) making the outcome
     durable across coordinator crashes (presumed abort before the
     decision record, re-delivery after it).

   Digest/verify: [Digest] fans out to every shard and publishes one
   {!Trusted_store.Aggregate_digest} (a Merkle root over the per-shard
   block hashes) to the coordinator's WORM store; [Verify] fans back out
   in parallel, feeding each shard its embedded digest and checking the
   aggregate root, so one trust anchor covers the whole deployment. *)

module Protocol = Wire.Protocol
module Client = Wire.Client
module Frame = Wire.Frame
module Value = Relation.Value
module Ast = Sqlexec.Ast
module Aggregate_digest = Trusted_store.Aggregate_digest

let point_before_decision = "coord.2pc.before_decision"
let point_after_decision = "coord.2pc.after_decision"
let state_point_prefix = "coord.state"

let () =
  Fault.register point_before_decision;
  Fault.register point_after_decision;
  Fault.Fsutil.register_atomic_points state_point_prefix

type config = {
  host : string;
  port : int;
  dir : string;  (** coordinator state: shard map, schemas, decision log *)
  name : string;
  max_connections : int;
  idle_timeout : float;
  request_timeout : float;
  auth_secret : string option;
      (** shared-secret contents (the same file every shard holds):
          verifies client principal claims and re-authenticates them on
          the coordinator's own shard connections, so the principal a
          client proved here is the one every 2PC participant records *)
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7979;
    dir = ".";
    name = "coord";
    max_connections = 64;
    idle_timeout = 60.0;
    request_timeout = 30.0;
    auth_secret = None;
  }

type schema = { sc_columns : (string * string) list; sc_key : string list }

type counters = {
  mutable c_1pc : int;
  mutable c_2pc_commit : int;
  mutable c_2pc_abort : int;
  mutable c_wrong_shard : int;
  mutable c_resolved : int;  (** pending decisions delivered by recovery *)
}

(* An undelivered decision: [p_parts] still owes an ack. *)
type pending = { p_gid : string; mutable p_parts : int list; p_commit : bool }

type t = {
  cfg : config;
  lsock : Unix.file_descr;
  actual_port : int;
  mutable map : Shard_map.t;
  schemas : (string, schema) Hashtbl.t;  (* lowercase name -> schema *)
  mu : Mutex.t;  (* map + schemas + state file *)
  dlog : Decision_log.t;
  dlog_mu : Mutex.t;  (* decision log + gid counter + pending list *)
  mutable next_gid : int;
  mutable pending : pending list;
  store : Trusted_store.Worm_store.t;
  ctr : counters;
  ctr_mu : Mutex.t;
  stop : bool Atomic.t;
  crash : exn option Atomic.t;
  sessions : (int, Thread.t) Hashtbl.t;
  sm : Mutex.t;
  mutable next_session : int;
}

type start_error = Port_in_use of string | Startup of string

let start_error_to_string = function Port_in_use m | Startup m -> m

let port t = t.actual_port
let request_shutdown t = Atomic.set t.stop true

let map t = Mutex.protect t.mu (fun () -> t.map)

let bump n f =
  Mutex.protect n.ctr_mu (fun () -> f n.ctr)

(* ------------------------------------------------------------------ *)
(* Durable coordinator state: shard map + schema registry *)

let state_path dir = Filename.concat dir "coord.json"

let state_json t =
  Sjson.Obj
    [
      ("map", Shard_map.to_json t.map);
      ( "schemas",
        Sjson.Obj
          (Hashtbl.fold
             (fun name sc acc ->
               ( name,
                 Sjson.Obj
                   [
                     ( "columns",
                       Sjson.List
                         (List.map
                            (fun (n, ty) ->
                              Sjson.Obj
                                [
                                  ("name", Sjson.String n);
                                  ("type", Sjson.String ty);
                                ])
                            sc.sc_columns) );
                     ( "key",
                       Sjson.List
                         (List.map (fun k -> Sjson.String k) sc.sc_key) );
                   ] )
               :: acc)
             t.schemas []
          |> List.sort compare) );
    ]

(* Caller holds [t.mu]. *)
let save_state_locked t =
  Fault.Fsutil.atomic_write ~point_prefix:state_point_prefix
    ~path:(state_path t.cfg.dir)
    (Sjson.to_string ~pretty:true (state_json t))

let load_state dir =
  let path = state_path dir in
  if not (Sys.file_exists path) then Ok None
  else
    let ic = open_in_bin path in
    let contents = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Sjson.of_string contents with
    | exception Sjson.Parse_error e -> Error ("corrupt " ^ path ^ ": " ^ e)
    | json -> (
        match Shard_map.of_json (Sjson.member "map" json) with
        | Error e -> Error ("corrupt " ^ path ^ ": " ^ e)
        | Ok map -> (
            try
              let schemas =
                match Sjson.member "schemas" json with
                | Sjson.Obj fields ->
                    List.map
                      (fun (name, sj) ->
                        let columns =
                          match Sjson.member "columns" sj with
                          | Sjson.List items ->
                              List.map
                                (fun c ->
                                  ( Sjson.get_string (Sjson.member "name" c),
                                    Sjson.get_string (Sjson.member "type" c) ))
                                items
                          | _ -> failwith "schema without columns"
                        in
                        let key =
                          match Sjson.member "key" sj with
                          | Sjson.List items -> List.map Sjson.get_string items
                          | _ -> failwith "schema without key"
                        in
                        (name, { sc_columns = columns; sc_key = key }))
                      fields
                | _ -> []
              in
              Ok (Some (map, schemas))
            with Failure e | Invalid_argument e ->
              Error ("corrupt " ^ path ^ ": " ^ e)))

(* ------------------------------------------------------------------ *)
(* Startup *)

let bind_listen ~host ~port =
  let lsock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lsock Unix.SO_REUSEADDR true;
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  match Unix.bind lsock addr with
  | exception Unix.Unix_error (Unix.EADDRINUSE, _, _) ->
      (try Unix.close lsock with Unix.Unix_error _ -> ());
      Error
        (Port_in_use (Printf.sprintf "%s:%d: address already in use" host port))
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close lsock with Unix.Unix_error _ -> ());
      Error
        (Startup
           (Printf.sprintf "cannot bind %s:%d: %s" host port
              (Unix.error_message e)))
  | () ->
      Unix.listen lsock 64;
      let actual_port =
        match Unix.getsockname lsock with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      Ok (lsock, actual_port)

let gid_number gid =
  match String.index_opt gid 'g' with
  | Some 0 -> int_of_string_opt (String.sub gid 1 (String.length gid - 1))
  | _ -> None

(* Fold the decision log into the unfinished work it implies. Returns
   (gids needing a presumed-abort decision, undelivered decisions,
   next gid counter). *)
let recover_log records =
  let tbl : (string, int list * bool option * bool) Hashtbl.t =
    Hashtbl.create 16
  in
  let order = ref [] in
  let hi = ref 0 in
  List.iter
    (fun r ->
      (match r with
      | Decision_log.Start { gid; _ }
      | Decision_log.Decision { gid; _ }
      | Decision_log.End { gid } -> (
          match gid_number gid with
          | Some n when n > !hi -> hi := n
          | _ -> ()));
      match r with
      | Decision_log.Start { gid; participants } ->
          if not (Hashtbl.mem tbl gid) then begin
            Hashtbl.replace tbl gid (participants, None, false);
            order := gid :: !order
          end
      | Decision_log.Decision { gid; commit } -> (
          match Hashtbl.find_opt tbl gid with
          | Some (parts, _, ended) ->
              Hashtbl.replace tbl gid (parts, Some commit, ended)
          | None -> ())
      | Decision_log.End { gid } -> (
          match Hashtbl.find_opt tbl gid with
          | Some (parts, d, _) -> Hashtbl.replace tbl gid (parts, d, true)
          | None -> ()))
    records;
  let undecided = ref [] and undelivered = ref [] in
  List.iter
    (fun gid ->
      match Hashtbl.find tbl gid with
      | _, _, true -> ()
      | parts, None, false -> undecided := (gid, parts) :: !undecided
      | parts, Some commit, false ->
          undelivered := { p_gid = gid; p_parts = parts; p_commit = commit } :: !undelivered)
    (List.rev !order);
  (List.rev !undecided, List.rev !undelivered, !hi + 1)

let start ?(config = default_config) ?(shards = []) () =
  Fault.Fsutil.mkdir_p config.dir;
  match load_state config.dir with
  | Error e -> Error (Startup e)
  | Ok prior -> (
      let map, schemas =
        match prior with
        | None -> (
            match shards with
            | [] -> (None, [])
            | l -> (Some (Shard_map.make ~epoch:1 l), []))
        | Some (m, schemas) -> (
            match shards with
            | [] -> (Some m, schemas)
            | l ->
                let fresh = Shard_map.make ~epoch:(Shard_map.epoch m) l in
                if Shard_map.equal_topology m fresh then (Some m, schemas)
                else
                  (* Topology changed: new generation, stale clients get
                     [wrong_shard] until they refresh. *)
                  (Some (Shard_map.with_epoch fresh (Shard_map.epoch m + 1)),
                   schemas))
      in
      match map with
      | None ->
          Error
            (Startup
               "no shard map: pass --shard HOST:PORT at least once on first \
                start")
      | Some map -> (
          let records, dlog =
            Decision_log.load
              ~path:(Filename.concat config.dir "coord.dlog")
          in
          let undecided, undelivered, next_gid = recover_log records in
          (* Presumed abort: a Start whose decision never hit the log
             means the coordinator died inside the prepare round. Decide
             abort *now*, before serving anything, so the outcome is
             fixed no matter when the participants are reachable
             again. *)
          List.iter
            (fun (gid, _) ->
              Decision_log.append dlog
                (Decision_log.Decision { gid; commit = false }))
            undecided;
          let pending =
            undelivered
            @ List.map
                (fun (gid, parts) ->
                  { p_gid = gid; p_parts = parts; p_commit = false })
                undecided
          in
          match bind_listen ~host:config.host ~port:config.port with
          | Error e ->
              Decision_log.close dlog;
              Error e
          | Ok (lsock, actual_port) ->
              let t =
                {
                  cfg = config;
                  lsock;
                  actual_port;
                  map;
                  schemas = Hashtbl.create 16;
                  mu = Mutex.create ();
                  dlog;
                  dlog_mu = Mutex.create ();
                  next_gid;
                  pending;
                  store =
                    Trusted_store.Worm_store.create
                      ~dir:(Filename.concat config.dir "worm")
                      ();
                  ctr =
                    {
                      c_1pc = 0;
                      c_2pc_commit = 0;
                      c_2pc_abort = 0;
                      c_wrong_shard = 0;
                      c_resolved = 0;
                    };
                  ctr_mu = Mutex.create ();
                  stop = Atomic.make false;
                  crash = Atomic.make None;
                  sessions = Hashtbl.create 16;
                  sm = Mutex.create ();
                  next_session = 0;
                }
              in
              List.iter
                (fun (name, sc) -> Hashtbl.replace t.schemas name sc)
                schemas;
              Mutex.protect t.mu (fun () -> save_state_locked t);
              Ok t))

let bump_epoch t =
  Mutex.protect t.mu (fun () ->
      t.map <- Shard_map.with_epoch t.map (Shard_map.epoch t.map + 1);
      save_state_locked t;
      Shard_map.epoch t.map)

let pending_decisions t =
  Mutex.protect t.dlog_mu (fun () ->
      List.map (fun p -> (p.p_gid, p.p_parts, p.p_commit)) t.pending)

(* ------------------------------------------------------------------ *)
(* Decision delivery (recovery resolver) *)

(* One delivery pass over the undelivered decisions: short-lived
   connections, so a shard that is down just stays owed. Returns the
   number of decisions still pending. *)
let resolve_pending t =
  let todo = Mutex.protect t.dlog_mu (fun () -> t.pending) in
  List.iter
    (fun p ->
      let owed = p.p_parts in
      let still =
        List.filter
          (fun i ->
            let host, port = Shard_map.address (map t) i in
            match
              Client.connect ~client:(t.cfg.name ^ "-resolver") ~host ~port ()
            with
            | Error _ -> true
            | Ok c ->
                let undelivered =
                  match
                    Client.call c
                      (Protocol.Decide { gid = p.p_gid; commit = p.p_commit })
                  with
                  | Ok Protocol.Ok_r -> false
                  | Ok _ | Error _ -> true
                in
                Client.close c;
                undelivered)
          owed
      in
      Mutex.protect t.dlog_mu (fun () ->
          p.p_parts <- still;
          if still = [] then begin
            Decision_log.append t.dlog (Decision_log.End { gid = p.p_gid });
            t.pending <- List.filter (fun q -> q != p) t.pending;
            bump t (fun c -> c.c_resolved <- c.c_resolved + 1)
          end))
    todo;
  Mutex.protect t.dlog_mu (fun () -> List.length t.pending)

(* ------------------------------------------------------------------ *)
(* Sessions *)

type session = {
  sid : int;
  mutable greeted : bool;
  mutable principal : string option;
      (* the identity this session authenticated at hello; forwarded on
         every shard connection the session opens, so the shards' ledgers
         record the end client, not the coordinator *)
  conns : (int, Client.t) Hashtbl.t;  (* shard -> dedicated connection *)
  mutable txn : int list option;  (* shards holding an open BEGIN *)
}

let err code fmt =
  Printf.ksprintf
    (fun message ->
      Protocol.Error_r
        { code; message; retry_after_ms = None; map_epoch = None })
    fmt

(* Dedicated per-session shard connections: an explicit transaction lives
   on the connection that opened it (the shard ties txn state to its
   session), so sessions must never share. *)
let session_conn t s i =
  match Hashtbl.find_opt s.conns i with
  | Some c -> Ok c
  | None -> (
      let host, port = Shard_map.address (map t) i in
      match
        Client.connect_retry
          ~client:(Printf.sprintf "%s/s%d" t.cfg.name s.sid)
          ?principal:s.principal ?secret:t.cfg.auth_secret ~max_attempts:4
          ~backoff_min:0.02 ~backoff_max:0.3 ~host ~port ()
      with
      | Ok c ->
          Hashtbl.replace s.conns i c;
          Ok c
      | Error e ->
          Error
            (Printf.sprintf "shard %d (%s:%d) unreachable: %s" i host port
               (Client.connect_error_to_string e)))

let scall ?deadline_s t s i req =
  match session_conn t s i with
  | Error m -> Error m
  | Ok c -> (
      match Client.call ?deadline_s c req with
      | Ok resp -> Ok resp
      | Error m ->
          (* Transport failure: the connection (and any txn state riding
             on it) is gone; drop it so the next use redials. *)
          Hashtbl.remove s.conns i;
          (try Client.close c with Sys_error _ | Unix.Unix_error _ -> ());
          Error (Printf.sprintf "shard %d: %s" i m))

let all_shards t = List.init (Shard_map.count (map t)) Fun.id

(* ------------------------------------------------------------------ *)
(* Statement routing *)

type route =
  | To_shard of int  (** forward the original SQL unchanged *)
  | Fanout_read  (** broadcast the SELECT, concatenate rows *)
  | Split_insert of (int * string) list  (** per-shard rewritten INSERTs *)
  | Broadcast_write  (** same statement on every shard, under 2PC *)
  | Unroutable of string

let lc = String.lowercase_ascii

let find_schema t name = Hashtbl.find_opt t.schemas (lc name)

let literal = function
  | Ast.Lit v -> Some v
  | Ast.Neg (Ast.Lit (Value.Int i)) -> Some (Value.Int (-i))
  | Ast.Neg (Ast.Lit (Value.Float f)) -> Some (Value.Float (-.f))
  | _ -> None

(* WHERE <pk> = <literal> (either side), on a single-column key. *)
let key_eq ~table_name ~key_col where =
  let table_ok = function
    | None -> true
    | Some a -> lc a = lc table_name
  in
  let accept ~table ~column e =
    if table_ok table && lc column = key_col then literal e else None
  in
  match where with
  | Some (Ast.Binop (Ast.Eq, Ast.Col { table; column }, e))
  | Some (Ast.Binop (Ast.Eq, e, Ast.Col { table; column })) ->
      accept ~table ~column e
  | _ -> None

(* Aggregates, window functions and subqueries make per-shard results
   non-concatenable; walk the expression tree looking for them. *)
let rec expr_fans_out = function
  | Ast.Agg _ | Ast.Window _ | Ast.Exists _ | Ast.Scalar_subquery _ -> true
  | Ast.Lit _ | Ast.Col _ -> false
  | Ast.Binop (_, a, b) -> expr_fans_out a || expr_fans_out b
  | Ast.Not e | Ast.Neg e -> expr_fans_out e
  | Ast.Is_null { subject; _ } -> expr_fans_out subject
  | Ast.Func (_, args) -> List.exists expr_fans_out args
  | Ast.In_list (e, args) -> expr_fans_out e || List.exists expr_fans_out args
  | Ast.Case { branches; else_ } ->
      List.exists (fun (c, v) -> expr_fans_out c || expr_fans_out v) branches
      || (match else_ with Some e -> expr_fans_out e | None -> false)
  | Ast.Like { subject; pattern; _ } ->
      expr_fans_out subject || expr_fans_out pattern
  | Ast.Between { subject; lo; hi; _ } ->
      expr_fans_out subject || expr_fans_out lo || expr_fans_out hi

let fanout_safe (q : Ast.select) =
  (not q.distinct) && q.group_by = [] && q.having = None && q.order_by = []
  && q.limit = None
  && (match q.from with Some (Ast.Table _) -> true | _ -> false)
  && List.for_all
       (function
         | Ast.Star -> true
         | Ast.Expr (e, _) -> not (expr_fans_out e))
       q.projections
  && (match q.where with Some w -> not (expr_fans_out w) | None -> true)

(* SQL literal printing, for the per-shard halves of a split INSERT. Only
   shapes the parser can itself produce are printed, so a reconstructed
   statement always re-parses. *)
let sql_of_value = function
  | Value.Null -> Some "NULL"
  | Value.Bool true -> Some "TRUE"
  | Value.Bool false -> Some "FALSE"
  | Value.Int i -> Some (string_of_int i)
  | Value.Float f ->
      if Float.is_finite f then Some (Printf.sprintf "%.17g" f) else None
  | Value.String s ->
      let buf = Buffer.create (String.length s + 2) in
      Buffer.add_char buf '\'';
      String.iter
        (fun c ->
          if c = '\'' then Buffer.add_string buf "''"
          else Buffer.add_char buf c)
        s;
      Buffer.add_char buf '\'';
      Some (Buffer.contents buf)
  | Value.Datetime _ -> None

let route_insert t ~table ~columns ~rows =
  match find_schema t table with
  | None ->
      Unroutable
        (Printf.sprintf
           "unknown table %s: create it through the coordinator first" table)
  | Some sc -> (
      let cols =
        match columns with
        | Some cs -> List.map lc cs
        | None -> List.map (fun (n, _) -> lc n) sc.sc_columns
      in
      let key_pos =
        List.map
          (fun k ->
            let k = lc k in
            let rec find i = function
              | [] -> None
              | c :: _ when c = k -> Some i
              | _ :: rest -> find (i + 1) rest
            in
            find 0 cols)
          sc.sc_key
      in
      if List.exists Option.is_none key_pos then
        Unroutable
          (Printf.sprintf
             "INSERT into %s does not supply every key column; the \
              coordinator cannot route it"
             table)
      else
        let key_pos = List.map Option.get key_pos in
        let shard_of_row row =
          let cells = Array.of_list row in
          let key =
            List.map
              (fun p ->
                if p >= Array.length cells then None else literal cells.(p))
              key_pos
          in
          if List.exists Option.is_none key then None
          else
            Some
              (Shard_map.shard_of_key (map t) ~table
                 (List.map Option.get key))
        in
        match
          List.fold_left
            (fun acc row ->
              match (acc, shard_of_row row) with
              | Error e, _ -> Error e
              | Ok groups, Some i ->
                  let prev =
                    match List.assoc_opt i groups with
                    | Some rs -> rs
                    | None -> []
                  in
                  Ok ((i, row :: prev) :: List.remove_assoc i groups)
              | Ok _, None ->
                  Error
                    "INSERT key values must be literals to route through \
                     the coordinator"
            )
            (Ok []) rows
        with
        | Error e -> Unroutable e
        | Ok [] -> Unroutable "INSERT with no rows"
        | Ok [ (i, _) ] -> To_shard i
        | Ok groups -> (
            (* Rebuild one INSERT per shard. Every cell must print as a
               literal; anything fancier only routes single-shard. *)
            let print_row row =
              let cells =
                List.map
                  (fun e ->
                    match literal e with
                    | Some v -> sql_of_value v
                    | None -> None)
                  row
              in
              if List.exists Option.is_none cells then None
              else
                Some
                  ("(" ^ String.concat ", " (List.map Option.get cells) ^ ")")
            in
            let header =
              Printf.sprintf "INSERT INTO %s (%s) VALUES " table
                (String.concat ", " cols)
            in
            let rebuilt =
              List.map
                (fun (i, rev_rows) ->
                  let printed = List.rev_map print_row rev_rows in
                  if List.exists Option.is_none printed then None
                  else
                    Some
                      ( i,
                        header
                        ^ String.concat ", " (List.map Option.get printed) ))
                groups
            in
            if List.exists Option.is_none rebuilt then
              Unroutable
                "cross-shard INSERT rows must be plain literals (no \
                 expressions or datetimes)"
            else
              Split_insert
                (List.sort compare (List.map Option.get rebuilt))))

let route_statement t stmt =
  match stmt with
  | Ast.Select q -> (
      match q.from with
      | Some (Ast.Table { name; alias; as_of = _ }) -> (
          let label = Option.value alias ~default:name in
          match find_schema t name with
          | Some { sc_key = [ key_col ]; _ } -> (
              match key_eq ~table_name:label ~key_col:(lc key_col) q.where with
              | Some v ->
                  To_shard (Shard_map.shard_of_key (map t) ~table:name [ v ])
              | None ->
                  if fanout_safe q then Fanout_read
                  else
                    Unroutable
                      "cross-shard SELECT supports only plain single-table \
                       scans (no aggregates, GROUP BY, ORDER BY, LIMIT, \
                       DISTINCT or subqueries); point it at one primary key \
                       or ask a shard directly")
          | Some _ | None ->
              if fanout_safe q then Fanout_read
              else
                Unroutable
                  "cross-shard SELECT supports only plain single-table scans; \
                   simplify the query or ask a shard directly")
      | _ ->
          if fanout_safe q then Fanout_read
          else
            Unroutable
              "cross-shard SELECT supports only plain single-table scans; \
               simplify the query or ask a shard directly")
  | Ast.Insert { table; columns; rows } -> route_insert t ~table ~columns ~rows
  | Ast.Update { table; assignments; where } -> (
      match find_schema t table with
      | None ->
          Unroutable
            (Printf.sprintf
               "unknown table %s: create it through the coordinator first"
               table)
      | Some sc ->
          if
            List.exists
              (fun (c, _) -> List.mem (lc c) (List.map lc sc.sc_key))
              assignments
          then
            Unroutable
              "UPDATE of a primary-key column would move the row between \
               shards; delete and re-insert instead"
          else (
            match sc.sc_key with
            | [ key_col ] -> (
                match key_eq ~table_name:table ~key_col:(lc key_col) where with
                | Some v ->
                    To_shard (Shard_map.shard_of_key (map t) ~table [ v ])
                | None -> Broadcast_write)
            | _ -> Broadcast_write))
  | Ast.Delete { table; where } -> (
      match find_schema t table with
      | None ->
          Unroutable
            (Printf.sprintf
               "unknown table %s: create it through the coordinator first"
               table)
      | Some { sc_key = [ key_col ]; _ } -> (
          match key_eq ~table_name:table ~key_col:(lc key_col) where with
          | Some v -> To_shard (Shard_map.shard_of_key (map t) ~table [ v ])
          | None -> Broadcast_write)
      | Some _ -> Broadcast_write)

(* ------------------------------------------------------------------ *)
(* Two-phase commit *)

let fresh_gid t =
  Mutex.protect t.dlog_mu (fun () ->
      let n = t.next_gid in
      t.next_gid <- n + 1;
      Printf.sprintf "g%d" n)

(* Commit the open transactions on [parts] atomically. The caller has
   already run the statements; this is the pure commit protocol:

     log Start -> PREPARE all -> log Decision -> DECIDE all -> log End

   A crash before the Decision record aborts by presumption; after it,
   the decision re-delivers via [resolve_pending]. Participants that
   voted no (or whose prepare never reached them) are told to abort and
   additionally rolled back, which is a no-op where the prepare never
   landed. *)
let two_phase_commit t s parts =
  let gid = fresh_gid t in
  Mutex.protect t.dlog_mu (fun () ->
      Decision_log.append t.dlog
        (Decision_log.Start { gid; participants = parts }));
  let votes =
    List.map
      (fun i ->
        match scall t s i (Protocol.Prepare { gid }) with
        | Ok Protocol.Ok_r -> Ok i
        | Ok (Protocol.Error_r { message; _ }) -> Error (i, message)
        | Ok _ -> Error (i, "unexpected reply to prepare")
        | Error m -> Error (i, m))
      parts
  in
  let commit = List.for_all Result.is_ok votes in
  (* Dying here is the classic coordinator failure: every participant is
     prepared (holding its shard's writer lock) and nobody knows the
     outcome until recovery logs the presumed abort. *)
  Fault.trip point_before_decision;
  Mutex.protect t.dlog_mu (fun () ->
      Decision_log.append t.dlog (Decision_log.Decision { gid; commit }));
  Fault.trip point_after_decision;
  let undelivered =
    List.filter
      (fun i ->
        match scall t s i (Protocol.Decide { gid; commit }) with
        | Ok Protocol.Ok_r -> false
        | Ok _ | Error _ -> true)
      parts
  in
  if not commit then
    (* Clear any transaction still open on a no-voting shard. *)
    List.iter
      (fun v ->
        match v with
        | Error (i, _) ->
            ignore (scall t s i Protocol.Rollback : (Protocol.response, string) result)
        | Ok _ -> ())
      votes;
  Mutex.protect t.dlog_mu (fun () ->
      if undelivered = [] then
        Decision_log.append t.dlog (Decision_log.End { gid })
      else
        t.pending <-
          { p_gid = gid; p_parts = undelivered; p_commit = commit }
          :: t.pending);
  bump t (fun c ->
      if commit then c.c_2pc_commit <- c.c_2pc_commit + 1
      else c.c_2pc_abort <- c.c_2pc_abort + 1);
  if commit then Ok ()
  else
    Error
      (String.concat "; "
         (List.filter_map
            (function
              | Error (i, m) -> Some (Printf.sprintf "shard %d: %s" i m)
              | Ok _ -> None)
            votes))

(* ------------------------------------------------------------------ *)
(* Statement execution *)

(* Open (or reuse) the explicit transaction on shard [i] for this
   session, returning the updated participant list. *)
let ensure_begun t s parts i =
  if List.mem i parts then Ok parts
  else
    match scall t s i Protocol.Begin with
    | Ok (Protocol.Txn_r _) -> Ok (i :: parts)
    | Ok (Protocol.Error_r { message; _ }) ->
        Error (Printf.sprintf "shard %d: %s" i message)
    | Ok _ -> Error (Printf.sprintf "shard %d: unexpected reply to begin" i)
    | Error m -> Error m

let affected_of = function
  | Protocol.Affected_r { rows; _ } -> Some rows
  | Protocol.Rows_r _ | Protocol.Ok_r -> Some 0
  | _ -> None

(* Cross-shard totals have no single transaction id to report. *)
let affected_r total = Protocol.Affected_r { rows = total; txn_id = None }

(* Run [stmts] (one per shard) transactionally across their shards:
   inside an explicit txn just fold them into it; in auto-commit wrap
   them in BEGIN..2PC. *)
let exec_transactional t s stmts =
  let run parts =
    List.fold_left
      (fun acc (i, sql) ->
        match acc with
        | Error _ -> acc
        | Ok (parts, total) -> (
            match ensure_begun t s parts i with
            | Error m -> Error m
            | Ok parts -> (
                match scall t s i (Protocol.Exec { sql }) with
                | Ok (Protocol.Error_r { message; _ }) ->
                    Error (Printf.sprintf "shard %d: %s" i message)
                | Ok resp -> (
                    match affected_of resp with
                    | Some n -> Ok (parts, total + n)
                    | None ->
                        Error
                          (Printf.sprintf "shard %d: unexpected reply" i))
                | Error m -> Error m)))
      (Ok (parts, 0)) stmts
  in
  match s.txn with
  | Some parts -> (
      match run parts with
      | Ok (parts, total) ->
          s.txn <- Some parts;
          affected_r total
      | Error m ->
          (* The statement failed mid-transaction; the client decides
             whether to roll back, exactly as on a single node. *)
          err Protocol.Exec_error "%s" m)
  | None -> (
      match run [] with
      | Ok ([], total) -> affected_r total
      | Ok (parts, total) -> (
          if List.length parts = 1 then (
            (* One shard after all: plain commit, no 2PC. *)
            let i = List.hd parts in
            match scall t s i Protocol.Commit with
            | Ok (Protocol.Txn_r _) ->
                bump t (fun c -> c.c_1pc <- c.c_1pc + 1);
                affected_r total
            | Ok (Protocol.Error_r { message; _ }) ->
                err Protocol.Exec_error "shard %d: %s" i message
            | Ok _ -> err Protocol.Internal "shard %d: unexpected reply" i
            | Error m -> err Protocol.Internal "%s" m)
          else
            match two_phase_commit t s parts with
            | Ok () -> affected_r total
            | Error m ->
                err Protocol.Exec_error "transaction aborted: %s" m)
      | Error m ->
          (* Roll back whatever opened; only shards this session already
             dialled can possibly hold a transaction. *)
          let touched = Hashtbl.fold (fun i _ acc -> i :: acc) s.conns [] in
          List.iter
            (fun i ->
              ignore
                (scall t s i Protocol.Rollback
                  : (Protocol.response, string) result))
            touched;
          err Protocol.Exec_error "%s" m)

(* Broadcast a read and concatenate the row sets. *)
let fanout_read t s sql =
  let shards = all_shards t in
  let results =
    List.map (fun i -> (i, scall t s i (Protocol.Query { sql }))) shards
  in
  let rec merge cols acc = function
    | [] -> Protocol.Rows_r { columns = cols; rows = List.concat (List.rev acc) }
    | (i, r) :: rest -> (
        match r with
        | Ok (Protocol.Rows_r { columns; rows }) ->
            let cols = if cols = [] then columns else cols in
            merge cols (rows :: acc) rest
        | Ok (Protocol.Error_r { message; _ }) ->
            err Protocol.Exec_error "shard %d: %s" i message
        | Ok _ -> err Protocol.Internal "shard %d: unexpected reply" i
        | Error m -> err Protocol.Internal "%s" m)
  in
  merge [] [] results

let exec_statement t s ~read_only sql =
  match Sqlexec.Parser.parse_statement sql with
  | exception Sqlexec.Parser.Parse_error m ->
      err Protocol.Parse_error "%s" m
  | exception Sqlexec.Lexer.Lex_error m -> err Protocol.Parse_error "%s" m
  | stmt -> (
      let is_select = match stmt with Ast.Select _ -> true | _ -> false in
      if read_only && not is_select then
        err Protocol.Exec_error "query only accepts SELECT"
      else
        match route_statement t stmt with
        | Unroutable m -> err Protocol.Exec_error "%s" m
        | To_shard i when is_select -> (
            match scall t s i (Protocol.Query { sql }) with
            | Ok resp -> resp
            | Error m -> err Protocol.Internal "%s" m)
        | To_shard i -> (
            match s.txn with
            | Some parts -> (
                match ensure_begun t s parts i with
                | Error m -> err Protocol.Exec_error "%s" m
                | Ok parts -> (
                    s.txn <- Some parts;
                    match scall t s i (Protocol.Exec { sql }) with
                    | Ok resp -> resp
                    | Error m -> err Protocol.Internal "%s" m))
            | None -> (
                (* Auto-commit point statement: the shard's own
                   auto-commit path is already atomic and durable. *)
                match scall t s i (Protocol.Exec { sql }) with
                | Ok resp ->
                    bump t (fun c -> c.c_1pc <- c.c_1pc + 1);
                    resp
                | Error m -> err Protocol.Internal "%s" m))
        | Fanout_read -> fanout_read t s sql
        | Split_insert stmts -> exec_transactional t s stmts
        | Broadcast_write ->
            exec_transactional t s
              (List.map (fun i -> (i, sql)) (all_shards t)))

(* ------------------------------------------------------------------ *)
(* Digest and verify fan-out *)

let aggregate_blob = "aggregate-digests"

let coordinator_digest t s =
  let m = map t in
  let shards = all_shards t in
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | i :: rest -> (
        match scall t s i Protocol.Digest with
        | Ok (Protocol.Digest_r j) -> (
            match Sql_ledger.Digest.of_json j with
            | Ok d -> collect (d :: acc) rest
            | Error e -> Error (Printf.sprintf "shard %d: %s" i e))
        | Ok (Protocol.Error_r { message; _ }) ->
            Error (Printf.sprintf "shard %d: %s" i message)
        | Ok _ -> Error (Printf.sprintf "shard %d: unexpected reply" i)
        | Error m -> Error m)
  in
  match collect [] shards with
  | Error m -> err Protocol.Exec_error "aggregate digest failed: %s" m
  | Ok digests ->
      let agg =
        Aggregate_digest.of_shards ~epoch:(Shard_map.epoch m)
          ~digest_time:(Unix.gettimeofday ()) digests
      in
      let doc = Aggregate_digest.to_json agg in
      (match
         Trusted_store.Worm_store.append t.store ~blob:aggregate_blob
           (Sjson.to_string doc)
       with
      | Ok () -> ()
      | Error _ -> ());
      Protocol.Digest_r doc

(* Parallel per-shard verification against the aggregates' embedded
   digests, plus the aggregate roots themselves. Each worker gets its own
   connection — the whole point of the shard tree is that shards verify
   independently. *)
let coordinator_verify t ~tables ~digest_jsons =
  let aggregates =
    List.filter_map
      (fun j ->
        if Aggregate_digest.is_aggregate j then
          match Aggregate_digest.of_json j with
          | Ok a -> Some (Ok a)
          | Error e -> Some (Error e)
        else None)
      digest_jsons
  in
  match
    List.fold_left
      (fun acc a ->
        match (acc, a) with
        | Error e, _ -> Error e
        | Ok l, Ok a -> Ok (a :: l)
        | Ok _, Error e -> Error e)
      (Ok []) aggregates
  with
  | Error e -> err Protocol.Exec_error "%s" e
  | Ok [] ->
      err Protocol.Exec_error
        "verify through the coordinator needs at least one aggregate digest \
         (published by its digest command)"
  | Ok aggs -> (
      let aggs = List.rev aggs in
      let n = Shard_map.count (map t) in
      let root_violations =
        List.concat_map
          (fun a ->
            let v =
              match Aggregate_digest.check a with
              | Ok () -> []
              | Error e -> [ e ]
            in
            if Aggregate_digest.shard_count a <> n then
              Printf.sprintf
                "aggregate digest covers %d shards but the map has %d"
                (Aggregate_digest.shard_count a) n
              :: v
            else v)
          aggs
      in
      if root_violations <> [] then
        Protocol.Verify_r
          {
            vs_ok = false;
            vs_blocks = 0;
            vs_transactions = 0;
            vs_versions = 0;
            vs_violations = root_violations;
          }
      else
        let per_shard i =
          List.map
            (fun a -> Sql_ledger.Digest.to_json (List.nth a.Aggregate_digest.shards i))
            aggs
        in
        let results = Array.make n (Error "unreached") in
        let worker i =
          let host, port = Shard_map.address (map t) i in
          results.(i) <-
            (match
               Client.connect_retry ~client:(t.cfg.name ^ "-verify")
                 ~max_attempts:3 ~host ~port ()
             with
            | Error e ->
                Error
                  (Printf.sprintf "shard %d: %s" i
                     (Client.connect_error_to_string e))
            | Ok c ->
                let r =
                  match
                    Client.call c
                      (Protocol.Verify { tables; digests = per_shard i })
                  with
                  | Ok (Protocol.Verify_r v) -> Ok v
                  | Ok (Protocol.Error_r { message; _ }) ->
                      Error (Printf.sprintf "shard %d: %s" i message)
                  | Ok _ ->
                      Error (Printf.sprintf "shard %d: unexpected reply" i)
                  | Error m -> Error (Printf.sprintf "shard %d: %s" i m)
                in
                Client.close c;
                r)
        in
        let threads =
          List.map (fun i -> Thread.create worker i) (all_shards t)
        in
        List.iter Thread.join threads;
        let summary =
          Array.to_list results
          |> List.mapi (fun i r -> (i, r))
          |> List.fold_left
               (fun acc (i, r) ->
                 match r with
                 | Ok v ->
                     {
                       Protocol.vs_ok = acc.Protocol.vs_ok && v.Protocol.vs_ok;
                       vs_blocks = acc.Protocol.vs_blocks + v.Protocol.vs_blocks;
                       vs_transactions =
                         acc.Protocol.vs_transactions
                         + v.Protocol.vs_transactions;
                       vs_versions =
                         acc.Protocol.vs_versions + v.Protocol.vs_versions;
                       vs_violations =
                         acc.Protocol.vs_violations
                         @ List.map
                             (fun s -> Printf.sprintf "shard %d: %s" i s)
                             v.Protocol.vs_violations;
                     }
                 | Error m ->
                     {
                       acc with
                       Protocol.vs_ok = false;
                       vs_violations = acc.Protocol.vs_violations @ [ m ];
                     })
               {
                 Protocol.vs_ok = true;
                 vs_blocks = 0;
                 vs_transactions = 0;
                 vs_versions = 0;
                 vs_violations = [];
               }
        in
        Protocol.Verify_r summary)

(* ------------------------------------------------------------------ *)
(* DDL and admin *)

let create_table t s ~name ~columns ~key ~ledger =
  let apply () =
    let rec go = function
      | [] -> Ok ()
      | i :: rest -> (
          match
            scall t s i (Protocol.Create_table { name; columns; key; ledger })
          with
          | Ok Protocol.Ok_r -> go rest
          | Ok (Protocol.Error_r { message; _ }) ->
              Error (Printf.sprintf "shard %d: %s" i message)
          | Ok _ -> Error (Printf.sprintf "shard %d: unexpected reply" i)
          | Error m -> Error m)
    in
    go (all_shards t)
  in
  match find_schema t name with
  | Some _ ->
      err Protocol.Exec_error "table %s already exists on this deployment"
        name
  | None -> (
      match apply () with
      | Error m ->
          err Protocol.Exec_error
            "create_table %s did not reach every shard (%s); retry once all \
             shards are up"
            name m
      | Ok () ->
          Mutex.protect t.mu (fun () ->
              Hashtbl.replace t.schemas (lc name)
                {
                  sc_columns = List.map (fun (n, ty) -> (lc n, ty)) columns;
                  sc_key = List.map lc key;
                };
              save_state_locked t);
          Protocol.Ok_r)

let stats_lines t =
  let c = Mutex.protect t.ctr_mu (fun () -> t.ctr) in
  let m = map t in
  let pending = Mutex.protect t.dlog_mu (fun () -> List.length t.pending) in
  [
    Printf.sprintf "coord.epoch %d" (Shard_map.epoch m);
    Printf.sprintf "coord.shards %d" (Shard_map.count m);
    Printf.sprintf "coord.txn_1pc %d" c.c_1pc;
    Printf.sprintf "coord.txn_2pc_commit %d" c.c_2pc_commit;
    Printf.sprintf "coord.txn_2pc_abort %d" c.c_2pc_abort;
    Printf.sprintf "coord.wrong_shard %d" c.c_wrong_shard;
    Printf.sprintf "coord.decisions_resolved %d" c.c_resolved;
    Printf.sprintf "coord.decisions_pending %d" pending;
  ]

(* ------------------------------------------------------------------ *)
(* Request dispatch *)

let handle t s ~map_epoch req =
  match req with
  | Protocol.Hello { version; principal; auth; _ } ->
      if version <> Protocol.version then
        ( err Protocol.Version_mismatch
            "protocol version mismatch: client %d, server %d" version
            Protocol.version,
          `Close )
      else begin
        (* Same policy as a single node: a claimed principal must verify
           against the deployment's shared secret; an absent claim stays
           anonymous. The verified name is replayed on every shard
           handshake this session makes. *)
        let auth_result =
          match principal with
          | None -> Ok None
          | Some "" -> Error "principal name must not be empty"
          | Some p -> (
              match (t.cfg.auth_secret, auth) with
              | None, _ ->
                  Error
                    (Printf.sprintf
                       "principal %S refused: this coordinator holds no \
                        shared secret (start it with --auth-secret)"
                       p)
              | Some _, None ->
                  Error
                    (Printf.sprintf "principal %S claimed without an auth tag"
                       p)
              | Some secret, Some tag ->
                  if Protocol.principal_tag_ok ~secret ~name:p ~tag then
                    Ok (Some p)
                  else
                    Error
                      (Printf.sprintf "invalid auth tag for principal %S" p))
        in
        match auth_result with
        | Error message -> (err Protocol.Auth_failed "%s" message, `Close)
        | Ok verified ->
            s.greeted <- true;
            s.principal <- verified;
            ( Protocol.Welcome
                {
                  version = Protocol.version;
                  server = "sqlledger-coord/1.0";
                  database =
                    Printf.sprintf "sharded/%d" (Shard_map.count (map t));
                },
              `Keep )
      end
  | _ when not s.greeted ->
      (err Protocol.Bad_request "the first request must be hello", `Close)
  | Protocol.Ping -> (Protocol.Pong, `Keep)
  | Protocol.Shard_map ->
      let m = map t in
      ( Protocol.Shard_map_r
          { epoch = Shard_map.epoch m; shards = Shard_map.to_list m },
        `Keep )
  | Protocol.Quit -> (Protocol.Bye, `Close)
  | _ when
      (match map_epoch with
      | Some e -> e <> Shard_map.epoch (map t)
      | None -> false) ->
      (* Stale routing generation: refuse before any work so the retry
         (with a refreshed map) is always safe. *)
      bump t (fun c -> c.c_wrong_shard <- c.c_wrong_shard + 1);
      ( Protocol.Error_r
          {
            code = Protocol.Wrong_shard;
            message =
              Printf.sprintf "shard map epoch %d is stale (current %d)"
                (Option.value map_epoch ~default:(-1))
                (Shard_map.epoch (map t));
            retry_after_ms = None;
            map_epoch = Some (Shard_map.epoch (map t));
          },
        `Keep )
  | Protocol.Exec { sql } -> (exec_statement t s ~read_only:false sql, `Keep)
  | Protocol.Query { sql } -> (exec_statement t s ~read_only:true sql, `Keep)
  | Protocol.Begin -> (
      match s.txn with
      | Some _ ->
          (err Protocol.Txn_state "a transaction is already open", `Keep)
      | None ->
          (* Participants enlist lazily, at the first statement touching
             each shard. *)
          s.txn <- Some [];
          (Protocol.Txn_r { txn_id = None }, `Keep))
  | Protocol.Commit -> (
      match s.txn with
      | None -> (err Protocol.Txn_state "no transaction is open", `Keep)
      | Some [] ->
          s.txn <- None;
          (Protocol.Txn_r { txn_id = None }, `Keep)
      | Some [ i ] -> (
          s.txn <- None;
          match scall t s i Protocol.Commit with
          | Ok resp ->
              bump t (fun c -> c.c_1pc <- c.c_1pc + 1);
              (resp, `Keep)
          | Error m -> (err Protocol.Internal "%s" m, `Keep))
      | Some parts -> (
          s.txn <- None;
          match two_phase_commit t s parts with
          | Ok () -> (Protocol.Txn_r { txn_id = None }, `Keep)
          | Error m ->
              (err Protocol.Exec_error "transaction aborted: %s" m, `Keep)))
  | Protocol.Rollback -> (
      match s.txn with
      | None -> (err Protocol.Txn_state "no transaction is open", `Keep)
      | Some parts ->
          s.txn <- None;
          List.iter
            (fun i ->
              ignore
                (scall t s i Protocol.Rollback
                  : (Protocol.response, string) result))
            parts;
          (Protocol.Txn_r { txn_id = None }, `Keep))
  | Protocol.Digest -> (coordinator_digest t s, `Keep)
  | Protocol.Verify { tables; digests } ->
      (coordinator_verify t ~tables ~digest_jsons:digests, `Keep)
  | Protocol.Create_table { name; columns; key; ledger } ->
      (create_table t s ~name ~columns ~key ~ledger, `Keep)
  | Protocol.Checkpoint ->
      let rec go = function
        | [] -> Protocol.Ok_r
        | i :: rest -> (
            match scall t s i Protocol.Checkpoint with
            | Ok Protocol.Ok_r -> go rest
            | Ok (Protocol.Error_r { message; _ }) ->
                err Protocol.Exec_error "shard %d: %s" i message
            | Ok _ -> err Protocol.Internal "shard %d: unexpected reply" i
            | Error m -> err Protocol.Internal "%s" m)
      in
      (go (all_shards t), `Keep)
  | Protocol.Stats -> (Protocol.Stats_r (stats_lines t), `Keep)
  | Protocol.Receipt _ | Protocol.Receipts _ ->
      ( err Protocol.Bad_request
          "receipts are per shard (transaction ids are shard-local); fetch \
           the shard map and ask the owning shard",
        `Keep )
  | Protocol.Subscribe _ ->
      ( err Protocol.Bad_request
          "replication streams attach to shard primaries, not the \
           coordinator",
        `Keep )
  | Protocol.Prepare _ | Protocol.Decide _ ->
      ( err Protocol.Bad_request
          "2PC verbs are coordinator-to-shard only; this endpoint is the \
           coordinator",
        `Keep )
  | Protocol.Migrate _ ->
      ( err Protocol.Bad_request
          "migration is shard-local (tables and cursors live on one \
           primary); fetch the shard map and run `sqlledger migrate` \
           against the owning shard",
        `Keep )

(* ------------------------------------------------------------------ *)
(* Accept loop (mirrors Server's session machinery) *)

let record_crash t e =
  Atomic.set t.crash (Some e);
  Atomic.set t.stop true

let send_response conn ~id resp =
  match Frame.send conn (Protocol.encode_response ~id resp) with
  | () -> `Sent
  | exception (Sys_error _ | Unix.Unix_error _) -> `Torn

let cleanup_session t s =
  (* An interrupted session must not leave shards holding writer locks:
     roll back any open transaction before dropping the connections. *)
  (match s.txn with
  | Some parts ->
      List.iter
        (fun i ->
          ignore
            (scall t s i Protocol.Rollback : (Protocol.response, string) result))
        parts;
      s.txn <- None
  | None -> ());
  Hashtbl.iter
    (fun _ c ->
      try Client.close c with Sys_error _ | Unix.Unix_error _ -> ())
    s.conns;
  Hashtbl.reset s.conns

let session_loop t sid fd =
  if t.cfg.request_timeout > 0.0 then
    (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.cfg.request_timeout
     with Unix.Unix_error _ -> ());
  let read_timeout =
    if t.cfg.request_timeout > 0.0 then Some t.cfg.request_timeout else None
  in
  let conn = Frame.of_fd fd in
  let s =
    {
      sid;
      greeted = false;
      principal = None;
      conns = Hashtbl.create 4;
      txn = None;
    }
  in
  let idle = ref 0.0 in
  let slice = 0.2 in
  let closing = ref false in
  while not !closing do
    if Atomic.get t.stop then closing := true
    else if Frame.poll conn slice then begin
      idle := 0.0;
      match Frame.recv ?read_timeout conn with
      | Frame.Frame payload -> (
          match Protocol.decode_request payload with
          | Error msg -> (
              match
                send_response conn ~id:0
                  (err Protocol.Bad_request "%s" msg)
              with
              | `Sent -> ()
              | `Torn -> closing := true)
          | Ok (id, _deadline_ms, map_epoch, req) -> (
              match handle t s ~map_epoch req with
              | exception (Fault.Injected_crash _ as e) ->
                  record_crash t e;
                  closing := true
              | exception e -> (
                  match
                    send_response conn ~id
                      (err Protocol.Internal "%s" (Printexc.to_string e))
                  with
                  | `Sent -> ()
                  | `Torn -> closing := true)
              | resp, action -> (
                  match (send_response conn ~id resp, action) with
                  | `Sent, `Keep -> ()
                  | `Sent, `Close | `Torn, _ -> closing := true)))
      | Frame.Eof | Frame.Truncated -> closing := true
      | Frame.Junk _ | Frame.Oversized _ -> closing := true
      | exception Unix.Unix_error _ -> closing := true
    end
    else begin
      idle := !idle +. slice;
      if t.cfg.idle_timeout > 0.0 && !idle >= t.cfg.idle_timeout then
        closing := true
    end
  done;
  cleanup_session t s;
  Frame.close conn;
  Mutex.lock t.sm;
  Hashtbl.remove t.sessions sid;
  Mutex.unlock t.sm

let spawn_session t fd =
  Mutex.lock t.sm;
  if Hashtbl.length t.sessions >= t.cfg.max_connections then begin
    Mutex.unlock t.sm;
    let conn = Frame.of_fd fd in
    (try
       Frame.send conn
         (Protocol.encode_response ~id:0
            (err Protocol.Busy "coordinator at its %d-connection limit"
               t.cfg.max_connections))
     with Sys_error _ | Unix.Unix_error _ -> ());
    Frame.close conn
  end
  else begin
    t.next_session <- t.next_session + 1;
    let sid = t.next_session in
    let th = Thread.create (fun () -> session_loop t sid fd) () in
    Hashtbl.add t.sessions sid th;
    Mutex.unlock t.sm
  end

let drain t =
  (try Unix.close t.lsock with Unix.Unix_error _ -> ());
  let threads =
    Mutex.lock t.sm;
    let l = Hashtbl.fold (fun _ th acc -> th :: acc) t.sessions [] in
    Mutex.unlock t.sm;
    l
  in
  List.iter Thread.join threads;
  Decision_log.close t.dlog

let run t =
  (* Background resolver: keep re-sending undelivered decisions until
     every participant has acked (a restarting shard picks its in-doubt
     transactions back up from its own WAL and then accepts these). *)
  let resolver =
    Thread.create
      (fun () ->
        while not (Atomic.get t.stop) do
          (try
             if resolve_pending t > 0 then Thread.delay 0.3
             else Thread.delay 1.0
           with _ -> Thread.delay 1.0)
        done)
      ()
  in
  while not (Atomic.get t.stop) do
    match Unix.select [ t.lsock ] [] [] 0.2 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept t.lsock with
        | exception
            Unix.Unix_error
              ((Unix.EINTR | Unix.ECONNABORTED | Unix.EAGAIN), _, _) ->
            ()
        | fd, _ -> spawn_session t fd)
  done;
  Thread.join resolver;
  drain t;
  match Atomic.get t.crash with Some e -> raise e | None -> ()

let run_async t = Thread.create (fun () -> try run t with _ -> ()) ()

let shutdown t th =
  request_shutdown t;
  Thread.join th
