(* The coordinator's 2PC decision log.

   An append-only CRC-framed file recording, per global transaction:

     Start    {gid; participants}    before any PREPARE is sent
     Decision {gid; commit}          the atomic commit point
     End      {gid}                  every participant acked the decision

   Recovery applies presumed abort: a Start with no Decision means the
   coordinator died inside the prepare round, so the transaction aborts —
   participants holding a prepared txn learn this when the restarted
   coordinator re-sends the (now logged) abort decision. A Decision with
   no End means some participant may not have heard the outcome; the
   decision is re-sent until every participant acks, then End is logged.
   Decisions are never un-made: once the Decision record is fsynced the
   outcome is fixed, however many times delivery is retried.

   Frame format, one record per line (same discipline as the WAL):

     #crc len json\n

   with [crc] the CRC-32 of [json] in %08lx and [len] its byte length.
   A torn tail — short line, bad CRC, missing newline — is truncated on
   load, exactly like a torn WAL append: the record never happened.
   Appends route through the ["coord.dlog"] failpoint so tests can tear
   a record mid-bytes or kill the coordinator at the append. *)

type record =
  | Start of { gid : string; participants : int list }
  | Decision of { gid : string; commit : bool }
  | End of { gid : string }

let point = "coord.dlog"
let () = Fault.register point

(* ------------------------------------------------------------------ *)
(* Codec *)

let record_to_json = function
  | Start { gid; participants } ->
      Sjson.Obj
        [
          ("t", Sjson.String "start");
          ("gid", Sjson.String gid);
          ( "parts",
            Sjson.List (List.map (fun i -> Sjson.Int i) participants) );
        ]
  | Decision { gid; commit } ->
      Sjson.Obj
        [
          ("t", Sjson.String "decision");
          ("gid", Sjson.String gid);
          ("commit", Sjson.Bool commit);
        ]
  | End { gid } ->
      Sjson.Obj [ ("t", Sjson.String "end"); ("gid", Sjson.String gid) ]

let record_of_json json =
  let gid () = Sjson.get_string (Sjson.member "gid" json) in
  match Sjson.member "t" json with
  | Sjson.String "start" ->
      let participants =
        match Sjson.member "parts" json with
        | Sjson.List items -> List.map Sjson.get_int items
        | _ -> failwith "start record without parts"
      in
      Start { gid = gid (); participants }
  | Sjson.String "decision" ->
      let commit =
        match Sjson.member "commit" json with
        | Sjson.Bool b -> b
        | _ -> failwith "decision record without commit"
      in
      Decision { gid = gid (); commit }
  | Sjson.String "end" -> End { gid = gid () }
  | _ -> failwith "unknown decision-log record"

let frame json =
  Printf.sprintf "#%08lx %d %s\n"
    (Fault.Crc32.string json)
    (String.length json) json

(* ------------------------------------------------------------------ *)
(* Load: parse frames, stop (and truncate) at the first damage. *)

let parse_all contents =
  let n = String.length contents in
  let records = ref [] in
  let pos = ref 0 in
  let good = ref 0 in
  (try
     while !pos < n do
       let start = !pos in
       if contents.[start] <> '#' then raise Exit;
       (* "#%08lx %d " header: find the two spaces. *)
       let sp1 = String.index_from contents start ' ' in
       let sp2 = String.index_from contents (sp1 + 1) ' ' in
       let crc_hex = String.sub contents (start + 1) (sp1 - start - 1) in
       let len = int_of_string (String.sub contents (sp1 + 1) (sp2 - sp1 - 1)) in
       if len < 0 || sp2 + 1 + len >= n + 1 then raise Exit;
       if sp2 + 1 + len + 1 > n then raise Exit;
       let json = String.sub contents (sp2 + 1) len in
       if contents.[sp2 + 1 + len] <> '\n' then raise Exit;
       let crc = Int32.of_string ("0x" ^ crc_hex) in
       if crc <> Fault.Crc32.string json then raise Exit;
       let record = record_of_json (Sjson.of_string json) in
       records := record :: !records;
       pos := sp2 + 1 + len + 1;
       good := !pos
     done
   with
  | Exit | Not_found | Failure _ | Invalid_argument _ | Sjson.Parse_error _ ->
      ());
  (List.rev !records, !good)

type t = { path : string; mutable oc : out_channel }

let path t = t.path

let load ~path =
  Fault.Fsutil.mkdir_p (Filename.dirname path);
  let contents =
    if Sys.file_exists path then (
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s)
    else ""
  in
  let records, good = parse_all contents in
  if good < String.length contents then
    (* Torn tail: the partial record never happened. *)
    Unix.truncate path good;
  let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
  (records, { path; oc })

(* [End] is an optimisation (it only prunes recovery work), so it may
   ride on the OS buffer; [Start] and [Decision] are correctness points
   and are fsynced before the caller proceeds. *)
let append t record =
  let must_sync = match record with Start _ | Decision _ -> true | End _ -> false in
  Fault.output point t.oc (frame (Sjson.to_string (record_to_json record)));
  if must_sync then Fault.Fsutil.fsync_channel t.oc else flush t.oc

let close t = close_out_noerr t.oc
