(** Hash partitioning of tables over shard primaries.

    Bucket [crc32(table, key) mod count] owns a row; [epoch] is the map
    generation that gates [wrong_shard] refusals (see {!Coordinator}). *)

type t

val make : epoch:int -> (string * int) list -> t
(** Raises [Invalid_argument] on an empty shard list or negative epoch. *)

val epoch : t -> int
val count : t -> int

val address : t -> int -> string * int
(** Host and port of shard [i]. *)

val to_list : t -> (string * int) list
val with_epoch : t -> int -> t

val equal_topology : t -> t -> bool
(** Same shard addresses in the same order (epoch ignored). *)

val shard_of_key : t -> table:string -> Relation.Value.t list -> int
(** The shard owning the row with this primary key, from the CRC over the
    lowercased table name and each key value's tagged JSON. *)

val bucket_of_key :
  shard_count:int -> table:string -> Relation.Value.t list -> int
(** Map-free variant, for tests pinning the partition function. *)

val to_json : t -> Sjson.t
val of_json : Sjson.t -> (t, string) result
