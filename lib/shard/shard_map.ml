(* The partition map of a sharded ledger deployment.

   Rows are hash-partitioned by primary key: bucket
   [crc32(table \x00 key-values) mod shard-count] owns the row, and
   [shards.(bucket)] is the (host, port) of the shard primary serving it.
   The CRC runs over the lowercased table name and the *tagged* JSON of
   each key value in key-column order — the same self-describing encoding
   rows use on the wire — so an INT 5 and a FLOAT 5.0 key hash
   differently, exactly as they compare differently in the B-tree.

   [epoch] increments on every topology change and is the generation that
   clients stamp on their request envelopes; a coordinator refuses stale
   stamps with the typed [wrong_shard] error before doing any work, so a
   client racing a map change can always refresh and retry safely. *)

type t = { epoch : int; shards : (string * int) array }

let make ~epoch shards =
  if shards = [] then invalid_arg "Shard_map.make: no shards";
  if epoch < 0 then invalid_arg "Shard_map.make: negative epoch";
  { epoch; shards = Array.of_list shards }

let epoch t = t.epoch
let count t = Array.length t.shards
let address t i = t.shards.(i)
let to_list t = Array.to_list t.shards
let with_epoch t epoch = { t with epoch }

let equal_topology a b = a.shards = b.shards

(* ------------------------------------------------------------------ *)
(* Key hashing *)

let hash_bytes ~table key =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (String.lowercase_ascii table);
  List.iter
    (fun v ->
      Buffer.add_char buf '\x00';
      Buffer.add_string buf (Sjson.to_string (Relation.Value.to_tagged_json v)))
    key;
  Buffer.contents buf

let bucket_of_key ~shard_count ~table key =
  if shard_count <= 0 then invalid_arg "Shard_map.bucket_of_key: no shards";
  let crc = Fault.Crc32.string (hash_bytes ~table key) in
  Int32.to_int crc land 0x7fffffff mod shard_count

let shard_of_key t ~table key =
  bucket_of_key ~shard_count:(count t) ~table key

(* ------------------------------------------------------------------ *)
(* JSON codec — the same shape [Shard_map_r] puts on the wire, so a
   client can persist a fetched map verbatim. *)

let to_json t =
  Sjson.Obj
    [
      ("epoch", Sjson.Int t.epoch);
      ( "shards",
        Sjson.List
          (Array.to_list t.shards
          |> List.map (fun (host, port) ->
                 Sjson.Obj
                   [ ("host", Sjson.String host); ("port", Sjson.Int port) ]))
      );
    ]

let of_json json =
  try
    let epoch = Sjson.get_int (Sjson.member "epoch" json) in
    let shards =
      match Sjson.member "shards" json with
      | Sjson.List items ->
          List.map
            (fun s ->
              ( Sjson.get_string (Sjson.member "host" s),
                Sjson.get_int (Sjson.member "port" s) ))
            items
      | _ -> failwith "field \"shards\" must be a list"
    in
    if shards = [] then failwith "empty shard list"
    else Ok (make ~epoch shards)
  with
  | Failure e | Invalid_argument e -> Error ("malformed shard map: " ^ e)
