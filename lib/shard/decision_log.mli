(** The coordinator's append-only 2PC decision log.

    CRC-framed records, torn-tail-truncated on load. [Start] with no
    [Decision] recovers as presumed abort; [Decision] with no [End]
    re-sends the outcome until every participant acks. Appends route
    through the ["coord.dlog"] failpoint. *)

type record =
  | Start of { gid : string; participants : int list }
  | Decision of { gid : string; commit : bool }
  | End of { gid : string }

type t

val point : string
(** The failpoint name guarding appends. *)

val load : path:string -> record list * t
(** Parse the surviving records (truncating any torn tail in place) and
    open the log for appending. *)

val append : t -> record -> unit
(** [Start] and [Decision] are fsynced before returning; [End] is only
    flushed. *)

val close : t -> unit
val path : t -> string

(**/**)

val parse_all : string -> record list * int
(** Records decoded from a raw byte string plus the clean-prefix length —
    exposed for torn-tail tests. *)

val frame : string -> string
