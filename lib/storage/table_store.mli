(** Physical table storage: a clustered B+tree (primary key → row) plus any
    number of non-clustered indexes (index key → primary key).

    The [Raw] submodule is the attacker surface of the paper's threat model
    (§2.5.2): it mutates stored rows, indexes and schema metadata directly,
    bypassing every transactional and ledger check — the moral equivalent of
    editing database files on disk. The ledger verification process exists
    to catch exactly these edits. *)

type t

type index = {
  index_name : string;
  key_ordinals : int list;  (** columns forming the index key *)
}

exception Duplicate_key of string
exception Not_found_key of string

val create :
  name:string -> table_id:int -> schema:Relation.Schema.t -> key_ordinals:int list -> t
(** [key_ordinals] are the clustered (primary) key columns. Raises
    [Invalid_argument] if empty or out of range. *)

val name : t -> string
val table_id : t -> int
val schema : t -> Relation.Schema.t
val key_ordinals : t -> int list
val row_count : t -> int

val set_schema : t -> Relation.Schema.t -> unit
(** Replace the schema (schema-change support; the caller is responsible for
    keeping stored rows consistent with the new schema). *)

val primary_key : t -> Relation.Row.t -> Relation.Row.t
(** Extract the clustered key of a row. *)

val insert : t -> Relation.Row.t -> unit
(** Raises {!Duplicate_key} or [Invalid_argument] (schema violation). *)

val update : t -> Relation.Row.t -> unit
(** Replace the row whose primary key matches the new row's key. For key
    changes use {!delete} + {!insert}. Raises {!Not_found_key}. *)

val delete : t -> key:Relation.Row.t -> Relation.Row.t
(** Remove and return the row with the given primary key.
    Raises {!Not_found_key}. *)

val find : t -> key:Relation.Row.t -> Relation.Row.t option

val scan : t -> Relation.Row.t list
(** All rows in clustered-key order. *)

val iter : (Relation.Row.t -> unit) -> t -> unit

val fold : ('a -> Relation.Row.t -> 'a) -> 'a -> t -> 'a

val range :
  t -> ?lo:Relation.Row.t -> ?hi:Relation.Row.t -> unit -> Relation.Row.t list
(** Clustered-key range scan (bounds are key rows, inclusive). *)

(** {1 Non-clustered indexes} *)

val create_index : t -> name:string -> key_ordinals:int list -> unit
(** Builds the index from current rows. Raises [Invalid_argument] on
    duplicate index name or bad ordinals. *)

val drop_index : t -> name:string -> unit

val indexes : t -> index list

val index_lookup : t -> index_name:string -> key:Relation.Row.t -> Relation.Row.t list
(** Rows whose index-key columns equal [key], via the index. *)

val index_scan : t -> index_name:string -> (Relation.Row.t * Relation.Row.t) list
(** All [(index_key, primary_key)] pairs in index order — what verification
    query 5 reads when checking index/base-table equivalence. *)

val migrate :
  t -> schema:Relation.Schema.t -> f:(Relation.Row.t -> Relation.Row.t) -> unit
(** Replace the schema and rewrite every stored row with [f] (primary keys
    must be preserved). Non-clustered indexes are rebuilt. Used by logical
    schema changes (adding a column pads rows with NULL). *)

val snapshot : t -> t
(** O(1) frozen view sharing the copy-on-write tree roots: later writes to
    [t] are invisible to it. Read-only — never hand it to a write path. *)

val deep_copy : t -> t
(** Fully independent copy (rows included) — the substrate for backups and
    point-in-time restore simulations. *)

(** {1 Attacker surface} *)

module Raw : sig
  val overwrite_value :
    t -> key:Relation.Row.t -> ordinal:int -> Relation.Value.t -> bool
  (** Mutate one stored value in place, bypassing validation, history
      capture, hashing and index maintenance. Returns false when no row has
      that key. *)

  val delete_row : t -> key:Relation.Row.t -> bool
  (** Remove a row from the clustered tree only (indexes left stale). *)

  val insert_row : t -> Relation.Row.t -> unit
  (** Insert into the clustered tree only, without validation. *)

  val overwrite_index_entry :
    t -> index_name:string -> old_key:Relation.Row.t -> pk:Relation.Row.t ->
    new_key:Relation.Row.t -> bool
  (** Rewrite a non-clustered index entry while leaving the base table
      intact — the attack that invariant 5 detects. *)

  val set_column_type : t -> column:string -> Relation.Datatype.t -> unit
  (** The metadata-swap attack of §3.2: redeclare a column's type so stored
      bytes are reinterpreted. *)
end
