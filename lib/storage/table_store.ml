open Relation

type index = { index_name : string; key_ordinals : int list }

type stored_index = {
  meta : index;
  (* Index key rows are the key-column values with the primary key appended,
     which both makes entries unique and gives deterministic duplicate
     ordering. The mapped value is the primary key. *)
  tree : (Row.t, Row.t) Btree.t;
}

type t = {
  name : string;
  table_id : int;
  mutable schema : Schema.t;
  key_ordinals : int list;
  clustered : (Row.t, Row.t) Btree.t;
  mutable nc_indexes : stored_index list;
}

exception Duplicate_key of string
exception Not_found_key of string

let check_ordinals schema ordinals what =
  if ordinals = [] then invalid_arg (what ^ ": empty key");
  List.iter
    (fun i ->
      if i < 0 || i >= Schema.arity schema then
        invalid_arg (what ^ ": ordinal out of range"))
    ordinals

let create ~name ~table_id ~schema ~key_ordinals =
  check_ordinals schema key_ordinals "Table_store.create";
  {
    name;
    table_id;
    schema;
    key_ordinals;
    clustered = Btree.create ~cmp:Row.compare ();
    nc_indexes = [];
  }

let name t = t.name
let table_id t = t.table_id
let schema t = t.schema
let key_ordinals t = t.key_ordinals
let row_count t = Btree.length t.clustered
let set_schema t schema = t.schema <- schema

let primary_key t row = Row.project row t.key_ordinals

let index_key idx row pk = Array.append (Row.project row idx.meta.key_ordinals) pk

let key_string key =
  String.concat ", " (List.map Value.to_string (Row.to_list key))

let validate t row =
  match Schema.validate_row t.schema row with
  | Ok () -> ()
  | Error e -> invalid_arg (Printf.sprintf "table %s: %s" t.name e)

let insert t row =
  validate t row;
  let pk = primary_key t row in
  if Btree.mem t.clustered pk then
    raise (Duplicate_key (Printf.sprintf "%s: (%s)" t.name (key_string pk)));
  ignore (Btree.insert t.clustered pk row : Row.t option);
  List.iter
    (fun idx -> ignore (Btree.insert idx.tree (index_key idx row pk) pk : Row.t option))
    t.nc_indexes

let find t ~key = Btree.find t.clustered key

let delete t ~key =
  match Btree.remove t.clustered key with
  | None ->
      raise (Not_found_key (Printf.sprintf "%s: (%s)" t.name (key_string key)))
  | Some row ->
      List.iter
        (fun idx -> ignore (Btree.remove idx.tree (index_key idx row key) : Row.t option))
        t.nc_indexes;
      row

let update t row =
  validate t row;
  let pk = primary_key t row in
  match Btree.find t.clustered pk with
  | None ->
      raise (Not_found_key (Printf.sprintf "%s: (%s)" t.name (key_string pk)))
  | Some old_row ->
      ignore (Btree.insert t.clustered pk row : Row.t option);
      List.iter
        (fun idx ->
          let old_k = index_key idx old_row pk in
          let new_k = index_key idx row pk in
          if Row.compare old_k new_k <> 0 then begin
            ignore (Btree.remove idx.tree old_k : Row.t option);
            ignore (Btree.insert idx.tree new_k pk : Row.t option)
          end)
        t.nc_indexes

let scan t = List.map snd (Btree.to_list t.clustered)
let iter f t = Btree.iter (fun _ row -> f row) t.clustered
let fold f acc t = Btree.fold (fun acc _ row -> f acc row) acc t.clustered
let range t ?lo ?hi () = List.map snd (Btree.range t.clustered ?lo ?hi ())

let find_index t index_name =
  List.find_opt
    (fun idx -> String.equal idx.meta.index_name index_name)
    t.nc_indexes

let create_index t ~name:index_name ~key_ordinals =
  check_ordinals t.schema key_ordinals "Table_store.create_index";
  if find_index t index_name <> None then
    invalid_arg ("Table_store.create_index: duplicate index " ^ index_name);
  let idx =
    {
      meta = { index_name; key_ordinals };
      tree = Btree.create ~cmp:Row.compare ();
    }
  in
  Btree.iter
    (fun pk row -> ignore (Btree.insert idx.tree (index_key idx row pk) pk : Row.t option))
    t.clustered;
  t.nc_indexes <- t.nc_indexes @ [ idx ]

let drop_index t ~name:index_name =
  if find_index t index_name = None then
    invalid_arg ("Table_store.drop_index: no such index " ^ index_name);
  t.nc_indexes <-
    List.filter
      (fun idx -> not (String.equal idx.meta.index_name index_name))
      t.nc_indexes

let indexes t = List.map (fun idx -> idx.meta) t.nc_indexes

let index_lookup t ~index_name ~key =
  match find_index t index_name with
  | None -> invalid_arg ("Table_store.index_lookup: no such index " ^ index_name)
  | Some idx ->
      (* Entries for [key] span the range [key ++ -inf, key ++ +inf]; since
         appended primary-key values only extend the prefix, a prefix filter
         over the range starting at [key] suffices. *)
      let matches entry_key =
        let prefix_len = List.length idx.meta.key_ordinals in
        Array.length entry_key >= prefix_len
        && Row.equal (Array.sub entry_key 0 prefix_len) key
      in
      Btree.range idx.tree ~lo:key ()
      |> List.filter (fun (k, _) -> matches k)
      |> List.filter_map (fun (_, pk) -> Btree.find t.clustered pk)

let index_scan t ~index_name =
  match find_index t index_name with
  | None -> invalid_arg ("Table_store.index_scan: no such index " ^ index_name)
  | Some idx -> Btree.to_list idx.tree

let migrate t ~schema ~f =
  let bindings = Btree.to_list t.clustered in
  t.schema <- schema;
  Btree.clear t.clustered;
  List.iter
    (fun (pk, row) -> ignore (Btree.insert t.clustered pk (f row) : Row.t option))
    bindings;
  let metas = List.map (fun idx -> idx.meta) t.nc_indexes in
  t.nc_indexes <- [];
  List.iter
    (fun (meta : index) ->
      create_index t ~name:meta.index_name ~key_ordinals:meta.key_ordinals)
    metas

(* O(1) frozen view. The B+trees are copy-on-write, so capturing their
   root pointers freezes the stored rows; row arrays themselves are never
   mutated by the engine after insertion (updates copy — the only
   exception is [Raw.overwrite_value], the tamper simulator, which is
   exactly the kind of page edit the ledger is meant to detect). The
   result shares no mutable tree state with [t]: later inserts, deletes,
   migrations or index changes on [t] are invisible to it. *)
let snapshot t =
  {
    t with
    clustered = Btree.snapshot t.clustered;
    nc_indexes =
      List.map (fun idx -> { idx with tree = Btree.snapshot idx.tree }) t.nc_indexes;
  }

let deep_copy t =
  let copy =
    create ~name:t.name ~table_id:t.table_id ~schema:t.schema
      ~key_ordinals:t.key_ordinals
  in
  Btree.iter
    (fun pk row ->
      ignore (Btree.insert copy.clustered (Array.copy pk) (Array.copy row) : Row.t option))
    t.clustered;
  List.iter
    (fun idx ->
      create_index copy ~name:idx.meta.index_name
        ~key_ordinals:idx.meta.key_ordinals)
    t.nc_indexes;
  copy

module Raw = struct
  let overwrite_value t ~key ~ordinal value =
    match Btree.find t.clustered key with
    | None -> false
    | Some row ->
        (* In-place mutation: indexes, history and hashes all go stale,
           exactly like a direct page edit. *)
        row.(ordinal) <- value;
        true

  let delete_row t ~key = Btree.remove t.clustered key <> None

  let insert_row t row =
    let pk = primary_key t row in
    ignore (Btree.insert t.clustered pk row : Row.t option)

  let overwrite_index_entry t ~index_name ~old_key ~pk ~new_key =
    match find_index t index_name with
    | None -> false
    | Some idx -> (
        match Btree.remove idx.tree (Array.append old_key pk) with
        | None -> false
        | Some stored_pk ->
            ignore
              (Btree.insert idx.tree (Array.append new_key pk) stored_pk
                : Row.t option);
            true)

  let set_column_type t ~column dtype =
    t.schema <- Schema.set_column_type t.schema column dtype
end
