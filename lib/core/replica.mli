(** Streaming log-shipping replica (paper §3.6).

    Geographic secondaries in Azure SQL Database apply the primary's log
    asynchronously; §3.6 gates digest issuance on the secondary's
    replication point so a geo-failover can never lose digested data. This
    module is that secondary: it consumes the primary's WAL records
    incrementally and maintains a full, verifiable copy.

    DATA records are buffered until their COMMIT arrives, so the replica
    only ever exposes committed state; {!replicated_upto} reports the last
    applied commit timestamp — exactly the probe
    {!Trusted_store.Digest_manager} expects for its replication gate. A
    failover is {!promote}: the replica's database continues as the new
    primary (minus any unshipped tail, which is the data loss the paper's
    digest gate protects against). *)

type t

val create : ?clock:(unit -> float) -> unit -> t

val of_database : ?clock:(unit -> float) -> last_lsn:Aries.Wal.lsn -> Database.t -> t
(** Resume a replica around an already-recovered database (a restarted
    replica daemon reloading its durable copy): [last_lsn] is the
    replication position the recovered state corresponds to; feeding
    continues from there. *)

val install_snapshot : t -> Database.t -> last_lsn:Aries.Wal.lsn -> unit
(** Replace the replica's state wholesale with a snapshot shipped by the
    primary (the catch-up path when the requested stream position has
    been compacted away). Pending uncommitted buffers are discarded. *)

val feed : t -> (Aries.Wal.lsn * Aries.Log_record.t) list -> (unit, string) result
(** Apply new records (LSNs at or below the last fed LSN are skipped, so
    overlapping batches are safe). *)

val feed_from_file : t -> wal_path:string -> (unit, string) result
(** Tail the primary's log file and apply everything new. Incremental: a
    {!Aries.Wal.Tail} cursor persists across calls, so each call reads
    only the bytes appended since the previous one. *)

val database : t -> Database.t option
(** The replica database; [None] until the creation record arrived. *)

val replicated_upto : t -> float
(** Commit timestamp of the last applied transaction (0 when none) — plug
    this into {!Trusted_store.Digest_manager.create}. *)

val last_lsn : t -> Aries.Wal.lsn

val promote : t -> (Database.t, string) result
(** Failover: return the replica database as the new primary. Pending
    uncommitted buffers are discarded. Errors when nothing was ever fed. *)
